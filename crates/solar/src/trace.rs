//! Solar power traces aligned to the scheduling time grid.
//!
//! A [`SolarTrace`] stores the harvested electrical power
//! `P^s_{i,j,m}` for every slot of a [`TimeGrid`]. Traces are produced
//! by the [`TraceBuilder`] from day archetypes or a weather process, or
//! constructed directly from raw per-slot powers (e.g. when replaying
//! recorded data).

use helio_common::rng::{derive, DetRng};
use helio_common::time::{PeriodRef, SlotRef, TimeGrid};
use helio_common::units::{Joules, Watts};
use serde::{Deserialize, Serialize};

use crate::archetype::DayArchetype;
use crate::panel::SolarPanel;
use crate::weather::WeatherProcess;

/// A per-slot harvested-power trace over a time grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SolarTrace {
    grid: TimeGrid,
    /// Per-slot average harvested power, `slot_index`-ordered (W).
    powers: Vec<f64>,
    /// Archetype of each day when generated synthetically.
    day_archetypes: Vec<Option<DayArchetype>>,
}

impl SolarTrace {
    /// Builds a trace from raw per-slot powers.
    ///
    /// # Panics
    ///
    /// Panics when `powers` does not have exactly one entry per grid
    /// slot or contains negative/non-finite values.
    pub fn from_powers(grid: TimeGrid, powers: Vec<Watts>) -> Self {
        assert_eq!(
            powers.len(),
            grid.total_slots(),
            "trace must cover every slot"
        );
        assert!(
            powers.iter().all(|p| p.is_finite() && p.value() >= 0.0),
            "powers must be finite and nonnegative"
        );
        Self {
            grid,
            powers: powers.into_iter().map(|p| p.value()).collect(),
            day_archetypes: vec![None; grid.days()],
        }
    }

    /// The grid this trace is aligned to.
    pub const fn grid(&self) -> &TimeGrid {
        &self.grid
    }

    /// Harvested power of one slot, `P^s_{i,j,m}`.
    pub fn slot_power(&self, slot: SlotRef) -> Watts {
        Watts::new(self.powers[self.grid.slot_index(slot)])
    }

    /// Harvested energy of one slot (`P · Δt`).
    pub fn slot_energy(&self, slot: SlotRef) -> Joules {
        self.slot_power(slot) * self.grid.slot_duration()
    }

    /// Per-slot powers of one period (length `N_s`).
    pub fn period_powers(&self, period: PeriodRef) -> Vec<Watts> {
        self.grid
            .slots_in(period)
            .map(|s| self.slot_power(s))
            .collect()
    }

    /// Per-slot powers of one period as a raw watt-value slice — the
    /// allocation-free view the online gather loop streams from
    /// instead of re-deriving each slot's flat index.
    pub fn period_powers_raw(&self, period: PeriodRef) -> &[f64] {
        let base = self
            .grid
            .slot_index(SlotRef::new(period.day, period.period, 0));
        &self.powers[base..base + self.grid.slots_per_period()]
    }

    /// Total harvested energy of one period.
    pub fn period_energy(&self, period: PeriodRef) -> Joules {
        self.grid
            .slots_in(period)
            .map(|s| self.slot_energy(s))
            .sum()
    }

    /// Total harvested energy of one day.
    pub fn day_energy(&self, day: usize) -> Joules {
        (0..self.grid.periods_per_day())
            .map(|p| self.period_energy(PeriodRef::new(day, p)))
            .sum()
    }

    /// Total harvested energy over the whole horizon.
    pub fn total_energy(&self) -> Joules {
        Joules::new(self.powers.iter().sum::<f64>() * self.grid.slot_duration().value())
    }

    /// Archetype used to generate a day, when known.
    pub fn day_archetype(&self, day: usize) -> Option<DayArchetype> {
        self.day_archetypes.get(day).copied().flatten()
    }

    /// Restricts the trace to a single day (useful for per-day sizing),
    /// producing a one-day trace on the same within-day grid.
    ///
    /// # Panics
    ///
    /// Panics when `day` is outside the horizon.
    pub fn extract_day(&self, day: usize) -> SolarTrace {
        assert!(day < self.grid.days(), "day {day} outside trace");
        let day_grid = self.grid.with_days(1).expect("one day is valid");
        let start = day * self.grid.slots_per_day();
        let end = start + self.grid.slots_per_day();
        SolarTrace {
            grid: day_grid,
            powers: self.powers[start..end].to_vec(),
            day_archetypes: vec![self.day_archetypes[day]],
        }
    }
}

/// Builder producing synthetic [`SolarTrace`]s.
///
/// # Example
///
/// ```
/// use helio_common::time::TimeGrid;
/// use helio_solar::{SolarPanel, TraceBuilder, WeatherProcess};
///
/// # fn main() -> Result<(), helio_common::CommonError> {
/// let grid = TimeGrid::with_minute_slots(60, 144, 10)?;
/// let trace = TraceBuilder::new(grid, SolarPanel::paper_panel())
///     .seed(42)
///     .weather(WeatherProcess::temperate())
///     .build();
/// assert!(trace.total_energy().value() > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct TraceBuilder {
    grid: TimeGrid,
    panel: SolarPanel,
    seed: u64,
    days: Option<Vec<DayArchetype>>,
    weather: WeatherProcess,
}

impl TraceBuilder {
    /// Starts a builder over `grid` with `panel`.
    pub fn new(grid: TimeGrid, panel: SolarPanel) -> Self {
        Self {
            grid,
            panel,
            seed: 0,
            days: None,
            weather: WeatherProcess::temperate(),
        }
    }

    /// Sets the deterministic seed (default 0).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Fixes the archetype of each day explicitly. When the list is
    /// shorter than the horizon it repeats cyclically.
    #[must_use]
    pub fn days(mut self, days: &[DayArchetype]) -> Self {
        self.days = Some(days.to_vec());
        self
    }

    /// Draws day archetypes from a weather Markov process instead of a
    /// fixed list.
    #[must_use]
    pub fn weather(mut self, weather: WeatherProcess) -> Self {
        self.weather = weather;
        self.days = None;
        self
    }

    /// Generates the trace.
    pub fn build(self) -> SolarTrace {
        let slots_per_day = self.grid.slots_per_day();
        let mut powers = Vec::with_capacity(self.grid.total_slots());
        let mut archetypes = Vec::with_capacity(self.grid.days());

        // Decide each day's archetype.
        let day_types: Vec<DayArchetype> = match &self.days {
            Some(list) => {
                assert!(!list.is_empty(), "archetype list must be nonempty");
                (0..self.grid.days())
                    .map(|d| list[d % list.len()])
                    .collect()
            }
            None => {
                let mut wrng = derive(self.seed, "weather-chain");
                self.weather.sample_days(self.grid.days(), &mut wrng)
            }
        };

        for (day, &arche) in day_types.iter().enumerate() {
            let mut rng: DetRng = derive(self.seed, &format!("day-{day}"));
            let transmission = arche.transmission_series(slots_per_day, &mut rng);
            for (slot_of_day, tr) in transmission.iter().enumerate() {
                // Hour at the midpoint of the slot.
                let frac = (slot_of_day as f64 + 0.5) / slots_per_day as f64;
                let hour = 24.0 * frac;
                let irradiance = DayArchetype::clear_sky(hour) * tr;
                powers.push(self.panel.electrical_power(irradiance).value());
            }
            archetypes.push(Some(arche));
        }

        SolarTrace {
            grid: self.grid,
            powers,
            day_archetypes: archetypes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use helio_common::time::TimeGrid;

    fn grid(days: usize) -> TimeGrid {
        TimeGrid::with_minute_slots(days, 144, 10).unwrap()
    }

    fn four_day_trace(seed: u64) -> SolarTrace {
        TraceBuilder::new(grid(4), SolarPanel::paper_panel())
            .seed(seed)
            .days(&DayArchetype::ALL)
            .build()
    }

    #[test]
    fn build_covers_every_slot() {
        let t = four_day_trace(1);
        assert_eq!(t.grid().total_slots(), 4 * 1440);
        // Every slot is readable.
        for s in t.grid().slots() {
            assert!(t.slot_power(s).value() >= 0.0);
        }
    }

    #[test]
    fn night_slots_have_zero_power() {
        let t = four_day_trace(1);
        // Midnight period.
        let p = t.period_energy(PeriodRef::new(0, 0));
        assert_eq!(p, Joules::ZERO);
        // 3 AM.
        let p = t.period_energy(PeriodRef::new(0, 18));
        assert_eq!(p, Joules::ZERO);
    }

    #[test]
    fn noon_clear_day_is_near_peak() {
        let t = four_day_trace(1);
        // Noon of the clear day (period 72 of 144).
        let powers = t.period_powers(PeriodRef::new(0, 72));
        let max = powers.iter().map(|p| p.milliwatts()).fold(0.0, f64::max);
        assert!(max > 80.0, "noon clear-sky power {max} mW too low");
    }

    #[test]
    fn daily_energy_orders_like_fig7() {
        for seed in [1, 7, 42] {
            let t = four_day_trace(seed);
            let e: Vec<f64> = (0..4).map(|d| t.day_energy(d).value()).collect();
            assert!(
                e.windows(2).all(|w| w[0] > w[1]),
                "seed {seed}: day energies {e:?} not decreasing"
            );
        }
    }

    #[test]
    fn clear_day_energy_scale_is_plausible() {
        // ~94.5 mW peak, sine envelope over 12 h: mean ≈ 2/π·peak over
        // daylight → ≈ 0.0945·0.637·43200 ≈ 2600 J.
        let t = four_day_trace(1);
        let e = t.day_energy(0).value();
        assert!(e > 1500.0 && e < 3200.0, "clear-day energy {e} J");
    }

    #[test]
    fn deterministic_per_seed_and_varies_across_seeds() {
        let a = four_day_trace(5);
        let b = four_day_trace(5);
        assert_eq!(a, b);
        let c = four_day_trace(6);
        assert_ne!(a, c);
    }

    #[test]
    fn extract_day_matches_parent() {
        let t = four_day_trace(3);
        let d2 = t.extract_day(2);
        assert_eq!(d2.grid().days(), 1);
        assert_eq!(d2.day_energy(0), t.day_energy(2));
        assert_eq!(d2.day_archetype(0), Some(DayArchetype::Overcast));
    }

    #[test]
    #[should_panic(expected = "outside trace")]
    fn extract_day_out_of_range_panics() {
        four_day_trace(3).extract_day(9);
    }

    #[test]
    fn weather_mode_produces_varied_days() {
        let t = TraceBuilder::new(grid(30), SolarPanel::paper_panel())
            .seed(9)
            .weather(WeatherProcess::temperate())
            .build();
        let kinds: std::collections::HashSet<_> =
            (0..30).filter_map(|d| t.day_archetype(d)).collect();
        assert!(kinds.len() >= 2, "30 days should span multiple archetypes");
    }

    #[test]
    fn from_powers_validates_shape() {
        let g = TimeGrid::with_minute_slots(1, 2, 2).unwrap();
        let ok = SolarTrace::from_powers(g, vec![Watts::new(0.01); 4]);
        assert!((ok.total_energy().value() - 0.01 * 4.0 * 60.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "every slot")]
    fn from_powers_rejects_short_vec() {
        let g = TimeGrid::with_minute_slots(1, 2, 2).unwrap();
        SolarTrace::from_powers(g, vec![Watts::new(0.01); 3]);
    }

    #[test]
    #[should_panic(expected = "nonnegative")]
    fn from_powers_rejects_negative() {
        let g = TimeGrid::with_minute_slots(1, 1, 2).unwrap();
        SolarTrace::from_powers(g, vec![Watts::new(0.01), Watts::new(-0.01)]);
    }

    #[test]
    fn total_energy_is_sum_of_days() {
        let t = four_day_trace(8);
        let sum: f64 = (0..4).map(|d| t.day_energy(d).value()).sum();
        assert!((t.total_energy().value() - sum).abs() < 1e-6);
    }
}
