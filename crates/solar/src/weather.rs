//! Day-to-day weather as a Markov chain over day archetypes.
//!
//! Multi-month experiments (Fig. 9, Fig. 10a) need realistic day-to-day
//! correlation: clear spells, storm fronts, and transitions through
//! intermediate cover. A first-order Markov chain over the four
//! archetypes captures exactly the "locality of correlation in solar
//! power" the paper points to when explaining why over-long prediction
//! horizons stop helping.

use helio_common::error::CommonError;
use helio_common::rng::DetRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::archetype::DayArchetype;

/// A first-order Markov chain over [`DayArchetype`]s.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WeatherProcess {
    /// `transition[from][to]`, rows summing to 1.
    transition: [[f64; 4]; 4],
    /// Initial-state distribution.
    initial: [f64; 4],
}

impl WeatherProcess {
    /// Builds a process from explicit matrices.
    ///
    /// # Panics
    ///
    /// Panics when the matrices are rejected by
    /// [`WeatherProcess::try_new`] — the in-tree climates are constants,
    /// so malformed matrices are programming errors. Use `try_new` for
    /// matrices from configuration files.
    pub fn new(transition: [[f64; 4]; 4], initial: [f64; 4]) -> Self {
        Self::try_new(transition, initial).expect("weather matrices are valid")
    }

    /// Fallible variant of [`WeatherProcess::new`].
    ///
    /// # Errors
    ///
    /// Returns [`CommonError::InvalidArgument`] when any row (or the
    /// initial distribution) has negative or non-finite entries or does
    /// not sum to 1 within 1e-9 — i.e. is not a stochastic vector.
    pub fn try_new(transition: [[f64; 4]; 4], initial: [f64; 4]) -> Result<Self, CommonError> {
        let check = |row: &[f64; 4], what: &str| -> Result<(), CommonError> {
            if row.iter().any(|&p| !p.is_finite() || p < 0.0) {
                return Err(CommonError::InvalidArgument(format!(
                    "{what} has a negative or non-finite entry"
                )));
            }
            let sum: f64 = row.iter().sum();
            if (sum - 1.0).abs() >= 1e-9 {
                return Err(CommonError::InvalidArgument(format!(
                    "{what} sums to {sum}, not 1"
                )));
            }
            Ok(())
        };
        for (i, row) in transition.iter().enumerate() {
            check(row, &format!("transition row {i}"))?;
        }
        check(&initial, "initial distribution")?;
        Ok(Self {
            transition,
            initial,
        })
    }

    /// A temperate climate: clear and broken-cloud days dominate, storms
    /// are short-lived, weather is sticky from day to day.
    pub fn temperate() -> Self {
        Self::new(
            [
                // from Clear
                [0.60, 0.28, 0.09, 0.03],
                // from BrokenClouds
                [0.30, 0.42, 0.21, 0.07],
                // from Overcast
                [0.12, 0.33, 0.40, 0.15],
                // from Storm
                [0.08, 0.22, 0.40, 0.30],
            ],
            [0.40, 0.30, 0.20, 0.10],
        )
    }

    /// A gloomier monsoon-like climate used for stress experiments.
    pub fn monsoon() -> Self {
        Self::new(
            [
                [0.35, 0.30, 0.22, 0.13],
                [0.18, 0.32, 0.30, 0.20],
                [0.08, 0.22, 0.40, 0.30],
                [0.05, 0.15, 0.35, 0.45],
            ],
            [0.15, 0.25, 0.35, 0.25],
        )
    }

    /// Samples the archetype sequence for `days` consecutive days.
    pub fn sample_days(&self, days: usize, rng: &mut DetRng) -> Vec<DayArchetype> {
        let mut out = Vec::with_capacity(days);
        if days == 0 {
            return out;
        }
        let mut state = sample_index(&self.initial, rng);
        out.push(DayArchetype::ALL[state]);
        for _ in 1..days {
            state = sample_index(&self.transition[state], rng);
            out.push(DayArchetype::ALL[state]);
        }
        out
    }

    /// The stationary distribution of the chain, computed by power
    /// iteration — handy for checking long-run energy budgets in tests.
    pub fn stationary(&self) -> [f64; 4] {
        let mut dist = self.initial;
        for _ in 0..500 {
            let mut next = [0.0; 4];
            for (from, row) in self.transition.iter().enumerate() {
                for (to, &p) in row.iter().enumerate() {
                    next[to] += dist[from] * p;
                }
            }
            dist = next;
        }
        dist
    }
}

impl Default for WeatherProcess {
    fn default() -> Self {
        Self::temperate()
    }
}

fn sample_index(dist: &[f64; 4], rng: &mut DetRng) -> usize {
    let u: f64 = rng.gen();
    let mut cum = 0.0;
    for (i, &p) in dist.iter().enumerate() {
        cum += p;
        if u < cum {
            return i;
        }
    }
    3
}

#[cfg(test)]
mod tests {
    use super::*;
    use helio_common::rng::seeded;

    #[test]
    fn sample_is_deterministic() {
        let w = WeatherProcess::temperate();
        let a = w.sample_days(30, &mut seeded(1));
        let b = w.sample_days(30, &mut seeded(1));
        assert_eq!(a, b);
    }

    #[test]
    fn empty_sample() {
        let w = WeatherProcess::temperate();
        assert!(w.sample_days(0, &mut seeded(1)).is_empty());
    }

    #[test]
    fn temperate_long_run_is_mostly_sunny() {
        let w = WeatherProcess::temperate();
        let days = w.sample_days(2000, &mut seeded(2));
        let clear = days
            .iter()
            .filter(|&&d| d == DayArchetype::Clear || d == DayArchetype::BrokenClouds)
            .count() as f64
            / days.len() as f64;
        assert!(clear > 0.55, "temperate climate too gloomy: {clear}");
    }

    #[test]
    fn monsoon_is_gloomier_than_temperate() {
        let t = WeatherProcess::temperate().stationary();
        let m = WeatherProcess::monsoon().stationary();
        // Probability mass on Overcast+Storm.
        assert!(m[2] + m[3] > t[2] + t[3]);
    }

    #[test]
    fn stationary_sums_to_one() {
        let s = WeatherProcess::temperate().stationary();
        assert!((s.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(s.iter().all(|&p| p >= 0.0));
    }

    #[test]
    fn weather_is_sticky() {
        // Same-state persistence should exceed the stationary share:
        // P(clear tomorrow | clear today) > P(clear) in steady state.
        let w = WeatherProcess::temperate();
        let days = w.sample_days(4000, &mut seeded(3));
        let mut same = 0usize;
        for pair in days.windows(2) {
            if pair[0] == pair[1] {
                same += 1;
            }
        }
        let persistence = same as f64 / (days.len() - 1) as f64;
        let iid: f64 = w.stationary().iter().map(|p| p * p).sum();
        assert!(
            persistence > iid + 0.05,
            "persistence {persistence} vs iid {iid}"
        );
    }

    #[test]
    #[should_panic(expected = "sums to")]
    fn rejects_unnormalised_rows() {
        let mut t = [[0.25; 4]; 4];
        t[0][0] = 0.5;
        WeatherProcess::new(t, [0.25; 4]);
    }

    #[test]
    fn try_new_returns_typed_errors() {
        use helio_common::error::CommonError;
        let good = [[0.25; 4]; 4];
        assert!(WeatherProcess::try_new(good, [0.25; 4]).is_ok());
        let mut unnormalised = good;
        unnormalised[1][0] = 0.5;
        assert!(matches!(
            WeatherProcess::try_new(unnormalised, [0.25; 4]),
            Err(CommonError::InvalidArgument(_))
        ));
        let mut nan = good;
        nan[0][0] = f64::NAN;
        assert!(WeatherProcess::try_new(nan, [0.25; 4]).is_err());
        let mut negative = good;
        negative[2][3] = -0.25;
        assert!(WeatherProcess::try_new(negative, [0.25; 4]).is_err());
        assert!(WeatherProcess::try_new(good, [1.0, 0.5, -0.5, 0.0]).is_err());
    }
}
