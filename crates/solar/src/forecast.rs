//! Solar-energy prediction.
//!
//! Three predictors are provided:
//!
//! * [`EwmaPredictor`] — the classic exponentially-weighted moving
//!   average over the same period of previous days.
//! * [`WcmaPredictor`] — the Weather-Conditioned Moving Average of
//!   Piorno et al. (the paper's inter-task baseline \[3\]): the
//!   multi-day profile is scaled by a *GAP* factor measuring how
//!   today's conditions compare to the recent past.
//! * [`NoisyOracle`] — the true future perturbed with noise whose
//!   standard deviation grows with prediction distance. This is the
//!   controllable stand-in for "a long prediction for solar power is
//!   inaccurate" that drives the prediction-length experiment
//!   (Fig. 10a).
//!
//! All predictors forecast *per-period harvested energy* for a horizon
//! of future periods, which is the granularity the planners consume.

use helio_common::rng::derive;
use helio_common::time::PeriodRef;
use helio_common::units::Joules;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::trace::SolarTrace;

/// A predictor of per-period harvested energy.
///
/// Implementations only look at trace data strictly *before* `from`
/// (plus, for the oracle, the noisy future), so schedulers cannot
/// accidentally cheat.
pub trait SolarPredictor {
    /// Predicts the harvested energy of `horizon` consecutive periods
    /// starting at `from`. The returned vector has length `horizon`
    /// (shorter if the grid ends first).
    fn forecast(&self, trace: &SolarTrace, from: PeriodRef, horizon: usize) -> Vec<Joules>;

    /// Fills `out` with the same forecast as
    /// [`SolarPredictor::forecast`], reusing the buffer's capacity.
    /// The provided predictors override this without allocating; the
    /// default delegates.
    fn forecast_into(
        &self,
        trace: &SolarTrace,
        from: PeriodRef,
        horizon: usize,
        out: &mut Vec<Joules>,
    ) {
        out.clear();
        out.extend(self.forecast(trace, from, horizon));
    }

    /// One-period fast path: the first entry of
    /// [`SolarPredictor::forecast`] with `horizon == 1`, without the
    /// vector. Callers that only need the next period (the engine's
    /// period-start context) should prefer this.
    fn forecast_one(&self, trace: &SolarTrace, from: PeriodRef) -> Joules {
        self.forecast(trace, from, 1)
            .first()
            .copied()
            .unwrap_or(Joules::ZERO)
    }

    /// Human-readable predictor name for experiment tables.
    fn name(&self) -> &'static str;
}

/// Mean per-period energy of the same period-of-day over up to `days`
/// preceding days; `None` when no history exists.
fn history_profile(
    trace: &SolarTrace,
    day: usize,
    period_of_day: usize,
    days: usize,
) -> Option<f64> {
    if day == 0 || days == 0 {
        return None;
    }
    let lo = day.saturating_sub(days);
    let mut sum = 0.0;
    let mut count = 0usize;
    for d in lo..day {
        sum += trace
            .period_energy(PeriodRef::new(d, period_of_day))
            .value();
        count += 1;
    }
    if count == 0 {
        None
    } else {
        Some(sum / count as f64)
    }
}

/// Exponentially-weighted moving average across days, per period-of-day.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EwmaPredictor {
    /// Smoothing factor in `(0, 1]`; weight on the most recent day.
    pub alpha: f64,
}

impl EwmaPredictor {
    /// Creates an EWMA predictor.
    ///
    /// # Panics
    ///
    /// Panics when `alpha` leaves `(0, 1]`.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must lie in (0, 1]");
        Self { alpha }
    }

    fn ewma_at(&self, trace: &SolarTrace, day: usize, period_of_day: usize) -> f64 {
        let mut est = 0.0;
        let mut seen = false;
        for d in 0..day {
            let e = trace
                .period_energy(PeriodRef::new(d, period_of_day))
                .value();
            if seen {
                est = self.alpha * e + (1.0 - self.alpha) * est;
            } else {
                est = e;
                seen = true;
            }
        }
        est
    }
}

impl Default for EwmaPredictor {
    fn default() -> Self {
        Self::new(0.5)
    }
}

impl SolarPredictor for EwmaPredictor {
    fn forecast(&self, trace: &SolarTrace, from: PeriodRef, horizon: usize) -> Vec<Joules> {
        let mut out = Vec::with_capacity(horizon);
        self.forecast_into(trace, from, horizon, &mut out);
        out
    }

    fn forecast_into(
        &self,
        trace: &SolarTrace,
        from: PeriodRef,
        horizon: usize,
        out: &mut Vec<Joules>,
    ) {
        let grid = *trace.grid();
        let start = grid.period_index(from);
        let end = (start + horizon).min(grid.total_periods());
        out.clear();
        for idx in start..end {
            let p = grid.period_at(idx);
            out.push(Joules::new(self.ewma_at(trace, p.day, p.period).max(0.0)));
        }
    }

    fn forecast_one(&self, trace: &SolarTrace, from: PeriodRef) -> Joules {
        Joules::new(self.ewma_at(trace, from.day, from.period).max(0.0))
    }

    fn name(&self) -> &'static str {
        "ewma"
    }
}

/// Weather-Conditioned Moving Average (Piorno et al.), the predictor of
/// the paper's inter-task baseline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WcmaPredictor {
    /// Blend between the last observed period and the conditioned
    /// profile, in `[0, 1]`.
    pub alpha: f64,
    /// Number of past days `D` forming the profile.
    pub profile_days: usize,
    /// Number of recent periods `K` used for the GAP conditioning
    /// factor.
    pub gap_window: usize,
}

impl WcmaPredictor {
    /// Creates a WCMA predictor.
    ///
    /// # Panics
    ///
    /// Panics when `alpha` leaves `[0, 1]` or either window is zero.
    pub fn new(alpha: f64, profile_days: usize, gap_window: usize) -> Self {
        assert!((0.0..=1.0).contains(&alpha), "alpha must lie in [0, 1]");
        assert!(profile_days > 0, "profile window must be nonzero");
        assert!(gap_window > 0, "GAP window must be nonzero");
        Self {
            alpha,
            profile_days,
            gap_window,
        }
    }

    /// The GAP factor: weighted ratio of today's recent harvest to the
    /// profile's expectation at the same periods. `1.0` when no daylight
    /// history is available yet.
    fn gap(&self, trace: &SolarTrace, from: PeriodRef) -> f64 {
        let grid = trace.grid();
        let start_idx = grid.period_index(from);
        let mut num = 0.0;
        let mut den = 0.0;
        for k in 1..=self.gap_window {
            if start_idx < k {
                break;
            }
            let p = grid.period_at(start_idx - k);
            let profile = history_profile(trace, p.day, p.period, self.profile_days);
            if let Some(m) = profile {
                if m > 1e-9 {
                    let actual = trace.period_energy(p).value();
                    let w = (self.gap_window - k + 1) as f64 / self.gap_window as f64;
                    num += w * (actual / m);
                    den += w;
                }
            }
        }
        if den > 0.0 {
            (num / den).clamp(0.0, 3.0)
        } else {
            1.0
        }
    }
}

impl Default for WcmaPredictor {
    fn default() -> Self {
        Self::new(0.5, 4, 6)
    }
}

impl SolarPredictor for WcmaPredictor {
    fn forecast(&self, trace: &SolarTrace, from: PeriodRef, horizon: usize) -> Vec<Joules> {
        let mut out = Vec::with_capacity(horizon);
        self.forecast_into(trace, from, horizon, &mut out);
        out
    }

    fn forecast_into(
        &self,
        trace: &SolarTrace,
        from: PeriodRef,
        horizon: usize,
        out: &mut Vec<Joules>,
    ) {
        let grid = *trace.grid();
        let start = grid.period_index(from);
        let end = (start + horizon).min(grid.total_periods());
        let gap = self.gap(trace, from);
        let last_observed = if start > 0 {
            trace.period_energy(grid.period_at(start - 1)).value()
        } else {
            0.0
        };
        out.clear();
        for idx in start..end {
            let p = grid.period_at(idx);
            let profile = history_profile(trace, p.day, p.period, self.profile_days).unwrap_or(0.0);
            let conditioned = gap * profile;
            let pred = if idx == start {
                // One-step WCMA blends the last observation in.
                self.alpha * last_observed + (1.0 - self.alpha) * conditioned
            } else {
                conditioned
            };
            out.push(Joules::new(pred.max(0.0)));
        }
    }

    fn forecast_one(&self, trace: &SolarTrace, from: PeriodRef) -> Joules {
        let grid = trace.grid();
        let start = grid.period_index(from);
        let gap = self.gap(trace, from);
        let last_observed = if start > 0 {
            trace.period_energy(grid.period_at(start - 1)).value()
        } else {
            0.0
        };
        let profile =
            history_profile(trace, from.day, from.period, self.profile_days).unwrap_or(0.0);
        let conditioned = gap * profile;
        let pred = self.alpha * last_observed + (1.0 - self.alpha) * conditioned;
        Joules::new(pred.max(0.0))
    }

    fn name(&self) -> &'static str {
        "wcma"
    }
}

/// The true future perturbed with horizon-growing multiplicative noise.
///
/// Prediction for a period `h` periods ahead is
/// `true · max(0, 1 + ε)` with `ε ~ N(0, σ(h))` and
/// `σ(h) = base_sigma + growth_per_day · h / N_p`. Noise is derived
/// deterministically from `(seed, target period)` so repeated calls —
/// and overlapping horizons — see a consistent future.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NoisyOracle {
    /// RNG seed.
    pub seed: u64,
    /// Noise standard deviation at zero distance.
    pub base_sigma: f64,
    /// Additional standard deviation per day of prediction distance.
    pub growth_per_day: f64,
}

impl NoisyOracle {
    /// Creates a noisy oracle.
    ///
    /// # Panics
    ///
    /// Panics when either sigma parameter is negative.
    pub fn new(seed: u64, base_sigma: f64, growth_per_day: f64) -> Self {
        assert!(
            base_sigma >= 0.0 && growth_per_day >= 0.0,
            "sigmas must be nonnegative"
        );
        Self {
            seed,
            base_sigma,
            growth_per_day,
        }
    }

    /// A perfect oracle (zero noise) — the upper bound used by the
    /// Optimal scheduler.
    pub fn perfect() -> Self {
        Self::new(0, 0.0, 0.0)
    }
}

impl NoisyOracle {
    fn predict_index(
        &self,
        trace: &SolarTrace,
        idx: usize,
        day_start: usize,
        origin_day: usize,
    ) -> Joules {
        let grid = trace.grid();
        let p = grid.period_at(idx);
        let truth = trace.period_energy(p).value();
        // Distance from the start of the forecast origin's day, so all
        // forecasts issued on one day see the same noisy future; errors
        // refresh when real information arrives with the next day.
        let distance = (idx - day_start) as f64 / grid.periods_per_day() as f64;
        let sigma = self.base_sigma + self.growth_per_day * distance;
        if sigma == 0.0 || truth == 0.0 {
            return Joules::new(truth);
        }
        // The noise realisation is tied to the *target* period so
        // consecutive plans see a consistent (if wrong) future, and to
        // the forecast origin's day so errors refresh as real
        // information arrives.
        let mut rng = derive(self.seed, &format!("oracle-{idx}-{origin_day}"));
        let eps = gaussian(&mut rng) * sigma;
        Joules::new((truth * (1.0 + eps)).max(0.0))
    }
}

impl SolarPredictor for NoisyOracle {
    fn forecast(&self, trace: &SolarTrace, from: PeriodRef, horizon: usize) -> Vec<Joules> {
        let mut out = Vec::with_capacity(horizon);
        self.forecast_into(trace, from, horizon, &mut out);
        out
    }

    fn forecast_into(
        &self,
        trace: &SolarTrace,
        from: PeriodRef,
        horizon: usize,
        out: &mut Vec<Joules>,
    ) {
        let grid = *trace.grid();
        let start = grid.period_index(from);
        let end = (start + horizon).min(grid.total_periods());
        let day_start = grid.period_index(PeriodRef::new(from.day, 0));
        out.clear();
        for idx in start..end {
            out.push(self.predict_index(trace, idx, day_start, from.day));
        }
    }

    fn forecast_one(&self, trace: &SolarTrace, from: PeriodRef) -> Joules {
        let grid = trace.grid();
        let start = grid.period_index(from);
        let day_start = grid.period_index(PeriodRef::new(from.day, 0));
        self.predict_index(trace, start, day_start, from.day)
    }

    fn name(&self) -> &'static str {
        "noisy-oracle"
    }
}

/// Standard normal sample via Box–Muller (no external distribution
/// crate needed).
fn gaussian(rng: &mut helio_common::rng::DetRng) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(1e-12);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::archetype::DayArchetype;
    use crate::panel::SolarPanel;
    use crate::trace::TraceBuilder;
    use helio_common::time::TimeGrid;

    fn trace(days: usize, seed: u64) -> SolarTrace {
        let grid = TimeGrid::with_minute_slots(days, 48, 10).unwrap();
        TraceBuilder::new(grid, SolarPanel::paper_panel())
            .seed(seed)
            .weather(crate::weather::WeatherProcess::temperate())
            .build()
    }

    fn actual(trace: &SolarTrace, from: PeriodRef, horizon: usize) -> Vec<f64> {
        let grid = trace.grid();
        let start = grid.period_index(from);
        (start..(start + horizon).min(grid.total_periods()))
            .map(|i| trace.period_energy(grid.period_at(i)).value())
            .collect()
    }

    #[test]
    fn perfect_oracle_returns_truth() {
        let t = trace(5, 1);
        let from = PeriodRef::new(2, 10);
        let pred = NoisyOracle::perfect().forecast(&t, from, 20);
        let truth = actual(&t, from, 20);
        for (p, a) in pred.iter().zip(&truth) {
            assert!((p.value() - a).abs() < 1e-12);
        }
    }

    #[test]
    fn oracle_noise_grows_with_horizon() {
        let t = trace(10, 2);
        let oracle = NoisyOracle::new(3, 0.02, 0.25);
        let from = PeriodRef::new(1, 0);
        // Average relative error over near vs far halves of a 9-day
        // horizon, across several forecast origins.
        let mut near_err = Vec::new();
        let mut far_err = Vec::new();
        for day in 1..5 {
            let from = PeriodRef::new(day, 0);
            let horizon = 5 * t.grid().periods_per_day();
            let pred = oracle.forecast(&t, from, horizon);
            let truth = actual(&t, from, horizon);
            for (i, (p, a)) in pred.iter().zip(&truth).enumerate() {
                if *a > 1e-6 {
                    let rel = ((p.value() - a) / a).abs();
                    if i < horizon / 4 {
                        near_err.push(rel);
                    } else if i > 3 * horizon / 4 {
                        far_err.push(rel);
                    }
                }
            }
        }
        let near = helio_common::stats::mean(&near_err);
        let far = helio_common::stats::mean(&far_err);
        assert!(far > 1.5 * near, "far {far} should exceed near {near}");
        let _ = from;
    }

    #[test]
    fn oracle_is_deterministic_and_consistent() {
        let t = trace(6, 4);
        let oracle = NoisyOracle::new(7, 0.1, 0.2);
        let from = PeriodRef::new(2, 5);
        let a = oracle.forecast(&t, from, 30);
        let b = oracle.forecast(&t, from, 30);
        assert_eq!(a, b);
        // Overlapping horizons agree on shared targets (same origin day).
        let c = oracle.forecast(&t, PeriodRef::new(2, 6), 29);
        assert_eq!(&a[1..], &c[..]);
    }

    #[test]
    fn predictions_are_nonnegative() {
        let t = trace(8, 5);
        for pred in [
            NoisyOracle::new(1, 0.5, 1.0).forecast(&t, PeriodRef::new(3, 0), 60),
            WcmaPredictor::default().forecast(&t, PeriodRef::new(3, 0), 60),
            EwmaPredictor::default().forecast(&t, PeriodRef::new(3, 0), 60),
        ] {
            assert!(pred.iter().all(|e| e.value() >= 0.0));
        }
    }

    #[test]
    fn wcma_beats_ewma_on_changeable_weather() {
        // WCMA's GAP conditioning should track regime shifts better than
        // a plain per-period EWMA. Compare mean absolute error over a
        // month of temperate weather, forecasting each day at 6 AM.
        let t = trace(30, 11);
        let wcma = WcmaPredictor::default();
        let ewma = EwmaPredictor::default();
        let horizon = t.grid().periods_per_day() / 2;
        let mut err_w = 0.0;
        let mut err_e = 0.0;
        for day in 5..30 {
            let from = PeriodRef::new(day, 12); // 6 AM on a 48-period day
            let truth = actual(&t, from, horizon);
            let pw = wcma.forecast(&t, from, horizon);
            let pe = ewma.forecast(&t, from, horizon);
            for i in 0..truth.len() {
                err_w += (pw[i].value() - truth[i]).abs();
                err_e += (pe[i].value() - truth[i]).abs();
            }
        }
        assert!(
            err_w < err_e,
            "WCMA error {err_w:.1} should beat EWMA {err_e:.1}"
        );
    }

    #[test]
    fn forecast_truncates_at_grid_end() {
        let t = trace(3, 6);
        let total = t.grid().total_periods();
        let from = t.grid().period_at(total - 5);
        let pred = WcmaPredictor::default().forecast(&t, from, 50);
        assert_eq!(pred.len(), 5);
    }

    #[test]
    fn gap_tracks_cloudy_morning() {
        // Build 6 clear days then a storm day: at noon of the storm day
        // WCMA should predict well below the clear-day profile.
        let grid = TimeGrid::with_minute_slots(7, 48, 10).unwrap();
        let mut days = vec![DayArchetype::Clear; 6];
        days.push(DayArchetype::Storm);
        let t = TraceBuilder::new(grid, SolarPanel::paper_panel())
            .seed(8)
            .days(&days)
            .build();
        let from = PeriodRef::new(6, 24); // noon, storm day
        let wcma = WcmaPredictor::default().forecast(&t, from, 4);
        let profile_based = EwmaPredictor::new(0.2).forecast(&t, from, 4);
        let wsum: f64 = wcma.iter().map(|e| e.value()).sum();
        let esum: f64 = profile_based.iter().map(|e| e.value()).sum();
        assert!(
            wsum < 0.55 * esum,
            "WCMA ({wsum:.1} J) should discount the clear profile ({esum:.1} J) during a storm"
        );
    }

    #[test]
    fn constructor_validation() {
        assert!(std::panic::catch_unwind(|| EwmaPredictor::new(0.0)).is_err());
        assert!(std::panic::catch_unwind(|| WcmaPredictor::new(0.5, 0, 3)).is_err());
        assert!(std::panic::catch_unwind(|| NoisyOracle::new(1, -0.1, 0.0)).is_err());
    }
}
