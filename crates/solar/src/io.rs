//! Plain-text import/export of solar traces.
//!
//! The paper drives its evaluation from the NREL Measurement and
//! Instrumentation Data Center database. This module lets a user
//! replay any recorded irradiance log: export a synthetic trace for
//! inspection, or import a `slot_index,power_mw` CSV (one line per
//! slot) recorded elsewhere. No CSV crate needed — the format is two
//! plain columns.

use helio_common::time::TimeGrid;
use helio_common::units::Watts;

use crate::trace::SolarTrace;

/// Errors produced when parsing a trace CSV.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ParseTraceError {
    /// A line was not `index,value`.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// The offending content.
        content: String,
    },
    /// The file's slot count does not match the grid.
    WrongLength {
        /// Expected slots.
        expected: usize,
        /// Found rows.
        found: usize,
    },
    /// A power value was negative or non-finite.
    BadValue {
        /// 1-based line number.
        line: usize,
        /// The parsed value.
        value: f64,
    },
}

impl std::fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseTraceError::Malformed { line, content } => {
                write!(f, "malformed trace row at line {line}: {content:?}")
            }
            ParseTraceError::WrongLength { expected, found } => {
                write!(f, "trace has {found} rows but the grid needs {expected}")
            }
            ParseTraceError::BadValue { line, value } => {
                write!(f, "invalid power {value} mW at line {line}")
            }
        }
    }
}

impl std::error::Error for ParseTraceError {}

/// Serialises a trace as `slot_index,power_mw` rows with a header.
pub fn to_csv(trace: &SolarTrace) -> String {
    let grid = trace.grid();
    let mut out = String::with_capacity(grid.total_slots() * 12 + 32);
    out.push_str("slot,power_mw\n");
    for (i, slot) in grid.slots().enumerate() {
        out.push_str(&format!(
            "{},{:.6}\n",
            i,
            trace.slot_power(slot).milliwatts()
        ));
    }
    out
}

/// Parses a `slot_index,power_mw` CSV into a trace on `grid`.
///
/// Lines starting with `#` and the `slot,power_mw` header are skipped;
/// rows must appear in slot order.
///
/// # Errors
///
/// Returns a [`ParseTraceError`] describing the first problem found.
pub fn from_csv(grid: TimeGrid, csv: &str) -> Result<SolarTrace, ParseTraceError> {
    let mut powers: Vec<Watts> = Vec::with_capacity(grid.total_slots());
    for (lineno, raw) in csv.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with("slot,") {
            continue;
        }
        let mut parts = line.split(',');
        let (idx, val) = match (parts.next(), parts.next(), parts.next()) {
            (Some(i), Some(v), None) => (i.trim(), v.trim()),
            _ => {
                return Err(ParseTraceError::Malformed {
                    line: lineno + 1,
                    content: raw.to_string(),
                })
            }
        };
        let _: usize = idx.parse().map_err(|_| ParseTraceError::Malformed {
            line: lineno + 1,
            content: raw.to_string(),
        })?;
        let mw: f64 = val.parse().map_err(|_| ParseTraceError::Malformed {
            line: lineno + 1,
            content: raw.to_string(),
        })?;
        if !mw.is_finite() || mw < 0.0 {
            return Err(ParseTraceError::BadValue {
                line: lineno + 1,
                value: mw,
            });
        }
        powers.push(Watts::from_milliwatts(mw));
    }
    if powers.len() != grid.total_slots() {
        return Err(ParseTraceError::WrongLength {
            expected: grid.total_slots(),
            found: powers.len(),
        });
    }
    Ok(SolarTrace::from_powers(grid, powers))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::archetype::DayArchetype;
    use crate::panel::SolarPanel;
    use crate::trace::TraceBuilder;
    use helio_common::units::Seconds;

    fn grid() -> TimeGrid {
        TimeGrid::new(1, 4, 3, Seconds::new(60.0)).unwrap()
    }

    #[test]
    fn round_trip_preserves_energy() {
        let g = TimeGrid::new(2, 24, 10, Seconds::new(60.0)).unwrap();
        let t = TraceBuilder::new(g, SolarPanel::paper_panel())
            .seed(3)
            .days(&[DayArchetype::Clear, DayArchetype::Storm])
            .build();
        let csv = to_csv(&t);
        let back = from_csv(g, &csv).unwrap();
        assert!((t.total_energy().value() - back.total_energy().value()).abs() < 1e-3);
    }

    #[test]
    fn header_and_comments_are_skipped() {
        let csv = "# recorded at the test site\nslot,power_mw\n0,1.0\n1,2.0\n\n2,3.0\n3,0\n4,0\n5,0\n6,0\n7,0\n8,0\n9,0\n10,0\n11,0\n";
        let t = from_csv(grid(), csv).unwrap();
        assert!((t.total_energy().value() - (1.0 + 2.0 + 3.0) * 1e-3 * 60.0).abs() < 1e-9);
    }

    #[test]
    fn malformed_rows_are_reported_with_line_numbers() {
        let err = from_csv(grid(), "0,1.0,junk\n").unwrap_err();
        assert!(matches!(err, ParseTraceError::Malformed { line: 1, .. }));
        let err = from_csv(grid(), "zero,1.0\n").unwrap_err();
        assert!(matches!(err, ParseTraceError::Malformed { .. }));
    }

    #[test]
    fn negative_and_nonfinite_values_rejected() {
        let err = from_csv(grid(), "0,-1.0\n").unwrap_err();
        assert!(matches!(err, ParseTraceError::BadValue { value, .. } if value == -1.0));
        let err = from_csv(grid(), "0,NaN\n").unwrap_err();
        assert!(matches!(err, ParseTraceError::BadValue { .. }));
    }

    #[test]
    fn wrong_length_is_rejected() {
        let err = from_csv(grid(), "0,1.0\n1,1.0\n").unwrap_err();
        assert_eq!(
            err,
            ParseTraceError::WrongLength {
                expected: 12,
                found: 2
            }
        );
    }

    #[test]
    fn error_messages_are_informative() {
        let e = ParseTraceError::WrongLength {
            expected: 12,
            found: 2,
        };
        assert_eq!(e.to_string(), "trace has 2 rows but the grid needs 12");
    }
}
