//! # helio-solar
//!
//! Synthetic solar-power substrate for the DAC'15 reproduction.
//!
//! The paper drives its experiments from the NREL Measurement and
//! Instrumentation Data Center database and a 3.5×4.5 cm², 6 %-efficient
//! panel. This crate replaces the database with a seeded synthetic
//! irradiance generator: four canonical day *archetypes* (clear, broken
//! clouds, overcast, storm) matching the "four patterns" of the paper's
//! Fig. 7, a day-to-day weather Markov process for multi-month traces,
//! and the panel model that converts irradiance to harvested electrical
//! power `P^s_{i,j,m}`.
//!
//! It also implements the solar predictors the schedulers consume: the
//! WCMA (Weather-Conditioned Moving Average) algorithm used by the
//! paper's inter-task baseline \[3\], an EWMA baseline, and a noisy-oracle
//! horizon forecaster whose error grows with prediction distance — the
//! mechanism behind the prediction-length trade-off of Fig. 10(a).
//!
//! ## Example
//!
//! ```
//! use helio_common::time::TimeGrid;
//! use helio_solar::{DayArchetype, SolarPanel, TraceBuilder};
//!
//! # fn main() -> Result<(), helio_common::CommonError> {
//! let grid = TimeGrid::with_minute_slots(4, 144, 10)?;
//! let trace = TraceBuilder::new(grid, SolarPanel::paper_panel())
//!     .seed(7)
//!     .days(&[
//!         DayArchetype::Clear,
//!         DayArchetype::BrokenClouds,
//!         DayArchetype::Overcast,
//!         DayArchetype::Storm,
//!     ])
//!     .build();
//! // Fig. 7: daily harvest decreases from Day 1 to Day 4.
//! let daily: Vec<f64> = (0..4).map(|d| trace.day_energy(d).value()).collect();
//! assert!(daily[0] > daily[1] && daily[1] > daily[2] && daily[2] > daily[3]);
//! # Ok(())
//! # }
//! ```

pub mod archetype;
pub mod forecast;
pub mod io;
pub mod panel;
pub mod trace;
pub mod weather;

pub use archetype::DayArchetype;
pub use forecast::{EwmaPredictor, NoisyOracle, SolarPredictor, WcmaPredictor};
pub use io::{from_csv, to_csv, ParseTraceError};
pub use panel::SolarPanel;
pub use trace::{SolarTrace, TraceBuilder};
pub use weather::WeatherProcess;
