//! Day archetypes: the four canonical irradiance patterns of Fig. 7.
//!
//! Each archetype combines the diurnal sine envelope with a
//! characteristic cloud process. All randomness comes from the RNG the
//! caller supplies, so a given `(seed, day)` pair always produces the
//! same sky.

use helio_common::math::smoothstep;
use helio_common::rng::DetRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Peak clear-sky irradiance at solar noon (W/m²).
pub const PEAK_IRRADIANCE: f64 = 1000.0;
/// Hour of sunrise in local time.
pub const SUNRISE_HOUR: f64 = 6.0;
/// Hour of sunset in local time.
pub const SUNSET_HOUR: f64 = 18.0;

/// The four canonical day patterns of the paper's Fig. 7, ordered from
/// most to least energetic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum DayArchetype {
    /// Cloudless high-energy day (paper "Day 1").
    Clear,
    /// Intermittent cumulus shading (paper "Day 2").
    BrokenClouds,
    /// Uniform stratus deck (paper "Day 3").
    Overcast,
    /// Heavy storm cover (paper "Day 4").
    Storm,
}

impl DayArchetype {
    /// All archetypes, most to least energetic — the order of Fig. 7's
    /// Day 1 … Day 4.
    pub const ALL: [DayArchetype; 4] = [
        DayArchetype::Clear,
        DayArchetype::BrokenClouds,
        DayArchetype::Overcast,
        DayArchetype::Storm,
    ];

    /// Mean sky transmission factor of the archetype (fraction of
    /// clear-sky irradiance that reaches the panel on average).
    pub fn mean_transmission(self) -> f64 {
        match self {
            DayArchetype::Clear => 0.97,
            DayArchetype::BrokenClouds => 0.62,
            DayArchetype::Overcast => 0.30,
            DayArchetype::Storm => 0.10,
        }
    }

    /// Clear-sky irradiance envelope at local hour `h` (W/m²): a sine
    /// arch between sunrise and sunset with smooth twilight shoulders.
    pub fn clear_sky(hour: f64) -> f64 {
        if hour <= SUNRISE_HOUR || hour >= SUNSET_HOUR {
            return 0.0;
        }
        let t = (hour - SUNRISE_HOUR) / (SUNSET_HOUR - SUNRISE_HOUR);
        let arch = (std::f64::consts::PI * t).sin();
        // Soften the first and last half hour (horizon effects).
        let shoulder = smoothstep(t * 24.0).min(smoothstep((1.0 - t) * 24.0));
        PEAK_IRRADIANCE * arch * shoulder
    }

    /// Generates the per-slot sky-transmission series for one day of
    /// `slots` samples using the archetype's cloud process.
    ///
    /// The series is a piecewise-constant cloud field: cloud events with
    /// archetype-specific depth and duration modulate the mean
    /// transmission. Values stay within `[0, 1]`.
    pub fn transmission_series(self, slots: usize, rng: &mut DetRng) -> Vec<f64> {
        let mut series = Vec::with_capacity(slots);
        let (base, depth, event_prob, min_len, max_len) = match self {
            // (base transmission, cloud depth, per-slot event probability,
            //  event length bounds in slots)
            DayArchetype::Clear => (0.97, 0.08, 0.01, 2usize, 6usize),
            DayArchetype::BrokenClouds => (0.85, 0.62, 0.08, 3, 12),
            DayArchetype::Overcast => (0.34, 0.35, 0.10, 4, 16),
            DayArchetype::Storm => (0.13, 0.60, 0.15, 6, 24),
        };
        let mut remaining_event = 0usize;
        let mut event_depth = 0.0f64;
        for _ in 0..slots {
            if remaining_event == 0 && rng.gen::<f64>() < event_prob {
                remaining_event = rng.gen_range(min_len..=max_len);
                event_depth = depth * rng.gen_range(0.6..1.0);
            }
            let jitter = 1.0 + 0.04 * (rng.gen::<f64>() - 0.5);
            let factor = if remaining_event > 0 {
                remaining_event -= 1;
                base * (1.0 - event_depth)
            } else {
                base
            };
            series.push((factor * jitter).clamp(0.0, 1.0));
        }
        series
    }
}

impl std::fmt::Display for DayArchetype {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            DayArchetype::Clear => "clear",
            DayArchetype::BrokenClouds => "broken-clouds",
            DayArchetype::Overcast => "overcast",
            DayArchetype::Storm => "storm",
        };
        write!(f, "{name}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use helio_common::rng::seeded;
    use helio_common::stats::mean;

    #[test]
    fn clear_sky_is_zero_at_night_and_peaks_at_noon() {
        assert_eq!(DayArchetype::clear_sky(0.0), 0.0);
        assert_eq!(DayArchetype::clear_sky(5.9), 0.0);
        assert_eq!(DayArchetype::clear_sky(18.1), 0.0);
        let noon = DayArchetype::clear_sky(12.0);
        assert!((noon - PEAK_IRRADIANCE).abs() < 1.0, "noon {noon}");
        assert!(DayArchetype::clear_sky(9.0) < noon);
        assert!(DayArchetype::clear_sky(9.0) > 0.0);
    }

    #[test]
    fn clear_sky_is_symmetric_about_noon() {
        for dh in [1.0, 2.0, 4.0, 5.5] {
            let a = DayArchetype::clear_sky(12.0 - dh);
            let b = DayArchetype::clear_sky(12.0 + dh);
            assert!((a - b).abs() < 1e-9, "asymmetry at ±{dh}");
        }
    }

    #[test]
    fn archetype_means_order_like_fig7() {
        let mut rng = seeded(3);
        let means: Vec<f64> = DayArchetype::ALL
            .iter()
            .map(|a| mean(&a.transmission_series(1440, &mut rng)))
            .collect();
        assert!(
            means.windows(2).all(|w| w[0] > w[1]),
            "transmission must decrease Day1→Day4: {means:?}"
        );
    }

    #[test]
    fn transmission_stays_in_unit_interval() {
        let mut rng = seeded(11);
        for a in DayArchetype::ALL {
            for v in a.transmission_series(1440, &mut rng) {
                assert!((0.0..=1.0).contains(&v), "{a}: {v}");
            }
        }
    }

    #[test]
    fn broken_clouds_have_high_variance() {
        let mut rng = seeded(5);
        let broken = DayArchetype::BrokenClouds.transmission_series(1440, &mut rng);
        let clear = DayArchetype::Clear.transmission_series(1440, &mut rng);
        let var = |s: &[f64]| helio_common::stats::std_dev(s);
        assert!(
            var(&broken) > 3.0 * var(&clear),
            "broken {} vs clear {}",
            var(&broken),
            var(&clear)
        );
    }

    #[test]
    fn series_is_deterministic_per_seed() {
        let a = DayArchetype::BrokenClouds.transmission_series(100, &mut seeded(9));
        let b = DayArchetype::BrokenClouds.transmission_series(100, &mut seeded(9));
        assert_eq!(a, b);
    }

    #[test]
    fn display_names() {
        assert_eq!(DayArchetype::Storm.to_string(), "storm");
        assert_eq!(DayArchetype::BrokenClouds.to_string(), "broken-clouds");
    }
}
