//! The photovoltaic panel model.

use helio_common::units::Watts;
use serde::{Deserialize, Serialize};

/// A photovoltaic panel converting irradiance (W/m²) into harvested
/// electrical power, including the converter chain of the direct supply
/// channel.
///
/// # Example
///
/// ```
/// use helio_solar::SolarPanel;
///
/// let panel = SolarPanel::paper_panel();
/// // Standard test conditions: 1000 W/m² irradiance.
/// let p = panel.electrical_power(1000.0);
/// assert!((p.milliwatts() - 94.5).abs() < 0.1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SolarPanel {
    area_m2: f64,
    efficiency: f64,
}

impl SolarPanel {
    /// Creates a panel.
    ///
    /// # Panics
    ///
    /// Panics when the area is non-positive or the efficiency leaves
    /// `(0, 1]` — panel definitions are experiment constants.
    pub fn new(area_m2: f64, efficiency: f64) -> Self {
        assert!(
            area_m2 > 0.0 && area_m2.is_finite(),
            "panel area must be positive"
        );
        assert!(
            efficiency > 0.0 && efficiency <= 1.0,
            "panel efficiency must lie in (0, 1]"
        );
        Self {
            area_m2,
            efficiency,
        }
    }

    /// The paper's panel: 3.5 cm × 4.5 cm with 6 % tested average
    /// converting efficiency (Section 6.1).
    pub fn paper_panel() -> Self {
        Self::new(0.035 * 0.045, 0.06)
    }

    /// Panel area in m².
    pub const fn area_m2(&self) -> f64 {
        self.area_m2
    }

    /// Average converting efficiency (fraction).
    pub const fn efficiency(&self) -> f64 {
        self.efficiency
    }

    /// Electrical power harvested at an irradiance of `w_per_m2` W/m².
    /// Negative irradiance (numerical noise in generators) clamps to
    /// zero.
    pub fn electrical_power(&self, w_per_m2: f64) -> Watts {
        Watts::new(w_per_m2.max(0.0) * self.area_m2 * self.efficiency)
    }

    /// Peak power at standard 1000 W/m² irradiance — a convenient scale
    /// for sizing workloads.
    pub fn peak_power(&self) -> Watts {
        self.electrical_power(1000.0)
    }
}

impl Default for SolarPanel {
    fn default() -> Self {
        Self::paper_panel()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_panel_peak_is_about_95_mw() {
        let p = SolarPanel::paper_panel().peak_power();
        assert!((p.milliwatts() - 94.5).abs() < 0.1, "got {p}");
    }

    #[test]
    fn negative_irradiance_clamps() {
        let panel = SolarPanel::paper_panel();
        assert_eq!(panel.electrical_power(-5.0), Watts::ZERO);
    }

    #[test]
    fn power_scales_linearly_with_irradiance() {
        let panel = SolarPanel::paper_panel();
        let half = panel.electrical_power(500.0);
        let full = panel.electrical_power(1000.0);
        assert!((full.value() - 2.0 * half.value()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "efficiency")]
    fn rejects_bad_efficiency() {
        SolarPanel::new(0.01, 1.5);
    }

    #[test]
    #[should_panic(expected = "area")]
    fn rejects_bad_area() {
        SolarPanel::new(0.0, 0.1);
    }
}
