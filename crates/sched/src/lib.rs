//! # helio-sched
//!
//! Slot-level task schedulers for the DAC'15 reproduction: the
//! execution-state bookkeeping (`S'_{i,j,m}(n)` of the system model),
//! the [`SlotScheduler`] trait the simulation engine drives, the
//! baseline schedulers the paper compares against, and the per-period
//! *subset execution kernel* that the offline optimiser and online
//! planner share.
//!
//! ## Baselines
//!
//! * [`AsapScheduler`] — run everything as soon as possible, blind to
//!   energy (used for capacitor sizing's migration patterns and as a
//!   naive reference).
//! * [`LsaScheduler`] — the up-to-date WCMA-based lazy inter-task
//!   scheduler of ref. \[3\]: admits tasks against the period's predicted
//!   energy budget and runs each admitted task contiguously as late as
//!   its deadline allows (letting the capacitor charge first).
//! * [`IntraTaskScheduler`] — the fine-grained intra-task load-matching
//!   scheduler of ref. \[9\]: every slot, tasks are admitted in
//!   urgency order while the slot's available energy lasts; tasks are
//!   preempted freely at slot boundaries.
//!
//! Both published baselines optimise the *current* period — exactly the
//! short-sightedness the paper's long-term scheduler corrects.

// Library code must degrade gracefully, never panic; tests are
// exempt. CI enforces this via clippy.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::panic))]

pub mod asap;
pub mod cache;
pub mod context;
pub mod exec;
pub mod intra;
pub mod lsa;
pub mod subset;
pub mod traits;

pub use asap::AsapScheduler;
pub use cache::{simulate_subset_at, CacheStats, SubsetSimCache};
pub use context::{PeriodStart, SlotContext};
pub use exec::ExecState;
pub use intra::IntraTaskScheduler;
pub use lsa::LsaScheduler;
pub use subset::{simulate_subset, SubsetOutcome};
pub use traits::{edf_pick, edf_pick_set, SlotScheduler};
