//! The [`SlotScheduler`] trait the simulation engine drives, plus the
//! NVP-exclusive EDF selection helper every concrete scheduler uses.

use helio_tasks::{TaskGraph, TaskId};

use crate::context::{PeriodStart, SlotContext};

/// A scheduler that decides, slot by slot, which tasks run.
///
/// The engine calls [`SlotScheduler::begin_period`] once per period and
/// [`SlotScheduler::select`] once per slot; the returned task set is
/// executed if the PMU can power it (the engine handles brown-outs).
/// Implementations must respect NVP exclusivity — at most one returned
/// task per NVP (the engine asserts this).
pub trait SlotScheduler {
    /// Scheduler name for experiment tables.
    fn name(&self) -> &'static str;

    /// Observes the period-start context (predicted energy, admission
    /// mask). Default: no-op for stateless schedulers.
    fn begin_period(&mut self, ctx: &PeriodStart<'_>) {
        let _ = ctx;
    }

    /// Chooses the tasks to run in this slot.
    fn select(&mut self, ctx: &SlotContext<'_>) -> Vec<TaskId>;
}

/// Picks at most one task per NVP from `candidates`, preferring the
/// earliest deadline (ties: least slack, then lowest id) — the
/// canonical priority rule all schedulers here share.
pub fn edf_pick(graph: &TaskGraph, candidates: &[TaskId], slot: usize) -> Vec<TaskId> {
    let mut per_nvp: Vec<Option<TaskId>> = vec![None; graph.nvp_count()];
    let mut sorted = candidates.to_vec();
    sorted.sort_by(|&a, &b| {
        let ta = graph.task(a);
        let tb = graph.task(b);
        ta.deadline
            .value()
            .total_cmp(&tb.deadline.value())
            .then(a.index().cmp(&b.index()))
    });
    let _ = slot;
    for id in sorted {
        let nvp = graph.task(id).nvp;
        if per_nvp[nvp].is_none() {
            per_nvp[nvp] = Some(id);
        }
    }
    per_nvp.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use helio_tasks::benchmarks;

    #[test]
    fn edf_pick_respects_nvp_exclusivity() {
        let g = benchmarks::wam();
        let all: Vec<TaskId> = g.ids().collect();
        let picked = edf_pick(&g, &all, 0);
        // One per NVP at most.
        let mut nvps: Vec<usize> = picked.iter().map(|&id| g.task(id).nvp).collect();
        nvps.sort_unstable();
        nvps.dedup();
        assert_eq!(nvps.len(), picked.len());
        assert!(picked.len() <= g.nvp_count());
    }

    #[test]
    fn edf_pick_prefers_earliest_deadline() {
        let g = benchmarks::wam();
        let all: Vec<TaskId> = g.ids().collect();
        let picked = edf_pick(&g, &all, 0);
        // On NVP 0 the earliest deadline is heart_rate_sampling (150 s).
        let nvp0 = picked
            .iter()
            .find(|&&id| g.task(id).nvp == 0)
            .expect("nvp0 candidate");
        assert_eq!(g.task(*nvp0).name, "heart_rate_sampling");
    }

    #[test]
    fn edf_pick_empty_candidates() {
        let g = benchmarks::wam();
        assert!(edf_pick(&g, &[], 0).is_empty());
    }
}
