//! The [`SlotScheduler`] trait the simulation engine drives, plus the
//! NVP-exclusive EDF selection helper every concrete scheduler uses.

use helio_common::taskset::MAX_TASKS;
use helio_common::TaskSet;
use helio_tasks::{TaskGraph, TaskId};

use crate::context::{PeriodStart, SlotContext};

/// A scheduler that decides, slot by slot, which tasks run.
///
/// The engine calls [`SlotScheduler::begin_period`] once per period and
/// [`SlotScheduler::select`] once per slot; the returned task set is
/// executed if the PMU can power it (the engine handles brown-outs).
/// Implementations must respect NVP exclusivity — at most one returned
/// task per NVP (the engine asserts this) — and must not allocate on
/// the `select` path once warm (scratch buffers belong in the
/// scheduler struct).
pub trait SlotScheduler {
    /// Scheduler name for experiment tables.
    fn name(&self) -> &'static str;

    /// Observes the period-start context (predicted energy, admission
    /// mask). Default: no-op for stateless schedulers.
    fn begin_period(&mut self, ctx: &PeriodStart<'_>) {
        let _ = ctx;
    }

    /// Chooses the tasks to run in this slot, as a bitmask.
    fn select(&mut self, ctx: &SlotContext<'_>) -> TaskSet;
}

/// Picks at most one task per NVP from `candidates`, preferring the
/// earliest deadline (ties: lowest id) — the canonical priority rule
/// all schedulers here share. Allocation-free: per-NVP champions live
/// on the stack.
pub fn edf_pick_set(graph: &TaskGraph, candidates: TaskSet) -> TaskSet {
    let mut best: [Option<TaskId>; MAX_TASKS] = [None; MAX_TASKS];
    for i in candidates.iter() {
        let id = TaskId(i);
        let nvp = graph.task(id).nvp;
        match best[nvp] {
            None => best[nvp] = Some(id),
            Some(b) => {
                // Ascending iteration: on deadline ties the earlier
                // index is already in place.
                if graph
                    .task(id)
                    .deadline
                    .value()
                    .total_cmp(&graph.task(b).deadline.value())
                    .is_lt()
                {
                    best[nvp] = Some(id);
                }
            }
        }
    }
    let mut picked = TaskSet::EMPTY;
    for champ in best.iter().flatten() {
        picked.insert(champ.index());
    }
    picked
}

/// Picks at most one task per NVP from `candidates`, preferring the
/// earliest deadline (ties: lowest id). Allocating convenience wrapper
/// over [`edf_pick_set`]; the returned ids are in ascending index
/// order.
pub fn edf_pick(graph: &TaskGraph, candidates: &[TaskId], slot: usize) -> Vec<TaskId> {
    let _ = slot;
    let mut set = TaskSet::EMPTY;
    for id in candidates {
        set.insert(id.index());
    }
    edf_pick_set(graph, set).iter().map(TaskId).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use helio_tasks::benchmarks;

    #[test]
    fn edf_pick_respects_nvp_exclusivity() {
        let g = benchmarks::wam();
        let all: Vec<TaskId> = g.ids().collect();
        let picked = edf_pick(&g, &all, 0);
        // One per NVP at most.
        let mut nvps: Vec<usize> = picked.iter().map(|&id| g.task(id).nvp).collect();
        nvps.sort_unstable();
        nvps.dedup();
        assert_eq!(nvps.len(), picked.len());
        assert!(picked.len() <= g.nvp_count());
    }

    #[test]
    fn edf_pick_prefers_earliest_deadline() {
        let g = benchmarks::wam();
        let all: Vec<TaskId> = g.ids().collect();
        let picked = edf_pick(&g, &all, 0);
        // On NVP 0 the earliest deadline is heart_rate_sampling (150 s).
        let nvp0 = picked
            .iter()
            .find(|&&id| g.task(id).nvp == 0)
            .expect("nvp0 candidate");
        assert_eq!(g.task(*nvp0).name, "heart_rate_sampling");
    }

    #[test]
    fn edf_pick_empty_candidates() {
        let g = benchmarks::wam();
        assert!(edf_pick(&g, &[], 0).is_empty());
        assert!(edf_pick_set(&g, TaskSet::EMPTY).is_empty());
    }

    #[test]
    fn set_and_vec_pick_agree() {
        let g = benchmarks::ecg();
        let all: Vec<TaskId> = g.ids().collect();
        let from_vec = edf_pick(&g, &all, 0);
        let from_set = edf_pick_set(&g, g.all_tasks());
        assert_eq!(
            from_vec.iter().map(|id| id.index()).collect::<Vec<_>>(),
            from_set.iter().collect::<Vec<_>>()
        );
    }
}
