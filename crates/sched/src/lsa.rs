//! The WCMA-based lazy inter-task scheduler (the paper's "Inter-task"
//! baseline, ref. \[3\]).
//!
//! At each period start it admits tasks against the period's *predicted*
//! energy budget (prediction by WCMA), then runs each admitted task
//! contiguously, as late as its deadline chain allows — the lazy rule
//! that leaves solar energy to accumulate in the capacitor before
//! spending it. Inter-task only: a started task runs to completion
//! without preemption.
//!
//! The baseline optimises the current period in isolation: it will
//! happily drain the capacitor for today's tasks with no regard for the
//! night ahead.

use helio_common::units::Joules;
use helio_common::TaskSet;
use helio_tasks::TaskId;

use crate::context::{PeriodStart, SlotContext};
use crate::traits::{edf_pick_set, SlotScheduler};

/// Lazy inter-task scheduler with energy-budget admission.
#[derive(Debug, Clone, Default)]
pub struct LsaScheduler {
    admitted: TaskSet,
    started: TaskSet,
    latest_start: Vec<usize>,
    /// Deadline-ordered admission scratch, reused across periods.
    order: Vec<TaskId>,
    // Per-period scratch for the lazy-window fixpoint, reused so
    // `begin_period` allocates nothing once warm.
    topo: Vec<TaskId>,
    indegree: Vec<usize>,
    stack: Vec<TaskId>,
    needed: Vec<usize>,
    own_deadline: Vec<usize>,
    nvp_order: Vec<TaskId>,
    succ_sets: Vec<TaskSet>,
    nvp_sets: Vec<TaskSet>,
}

impl LsaScheduler {
    /// Creates an LSA scheduler.
    pub fn new() -> Self {
        Self::default()
    }
}

impl SlotScheduler for LsaScheduler {
    fn name(&self) -> &'static str {
        "inter-task-lsa"
    }

    fn begin_period(&mut self, ctx: &PeriodStart<'_>) {
        let graph = ctx.graph;
        let n = graph.len();
        // Admission: EDF order, while the predicted budget lasts.
        let budget = ctx.predicted_energy * 0.95 + ctx.stored_energy;
        self.order.clear();
        self.order.extend(graph.ids());
        self.order.sort_unstable_by(|&a, &b| {
            graph
                .task(a)
                .deadline
                .value()
                .total_cmp(&graph.task(b).deadline.value())
                .then(a.index().cmp(&b.index()))
        });
        let mut admitted = TaskSet::EMPTY;
        let mut spent = Joules::ZERO;
        for &id in &self.order {
            if !ctx.is_allowed(id) {
                continue;
            }
            let cost = graph.task(id).energy();
            // Admit a task only with its whole dependency closure.
            let preds_ok = graph.predecessor_set(id).is_subset_of(admitted);
            if preds_ok && spent + cost <= budget {
                admitted.insert(id.index());
                spent += cost;
            }
        }
        // Latest feasible start per task: alternate a dependency
        // backward pass with a per-NVP compaction pass (same-NVP tasks
        // serialise, so their lazy windows must not overlap). A few
        // iterations reach the fixpoint on these small graphs.
        let slot = ctx.slot_duration;
        self.latest_start.clear();
        self.latest_start.resize(n, usize::MAX);
        let latest_start = &mut self.latest_start;
        graph
            .topological_order_into(&mut self.indegree, &mut self.stack, &mut self.topo)
            .expect("validated graphs are acyclic");
        self.needed.clear();
        self.needed
            .extend(graph.tasks().iter().map(|t| t.slots_needed(slot)));
        let needed = &self.needed;
        self.own_deadline.clear();
        self.own_deadline.extend(
            graph
                .tasks()
                .iter()
                .map(|t| t.deadline_slot(slot).min(ctx.slots_per_period)),
        );
        let own_deadline = &self.own_deadline;
        // Successor and NVP membership masks, hoisted out of the
        // fixpoint iterations (they never change within a period).
        self.succ_sets.clear();
        self.succ_sets
            .extend(graph.ids().map(|id| graph.successor_set(id)));
        self.nvp_sets.clear();
        self.nvp_sets
            .extend((0..graph.nvp_count()).map(|nvp| graph.nvp_set(nvp)));
        for _ in 0..4 {
            // Dependency pass.
            for &id in self.topo.iter().rev() {
                let succ_bound = self.succ_sets[id.index()]
                    .iter()
                    .map(|s| latest_start[s])
                    .min()
                    .unwrap_or(usize::MAX)
                    .min(own_deadline[id.index()])
                    .min(latest_start[id.index()].saturating_add(needed[id.index()]));
                latest_start[id.index()] = succ_bound.saturating_sub(needed[id.index()]);
            }
            // NVP compaction pass: latest-fit tasks of each NVP back to
            // back, latest finisher first. The unstable sort keyed on
            // (finish, index) reproduces the stable finish-only sort of
            // the ascending-index NVP membership exactly.
            for nvp in 0..self.nvp_sets.len() {
                self.nvp_order.clear();
                self.nvp_order.extend(self.nvp_sets[nvp].iter().map(TaskId));
                self.nvp_order.sort_unstable_by_key(|&id| {
                    (
                        std::cmp::Reverse(
                            latest_start[id.index()].saturating_add(needed[id.index()]),
                        ),
                        id.index(),
                    )
                });
                let mut bound = usize::MAX;
                for &id in &self.nvp_order {
                    let finish = latest_start[id.index()]
                        .saturating_add(needed[id.index()])
                        .min(bound);
                    latest_start[id.index()] = finish.saturating_sub(needed[id.index()]);
                    bound = latest_start[id.index()];
                }
            }
        }
        self.admitted = admitted;
        self.started = TaskSet::EMPTY;
    }

    fn select(&mut self, ctx: &SlotContext<'_>) -> TaskSet {
        let runnable = ctx.exec.runnable_set(ctx.slot).intersection(self.admitted);
        let mut candidates = TaskSet::EMPTY;
        for i in runnable.iter() {
            // Started tasks continue (non-preemptive); unstarted tasks
            // wait for their lazy start slot.
            if self.started.contains(i) || ctx.slot >= self.latest_start[i] {
                candidates.insert(i);
            }
        }
        let picked = edf_pick_set(ctx.graph, candidates);
        self.started = self.started.union(picked);
        picked
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::ExecState;
    use helio_common::units::Seconds;
    use helio_tasks::benchmarks;

    const SLOT: Seconds = Seconds::new(60.0);

    fn start<'a>(
        graph: &'a helio_tasks::TaskGraph,
        predicted: f64,
        stored: f64,
    ) -> PeriodStart<'a> {
        PeriodStart {
            graph,
            slot_duration: SLOT,
            slots_per_period: 10,
            predicted_energy: Joules::new(predicted),
            stored_energy: Joules::new(stored),
            allowed: None,
        }
    }

    fn slot_ctx<'a>(
        graph: &'a helio_tasks::TaskGraph,
        exec: &'a ExecState,
        slot: usize,
    ) -> SlotContext<'a> {
        SlotContext {
            graph,
            exec,
            slot,
            slot_duration: SLOT,
            slots_per_period: 10,
            harvest: Joules::new(5.0),
            direct_deliverable: Joules::new(4.75),
            storage_deliverable: Joules::new(2.0),
        }
    }

    #[test]
    fn zero_budget_admits_nothing() {
        let g = benchmarks::wam();
        let mut s = LsaScheduler::new();
        s.begin_period(&start(&g, 0.0, 0.0));
        let exec = ExecState::new(&g, SLOT);
        assert!(s.select(&slot_ctx(&g, &exec, 0)).is_empty());
    }

    #[test]
    fn generous_budget_admits_everything_lazily() {
        let g = benchmarks::ecg();
        let mut s = LsaScheduler::new();
        s.begin_period(&start(&g, 100.0, 0.0));
        let mut exec = ExecState::new(&g, SLOT);
        // Drive a full period; everything should complete.
        for m in 0..10 {
            for i in s.select(&slot_ctx(&g, &exec, m)) {
                exec.advance(TaskId(i));
            }
        }
        assert_eq!(exec.misses(), 0);
    }

    #[test]
    fn laziness_delays_slack_tasks() {
        let g = benchmarks::ecg();
        let mut s = LsaScheduler::new();
        s.begin_period(&start(&g, 100.0, 0.0));
        let exec = ExecState::new(&g, SLOT);
        // lpf has deadline slot 3 and needs 1 slot: latest start is
        // bounded by its successors' chain, but it must not start at
        // slot 0 if the chain allows later. The chain hpf1(4)-hpf2(5)
        // bounds lpf's latest start below 3.
        let picked0 = s.select(&slot_ctx(&g, &exec, 0));
        let lpf = g.ids().next().unwrap();
        assert!(
            !picked0.contains(lpf.index()),
            "lazy scheduler should not start lpf at slot 0"
        );
    }

    #[test]
    fn admission_is_deadline_ordered_under_tight_budget() {
        let g = benchmarks::wam();
        let mut s = LsaScheduler::new();
        // Budget for roughly the two earliest-deadline root tasks.
        s.begin_period(&start(&g, 4.0, 0.0));
        let admitted = s.admitted;
        let names: Vec<&str> = g
            .ids()
            .filter(|id| admitted.contains(id.index()))
            .map(|id| g.task(id).name.as_str())
            .collect();
        assert!(
            names.contains(&"heart_rate_sampling"),
            "admitted: {names:?}"
        );
        assert!(
            !names.contains(&"data_transmission"),
            "latest-deadline task should be dropped first: {names:?}"
        );
    }

    #[test]
    fn started_tasks_are_not_preempted() {
        let g = benchmarks::shm();
        let mut s = LsaScheduler::new();
        s.begin_period(&start(&g, 100.0, 0.0));
        let mut exec = ExecState::new(&g, SLOT);
        let mut runs: Vec<TaskSet> = Vec::new();
        for m in 0..10 {
            let picked = s.select(&slot_ctx(&g, &exec, m));
            for i in picked {
                exec.advance(TaskId(i));
            }
            runs.push(picked);
        }
        // Every multi-slot task's run slots must be contiguous.
        for id in g.ids() {
            let slots: Vec<usize> = runs
                .iter()
                .enumerate()
                .filter(|(_, r)| r.contains(id.index()))
                .map(|(m, _)| m)
                .collect();
            if slots.len() > 1 {
                assert!(
                    slots.windows(2).all(|w| w[1] == w[0] + 1),
                    "{}: non-contiguous slots {slots:?}",
                    g.task(id).name
                );
            }
        }
    }
}
