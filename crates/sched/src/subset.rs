//! The per-period subset-execution kernel shared by the offline LUT
//! builder (Eq. 15: minimise the capacitor energy consumed to achieve a
//! target DMR) and the online planner.
//!
//! Given the set of tasks a period commits to (`te_{i,j}(n)` bits), the
//! kernel simulates the period slot by slot with a solar-following
//! policy: zero-slack tasks run unconditionally (deferring them
//! forfeits their deadline), other admitted tasks run only when the
//! direct solar channel can power them — deferring work into sunshine
//! and minimising the energy drawn from the supercapacitor.

use helio_common::taskset::MAX_TASKS;
use helio_common::units::{Joules, Seconds};
use helio_common::TaskSet;
use helio_nvp::Pmu;
use helio_storage::{CapacitorBank, StorageModelParams};
use helio_tasks::{TaskGraph, TaskId};
use serde::{Deserialize, Serialize};

use crate::exec::ExecState;

/// Energy and deadline ledger of one simulated period.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SubsetOutcome {
    /// Tasks that missed their deadline (over the *whole* graph, not
    /// just the subset — excluded tasks miss by definition).
    pub misses: usize,
    /// Per-period deadline-miss rate `DMR_{i,j}`.
    pub dmr: f64,
    /// Whether every task in the subset completed.
    pub completed_all: bool,
    /// Energy drawn from the active capacitor (`E^c_{i,j}` of Eq. 15).
    pub cap_drawn: Joules,
    /// Solar energy absorbed into the capacitor during the period.
    pub cap_stored: Joules,
    /// Solar surplus that found no room (capacitor full).
    pub wasted: Joules,
    /// Load demand actually served.
    pub served: Joules,
    /// Number of slots that browned out (demand unserved).
    pub brownouts: usize,
}

/// Simulates one period executing exactly the tasks of `subset`
/// (a bitmask over the graph's task ids; dependencies of included tasks
/// must be included for them to complete).
///
/// `solar` holds the per-slot harvested energies of the period; the
/// bank's *active* capacitor is charged/discharged in place, so the
/// caller sees the post-period storage state.
///
/// Bits of `subset` outside the graph's task range are ignored — a
/// corrupted planner decision degrades to the valid part of the mask
/// instead of bringing the node down.
pub fn simulate_subset(
    graph: &TaskGraph,
    subset: TaskSet,
    solar: &[Joules],
    slot_duration: Seconds,
    bank: &mut CapacitorBank,
    pmu: &Pmu,
    storage: &StorageModelParams,
) -> SubsetOutcome {
    let subset = subset.intersection(graph.all_tasks());
    let mut exec = ExecState::new(graph, slot_duration);
    let mut cap_drawn = Joules::ZERO;
    let mut cap_stored = Joules::ZERO;
    let mut wasted = Joules::ZERO;
    let mut served = Joules::ZERO;
    let mut brownouts = 0usize;

    // Per-NVP task masks, computed once for the allocation-free
    // urgency check below.
    let mut nvp_tasks = [TaskSet::EMPTY; MAX_TASKS];
    for (nvp, mask) in nvp_tasks.iter_mut().enumerate().take(graph.nvp_count()) {
        *mask = graph.nvp_set(nvp);
    }
    // Urgency-ordered candidate scratch, reused across slots.
    let mut candidates: Vec<TaskId> = Vec::with_capacity(graph.len());

    for (m, &harvest) in solar.iter().enumerate() {
        bank.leak_all(storage, slot_duration);

        // Candidate tasks: runnable members of the subset.
        candidates.clear();
        candidates.extend(exec.runnable_set(m).intersection(subset).iter().map(TaskId));
        candidates
            .sort_unstable_by_key(|&id| (exec.slack(id, m).unwrap_or(usize::MAX), id.index()));

        let mut picked = TaskSet::EMPTY;
        let mut nvp_used = 0u32;
        let direct_capacity = harvest * pmu.params().direct_efficiency;
        let mut committed = Joules::ZERO;
        // Urgent pass: an NVP must run when any deadline horizon of its
        // pending subset tasks has no spare slot left (classic busy
        // condition — per-task slack alone misses same-NVP contention).
        for &id in &candidates {
            let nvp = graph.task(id).nvp;
            if nvp_used & (1 << nvp) != 0 {
                continue;
            }
            if nvp_is_forced(nvp_tasks[nvp].intersection(subset), &exec, m) {
                // Candidates are slack-sorted, so `id` is this NVP's
                // most urgent runnable task.
                picked.insert(id.index());
                nvp_used |= 1 << nvp;
                committed += graph.task(id).power * slot_duration;
            }
        }
        // Opportunistic pass: spend free sunshine.
        for &id in &candidates {
            let nvp = graph.task(id).nvp;
            if nvp_used & (1 << nvp) != 0 {
                continue;
            }
            let cost = graph.task(id).power * slot_duration;
            if committed + cost <= direct_capacity {
                picked.insert(id.index());
                nvp_used |= 1 << nvp;
                committed += cost;
            }
        }

        // `committed` accumulated exactly the picked tasks' costs in
        // pick order, so it *is* the slot demand.
        let flow = pmu.settle_slot(harvest, committed, bank, storage);
        cap_drawn += flow.served_storage;
        cap_stored += flow.stored;
        wasted += flow.wasted;
        served += flow.served_direct + flow.served_storage;
        if flow.fully_served() {
            for i in picked {
                exec.advance(TaskId(i));
            }
        } else {
            // Brown-out: the energy is spent but the slot makes no
            // progress (the NVPs back up and stall).
            brownouts += 1;
        }
    }

    let completed_all = subset.is_subset_of(exec.completed_set());
    SubsetOutcome {
        misses: exec.misses(),
        dmr: exec.dmr(),
        completed_all,
        cap_drawn,
        cap_stored,
        wasted,
        served,
        brownouts,
    }
}

/// Whether an NVP has no spare slot before some deadline horizon:
/// `members` holds the NVP's subset tasks; for any deadline slot `d`
/// of its incomplete members, the total remaining work due by `d` must
/// fit into `d − m` slots; equality (or overflow) forces the NVP to
/// run now. Allocation-free: horizons are enumerated straight off the
/// member mask (duplicates re-check the same horizon harmlessly).
fn nvp_is_forced(members: TaskSet, exec: &ExecState, m: usize) -> bool {
    for i in members.iter() {
        let id = TaskId(i);
        if exec.is_complete(id) || exec.is_doomed(id, m) {
            continue;
        }
        let d = exec.deadline_slot(id);
        if d <= m {
            continue;
        }
        let mut due = 0usize;
        for j in members.iter() {
            let jd = TaskId(j);
            if exec.is_complete(jd) || exec.is_doomed(jd, m) {
                continue;
            }
            if exec.deadline_slot(jd) <= d {
                due += exec.remaining(jd);
            }
        }
        if due >= d - m {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use helio_common::units::Farads;
    use helio_tasks::benchmarks;

    const SLOT: Seconds = Seconds::new(60.0);

    fn setup(initial_charge: f64) -> (CapacitorBank, Pmu, StorageModelParams) {
        let storage = StorageModelParams::default();
        let mut bank = CapacitorBank::new(&[Farads::new(10.0)], &storage).unwrap();
        if initial_charge > 0.0 {
            bank.charge_active(&storage, Joules::new(initial_charge));
        }
        (bank, Pmu::default(), storage)
    }

    fn sunny(slots: usize) -> Vec<Joules> {
        vec![Joules::new(5.0); slots] // ~83 mW
    }

    fn dark(slots: usize) -> Vec<Joules> {
        vec![Joules::ZERO; slots]
    }

    #[test]
    fn full_subset_on_sunny_period_completes_without_cap_draw() {
        let g = benchmarks::ecg();
        let (mut bank, pmu, storage) = setup(0.0);
        let out = simulate_subset(
            &g,
            g.all_tasks(),
            &sunny(10),
            SLOT,
            &mut bank,
            &pmu,
            &storage,
        );
        assert_eq!(out.misses, 0, "{out:?}");
        assert!(out.completed_all);
        assert!(
            out.cap_drawn.value() < 0.2,
            "sunshine should power everything: drew {}",
            out.cap_drawn
        );
        assert!(out.cap_stored.value() > 5.0, "surplus should store");
    }

    #[test]
    fn empty_subset_misses_everything_but_stores_all() {
        let g = benchmarks::ecg();
        let (mut bank, pmu, storage) = setup(0.0);
        let out = simulate_subset(
            &g,
            TaskSet::EMPTY,
            &sunny(10),
            SLOT,
            &mut bank,
            &pmu,
            &storage,
        );
        assert_eq!(out.misses, g.len());
        assert!((out.dmr - 1.0).abs() < 1e-12);
        assert_eq!(out.served, Joules::ZERO);
        assert!(out.cap_stored.value() > 20.0);
    }

    #[test]
    fn dark_period_draws_from_capacitor() {
        let g = benchmarks::ecg();
        let (mut bank, pmu, storage) = setup(60.0);
        let out = simulate_subset(
            &g,
            g.all_tasks(),
            &dark(10),
            SLOT,
            &mut bank,
            &pmu,
            &storage,
        );
        assert_eq!(out.misses, 0, "{out:?}");
        assert!(out.cap_drawn.value() > 5.0);
    }

    #[test]
    fn dark_period_without_storage_misses_all() {
        let g = benchmarks::ecg();
        let (mut bank, pmu, storage) = setup(0.0);
        let out = simulate_subset(
            &g,
            g.all_tasks(),
            &dark(10),
            SLOT,
            &mut bank,
            &pmu,
            &storage,
        );
        assert_eq!(out.misses, g.len());
        assert!(out.brownouts > 0);
        assert!(!out.completed_all);
    }

    #[test]
    fn excluding_dependencies_dooms_dependents() {
        let g = benchmarks::ecg();
        let (mut bank, pmu, storage) = setup(0.0);
        // Exclude lpf: the whole filter chain (and qrs, aes) can never
        // become runnable.
        let subset = g.all_tasks().difference(TaskSet::EMPTY.with(0));
        let out = simulate_subset(&g, subset, &sunny(10), SLOT, &mut bank, &pmu, &storage);
        assert!(!out.completed_all);
        assert!(out.misses >= 5, "chain is blocked: {out:?}");
    }

    #[test]
    fn solar_following_defers_into_sunshine() {
        // Solar only in the second half: tasks with slack wait, so the
        // capacitor draw stays near zero.
        let g = benchmarks::shm();
        let (mut bank, pmu, storage) = setup(10.0);
        let mut solar = dark(10);
        for s in solar.iter_mut().skip(3) {
            *s = Joules::new(6.0);
        }
        let out = simulate_subset(&g, g.all_tasks(), &solar, SLOT, &mut bank, &pmu, &storage);
        assert_eq!(out.misses, 0, "{out:?}");
        assert!(
            out.cap_drawn.value() < 3.0,
            "most work should ride the sun: drew {}",
            out.cap_drawn
        );
    }

    #[test]
    fn subset_partial_reduces_demand() {
        let g = benchmarks::wam();
        let (mut bank1, pmu, storage) = setup(0.0);
        let full = simulate_subset(
            &g,
            g.all_tasks(),
            &sunny(10),
            SLOT,
            &mut bank1,
            &pmu,
            &storage,
        );
        let (mut bank2, _, _) = setup(0.0);
        // Only the two root sensing tasks.
        let some = TaskSet::EMPTY.with(0).with(1);
        let part = simulate_subset(&g, some, &sunny(10), SLOT, &mut bank2, &pmu, &storage);
        assert!(part.served < full.served);
        assert!(part.cap_stored > full.cap_stored, "unspent solar stores");
        assert_eq!(part.misses, g.len() - 2);
    }

    #[test]
    fn out_of_range_mask_bits_are_ignored() {
        let g = benchmarks::ecg();
        let (mut bank, pmu, storage) = setup(0.0);
        // A mask with one valid task and one bogus bit behaves exactly
        // like the valid part alone.
        let bogus = TaskSet::EMPTY.with(0).with(g.len());
        let out = simulate_subset(&g, bogus, &sunny(10), SLOT, &mut bank, &pmu, &storage);
        let (mut bank2, _, _) = setup(0.0);
        let clean = simulate_subset(
            &g,
            TaskSet::EMPTY.with(0),
            &sunny(10),
            SLOT,
            &mut bank2,
            &pmu,
            &storage,
        );
        assert_eq!(out, clean);
    }
}
