//! Memoization for the per-period subset-execution kernel.
//!
//! The long-term DP calls [`simulate_subset`] for every
//! `(period, energy bucket, candidate subset)` cell, and both the
//! bucket grid and the solar profiles repeat heavily across a horizon
//! (every dark period is identical, bucket voltages form a fixed set).
//! [`SubsetSimCache`] keys a period simulation on its *exact* inputs —
//! the subset bitmask, per-slot solar energies as raw `f64` bits,
//! start voltage bits, capacitance bits and slot duration bits — so a
//! cache hit returns a result bitwise identical to re-running the
//! kernel, and repeated cells cost one hash lookup instead of a full
//! slot-by-slot simulation.
//!
//! One cache serves one task graph: the key does not include the graph,
//! so callers must create a fresh cache per graph (the planners do).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use helio_common::units::{Joules, Seconds, Volts};
use helio_common::TaskSet;
use helio_nvp::Pmu;
use helio_storage::{CapacitorBank, StorageModelParams, SuperCap};
use helio_tasks::TaskGraph;

use crate::subset::{simulate_subset, SubsetOutcome};

#[derive(Clone, PartialEq, Eq, Hash)]
struct Key {
    /// Subset bitmask, as packed by [`TaskSet::bits`].
    mask: u32,
    /// Per-slot solar energies, exact bits.
    solar: Vec<u64>,
    /// Start voltage, exact bits.
    voltage: u64,
    /// Active capacitance, exact bits.
    capacitance: u64,
    /// Slot duration, exact bits.
    slot: u64,
}

/// Hit/miss counters of a [`SubsetSimCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
}

impl CacheStats {
    /// Fraction of lookups served from the cache (0 when unused).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Thread-safe memo table for [`simulate_subset`] runs that start from
/// an explicit single-capacitor voltage.
#[derive(Default)]
pub struct SubsetSimCache {
    map: Mutex<HashMap<Key, (SubsetOutcome, u64)>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl SubsetSimCache {
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Hit/miss counters so far.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Simulates `subset` over one period starting from `voltage` on a
    /// single-capacitor bank of `cap`, returning the outcome and the
    /// final voltage. Results are memoized on the exact inputs; a hit
    /// is bitwise identical to an uncached run.
    ///
    /// # Panics
    ///
    /// Panics on the same conditions as [`simulate_subset`].
    #[allow(clippy::too_many_arguments)]
    pub fn simulate(
        &self,
        graph: &TaskGraph,
        subset: TaskSet,
        solar: &[Joules],
        slot_duration: Seconds,
        cap: &SuperCap,
        voltage: Volts,
        pmu: &Pmu,
        storage: &StorageModelParams,
    ) -> (SubsetOutcome, Volts) {
        let key = Key {
            mask: subset.bits(),
            solar: solar.iter().map(|e| e.value().to_bits()).collect(),
            voltage: voltage.value().to_bits(),
            capacitance: cap.capacitance().value().to_bits(),
            slot: slot_duration.value().to_bits(),
        };
        if let Some((outcome, v_bits)) = self.map.lock().expect("cache lock").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return (*outcome, Volts::new(f64::from_bits(*v_bits)));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        // Simulate outside the lock: concurrent workers may duplicate a
        // computation, but they never block each other on it.
        let (outcome, v1) = simulate_subset_at(
            graph,
            subset,
            solar,
            slot_duration,
            cap,
            voltage,
            pmu,
            storage,
        );
        self.map
            .lock()
            .expect("cache lock")
            .insert(key, (outcome, v1.value().to_bits()));
        (outcome, v1)
    }
}

/// Runs the kernel on a fresh single-capacitor bank set to `voltage`,
/// returning the outcome and the bank's final voltage — the common
/// "what would this period do from this state" query of the planners.
#[allow(clippy::too_many_arguments)]
pub fn simulate_subset_at(
    graph: &TaskGraph,
    subset: TaskSet,
    solar: &[Joules],
    slot_duration: Seconds,
    cap: &SuperCap,
    voltage: Volts,
    pmu: &Pmu,
    storage: &StorageModelParams,
) -> (SubsetOutcome, Volts) {
    let mut bank = CapacitorBank::new(&[cap.capacitance()], storage).expect("single cap is valid");
    bank.set_state(0, cap.state_at(voltage)).expect("index 0");
    let outcome = simulate_subset(graph, subset, solar, slot_duration, &mut bank, pmu, storage);
    let v = bank.state(0).expect("index 0").voltage();
    (outcome, v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use helio_common::units::Farads;
    use helio_tasks::benchmarks;

    const SLOT: Seconds = Seconds::new(60.0);

    fn setup() -> (TaskGraph, SuperCap, StorageModelParams, Pmu) {
        let storage = StorageModelParams::default();
        let cap = SuperCap::new(Farads::new(10.0), &storage).unwrap();
        (benchmarks::ecg(), cap, storage, Pmu::default())
    }

    #[test]
    fn hit_returns_identical_result() {
        let (g, cap, storage, pmu) = setup();
        let cache = SubsetSimCache::new();
        let subset = g.all_tasks();
        let solar = vec![Joules::new(5.0); 10];
        let v0 = Volts::new(3.3);
        let first = cache.simulate(&g, subset, &solar, SLOT, &cap, v0, &pmu, &storage);
        let second = cache.simulate(&g, subset, &solar, SLOT, &cap, v0, &pmu, &storage);
        assert_eq!(first.0, second.0);
        assert_eq!(first.1.value().to_bits(), second.1.value().to_bits());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn cached_matches_uncached() {
        let (g, cap, storage, pmu) = setup();
        let cache = SubsetSimCache::new();
        let subset = g.all_tasks().difference(TaskSet::EMPTY.with(2));
        let solar: Vec<Joules> = (0..10).map(|m| Joules::new(0.7 * m as f64)).collect();
        let v0 = Volts::new(2.9);
        let direct = simulate_subset_at(&g, subset, &solar, SLOT, &cap, v0, &pmu, &storage);
        for _ in 0..3 {
            let cached = cache.simulate(&g, subset, &solar, SLOT, &cap, v0, &pmu, &storage);
            assert_eq!(direct.0, cached.0);
            assert_eq!(direct.1.value().to_bits(), cached.1.value().to_bits());
        }
    }

    #[test]
    fn distinct_inputs_do_not_collide() {
        let (g, cap, storage, pmu) = setup();
        let cache = SubsetSimCache::new();
        let sunny = vec![Joules::new(5.0); 10];
        let v0 = cap.v_full();
        let (a, _) = cache.simulate(&g, g.all_tasks(), &sunny, SLOT, &cap, v0, &pmu, &storage);
        let (b, _) = cache.simulate(&g, TaskSet::EMPTY, &sunny, SLOT, &cap, v0, &pmu, &storage);
        assert_ne!(a.misses, b.misses);
        assert_eq!(cache.stats().hits, 0);
    }
}
