//! The fine-grained intra-task load-matching scheduler (the paper's
//! "Intra-task" baseline, ref. \[9\]).
//!
//! Tasks are preemptible at slot boundaries. Every slot the scheduler
//! matches the load to the currently *available* energy: urgent tasks
//! (zero slack) are always admitted — skipping them forfeits their
//! deadline — and the remaining capacity is filled in urgency order
//! while the slot's energy budget lasts. Like the inter-task baseline
//! it treats stored energy as free for the current period.

use helio_common::units::Joules;
use helio_common::TaskSet;
use helio_tasks::TaskId;

use crate::context::{PeriodStart, SlotContext};
use crate::traits::SlotScheduler;

/// Intra-task (slot-preemptive) load-matching scheduler.
#[derive(Debug, Clone, Default)]
pub struct IntraTaskScheduler {
    allowed: Option<TaskSet>,
    /// Urgency-ordered candidate scratch, reused across slots so the
    /// select path stops allocating once warm.
    scratch: Vec<TaskId>,
}

impl IntraTaskScheduler {
    /// Creates an intra-task scheduler.
    pub fn new() -> Self {
        Self::default()
    }
}

impl SlotScheduler for IntraTaskScheduler {
    fn name(&self) -> &'static str {
        "intra-task"
    }

    fn begin_period(&mut self, ctx: &PeriodStart<'_>) {
        self.allowed = ctx.allowed;
    }

    fn select(&mut self, ctx: &SlotContext<'_>) -> TaskSet {
        let graph = ctx.graph;
        let mut candidates = ctx.exec.runnable_set(ctx.slot);
        if let Some(mask) = self.allowed {
            candidates = candidates.intersection(mask);
        }
        // Urgency order: least slack first, then earliest deadline.
        self.scratch.clear();
        self.scratch.extend(candidates.iter().map(TaskId));
        // Unstable sort: the (slack, deadline, index) key is a total
        // order, so the result matches a stable sort without the
        // stable sort's merge buffer.
        self.scratch.sort_unstable_by(|&a, &b| {
            let sa = ctx.exec.slack(a, ctx.slot).unwrap_or(usize::MAX);
            let sb = ctx.exec.slack(b, ctx.slot).unwrap_or(usize::MAX);
            sa.cmp(&sb)
                .then(
                    graph
                        .task(a)
                        .deadline
                        .value()
                        .total_cmp(&graph.task(b).deadline.value()),
                )
                .then(a.index().cmp(&b.index()))
        });

        let mut picked = TaskSet::EMPTY;
        let mut nvp_used = 0u32;
        let mut budget = ctx.available();
        for &id in &self.scratch {
            let nvp = graph.task(id).nvp;
            if nvp_used & (1 << nvp) != 0 {
                continue;
            }
            let cost = ctx.slot_cost(id);
            let urgent = ctx.exec.slack(id, ctx.slot) == Some(0);
            if urgent || cost <= budget {
                picked.insert(id.index());
                nvp_used |= 1 << nvp;
                budget = (budget - cost).max(Joules::ZERO);
            }
        }
        picked
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::ExecState;
    use helio_common::units::Seconds;
    use helio_tasks::benchmarks;

    const SLOT: Seconds = Seconds::new(60.0);

    fn slot_ctx<'a>(
        graph: &'a helio_tasks::TaskGraph,
        exec: &'a ExecState,
        slot: usize,
        direct: f64,
        storage: f64,
    ) -> SlotContext<'a> {
        SlotContext {
            graph,
            exec,
            slot,
            slot_duration: SLOT,
            slots_per_period: 10,
            harvest: Joules::new(direct / 0.95),
            direct_deliverable: Joules::new(direct),
            storage_deliverable: Joules::new(storage),
        }
    }

    #[test]
    fn load_matches_to_available_energy() {
        let g = benchmarks::wam();
        let exec = ExecState::new(&g, SLOT);
        let mut s = IntraTaskScheduler::new();
        // Plenty of energy: fills every NVP that has a runnable task
        // (NVP 2's tasks are dependency-blocked at slot 0).
        let full = s.select(&slot_ctx(&g, &exec, 0, 10.0, 5.0));
        assert_eq!(full.len(), 2);
        // Tiny budget at slot 0 (no task urgent yet): admits only what
        // fits.
        let tiny = s.select(&slot_ctx(&g, &exec, 0, 0.7, 0.0));
        assert!(tiny.len() < full.len());
        let spent: f64 = tiny
            .iter()
            .map(|i| (g.task(TaskId(i)).power * SLOT).value())
            .sum();
        assert!(spent <= 0.7 + 1e-9);
    }

    #[test]
    fn urgent_tasks_are_admitted_even_without_energy() {
        let g = benchmarks::ecg();
        let exec = ExecState::new(&g, SLOT);
        let mut s = IntraTaskScheduler::new();
        // lpf (deadline slot 3, 1 slot needed) has zero slack at slot 2.
        let picked = s.select(&slot_ctx(&g, &exec, 2, 0.0, 0.0));
        let lpf = g.ids().next().unwrap();
        assert!(
            picked.contains(lpf.index()),
            "urgent task must be attempted"
        );
    }

    #[test]
    fn preemption_interleaves_tasks() {
        // With a budget fitting only one NVP-1 task per slot, qrs and fft
        // (both on NVP 1 after the filter chain) alternate by urgency —
        // verifying slot-boundary preemption is possible.
        let g = benchmarks::ecg();
        let mut exec = ExecState::new(&g, SLOT);
        let ids: Vec<TaskId> = g.ids().collect();
        // Finish the filter chain first.
        exec.advance(ids[0]);
        exec.advance(ids[1]);
        exec.advance(ids[2]);
        let mut s = IntraTaskScheduler::new();
        let mut ran: Vec<TaskId> = Vec::new();
        for m in 3..10 {
            let picked = s.select(&slot_ctx(&g, &exec, m, 2.5, 0.0));
            for i in picked {
                let id = TaskId(i);
                if g.task(id).nvp == 1 {
                    ran.push(id);
                }
                exec.advance(id);
            }
        }
        // Both NVP-1 tasks eventually ran.
        assert!(ran.contains(&ids[3]) && ran.contains(&ids[4]), "{ran:?}");
    }

    #[test]
    fn respects_allowed_mask() {
        let g = benchmarks::wam();
        let exec = ExecState::new(&g, SLOT);
        let mut s = IntraTaskScheduler::new();
        // Only periodic_locating.
        s.begin_period(&PeriodStart {
            graph: &g,
            slot_duration: SLOT,
            slots_per_period: 10,
            predicted_energy: Joules::new(50.0),
            stored_energy: Joules::ZERO,
            allowed: Some(TaskSet::EMPTY.with(0)),
        });
        let picked = s.select(&slot_ctx(&g, &exec, 0, 10.0, 5.0));
        assert_eq!(picked.len(), 1);
        let first = picked.iter().next().unwrap();
        assert_eq!(g.task(TaskId(first)).name, "periodic_locating");
    }
}
