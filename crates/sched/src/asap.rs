//! The as-soon-as-possible scheduler: run everything runnable, blind
//! to energy. Used by the capacitor-sizing step (Section 4.1's "the
//! scheduling results are obtained based on the ASAP rule") and as a
//! naive reference.

use helio_common::TaskSet;

use crate::context::{PeriodStart, SlotContext};
use crate::traits::{edf_pick_set, SlotScheduler};

/// Run every runnable task as soon as possible, one per NVP, energy be
/// damned. Under-powered slots brown out and waste the energy spent —
/// the failure mode the long-term planner avoids.
#[derive(Debug, Clone, Default)]
pub struct AsapScheduler {
    allowed: Option<TaskSet>,
}

impl AsapScheduler {
    /// Creates an ASAP scheduler.
    pub fn new() -> Self {
        Self::default()
    }
}

impl SlotScheduler for AsapScheduler {
    fn name(&self) -> &'static str {
        "asap"
    }

    fn begin_period(&mut self, ctx: &PeriodStart<'_>) {
        self.allowed = ctx.allowed;
    }

    fn select(&mut self, ctx: &SlotContext<'_>) -> TaskSet {
        let mut candidates = ctx.exec.runnable_set(ctx.slot);
        if let Some(mask) = self.allowed {
            candidates = candidates.intersection(mask);
        }
        edf_pick_set(ctx.graph, candidates)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::ExecState;
    use helio_common::units::{Joules, Seconds};
    use helio_tasks::benchmarks;

    fn ctx<'a>(
        graph: &'a helio_tasks::TaskGraph,
        exec: &'a ExecState,
        slot: usize,
    ) -> SlotContext<'a> {
        SlotContext {
            graph,
            exec,
            slot,
            slot_duration: Seconds::new(60.0),
            slots_per_period: 10,
            harvest: Joules::ZERO, // ASAP ignores energy entirely
            direct_deliverable: Joules::ZERO,
            storage_deliverable: Joules::ZERO,
        }
    }

    #[test]
    fn runs_even_with_zero_energy() {
        let g = benchmarks::wam();
        let exec = ExecState::new(&g, Seconds::new(60.0));
        let mut s = AsapScheduler::new();
        let picked = s.select(&ctx(&g, &exec, 0));
        assert!(
            !picked.is_empty(),
            "ASAP must try to run regardless of energy"
        );
    }

    #[test]
    fn respects_allowed_mask() {
        let g = benchmarks::wam();
        let exec = ExecState::new(&g, Seconds::new(60.0));
        let mut s = AsapScheduler::new();
        s.begin_period(&PeriodStart {
            graph: &g,
            slot_duration: Seconds::new(60.0),
            slots_per_period: 10,
            predicted_energy: Joules::ZERO,
            stored_energy: Joules::ZERO,
            allowed: Some(TaskSet::EMPTY),
        });
        assert!(s.select(&ctx(&g, &exec, 0)).is_empty());
    }

    #[test]
    fn drains_the_whole_graph_given_enough_slots() {
        let g = benchmarks::ecg();
        let mut exec = ExecState::new(&g, Seconds::new(60.0));
        let mut s = AsapScheduler::new();
        for m in 0..10 {
            for i in s.select(&ctx(&g, &exec, m)) {
                exec.advance(helio_tasks::TaskId(i));
            }
        }
        assert_eq!(exec.misses(), 0, "ECG fits in one period under ASAP");
    }
}
