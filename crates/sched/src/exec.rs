//! Per-period execution state: the remaining execution times
//! `S'_{i,j,m}(n)` (Eq. 4) and deadline bookkeeping (Eq. 5).

use helio_common::units::Seconds;
use helio_common::TaskSet;
use helio_tasks::{TaskGraph, TaskId};
use serde::{Deserialize, Serialize};

/// Execution progress of every task within the current period, in
/// whole slots.
///
/// Constructed once and [`ExecState::reset`] at each period start —
/// the dependency masks are precomputed so the per-slot queries
/// ([`ExecState::runnable_set`], [`ExecState::deps_met`]) are
/// allocation-free bit operations.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecState {
    remaining: Vec<usize>,
    needed: Vec<usize>,
    deadline_slot: Vec<usize>,
    /// Tasks with zero slots remaining, as a bitmask (kept in lockstep
    /// with `remaining` so dependency checks are one AND).
    completed: TaskSet,
    /// Precomputed direct-predecessor mask per task.
    pred_mask: Vec<TaskSet>,
}

impl ExecState {
    /// Fresh state at the start of a period: every task has its full
    /// execution time remaining.
    pub fn new(graph: &TaskGraph, slot: Seconds) -> Self {
        let needed: Vec<usize> = graph.tasks().iter().map(|t| t.slots_needed(slot)).collect();
        let deadline_slot = graph
            .tasks()
            .iter()
            .map(|t| t.deadline_slot(slot))
            .collect();
        let pred_mask = graph.ids().map(|id| graph.predecessor_set(id)).collect();
        let mut state = Self {
            remaining: needed.clone(),
            needed,
            deadline_slot,
            completed: TaskSet::EMPTY,
            pred_mask,
        };
        // Zero-slot tasks (none in the paper's benchmarks, but legal)
        // start complete.
        for i in 0..state.remaining.len() {
            if state.remaining[i] == 0 {
                state.completed.insert(i);
            }
        }
        state
    }

    /// Restores the period-start state in place — equivalent to a fresh
    /// [`ExecState::new`] on the same graph, without allocating.
    pub fn reset(&mut self) {
        self.completed = TaskSet::EMPTY;
        for i in 0..self.remaining.len() {
            self.remaining[i] = self.needed[i];
            if self.needed[i] == 0 {
                self.completed.insert(i);
            }
        }
    }

    /// Remaining slots of `id` (`S'` in slot units).
    pub fn remaining(&self, id: TaskId) -> usize {
        self.remaining[id.index()]
    }

    /// Total slots `id` needs per period.
    pub fn needed(&self, id: TaskId) -> usize {
        self.needed[id.index()]
    }

    /// Whether `id` has completed this period.
    pub fn is_complete(&self, id: TaskId) -> bool {
        self.completed.contains(id.index())
    }

    /// The tasks completed so far, as a bitmask.
    pub fn completed_set(&self) -> TaskSet {
        self.completed
    }

    /// The first slot index at/after which `id` can no longer make its
    /// deadline (`D_n` rounded up to the next slot boundary).
    pub fn deadline_slot(&self, id: TaskId) -> usize {
        self.deadline_slot[id.index()]
    }

    /// Slack of `id` at the start of slot `m`: how many slots it could
    /// idle and still finish by its deadline. `None` once the deadline
    /// can no longer be met.
    pub fn slack(&self, id: TaskId, m: usize) -> Option<usize> {
        if self.is_complete(id) {
            return None;
        }
        let finish_if_continuous = m + self.remaining[id.index()];
        if finish_if_continuous > self.deadline_slot[id.index()] {
            None
        } else {
            Some(self.deadline_slot[id.index()] - finish_if_continuous)
        }
    }

    /// Whether every dependency of `id` has completed (constraint 7).
    pub fn deps_met(&self, graph: &TaskGraph, id: TaskId) -> bool {
        let _ = graph;
        self.pred_mask[id.index()].is_subset_of(self.completed)
    }

    /// Whether `id` has already missed its deadline as of the start of
    /// slot `m` (Eq. 5's θ at the deadline boundary, or a provably
    /// unreachable deadline).
    pub fn is_doomed(&self, id: TaskId, m: usize) -> bool {
        !self.is_complete(id) && self.slack(id, m).is_none()
    }

    /// Tasks worth scheduling in slot `m`: incomplete, dependencies met,
    /// deadline still reachable — as an allocation-free bitmask.
    pub fn runnable_set(&self, m: usize) -> TaskSet {
        let mut set = TaskSet::EMPTY;
        for i in 0..self.remaining.len() {
            if self.completed.contains(i) {
                continue;
            }
            if m + self.remaining[i] > self.deadline_slot[i] {
                continue; // doomed
            }
            if self.pred_mask[i].is_subset_of(self.completed) {
                set.insert(i);
            }
        }
        set
    }

    /// Tasks worth scheduling in slot `m`, as ids (allocating
    /// convenience wrapper over [`ExecState::runnable_set`]).
    pub fn runnable(&self, graph: &TaskGraph, m: usize) -> Vec<TaskId> {
        let _ = graph;
        self.runnable_set(m).iter().map(TaskId).collect()
    }

    /// Records one slot of progress on `id`. Advancing an
    /// already-complete task is a no-op: schedulers should not run
    /// finished tasks, but a degraded planner that does must not bring
    /// the node down.
    pub fn advance(&mut self, id: TaskId) {
        if self.remaining[id.index()] == 0 {
            return;
        }
        self.remaining[id.index()] -= 1;
        if self.remaining[id.index()] == 0 {
            self.completed.insert(id.index());
        }
    }

    /// Number of tasks that missed their deadline this period, assuming
    /// the period has ended (every incomplete task has missed: deadlines
    /// never exceed the period).
    pub fn misses(&self) -> usize {
        self.remaining.len() - self.completed.len()
    }

    /// Deadline-miss rate of the period: misses / N (the per-period
    /// `DMR_{i,j}` of Eq. 16).
    pub fn dmr(&self) -> f64 {
        if self.remaining.is_empty() {
            0.0
        } else {
            self.misses() as f64 / self.remaining.len() as f64
        }
    }

    /// Tasks that completed this period (`te_{i,j}(n)` bits, Eq. 17
    /// measured on completions).
    pub fn completed_mask(&self) -> Vec<bool> {
        (0..self.remaining.len())
            .map(|i| self.completed.contains(i))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use helio_tasks::benchmarks;

    const SLOT: Seconds = Seconds::new(60.0);

    #[test]
    fn fresh_state_has_full_remaining() {
        let g = benchmarks::ecg();
        let s = ExecState::new(&g, SLOT);
        for id in g.ids() {
            assert_eq!(s.remaining(id), g.task(id).slots_needed(SLOT));
            assert!(!s.is_complete(id));
        }
        assert_eq!(s.misses(), g.len());
        assert!((s.dmr() - 1.0).abs() < 1e-12);
        assert!(s.completed_set().is_empty());
    }

    #[test]
    fn advance_to_completion() {
        let g = benchmarks::ecg();
        let mut s = ExecState::new(&g, SLOT);
        let id = g.ids().next().unwrap(); // lpf: 1 slot
        s.advance(id);
        assert!(s.is_complete(id));
        assert_eq!(s.misses(), g.len() - 1);
        assert!(s.completed_set().contains(id.index()));
    }

    #[test]
    fn advance_past_completion_is_a_no_op() {
        let g = benchmarks::ecg();
        let mut s = ExecState::new(&g, SLOT);
        let id = g.ids().next().unwrap();
        s.advance(id);
        let snapshot = s.clone();
        s.advance(id);
        assert_eq!(s, snapshot, "extra advance must change nothing");
        assert!(s.is_complete(id));
    }

    #[test]
    fn dependencies_gate_runnability() {
        let g = benchmarks::ecg();
        let mut s = ExecState::new(&g, SLOT);
        let ids: Vec<TaskId> = g.ids().collect();
        // Initially only lpf (τ0) is runnable on the dependency chain;
        // qrs (τ3) waits for hpf2.
        let runnable = s.runnable(&g, 0);
        assert!(runnable.contains(&ids[0]));
        assert!(!runnable.contains(&ids[3]));
        // Complete the filter chain.
        s.advance(ids[0]);
        s.advance(ids[1]);
        s.advance(ids[2]);
        assert!(s.runnable(&g, 3).contains(&ids[3]));
        assert!(s.runnable_set(3).contains(ids[3].index()));
    }

    #[test]
    fn slack_counts_down_and_dooms() {
        let g = benchmarks::ecg();
        let mut s = ExecState::new(&g, SLOT);
        let lpf = g.ids().next().unwrap(); // 1 slot, deadline slot 3
        assert_eq!(s.slack(lpf, 0), Some(2));
        assert_eq!(s.slack(lpf, 2), Some(0));
        assert_eq!(s.slack(lpf, 3), None);
        assert!(s.is_doomed(lpf, 3));
        assert!(!s.runnable(&g, 3).contains(&lpf));
        // Completed tasks have no slack and are not doomed.
        s.advance(lpf);
        assert_eq!(s.slack(lpf, 0), None);
        assert!(!s.is_doomed(lpf, 9));
    }

    #[test]
    fn completed_mask_matches_state() {
        let g = benchmarks::shm();
        let mut s = ExecState::new(&g, SLOT);
        let first = g.ids().next().unwrap();
        s.advance(first);
        let mask = s.completed_mask();
        assert!(mask[0]);
        assert!(!mask[1]);
    }

    #[test]
    fn reset_is_equivalent_to_fresh_state() {
        for g in benchmarks::all_six() {
            let fresh = ExecState::new(&g, SLOT);
            let mut reused = ExecState::new(&g, SLOT);
            // Make arbitrary progress, then reset.
            for m in 0..6 {
                for id in reused.runnable(&g, m) {
                    reused.advance(id);
                }
            }
            assert_ne!(reused, fresh, "progress should change the state");
            reused.reset();
            assert_eq!(
                reused,
                fresh,
                "{}: reset must equal a fresh state",
                g.name()
            );
        }
    }

    #[test]
    fn runnable_set_matches_runnable_vec() {
        let g = benchmarks::wam();
        let mut s = ExecState::new(&g, SLOT);
        for m in 0..10 {
            let vec: Vec<usize> = s.runnable(&g, m).iter().map(|id| id.index()).collect();
            let set: Vec<usize> = s.runnable_set(m).iter().collect();
            assert_eq!(vec, set, "slot {m}");
            if let Some(&first) = vec.first() {
                s.advance(TaskId(first));
            }
        }
    }
}
