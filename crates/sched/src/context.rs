//! The information a scheduler sees — at the start of a period and at
//! the start of each slot.

use helio_common::units::{Joules, Seconds};
use helio_common::TaskSet;
use helio_tasks::TaskGraph;

use crate::exec::ExecState;

/// Period-start context handed to
/// [`SlotScheduler::begin_period`](crate::SlotScheduler::begin_period).
#[derive(Debug, Clone)]
pub struct PeriodStart<'a> {
    /// The task set.
    pub graph: &'a TaskGraph,
    /// Slot duration `Δt`.
    pub slot_duration: Seconds,
    /// Slots per period `N_s`.
    pub slots_per_period: usize,
    /// Predicted harvested energy of this period (source side) — what
    /// a WCMA-style predictor forecasts.
    pub predicted_energy: Joules,
    /// Energy deliverable from the active supercapacitor right now.
    pub stored_energy: Joules,
    /// Optional task-admission mask from a coarse planner
    /// (`te_{i,j}(n)` bits); `None` admits every task.
    pub allowed: Option<TaskSet>,
}

impl PeriodStart<'_> {
    /// Whether `id` is admitted by the coarse mask.
    pub fn is_allowed(&self, id: helio_tasks::TaskId) -> bool {
        self.allowed.is_none_or(|m| m.contains(id.index()))
    }

    /// The admission mask resolved against the graph: `allowed`, or
    /// every task when the planner supplied none.
    pub fn admitted_set(&self) -> TaskSet {
        self.allowed.unwrap_or_else(|| self.graph.all_tasks())
    }
}

/// Slot-start context handed to
/// [`SlotScheduler::select`](crate::SlotScheduler::select).
#[derive(Debug)]
pub struct SlotContext<'a> {
    /// The task set.
    pub graph: &'a TaskGraph,
    /// Execution progress so far this period.
    pub exec: &'a ExecState,
    /// Slot index `m` within the period.
    pub slot: usize,
    /// Slot duration `Δt`.
    pub slot_duration: Seconds,
    /// Slots per period `N_s`.
    pub slots_per_period: usize,
    /// Solar energy harvested this slot (observable at slot start on
    /// the real node via the MPPT monitor), source side.
    pub harvest: Joules,
    /// Energy the direct channel can deliver to the load this slot.
    pub direct_deliverable: Joules,
    /// Energy the active capacitor could deliver this slot.
    pub storage_deliverable: Joules,
}

impl SlotContext<'_> {
    /// Total load-side energy available this slot.
    pub fn available(&self) -> Joules {
        self.direct_deliverable + self.storage_deliverable
    }

    /// Energy one slot of `id` costs.
    pub fn slot_cost(&self, id: helio_tasks::TaskId) -> Joules {
        self.graph.task(id).power * self.slot_duration
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use helio_tasks::benchmarks;

    #[test]
    fn allowed_mask_defaults_to_everything() {
        let g = benchmarks::ecg();
        let ps = PeriodStart {
            graph: &g,
            slot_duration: Seconds::new(60.0),
            slots_per_period: 10,
            predicted_energy: Joules::new(20.0),
            stored_energy: Joules::new(5.0),
            allowed: None,
        };
        assert!(g.ids().all(|id| ps.is_allowed(id)));
        assert_eq!(ps.admitted_set(), g.all_tasks());
        let ps = PeriodStart {
            allowed: Some(TaskSet::EMPTY),
            ..ps
        };
        assert!(g.ids().all(|id| !ps.is_allowed(id)));
        assert_eq!(ps.admitted_set(), TaskSet::EMPTY);
    }

    #[test]
    fn slot_context_arithmetic() {
        let g = benchmarks::ecg();
        let exec = ExecState::new(&g, Seconds::new(60.0));
        let ctx = SlotContext {
            graph: &g,
            exec: &exec,
            slot: 0,
            slot_duration: Seconds::new(60.0),
            slots_per_period: 10,
            harvest: Joules::new(3.0),
            direct_deliverable: Joules::new(2.85),
            storage_deliverable: Joules::new(1.0),
        };
        assert!((ctx.available().value() - 3.85).abs() < 1e-12);
        let lpf = g.ids().next().unwrap();
        // 18 mW × 60 s = 1.08 J.
        assert!((ctx.slot_cost(lpf).value() - 1.08).abs() < 1e-12);
    }
}
