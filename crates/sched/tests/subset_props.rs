//! Property tests of the subset-execution kernel — the workhorse every
//! planner calls thousands of times per optimisation.

use helio_common::units::{Farads, Joules, Seconds};
use helio_common::TaskSet;
use helio_nvp::Pmu;
use helio_sched::simulate_subset;
use helio_storage::{CapacitorBank, StorageModelParams};
use helio_tasks::{benchmarks, TaskGraph};
use proptest::prelude::*;

const SLOT: Seconds = Seconds::new(60.0);

fn graph_for(idx: usize) -> TaskGraph {
    let all = benchmarks::all_six();
    all[idx % all.len()].clone()
}

/// A dependency-closed random mask over a graph.
fn close_mask(graph: &TaskGraph, mut mask: Vec<bool>) -> TaskSet {
    mask.resize(graph.len(), false);
    let topo = graph.topological_order().expect("benchmarks are acyclic");
    for &id in topo.iter().rev() {
        if mask[id.index()] {
            for p in graph.predecessors(id) {
                mask[p.index()] = true;
            }
        }
    }
    TaskSet::from_mask(&mask)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// For any benchmark, subset, initial charge and solar profile the
    /// kernel's ledger stays physical.
    #[test]
    fn kernel_outcomes_are_physical(
        graph_idx in 0usize..6,
        raw_mask in prop::collection::vec(any::<bool>(), 8),
        solar_mw in prop::collection::vec(0.0f64..120.0, 10),
        capacitance in 1.0f64..80.0,
        precharge in 0.0f64..60.0,
    ) {
        let graph = graph_for(graph_idx);
        let subset = close_mask(&graph, raw_mask);
        let storage = StorageModelParams::default();
        let mut bank = CapacitorBank::new(&[Farads::new(capacitance)], &storage)
            .expect("valid capacitance");
        bank.charge_active(&storage, Joules::new(precharge));
        let before = bank.total_usable();
        let solar: Vec<Joules> = solar_mw
            .iter()
            .map(|&mw| Joules::new(mw * 1e-3 * SLOT.value()))
            .collect();
        let out = simulate_subset(
            &graph,
            subset,
            &solar,
            SLOT,
            &mut bank,
            &Pmu::default(),
            &storage,
        );
        prop_assert!((0.0..=1.0).contains(&out.dmr));
        prop_assert!(out.misses <= graph.len());
        prop_assert!(out.cap_drawn.value() >= 0.0);
        prop_assert!(out.served.value() >= 0.0);
        // Storage cannot hand out more than it held plus what arrived.
        prop_assert!(
            out.cap_drawn <= before + out.cap_stored + Joules::new(1e-9),
            "drawn {} > held {} + stored {}",
            out.cap_drawn, before, out.cap_stored
        );
        // Tasks excluded from the subset are always counted as misses.
        let excluded = graph.len() - subset.len();
        prop_assert!(out.misses >= excluded);
    }

    /// Adding solar energy can only help (weak monotonicity on misses
    /// for the full subset).
    #[test]
    fn more_solar_never_hurts(
        graph_idx in 0usize..6,
        base_mw in 1.0f64..40.0,
    ) {
        let graph = graph_for(graph_idx);
        let subset = graph.all_tasks();
        let storage = StorageModelParams::default();
        let run = |scale: f64| {
            let mut bank = CapacitorBank::new(&[Farads::new(10.0)], &storage)
                .expect("valid");
            let solar = vec![Joules::new(base_mw * scale * 1e-3 * SLOT.value()); 10];
            simulate_subset(&graph, subset, &solar, SLOT, &mut bank, &Pmu::default(), &storage)
        };
        let dim = run(1.0);
        let bright = run(4.0);
        prop_assert!(
            bright.misses <= dim.misses,
            "4x solar missed more: {} vs {}",
            bright.misses,
            dim.misses
        );
    }
}
