//! Error type for task-graph construction and validation.

use std::fmt;

use crate::task::TaskId;

/// Errors produced by task-graph construction and validation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TaskError {
    /// An edge referenced a task index outside the graph.
    UnknownTask(TaskId),
    /// The dependence relation contains a cycle through this task.
    DependencyCycle(TaskId),
    /// A task's parameters are invalid for the given period.
    InvalidTask {
        /// The offending task.
        id: TaskId,
        /// What is wrong with it.
        reason: String,
    },
    /// The graph is empty.
    Empty,
    /// A self-loop edge was supplied.
    SelfLoop(TaskId),
    /// The same edge was supplied twice.
    DuplicateEdge(TaskId, TaskId),
}

impl fmt::Display for TaskError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TaskError::UnknownTask(id) => write!(f, "edge references unknown task {id}"),
            TaskError::DependencyCycle(id) => {
                write!(f, "dependency cycle detected through {id}")
            }
            TaskError::InvalidTask { id, reason } => write!(f, "invalid task {id}: {reason}"),
            TaskError::Empty => write!(f, "task graph has no tasks"),
            TaskError::SelfLoop(id) => write!(f, "self-dependency on {id}"),
            TaskError::DuplicateEdge(a, b) => write!(f, "duplicate edge {a} -> {b}"),
        }
    }
}

impl std::error::Error for TaskError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert_eq!(
            TaskError::UnknownTask(TaskId(7)).to_string(),
            "edge references unknown task τ7"
        );
        assert!(TaskError::DuplicateEdge(TaskId(1), TaskId(2))
            .to_string()
            .contains("τ1 -> τ2"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TaskError>();
    }
}
