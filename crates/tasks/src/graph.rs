//! The task DAG `G(V, W)` of the system model.

use helio_common::units::{Joules, Seconds};
use helio_common::TaskSet;
use serde::{Deserialize, Serialize};

use crate::error::TaskError;
use crate::task::{Task, TaskId};

/// A directed acyclic graph of periodic tasks with NVP assignments.
///
/// `W_{n,l} = 1` edges are stored as `(from, to)` pairs: `to` depends on
/// the completion of `from` within the same period (constraint 7).
///
/// # Example
///
/// ```
/// use helio_common::units::{Seconds, Watts};
/// use helio_tasks::{Task, TaskGraph};
///
/// # fn main() -> Result<(), helio_tasks::TaskError> {
/// let mut g = TaskGraph::new("pipeline");
/// let sense = g.add_task(Task::new(
///     "sense", Seconds::new(60.0), Seconds::new(300.0),
///     Watts::from_milliwatts(10.0), 0,
/// ));
/// let process = g.add_task(Task::new(
///     "process", Seconds::new(120.0), Seconds::new(600.0),
///     Watts::from_milliwatts(30.0), 1,
/// ));
/// g.add_edge(sense, process)?;
/// g.validate(Seconds::new(600.0))?;
/// assert_eq!(g.predecessors(process), vec![sense]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskGraph {
    name: String,
    tasks: Vec<Task>,
    edges: Vec<(TaskId, TaskId)>,
}

impl TaskGraph {
    /// Creates an empty graph.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            tasks: Vec::new(),
            edges: Vec::new(),
        }
    }

    /// Benchmark name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a task, returning its id.
    pub fn add_task(&mut self, task: Task) -> TaskId {
        self.tasks.push(task);
        TaskId(self.tasks.len() - 1)
    }

    /// Adds a dependence edge `from -> to` (`to` waits for `from`).
    ///
    /// # Errors
    ///
    /// Returns [`TaskError::UnknownTask`], [`TaskError::SelfLoop`] or
    /// [`TaskError::DuplicateEdge`]. Cycles are detected in
    /// [`TaskGraph::validate`].
    pub fn add_edge(&mut self, from: TaskId, to: TaskId) -> Result<(), TaskError> {
        for id in [from, to] {
            if id.index() >= self.tasks.len() {
                return Err(TaskError::UnknownTask(id));
            }
        }
        if from == to {
            return Err(TaskError::SelfLoop(from));
        }
        if self.edges.contains(&(from, to)) {
            return Err(TaskError::DuplicateEdge(from, to));
        }
        self.edges.push((from, to));
        Ok(())
    }

    /// Number of tasks `N`.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether the graph has no tasks.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Number of dependence edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The task with a given id.
    ///
    /// # Panics
    ///
    /// Panics when `id` is out of range.
    pub fn task(&self, id: TaskId) -> &Task {
        &self.tasks[id.index()]
    }

    /// All tasks in id order.
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// All task ids in order.
    pub fn ids(&self) -> impl Iterator<Item = TaskId> + '_ {
        (0..self.tasks.len()).map(TaskId)
    }

    /// All edges.
    pub fn edges(&self) -> &[(TaskId, TaskId)] {
        &self.edges
    }

    /// Direct predecessors of `id` (tasks it waits for).
    pub fn predecessors(&self, id: TaskId) -> Vec<TaskId> {
        self.edges
            .iter()
            .filter(|(_, to)| *to == id)
            .map(|(from, _)| *from)
            .collect()
    }

    /// Direct predecessors of `id` as a bitmask — the allocation-free
    /// counterpart of [`TaskGraph::predecessors`] the hot paths use.
    pub fn predecessor_set(&self, id: TaskId) -> TaskSet {
        let mut set = TaskSet::EMPTY;
        for (from, to) in &self.edges {
            if *to == id {
                set.insert(from.index());
            }
        }
        set
    }

    /// Direct successors of `id`.
    pub fn successors(&self, id: TaskId) -> Vec<TaskId> {
        self.edges
            .iter()
            .filter(|(from, _)| *from == id)
            .map(|(_, to)| *to)
            .collect()
    }

    /// Direct successors of `id` as a bitmask — the allocation-free
    /// counterpart of [`TaskGraph::successors`] the hot paths use.
    pub fn successor_set(&self, id: TaskId) -> TaskSet {
        let mut set = TaskSet::EMPTY;
        for (from, to) in &self.edges {
            if *from == id {
                set.insert(to.index());
            }
        }
        set
    }

    /// Number of distinct NVPs referenced (`N_k`, assuming dense
    /// numbering from zero).
    pub fn nvp_count(&self) -> usize {
        self.tasks.iter().map(|t| t.nvp + 1).max().unwrap_or(0)
    }

    /// Tasks bound to one NVP (the set `A_k`).
    pub fn tasks_on_nvp(&self, nvp: usize) -> Vec<TaskId> {
        self.ids().filter(|&id| self.task(id).nvp == nvp).collect()
    }

    /// Tasks bound to one NVP as a bitmask (allocation-free
    /// [`TaskGraph::tasks_on_nvp`]).
    pub fn nvp_set(&self, nvp: usize) -> TaskSet {
        let mut set = TaskSet::EMPTY;
        for (i, t) in self.tasks.iter().enumerate() {
            if t.nvp == nvp {
                set.insert(i);
            }
        }
        set
    }

    /// The full task set `{0, …, N-1}` as a bitmask.
    pub fn all_tasks(&self) -> TaskSet {
        TaskSet::all(self.tasks.len())
    }

    /// Total energy of running every task once: `Σ S_n · P_n^τ`.
    pub fn total_energy(&self) -> Joules {
        self.tasks.iter().map(Task::energy).sum()
    }

    /// Total execution time across tasks.
    pub fn total_exec_time(&self) -> Seconds {
        Seconds::new(self.tasks.iter().map(|t| t.exec_time.value()).sum())
    }

    /// A topological order of the tasks.
    ///
    /// # Errors
    ///
    /// Returns [`TaskError::DependencyCycle`] naming a task on a cycle.
    pub fn topological_order(&self) -> Result<Vec<TaskId>, TaskError> {
        let mut indegree = Vec::new();
        let mut stack = Vec::new();
        let mut order = Vec::with_capacity(self.tasks.len());
        self.topological_order_into(&mut indegree, &mut stack, &mut order)?;
        Ok(order)
    }

    /// [`TaskGraph::topological_order`] writing into caller-owned
    /// scratch (all three buffers are cleared first), so per-period
    /// callers can recompute the order without allocating. The emitted
    /// order is identical to [`TaskGraph::topological_order`].
    ///
    /// # Errors
    ///
    /// Returns [`TaskError::DependencyCycle`] naming a task on a cycle.
    pub fn topological_order_into(
        &self,
        indegree: &mut Vec<usize>,
        stack: &mut Vec<TaskId>,
        out: &mut Vec<TaskId>,
    ) -> Result<(), TaskError> {
        let n = self.tasks.len();
        indegree.clear();
        indegree.resize(n, 0);
        for (_, to) in &self.edges {
            indegree[to.index()] += 1;
        }
        stack.clear();
        stack.extend((0..n).map(TaskId).filter(|t| indegree[t.index()] == 0));
        out.clear();
        while let Some(id) = stack.pop() {
            out.push(id);
            for (from, to) in &self.edges {
                if *from == id {
                    indegree[to.index()] -= 1;
                    if indegree[to.index()] == 0 {
                        stack.push(*to);
                    }
                }
            }
        }
        if out.len() != n {
            let stuck = (0..n).map(TaskId).find(|t| indegree[t.index()] > 0);
            return Err(TaskError::DependencyCycle(stuck.unwrap_or(TaskId(0))));
        }
        Ok(())
    }

    /// Earliest finish time of every task under deadline-ordered
    /// (EDF) list scheduling with per-NVP serialisation and unlimited
    /// energy — the timing bound schedulers can actually achieve.
    ///
    /// # Errors
    ///
    /// Returns [`TaskError::DependencyCycle`] for cyclic graphs.
    pub fn edf_finish_times(&self) -> Result<Vec<Seconds>, TaskError> {
        // Cycle check up front.
        self.topological_order()?;
        let n = self.tasks.len();
        let mut finish = vec![0.0f64; n];
        let mut scheduled = vec![false; n];
        let mut nvp_free = vec![0.0f64; self.nvp_count()];
        for _ in 0..n {
            // Ready = unscheduled with every predecessor scheduled.
            let next = self
                .ids()
                .filter(|&id| {
                    !scheduled[id.index()]
                        && self.predecessors(id).iter().all(|p| scheduled[p.index()])
                })
                .min_by(|&a, &b| {
                    let da = self.task(a).deadline.value();
                    let db = self.task(b).deadline.value();
                    da.total_cmp(&db)
                })
                .expect("acyclic graph always has a ready task");
            let t = self.task(next);
            let ready = self
                .predecessors(next)
                .iter()
                .map(|p| finish[p.index()])
                .fold(0.0f64, f64::max);
            let start = ready.max(nvp_free[t.nvp]);
            let end = start + t.exec_time.value();
            finish[next.index()] = end;
            nvp_free[t.nvp] = end;
            scheduled[next.index()] = true;
        }
        Ok(finish.into_iter().map(Seconds::new).collect())
    }

    /// Validates the graph against a period length: nonempty, acyclic,
    /// every task has positive execution time, a deadline within the
    /// period no earlier than its own execution time, nonnegative power,
    /// and every dependency chain can finish before its deadlines when
    /// executed deadline-first with NVP serialisation.
    ///
    /// # Errors
    ///
    /// Returns the first violated condition.
    pub fn validate(&self, period: Seconds) -> Result<(), TaskError> {
        if self.tasks.is_empty() {
            return Err(TaskError::Empty);
        }
        for (i, t) in self.tasks.iter().enumerate() {
            let id = TaskId(i);
            let fail = |reason: String| TaskError::InvalidTask { id, reason };
            if t.exec_time.value() <= 0.0 || t.exec_time.value().is_nan() {
                return Err(fail(format!("execution time {} not positive", t.exec_time)));
            }
            if t.deadline < t.exec_time {
                return Err(fail(format!(
                    "deadline {} earlier than execution time {}",
                    t.deadline, t.exec_time
                )));
            }
            if t.deadline > period {
                return Err(fail(format!(
                    "deadline {} beyond the period {}",
                    t.deadline, period
                )));
            }
            if t.power.value() < 0.0 {
                return Err(fail(format!("negative power {}", t.power)));
            }
        }
        // A graph that cannot meet deadlines even with unlimited energy
        // is malformed.
        let finish = self.edf_finish_times()?;
        for id in self.ids() {
            let t = self.task(id);
            let end = finish[id.index()];
            if end.value() > t.deadline.value() + 1e-9 {
                return Err(TaskError::InvalidTask {
                    id,
                    reason: format!(
                        "cannot finish by deadline even with unlimited energy \
                         (earliest finish {} s > deadline {} s)",
                        end.value(),
                        t.deadline.value()
                    ),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use helio_common::units::Watts;

    fn simple_task(name: &str, exec: f64, deadline: f64, nvp: usize) -> Task {
        Task::new(
            name,
            Seconds::new(exec),
            Seconds::new(deadline),
            Watts::from_milliwatts(20.0),
            nvp,
        )
    }

    fn pipeline() -> (TaskGraph, TaskId, TaskId, TaskId) {
        let mut g = TaskGraph::new("test");
        let a = g.add_task(simple_task("a", 60.0, 200.0, 0));
        let b = g.add_task(simple_task("b", 60.0, 400.0, 0));
        let c = g.add_task(simple_task("c", 120.0, 600.0, 1));
        g.add_edge(a, b).unwrap();
        g.add_edge(b, c).unwrap();
        (g, a, b, c)
    }

    #[test]
    fn construction_and_accessors() {
        let (g, a, b, c) = pipeline();
        assert_eq!(g.len(), 3);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.predecessors(b), vec![a]);
        assert_eq!(g.successors(b), vec![c]);
        assert_eq!(g.nvp_count(), 2);
        assert_eq!(g.tasks_on_nvp(0), vec![a, b]);
        assert_eq!(g.task(c).name, "c");
    }

    #[test]
    fn set_accessors_match_vec_accessors() {
        let (g, a, b, c) = pipeline();
        for id in g.ids() {
            let preds = g.predecessors(id);
            let set = g.predecessor_set(id);
            assert_eq!(set.len(), preds.len());
            assert!(preds.iter().all(|p| set.contains(p.index())));
        }
        assert_eq!(g.predecessor_set(b), TaskSet::EMPTY.with(a.index()));
        assert_eq!(g.nvp_set(0).iter().collect::<Vec<_>>(), vec![0, 1]);
        assert_eq!(g.nvp_set(1), TaskSet::EMPTY.with(c.index()));
        assert_eq!(g.all_tasks(), TaskSet::all(3));
    }

    #[test]
    fn edge_validation() {
        let (mut g, a, b, _) = pipeline();
        assert_eq!(
            g.add_edge(a, TaskId(9)),
            Err(TaskError::UnknownTask(TaskId(9)))
        );
        assert_eq!(g.add_edge(a, a), Err(TaskError::SelfLoop(a)));
        assert_eq!(g.add_edge(a, b), Err(TaskError::DuplicateEdge(a, b)));
    }

    #[test]
    fn topological_order_respects_edges() {
        let (g, a, b, c) = pipeline();
        let order = g.topological_order().unwrap();
        let pos = |id: TaskId| order.iter().position(|&x| x == id).unwrap();
        assert!(pos(a) < pos(b));
        assert!(pos(b) < pos(c));
    }

    #[test]
    fn cycle_is_detected() {
        let (mut g, a, _, c) = pipeline();
        g.add_edge(c, a).unwrap();
        assert!(matches!(
            g.topological_order(),
            Err(TaskError::DependencyCycle(_))
        ));
        assert!(g.validate(Seconds::new(600.0)).is_err());
    }

    #[test]
    fn validate_accepts_feasible_pipeline() {
        let (g, ..) = pipeline();
        g.validate(Seconds::new(600.0)).unwrap();
    }

    #[test]
    fn validate_rejects_deadline_beyond_period() {
        let mut g = TaskGraph::new("bad");
        g.add_task(simple_task("x", 60.0, 700.0, 0));
        assert!(matches!(
            g.validate(Seconds::new(600.0)),
            Err(TaskError::InvalidTask { .. })
        ));
    }

    #[test]
    fn validate_rejects_impossible_chain() {
        // Two 300 s tasks on the same NVP, both due by 400 s: even EDF
        // finishes the second at 600 s.
        let mut g = TaskGraph::new("bad");
        g.add_task(simple_task("a", 300.0, 400.0, 0));
        g.add_task(simple_task("b", 300.0, 400.0, 0));
        assert!(g.validate(Seconds::new(600.0)).is_err());
    }

    #[test]
    fn edf_finish_times_respect_deps_and_nvps() {
        let (g, a, b, c) = pipeline();
        let f = g.edf_finish_times().unwrap();
        assert!((f[a.index()].value() - 60.0).abs() < 1e-9);
        assert!((f[b.index()].value() - 120.0).abs() < 1e-9);
        // c on its own NVP still waits for b.
        assert!((f[c.index()].value() - 240.0).abs() < 1e-9);
    }

    #[test]
    fn validate_rejects_empty_and_zero_exec() {
        let g = TaskGraph::new("empty");
        assert_eq!(g.validate(Seconds::new(600.0)), Err(TaskError::Empty));
        let mut g = TaskGraph::new("zero");
        g.add_task(simple_task("z", 0.0, 100.0, 0));
        assert!(g.validate(Seconds::new(600.0)).is_err());
    }

    #[test]
    fn energy_totals() {
        let (g, ..) = pipeline();
        // (60+60+120) s at 20 mW.
        assert!((g.total_energy().value() - 0.020 * 240.0).abs() < 1e-12);
        assert!((g.total_exec_time().value() - 240.0).abs() < 1e-12);
    }
}
