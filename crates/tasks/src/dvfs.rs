//! Dynamic voltage/frequency scaling of task sets — the extension the
//! paper positions against refs \[5, 6\] (load-matching with DVFS).
//!
//! Scaling a task to frequency factor `f ∈ (0, 1]` stretches its
//! execution time by `1/f` and, with voltage tracking frequency,
//! scales its power by ~`f³` (dynamic power `∝ f·V²`, `V ∝ f`). Total
//! energy per execution therefore drops by `f²` — running slower is
//! cheaper, as long as deadlines still fit.

use helio_common::units::{Seconds, Watts};

use crate::error::TaskError;
use crate::graph::TaskGraph;
use crate::task::Task;

/// Exponent of the power-vs-frequency law. 3.0 models voltage tracking
/// frequency (`P ∝ f·V²` with `V ∝ f`); 1.0 models frequency-only
/// scaling at fixed voltage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DvfsLaw {
    /// `P' = P · f^power_exponent`.
    pub power_exponent: f64,
}

impl Default for DvfsLaw {
    fn default() -> Self {
        Self {
            power_exponent: 3.0,
        }
    }
}

/// Returns a copy of `graph` with every task scaled to frequency
/// factor `f`, then validated against `period` (stretched executions
/// must still meet their deadlines).
///
/// Execution times are rounded up to whole slots of `slot` so the
/// scaled set stays slot-aligned like the originals.
///
/// # Errors
///
/// Returns [`TaskError::InvalidTask`] when `f` leaves `(0, 1]` or the
/// stretched set no longer fits its deadlines.
pub fn scale_graph(
    graph: &TaskGraph,
    f: f64,
    law: DvfsLaw,
    period: Seconds,
    slot: Seconds,
) -> Result<TaskGraph, TaskError> {
    if !(f > 0.0 && f <= 1.0) {
        return Err(TaskError::InvalidTask {
            id: crate::task::TaskId(0),
            reason: format!("DVFS factor must lie in (0, 1], got {f}"),
        });
    }
    let mut scaled = TaskGraph::new(format!("{}@f{:.2}", graph.name(), f));
    for task in graph.tasks() {
        let stretched = task.exec_time.value() / f;
        let aligned = (stretched / slot.value()).ceil() * slot.value();
        scaled.add_task(Task::new(
            task.name.clone(),
            Seconds::new(aligned),
            task.deadline,
            Watts::new(task.power.value() * f.powf(law.power_exponent)),
            task.nvp,
        ));
    }
    for &(from, to) in graph.edges() {
        scaled.add_edge(from, to).expect("copying a valid edge set");
    }
    scaled.validate(period)?;
    Ok(scaled)
}

/// The largest slot-aligned frequency reduction that keeps `graph`
/// deadline-feasible, searched over `candidates` in descending order
/// of energy savings (ascending `f`). Returns `None` when even `f = 1`
/// fails (malformed input).
pub fn max_feasible_slowdown(
    graph: &TaskGraph,
    law: DvfsLaw,
    period: Seconds,
    slot: Seconds,
    candidates: &[f64],
) -> Option<(f64, TaskGraph)> {
    let mut sorted = candidates.to_vec();
    sorted.sort_by(f64::total_cmp);
    for &f in &sorted {
        if let Ok(scaled) = scale_graph(graph, f, law, period, slot) {
            return Some((f, scaled));
        }
    }
    scale_graph(graph, 1.0, law, period, slot)
        .ok()
        .map(|g| (1.0, g))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmarks;

    const PERIOD: Seconds = Seconds::new(600.0);
    const SLOT: Seconds = Seconds::new(60.0);

    /// A deliberately slack task set (deadlines far beyond execution
    /// times) so substantial slow-downs stay feasible.
    fn loose_graph() -> TaskGraph {
        let mut g = TaskGraph::new("loose");
        g.add_task(Task::new(
            "sense",
            Seconds::new(60.0),
            Seconds::new(480.0),
            Watts::from_milliwatts(20.0),
            0,
        ));
        g.add_task(Task::new(
            "process",
            Seconds::new(120.0),
            Seconds::new(600.0),
            Watts::from_milliwatts(30.0),
            1,
        ));
        g
    }

    #[test]
    fn full_speed_is_identity_up_to_alignment() {
        let g = benchmarks::ecg();
        let s = scale_graph(&g, 1.0, DvfsLaw::default(), PERIOD, SLOT).unwrap();
        for (a, b) in g.tasks().iter().zip(s.tasks()) {
            assert_eq!(a.exec_time, b.exec_time);
            assert!((a.power.value() - b.power.value()).abs() < 1e-15);
        }
    }

    #[test]
    fn slowdown_saves_energy() {
        let g = loose_graph();
        let s = scale_graph(&g, 0.5, DvfsLaw::default(), PERIOD, SLOT).unwrap();
        assert!(
            s.total_energy() < g.total_energy() * 0.6,
            "cubic law at f=0.5 should save >40% energy: {} vs {}",
            s.total_energy(),
            g.total_energy()
        );
        // Times stretched.
        assert!(s.total_exec_time() > g.total_exec_time());
    }

    #[test]
    fn linear_law_saves_nothing() {
        let g = loose_graph();
        let s = scale_graph(
            &g,
            0.5,
            DvfsLaw {
                power_exponent: 1.0,
            },
            PERIOD,
            SLOT,
        )
        .unwrap();
        // P·f × S/f = same energy (up to slot-alignment rounding up).
        assert!(s.total_energy() >= g.total_energy() * 0.99);
    }

    #[test]
    fn infeasible_slowdown_is_rejected() {
        // ECG's filter chain has a 180 s prefix due at 300 s; f = 0.3
        // stretches it past its deadlines.
        let g = benchmarks::ecg();
        assert!(scale_graph(&g, 0.3, DvfsLaw::default(), PERIOD, SLOT).is_err());
    }

    #[test]
    fn bad_factor_is_rejected() {
        let g = benchmarks::ecg();
        assert!(scale_graph(&g, 0.0, DvfsLaw::default(), PERIOD, SLOT).is_err());
        assert!(scale_graph(&g, 1.5, DvfsLaw::default(), PERIOD, SLOT).is_err());
    }

    #[test]
    fn max_feasible_slowdown_finds_a_factor() {
        let g = benchmarks::wam();
        let candidates = [0.25, 0.5, 0.75, 1.0];
        let (f, scaled) = max_feasible_slowdown(&g, DvfsLaw::default(), PERIOD, SLOT, &candidates)
            .expect("some factor works");
        assert!(f <= 1.0);
        assert!(scaled.validate(PERIOD).is_ok());
        assert!(
            scaled.total_energy() <= g.total_energy() + helio_common::units::Joules::new(1e-12)
        );
    }

    #[test]
    fn scaled_names_record_the_factor() {
        let g = loose_graph();
        let s = scale_graph(&g, 0.75, DvfsLaw::default(), PERIOD, SLOT).unwrap();
        assert_eq!(s.name(), "loose@f0.75");
    }

    #[test]
    fn paper_benchmarks_are_deadline_tight() {
        // The published benchmarks leave little uniform-slowdown slack —
        // the reason refs [5, 6] scale per task rather than globally.
        assert!(scale_graph(&benchmarks::shm(), 0.5, DvfsLaw::default(), PERIOD, SLOT).is_err());
        assert!(scale_graph(&benchmarks::ecg(), 0.75, DvfsLaw::default(), PERIOD, SLOT).is_err());
    }
}
