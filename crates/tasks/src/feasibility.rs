//! Time-feasibility analysis of a task graph on a period, independent
//! of energy: per-NVP utilisation, critical-path length, and minimum
//! per-period energy demand. Planners use these to reason about what a
//! period *could* achieve given unlimited power.

use helio_common::units::{Joules, Seconds};
use serde::{Deserialize, Serialize};

use crate::graph::TaskGraph;

/// Summary of a graph's timing and energy demands over one period.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeasibilityReport {
    /// Per-NVP busy time divided by the period, one entry per NVP.
    pub nvp_utilisation: Vec<f64>,
    /// Length of the longest dependency chain including NVP
    /// serialisation (earliest possible makespan), in seconds.
    pub makespan: Seconds,
    /// Whether every task can meet its deadline with unlimited energy.
    pub time_feasible: bool,
    /// Energy to run every task once.
    pub energy_per_period: Joules,
    /// Average power the graph demands when spread over the full
    /// period.
    pub average_power_mw: f64,
}

/// Analyses `graph` against a period length.
///
/// # Example
///
/// ```
/// use helio_tasks::{analyze, benchmarks};
/// use helio_common::units::Seconds;
///
/// let report = analyze(&benchmarks::wam(), Seconds::new(600.0));
/// assert!(report.time_feasible);
/// assert!(report.energy_per_period.value() > 5.0);
/// ```
pub fn analyze(graph: &TaskGraph, period: Seconds) -> FeasibilityReport {
    let n_nvps = graph.nvp_count();
    let mut busy = vec![0.0f64; n_nvps];
    for task in graph.tasks() {
        busy[task.nvp] += task.exec_time.value();
    }
    let nvp_utilisation: Vec<f64> = busy.iter().map(|b| b / period.value()).collect();

    let (makespan, time_feasible) = match graph.edf_finish_times() {
        Err(_) => (Seconds::new(f64::INFINITY), false),
        Ok(finish) => {
            let mut feasible = true;
            let mut makespan = 0.0f64;
            for id in graph.ids() {
                let end = finish[id.index()].value();
                if end > graph.task(id).deadline.value() + 1e-9 {
                    feasible = false;
                }
                makespan = makespan.max(end);
            }
            (Seconds::new(makespan), feasible)
        }
    };

    let energy = graph.total_energy();
    FeasibilityReport {
        nvp_utilisation,
        makespan,
        time_feasible,
        energy_per_period: energy,
        average_power_mw: (energy / period).milliwatts(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmarks;

    #[test]
    fn wam_report_is_consistent() {
        let r = analyze(&benchmarks::wam(), Seconds::new(600.0));
        assert!(r.time_feasible);
        assert_eq!(r.nvp_utilisation.len(), 3);
        assert!(r.nvp_utilisation.iter().all(|&u| u > 0.0 && u <= 1.0));
        assert!(r.makespan.value() <= 600.0);
        assert!(r.average_power_mw > 5.0 && r.average_power_mw < 80.0);
    }

    #[test]
    fn all_benchmarks_are_time_feasible() {
        for g in benchmarks::all_six() {
            let r = analyze(&g, Seconds::new(600.0));
            assert!(r.time_feasible, "{} not time feasible", g.name());
        }
    }

    #[test]
    fn makespan_covers_longest_chain() {
        // ECG chain: lpf(60) -> hpf1(60) -> hpf2(60) -> qrs(120) ->
        // aes(60) with fft(120) interleaved on NVP1; makespan >= 360 s.
        let r = analyze(&benchmarks::ecg(), Seconds::new(600.0));
        assert!(r.makespan.value() >= 360.0);
    }

    #[test]
    fn infeasible_graph_is_flagged() {
        use crate::task::Task;
        use helio_common::units::Watts;
        // Two 300 s tasks on one NVP, both due by 400 s: even EDF cannot
        // finish the second before 600 s.
        let mut g = TaskGraph::new("tight");
        g.add_task(Task::new(
            "a",
            Seconds::new(300.0),
            Seconds::new(400.0),
            Watts::ZERO,
            0,
        ));
        g.add_task(Task::new(
            "b",
            Seconds::new(300.0),
            Seconds::new(400.0),
            Watts::ZERO,
            0,
        ));
        let r = analyze(&g, Seconds::new(600.0));
        assert!(!r.time_feasible);
        assert!((r.makespan.value() - 600.0).abs() < 1e-9);
    }

    #[test]
    fn edf_order_rescues_tight_deadlines() {
        use crate::task::Task;
        use helio_common::units::Watts;
        // Insertion order is anti-deadline order; EDF still fits both.
        let mut g = TaskGraph::new("edf");
        g.add_task(Task::new(
            "late",
            Seconds::new(300.0),
            Seconds::new(600.0),
            Watts::ZERO,
            0,
        ));
        g.add_task(Task::new(
            "early",
            Seconds::new(300.0),
            Seconds::new(300.0),
            Watts::ZERO,
            0,
        ));
        let r = analyze(&g, Seconds::new(600.0));
        assert!(r.time_feasible);
    }
}
