//! # helio-tasks
//!
//! Task-set substrate for the DAC'15 reproduction: periodic task DAGs
//! with per-period deadlines, execution times and average powers
//! (Table 1's task parameters), the six evaluation benchmarks (the
//! real WAM / ECG / SHM applications plus three random sets), a seeded
//! random-DAG generator, and time-feasibility analysis.
//!
//! The paper characterised its tasks with a C2RTL flow plus
//! ModelSim/Design-Compiler power analysis at SMIC 130 nm; here each
//! benchmark carries execution times and powers in the same ranges
//! (tens of seconds per period, 8–45 mW) — the schedulers only consume
//! `(Sₙ, Dₙ, Pₙ, W, A_k)`.
//!
//! ## Example
//!
//! ```
//! use helio_tasks::benchmarks;
//!
//! let wam = benchmarks::wam();
//! assert_eq!(wam.len(), 8); // the paper's eight WAM tasks
//! assert!(wam.validate(helio_common::units::Seconds::new(600.0)).is_ok());
//! ```

pub mod benchmarks;
pub mod dvfs;
pub mod error;
pub mod feasibility;
pub mod graph;
pub mod random;
pub mod task;

pub use dvfs::{max_feasible_slowdown, scale_graph, DvfsLaw};
pub use error::TaskError;
pub use feasibility::{analyze, FeasibilityReport};
pub use graph::TaskGraph;
pub use random::{random_graph, RandomGraphConfig};
pub use task::{Task, TaskId};
