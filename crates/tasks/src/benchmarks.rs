//! The six evaluation benchmarks (paper Section 6.1).
//!
//! Three real applications — wild-animal monitoring (WAM, 8 tasks),
//! electrocardiogram processing (ECG, 6 tasks) and structural-health
//! monitoring (SHM, 5 tasks) — with the task names given in the paper's
//! footnotes, plus three random benchmarks drawn from the paper's
//! stated ranges (4–8 tasks, 0–2 edges, 2–6 NVPs) with fixed seeds.
//!
//! All benchmarks are designed for the 10-minute period / 60-second
//! slot grid used throughout the evaluation; execution times and powers
//! sit in the ranges a 130 nm NVP sensor platform exhibits.

use helio_common::units::{Seconds, Watts};

use crate::graph::TaskGraph;
use crate::random::{random_graph, RandomGraphConfig};

/// The standard period length all benchmarks target (10 minutes).
pub fn standard_period() -> Seconds {
    Seconds::new(600.0)
}

fn t(
    g: &mut TaskGraph,
    name: &str,
    exec_s: f64,
    deadline_s: f64,
    power_mw: f64,
    nvp: usize,
) -> crate::task::TaskId {
    g.add_task(crate::task::Task::new(
        name,
        Seconds::new(exec_s),
        Seconds::new(deadline_s),
        Watts::from_milliwatts(power_mw),
        nvp,
    ))
}

/// Wild-animal monitoring: the paper's eight tasks — periodic locating,
/// heart-rate sampling, voice recordation, audio process, emergency
/// response, audio compression, local storage, data transmission.
pub fn wam() -> TaskGraph {
    let mut g = TaskGraph::new("wam");
    let locating = t(&mut g, "periodic_locating", 120.0, 300.0, 25.0, 0);
    let heart = t(&mut g, "heart_rate_sampling", 60.0, 150.0, 10.0, 0);
    let voice = t(&mut g, "voice_recordation", 120.0, 240.0, 15.0, 1);
    let audio = t(&mut g, "audio_process", 120.0, 420.0, 35.0, 1);
    let emergency = t(&mut g, "emergency_response", 60.0, 300.0, 20.0, 0);
    let compress = t(&mut g, "audio_compression", 120.0, 480.0, 30.0, 2);
    let storage = t(&mut g, "local_storage", 60.0, 540.0, 12.0, 2);
    let transmit = t(&mut g, "data_transmission", 60.0, 600.0, 45.0, 0);
    let _ = locating;
    g.add_edge(voice, audio).expect("static benchmark");
    g.add_edge(heart, emergency).expect("static benchmark");
    g.add_edge(audio, compress).expect("static benchmark");
    g.add_edge(compress, storage).expect("static benchmark");
    g.add_edge(storage, transmit).expect("static benchmark");
    g
}

/// Electrocardiogram processing: low-pass filter, high-pass filter 1/2,
/// QRS-wave detection, FFT, AES encoder (six tasks).
pub fn ecg() -> TaskGraph {
    let mut g = TaskGraph::new("ecg");
    let lpf = t(&mut g, "low_pass_filter", 60.0, 180.0, 18.0, 0);
    let hpf1 = t(&mut g, "high_pass_filter_1", 60.0, 240.0, 18.0, 0);
    let hpf2 = t(&mut g, "high_pass_filter_2", 60.0, 300.0, 18.0, 0);
    let qrs = t(&mut g, "qrs_detection", 120.0, 480.0, 28.0, 1);
    let fft = t(&mut g, "fft", 120.0, 540.0, 32.0, 1);
    let aes = t(&mut g, "aes_encoder", 60.0, 600.0, 30.0, 0);
    g.add_edge(lpf, hpf1).expect("static benchmark");
    g.add_edge(hpf1, hpf2).expect("static benchmark");
    g.add_edge(hpf2, qrs).expect("static benchmark");
    g.add_edge(hpf2, fft).expect("static benchmark");
    g.add_edge(qrs, aes).expect("static benchmark");
    g
}

/// Structural-health monitoring: temperature sensing, acceleration
/// sensing, FFT, data receiving, data transmitting (five tasks).
pub fn shm() -> TaskGraph {
    let mut g = TaskGraph::new("shm");
    let temp = t(&mut g, "temperature_sensing", 60.0, 180.0, 8.0, 0);
    let accel = t(&mut g, "acceleration_sensing", 120.0, 300.0, 22.0, 0);
    let fft = t(&mut g, "fft", 180.0, 540.0, 35.0, 1);
    let recv = t(&mut g, "data_receiving", 60.0, 300.0, 38.0, 1);
    let tx = t(&mut g, "data_transmitting", 120.0, 600.0, 45.0, 0);
    let _ = (temp, recv);
    g.add_edge(accel, fft).expect("static benchmark");
    g.add_edge(fft, tx).expect("static benchmark");
    g
}

/// Random benchmark `k ∈ {1, 2, 3}` with the paper's stated ranges and a
/// fixed per-benchmark seed.
///
/// # Panics
///
/// Panics for `k` outside `1..=3`.
pub fn random_case(k: usize) -> TaskGraph {
    assert!((1..=3).contains(&k), "random benchmarks are numbered 1..=3");
    let cfg = RandomGraphConfig::paper_ranges();
    random_graph(&format!("random{k}"), 100 + k as u64, &cfg)
}

/// All six benchmarks in the paper's presentation order: the three
/// random cases then WAM, ECG, SHM.
pub fn all_six() -> Vec<TaskGraph> {
    vec![
        random_case(1),
        random_case(2),
        random_case(3),
        wam(),
        ecg(),
        shm(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_benchmarks_have_paper_task_counts() {
        assert_eq!(wam().len(), 8);
        assert_eq!(ecg().len(), 6);
        assert_eq!(shm().len(), 5);
    }

    #[test]
    fn all_benchmarks_validate_against_standard_period() {
        for g in all_six() {
            g.validate(standard_period())
                .unwrap_or_else(|e| panic!("{} invalid: {e}", g.name()));
        }
    }

    #[test]
    fn wam_has_audio_pipeline() {
        let g = wam();
        // voice -> audio -> compression -> storage -> transmission chain.
        let names: Vec<&str> = g.tasks().iter().map(|t| t.name.as_str()).collect();
        assert!(names.contains(&"voice_recordation"));
        assert!(names.contains(&"data_transmission"));
        assert_eq!(g.edge_count(), 5);
    }

    #[test]
    fn benchmark_energies_are_in_sensor_node_range() {
        // Per-period energies must be commensurate with a ~95 mW panel on
        // a 600 s period (tens of joules).
        for g in all_six() {
            let e = g.total_energy().value();
            assert!(
                (2.0..40.0).contains(&e),
                "{}: per-period energy {e} J out of range",
                g.name()
            );
        }
    }

    #[test]
    fn random_cases_stay_within_paper_ranges() {
        for k in 1..=3 {
            let g = random_case(k);
            assert!(
                (4..=8).contains(&g.len()),
                "{}: {} tasks",
                g.name(),
                g.len()
            );
            assert!(
                g.edge_count() <= 2,
                "{}: {} edges",
                g.name(),
                g.edge_count()
            );
            assert!(
                (2..=6).contains(&g.nvp_count()),
                "{}: {} NVPs",
                g.name(),
                g.nvp_count()
            );
        }
    }

    #[test]
    fn random_cases_are_distinct_and_deterministic() {
        assert_eq!(random_case(1), random_case(1));
        assert_ne!(random_case(1), random_case(2));
        assert_ne!(random_case(2), random_case(3));
    }

    #[test]
    #[should_panic(expected = "numbered 1..=3")]
    fn random_case_rejects_bad_index() {
        random_case(4);
    }

    #[test]
    fn all_six_order_matches_paper() {
        let names: Vec<String> = all_six().iter().map(|g| g.name().to_string()).collect();
        assert_eq!(
            names,
            ["random1", "random2", "random3", "wam", "ecg", "shm"]
        );
    }
}
