//! The periodic task model (`τ_n` of Table 1).

use helio_common::units::{Joules, Seconds, Watts};
use serde::{Deserialize, Serialize};

/// Index of a task within its [`TaskGraph`](crate::TaskGraph).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct TaskId(pub usize);

impl TaskId {
    /// The raw index.
    pub const fn index(self) -> usize {
        self.0
    }
}

impl std::fmt::Display for TaskId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "τ{}", self.0)
    }
}

impl From<usize> for TaskId {
    fn from(i: usize) -> Self {
        TaskId(i)
    }
}

/// One periodic task: released at the start of every period, must
/// accumulate `exec_time` of processor time before its `deadline`
/// (measured from the period start), drawing `power` while running, on
/// its assigned NVP.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Task {
    /// Human-readable name (benchmark task names from the paper's
    /// footnotes).
    pub name: String,
    /// Total execution time per period, `S_n`.
    pub exec_time: Seconds,
    /// Relative deadline within the period, `D_n`.
    pub deadline: Seconds,
    /// Average execution power, `P_n^τ`.
    pub power: Watts,
    /// The NVP this task runs on (`A_k` membership); a task is bound to
    /// one NVP.
    pub nvp: usize,
}

impl Task {
    /// Creates a task.
    pub fn new(
        name: impl Into<String>,
        exec_time: Seconds,
        deadline: Seconds,
        power: Watts,
        nvp: usize,
    ) -> Self {
        Self {
            name: name.into(),
            exec_time,
            deadline,
            power,
            nvp,
        }
    }

    /// Energy consumed by one complete execution: `S_n · P_n^τ`.
    pub fn energy(&self) -> Joules {
        self.power * self.exec_time
    }

    /// Number of whole slots of `slot` duration needed to complete the
    /// task (rounded up).
    pub fn slots_needed(&self, slot: Seconds) -> usize {
        (self.exec_time.value() / slot.value()).ceil() as usize
    }

    /// The last slot index (0-based, exclusive bound) by which the task
    /// must have finished: `floor(D_n / Δt)`, i.e. the deadline rounded
    /// *up* to the next slot boundary per Section 3.2's convention.
    pub fn deadline_slot(&self, slot: Seconds) -> usize {
        (self.deadline.value() / slot.value()).ceil() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task() -> Task {
        Task::new(
            "fft",
            Seconds::new(120.0),
            Seconds::new(480.0),
            Watts::from_milliwatts(32.0),
            1,
        )
    }

    #[test]
    fn energy_is_power_times_time() {
        let e = task().energy();
        assert!((e.value() - 0.032 * 120.0).abs() < 1e-12);
    }

    #[test]
    fn slots_needed_rounds_up() {
        let t = task();
        assert_eq!(t.slots_needed(Seconds::new(60.0)), 2);
        assert_eq!(t.slots_needed(Seconds::new(50.0)), 3);
        assert_eq!(t.slots_needed(Seconds::new(120.0)), 1);
    }

    #[test]
    fn deadline_slot_rounds_up() {
        let t = task();
        assert_eq!(t.deadline_slot(Seconds::new(60.0)), 8);
        let odd = Task::new("x", Seconds::new(60.0), Seconds::new(130.0), Watts::ZERO, 0);
        // 130 s with 60 s slots: the nearest slot boundary after the
        // deadline is slot 3's start.
        assert_eq!(odd.deadline_slot(Seconds::new(60.0)), 3);
    }

    #[test]
    fn task_id_display_and_conversion() {
        let id: TaskId = 3.into();
        assert_eq!(id.to_string(), "τ3");
        assert_eq!(id.index(), 3);
    }
}
