//! Seeded random task-graph generation (the paper's three random
//! benchmarks: 4–8 tasks, 0–2 edges, 2–6 NVPs).

use helio_common::rng::seeded;
use helio_common::units::{Seconds, Watts};
use rand::Rng;
use serde::Serialize;

use crate::graph::TaskGraph;
use crate::task::{Task, TaskId};

/// Parameter ranges for random graph generation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct RandomGraphConfig {
    /// Inclusive task-count range.
    pub tasks: (usize, usize),
    /// Inclusive edge-count range (attempted; fewer if no legal edge
    /// remains).
    pub edges: (usize, usize),
    /// Inclusive NVP-count range.
    pub nvps: (usize, usize),
    /// Execution-time choices (s); the generator picks whole slots.
    pub exec_choices: &'static [f64],
    /// Power range (mW).
    pub power_mw: (f64, f64),
    /// Period the deadlines must fit into (s).
    pub period: f64,
}

impl RandomGraphConfig {
    /// The paper's stated ranges on the standard 10-minute period.
    pub fn paper_ranges() -> Self {
        Self {
            tasks: (4, 8),
            edges: (0, 2),
            nvps: (2, 6),
            exec_choices: &[60.0, 120.0, 180.0],
            power_mw: (8.0, 45.0),
            period: 600.0,
        }
    }
}

impl Default for RandomGraphConfig {
    fn default() -> Self {
        Self::paper_ranges()
    }
}

/// Generates a random, always-valid task graph.
///
/// The generator draws task counts, execution times, powers and NVP
/// assignments from the configured ranges, adds forward edges only
/// (guaranteeing acyclicity), then assigns each task a deadline no
/// earlier than its earliest possible finish under NVP serialisation —
/// so the result always passes [`TaskGraph::validate`].
///
/// # Panics
///
/// Panics when the configuration ranges are inverted or empty.
pub fn random_graph(name: &str, seed: u64, cfg: &RandomGraphConfig) -> TaskGraph {
    assert!(
        cfg.tasks.0 >= 1 && cfg.tasks.0 <= cfg.tasks.1,
        "bad task range"
    );
    assert!(cfg.edges.0 <= cfg.edges.1, "bad edge range");
    assert!(cfg.nvps.0 >= 1 && cfg.nvps.0 <= cfg.nvps.1, "bad NVP range");
    assert!(!cfg.exec_choices.is_empty(), "need execution-time choices");

    // Rejection sampling: some draws are overloaded (one NVP gets more
    // work than the period holds) or deadline-assignment reorders EDF in
    // a way that cannot be repaired; draw again with a derived seed.
    for attempt in 0..256u64 {
        let candidate = try_random_graph(
            name,
            seed.wrapping_mul(0x9e37_79b9).wrapping_add(attempt),
            cfg,
        );
        if let Some(g) = candidate {
            return g;
        }
    }
    unreachable!("random graph generation failed to converge for seed {seed}");
}

fn try_random_graph(name: &str, seed: u64, cfg: &RandomGraphConfig) -> Option<TaskGraph> {
    let mut rng = seeded(seed);
    let n_tasks = rng.gen_range(cfg.tasks.0..=cfg.tasks.1);
    let n_edges = rng.gen_range(cfg.edges.0..=cfg.edges.1);
    let n_nvps = rng.gen_range(cfg.nvps.0..=cfg.nvps.1);

    let mut g = TaskGraph::new(name);
    for i in 0..n_tasks {
        let exec = cfg.exec_choices[rng.gen_range(0..cfg.exec_choices.len())];
        let power = rng.gen_range(cfg.power_mw.0..=cfg.power_mw.1);
        let nvp = rng.gen_range(0..n_nvps);
        // Deadline placeholder; fixed up below.
        g.add_task(Task::new(
            format!("{name}_t{i}"),
            Seconds::new(exec),
            Seconds::new(cfg.period),
            Watts::from_milliwatts(power),
            nvp,
        ));
    }

    // Forward edges (i -> j with i < j) keep the graph acyclic.
    let mut attempts = 0;
    let mut added = 0;
    while added < n_edges && attempts < 64 && n_tasks >= 2 {
        attempts += 1;
        let from = rng.gen_range(0..n_tasks - 1);
        let to = rng.gen_range(from + 1..n_tasks);
        if g.add_edge(TaskId(from), TaskId(to)).is_ok() {
            added += 1;
        }
    }

    // Earliest finish per task under EDF list scheduling (all deadlines
    // are still the period here, so this is plain list scheduling), then
    // deadline = finish + random slack, capped at the period.
    let finish: Vec<f64> = g
        .edf_finish_times()
        .expect("forward edges are acyclic")
        .into_iter()
        .map(|s| s.value())
        .collect();
    if finish.iter().any(|&f| f > cfg.period + 1e-9) {
        return None; // overloaded draw
    }
    // Rebuild with deadlines (TaskGraph is append-only by design).
    let mut out = TaskGraph::new(name);
    for (i, task) in g.tasks().iter().enumerate() {
        let earliest = finish[i];
        let slack_max = (cfg.period - earliest).max(0.0);
        let slack = rng.gen_range(0.0..=slack_max.max(1e-9));
        // Round the deadline to a slot boundary for clean slot math.
        let deadline = ((earliest + slack) / 60.0).ceil() * 60.0;
        out.add_task(Task::new(
            task.name.clone(),
            task.exec_time,
            Seconds::new(deadline.min(cfg.period)),
            task.power,
            task.nvp,
        ));
    }
    for &(from, to) in g.edges() {
        out.add_edge(from, to).expect("edges already deduplicated");
    }
    // New deadlines can reorder EDF; raise violated deadlines to the new
    // finish times until a fixpoint (or give up and resample).
    for _ in 0..8 {
        if out.validate(Seconds::new(cfg.period)).is_ok() {
            return Some(out);
        }
        let finish = out.edf_finish_times().ok()?;
        if finish.iter().any(|f| f.value() > cfg.period + 1e-9) {
            return None;
        }
        let mut fixed = TaskGraph::new(name);
        for (i, task) in out.tasks().iter().enumerate() {
            let needed = (finish[i].value() / 60.0).ceil() * 60.0;
            let deadline = task.deadline.value().max(needed).min(cfg.period);
            fixed.add_task(Task::new(
                task.name.clone(),
                task.exec_time,
                Seconds::new(deadline),
                task.power,
                task.nvp,
            ));
        }
        for &(from, to) in out.edges() {
            fixed
                .add_edge(from, to)
                .expect("edges already deduplicated");
        }
        out = fixed;
    }
    out.validate(Seconds::new(cfg.period)).ok().map(|()| out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_graphs_always_validate() {
        let cfg = RandomGraphConfig::paper_ranges();
        for seed in 0..50 {
            let g = random_graph("r", seed, &cfg);
            g.validate(Seconds::new(cfg.period))
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = RandomGraphConfig::paper_ranges();
        assert_eq!(random_graph("r", 9, &cfg), random_graph("r", 9, &cfg));
        assert_ne!(random_graph("r", 9, &cfg), random_graph("r", 10, &cfg));
    }

    #[test]
    fn ranges_are_respected() {
        let cfg = RandomGraphConfig::paper_ranges();
        for seed in 0..30 {
            let g = random_graph("r", seed, &cfg);
            assert!((4..=8).contains(&g.len()));
            assert!(g.edge_count() <= 2);
            assert!(g.nvp_count() <= 6);
        }
    }

    #[test]
    fn deadlines_land_on_slot_boundaries() {
        let cfg = RandomGraphConfig::paper_ranges();
        let g = random_graph("r", 3, &cfg);
        for task in g.tasks() {
            let d = task.deadline.value();
            assert!(
                (d / 60.0).fract().abs() < 1e-9,
                "deadline {d} not slot-aligned"
            );
        }
    }

    #[test]
    #[should_panic(expected = "bad task range")]
    fn rejects_inverted_ranges() {
        let mut cfg = RandomGraphConfig::paper_ranges();
        cfg.tasks = (5, 2);
        random_graph("r", 0, &cfg);
    }
}
