//! The distilled decision artifact as a fleet asset: the service
//! distils the shared DBN at startup (through the JSON serde path a
//! pre-built asset would take), serves `distilled` scenarios from the
//! `Arc`-shared artifact, and degrades cleanly when the config never
//! built one.

use std::io::Cursor;

use helio_fleet::serve;

/// Tiny everything: one 4-period day keeps the startup DBN training
/// and the distillation pass fast enough for debug-mode CI.
const CONFIG: &str = r#"{"grid":{"days":1,"periods":4,"slots":10},"capacitors_farads":[2.0,15.0],"threads":2,"dbn":{"seed":7,"bp_epochs":10},"distill":{"seed":7,"depth_const":3,"depth_vary":3,"samples":1024,"holdout":256}}"#;

fn session(config: &str, requests: &[&str]) -> Vec<u8> {
    let mut bytes = config.as_bytes().to_vec();
    bytes.push(b'\n');
    for r in requests {
        bytes.extend_from_slice(r.as_bytes());
        bytes.push(b'\n');
    }
    bytes
}

#[test]
fn distilled_scenarios_serve_from_the_shared_artifact() {
    let input = session(
        CONFIG,
        &[
            // The artifact row next to its own fallback tier, plus a
            // resilient wrapping — the full chain the robustness
            // suite exercises.
            r#"{"id":1,"scenarios":[{"planner":"distilled"},{"planner":"compiled-dbn"},{"planner":"distilled","resilient":true}]}"#,
        ],
    );
    let mut out = Vec::new();
    let service = serve(Cursor::new(input), &mut out).expect("session serves");
    assert_eq!(service.scenarios_served(), 3);
    let out = String::from_utf8(out).expect("utf-8 output");
    let lines: Vec<&str> = out.lines().collect();
    assert_eq!(lines.len(), 3, "one report per scenario: {out}");
    assert!(
        lines[0].contains(r#""planner":"distilled""#),
        "{}",
        lines[0]
    );
    assert!(
        lines[1].contains(r#""planner":"compiled-dbn""#),
        "{}",
        lines[1]
    );
    assert!(
        lines[2].contains(r#""planner":"resilient""#),
        "{}",
        lines[2]
    );
}

#[test]
fn distilled_runs_are_deterministic_across_sessions() {
    // The serde round-trip at startup must not perturb the artifact:
    // two fresh services answer a distilled request byte-identically.
    let run = || {
        let input = session(
            CONFIG,
            &[r#"{"id":9,"scenarios":[{"planner":"distilled","seed":5}]}"#],
        );
        let mut out = Vec::new();
        serve(Cursor::new(input), &mut out).expect("session serves");
        out
    };
    assert_eq!(run(), run());
}

#[test]
fn distilled_without_a_distill_spec_degrades_inline() {
    let config = r#"{"grid":{"days":1,"periods":4,"slots":10},"capacitors_farads":[2.0],"threads":1}"#;
    let input = session(
        config,
        &[r#"{"id":2,"scenarios":[{"planner":"distilled"}]}"#],
    );
    let mut out = Vec::new();
    serve(Cursor::new(input), &mut out).expect("session keeps serving");
    let out = String::from_utf8(out).expect("utf-8 output");
    assert!(
        out.starts_with(r#"{"id":2,"error":"#) && out.contains("no `distill` spec"),
        "{out}"
    );
}

#[test]
fn distill_without_a_dbn_is_a_config_error() {
    let config = r#"{"grid":{"days":1,"periods":4,"slots":10},"capacitors_farads":[2.0],"distill":{}}"#;
    let input = session(config, &[]);
    let mut out = Vec::new();
    let Err(err) = serve(Cursor::new(input), &mut out) else {
        panic!("config accepted a distill spec with no dbn");
    };
    assert!(err.to_string().contains("requires a `dbn` spec"), "{err}");
}
