//! Service-level robustness: deadlines, request caps, chaos
//! kill/resume with zero lost or duplicated lines, panic quarantine
//! and graceful shutdown — all in-process through [`serve_with`].

use std::io::Cursor;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use helio_fleet::{serve, serve_with, ServeOptions, SessionOutcome};

const CONFIG: &str =
    r#"{"grid":{"days":1,"periods":8,"slots":10},"capacitors_farads":[2.0,15.0],"threads":2}"#;

fn session(requests: &[&str]) -> Vec<u8> {
    let mut bytes = CONFIG.as_bytes().to_vec();
    bytes.push(b'\n');
    for r in requests {
        bytes.extend_from_slice(r.as_bytes());
        bytes.push(b'\n');
    }
    bytes
}

/// A scratch directory unique per test, wiped on entry so reruns
/// start clean.
fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("helio-fleet-test-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn deadline_zero_answers_deadline_errors() {
    let input = session(&[
        r#"{"id":7,"scenarios":[{"planner":"inter"},{"planner":"asap"}]}"#,
        r#"{"id":8,"scenarios":[{"planner":"intra"}]}"#,
    ]);
    let mut out = Vec::new();
    let summary = serve_with(
        Cursor::new(input),
        &mut out,
        &ServeOptions {
            deadline_ms: Some(0),
            ..ServeOptions::default()
        },
    )
    .expect("session serves");
    assert_eq!(summary.outcome, SessionOutcome::Eof);
    let out = String::from_utf8(out).expect("utf-8 output");
    let lines: Vec<&str> = out.lines().collect();
    assert_eq!(
        lines,
        vec![
            r#"{"id":7,"error":"deadline"}"#,
            r#"{"id":8,"error":"deadline"}"#
        ]
    );
    // An expired request is not counted as served.
    assert_eq!(summary.service.requests_served(), 0);
}

#[test]
fn max_batch_rejects_oversized_requests_inline() {
    let input = session(&[
        r#"{"id":1,"scenarios":[{"planner":"inter"},{"planner":"asap"},{"planner":"intra"}]}"#,
        r#"{"id":2,"scenarios":[{"planner":"inter"}]}"#,
    ]);
    let mut out = Vec::new();
    serve_with(
        Cursor::new(input),
        &mut out,
        &ServeOptions {
            max_batch: Some(2),
            ..ServeOptions::default()
        },
    )
    .expect("session serves");
    let out = String::from_utf8(out).expect("utf-8 output");
    let lines: Vec<&str> = out.lines().collect();
    assert_eq!(lines.len(), 2, "one rejection + one report: {out}");
    assert!(lines[0].starts_with(r#"{"id":1,"error":"#), "{}", lines[0]);
    assert!(lines[0].contains("exceeding the cap of 2"), "{}", lines[0]);
    assert!(lines[1].starts_with(r#"{"id":2,"index":0,"report":"#));
}

#[test]
fn chaos_kill_then_resume_loses_and_duplicates_nothing() {
    let requests = [
        r#"{"id":1,"scenarios":[{"planner":"inter"},{"planner":"asap","seed":3}]}"#,
        r#"{"id":2,"scenarios":[{"planner":"intra","seed":5}]}"#,
        r#"{"id":3,"scenarios":[{"planner":"inter","seed":9,"resilient":true}]}"#,
    ];
    let input = session(&requests);

    // The uninterrupted session is the reference output.
    let mut reference = Vec::new();
    serve(Cursor::new(input.clone()), &mut reference).expect("reference session");

    for kill_period in [0, 3, 8] {
        let dir = scratch_dir(&format!("killresume{kill_period}"));
        let opts = ServeOptions {
            checkpoint_dir: Some(dir.clone()),
            checkpoint_every: Some(2),
            chaos: helio_faults::ServiceFaultPlan {
                kill_request: Some(2),
                kill_at_period: Some(kill_period),
                ..Default::default()
            },
            ..ServeOptions::default()
        };
        let mut part1 = Vec::new();
        let summary =
            serve_with(Cursor::new(input.clone()), &mut part1, &opts).expect("killed session");
        assert_eq!(
            summary.outcome,
            SessionOutcome::ChaosKill {
                request: 2,
                period: kill_period
            }
        );

        // Restart against the same directory, no chaos: the service
        // must skip request 1, resume request 2 mid-simulation and
        // finish request 3.
        let opts = ServeOptions {
            checkpoint_dir: Some(dir.clone()),
            checkpoint_every: Some(2),
            ..ServeOptions::default()
        };
        let mut part2 = Vec::new();
        let summary =
            serve_with(Cursor::new(input.clone()), &mut part2, &opts).expect("resumed session");
        assert_eq!(summary.outcome, SessionOutcome::Eof);

        let mut joined = part1.clone();
        joined.extend_from_slice(&part2);
        assert_eq!(
            String::from_utf8(joined).expect("utf-8"),
            String::from_utf8(reference.clone()).expect("utf-8"),
            "kill at period {kill_period}: concatenated output diverged"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn panicking_scenario_is_quarantined_not_fatal() {
    let input = session(&[
        r#"{"id":4,"scenarios":[{"planner":"inter"},{"planner":"chaos-panic:2","seed":1},{"planner":"asap"}]}"#,
        r#"{"id":5,"scenarios":[{"planner":"inter"}]}"#,
    ]);
    // Reference reports for the healthy scenarios, simulated alone.
    let mut reference = Vec::new();
    serve(
        Cursor::new(session(&[
            r#"{"id":4,"scenarios":[{"planner":"inter"}]}"#,
            r#"{"id":5,"scenarios":[{"planner":"inter"}]}"#,
        ])),
        &mut reference,
    )
    .expect("reference session");
    let reference = String::from_utf8(reference).expect("utf-8");
    let healthy_report = reference
        .lines()
        .next()
        .and_then(|l| l.split_once(r#""report":"#))
        .map(|(_, r)| r)
        .expect("reference report");

    let mut out = Vec::new();
    let summary = serve_with(Cursor::new(input), &mut out, &ServeOptions::default())
        .expect("panicking scenario must not abort the session");
    assert_eq!(summary.outcome, SessionOutcome::Eof);
    let out = String::from_utf8(out).expect("utf-8");
    let lines: Vec<&str> = out.lines().collect();
    assert_eq!(lines.len(), 4, "3 scenario lines + 1 follow-up: {out}");
    // Healthy scenarios answer byte-identically to running alone.
    assert!(
        lines[0].ends_with(healthy_report),
        "quarantine changed a healthy report"
    );
    assert!(
        lines[1].starts_with(r#"{"id":4,"index":1,"error":"#),
        "{}",
        lines[1]
    );
    assert!(lines[1].contains("panic"), "{}", lines[1]);
    assert!(lines[2].starts_with(r#"{"id":4,"index":2,"report":"#));
    // The session keeps serving after the quarantine.
    assert!(lines[3].starts_with(r#"{"id":5,"index":0,"report":"#));
}

#[test]
fn shutdown_flag_drains_and_checkpoints() {
    let dir = scratch_dir("shutdown");
    let flag = Arc::new(AtomicBool::new(true)); // already raised: drain immediately
    let input = session(&[r#"{"id":1,"scenarios":[{"planner":"inter"}]}"#]);
    let mut out = Vec::new();
    let summary = serve_with(
        Cursor::new(input.clone()),
        &mut out,
        &ServeOptions {
            checkpoint_dir: Some(dir.clone()),
            shutdown: Some(Arc::clone(&flag)),
            ..ServeOptions::default()
        },
    )
    .expect("shutdown session");
    assert_eq!(summary.outcome, SessionOutcome::Shutdown);
    assert!(out.is_empty(), "drained before answering anything");

    // A restart with the flag lowered finishes the session; output
    // matches a run that never shut down.
    flag.store(false, Ordering::SeqCst);
    let mut rest = Vec::new();
    let summary = serve_with(
        Cursor::new(input.clone()),
        &mut rest,
        &ServeOptions {
            checkpoint_dir: Some(dir.clone()),
            ..ServeOptions::default()
        },
    )
    .expect("restarted session");
    assert_eq!(summary.outcome, SessionOutcome::Eof);
    let mut reference = Vec::new();
    serve(Cursor::new(input), &mut reference).expect("reference session");
    assert_eq!(rest, reference);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_checkpoint_state_degrades_to_a_fresh_session() {
    let dir = scratch_dir("corrupt");
    std::fs::create_dir_all(&dir).expect("mkdir");
    std::fs::write(dir.join("session.json"), b"{torn write").expect("write");
    std::fs::write(dir.join("inflight.json"), b"\x00garbage").expect("write");
    let input = session(&[r#"{"id":1,"scenarios":[{"planner":"inter"}]}"#]);
    let mut out = Vec::new();
    let mut reference = Vec::new();
    serve(Cursor::new(input.clone()), &mut reference).expect("reference session");
    serve_with(
        Cursor::new(input),
        &mut out,
        &ServeOptions {
            checkpoint_dir: Some(dir.clone()),
            ..ServeOptions::default()
        },
    )
    .expect("corrupt state must not abort the session");
    assert_eq!(out, reference);
    let _ = std::fs::remove_dir_all(&dir);
}
