//! Fuzzes the fleet service's line-protocol parser: arbitrary bytes on
//! the request stream must never panic or abort the session, and every
//! malformed non-blank line must answer with exactly one inline error
//! line while the session keeps serving.

use std::io::Cursor;

use helio_fleet::{serve_with, FleetRequest, ServeOptions, SessionOutcome};
use proptest::prelude::*;

/// A tiny config (no DBN training) so each case runs in microseconds.
const CONFIG: &str =
    r#"{"grid":{"days":1,"periods":4,"slots":10},"capacitors_farads":[2.0],"threads":1}"#;

/// Mirrors the service's per-line accounting for lines that cannot be
/// a valid request: `None` for skipped blank lines, `Some(1)` for the
/// single inline error line, and `Unknown` when the line parses as a
/// request (its response line count depends on scenario validation).
enum Expected {
    Skipped,
    ErrorLine,
    Unknown,
}

fn classify(line: &[u8]) -> Expected {
    if line.iter().all(|b| b.is_ascii_whitespace()) {
        return Expected::Skipped;
    }
    let Ok(text) = std::str::from_utf8(line) else {
        return Expected::ErrorLine;
    };
    match serde_json::from_str::<FleetRequest>(text) {
        Err(_) => Expected::ErrorLine,
        Ok(_) => Expected::Unknown,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn arbitrary_bytes_never_kill_the_session(
        lines in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..120), 0..8),
    ) {
        let mut session = CONFIG.as_bytes().to_vec();
        session.push(b'\n');
        let mut expected_errors = 0usize;
        let mut all_classified = true;
        for line in &lines {
            // Keep the line framing: the generator's newlines would
            // split one fuzz line into several protocol lines.
            let mut line: Vec<u8> = line.iter().map(|&b| if b == b'\n' { b' ' } else { b }).collect();
            match classify(&line) {
                Expected::Skipped => {}
                Expected::ErrorLine => expected_errors += 1,
                Expected::Unknown => all_classified = false,
            }
            session.append(&mut line);
            session.push(b'\n');
        }

        let mut out = Vec::new();
        let summary = serve_with(Cursor::new(session), &mut out, &ServeOptions::default())
            .expect("garbage request lines must not abort the session");
        prop_assert_eq!(summary.outcome, SessionOutcome::Eof);

        let out = String::from_utf8(out).expect("protocol output is UTF-8");
        let responses: Vec<&str> = out.lines().collect();
        for line in &responses {
            let v = serde_json::parse_value(line).expect("every response line is valid JSON");
            let is_error = v.field("error").is_ok();
            let is_report = v.field("report").is_ok();
            prop_assert!(is_error || is_report, "unexpected response line: {line}");
        }
        if all_classified {
            // No fuzz line parsed as a real request, so the output is
            // exactly one error line per malformed line.
            prop_assert_eq!(responses.len(), expected_errors);
            prop_assert!(responses.iter().all(|l| l.starts_with("{\"error\":")
                || l.contains("\"error\":")));
        } else {
            prop_assert!(responses.len() >= expected_errors);
        }
    }

    #[test]
    fn byte_capped_lines_each_answer_one_error(
        lens in prop::collection::vec(1usize..4096, 1..6),
    ) {
        let mut session = CONFIG.as_bytes().to_vec();
        session.push(b'\n');
        let cap = 256;
        let expected: usize = lens.iter().filter(|&&l| l > 0).count();
        for (i, &len) in lens.iter().enumerate() {
            // Oversized or not, every non-blank line gets an answer.
            let fill = if len > cap { b'x' } else { b'!' + (i as u8 % 16) };
            session.extend(std::iter::repeat_n(fill, len));
            session.push(b'\n');
        }
        let mut out = Vec::new();
        serve_with(
            Cursor::new(session),
            &mut out,
            &ServeOptions {
                max_line_bytes: Some(cap),
                ..ServeOptions::default()
            },
        )
        .expect("oversized lines must not abort the session");
        let out = String::from_utf8(out).expect("protocol output is UTF-8");
        prop_assert_eq!(out.lines().count(), expected);
        prop_assert!(out.lines().all(|l| l.contains("\"error\":")));
    }
}
