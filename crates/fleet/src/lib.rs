//! The fleet-simulation service: a long-lived process that accepts
//! JSON scenario-batch requests and streams back one [`SimReport`]
//! per scenario, sharding each batch across the `helio-par` worker
//! pool.
//!
//! ## Protocol
//!
//! Line-delimited JSON over any `BufRead`/`Write` pair (stdin/stdout
//! by default, one TCP connection in `--listen` mode):
//!
//! 1. The **first** line is the fleet configuration — node, grid, task
//!    benchmark, planner hyper-parameters, optional DBN training spec,
//!    optional worker count. Everything derivable once is derived
//!    once: the [`PlanContext`], the trained DBN, the per-worker
//!    [`BatchScratch`]es.
//! 2. Every following line is a request: `{"id": N, "scenarios":
//!    [...]}`. Scenarios within a request run as one sharded lockstep
//!    batch.
//! 3. The service answers each request with one line per scenario, in
//!    scenario order — `{"id": N, "index": I, "report": {...}}` — and
//!    keeps the connection open for the next request. A malformed
//!    request line produces a single `{"error": "..."}` (or
//!    `{"id": N, "error": "..."}`) line and the service keeps serving.
//!
//! Output lines are deterministic functions of the input (reports are
//! byte-identical to `Engine::run_with_faults`), so a recorded session
//! can be replayed and diffed bytewise — the CI smoke test does
//! exactly that. Telemetry (timings, worker counts) never goes to the
//! protocol stream.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::panic))]

use std::io::{BufRead, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use helio_ann::{CompiledDbn, CompiledTier, Dbn, DbnConfig, DistillConfig, DistilledPolicy};
use helio_common::time::TimeGrid;
use helio_common::units::{Farads, Seconds};
use helio_faults::{FaultHarness, FaultPlan, ServiceFaultPlan};
use helio_solar::{DayArchetype, NoisyOracle, SolarPanel, SolarTrace, TraceBuilder};
use helio_tasks::{benchmarks, TaskGraph};
use heliosched::{
    BatchCheckpoint, BatchEngine, BatchRunState, BatchScenario, BatchScratch, CoreError, DpConfig,
    FixedPlanner, NodeConfig, OptimalPlanner, Pattern, PeriodPlanner, PlanContext, PlanDecision,
    PlannerObservation, ProposedPlanner, ResilientPlanner, SimReport, SwitchRule,
};
use serde::{Deserialize, Serialize, Value};

/// Anything that can go wrong while configuring or serving the fleet.
#[derive(Debug)]
pub enum FleetError {
    /// A protocol line failed to parse or validate.
    Protocol(String),
    /// The fleet configuration is unusable.
    Config(String),
    /// The simulation engine rejected a scenario.
    Engine(String),
    /// The transport failed (broken pipe, socket error).
    Io(String),
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetError::Protocol(m) => write!(f, "protocol error: {m}"),
            FleetError::Config(m) => write!(f, "config error: {m}"),
            FleetError::Engine(m) => write!(f, "engine error: {m}"),
            FleetError::Io(m) => write!(f, "io error: {m}"),
        }
    }
}

impl std::error::Error for FleetError {}

impl From<CoreError> for FleetError {
    fn from(e: CoreError) -> Self {
        FleetError::Engine(e.to_string())
    }
}

impl From<std::io::Error> for FleetError {
    fn from(e: std::io::Error) -> Self {
        FleetError::Io(e.to_string())
    }
}

/// Service-level knobs for [`serve_with`]: request caps, wall-clock
/// deadlines, crash-safe checkpointing, graceful shutdown and the
/// chaos harness. The default is exactly the legacy [`serve`]
/// behaviour.
#[derive(Debug, Default)]
pub struct ServeOptions {
    /// Reject (with an inline `{"id":N,"error":…}` line) any request
    /// carrying more scenarios than this.
    pub max_batch: Option<usize>,
    /// Reject (with an inline error line) any protocol line longer
    /// than this many bytes; the oversized remainder is drained so the
    /// session keeps its line framing.
    pub max_line_bytes: Option<usize>,
    /// Per-request wall-clock deadline. An expired request answers
    /// with a single `{"id":N,"error":"deadline"}` line instead of its
    /// reports and the session moves on.
    pub deadline_ms: Option<u64>,
    /// Persist session progress here (`session.json` + mid-request
    /// `inflight.json`). A restarted service pointed at the same
    /// directory skips already-answered lines and resumes the
    /// interrupted request from its last period-boundary checkpoint.
    pub checkpoint_dir: Option<PathBuf>,
    /// Periods between mid-request checkpoints / deadline checks;
    /// defaults to one day's worth of periods when any of the
    /// segmenting features (checkpointing, deadlines, chaos kill,
    /// shutdown flag) is active.
    pub checkpoint_every: Option<usize>,
    /// Chaos injection: [`serve_with`] honours the plan's
    /// [`kill_point`](ServiceFaultPlan::kill_point) by checkpointing
    /// and returning [`SessionOutcome::ChaosKill`] at that period
    /// boundary, as if the process had lost power. The other fields
    /// drive `bench_chaos` (writer stalls, line corruption).
    pub chaos: ServiceFaultPlan,
    /// Cooperative shutdown flag, typically raised by a SIGTERM/SIGINT
    /// handler: the service finishes the segment in flight, persists a
    /// final checkpoint and returns [`SessionOutcome::Shutdown`].
    pub shutdown: Option<Arc<AtomicBool>>,
}

/// Why [`serve_with`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionOutcome {
    /// The peer closed the stream; every request was answered.
    Eof,
    /// The shutdown flag was raised; progress is checkpointed.
    Shutdown,
    /// The chaos plan killed the service mid-request, after its
    /// checkpoint was persisted — a restart with the same checkpoint
    /// directory resumes from `period`.
    ChaosKill {
        /// 1-based ordinal of the request line being simulated.
        request: u64,
        /// First period the resumed run will execute.
        period: usize,
    },
}

/// What [`serve_with`] hands back: the service (for its telemetry
/// counters) plus why the session ended.
pub struct SessionSummary {
    /// The service, with its telemetry counters.
    pub service: FleetService,
    /// Why the session ended.
    pub outcome: SessionOutcome,
}

/// Result of [`read_raw_line`].
enum RawLine {
    /// Stream ended with no pending bytes.
    Eof,
    /// The line exceeded the byte cap; its remainder was drained.
    TooLong,
    /// A complete line (terminator stripped) is in the buffer.
    Line,
}

/// Reads one `\n`-terminated line as raw bytes — no UTF-8 requirement,
/// so a client splicing garbage into the stream degrades one request
/// instead of killing the session. Caps the buffered length at `max`
/// while still consuming the oversized remainder, keeping the line
/// framing intact for the next read. Strips a trailing `\r`.
fn read_raw_line<R: BufRead>(
    input: &mut R,
    max: Option<usize>,
    buf: &mut Vec<u8>,
) -> std::io::Result<RawLine> {
    buf.clear();
    let mut overflowed = false;
    loop {
        let chunk = input.fill_buf()?;
        if chunk.is_empty() {
            return Ok(if overflowed {
                RawLine::TooLong
            } else if buf.is_empty() {
                RawLine::Eof
            } else {
                strip_cr(buf);
                RawLine::Line
            });
        }
        let newline = chunk.iter().position(|&b| b == b'\n');
        let take = newline.unwrap_or(chunk.len());
        if !overflowed {
            buf.extend_from_slice(&chunk[..take]);
            if let Some(cap) = max {
                if buf.len() > cap {
                    buf.truncate(cap);
                    overflowed = true;
                }
            }
        }
        let consumed = newline.map_or(take, |n| n + 1);
        input.consume(consumed);
        if newline.is_some() {
            return Ok(if overflowed {
                RawLine::TooLong
            } else {
                strip_cr(buf);
                RawLine::Line
            });
        }
    }
}

fn strip_cr(buf: &mut Vec<u8>) {
    if buf.last() == Some(&b'\r') {
        buf.pop();
    }
}

/// The request the service was simulating when it last checkpointed:
/// enough to resume without replaying the finished periods.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct InflightRecord {
    /// 1-based ordinal of the request line within the session.
    ordinal: u64,
    /// The raw request line, echoed to detect a drifted session.
    line: String,
    /// The mid-request engine checkpoint.
    checkpoint: BatchCheckpoint,
}

/// Crash-safe session persistence: `session.json` records how many
/// request lines are fully answered, `inflight.json` the mid-request
/// checkpoint. Both go through a temp file + rename so a crash
/// mid-write never corrupts the previous state.
struct SessionStore {
    dir: PathBuf,
}

impl SessionStore {
    fn new(dir: &Path) -> Result<Self, FleetError> {
        std::fs::create_dir_all(dir)
            .map_err(|e| FleetError::Config(format!("checkpoint dir {}: {e}", dir.display())))?;
        Ok(Self {
            dir: dir.to_path_buf(),
        })
    }

    fn session_path(&self) -> PathBuf {
        self.dir.join("session.json")
    }

    fn inflight_path(&self) -> PathBuf {
        self.dir.join("inflight.json")
    }

    fn write_atomic(&self, path: &Path, contents: &str) -> Result<(), FleetError> {
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = PathBuf::from(tmp);
        std::fs::write(&tmp, contents)?;
        std::fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Count of fully answered request lines; zero when the state is
    /// absent or unreadable (a torn write loses at most one line of
    /// progress, never the session).
    fn load_completed(&self) -> u64 {
        let Ok(text) = std::fs::read_to_string(self.session_path()) else {
            return 0;
        };
        serde_json::parse_value(&text)
            .ok()
            .and_then(|v| v.field("completed").ok().map(u64::deserialize_json))
            .and_then(Result::ok)
            .unwrap_or(0)
    }

    fn save_completed(&self, completed: u64) -> Result<(), FleetError> {
        self.write_atomic(
            &self.session_path(),
            &format!("{{\"completed\":{completed}}}"),
        )
    }

    fn load_inflight(&self) -> Option<InflightRecord> {
        let text = std::fs::read_to_string(self.inflight_path()).ok()?;
        serde_json::from_str(&text).ok()
    }

    fn save_inflight(&self, rec: &InflightRecord) -> Result<(), FleetError> {
        let json = serde_json::to_string(rec)
            .map_err(|e| FleetError::Engine(format!("checkpoint serialisation failed: {e}")))?;
        self.write_atomic(&self.inflight_path(), &json)
    }

    fn clear_inflight(&self) {
        let _ = std::fs::remove_file(self.inflight_path());
    }
}

fn opt<T: Deserialize>(v: &Value, name: &str) -> Result<Option<T>, serde::DeError> {
    match v.field(name) {
        Ok(Value::Null) | Err(_) => Ok(None),
        Ok(inner) => Ok(Some(T::deserialize_json(inner)?)),
    }
}

/// Grid dimensions of every scenario the service simulates.
#[derive(Debug, Clone, Copy)]
pub struct GridSpec {
    /// Days per scenario.
    pub days: usize,
    /// Periods per day.
    pub periods: usize,
    /// Slots per period.
    pub slots: usize,
    /// Slot duration in seconds.
    pub slot_seconds: f64,
}

impl Deserialize for GridSpec {
    fn deserialize_json(v: &Value) -> Result<Self, serde::DeError> {
        Ok(Self {
            days: usize::deserialize_json(v.field("days")?)?,
            periods: usize::deserialize_json(v.field("periods")?)?,
            slots: usize::deserialize_json(v.field("slots")?)?,
            slot_seconds: opt(v, "slot_seconds")?.unwrap_or(60.0),
        })
    }
}

/// How (and whether) to train the shared DBN at startup: the optimal
/// planner generates training samples on a dedicated trace, exactly
/// like the offline phase of the paper.
#[derive(Debug, Clone)]
pub struct DbnSpec {
    /// Seed of the training trace.
    pub seed: u64,
    /// Training-trace day archetypes; cycled to the grid's day count
    /// when shorter. Empty means the four standard archetypes.
    pub days: Vec<DayArchetype>,
    /// Backprop epochs (the paper-scale default is slow; fleet
    /// configs typically lower it).
    pub bp_epochs: usize,
}

impl Deserialize for DbnSpec {
    fn deserialize_json(v: &Value) -> Result<Self, serde::DeError> {
        Ok(Self {
            seed: opt(v, "seed")?.unwrap_or(11),
            days: opt(v, "days")?.unwrap_or_default(),
            bp_epochs: opt(v, "bp_epochs")?.unwrap_or(150),
        })
    }
}

/// How to distil the shared DBN into the branch-free decision artifact
/// at startup (requires `dbn`). The artifact is pushed through its
/// JSON serialisation and reloaded before use, so every session
/// exercises the exact load path a pre-built asset file would take —
/// what the service serves is what a deployed artifact would decide.
#[derive(Debug, Clone)]
pub struct DistillSpec {
    /// Seed of the distillation sampling streams.
    pub seed: u64,
    /// Tree levels splitting on the run-constant feature prefix.
    pub depth_const: usize,
    /// Tree levels splitting on the per-decision features.
    pub depth_vary: usize,
    /// Box samples drawn over the teacher's fitted input range.
    pub samples: usize,
    /// Held-out samples for the recorded teacher-agreement rate.
    pub holdout: usize,
}

impl Deserialize for DistillSpec {
    fn deserialize_json(v: &Value) -> Result<Self, serde::DeError> {
        let defaults = DistillConfig::small(0);
        Ok(Self {
            seed: opt(v, "seed")?.unwrap_or(11),
            depth_const: opt(v, "depth_const")?.unwrap_or(defaults.depth_const),
            depth_vary: opt(v, "depth_vary")?.unwrap_or(defaults.depth_vary),
            samples: opt(v, "samples")?.unwrap_or(defaults.samples),
            holdout: opt(v, "holdout")?.unwrap_or(defaults.holdout),
        })
    }
}

/// First protocol line: everything the service derives once and reuses
/// for every request.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Grid dimensions.
    pub grid: GridSpec,
    /// Capacitor bank, in farads.
    pub capacitors_farads: Vec<f64>,
    /// Task benchmark: `random1..random3`, `wam`, `ecg`, `shm`.
    pub benchmark: String,
    /// Pattern-selection threshold `δ` for planner-driven scenarios.
    pub delta: f64,
    /// DP resolution for `optimal` / `mpc` scenarios.
    pub dp: DpConfig,
    /// Train a shared DBN at startup (required by `dbn` scenarios).
    pub dbn: Option<DbnSpec>,
    /// Distil the shared DBN into the branch-free artifact at startup
    /// (required by `distilled` scenarios; itself requires `dbn`).
    pub distill: Option<DistillSpec>,
    /// Worker count; defaults to the configured `helio-par` pool.
    pub threads: Option<usize>,
}

impl Deserialize for FleetConfig {
    fn deserialize_json(v: &Value) -> Result<Self, serde::DeError> {
        let dp = match v.field("dp") {
            Ok(d) if !matches!(d, Value::Null) => DpConfig {
                voltage_buckets: opt(d, "voltage_buckets")?.unwrap_or(6),
                keep_per_level: opt(d, "keep_per_level")?.unwrap_or(1),
            },
            _ => DpConfig {
                voltage_buckets: 6,
                keep_per_level: 1,
            },
        };
        Ok(Self {
            grid: GridSpec::deserialize_json(v.field("grid")?)?,
            capacitors_farads: Vec::deserialize_json(v.field("capacitors_farads")?)?,
            benchmark: opt(v, "benchmark")?.unwrap_or_else(|| "ecg".to_string()),
            delta: opt(v, "delta")?.unwrap_or(0.5),
            dp,
            dbn: opt(v, "dbn")?,
            distill: opt(v, "distill")?,
            threads: opt(v, "threads")?,
        })
    }
}

/// One scenario of a request.
#[derive(Debug, Clone)]
pub struct ScenarioSpec {
    /// Trace seed.
    pub seed: u64,
    /// Day archetypes; cycled to the grid's day count when shorter,
    /// empty means the four standard archetypes.
    pub days: Vec<DayArchetype>,
    /// Planner kind: `asap`, `inter`, `intra`, `dbn`, `compiled-dbn`,
    /// `compiled-dbn-i8`, `distilled`, `mpc`, `optimal`. The compiled
    /// kinds run the shared DBN through the packed single-sample fast
    /// path (tolerance-gated, not bit-identical to `dbn`); `distilled`
    /// runs the branch-free artifact with the compiled `f32` network
    /// as its fallback tier (agreement-gated against the teacher).
    pub planner: String,
    /// Capacitor a fixed-pattern planner locks to; defaults to 0 for
    /// `asap`, the largest capacitor otherwise.
    pub capacitor: Option<usize>,
    /// Wrap the planner in a [`ResilientPlanner`].
    pub resilient: bool,
    /// Fault plan to inject, if any.
    pub faults: Option<FaultPlan>,
}

impl Deserialize for ScenarioSpec {
    fn deserialize_json(v: &Value) -> Result<Self, serde::DeError> {
        Ok(Self {
            seed: opt(v, "seed")?.unwrap_or(0),
            days: opt(v, "days")?.unwrap_or_default(),
            planner: opt(v, "planner")?.unwrap_or_else(|| "inter".to_string()),
            capacitor: opt(v, "capacitor")?,
            resilient: opt(v, "resilient")?.unwrap_or(false),
            faults: opt(v, "faults")?,
        })
    }
}

/// One request line: a batch of scenarios simulated in lockstep.
#[derive(Debug, Clone)]
pub struct FleetRequest {
    /// Echoed back on every response line of this request.
    pub id: u64,
    /// The scenarios to simulate.
    pub scenarios: Vec<ScenarioSpec>,
}

impl Deserialize for FleetRequest {
    fn deserialize_json(v: &Value) -> Result<Self, serde::DeError> {
        Ok(Self {
            id: opt(v, "id")?.unwrap_or(0),
            scenarios: Vec::deserialize_json(v.field("scenarios")?)?,
        })
    }
}

/// Cycles `days` (or the four standard archetypes when empty) to
/// exactly `want` entries.
fn cycle_days(days: &[DayArchetype], want: usize) -> Vec<DayArchetype> {
    let base: &[DayArchetype] = if days.is_empty() {
        &DayArchetype::ALL
    } else {
        days
    };
    base.iter().copied().cycle().take(want).collect()
}

/// The long-lived service state: node, task set, plan context, shared
/// DBN and per-worker scratches, all derived once at startup and
/// reused by every request.
pub struct FleetService {
    node: NodeConfig,
    graph: TaskGraph,
    ctx: Arc<PlanContext>,
    dbn: Option<Arc<Dbn>>,
    /// Both compiled tiers of the shared DBN, built once at startup —
    /// every `compiled-dbn`/`compiled-dbn-i8` scenario clones the
    /// `Arc`, never the packed weights.
    compiled_f32: Option<Arc<CompiledDbn>>,
    compiled_i8: Option<Arc<CompiledDbn>>,
    /// The distilled decision artifact, reloaded from its JSON form at
    /// startup — every `distilled` scenario clones the `Arc`, never
    /// the tree arrays.
    distilled: Option<Arc<DistilledPolicy>>,
    delta: f64,
    dp: DpConfig,
    scratches: Vec<BatchScratch>,
    requests_served: u64,
    scenarios_served: u64,
}

impl FleetService {
    /// Builds the service from the first protocol line: validates the
    /// grid and node, resolves the benchmark, derives the shared
    /// [`PlanContext`], trains the shared DBN when configured, and
    /// allocates one [`BatchScratch`] per worker.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::Config`] for an unusable configuration.
    pub fn new(cfg: &FleetConfig) -> Result<Self, FleetError> {
        let grid = TimeGrid::new(
            cfg.grid.days,
            cfg.grid.periods,
            cfg.grid.slots,
            Seconds::new(cfg.grid.slot_seconds),
        )
        .map_err(|e| FleetError::Config(e.to_string()))?;
        if cfg.capacitors_farads.is_empty() {
            return Err(FleetError::Config("capacitors_farads is empty".into()));
        }
        let caps: Vec<Farads> = cfg
            .capacitors_farads
            .iter()
            .map(|&f| Farads::new(f))
            .collect();
        let node = NodeConfig::builder(grid)
            .capacitors(&caps)
            .build()
            .map_err(|e| FleetError::Config(e.to_string()))?;
        let graph = benchmark_by_name(&cfg.benchmark)?;
        graph
            .validate(grid.period_duration())
            .map_err(|e| FleetError::Config(e.to_string()))?;
        let ctx = Arc::new(
            PlanContext::new(&graph, grid.slot_duration())
                .map_err(|e| FleetError::Config(e.to_string()))?,
        );
        let dbn = match &cfg.dbn {
            Some(spec) => Some(Arc::new(train_dbn(&node, &graph, cfg, spec)?)),
            None => None,
        };
        let compile = |tier| -> Result<Option<Arc<CompiledDbn>>, FleetError> {
            dbn.as_deref()
                .map(|d| {
                    CompiledDbn::compile(d, tier)
                        .map(Arc::new)
                        .map_err(|e| FleetError::Config(e.to_string()))
                })
                .transpose()
        };
        let compiled_f32 = compile(CompiledTier::F32)?;
        let compiled_i8 = compile(CompiledTier::Int8)?;
        let distilled = match (&cfg.distill, dbn.as_deref()) {
            (Some(spec), Some(teacher)) => {
                let mut dcfg = DistillConfig::small(spec.seed);
                dcfg.depth_const = spec.depth_const;
                dcfg.depth_vary = spec.depth_vary;
                dcfg.samples = spec.samples;
                dcfg.holdout = spec.holdout;
                let const_prefix = grid.slots_per_period().min(teacher.input_dim());
                let policy = DistilledPolicy::distill(teacher, const_prefix, &[], &dcfg)
                    .map_err(|e| FleetError::Config(format!("distillation failed: {e}")))?;
                // Round-trip through the serde form: the artifact the
                // service serves is bit-for-bit the artifact a
                // pre-built asset file would load.
                let json = policy
                    .to_json()
                    .map_err(|e| FleetError::Config(format!("artifact serialisation: {e}")))?;
                let reloaded = DistilledPolicy::from_json(&json)
                    .map_err(|e| FleetError::Config(format!("artifact reload: {e}")))?;
                Some(Arc::new(reloaded))
            }
            (Some(_), None) => {
                return Err(FleetError::Config(
                    "`distill` requires a `dbn` spec to provide the teacher".into(),
                ))
            }
            (None, _) => None,
        };
        let workers = cfg
            .threads
            .unwrap_or_else(helio_par::configured_threads)
            .max(1);
        let mut scratches = Vec::new();
        scratches.resize_with(workers, BatchScratch::default);
        Ok(Self {
            node,
            graph,
            ctx,
            dbn,
            compiled_f32,
            compiled_i8,
            distilled,
            delta: cfg.delta,
            dp: cfg.dp,
            scratches,
            requests_served: 0,
            scenarios_served: 0,
        })
    }

    /// Worker (and scratch) count.
    pub fn workers(&self) -> usize {
        self.scratches.len()
    }

    /// Requests handled so far.
    pub fn requests_served(&self) -> u64 {
        self.requests_served
    }

    /// Scenarios simulated so far.
    pub fn scenarios_served(&self) -> u64 {
        self.scenarios_served
    }

    /// Simulates one request as a sharded lockstep batch, reusing the
    /// plan context and per-worker scratches; reports come back in
    /// scenario order, byte-identical to sequential engine runs. A
    /// scenario whose worker panics is quarantined and surfaces as an
    /// [`FleetError::Engine`]; [`serve_with`] instead degrades it to a
    /// per-scenario error line.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::Protocol`] for an invalid scenario spec
    /// and [`FleetError::Engine`] when the engine rejects one.
    pub fn handle(&mut self, req: &FleetRequest) -> Result<Vec<SimReport>, FleetError> {
        match self.handle_with(req, None, None, None, None, None, &mut |_| Ok(()))? {
            RequestDisposition::Answered(results) => results
                .into_iter()
                .collect::<Result<Vec<_>, _>>()
                .map_err(FleetError::Engine),
            // Unreachable without a deadline/kill/shutdown input.
            _ => Err(FleetError::Engine(
                "request paused without a pause input".into(),
            )),
        }
    }

    /// The robust request path behind [`serve_with`]: runs the batch
    /// in period-boundary segments so the service can checkpoint,
    /// honour a wall-clock deadline, die on cue for the chaos harness
    /// or drain for shutdown — and quarantines a panicking scenario by
    /// re-running the batch one scenario at a time from the last good
    /// checkpoint.
    ///
    /// `segment == None` runs the whole request as one span (the
    /// legacy byte-identical fast path, modulo a `resume` checkpoint).
    /// `on_checkpoint` fires at every pause *before* the pause is
    /// acted on, so a kill never outruns its persisted state.
    #[allow(clippy::too_many_arguments)]
    fn handle_with(
        &mut self,
        req: &FleetRequest,
        resume: Option<BatchCheckpoint>,
        segment: Option<usize>,
        deadline: Option<Instant>,
        kill_period: Option<usize>,
        shutdown: Option<&AtomicBool>,
        on_checkpoint: &mut dyn FnMut(&BatchCheckpoint) -> Result<(), FleetError>,
    ) -> Result<RequestDisposition, FleetError> {
        let total = self.node.grid.total_periods();
        let periods_per_day = self.node.grid.periods_per_day();
        let days = self.node.grid.days();
        let traces: Vec<SolarTrace> = req
            .scenarios
            .iter()
            .map(|s| {
                TraceBuilder::new(self.node.grid, SolarPanel::paper_panel())
                    .seed(s.seed)
                    .days(&cycle_days(&s.days, days))
                    .build()
            })
            .collect();
        let harnesses: Vec<Option<FaultHarness>> = req
            .scenarios
            .iter()
            .map(|s| {
                s.faults
                    .as_ref()
                    .map(|plan| FaultHarness::new(plan, total, periods_per_day))
            })
            .collect();

        // Split the borrows: the engine borrows node/graph/ctx
        // immutably while the run needs the scratches mutably.
        let Self {
            node,
            graph,
            ctx,
            dbn,
            compiled_f32,
            compiled_i8,
            distilled,
            delta,
            dp,
            scratches,
            requests_served,
            scenarios_served,
        } = self;
        let compiled = CompiledHandles {
            f32: compiled_f32.as_ref(),
            i8: compiled_i8.as_ref(),
            distilled: distilled.as_ref(),
        };
        let seg = segment.unwrap_or(total).max(1);
        let mut ckpt = resume;
        loop {
            if deadline.is_some_and(|d| Instant::now() >= d) {
                return Ok(RequestDisposition::Deadline);
            }
            let at = ckpt.as_ref().map_or(0, |c| c.next_period);
            let seg_end = (at + seg).min(total);
            let kill_now = kill_period
                .map(|k| k.min(total))
                .filter(|&k| at <= k && k <= seg_end);
            let stop = match kill_now {
                Some(k) => Some(k),
                None if seg_end >= total => None,
                None => Some(seg_end),
            };
            let mut engine = build_engine(
                node,
                graph,
                ctx,
                dbn.as_ref(),
                compiled,
                *delta,
                *dp,
                req,
                &traces,
                &harnesses,
                None,
            )?;
            let state = match engine.run_span_with(ckpt.as_ref(), stop, scratches) {
                Ok(state) => state,
                Err(CoreError::WorkerPanic(_)) => {
                    // One scenario poisoned its shard. Re-run the batch
                    // one scenario at a time from the last good
                    // checkpoint: healthy scenarios finish normally,
                    // the poisoned one degrades to a per-scenario
                    // error. Isolation runs to completion — a chaos
                    // kill or deadline no longer interrupts it.
                    drop(engine);
                    let results = run_isolated(
                        node,
                        graph,
                        ctx,
                        dbn.as_ref(),
                        compiled,
                        *delta,
                        *dp,
                        req,
                        &traces,
                        &harnesses,
                        ckpt.as_ref(),
                    )?;
                    *requests_served += 1;
                    *scenarios_served += results.len() as u64;
                    return Ok(RequestDisposition::Answered(results));
                }
                Err(e) => return Err(e.into()),
            };
            match state {
                BatchRunState::Done(reports) => {
                    *requests_served += 1;
                    *scenarios_served += reports.len() as u64;
                    return Ok(RequestDisposition::Answered(
                        reports.into_iter().map(Ok).collect(),
                    ));
                }
                BatchRunState::Paused(c) => {
                    on_checkpoint(&c)?;
                    let period = c.next_period;
                    if kill_now.is_some() {
                        return Ok(RequestDisposition::Killed(period));
                    }
                    if shutdown.is_some_and(|s| s.load(Ordering::SeqCst)) {
                        return Ok(RequestDisposition::ShutdownMidRequest);
                    }
                    ckpt = Some(c);
                }
            }
        }
    }
}

/// How [`FleetService::handle_with`] left a request.
enum RequestDisposition {
    /// Per-scenario results, in scenario order; a quarantined panic
    /// becomes that scenario's error message.
    Answered(Vec<Result<SimReport, String>>),
    /// The wall-clock deadline expired before the request finished.
    Deadline,
    /// The chaos plan killed the service at this period boundary
    /// (checkpoint already persisted via the callback).
    Killed(usize),
    /// The shutdown flag was raised at a period boundary; the
    /// checkpoint callback has already persisted the frozen state.
    ShutdownMidRequest,
}

/// Builds a fresh engine over `req`'s scenarios (or just scenario
/// `only`), reusing the shared plan context; the planners are rebuilt
/// from the specs and restored from a checkpoint by the caller's
/// `run_span_with`.
#[allow(clippy::too_many_arguments)]
fn build_engine<'a>(
    node: &'a NodeConfig,
    graph: &'a TaskGraph,
    ctx: &Arc<PlanContext>,
    dbn: Option<&Arc<Dbn>>,
    compiled: CompiledHandles<'_>,
    delta: f64,
    dp: DpConfig,
    req: &FleetRequest,
    traces: &'a [SolarTrace],
    harnesses: &'a [Option<FaultHarness>],
    only: Option<usize>,
) -> Result<BatchEngine<'a>, FleetError> {
    let mut engine = BatchEngine::with_context(node, graph, Arc::clone(ctx))?;
    let indices: Vec<usize> = match only {
        Some(i) => vec![i],
        None => (0..req.scenarios.len()).collect(),
    };
    for i in indices {
        let planner = make_planner(
            &req.scenarios[i],
            node,
            graph,
            &traces[i],
            dbn,
            compiled,
            delta,
            dp,
        )?;
        let mut scenario = BatchScenario::new(&traces[i], planner);
        if let Some(h) = &harnesses[i] {
            scenario = scenario.with_harness(h);
        }
        engine.push(scenario)?;
    }
    Ok(engine)
}

/// Panic quarantine fallback: runs each scenario of `req` alone from
/// the (optional) last good batch checkpoint. Healthy scenarios
/// produce their normal report — byte-identical to the lockstep batch
/// — while the panicking one is caught by the worker-pool quarantine
/// again and degrades to its own error string.
#[allow(clippy::too_many_arguments)]
fn run_isolated<'a>(
    node: &'a NodeConfig,
    graph: &'a TaskGraph,
    ctx: &Arc<PlanContext>,
    dbn: Option<&Arc<Dbn>>,
    compiled: CompiledHandles<'_>,
    delta: f64,
    dp: DpConfig,
    req: &FleetRequest,
    traces: &'a [SolarTrace],
    harnesses: &'a [Option<FaultHarness>],
    resume: Option<&BatchCheckpoint>,
) -> Result<Vec<Result<SimReport, String>>, FleetError> {
    let mut results = Vec::with_capacity(req.scenarios.len());
    for i in 0..req.scenarios.len() {
        let sub = resume.map(|c| BatchCheckpoint {
            next_period: c.next_period,
            scenarios: vec![c.scenarios[i].clone()],
            planners: vec![c.planners[i].clone()],
        });
        let one = || -> Result<SimReport, FleetError> {
            let mut engine = build_engine(
                node,
                graph,
                ctx,
                dbn,
                compiled,
                delta,
                dp,
                req,
                traces,
                harnesses,
                Some(i),
            )?;
            let mut scratch = BatchScratch::default();
            match engine.run_span_with(sub.as_ref(), None, std::slice::from_mut(&mut scratch))? {
                BatchRunState::Done(mut reports) => reports
                    .pop()
                    .ok_or_else(|| FleetError::Engine("isolated run produced no report".into())),
                BatchRunState::Paused(_) => Err(FleetError::Engine(
                    "isolated run paused unexpectedly".into(),
                )),
            }
        };
        results.push(one().map_err(|e| e.to_string()));
    }
    Ok(results)
}

fn benchmark_by_name(name: &str) -> Result<TaskGraph, FleetError> {
    match name {
        "wam" => Ok(benchmarks::wam()),
        "ecg" => Ok(benchmarks::ecg()),
        "shm" => Ok(benchmarks::shm()),
        "random1" => Ok(benchmarks::random_case(1)),
        "random2" => Ok(benchmarks::random_case(2)),
        "random3" => Ok(benchmarks::random_case(3)),
        other => Err(FleetError::Config(format!(
            "unknown benchmark `{other}` (expected random1..random3, wam, ecg, shm)"
        ))),
    }
}

/// Offline phase at startup: compute the optimal planner on the
/// training trace and train the DBN from its recorded samples.
fn train_dbn(
    node: &NodeConfig,
    graph: &TaskGraph,
    cfg: &FleetConfig,
    spec: &DbnSpec,
) -> Result<Dbn, FleetError> {
    let trace = TraceBuilder::new(node.grid, SolarPanel::paper_panel())
        .seed(spec.seed)
        .days(&cycle_days(&spec.days, node.grid.days()))
        .build();
    let optimal = OptimalPlanner::compute(node, graph, &trace, &cfg.dp, cfg.delta)?;
    let mut dbn_cfg = DbnConfig::small(spec.seed);
    dbn_cfg.bp_epochs = spec.bp_epochs;
    Dbn::train_set(optimal.samples(), &dbn_cfg).map_err(|e| FleetError::Config(e.to_string()))
}

/// The startup-compiled artifacts `make_planner` hands out to
/// `compiled-dbn`/`compiled-dbn-i8` scenarios.
#[derive(Clone, Copy)]
struct CompiledHandles<'a> {
    f32: Option<&'a Arc<CompiledDbn>>,
    i8: Option<&'a Arc<CompiledDbn>>,
    /// The distilled artifact `distilled` scenarios run, with `f32`
    /// as the next tier down.
    distilled: Option<&'a Arc<DistilledPolicy>>,
}

#[allow(clippy::too_many_arguments)]
fn make_planner(
    spec: &ScenarioSpec,
    node: &NodeConfig,
    graph: &TaskGraph,
    trace: &SolarTrace,
    dbn: Option<&Arc<Dbn>>,
    compiled: CompiledHandles<'_>,
    delta: f64,
    dp: DpConfig,
) -> Result<Box<dyn PeriodPlanner + 'static>, FleetError> {
    let bank_len = node.capacitor_count();
    let default_cap = |pattern: Pattern| match pattern {
        Pattern::Asap => 0,
        _ => bank_len.saturating_sub(1),
    };
    let cap_for = |pattern: Pattern| -> Result<usize, FleetError> {
        let c = spec.capacitor.unwrap_or_else(|| default_cap(pattern));
        if c >= bank_len {
            return Err(FleetError::Protocol(format!(
                "capacitor {c} out of range for a bank of {bank_len}"
            )));
        }
        Ok(c)
    };
    let inner: Box<dyn PeriodPlanner + 'static> = match spec.planner.as_str() {
        "asap" => Box::new(FixedPlanner::new(Pattern::Asap, cap_for(Pattern::Asap)?)),
        "inter" => Box::new(FixedPlanner::new(Pattern::Inter, cap_for(Pattern::Inter)?)),
        "intra" => Box::new(FixedPlanner::new(Pattern::Intra, cap_for(Pattern::Intra)?)),
        "dbn" => {
            let dbn = dbn.ok_or_else(|| {
                FleetError::Protocol(
                    "scenario requests the dbn planner but the fleet config trained no DBN".into(),
                )
            })?;
            Box::new(ProposedPlanner::from_shared_dbn(
                Arc::clone(dbn),
                delta,
                SwitchRule::default(),
            ))
        }
        kind @ ("compiled-dbn" | "compiled-dbn-i8") => {
            let artifact = match kind {
                "compiled-dbn" => compiled.f32,
                _ => compiled.i8,
            };
            let artifact = artifact.ok_or_else(|| {
                FleetError::Protocol(format!(
                    "scenario requests the {kind} planner but the fleet config trained no DBN"
                ))
            })?;
            Box::new(ProposedPlanner::from_compiled_dbn(
                Arc::clone(artifact),
                delta,
                SwitchRule::default(),
            ))
        }
        "distilled" => {
            let policy = compiled.distilled.ok_or_else(|| {
                FleetError::Protocol(
                    "scenario requests the distilled planner but the fleet config has no \
                     `distill` spec"
                        .into(),
                )
            })?;
            let fallback = compiled.f32.ok_or_else(|| {
                FleetError::Protocol(
                    "scenario requests the distilled planner but the fleet config compiled no \
                     fallback DBN"
                        .into(),
                )
            })?;
            Box::new(ProposedPlanner::from_distilled(
                Arc::clone(policy),
                Arc::clone(fallback),
                delta,
                SwitchRule::default(),
            ))
        }
        "mpc" => Box::new(ProposedPlanner::mpc(
            Box::new(NoisyOracle::perfect()),
            node.grid.periods_per_day(),
            dp,
            delta,
            SwitchRule::default(),
        )),
        "optimal" => Box::new(OptimalPlanner::compute(node, graph, trace, &dp, delta)?),
        kind if kind.starts_with("chaos-panic:") => {
            let at: usize = kind["chaos-panic:".len()..].parse().map_err(|_| {
                FleetError::Protocol(format!(
                    "bad chaos-panic planner `{kind}` (expected chaos-panic:<period>)"
                ))
            })?;
            Box::new(ChaosPanicPlanner {
                inner: FixedPlanner::new(Pattern::Inter, cap_for(Pattern::Inter)?),
                at,
            })
        }
        other => {
            return Err(FleetError::Protocol(format!(
                "unknown planner `{other}` (expected asap, inter, intra, dbn, \
                 compiled-dbn, compiled-dbn-i8, distilled, mpc, optimal, chaos-panic:<period>)"
            )))
        }
    };
    Ok(if spec.resilient {
        Box::new(ResilientPlanner::new(inner))
    } else {
        inner
    })
}

/// Chaos-harness planner (`chaos-panic:K`): plans like the inter-task
/// fixed planner until flat period `K`, then panics inside its worker
/// — exercising the shard quarantine and the service's per-scenario
/// isolation fallback.
struct ChaosPanicPlanner {
    inner: FixedPlanner,
    at: usize,
}

impl PeriodPlanner for ChaosPanicPlanner {
    fn name(&self) -> &'static str {
        "chaos-panic"
    }

    #[allow(clippy::panic)]
    fn plan(&mut self, obs: &PlannerObservation<'_>) -> PlanDecision {
        if obs.grid.period_index(obs.period) == self.at {
            panic!("chaos: injected planner panic at period {}", self.at);
        }
        self.inner.plan(obs)
    }
}

/// Writes one response line per report: `{"id":N,"index":I,"report":…}`.
///
/// # Errors
///
/// Returns [`FleetError::Io`] when the transport fails.
pub fn write_reports<W: Write>(
    out: &mut W,
    id: u64,
    reports: &[SimReport],
) -> Result<(), FleetError> {
    for (index, report) in reports.iter().enumerate() {
        let json = serde_json::to_string(report)
            .map_err(|e| FleetError::Engine(format!("report serialisation failed: {e}")))?;
        writeln!(out, "{{\"id\":{id},\"index\":{index},\"report\":{json}}}")?;
    }
    out.flush()?;
    Ok(())
}

/// Writes one line per scenario result: a report line, or — when that
/// scenario's worker panicked — `{"id":N,"index":I,"error":"…"}` so
/// the other scenarios of the batch still answer normally.
fn write_results<W: Write>(
    out: &mut W,
    id: u64,
    results: &[Result<SimReport, String>],
) -> Result<(), FleetError> {
    for (index, result) in results.iter().enumerate() {
        match result {
            Ok(report) => {
                let json = serde_json::to_string(report)
                    .map_err(|e| FleetError::Engine(format!("report serialisation failed: {e}")))?;
                writeln!(out, "{{\"id\":{id},\"index\":{index},\"report\":{json}}}")?;
            }
            Err(msg) => {
                let msg = serde_json::to_string(msg.as_str())
                    .map_err(|e| FleetError::Engine(format!("error serialisation failed: {e}")))?;
                writeln!(out, "{{\"id\":{id},\"index\":{index},\"error\":{msg}}}")?;
            }
        }
    }
    out.flush()?;
    Ok(())
}

fn write_error<W: Write>(out: &mut W, id: Option<u64>, msg: &str) -> Result<(), FleetError> {
    let msg = serde_json::to_string(msg)
        .map_err(|e| FleetError::Engine(format!("error serialisation failed: {e}")))?;
    match id {
        Some(id) => writeln!(out, "{{\"id\":{id},\"error\":{msg}}}")?,
        None => writeln!(out, "{{\"error\":{msg}}}")?,
    }
    out.flush()?;
    Ok(())
}

/// Serves one session with the default [`ServeOptions`]: reads the
/// config line, then answers request lines until EOF. Per-request
/// failures (bad JSON, unknown planner) produce an error line and the
/// session continues; only transport failures and an unusable config
/// abort.
///
/// Returns the service (with its telemetry counters) once the peer
/// closes the stream.
///
/// # Errors
///
/// Returns [`FleetError::Config`]/[`FleetError::Protocol`] when the
/// first line is unusable and [`FleetError::Io`] when the transport
/// fails.
pub fn serve<R: BufRead, W: Write>(input: R, out: W) -> Result<FleetService, FleetError> {
    serve_with(input, out, &ServeOptions::default()).map(|summary| summary.service)
}

/// Marks a request line fully answered: advances the durable progress
/// counter and discards the now-stale mid-request checkpoint.
fn finish_line(store: Option<&SessionStore>, ordinal: u64) -> Result<(), FleetError> {
    if let Some(s) = store {
        s.save_completed(ordinal)?;
        s.clear_inflight();
    }
    Ok(())
}

/// Serves one session with service-level robustness: byte caps,
/// request-size caps, per-request wall-clock deadlines, crash-safe
/// checkpoint/resume, graceful shutdown and the chaos kill hook — see
/// [`ServeOptions`]. With the default options this is byte-identical
/// to [`serve`].
///
/// Request lines are counted by a 1-based ordinal (blank lines don't
/// count). When resuming from a checkpoint directory, lines whose
/// ordinal is already recorded as answered are skipped without
/// re-emitting their responses, so `cat` of the pre-crash and
/// post-restart outputs equals an uninterrupted session's output.
///
/// # Errors
///
/// Returns [`FleetError::Config`]/[`FleetError::Protocol`] when the
/// first line is unusable and [`FleetError::Io`] when the transport
/// fails; everything else degrades to inline error lines.
pub fn serve_with<R: BufRead, W: Write>(
    mut input: R,
    mut out: W,
    opts: &ServeOptions,
) -> Result<SessionSummary, FleetError> {
    let store = match &opts.checkpoint_dir {
        Some(dir) => Some(SessionStore::new(dir)?),
        None => None,
    };
    let completed = store.as_ref().map_or(0, SessionStore::load_completed);
    let inflight = store.as_ref().and_then(SessionStore::load_inflight);
    let shutdown = opts.shutdown.as_deref();
    let kill = opts.chaos.kill_point();

    let mut buf = Vec::new();
    let config_text = loop {
        match read_raw_line(&mut input, opts.max_line_bytes, &mut buf)? {
            RawLine::Eof => {
                return Err(FleetError::Protocol(
                    "stream ended before a fleet config line".into(),
                ))
            }
            RawLine::TooLong => {
                return Err(FleetError::Protocol(
                    "fleet config line exceeds the byte cap".into(),
                ))
            }
            RawLine::Line => {
                let text = std::str::from_utf8(&buf).map_err(|_| {
                    FleetError::Protocol("fleet config line is not valid UTF-8".into())
                })?;
                if !text.trim().is_empty() {
                    break text.to_string();
                }
            }
        }
    };
    let cfg: FleetConfig = serde_json::from_str(&config_text)
        .map_err(|e| FleetError::Protocol(format!("bad fleet config: {e}")))?;
    let mut service = FleetService::new(&cfg)?;

    // Segment the simulation loop only when something needs the pause
    // points; otherwise each request runs as one span, exactly like
    // the legacy service.
    let segment = opts.checkpoint_every.or_else(|| {
        (store.is_some() || opts.deadline_ms.is_some() || kill.is_some() || shutdown.is_some())
            .then_some(service.node.grid.periods_per_day())
    });

    let mut ordinal: u64 = 0;
    let outcome = loop {
        if shutdown.is_some_and(|s| s.load(Ordering::SeqCst)) {
            break SessionOutcome::Shutdown;
        }
        match read_raw_line(&mut input, opts.max_line_bytes, &mut buf)? {
            RawLine::Eof => break SessionOutcome::Eof,
            RawLine::TooLong => {
                ordinal += 1;
                if ordinal <= completed {
                    continue;
                }
                write_error(&mut out, None, "request line exceeds the byte cap")?;
                finish_line(store.as_ref(), ordinal)?;
            }
            RawLine::Line => {
                if buf.iter().all(|b| b.is_ascii_whitespace()) {
                    continue;
                }
                ordinal += 1;
                if ordinal <= completed {
                    continue; // answered before the restart
                }
                let Ok(text) = std::str::from_utf8(&buf) else {
                    write_error(&mut out, None, "request line is not valid UTF-8")?;
                    finish_line(store.as_ref(), ordinal)?;
                    continue;
                };
                let text = text.to_string();
                let req: FleetRequest = match serde_json::from_str(&text) {
                    Ok(req) => req,
                    Err(e) => {
                        write_error(&mut out, None, &format!("bad request: {e}"))?;
                        finish_line(store.as_ref(), ordinal)?;
                        continue;
                    }
                };
                if let Some(cap) = opts.max_batch {
                    if req.scenarios.len() > cap {
                        write_error(
                            &mut out,
                            Some(req.id),
                            &format!(
                                "request has {} scenarios, exceeding the cap of {cap}",
                                req.scenarios.len()
                            ),
                        )?;
                        finish_line(store.as_ref(), ordinal)?;
                        continue;
                    }
                }
                let resume = match &inflight {
                    Some(rec) if rec.ordinal == ordinal && rec.line == text => {
                        Some(rec.checkpoint.clone())
                    }
                    _ => None,
                };
                let deadline = opts
                    .deadline_ms
                    .map(|ms| Instant::now() + Duration::from_millis(ms));
                let kill_this = kill.filter(|&(r, _)| r == ordinal).map(|(_, p)| p);
                let mut on_checkpoint = |c: &BatchCheckpoint| -> Result<(), FleetError> {
                    if let Some(s) = &store {
                        s.save_inflight(&InflightRecord {
                            ordinal,
                            line: text.clone(),
                            checkpoint: c.clone(),
                        })?;
                    }
                    Ok(())
                };
                match service.handle_with(
                    &req,
                    resume,
                    segment,
                    deadline,
                    kill_this,
                    shutdown,
                    &mut on_checkpoint,
                ) {
                    Ok(RequestDisposition::Answered(results)) => {
                        write_results(&mut out, req.id, &results)?;
                        finish_line(store.as_ref(), ordinal)?;
                    }
                    Ok(RequestDisposition::Deadline) => {
                        write_error(&mut out, Some(req.id), "deadline")?;
                        finish_line(store.as_ref(), ordinal)?;
                    }
                    Ok(RequestDisposition::Killed(period)) => {
                        break SessionOutcome::ChaosKill {
                            request: ordinal,
                            period,
                        };
                    }
                    Ok(RequestDisposition::ShutdownMidRequest) => break SessionOutcome::Shutdown,
                    Err(FleetError::Io(e)) => return Err(FleetError::Io(e)),
                    Err(e) => {
                        write_error(&mut out, Some(req.id), &e.to_string())?;
                        finish_line(store.as_ref(), ordinal)?;
                    }
                }
            }
        }
    };
    Ok(SessionSummary { service, outcome })
}
