//! The fleet-simulation service: a long-lived process that accepts
//! JSON scenario-batch requests and streams back one [`SimReport`]
//! per scenario, sharding each batch across the `helio-par` worker
//! pool.
//!
//! ## Protocol
//!
//! Line-delimited JSON over any `BufRead`/`Write` pair (stdin/stdout
//! by default, one TCP connection in `--listen` mode):
//!
//! 1. The **first** line is the fleet configuration — node, grid, task
//!    benchmark, planner hyper-parameters, optional DBN training spec,
//!    optional worker count. Everything derivable once is derived
//!    once: the [`PlanContext`], the trained DBN, the per-worker
//!    [`BatchScratch`]es.
//! 2. Every following line is a request: `{"id": N, "scenarios":
//!    [...]}`. Scenarios within a request run as one sharded lockstep
//!    batch.
//! 3. The service answers each request with one line per scenario, in
//!    scenario order — `{"id": N, "index": I, "report": {...}}` — and
//!    keeps the connection open for the next request. A malformed
//!    request line produces a single `{"error": "..."}` (or
//!    `{"id": N, "error": "..."}`) line and the service keeps serving.
//!
//! Output lines are deterministic functions of the input (reports are
//! byte-identical to `Engine::run_with_faults`), so a recorded session
//! can be replayed and diffed bytewise — the CI smoke test does
//! exactly that. Telemetry (timings, worker counts) never goes to the
//! protocol stream.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::panic))]

use std::io::{BufRead, Write};
use std::sync::Arc;

use helio_ann::{CompiledDbn, CompiledTier, Dbn, DbnConfig};
use helio_common::time::TimeGrid;
use helio_common::units::{Farads, Seconds};
use helio_faults::{FaultHarness, FaultPlan};
use helio_solar::{DayArchetype, NoisyOracle, SolarPanel, SolarTrace, TraceBuilder};
use helio_tasks::{benchmarks, TaskGraph};
use heliosched::{
    BatchEngine, BatchScenario, BatchScratch, CoreError, DpConfig, FixedPlanner, NodeConfig,
    OptimalPlanner, Pattern, PeriodPlanner, PlanContext, ProposedPlanner, ResilientPlanner,
    SimReport, SwitchRule,
};
use serde::{Deserialize, Value};

/// Anything that can go wrong while configuring or serving the fleet.
#[derive(Debug)]
pub enum FleetError {
    /// A protocol line failed to parse or validate.
    Protocol(String),
    /// The fleet configuration is unusable.
    Config(String),
    /// The simulation engine rejected a scenario.
    Engine(String),
    /// The transport failed (broken pipe, socket error).
    Io(String),
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetError::Protocol(m) => write!(f, "protocol error: {m}"),
            FleetError::Config(m) => write!(f, "config error: {m}"),
            FleetError::Engine(m) => write!(f, "engine error: {m}"),
            FleetError::Io(m) => write!(f, "io error: {m}"),
        }
    }
}

impl std::error::Error for FleetError {}

impl From<CoreError> for FleetError {
    fn from(e: CoreError) -> Self {
        FleetError::Engine(e.to_string())
    }
}

impl From<std::io::Error> for FleetError {
    fn from(e: std::io::Error) -> Self {
        FleetError::Io(e.to_string())
    }
}

fn opt<T: Deserialize>(v: &Value, name: &str) -> Result<Option<T>, serde::DeError> {
    match v.field(name) {
        Ok(Value::Null) | Err(_) => Ok(None),
        Ok(inner) => Ok(Some(T::deserialize_json(inner)?)),
    }
}

/// Grid dimensions of every scenario the service simulates.
#[derive(Debug, Clone, Copy)]
pub struct GridSpec {
    /// Days per scenario.
    pub days: usize,
    /// Periods per day.
    pub periods: usize,
    /// Slots per period.
    pub slots: usize,
    /// Slot duration in seconds.
    pub slot_seconds: f64,
}

impl Deserialize for GridSpec {
    fn deserialize_json(v: &Value) -> Result<Self, serde::DeError> {
        Ok(Self {
            days: usize::deserialize_json(v.field("days")?)?,
            periods: usize::deserialize_json(v.field("periods")?)?,
            slots: usize::deserialize_json(v.field("slots")?)?,
            slot_seconds: opt(v, "slot_seconds")?.unwrap_or(60.0),
        })
    }
}

/// How (and whether) to train the shared DBN at startup: the optimal
/// planner generates training samples on a dedicated trace, exactly
/// like the offline phase of the paper.
#[derive(Debug, Clone)]
pub struct DbnSpec {
    /// Seed of the training trace.
    pub seed: u64,
    /// Training-trace day archetypes; cycled to the grid's day count
    /// when shorter. Empty means the four standard archetypes.
    pub days: Vec<DayArchetype>,
    /// Backprop epochs (the paper-scale default is slow; fleet
    /// configs typically lower it).
    pub bp_epochs: usize,
}

impl Deserialize for DbnSpec {
    fn deserialize_json(v: &Value) -> Result<Self, serde::DeError> {
        Ok(Self {
            seed: opt(v, "seed")?.unwrap_or(11),
            days: opt(v, "days")?.unwrap_or_default(),
            bp_epochs: opt(v, "bp_epochs")?.unwrap_or(150),
        })
    }
}

/// First protocol line: everything the service derives once and reuses
/// for every request.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Grid dimensions.
    pub grid: GridSpec,
    /// Capacitor bank, in farads.
    pub capacitors_farads: Vec<f64>,
    /// Task benchmark: `random1..random3`, `wam`, `ecg`, `shm`.
    pub benchmark: String,
    /// Pattern-selection threshold `δ` for planner-driven scenarios.
    pub delta: f64,
    /// DP resolution for `optimal` / `mpc` scenarios.
    pub dp: DpConfig,
    /// Train a shared DBN at startup (required by `dbn` scenarios).
    pub dbn: Option<DbnSpec>,
    /// Worker count; defaults to the configured `helio-par` pool.
    pub threads: Option<usize>,
}

impl Deserialize for FleetConfig {
    fn deserialize_json(v: &Value) -> Result<Self, serde::DeError> {
        let dp = match v.field("dp") {
            Ok(d) if !matches!(d, Value::Null) => DpConfig {
                voltage_buckets: opt(d, "voltage_buckets")?.unwrap_or(6),
                keep_per_level: opt(d, "keep_per_level")?.unwrap_or(1),
            },
            _ => DpConfig {
                voltage_buckets: 6,
                keep_per_level: 1,
            },
        };
        Ok(Self {
            grid: GridSpec::deserialize_json(v.field("grid")?)?,
            capacitors_farads: Vec::deserialize_json(v.field("capacitors_farads")?)?,
            benchmark: opt(v, "benchmark")?.unwrap_or_else(|| "ecg".to_string()),
            delta: opt(v, "delta")?.unwrap_or(0.5),
            dp,
            dbn: opt(v, "dbn")?,
            threads: opt(v, "threads")?,
        })
    }
}

/// One scenario of a request.
#[derive(Debug, Clone)]
pub struct ScenarioSpec {
    /// Trace seed.
    pub seed: u64,
    /// Day archetypes; cycled to the grid's day count when shorter,
    /// empty means the four standard archetypes.
    pub days: Vec<DayArchetype>,
    /// Planner kind: `asap`, `inter`, `intra`, `dbn`, `compiled-dbn`,
    /// `compiled-dbn-i8`, `mpc`, `optimal`. The compiled kinds run the
    /// shared DBN through the packed single-sample fast path
    /// (tolerance-gated, not bit-identical to `dbn`).
    pub planner: String,
    /// Capacitor a fixed-pattern planner locks to; defaults to 0 for
    /// `asap`, the largest capacitor otherwise.
    pub capacitor: Option<usize>,
    /// Wrap the planner in a [`ResilientPlanner`].
    pub resilient: bool,
    /// Fault plan to inject, if any.
    pub faults: Option<FaultPlan>,
}

impl Deserialize for ScenarioSpec {
    fn deserialize_json(v: &Value) -> Result<Self, serde::DeError> {
        Ok(Self {
            seed: opt(v, "seed")?.unwrap_or(0),
            days: opt(v, "days")?.unwrap_or_default(),
            planner: opt(v, "planner")?.unwrap_or_else(|| "inter".to_string()),
            capacitor: opt(v, "capacitor")?,
            resilient: opt(v, "resilient")?.unwrap_or(false),
            faults: opt(v, "faults")?,
        })
    }
}

/// One request line: a batch of scenarios simulated in lockstep.
#[derive(Debug, Clone)]
pub struct FleetRequest {
    /// Echoed back on every response line of this request.
    pub id: u64,
    /// The scenarios to simulate.
    pub scenarios: Vec<ScenarioSpec>,
}

impl Deserialize for FleetRequest {
    fn deserialize_json(v: &Value) -> Result<Self, serde::DeError> {
        Ok(Self {
            id: opt(v, "id")?.unwrap_or(0),
            scenarios: Vec::deserialize_json(v.field("scenarios")?)?,
        })
    }
}

/// Cycles `days` (or the four standard archetypes when empty) to
/// exactly `want` entries.
fn cycle_days(days: &[DayArchetype], want: usize) -> Vec<DayArchetype> {
    let base: &[DayArchetype] = if days.is_empty() {
        &DayArchetype::ALL
    } else {
        days
    };
    base.iter().copied().cycle().take(want).collect()
}

/// The long-lived service state: node, task set, plan context, shared
/// DBN and per-worker scratches, all derived once at startup and
/// reused by every request.
pub struct FleetService {
    node: NodeConfig,
    graph: TaskGraph,
    ctx: Arc<PlanContext>,
    dbn: Option<Arc<Dbn>>,
    /// Both compiled tiers of the shared DBN, built once at startup —
    /// every `compiled-dbn`/`compiled-dbn-i8` scenario clones the
    /// `Arc`, never the packed weights.
    compiled_f32: Option<Arc<CompiledDbn>>,
    compiled_i8: Option<Arc<CompiledDbn>>,
    delta: f64,
    dp: DpConfig,
    scratches: Vec<BatchScratch>,
    requests_served: u64,
    scenarios_served: u64,
}

impl FleetService {
    /// Builds the service from the first protocol line: validates the
    /// grid and node, resolves the benchmark, derives the shared
    /// [`PlanContext`], trains the shared DBN when configured, and
    /// allocates one [`BatchScratch`] per worker.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::Config`] for an unusable configuration.
    pub fn new(cfg: &FleetConfig) -> Result<Self, FleetError> {
        let grid = TimeGrid::new(
            cfg.grid.days,
            cfg.grid.periods,
            cfg.grid.slots,
            Seconds::new(cfg.grid.slot_seconds),
        )
        .map_err(|e| FleetError::Config(e.to_string()))?;
        if cfg.capacitors_farads.is_empty() {
            return Err(FleetError::Config("capacitors_farads is empty".into()));
        }
        let caps: Vec<Farads> = cfg
            .capacitors_farads
            .iter()
            .map(|&f| Farads::new(f))
            .collect();
        let node = NodeConfig::builder(grid)
            .capacitors(&caps)
            .build()
            .map_err(|e| FleetError::Config(e.to_string()))?;
        let graph = benchmark_by_name(&cfg.benchmark)?;
        graph
            .validate(grid.period_duration())
            .map_err(|e| FleetError::Config(e.to_string()))?;
        let ctx = Arc::new(
            PlanContext::new(&graph, grid.slot_duration())
                .map_err(|e| FleetError::Config(e.to_string()))?,
        );
        let dbn = match &cfg.dbn {
            Some(spec) => Some(Arc::new(train_dbn(&node, &graph, cfg, spec)?)),
            None => None,
        };
        let compile = |tier| -> Result<Option<Arc<CompiledDbn>>, FleetError> {
            dbn.as_deref()
                .map(|d| {
                    CompiledDbn::compile(d, tier)
                        .map(Arc::new)
                        .map_err(|e| FleetError::Config(e.to_string()))
                })
                .transpose()
        };
        let compiled_f32 = compile(CompiledTier::F32)?;
        let compiled_i8 = compile(CompiledTier::Int8)?;
        let workers = cfg
            .threads
            .unwrap_or_else(helio_par::configured_threads)
            .max(1);
        let mut scratches = Vec::new();
        scratches.resize_with(workers, BatchScratch::default);
        Ok(Self {
            node,
            graph,
            ctx,
            dbn,
            compiled_f32,
            compiled_i8,
            delta: cfg.delta,
            dp: cfg.dp,
            scratches,
            requests_served: 0,
            scenarios_served: 0,
        })
    }

    /// Worker (and scratch) count.
    pub fn workers(&self) -> usize {
        self.scratches.len()
    }

    /// Requests handled so far.
    pub fn requests_served(&self) -> u64 {
        self.requests_served
    }

    /// Scenarios simulated so far.
    pub fn scenarios_served(&self) -> u64 {
        self.scenarios_served
    }

    /// Simulates one request as a sharded lockstep batch, reusing the
    /// plan context and per-worker scratches; reports come back in
    /// scenario order, byte-identical to sequential engine runs.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::Protocol`] for an invalid scenario spec
    /// and [`FleetError::Engine`] when the engine rejects one.
    pub fn handle(&mut self, req: &FleetRequest) -> Result<Vec<SimReport>, FleetError> {
        let total = self.node.grid.total_periods();
        let periods_per_day = self.node.grid.periods_per_day();
        let days = self.node.grid.days();
        let traces: Vec<SolarTrace> = req
            .scenarios
            .iter()
            .map(|s| {
                TraceBuilder::new(self.node.grid, SolarPanel::paper_panel())
                    .seed(s.seed)
                    .days(&cycle_days(&s.days, days))
                    .build()
            })
            .collect();
        let harnesses: Vec<Option<FaultHarness>> = req
            .scenarios
            .iter()
            .map(|s| {
                s.faults
                    .as_ref()
                    .map(|plan| FaultHarness::new(plan, total, periods_per_day))
            })
            .collect();

        // Split the borrows: the engine borrows node/graph/ctx
        // immutably while the run needs the scratches mutably.
        let Self {
            node,
            graph,
            ctx,
            dbn,
            compiled_f32,
            compiled_i8,
            delta,
            dp,
            scratches,
            ..
        } = self;
        let compiled = CompiledHandles {
            f32: compiled_f32.as_ref(),
            i8: compiled_i8.as_ref(),
        };
        let mut engine = BatchEngine::with_context(node, graph, Arc::clone(ctx))?;
        for (i, spec) in req.scenarios.iter().enumerate() {
            let planner = make_planner(
                spec,
                node,
                graph,
                &traces[i],
                dbn.as_ref(),
                compiled,
                *delta,
                *dp,
            )?;
            let mut scenario = BatchScenario::new(&traces[i], planner);
            if let Some(h) = &harnesses[i] {
                scenario = scenario.with_harness(h);
            }
            engine.push(scenario)?;
        }
        let reports = engine.run_sharded_with(scratches)?;
        self.requests_served += 1;
        self.scenarios_served += reports.len() as u64;
        Ok(reports)
    }
}

fn benchmark_by_name(name: &str) -> Result<TaskGraph, FleetError> {
    match name {
        "wam" => Ok(benchmarks::wam()),
        "ecg" => Ok(benchmarks::ecg()),
        "shm" => Ok(benchmarks::shm()),
        "random1" => Ok(benchmarks::random_case(1)),
        "random2" => Ok(benchmarks::random_case(2)),
        "random3" => Ok(benchmarks::random_case(3)),
        other => Err(FleetError::Config(format!(
            "unknown benchmark `{other}` (expected random1..random3, wam, ecg, shm)"
        ))),
    }
}

/// Offline phase at startup: compute the optimal planner on the
/// training trace and train the DBN from its recorded samples.
fn train_dbn(
    node: &NodeConfig,
    graph: &TaskGraph,
    cfg: &FleetConfig,
    spec: &DbnSpec,
) -> Result<Dbn, FleetError> {
    let trace = TraceBuilder::new(node.grid, SolarPanel::paper_panel())
        .seed(spec.seed)
        .days(&cycle_days(&spec.days, node.grid.days()))
        .build();
    let optimal = OptimalPlanner::compute(node, graph, &trace, &cfg.dp, cfg.delta)?;
    let mut dbn_cfg = DbnConfig::small(spec.seed);
    dbn_cfg.bp_epochs = spec.bp_epochs;
    Dbn::train_set(optimal.samples(), &dbn_cfg).map_err(|e| FleetError::Config(e.to_string()))
}

/// The startup-compiled artifacts `make_planner` hands out to
/// `compiled-dbn`/`compiled-dbn-i8` scenarios.
#[derive(Clone, Copy)]
struct CompiledHandles<'a> {
    f32: Option<&'a Arc<CompiledDbn>>,
    i8: Option<&'a Arc<CompiledDbn>>,
}

#[allow(clippy::too_many_arguments)]
fn make_planner(
    spec: &ScenarioSpec,
    node: &NodeConfig,
    graph: &TaskGraph,
    trace: &SolarTrace,
    dbn: Option<&Arc<Dbn>>,
    compiled: CompiledHandles<'_>,
    delta: f64,
    dp: DpConfig,
) -> Result<Box<dyn PeriodPlanner + 'static>, FleetError> {
    let bank_len = node.capacitor_count();
    let default_cap = |pattern: Pattern| match pattern {
        Pattern::Asap => 0,
        _ => bank_len.saturating_sub(1),
    };
    let cap_for = |pattern: Pattern| -> Result<usize, FleetError> {
        let c = spec.capacitor.unwrap_or_else(|| default_cap(pattern));
        if c >= bank_len {
            return Err(FleetError::Protocol(format!(
                "capacitor {c} out of range for a bank of {bank_len}"
            )));
        }
        Ok(c)
    };
    let inner: Box<dyn PeriodPlanner + 'static> = match spec.planner.as_str() {
        "asap" => Box::new(FixedPlanner::new(Pattern::Asap, cap_for(Pattern::Asap)?)),
        "inter" => Box::new(FixedPlanner::new(Pattern::Inter, cap_for(Pattern::Inter)?)),
        "intra" => Box::new(FixedPlanner::new(Pattern::Intra, cap_for(Pattern::Intra)?)),
        "dbn" => {
            let dbn = dbn.ok_or_else(|| {
                FleetError::Protocol(
                    "scenario requests the dbn planner but the fleet config trained no DBN".into(),
                )
            })?;
            Box::new(ProposedPlanner::from_shared_dbn(
                Arc::clone(dbn),
                delta,
                SwitchRule::default(),
            ))
        }
        kind @ ("compiled-dbn" | "compiled-dbn-i8") => {
            let artifact = match kind {
                "compiled-dbn" => compiled.f32,
                _ => compiled.i8,
            };
            let artifact = artifact.ok_or_else(|| {
                FleetError::Protocol(format!(
                    "scenario requests the {kind} planner but the fleet config trained no DBN"
                ))
            })?;
            Box::new(ProposedPlanner::from_compiled_dbn(
                Arc::clone(artifact),
                delta,
                SwitchRule::default(),
            ))
        }
        "mpc" => Box::new(ProposedPlanner::mpc(
            Box::new(NoisyOracle::perfect()),
            node.grid.periods_per_day(),
            dp,
            delta,
            SwitchRule::default(),
        )),
        "optimal" => Box::new(OptimalPlanner::compute(node, graph, trace, &dp, delta)?),
        other => {
            return Err(FleetError::Protocol(format!(
                "unknown planner `{other}` (expected asap, inter, intra, dbn, \
                 compiled-dbn, compiled-dbn-i8, mpc, optimal)"
            )))
        }
    };
    Ok(if spec.resilient {
        Box::new(ResilientPlanner::new(inner))
    } else {
        inner
    })
}

/// Writes one response line per report: `{"id":N,"index":I,"report":…}`.
///
/// # Errors
///
/// Returns [`FleetError::Io`] when the transport fails.
pub fn write_reports<W: Write>(
    out: &mut W,
    id: u64,
    reports: &[SimReport],
) -> Result<(), FleetError> {
    for (index, report) in reports.iter().enumerate() {
        let json = serde_json::to_string(report)
            .map_err(|e| FleetError::Engine(format!("report serialisation failed: {e}")))?;
        writeln!(out, "{{\"id\":{id},\"index\":{index},\"report\":{json}}}")?;
    }
    out.flush()?;
    Ok(())
}

fn write_error<W: Write>(out: &mut W, id: Option<u64>, msg: &str) -> Result<(), FleetError> {
    let msg = serde_json::to_string(msg)
        .map_err(|e| FleetError::Engine(format!("error serialisation failed: {e}")))?;
    match id {
        Some(id) => writeln!(out, "{{\"id\":{id},\"error\":{msg}}}")?,
        None => writeln!(out, "{{\"error\":{msg}}}")?,
    }
    out.flush()?;
    Ok(())
}

/// Serves one session: reads the config line, then answers request
/// lines until EOF. Per-request failures (bad JSON, unknown planner)
/// produce an error line and the session continues; only transport
/// failures and an unusable config abort.
///
/// Returns the service (with its telemetry counters) once the peer
/// closes the stream.
///
/// # Errors
///
/// Returns [`FleetError::Config`]/[`FleetError::Protocol`] when the
/// first line is unusable and [`FleetError::Io`] when the transport
/// fails.
pub fn serve<R: BufRead, W: Write>(input: R, mut out: W) -> Result<FleetService, FleetError> {
    let mut lines = input.lines();
    let config_line = loop {
        match lines.next() {
            Some(line) => {
                let line = line?;
                if !line.trim().is_empty() {
                    break line;
                }
            }
            None => {
                return Err(FleetError::Protocol(
                    "stream ended before a fleet config line".into(),
                ))
            }
        }
    };
    let cfg: FleetConfig = serde_json::from_str(&config_line)
        .map_err(|e| FleetError::Protocol(format!("bad fleet config: {e}")))?;
    let mut service = FleetService::new(&cfg)?;

    for line in lines {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let req: FleetRequest = match serde_json::from_str(&line) {
            Ok(req) => req,
            Err(e) => {
                write_error(&mut out, None, &format!("bad request: {e}"))?;
                continue;
            }
        };
        match service.handle(&req) {
            Ok(reports) => write_reports(&mut out, req.id, &reports)?,
            Err(FleetError::Io(e)) => return Err(FleetError::Io(e)),
            Err(e) => write_error(&mut out, Some(req.id), &e.to_string())?,
        }
    }
    Ok(service)
}
