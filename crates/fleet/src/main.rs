//! `helio-fleet` — the long-running fleet-simulation server.
//!
//! Default mode serves one session over stdin/stdout:
//!
//! ```text
//! helio-fleet < session.jsonl > reports.jsonl
//! ```
//!
//! `--listen ADDR` binds a TCP listener and serves connections
//! sequentially, each with the same line protocol (config line first,
//! then request lines):
//!
//! ```text
//! helio-fleet --listen 127.0.0.1:7077
//! ```
//!
//! With `--checkpoint-dir` the service persists its progress at period
//! boundaries; restarting it against the same directory and input
//! resumes mid-request without repeating or losing a response line:
//!
//! ```text
//! helio-fleet --checkpoint-dir /var/lib/helio < session.jsonl
//! ```
//!
//! Protocol output (report/error lines) goes to the peer; telemetry
//! (worker count, request totals) goes to stderr so recorded sessions
//! stay byte-reproducible. On SIGTERM/SIGINT the service finishes the
//! segment in flight, flushes a final checkpoint and exits cleanly.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::panic))]

use std::io::{BufReader, BufWriter, Write};
use std::net::TcpListener;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};

use helio_faults::ServiceFaultPlan;
use helio_fleet::{serve_with, FleetError, ServeOptions, SessionOutcome, SessionSummary};

/// Exit code signalling a chaos-plan kill (the CI smoke test restarts
/// the service on it, like an init system would).
const EXIT_CHAOS_KILL: u8 = 17;

fn usage() -> &'static str {
    "usage: helio-fleet [OPTIONS]\n\
     \n\
     Reads one fleet-config JSON line, then scenario-batch request\n\
     lines, writing one report line per scenario. Without --listen the\n\
     session runs over stdin/stdout; with it, over sequential TCP\n\
     connections to ADDR.\n\
     \n\
     Options:\n\
     \x20 --listen ADDR          serve TCP connections on ADDR instead of stdio\n\
     \x20 --checkpoint-dir DIR   persist progress to DIR at period boundaries;\n\
     \x20                        a restart against the same DIR resumes without\n\
     \x20                        losing or repeating a response line\n\
     \x20 --checkpoint-every N   periods between checkpoints (default: one day)\n\
     \x20 --max-batch N          reject requests with more than N scenarios\n\
     \x20                        (inline {\"id\":…,\"error\":…} line)\n\
     \x20 --max-line-bytes N     reject protocol lines longer than N bytes\n\
     \x20 --deadline-ms N        per-request wall-clock deadline; an expired\n\
     \x20                        request answers {\"id\":…,\"error\":\"deadline\"}\n\
     \x20 --chaos-kill REQ:PER   chaos harness: checkpoint and exit (code 17)\n\
     \x20                        at period boundary PER of request REQ\n\
     \n\
     On SIGTERM/SIGINT the service finishes the segment in flight,\n\
     flushes a final checkpoint and exits 0."
}

/// The signal handler's view of the shutdown flag; `serve_with` polls
/// the same flag at period boundaries and between requests.
static SHUTDOWN: OnceLock<Arc<AtomicBool>> = OnceLock::new();

#[cfg(unix)]
extern "C" fn on_signal(_sig: i32) {
    if let Some(flag) = SHUTDOWN.get() {
        flag.store(true, Ordering::SeqCst);
    }
}

/// Installs SIGTERM/SIGINT handlers raising the shared shutdown flag.
/// Uses `signal(2)` directly so the binary needs no signal crate; the
/// handler only touches atomics, which is async-signal-safe.
#[cfg(unix)]
fn install_signal_handlers() {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    let handler = on_signal as extern "C" fn(i32);
    unsafe {
        signal(SIGINT, handler as usize);
        signal(SIGTERM, handler as usize);
    }
}

#[cfg(not(unix))]
fn install_signal_handlers() {}

struct Cli {
    listen: Option<String>,
    opts: ServeOptions,
}

fn parse_args(args: &[String]) -> Result<Option<Cli>, String> {
    let mut listen = None;
    let mut opts = ServeOptions::default();
    let mut it = args.iter();
    let value = |flag: &str, it: &mut std::slice::Iter<'_, String>| -> Result<String, String> {
        it.next()
            .cloned()
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--help" | "-h" => return Ok(None),
            "--listen" => listen = Some(value("--listen", &mut it)?),
            "--checkpoint-dir" => {
                opts.checkpoint_dir = Some(value("--checkpoint-dir", &mut it)?.into());
            }
            "--checkpoint-every" => {
                let v = value("--checkpoint-every", &mut it)?;
                opts.checkpoint_every = Some(
                    v.parse()
                        .map_err(|_| format!("bad --checkpoint-every {v}"))?,
                );
            }
            "--max-batch" => {
                let v = value("--max-batch", &mut it)?;
                opts.max_batch = Some(v.parse().map_err(|_| format!("bad --max-batch {v}"))?);
            }
            "--max-line-bytes" => {
                let v = value("--max-line-bytes", &mut it)?;
                opts.max_line_bytes =
                    Some(v.parse().map_err(|_| format!("bad --max-line-bytes {v}"))?);
            }
            "--deadline-ms" => {
                let v = value("--deadline-ms", &mut it)?;
                opts.deadline_ms = Some(v.parse().map_err(|_| format!("bad --deadline-ms {v}"))?);
            }
            "--chaos-kill" => {
                let v = value("--chaos-kill", &mut it)?;
                let (req, period) = v
                    .split_once(':')
                    .ok_or_else(|| format!("bad --chaos-kill {v} (expected REQ:PERIOD)"))?;
                opts.chaos = ServiceFaultPlan {
                    kill_request: Some(
                        req.parse()
                            .map_err(|_| format!("bad --chaos-kill request `{req}`"))?,
                    ),
                    kill_at_period: Some(
                        period
                            .parse()
                            .map_err(|_| format!("bad --chaos-kill period `{period}`"))?,
                    ),
                    ..ServiceFaultPlan::default()
                };
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(Some(Cli { listen, opts }))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cli = match parse_args(&args) {
        Ok(Some(cli)) => cli,
        Ok(None) => {
            println!("{}", usage());
            return ExitCode::SUCCESS;
        }
        Err(e) => {
            eprintln!("helio-fleet: {e}\n\n{}", usage());
            return ExitCode::FAILURE;
        }
    };
    let flag = Arc::new(AtomicBool::new(false));
    let _ = SHUTDOWN.set(Arc::clone(&flag));
    install_signal_handlers();
    cli.opts.shutdown = Some(flag);
    match cli.listen {
        Some(addr) => serve_tcp(&addr, &cli.opts),
        None => serve_stdio(&cli.opts),
    }
}

fn serve_stdio(opts: &ServeOptions) -> ExitCode {
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let result = serve_with(stdin.lock(), BufWriter::new(stdout.lock()), opts);
    finish("stdin session", result)
}

fn serve_tcp(addr: &str, opts: &ServeOptions) -> ExitCode {
    let listener = match TcpListener::bind(addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("helio-fleet: cannot listen on {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!("helio-fleet: listening on {addr}");
    for conn in listener.incoming() {
        if opts
            .shutdown
            .as_ref()
            .is_some_and(|s| s.load(Ordering::SeqCst))
        {
            eprintln!("helio-fleet: shutdown requested, closing listener");
            break;
        }
        let conn = match conn {
            Ok(c) => c,
            Err(e) => {
                eprintln!("helio-fleet: accept failed: {e}");
                continue;
            }
        };
        let peer = conn
            .peer_addr()
            .map(|p| p.to_string())
            .unwrap_or_else(|_| "<unknown>".into());
        let reader = match conn.try_clone() {
            Ok(c) => BufReader::new(c),
            Err(e) => {
                eprintln!("helio-fleet: cannot clone connection from {peer}: {e}");
                continue;
            }
        };
        let mut writer = BufWriter::new(conn);
        match serve_with(reader, &mut writer, opts) {
            Ok(summary) => {
                eprintln!(
                    "helio-fleet: {peer}: {} requests, {} scenarios on {} workers",
                    summary.service.requests_served(),
                    summary.service.scenarios_served(),
                    summary.service.workers()
                );
                let _ = writer.flush();
                if let SessionOutcome::ChaosKill { request, period } = summary.outcome {
                    eprintln!("helio-fleet: chaos kill at request {request}, period {period}");
                    return ExitCode::from(EXIT_CHAOS_KILL);
                }
            }
            Err(e) => eprintln!("helio-fleet: {peer}: session failed: {e}"),
        }
        let _ = writer.flush();
    }
    ExitCode::SUCCESS
}

fn finish(what: &str, result: Result<SessionSummary, FleetError>) -> ExitCode {
    match result {
        Ok(summary) => {
            let service = &summary.service;
            eprintln!(
                "helio-fleet: {what} done: {} requests, {} scenarios on {} workers",
                service.requests_served(),
                service.scenarios_served(),
                service.workers()
            );
            match summary.outcome {
                SessionOutcome::ChaosKill { request, period } => {
                    eprintln!("helio-fleet: chaos kill at request {request}, period {period}");
                    ExitCode::from(EXIT_CHAOS_KILL)
                }
                SessionOutcome::Shutdown => {
                    eprintln!("helio-fleet: graceful shutdown, checkpoint flushed");
                    ExitCode::SUCCESS
                }
                SessionOutcome::Eof => ExitCode::SUCCESS,
            }
        }
        Err(e) => {
            eprintln!("helio-fleet: {what} failed: {e}");
            ExitCode::FAILURE
        }
    }
}
