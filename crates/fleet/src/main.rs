//! `helio-fleet` — the long-running fleet-simulation server.
//!
//! Default mode serves one session over stdin/stdout:
//!
//! ```text
//! helio-fleet < session.jsonl > reports.jsonl
//! ```
//!
//! `--listen ADDR` binds a TCP listener and serves connections
//! sequentially, each with the same line protocol (config line first,
//! then request lines):
//!
//! ```text
//! helio-fleet --listen 127.0.0.1:7077
//! ```
//!
//! Protocol output (report/error lines) goes to the peer; telemetry
//! (worker count, request totals) goes to stderr so recorded sessions
//! stay byte-reproducible.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::panic))]

use std::io::{BufReader, BufWriter, Write};
use std::net::TcpListener;
use std::process::ExitCode;

use helio_fleet::{serve, FleetError};

fn usage() -> &'static str {
    "usage: helio-fleet [--listen ADDR]\n\
     \n\
     Reads one fleet-config JSON line, then scenario-batch request\n\
     lines, writing one report line per scenario. Without --listen the\n\
     session runs over stdin/stdout; with it, over sequential TCP\n\
     connections to ADDR."
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.as_slice() {
        [] => serve_stdio(),
        [flag] if flag == "--help" || flag == "-h" => {
            println!("{}", usage());
            ExitCode::SUCCESS
        }
        [flag, addr] if flag == "--listen" => serve_tcp(addr),
        _ => {
            eprintln!("{}", usage());
            ExitCode::FAILURE
        }
    }
}

fn serve_stdio() -> ExitCode {
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let result = serve(stdin.lock(), BufWriter::new(stdout.lock()));
    finish("stdin session", result)
}

fn serve_tcp(addr: &str) -> ExitCode {
    let listener = match TcpListener::bind(addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("helio-fleet: cannot listen on {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!("helio-fleet: listening on {addr}");
    for conn in listener.incoming() {
        let conn = match conn {
            Ok(c) => c,
            Err(e) => {
                eprintln!("helio-fleet: accept failed: {e}");
                continue;
            }
        };
        let peer = conn
            .peer_addr()
            .map(|p| p.to_string())
            .unwrap_or_else(|_| "<unknown>".into());
        let reader = match conn.try_clone() {
            Ok(c) => BufReader::new(c),
            Err(e) => {
                eprintln!("helio-fleet: cannot clone connection from {peer}: {e}");
                continue;
            }
        };
        let mut writer = BufWriter::new(conn);
        match serve(reader, &mut writer) {
            Ok(service) => eprintln!(
                "helio-fleet: {peer}: {} requests, {} scenarios on {} workers",
                service.requests_served(),
                service.scenarios_served(),
                service.workers()
            ),
            Err(e) => eprintln!("helio-fleet: {peer}: session failed: {e}"),
        }
        let _ = writer.flush();
    }
    ExitCode::SUCCESS
}

fn finish(what: &str, result: Result<helio_fleet::FleetService, FleetError>) -> ExitCode {
    match result {
        Ok(service) => {
            eprintln!(
                "helio-fleet: {what} done: {} requests, {} scenarios on {} workers",
                service.requests_served(),
                service.scenarios_served(),
                service.workers()
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("helio-fleet: {what} failed: {e}");
            ExitCode::FAILURE
        }
    }
}
