//! Regulator efficiency curves (paper Fig. 5).
//!
//! The dual-channel node routes migrated energy through an *input*
//! regulator when charging a supercapacitor and an *output* regulator
//! when discharging one. Both efficiencies depend on the capacitor-side
//! voltage: boost/buck conversion from/to the supply rail is inefficient
//! when the capacitor sits near its cut-off voltage and improves towards
//! the fully-charged voltage. The paper obtained `η_chr(V)` and
//! `η_dis(V)` by fitting bench measurements; here they are parametric
//! piecewise-linear fits whose default knots were calibrated so the
//! Table 2 migration-efficiency orderings hold (see `migration.rs`).

use helio_common::math::lerp_table;
use helio_common::units::Volts;
use serde::{Deserialize, Serialize};

use crate::error::StorageError;

/// A voltage-dependent efficiency curve stored as piecewise-linear knots.
///
/// Queries clamp outside the knot range. Efficiencies are fractions in
/// `(0, 1]`.
///
/// # Example
///
/// ```
/// use helio_common::units::Volts;
/// use helio_storage::RegulatorCurve;
///
/// let chr = RegulatorCurve::default_charge();
/// // Fig. 5 shape: efficiency improves with capacitor voltage.
/// assert!(chr.efficiency(Volts::new(4.5)) > chr.efficiency(Volts::new(1.2)));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegulatorCurve {
    voltages: Vec<f64>,
    efficiencies: Vec<f64>,
}

impl RegulatorCurve {
    /// Builds a curve from `(voltage, efficiency)` knots.
    ///
    /// # Panics
    ///
    /// Panics when the knots are rejected by
    /// [`RegulatorCurve::try_from_knots`] — the curves in this
    /// workspace are constants defined at build time, so malformed
    /// knots are programming errors.
    pub fn from_knots(knots: &[(f64, f64)]) -> Self {
        Self::try_from_knots(knots).expect("regulator knots are valid")
    }

    /// Fallible variant of [`RegulatorCurve::from_knots`] for curves
    /// built from external (untrusted) calibration data.
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::InvalidParams`] when the knot array is
    /// empty, is not strictly increasing in voltage, or contains
    /// non-finite voltages or efficiencies outside `(0, 1]`.
    pub fn try_from_knots(knots: &[(f64, f64)]) -> Result<Self, StorageError> {
        if knots.is_empty() {
            return Err(StorageError::InvalidParams(
                "regulator curve needs knots".into(),
            ));
        }
        if knots.iter().any(|&(v, _)| !v.is_finite()) {
            return Err(StorageError::InvalidParams(
                "knot voltages must be finite".into(),
            ));
        }
        if !knots.windows(2).all(|w| w[0].0 < w[1].0) {
            return Err(StorageError::InvalidParams(
                "knot voltages must be strictly increasing".into(),
            ));
        }
        if !knots.iter().all(|&(_, e)| e > 0.0 && e <= 1.0) {
            return Err(StorageError::InvalidParams(
                "efficiencies must lie in (0, 1]".into(),
            ));
        }
        Ok(Self {
            voltages: knots.iter().map(|k| k.0).collect(),
            efficiencies: knots.iter().map(|k| k.1).collect(),
        })
    }

    /// Default *input* (charging) regulator fit, `η_chr(V)`.
    ///
    /// Calibrated against the paper's Fig. 5 shape: ~0.5 near the cut-off
    /// voltage, saturating around 0.78 near full charge.
    pub fn default_charge() -> Self {
        Self::from_knots(&[
            (0.5, 0.52),
            (1.0, 0.60),
            (1.5, 0.68),
            (2.0, 0.75),
            (2.5, 0.79),
            (3.0, 0.82),
            (3.5, 0.82),
            (4.0, 0.845),
            (4.5, 0.86),
            (5.0, 0.87),
        ])
    }

    /// Default *output* (discharging) regulator fit, `η_dis(V)`.
    ///
    /// Slightly better than the input path at high voltage (the output
    /// regulator bucks down from a charged capacitor), slightly worse
    /// near cut-off.
    pub fn default_discharge() -> Self {
        Self::from_knots(&[
            (0.5, 0.46),
            (1.0, 0.55),
            (1.5, 0.66),
            (2.0, 0.75),
            (2.5, 0.80),
            (3.0, 0.83),
            (3.5, 0.83),
            (4.0, 0.855),
            (4.5, 0.875),
            (5.0, 0.885),
        ])
    }

    /// Efficiency at a capacitor voltage.
    pub fn efficiency(&self, v: Volts) -> f64 {
        lerp_table(&self.voltages, &self.efficiencies, v.value())
    }

    /// The voltage knots (for plotting Fig. 5).
    pub fn voltages(&self) -> &[f64] {
        &self.voltages
    }

    /// The efficiency knots (for plotting Fig. 5).
    pub fn efficiencies(&self) -> &[f64] {
        &self.efficiencies
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_curves_are_monotone_increasing() {
        for curve in [
            RegulatorCurve::default_charge(),
            RegulatorCurve::default_discharge(),
        ] {
            let effs: Vec<f64> = (0..=45)
                .map(|i| curve.efficiency(Volts::new(0.5 + 0.1 * i as f64)))
                .collect();
            assert!(
                effs.windows(2).all(|w| w[1] >= w[0] - 1e-12),
                "efficiency must be nondecreasing in voltage"
            );
        }
    }

    #[test]
    fn curves_stay_in_unit_interval() {
        let chr = RegulatorCurve::default_charge();
        for i in 0..100 {
            let e = chr.efficiency(Volts::new(0.1 * i as f64));
            assert!(e > 0.0 && e <= 1.0, "η={e} out of range");
        }
    }

    #[test]
    fn queries_clamp_outside_knots() {
        let chr = RegulatorCurve::default_charge();
        assert_eq!(chr.efficiency(Volts::new(0.0)), 0.52);
        assert_eq!(chr.efficiency(Volts::new(9.0)), 0.87);
    }

    #[test]
    fn interpolates_between_knots() {
        let c = RegulatorCurve::from_knots(&[(1.0, 0.5), (2.0, 0.7)]);
        assert!((c.efficiency(Volts::new(1.5)) - 0.6).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_unsorted_knots() {
        RegulatorCurve::from_knots(&[(2.0, 0.5), (1.0, 0.7)]);
    }

    #[test]
    #[should_panic(expected = "(0, 1]")]
    fn rejects_out_of_range_efficiency() {
        RegulatorCurve::from_knots(&[(1.0, 0.0)]);
    }

    #[test]
    fn knot_accessors_expose_fig5_series() {
        let chr = RegulatorCurve::default_charge();
        assert_eq!(chr.voltages().len(), chr.efficiencies().len());
        assert!(chr.voltages().len() >= 5);
    }
}
