//! Supercapacitor voltage dynamics (paper Eqs. 1–3 and 11).
//!
//! A [`SuperCap`] is the immutable description of one physical capacitor
//! (capacitance and voltage window); a [`CapState`] is its mutable
//! voltage. The slot-update rule follows Eq. (1): within one slot the
//! efficiency and leakage functions are evaluated at the
//! beginning-of-slot voltage, then the stored energy `½·C·V²` is
//! advanced.

use helio_common::units::{Farads, Joules, Seconds, Volts};
use serde::{Deserialize, Serialize};

use crate::error::StorageError;
use crate::params::StorageModelParams;

/// One physical supercapacitor of the distributed bank.
///
/// # Example
///
/// ```
/// use helio_common::units::{Farads, Joules, Seconds};
/// use helio_storage::{StorageModelParams, SuperCap};
///
/// # fn main() -> Result<(), helio_storage::StorageError> {
/// let params = StorageModelParams::default();
/// let cap = SuperCap::new(Farads::new(10.0), &params)?;
/// let mut state = cap.empty_state();
///
/// // Offer 5 J over one minute; some of it sticks (post regulator+cycle).
/// let absorbed = cap.charge(&mut state, &params, Joules::new(5.0));
/// assert!(absorbed.value() > 0.0);
/// assert!(state.voltage() > cap.v_cutoff());
///
/// // Draw it back out; conversion losses mean we get less than we stored.
/// let delivered = cap.discharge(&mut state, &params, Joules::new(5.0));
/// assert!(delivered < absorbed);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SuperCap {
    capacitance: Farads,
    v_full: Volts,
    v_cutoff: Volts,
    cycle_efficiency: f64,
}

impl SuperCap {
    /// Creates a capacitor of the given size under a parameter set.
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::InvalidCapacitance`] for non-positive or
    /// non-finite sizes and propagates parameter-validation failures.
    pub fn new(capacitance: Farads, params: &StorageModelParams) -> Result<Self, StorageError> {
        if capacitance.value() <= 0.0 || !capacitance.is_finite() {
            return Err(StorageError::InvalidCapacitance(capacitance.value()));
        }
        params.validate()?;
        Ok(Self {
            capacitance,
            v_full: params.v_full,
            v_cutoff: params.v_cutoff,
            cycle_efficiency: params.cycle_efficiency(capacitance),
        })
    }

    /// Capacitance `C_h`.
    pub const fn capacitance(&self) -> Farads {
        self.capacitance
    }

    /// Fully-charged voltage `V_H`.
    pub const fn v_full(&self) -> Volts {
        self.v_full
    }

    /// Cut-off voltage `V_L`.
    pub const fn v_cutoff(&self) -> Volts {
        self.v_cutoff
    }

    /// Cycle efficiency `η_cycle(C)` baked in at construction.
    pub const fn cycle_efficiency(&self) -> f64 {
        self.cycle_efficiency
    }

    /// Usable capacity: `½·C·(V_H² − V_L²)`.
    pub fn usable_capacity(&self) -> Joules {
        self.capacitance.energy_between(self.v_full, self.v_cutoff)
    }

    /// State with the capacitor drained to its cut-off voltage.
    pub fn empty_state(&self) -> CapState {
        CapState {
            voltage: self.v_cutoff,
        }
    }

    /// State with the capacitor fully charged.
    pub fn full_state(&self) -> CapState {
        CapState {
            voltage: self.v_full,
        }
    }

    /// State at an arbitrary voltage, clamped into `[0, V_H]`.
    pub fn state_at(&self, voltage: Volts) -> CapState {
        CapState {
            voltage: voltage.clamp(Volts::ZERO, self.v_full),
        }
    }

    /// Applies leakage over `dt` at the beginning-of-slot voltage,
    /// returning the energy lost. Leakage can pull the voltage below the
    /// cut-off (the stored energy is physically still there, just
    /// unreachable by the output regulator) but never below zero.
    pub fn leak(&self, state: &mut CapState, params: &StorageModelParams, dt: Seconds) -> Joules {
        let p_leak = params.leakage_power(self.capacitance, state.voltage);
        let loss = Joules::new(p_leak * dt.value());
        let stored = self.capacitance.stored_energy(state.voltage);
        let actual = loss.min(stored);
        state.voltage = self.capacitance.voltage_for_energy(stored - actual);
        actual
    }

    /// Charges the capacitor with up to `offered` joules of *source-side*
    /// energy (e.g. surplus solar in a slot), returning the energy
    /// actually drawn from the source.
    ///
    /// The stored energy grows by `drawn · η_chr(V) · η_cycle` (Eq. 3,
    /// `ΔE > 0` branch); charging stops at `V_H`. Efficiency is evaluated
    /// at the beginning-of-slot voltage per Eq. (1).
    pub fn charge(
        &self,
        state: &mut CapState,
        params: &StorageModelParams,
        offered: Joules,
    ) -> Joules {
        if offered.value() <= 0.0 || state.voltage >= self.v_full {
            return Joules::ZERO;
        }
        let eta = params.charge_curve.efficiency(state.voltage) * self.cycle_efficiency;
        // A degenerate efficiency (zero, negative or NaN from corrupted
        // calibration) means the channel cannot move energy — refuse
        // the transfer instead of poisoning the voltage state.
        if !(eta > 0.0 && eta <= 1.0) {
            return Joules::ZERO;
        }
        let headroom = self
            .capacitance
            .energy_between(self.v_full, state.voltage)
            .max(Joules::ZERO);
        let max_drawn = headroom / eta;
        let drawn = offered.min(Joules::new(max_drawn.value()));
        let stored = self.capacitance.stored_energy(state.voltage) + drawn * eta;
        state.voltage = self.capacitance.voltage_for_energy(stored).min(self.v_full);
        drawn
    }

    /// Discharges the capacitor to deliver up to `demanded` joules to the
    /// load, returning the energy actually delivered.
    ///
    /// The stored energy shrinks by `delivered / (η_dis(V) · η_cycle)`
    /// (Eq. 3, `ΔE < 0` branch); discharge stops at the cut-off voltage
    /// `V_L`. Efficiency is evaluated at the beginning-of-slot voltage.
    pub fn discharge(
        &self,
        state: &mut CapState,
        params: &StorageModelParams,
        demanded: Joules,
    ) -> Joules {
        if demanded.value() <= 0.0 || state.voltage <= self.v_cutoff {
            return Joules::ZERO;
        }
        let eta = params.discharge_curve.efficiency(state.voltage) * self.cycle_efficiency;
        // Degenerate efficiency: the channel cannot deliver — see
        // `charge` above.
        if !(eta > 0.0 && eta <= 1.0) {
            return Joules::ZERO;
        }
        let usable = self
            .capacitance
            .energy_between(state.voltage, self.v_cutoff)
            .max(Joules::ZERO);
        let max_delivered = usable * eta;
        let delivered = demanded.min(max_delivered);
        let stored = self.capacitance.stored_energy(state.voltage) - delivered / eta;
        state.voltage = state
            .voltage
            .min(self.capacitance.voltage_for_energy(stored))
            .max(self.v_cutoff);
        delivered
    }

    /// Maximum energy deliverable to the load from the current state in a
    /// single withdrawal (Eq. 14's usable-energy bound, post conversion).
    pub fn deliverable(&self, state: &CapState, params: &StorageModelParams) -> Joules {
        if state.voltage <= self.v_cutoff {
            return Joules::ZERO;
        }
        let eta = params.discharge_curve.efficiency(state.voltage) * self.cycle_efficiency;
        (self
            .capacitance
            .energy_between(state.voltage, self.v_cutoff)
            .max(Joules::ZERO))
            * eta
    }
}

/// The mutable state of a supercapacitor: its terminal voltage.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct CapState {
    voltage: Volts,
}

impl CapState {
    /// Current terminal voltage `V^sc`.
    pub const fn voltage(&self) -> Volts {
        self.voltage
    }

    /// Total stored energy `½·C·V²` for the owning capacitor.
    pub fn stored_energy(&self, cap: &SuperCap) -> Joules {
        cap.capacitance().stored_energy(self.voltage)
    }

    /// Energy above the cut-off voltage, `½·C·(V² − V_L²)`, clamped at
    /// zero (the left side of Eq. 22's switching test).
    pub fn energy_above_cutoff(&self, cap: &SuperCap) -> Joules {
        cap.capacitance()
            .energy_between(self.voltage, cap.v_cutoff())
            .max(Joules::ZERO)
    }

    /// Fraction of the usable window currently filled, in `[0, 1]`.
    pub fn fill_fraction(&self, cap: &SuperCap) -> f64 {
        let usable = cap.usable_capacity();
        if usable.value() <= 0.0 {
            return 0.0;
        }
        (self.energy_above_cutoff(cap) / usable).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(c: f64) -> (SuperCap, StorageModelParams) {
        let params = StorageModelParams::default();
        (SuperCap::new(Farads::new(c), &params).unwrap(), params)
    }

    #[test]
    fn rejects_bad_capacitance() {
        let params = StorageModelParams::default();
        assert!(SuperCap::new(Farads::new(0.0), &params).is_err());
        assert!(SuperCap::new(Farads::new(-1.0), &params).is_err());
        assert!(SuperCap::new(Farads::new(f64::NAN), &params).is_err());
    }

    #[test]
    fn usable_capacity_matches_formula() {
        let (cap, _) = setup(10.0);
        assert!((cap.usable_capacity().value() - 120.0).abs() < 1e-9);
    }

    #[test]
    fn charge_respects_v_full() {
        let (cap, params) = setup(1.0);
        let mut state = cap.empty_state();
        // Offer far more than the capacitor can hold.
        let drawn = cap.charge(&mut state, &params, Joules::new(1000.0));
        assert!((state.voltage().value() - 5.0).abs() < 1e-9);
        // Drawn exceeds stored because of conversion losses.
        assert!(drawn.value() > cap.usable_capacity().value());
        // Further charging draws nothing.
        assert_eq!(
            cap.charge(&mut state, &params, Joules::new(1.0)),
            Joules::ZERO
        );
    }

    #[test]
    fn discharge_respects_cutoff() {
        let (cap, params) = setup(1.0);
        let mut state = cap.full_state();
        let delivered = cap.discharge(&mut state, &params, Joules::new(1000.0));
        assert!((state.voltage().value() - 1.0).abs() < 1e-9);
        // Delivered is below the usable window because of losses.
        assert!(delivered < cap.usable_capacity());
        assert!(delivered.value() > 0.0);
        assert_eq!(
            cap.discharge(&mut state, &params, Joules::new(1.0)),
            Joules::ZERO
        );
    }

    #[test]
    fn round_trip_efficiency_below_one_and_voltage_dependent() {
        let (cap, params) = setup(10.0);
        // Round trip near the cut-off voltage.
        let mut low = cap.empty_state();
        let in_low = cap.charge(&mut low, &params, Joules::new(5.0));
        let out_low = cap.discharge(&mut low, &params, Joules::new(100.0));
        let eff_low = out_low / in_low;
        // Round trip starting from a 60 %-charged capacitor.
        let mut high = cap.state_at(Volts::new(4.0));
        let before = high.stored_energy(&cap);
        let in_high = cap.charge(&mut high, &params, Joules::new(5.0));
        let stored_now = high.stored_energy(&cap) - before;
        let eta_out = params.discharge_curve.efficiency(high.voltage()) * cap.cycle_efficiency();
        let eff_high = (stored_now.value() * eta_out) / in_high.value();
        assert!(eff_low < 1.0 && eff_high < 1.0);
        assert!(
            eff_high > eff_low,
            "high-voltage operation must be more efficient ({eff_high} vs {eff_low})"
        );
    }

    #[test]
    fn leak_reduces_voltage_and_reports_loss() {
        let (cap, params) = setup(1.0);
        let mut state = cap.full_state();
        let before = state.stored_energy(&cap);
        let lost = cap.leak(&mut state, &params, Seconds::from_minutes(400.0));
        let after = state.stored_energy(&cap);
        assert!((before - after - lost).abs() < Joules::new(1e-9));
        assert!(
            lost.value() > 1.0,
            "a full 1 F cap must leak > 1 J over 400 min, got {lost}"
        );
        assert!(state.voltage() < cap.v_full());
    }

    #[test]
    fn leak_can_cross_cutoff_but_not_zero() {
        let params = StorageModelParams::default().with_leakage_scale(1e6);
        let cap = SuperCap::new(Farads::new(1.0), &params).unwrap();
        let mut state = cap.state_at(Volts::new(1.2));
        cap.leak(&mut state, &params, Seconds::from_hours(100.0));
        assert!(state.voltage() >= Volts::ZERO);
        assert!(state.voltage() < cap.v_cutoff());
        // Below cut-off nothing can be delivered.
        assert_eq!(cap.deliverable(&state, &params), Joules::ZERO);
    }

    #[test]
    fn partial_discharge_conserves_energy_accounting() {
        let (cap, params) = setup(10.0);
        let mut state = cap.state_at(Volts::new(4.0));
        let before = state.stored_energy(&cap);
        let delivered = cap.discharge(&mut state, &params, Joules::new(2.0));
        assert!((delivered.value() - 2.0).abs() < 1e-9);
        let after = state.stored_energy(&cap);
        let eta = params.discharge_curve.efficiency(Volts::new(4.0)) * cap.cycle_efficiency();
        assert!(((before - after).value() - 2.0 / eta).abs() < 1e-9);
    }

    #[test]
    fn fill_fraction_spans_zero_to_one() {
        let (cap, _) = setup(10.0);
        assert_eq!(cap.empty_state().fill_fraction(&cap), 0.0);
        assert!((cap.full_state().fill_fraction(&cap) - 1.0).abs() < 1e-12);
        let half_energy = cap.usable_capacity() * 0.5;
        let v = cap
            .capacitance()
            .voltage_for_energy(cap.capacitance().stored_energy(cap.v_cutoff()) + half_energy);
        let mid = cap.state_at(v);
        assert!((mid.fill_fraction(&cap) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn deliverable_matches_discharge_limit() {
        let (cap, params) = setup(10.0);
        let state = cap.state_at(Volts::new(3.0));
        let deliverable = cap.deliverable(&state, &params);
        let mut s = state;
        let delivered = cap.discharge(&mut s, &params, Joules::new(1e9));
        assert!((deliverable - delivered).abs() < Joules::new(1e-9));
    }

    #[test]
    fn state_at_clamps() {
        let (cap, _) = setup(1.0);
        assert_eq!(cap.state_at(Volts::new(9.0)).voltage(), cap.v_full());
        assert_eq!(cap.state_at(Volts::new(-2.0)).voltage(), Volts::ZERO);
    }
}
