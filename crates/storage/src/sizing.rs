//! Supercapacitor sizing (paper Section 4.1, Eqs. 10–11).
//!
//! Given the per-slot migration-energy series `ΔE_{i,j,m}` of a day
//! (surplus solar to be stored, deficits to be served from storage), the
//! sizing step finds the capacitance that minimises the total energy
//! loss of migration — conversion losses, cycle losses, leakage,
//! overflow of a too-small capacitor and unserved deficits. Because the
//! number of per-day optima `{C_i^opt}` usually exceeds the number of
//! physical capacitors `H`, the optima are then clustered into `H`
//! sizes (1-D k-means; the paper clusters by the corresponding solar
//! power which is monotone in the migrated quantity, so clustering the
//! optima directly is equivalent in effect).

use helio_common::math::{kmeans_1d, log_grid_then_golden_min};
use helio_common::units::{Farads, Joules, Seconds};
use serde::{Deserialize, Serialize};

use crate::capacitor::SuperCap;
use crate::error::StorageError;
use crate::params::StorageModelParams;

/// Result of the per-day sizing optimisation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SizingOutcome {
    /// The loss-minimising capacitance `C_i^opt`.
    pub capacitance: Farads,
    /// Total migration energy loss at the optimum (J).
    pub loss: Joules,
}

/// Simulates one day of migration through a capacitor of size `c` and
/// returns the total energy loss of Eq. 10 (conversion + cycle + leakage)
/// plus overflow and unserved-deficit penalties.
///
/// `delta_e[m]` is the migrated energy of slot `m` (Eq. 2): positive
/// values are surpluses pushed into the capacitor, negatives are
/// deficits drawn from it.
pub fn migration_loss(
    c: Farads,
    params: &StorageModelParams,
    delta_e: &[Joules],
    dt: Seconds,
) -> Joules {
    let cap = match SuperCap::new(c, params) {
        Ok(cap) => cap,
        Err(_) => return Joules::new(f64::INFINITY),
    };
    let mut state = cap.empty_state();
    let mut absorbed = Joules::ZERO;
    let mut delivered = Joules::ZERO;
    let mut overflow = Joules::ZERO;
    let mut unserved = Joules::ZERO;
    for &de in delta_e {
        cap.leak(&mut state, params, dt);
        if de.value() > 0.0 {
            let drawn = cap.charge(&mut state, params, de);
            absorbed += drawn;
            overflow += de - drawn;
        } else if de.value() < 0.0 {
            let demand = -de;
            let got = cap.discharge(&mut state, params, demand);
            delivered += got;
            unserved += demand - got;
        }
    }
    // Whatever remains stored at day end is still lost for *this* day's
    // purposes (the paper notes inter-day migration is rare: capacitors
    // are usually drained overnight), but credit it at the discharge
    // efficiency so huge capacitors are not unfairly penalised.
    let residual_credit = cap.deliverable(&state, params);
    (absorbed - delivered - residual_credit).max(Joules::ZERO) + overflow + unserved
}

/// Finds the per-day optimal capacitance `C_i^opt` (Eq. 10) over
/// `[c_min, c_max]` farads.
///
/// # Errors
///
/// Returns [`StorageError::SizingInput`] when the series is empty or the
/// bracket degenerate.
pub fn optimal_capacitance(
    delta_e: &[Joules],
    dt: Seconds,
    params: &StorageModelParams,
    c_min: Farads,
    c_max: Farads,
) -> Result<SizingOutcome, StorageError> {
    if delta_e.is_empty() {
        return Err(StorageError::SizingInput(
            "migration series is empty".into(),
        ));
    }
    if !(c_min.value() > 0.0 && c_min < c_max) {
        return Err(StorageError::SizingInput(format!(
            "capacitance bracket must satisfy 0 < c_min < c_max (got {c_min} .. {c_max})"
        )));
    }
    // A small size-proportional penalty (volume/cost of a bigger
    // capacitor) regularises days whose loss surface is flat — e.g. a
    // storm day that migrates almost nothing should prefer a small
    // capacitor instead of an arbitrary bracket endpoint.
    const SIZE_PENALTY_J_PER_F: f64 = 0.02;
    let (c_opt, loss) = log_grid_then_golden_min(c_min.value(), c_max.value(), 48, 40, |c| {
        migration_loss(Farads::new(c), params, delta_e, dt).value() + SIZE_PENALTY_J_PER_F * c
    })
    .map_err(|e| StorageError::SizingInput(e.to_string()))?;
    Ok(SizingOutcome {
        capacitance: Farads::new(c_opt),
        loss: Joules::new(loss - SIZE_PENALTY_J_PER_F * c_opt),
    })
}

/// Clusters per-day optimal capacitances into `h` physical sizes
/// (Section 4.1, step 3). Returns ascending capacitances.
///
/// # Errors
///
/// Returns [`StorageError::SizingInput`] when the input is empty or
/// `h == 0`.
pub fn cluster_sizes(daily_optima: &[Farads], h: usize) -> Result<Vec<Farads>, StorageError> {
    let raw: Vec<f64> = daily_optima.iter().map(|c| c.value()).collect();
    let centres = kmeans_1d(&raw, h, 100).map_err(|e| StorageError::SizingInput(e.to_string()))?;
    Ok(centres.into_iter().map(Farads::new).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    const DT: Seconds = Seconds::new(60.0);

    /// Builds a day that stores `surplus` J early and demands it late,
    /// over `n_hold` holding slots.
    fn day(surplus_j: f64, n_charge: usize, n_hold: usize, n_discharge: usize) -> Vec<Joules> {
        let mut v = Vec::new();
        for _ in 0..n_charge {
            v.push(Joules::new(surplus_j / n_charge as f64));
        }
        for _ in 0..n_hold {
            v.push(Joules::ZERO);
        }
        for _ in 0..n_discharge {
            v.push(Joules::new(-surplus_j / n_discharge as f64));
        }
        v
    }

    #[test]
    fn small_quantity_short_hold_prefers_small_cap() {
        let params = StorageModelParams::default();
        let series = day(7.0, 15, 30, 15); // 7 J over an hour
        let out = optimal_capacitance(&series, DT, &params, Farads::new(0.2), Farads::new(200.0))
            .unwrap();
        assert!(
            out.capacitance.value() < 8.0,
            "expected a small optimum, got {}",
            out.capacitance
        );
    }

    #[test]
    fn large_quantity_long_hold_prefers_larger_cap() {
        let params = StorageModelParams::default();
        let series = day(30.0, 100, 200, 100); // 30 J over ~6.7 h
        let out = optimal_capacitance(&series, DT, &params, Farads::new(0.2), Farads::new(200.0))
            .unwrap();
        assert!(
            out.capacitance.value() > 2.0 && out.capacitance.value() < 60.0,
            "expected a mid-size optimum, got {}",
            out.capacitance
        );
    }

    #[test]
    fn optimum_beats_extremes() {
        let params = StorageModelParams::default();
        let series = day(30.0, 100, 200, 100);
        let out = optimal_capacitance(&series, DT, &params, Farads::new(0.2), Farads::new(200.0))
            .unwrap();
        let tiny = migration_loss(Farads::new(0.2), &params, &series, DT);
        let huge = migration_loss(Farads::new(200.0), &params, &series, DT);
        assert!(out.loss <= tiny + Joules::new(1e-9));
        assert!(out.loss <= huge + Joules::new(1e-9));
    }

    #[test]
    fn loss_includes_unserved_demand() {
        let params = StorageModelParams::default();
        // Demand with no prior surplus: everything is unserved.
        let series = vec![Joules::new(-5.0); 10];
        let loss = migration_loss(Farads::new(10.0), &params, &series, DT);
        assert!((loss.value() - 50.0).abs() < 1e-6, "loss {loss}");
    }

    #[test]
    fn sizing_rejects_bad_input() {
        let params = StorageModelParams::default();
        assert!(optimal_capacitance(&[], DT, &params, Farads::new(1.0), Farads::new(2.0)).is_err());
        let s = [Joules::new(1.0)];
        assert!(optimal_capacitance(&s, DT, &params, Farads::new(2.0), Farads::new(1.0)).is_err());
        assert!(optimal_capacitance(&s, DT, &params, Farads::new(0.0), Farads::new(1.0)).is_err());
    }

    #[test]
    fn clustering_reduces_to_h_sizes() {
        let optima: Vec<Farads> = [1.0, 1.2, 0.9, 9.0, 10.5, 11.0, 48.0, 52.0]
            .iter()
            .map(|&c| Farads::new(c))
            .collect();
        let sizes = cluster_sizes(&optima, 3).unwrap();
        assert_eq!(sizes.len(), 3);
        assert!(sizes.windows(2).all(|w| w[0] <= w[1]));
        assert!((sizes[0].value() - 1.03).abs() < 0.2);
        assert!((sizes[2].value() - 50.0).abs() < 2.5);
    }

    #[test]
    fn clustering_validates() {
        assert!(cluster_sizes(&[], 2).is_err());
        assert!(cluster_sizes(&[Farads::new(1.0)], 0).is_err());
    }
}
