//! Fine-grained reference simulator standing in for the paper's bench
//! measurements (the "Test" column of Table 2).
//!
//! The paper validated its slot-level model against measurements on the
//! physical node; the average model-vs-measurement error was 5.38 %. We
//! have no bench, so the measurement is replaced by a *higher-fidelity
//! simulation*: 1-second steps instead of 60-second slots, an equivalent-
//! series-resistance (ESR) conduction loss, and a mild voltage dependence
//! of the effective capacitance — second-order effects the coarse model
//! deliberately ignores. The residual between the two plays the role of
//! the paper's model error.

use helio_common::units::{Farads, Joules, Seconds, Volts};
use serde::{Deserialize, Serialize};

use crate::capacitor::SuperCap;
use crate::migration::{MigrationOutcome, MigrationSpec};
use crate::params::StorageModelParams;

/// Second-order effects included only in the reference simulator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReferenceEffects {
    /// Equivalent series resistance of a 1 F capacitor (Ω); scales as
    /// `1/C` (bigger capacitors parallel more cells).
    pub esr_ohm_farad: f64,
    /// Relative increase of the effective capacitance at full voltage
    /// (electrochemical capacitors gain capacitance with bias).
    pub capacitance_gain_at_full: f64,
    /// Time step of the reference simulation.
    pub dt: Seconds,
}

impl Default for ReferenceEffects {
    fn default() -> Self {
        Self {
            esr_ohm_farad: 1.2,
            capacitance_gain_at_full: 0.06,
            dt: Seconds::new(1.0),
        }
    }
}

/// Runs the migration experiment on the fine-grained reference model and
/// returns its energy ledger — the stand-in for a bench measurement.
pub fn measure_migration(
    cap: &SuperCap,
    params: &StorageModelParams,
    spec: MigrationSpec,
    effects: ReferenceEffects,
) -> MigrationOutcome {
    let dt = effects.dt;
    let total_steps = (spec.duration.value() / dt.value()).round().max(1.0) as usize;
    let charge_steps = ((total_steps as f64) * spec.charge_fraction)
        .round()
        .max(1.0) as usize;
    let discharge_steps = ((total_steps as f64) * spec.discharge_fraction)
        .round()
        .max(1.0) as usize;
    let charge_steps = charge_steps.min(total_steps);
    let discharge_start = total_steps.saturating_sub(discharge_steps);

    let offered_per_step = spec.quantity / charge_steps as f64;
    let esr = effects.esr_ohm_farad / cap.capacitance().value();

    // Effective capacitance grows mildly with voltage.
    let c_eff = |v: Volts| -> Farads {
        let gain =
            effects.capacitance_gain_at_full * (v.value() / cap.v_full().value()).clamp(0.0, 1.0);
        cap.capacitance() * (1.0 + gain)
    };

    let mut voltage = cap.v_cutoff();
    let mut absorbed = Joules::ZERO;
    let mut delivered = Joules::ZERO;
    let mut leaked = Joules::ZERO;
    let mut overflow = Joules::ZERO;

    let mut stored = c_eff(voltage).stored_energy(voltage);

    for step in 0..total_steps {
        // Leakage at the instantaneous voltage.
        let p_leak = params.leakage_power(cap.capacitance(), voltage);
        let leak = Joules::new(p_leak * dt.value()).min(stored);
        stored -= leak;
        leaked += leak;
        voltage = c_eff(voltage).voltage_for_energy(stored);

        if step < charge_steps {
            // Charge through the input regulator plus ESR conduction loss.
            let eta = params.charge_curve.efficiency(voltage) * cap.cycle_efficiency();
            let power_in = offered_per_step.value() / dt.value();
            let current = if voltage.value() > 0.0 {
                power_in / voltage.value().max(0.5)
            } else {
                power_in / 0.5
            };
            let esr_loss = Joules::new(current * current * esr * dt.value());
            let headroom = (c_eff(voltage).energy_between(cap.v_full(), voltage)).max(Joules::ZERO);
            let usable_in = (offered_per_step * eta - esr_loss).max(Joules::ZERO);
            let stored_gain = usable_in.min(headroom);
            // Offered energy beyond headroom is overflow at the source.
            let drawn = if usable_in.value() > 0.0 {
                offered_per_step * (stored_gain / usable_in)
            } else {
                Joules::ZERO
            };
            absorbed += drawn;
            overflow += offered_per_step - drawn;
            stored += stored_gain;
            voltage = c_eff(voltage).voltage_for_energy(stored).min(cap.v_full());
        } else if step >= discharge_start && voltage > cap.v_cutoff() {
            let eta = params.discharge_curve.efficiency(voltage) * cap.cycle_efficiency();
            let usable = c_eff(voltage)
                .energy_between(voltage, cap.v_cutoff())
                .max(Joules::ZERO);
            let remaining = (total_steps - step) as f64;
            let draw_stored = usable / remaining;
            let current = (draw_stored.value() / dt.value()) / voltage.value().max(0.5);
            let esr_loss = Joules::new(current * current * esr * dt.value()).min(draw_stored);
            delivered += (draw_stored - esr_loss) * eta;
            stored -= draw_stored;
            voltage = c_eff(voltage).voltage_for_energy(stored);
        }
    }
    // Final drain.
    if voltage > cap.v_cutoff() {
        let eta = params.discharge_curve.efficiency(voltage) * cap.cycle_efficiency();
        let usable = c_eff(voltage)
            .energy_between(voltage, cap.v_cutoff())
            .max(Joules::ZERO);
        delivered += usable * eta;
    }

    MigrationOutcome {
        offered: spec.quantity,
        absorbed,
        delivered,
        leaked,
        overflow,
    }
}

/// Convenience: reference ("measured") migration efficiency.
pub fn measured_migration_efficiency(
    cap: &SuperCap,
    params: &StorageModelParams,
    spec: MigrationSpec,
) -> f64 {
    measure_migration(cap, params, spec, ReferenceEffects::default()).efficiency()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::migration::migration_efficiency;

    fn cap(c: f64, params: &StorageModelParams) -> SuperCap {
        SuperCap::new(Farads::new(c), params).unwrap()
    }

    #[test]
    fn reference_tracks_model_within_table2_error_band() {
        // The paper's model-vs-test errors range from 1.75 % to 9.3 %
        // (average 5.38 %). Require the same order of agreement:
        // relative error below 20 % for every cell, averaging below 12 %.
        let params = StorageModelParams::default();
        let mut rel_errors = Vec::new();
        for c in [1.0, 10.0, 50.0, 100.0] {
            for spec in [MigrationSpec::small_short(), MigrationSpec::large_long()] {
                let model = migration_efficiency(&cap(c, &params), &params, spec);
                let test = measured_migration_efficiency(&cap(c, &params), &params, spec);
                if test > 1e-6 {
                    rel_errors.push((model - test).abs() / test);
                }
            }
        }
        let avg = rel_errors.iter().sum::<f64>() / rel_errors.len() as f64;
        assert!(
            rel_errors.iter().all(|&e| e < 0.25),
            "some cell disagrees by >25 %: {rel_errors:?}"
        );
        assert!(avg < 0.12, "average model error {avg:.3} too high");
    }

    #[test]
    fn reference_preserves_the_winning_capacitor() {
        let params = StorageModelParams::default();
        // 1 F wins the short migration on the reference model too.
        let short: Vec<f64> = [1.0, 10.0, 50.0, 100.0]
            .iter()
            .map(|&c| {
                measured_migration_efficiency(
                    &cap(c, &params),
                    &params,
                    MigrationSpec::small_short(),
                )
            })
            .collect();
        assert!(short[0] > short[1] && short[1] > short[3]);
        // 10 F wins the long migration.
        let long: Vec<f64> = [1.0, 10.0, 50.0, 100.0]
            .iter()
            .map(|&c| {
                measured_migration_efficiency(
                    &cap(c, &params),
                    &params,
                    MigrationSpec::large_long(),
                )
            })
            .collect();
        assert!(long[1] > long[0] && long[1] > long[2] && long[1] > long[3]);
    }

    #[test]
    fn reference_efficiency_in_unit_interval() {
        let params = StorageModelParams::default();
        for c in [1.0, 10.0, 50.0, 100.0] {
            for spec in [MigrationSpec::small_short(), MigrationSpec::large_long()] {
                let eff = measured_migration_efficiency(&cap(c, &params), &params, spec);
                assert!((0.0..=1.0).contains(&eff), "C={c}: {eff}");
            }
        }
    }

    #[test]
    fn esr_only_hurts() {
        let params = StorageModelParams::default();
        let c = cap(10.0, &params);
        let with_esr = measure_migration(
            &c,
            &params,
            MigrationSpec::small_short(),
            ReferenceEffects::default(),
        );
        let without = measure_migration(
            &c,
            &params,
            MigrationSpec::small_short(),
            ReferenceEffects {
                esr_ohm_farad: 0.0,
                ..ReferenceEffects::default()
            },
        );
        assert!(without.efficiency() >= with_esr.efficiency());
    }
}
