//! The distributed capacitor bank managed by the PMU.
//!
//! The node carries `H` supercapacitors of the sizes chosen offline
//! (Section 4.1). At any instant exactly one capacitor is *active* — the
//! store-and-use channel charges into and discharges from it — while all
//! of them leak. The scheduler switches the active capacitor per the
//! Eq. 22 threshold rule.

use helio_common::units::{Farads, Joules, Seconds};
use serde::{Deserialize, Serialize};

use crate::capacitor::{CapState, SuperCap};
use crate::error::StorageError;
use crate::params::StorageModelParams;

/// A bank of `H` distributed supercapacitors with one active at a time.
///
/// # Example
///
/// ```
/// use helio_common::units::{Farads, Joules, Seconds};
/// use helio_storage::{CapacitorBank, StorageModelParams};
///
/// # fn main() -> Result<(), helio_storage::StorageError> {
/// let params = StorageModelParams::default();
/// let mut bank = CapacitorBank::new(
///     &[Farads::new(1.0), Farads::new(10.0), Farads::new(47.0)],
///     &params,
/// )?;
/// bank.set_active(1)?;
/// let absorbed = bank.charge_active(&params, Joules::new(2.0));
/// assert!(absorbed.value() > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CapacitorBank {
    caps: Vec<SuperCap>,
    states: Vec<CapState>,
    active: usize,
}

impl CapacitorBank {
    /// Builds a bank with all capacitors drained to the cut-off voltage;
    /// the first capacitor starts active.
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::SizingInput`] for an empty size list and
    /// propagates capacitor-construction failures.
    pub fn new(sizes: &[Farads], params: &StorageModelParams) -> Result<Self, StorageError> {
        if sizes.is_empty() {
            return Err(StorageError::SizingInput(
                "bank needs at least one capacitor".into(),
            ));
        }
        let caps: Vec<SuperCap> = sizes
            .iter()
            .map(|&c| SuperCap::new(c, params))
            .collect::<Result<_, _>>()?;
        let states = caps.iter().map(|c| c.empty_state()).collect();
        Ok(Self {
            caps,
            states,
            active: 0,
        })
    }

    /// Number of capacitors `H`.
    pub fn len(&self) -> usize {
        self.caps.len()
    }

    /// Whether the bank is empty (never true for a constructed bank).
    pub fn is_empty(&self) -> bool {
        self.caps.is_empty()
    }

    /// Index of the active capacitor.
    pub const fn active_index(&self) -> usize {
        self.active
    }

    /// The active capacitor.
    pub fn active_cap(&self) -> &SuperCap {
        &self.caps[self.active]
    }

    /// State of the active capacitor.
    pub fn active_state(&self) -> &CapState {
        &self.states[self.active]
    }

    /// Selects the active capacitor.
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::CapacitorIndex`] when `index` is out of
    /// range.
    pub fn set_active(&mut self, index: usize) -> Result<(), StorageError> {
        if index >= self.caps.len() {
            return Err(StorageError::CapacitorIndex {
                index,
                len: self.caps.len(),
            });
        }
        self.active = index;
        Ok(())
    }

    /// The capacitor at `index`.
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::CapacitorIndex`] when out of range.
    pub fn cap(&self, index: usize) -> Result<&SuperCap, StorageError> {
        self.caps.get(index).ok_or(StorageError::CapacitorIndex {
            index,
            len: self.caps.len(),
        })
    }

    /// The state at `index`.
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::CapacitorIndex`] when out of range.
    pub fn state(&self, index: usize) -> Result<&CapState, StorageError> {
        self.states.get(index).ok_or(StorageError::CapacitorIndex {
            index,
            len: self.caps.len(),
        })
    }

    /// Iterates over `(capacitor, state)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&SuperCap, &CapState)> {
        self.caps.iter().zip(self.states.iter())
    }

    /// Charges the active capacitor with up to `offered` source-side
    /// joules; returns the energy drawn.
    pub fn charge_active(&mut self, params: &StorageModelParams, offered: Joules) -> Joules {
        self.caps[self.active].charge(&mut self.states[self.active], params, offered)
    }

    /// Discharges the active capacitor to serve up to `demanded` joules;
    /// returns the energy delivered.
    pub fn discharge_active(&mut self, params: &StorageModelParams, demanded: Joules) -> Joules {
        self.caps[self.active].discharge(&mut self.states[self.active], params, demanded)
    }

    /// Applies leakage to every capacitor over `dt`; returns the total
    /// leaked energy.
    pub fn leak_all(&mut self, params: &StorageModelParams, dt: Seconds) -> Joules {
        let mut total = Joules::ZERO;
        for (cap, state) in self.caps.iter().zip(self.states.iter_mut()) {
            total += cap.leak(state, params, dt);
        }
        total
    }

    /// Energy deliverable from the *active* capacitor.
    pub fn active_deliverable(&self, params: &StorageModelParams) -> Joules {
        self.caps[self.active].deliverable(&self.states[self.active], params)
    }

    /// Total energy stored above cut-off across the bank.
    pub fn total_usable(&self) -> Joules {
        self.iter()
            .map(|(cap, state)| state.energy_above_cutoff(cap))
            .sum()
    }

    /// Snapshot of all voltages (the DBN input `V^sc_{i,j,1}(C_h)`).
    pub fn voltages(&self) -> Vec<f64> {
        self.voltages_iter().collect()
    }

    /// [`Bank::voltages`] without the allocation — the per-period DBN
    /// feature gather streams straight into its reused input buffer.
    pub fn voltages_iter(&self) -> impl Iterator<Item = f64> + '_ {
        self.states.iter().map(|s| s.voltage().value())
    }

    /// Applies capacitor aging: multiplies every capacitance by
    /// `factor` (e.g. `0.999` for one step of fade), preserving each
    /// capacitor's stored energy — the terminal voltage rises as
    /// `V' = V·√(C/C')`, clamped to the full-charge voltage.
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::InvalidCapacitance`] when `factor` is
    /// non-positive or non-finite (the bank is left untouched).
    pub fn apply_aging(
        &mut self,
        params: &StorageModelParams,
        factor: f64,
    ) -> Result<(), StorageError> {
        if !(factor > 0.0 && factor.is_finite()) {
            return Err(StorageError::InvalidCapacitance(factor));
        }
        if (factor - 1.0).abs() < 1e-15 {
            return Ok(());
        }
        let mut aged_caps = Vec::with_capacity(self.caps.len());
        let mut aged_states = Vec::with_capacity(self.states.len());
        for (cap, state) in self.caps.iter().zip(self.states.iter()) {
            let new_c = Farads::new(cap.capacitance().value() * factor);
            let aged = SuperCap::new(new_c, params)?;
            let energy = state.stored_energy(cap);
            let v = new_c.voltage_for_energy(energy).min(aged.v_full());
            aged_states.push(aged.state_at(v));
            aged_caps.push(aged);
        }
        self.caps = aged_caps;
        self.states = aged_states;
        Ok(())
    }

    /// Overwrites the state at `index` (used by planners that roll the
    /// bank forward hypothetically and restore).
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::CapacitorIndex`] when out of range.
    pub fn set_state(&mut self, index: usize, state: CapState) -> Result<(), StorageError> {
        if index >= self.states.len() {
            return Err(StorageError::CapacitorIndex {
                index,
                len: self.caps.len(),
            });
        }
        self.states[index] = state;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bank() -> (CapacitorBank, StorageModelParams) {
        let params = StorageModelParams::default();
        let bank = CapacitorBank::new(
            &[Farads::new(1.0), Farads::new(10.0), Farads::new(47.0)],
            &params,
        )
        .unwrap();
        (bank, params)
    }

    #[test]
    fn construction_and_shape() {
        let (bank, _) = bank();
        assert_eq!(bank.len(), 3);
        assert!(!bank.is_empty());
        assert_eq!(bank.active_index(), 0);
        assert_eq!(bank.voltages(), vec![1.0, 1.0, 1.0]);
        assert_eq!(bank.total_usable(), Joules::ZERO);
    }

    #[test]
    fn rejects_empty_bank() {
        let params = StorageModelParams::default();
        assert!(CapacitorBank::new(&[], &params).is_err());
    }

    #[test]
    fn set_active_validates() {
        let (mut bank, _) = bank();
        assert!(bank.set_active(2).is_ok());
        assert_eq!(bank.active_index(), 2);
        assert!(matches!(
            bank.set_active(3),
            Err(StorageError::CapacitorIndex { index: 3, len: 3 })
        ));
    }

    #[test]
    fn charge_goes_to_active_only() {
        let (mut bank, params) = bank();
        bank.set_active(1).unwrap();
        bank.charge_active(&params, Joules::new(5.0));
        assert_eq!(bank.state(0).unwrap().voltage().value(), 1.0);
        assert!(bank.state(1).unwrap().voltage().value() > 1.0);
        assert_eq!(bank.state(2).unwrap().voltage().value(), 1.0);
    }

    #[test]
    fn discharge_returns_energy_charged_minus_losses() {
        let (mut bank, params) = bank();
        bank.set_active(1).unwrap();
        let put = bank.charge_active(&params, Joules::new(5.0));
        let got = bank.discharge_active(&params, Joules::new(100.0));
        assert!(got.value() > 0.0 && got < put);
    }

    #[test]
    fn leak_all_touches_every_cap() {
        let (mut bank, params) = bank();
        // Charge all three by cycling the active index.
        for i in 0..3 {
            bank.set_active(i).unwrap();
            bank.charge_active(&params, Joules::new(5.0));
        }
        let before: Vec<f64> = bank.voltages();
        let leaked = bank.leak_all(&params, Seconds::from_hours(5.0));
        assert!(leaked.value() > 0.0);
        for (b, a) in before.iter().zip(bank.voltages()) {
            assert!(a < *b, "every capacitor must lose voltage");
        }
    }

    #[test]
    fn state_roundtrip_via_set_state() {
        let (mut bank, params) = bank();
        let snapshot = *bank.active_state();
        bank.charge_active(&params, Joules::new(3.0));
        assert_ne!(bank.active_state().voltage(), snapshot.voltage());
        bank.set_state(0, snapshot).unwrap();
        assert_eq!(bank.active_state().voltage(), snapshot.voltage());
        assert!(bank.set_state(9, snapshot).is_err());
    }

    #[test]
    fn aging_preserves_energy_and_shrinks_capacitance() {
        let (mut bank, params) = bank();
        bank.set_active(1).unwrap();
        bank.charge_active(&params, Joules::new(5.0));
        let c_before = bank.cap(1).unwrap().capacitance().value();
        let e_before: Vec<Joules> = bank
            .iter()
            .map(|(cap, state)| state.stored_energy(cap))
            .collect();
        let v_before = bank.state(1).unwrap().voltage();
        bank.apply_aging(&params, 0.9).unwrap();
        let c_after = bank.cap(1).unwrap().capacitance().value();
        assert!((c_after - 0.9 * c_before).abs() < 1e-12);
        for (e0, (cap, state)) in e_before.iter().zip(bank.iter()) {
            assert!((state.stored_energy(cap) - *e0).abs() < Joules::new(1e-9));
        }
        // Same energy on a smaller capacitance → higher voltage.
        assert!(bank.state(1).unwrap().voltage() > v_before);
        // Degenerate factors are rejected without touching the bank.
        assert!(bank.apply_aging(&params, 0.0).is_err());
        assert!(bank.apply_aging(&params, f64::NAN).is_err());
        assert!((bank.cap(1).unwrap().capacitance().value() - c_after).abs() < 1e-12);
    }

    #[test]
    fn out_of_range_accessors_error() {
        let (bank, _) = bank();
        assert!(bank.cap(5).is_err());
        assert!(bank.state(5).is_err());
    }
}
