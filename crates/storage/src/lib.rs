//! # helio-storage
//!
//! Distributed-supercapacitor energy-storage model for the DAC'15
//! reproduction: regulator efficiency curves (Fig. 5), supercapacitor
//! voltage dynamics with leakage and cycle efficiency (Eqs. 1–3, 11),
//! the energy-migration experiment behind Table 2, a fine-grained
//! reference simulator standing in for the paper's hardware
//! measurements, capacitor *sizing* (Eq. 10) and clustering into the
//! `H` distributed sizes, and the capacitor bank managed by the PMU.
//!
//! ## Physical picture
//!
//! Energy migrated into a capacitor pays the input-regulator efficiency
//! `η_chr(V)` and the cycle efficiency `η_cycle(C)`; energy drawn out
//! pays `η_dis(V)·η_cycle(C)`; while stored, the capacitor leaks at a
//! rate that grows with both capacitance and voltage. Small capacitors
//! ride at high voltage (good regulator efficiency, high per-farad
//! leakage, small capacity), large ones sit near the cut-off voltage
//! (poor regulator efficiency, leakage ∝ C). This trade-off creates the
//! size-dependent optimum the paper exploits (Fig. 2, Table 2).
//!
//! ## Example
//!
//! ```
//! use helio_common::units::{Farads, Joules, Seconds};
//! use helio_storage::{MigrationSpec, StorageModelParams, SuperCap};
//!
//! # fn main() -> Result<(), helio_storage::StorageError> {
//! let params = StorageModelParams::default();
//! let spec = MigrationSpec::new(Joules::new(7.0), Seconds::from_minutes(60.0));
//! let small = SuperCap::new(Farads::new(1.0), &params)?;
//! let large = SuperCap::new(Farads::new(100.0), &params)?;
//! let eff_small = helio_storage::migration_efficiency(&small, &params, spec);
//! let eff_large = helio_storage::migration_efficiency(&large, &params, spec);
//! // Small capacitors win at small quantity / short distance (Table 2).
//! assert!(eff_small > eff_large);
//! # Ok(())
//! # }
//! ```

// Library code must degrade through typed `StorageError`s, never
// panic; tests are exempt. CI enforces this via clippy.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::panic))]

pub mod bank;
pub mod capacitor;
pub mod error;
pub mod migration;
pub mod params;
pub mod reference;
pub mod regulator;
pub mod sizing;

pub use bank::CapacitorBank;
pub use capacitor::{CapState, SuperCap};
pub use error::StorageError;
pub use migration::{migration_efficiency, MigrationOutcome, MigrationSpec};
pub use params::StorageModelParams;
pub use regulator::RegulatorCurve;
pub use sizing::{cluster_sizes, optimal_capacitance, SizingOutcome};
