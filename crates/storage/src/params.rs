//! Calibration parameters of the storage model.

use helio_common::units::{Farads, Volts};
use serde::{Deserialize, Serialize};

use crate::error::StorageError;
use crate::regulator::RegulatorCurve;

/// Calibration parameters shared by every supercapacitor in the node.
///
/// Defaults are tuned so that the migration experiment reproduces the
/// qualitative structure of the paper's Table 2 (see
/// `migration::tests`): the best capacitor size moves from 1 F at
/// (7 J, 60 min) to 10 F at (30 J, 400 min), with an efficiency spread of
/// roughly 30 % across sizes.
///
/// Construct with [`StorageModelParams::default`] and customise through
/// the builder-style `with_*` methods:
///
/// ```
/// use helio_storage::StorageModelParams;
///
/// let params = StorageModelParams::default().with_cycle_efficiency(0.95);
/// assert!((params.cycle_efficiency_base - 0.95).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StorageModelParams {
    /// Fully-charged voltage `V_H` shared by all capacitors (V).
    pub v_full: Volts,
    /// Cut-off voltage `V_L` below which the output regulator stops (V).
    pub v_cutoff: Volts,
    /// Input-regulator efficiency fit `η_chr(V)`.
    pub charge_curve: RegulatorCurve,
    /// Output-regulator efficiency fit `η_dis(V)`.
    pub discharge_curve: RegulatorCurve,
    /// Voltage-independent component of the per-farad leakage current
    /// (A/F).
    pub leak_base_per_farad: f64,
    /// Voltage-dependent component of the per-farad leakage current at
    /// `V = v_full` (A/F); scales as `(V / V_H)^leak_exponent`.
    pub leak_scale_per_farad: f64,
    /// Exponent of the voltage dependence of leakage.
    pub leak_exponent: f64,
    /// Cycle efficiency `η_cycle` of a 1 F capacitor; larger capacitances
    /// are marginally better (lower equivalent series resistance per
    /// stored joule): `η_cycle(C) = base + span·(1 − C^-cycle_shape)`.
    pub cycle_efficiency_base: f64,
    /// Additional cycle efficiency reached asymptotically by large
    /// capacitors.
    pub cycle_efficiency_span: f64,
    /// Shape of the capacitance dependence of the cycle efficiency.
    pub cycle_shape: f64,
}

impl Default for StorageModelParams {
    fn default() -> Self {
        Self {
            v_full: Volts::new(5.0),
            v_cutoff: Volts::new(1.0),
            charge_curve: RegulatorCurve::default_charge(),
            discharge_curve: RegulatorCurve::default_discharge(),
            // Calibrated against Table 2: a 1 F capacitor held fully
            // charged leaks ~0.8 mW, draining ~10 J over 400 minutes,
            // while a 100 F capacitor near cut-off leaks ~0.1 mW.
            leak_base_per_farad: 0.8e-6,
            leak_scale_per_farad: 160.0e-6,
            leak_exponent: 4.0,
            cycle_efficiency_base: 0.92,
            cycle_efficiency_span: 0.03,
            cycle_shape: 0.5,
        }
    }
}

impl StorageModelParams {
    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::InvalidParams`] when the voltage window is
    /// empty, any leakage coefficient is negative, or the cycle
    /// efficiency leaves `(0, 1]`.
    pub fn validate(&self) -> Result<(), StorageError> {
        if !(self.v_cutoff.value() >= 0.0 && self.v_cutoff < self.v_full) {
            return Err(StorageError::InvalidParams(format!(
                "voltage window must satisfy 0 <= V_L < V_H (got {} .. {})",
                self.v_cutoff, self.v_full
            )));
        }
        if self.leak_base_per_farad < 0.0
            || self.leak_scale_per_farad < 0.0
            || self.leak_exponent < 0.0
        {
            return Err(StorageError::InvalidParams(
                "leakage coefficients must be nonnegative".into(),
            ));
        }
        let max_cycle = self.cycle_efficiency_base + self.cycle_efficiency_span;
        if !(self.cycle_efficiency_base > 0.0 && max_cycle <= 1.0) {
            return Err(StorageError::InvalidParams(format!(
                "cycle efficiency must lie in (0, 1] (base {} span {})",
                self.cycle_efficiency_base, self.cycle_efficiency_span
            )));
        }
        Ok(())
    }

    /// Leakage current of a capacitor of size `c` at voltage `v` (A),
    /// after Brunelli et al.: grows with capacitance and superlinearly
    /// with voltage.
    pub fn leakage_current(&self, c: Farads, v: Volts) -> f64 {
        let ratio = (v.value() / self.v_full.value()).max(0.0);
        c.value()
            * (self.leak_base_per_farad
                + self.leak_scale_per_farad * ratio.powf(self.leak_exponent))
    }

    /// Leakage power `P_leak(V)` of a capacitor of size `c` at voltage
    /// `v` (W).
    pub fn leakage_power(&self, c: Farads, v: Volts) -> f64 {
        self.leakage_current(c, v) * v.value()
    }

    /// Average cycle efficiency `η_cycle(C)`.
    pub fn cycle_efficiency(&self, c: Farads) -> f64 {
        let base = self.cycle_efficiency_base;
        let span = self.cycle_efficiency_span;
        base + span * (1.0 - c.value().max(1e-6).powf(-self.cycle_shape))
    }

    /// Returns a copy with a different base cycle efficiency.
    #[must_use]
    pub fn with_cycle_efficiency(mut self, base: f64) -> Self {
        self.cycle_efficiency_base = base;
        self
    }

    /// Returns a copy with scaled leakage coefficients (`1.0` keeps the
    /// calibration; `0.0` disables leakage — useful in tests).
    #[must_use]
    pub fn with_leakage_scale(mut self, scale: f64) -> Self {
        self.leak_base_per_farad *= scale;
        self.leak_scale_per_farad *= scale;
        self
    }

    /// Returns a copy with a different voltage window.
    #[must_use]
    pub fn with_voltage_window(mut self, v_cutoff: Volts, v_full: Volts) -> Self {
        self.v_cutoff = v_cutoff;
        self.v_full = v_full;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_params_validate() {
        StorageModelParams::default().validate().unwrap();
    }

    #[test]
    fn rejects_inverted_voltage_window() {
        let p = StorageModelParams::default().with_voltage_window(Volts::new(5.0), Volts::new(1.0));
        assert!(p.validate().is_err());
    }

    #[test]
    fn rejects_bad_cycle_efficiency() {
        let p = StorageModelParams::default().with_cycle_efficiency(0.0);
        assert!(p.validate().is_err());
        let p = StorageModelParams::default().with_cycle_efficiency(0.99);
        assert!(p.validate().is_err(), "base+span exceeds 1");
    }

    #[test]
    fn leakage_grows_with_voltage_and_capacitance() {
        let p = StorageModelParams::default();
        let c1 = Farads::new(1.0);
        let c100 = Farads::new(100.0);
        let low = p.leakage_power(c1, Volts::new(1.5));
        let high = p.leakage_power(c1, Volts::new(4.5));
        assert!(
            high > 5.0 * low,
            "leakage must be strongly superlinear in V"
        );
        assert!(
            p.leakage_power(c100, Volts::new(1.5)) > 50.0 * low,
            "leakage must scale with capacitance"
        );
    }

    #[test]
    fn fully_charged_1f_leaks_fractions_of_milliwatt() {
        let p = StorageModelParams::default();
        let mw = p.leakage_power(Farads::new(1.0), Volts::new(5.0)) * 1e3;
        assert!(mw > 0.2 && mw < 1.0, "got {mw} mW");
    }

    #[test]
    fn cycle_efficiency_improves_with_size_but_bounded() {
        let p = StorageModelParams::default();
        let e1 = p.cycle_efficiency(Farads::new(1.0));
        let e100 = p.cycle_efficiency(Farads::new(100.0));
        assert!(e100 > e1);
        assert!(e100 <= p.cycle_efficiency_base + p.cycle_efficiency_span + 1e-12);
        assert!((e1 - p.cycle_efficiency_base).abs() < 1e-12);
    }

    #[test]
    fn leakage_scale_zero_disables_leakage() {
        let p = StorageModelParams::default().with_leakage_scale(0.0);
        assert_eq!(p.leakage_power(Farads::new(50.0), Volts::new(5.0)), 0.0);
    }
}
