//! Error type for the storage subsystem.

use std::fmt;

/// Errors produced by the storage model.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum StorageError {
    /// A capacitor was constructed with a non-positive or non-finite
    /// capacitance.
    InvalidCapacitance(f64),
    /// Model parameters are inconsistent (e.g. `V_L >= V_H`).
    InvalidParams(String),
    /// A bank operation referenced a capacitor index outside the bank.
    CapacitorIndex {
        /// Requested index.
        index: usize,
        /// Number of capacitors in the bank.
        len: usize,
    },
    /// The sizing routine received an empty or degenerate input.
    SizingInput(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::InvalidCapacitance(c) => {
                write!(f, "capacitance must be positive and finite (got {c} F)")
            }
            StorageError::InvalidParams(msg) => write!(f, "invalid storage parameters: {msg}"),
            StorageError::CapacitorIndex { index, len } => {
                write!(f, "capacitor index {index} out of range for bank of {len}")
            }
            StorageError::SizingInput(msg) => write!(f, "invalid sizing input: {msg}"),
        }
    }
}

impl std::error::Error for StorageError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(StorageError::InvalidCapacitance(-1.0)
            .to_string()
            .contains("-1"));
        let e = StorageError::CapacitorIndex { index: 3, len: 2 };
        assert_eq!(
            e.to_string(),
            "capacitor index 3 out of range for bank of 2"
        );
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<StorageError>();
    }
}
