//! The energy-migration experiment (paper Table 2 and Fig. 2).
//!
//! *Energy migration* moves surplus harvested energy forward in time
//! through a supercapacitor: a *quantity* of energy arrives early and is
//! needed after a *distance* (the holding duration). The migration
//! efficiency is the fraction of the offered energy that reaches the
//! load, after input/output regulator losses, cycle losses, leakage over
//! the holding time, and capacity overflow (a small capacitor simply
//! cannot hold a large quantity).

use helio_common::units::{Joules, Seconds};
use serde::{Deserialize, Serialize};

use crate::capacitor::SuperCap;
use crate::params::StorageModelParams;

/// Specification of a migration experiment: move `quantity` joules across
/// `duration` of wall-clock time.
///
/// The protocol charges at constant power during the first
/// `charge_fraction` of the duration, holds, then discharges everything
/// it can during the final `discharge_fraction`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MigrationSpec {
    /// Energy offered for migration (J).
    pub quantity: Joules,
    /// Migration distance: total duration from arrival to use (s).
    pub duration: Seconds,
    /// Fraction of the duration spent charging (default 0.25).
    pub charge_fraction: f64,
    /// Fraction of the duration spent discharging (default 0.25).
    pub discharge_fraction: f64,
}

impl MigrationSpec {
    /// Creates a spec with the default charge/discharge windows.
    pub fn new(quantity: Joules, duration: Seconds) -> Self {
        Self {
            quantity,
            duration,
            charge_fraction: 0.25,
            discharge_fraction: 0.25,
        }
    }

    /// The paper's first migration pattern: 7 J across 60 minutes.
    pub fn small_short() -> Self {
        Self::new(Joules::new(7.0), Seconds::from_minutes(60.0))
    }

    /// The paper's second migration pattern: 30 J across 400 minutes.
    pub fn large_long() -> Self {
        Self::new(Joules::new(30.0), Seconds::from_minutes(400.0))
    }
}

/// Energy ledger of one migration experiment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MigrationOutcome {
    /// Energy offered at the source side.
    pub offered: Joules,
    /// Energy actually drawn from the source into the capacitor path.
    pub absorbed: Joules,
    /// Energy delivered to the load at the end.
    pub delivered: Joules,
    /// Energy lost to leakage while stored.
    pub leaked: Joules,
    /// Offered energy that never fit into the capacitor (overflow).
    pub overflow: Joules,
}

impl MigrationOutcome {
    /// Migration efficiency: delivered / offered, in `[0, 1]`.
    pub fn efficiency(&self) -> f64 {
        if self.offered.value() <= 0.0 {
            0.0
        } else {
            (self.delivered / self.offered).clamp(0.0, 1.0)
        }
    }
}

/// Runs the migration experiment with the coarse (slot-level) model and
/// returns the full energy ledger.
///
/// The simulation steps at `dt`; the top-level
/// [`migration_efficiency`] convenience uses one-minute steps like the
/// scheduling engine.
pub fn migrate(
    cap: &SuperCap,
    params: &StorageModelParams,
    spec: MigrationSpec,
    dt: Seconds,
) -> MigrationOutcome {
    let total_slots = (spec.duration.value() / dt.value()).round().max(1.0) as usize;
    let charge_slots = ((total_slots as f64) * spec.charge_fraction)
        .round()
        .max(1.0) as usize;
    let discharge_slots = ((total_slots as f64) * spec.discharge_fraction)
        .round()
        .max(1.0) as usize;
    let charge_slots = charge_slots.min(total_slots);
    let discharge_start = total_slots.saturating_sub(discharge_slots);

    let offered_per_slot = spec.quantity / charge_slots as f64;

    let mut state = cap.empty_state();
    let mut absorbed = Joules::ZERO;
    let mut delivered = Joules::ZERO;
    let mut leaked = Joules::ZERO;
    let mut overflow = Joules::ZERO;

    for slot in 0..total_slots {
        // Leakage at beginning-of-slot voltage (Eq. 1).
        leaked += cap.leak(&mut state, params, dt);
        if slot < charge_slots {
            let drawn = cap.charge(&mut state, params, offered_per_slot);
            absorbed += drawn;
            overflow += offered_per_slot - drawn;
        } else if slot >= discharge_start {
            // Demand everything remaining, spread over the window.
            let remaining_slots = (total_slots - slot) as f64;
            let target = cap.deliverable(&state, params) / remaining_slots;
            delivered += cap.discharge(&mut state, &params.clone(), target);
        }
    }
    // Drain whatever is left at the final instant (the load takes it).
    let final_target = cap.deliverable(&state, params);
    delivered += cap.discharge(&mut state, params, final_target);

    MigrationOutcome {
        offered: spec.quantity,
        absorbed,
        delivered,
        leaked,
        overflow,
    }
}

/// Migration efficiency of `cap` for `spec` with one-minute steps — the
/// headline quantity of Table 2.
pub fn migration_efficiency(
    cap: &SuperCap,
    params: &StorageModelParams,
    spec: MigrationSpec,
) -> f64 {
    migrate(cap, params, spec, Seconds::new(60.0)).efficiency()
}

#[cfg(test)]
mod tests {
    use super::*;
    use helio_common::units::Farads;

    fn cap(c: f64, params: &StorageModelParams) -> SuperCap {
        SuperCap::new(Farads::new(c), params).unwrap()
    }

    #[test]
    fn efficiency_is_a_fraction() {
        let params = StorageModelParams::default();
        for c in [1.0, 10.0, 50.0, 100.0] {
            for spec in [MigrationSpec::small_short(), MigrationSpec::large_long()] {
                let eff = migration_efficiency(&cap(c, &params), &params, spec);
                assert!((0.0..=1.0).contains(&eff), "C={c}: eff={eff}");
            }
        }
    }

    #[test]
    fn ledger_balances() {
        let params = StorageModelParams::default();
        let c = cap(10.0, &params);
        let out = migrate(
            &c,
            &params,
            MigrationSpec::small_short(),
            Seconds::new(60.0),
        );
        // offered = absorbed + overflow
        assert!(
            (out.offered - out.absorbed - out.overflow).abs() < Joules::new(1e-6),
            "offered {} != absorbed {} + overflow {}",
            out.offered,
            out.absorbed,
            out.overflow
        );
        // delivered <= absorbed (conversion + leakage losses)
        assert!(out.delivered <= out.absorbed);
    }

    #[test]
    fn table2_small_short_prefers_small_caps() {
        // Paper Table 2, 7 J / 60 min column: 1 F (36.8 %) > 10 F (27.8 %)
        // > 50 F (25.9 %) > 100 F (25.0 %).
        let params = StorageModelParams::default();
        let effs: Vec<f64> = [1.0, 10.0, 50.0, 100.0]
            .iter()
            .map(|&c| migration_efficiency(&cap(c, &params), &params, MigrationSpec::small_short()))
            .collect();
        assert!(
            effs.windows(2).all(|w| w[0] > w[1]),
            "efficiency must fall with size at 7 J/60 min: {effs:?}"
        );
        assert!(effs[0] > 0.25 && effs[0] < 0.55, "1 F eff {}", effs[0]);
    }

    #[test]
    fn table2_large_long_prefers_mid_caps() {
        // Paper Table 2, 30 J / 400 min column: 10 F (40.7 %) best,
        // 1 F worst (8.58 %), 50 F (27.3 %) > 100 F (20.1 %).
        let params = StorageModelParams::default();
        let eff =
            |c: f64| migration_efficiency(&cap(c, &params), &params, MigrationSpec::large_long());
        let (e1, e10, e50, e100) = (eff(1.0), eff(10.0), eff(50.0), eff(100.0));
        assert!(
            e10 > e1 && e10 > e50 && e10 > e100,
            "10 F must win at 30 J/400 min: 1F={e1:.3} 10F={e10:.3} 50F={e50:.3} 100F={e100:.3}"
        );
        assert!(
            e1 < e100,
            "1 F must be worst (overflow + leak): 1F={e1:.3} 100F={e100:.3}"
        );
        assert!(e50 > e100, "50 F must beat 100 F: {e50:.3} vs {e100:.3}");
    }

    #[test]
    fn efficiency_spread_is_large() {
        // The paper reports up to a 30.5 % spread across sizes; require a
        // substantial spread so sizing actually matters.
        let params = StorageModelParams::default();
        let eff =
            |c: f64| migration_efficiency(&cap(c, &params), &params, MigrationSpec::large_long());
        let effs = [eff(1.0), eff(10.0), eff(50.0), eff(100.0)];
        let max = effs.iter().cloned().fold(f64::MIN, f64::max);
        let min = effs.iter().cloned().fold(f64::MAX, f64::min);
        assert!(
            max - min > 0.2,
            "spread {:.3} too small: {effs:?}",
            max - min
        );
    }

    #[test]
    fn overflow_dominates_small_cap_large_quantity() {
        let params = StorageModelParams::default();
        let c = cap(1.0, &params);
        let out = migrate(&c, &params, MigrationSpec::large_long(), Seconds::new(60.0));
        assert!(
            out.overflow.value() > 10.0,
            "1 F cannot hold 30 J; overflow was {}",
            out.overflow
        );
    }

    #[test]
    fn longer_distance_leaks_more() {
        let params = StorageModelParams::default();
        let c = cap(1.0, &params);
        let short = migrate(
            &c,
            &params,
            MigrationSpec::new(Joules::new(7.0), Seconds::from_minutes(60.0)),
            Seconds::new(60.0),
        );
        let long = migrate(
            &c,
            &params,
            MigrationSpec::new(Joules::new(7.0), Seconds::from_minutes(400.0)),
            Seconds::new(60.0),
        );
        assert!(long.leaked > short.leaked);
        assert!(long.efficiency() < short.efficiency());
    }

    #[test]
    fn zero_quantity_yields_zero_efficiency() {
        let params = StorageModelParams::default();
        let c = cap(10.0, &params);
        let out = migrate(
            &c,
            &params,
            MigrationSpec::new(Joules::ZERO, Seconds::from_minutes(60.0)),
            Seconds::new(60.0),
        );
        assert_eq!(out.efficiency(), 0.0);
    }

    #[test]
    fn finer_steps_converge() {
        let params = StorageModelParams::default();
        let c = cap(10.0, &params);
        let coarse = migrate(&c, &params, MigrationSpec::large_long(), Seconds::new(60.0));
        let fine = migrate(&c, &params, MigrationSpec::large_long(), Seconds::new(10.0));
        assert!(
            (coarse.efficiency() - fine.efficiency()).abs() < 0.05,
            "step-size sensitivity too high: {} vs {}",
            coarse.efficiency(),
            fine.efficiency()
        );
    }
}
