//! Calibration probe: prints the full migration-energy ledger for the
//! Table 2 grid (capacitor sizes x migration patterns). Useful when
//! re-tuning `StorageModelParams` -- run it after any change to the
//! regulator fits or leakage coefficients and compare the orderings
//! against the paper's Table 2.
//!
//! ```text
//! cargo run -p helio-storage --example probe
//! ```

use helio_common::units::{Farads, Seconds};
use helio_storage::migration::migrate;
use helio_storage::*;
fn main() {
    let params = StorageModelParams::default();
    for spec in [MigrationSpec::small_short(), MigrationSpec::large_long()] {
        println!(
            "--- {} J over {} min",
            spec.quantity.value(),
            spec.duration.minutes()
        );
        for c in [1.0, 10.0, 50.0, 100.0] {
            let cap = SuperCap::new(Farads::new(c), &params).unwrap();
            let o = migrate(&cap, &params, spec, Seconds::new(60.0));
            println!(
                "C={c:>5} eff={:.3} absorbed={:.2} delivered={:.2} leaked={:.2} overflow={:.2}",
                o.efficiency(),
                o.absorbed.value(),
                o.delivered.value(),
                o.leaked.value(),
                o.overflow.value()
            );
        }
    }
}
