//! Node configuration: the time grid, the capacitor bank sizes, and
//! the physical calibration of storage and PMU.

use helio_common::time::TimeGrid;
use helio_common::units::Farads;
use helio_nvp::{Pmu, PmuParams};
use helio_storage::StorageModelParams;

use crate::error::CoreError;

/// Everything fixed at node design time.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeConfig {
    /// The scheduling time grid.
    pub grid: TimeGrid,
    /// Distributed supercapacitor sizes (`C_h`, ascending order
    /// recommended but not required).
    pub capacitors: Vec<Farads>,
    /// Storage calibration.
    pub storage: StorageModelParams,
    /// PMU calibration.
    pub pmu: Pmu,
}

impl NodeConfig {
    /// Starts a builder over a grid.
    pub fn builder(grid: TimeGrid) -> NodeConfigBuilder {
        NodeConfigBuilder {
            grid,
            capacitors: vec![Farads::new(10.0)],
            storage: StorageModelParams::default(),
            pmu_params: PmuParams::default(),
        }
    }

    /// Number of capacitors `H`.
    pub fn capacitor_count(&self) -> usize {
        self.capacitors.len()
    }
}

/// Builder for [`NodeConfig`].
#[derive(Debug, Clone)]
pub struct NodeConfigBuilder {
    grid: TimeGrid,
    capacitors: Vec<Farads>,
    storage: StorageModelParams,
    pmu_params: PmuParams,
}

impl NodeConfigBuilder {
    /// Sets the capacitor sizes (default: a single 10 F capacitor).
    #[must_use]
    pub fn capacitors(mut self, sizes: &[Farads]) -> Self {
        self.capacitors = sizes.to_vec();
        self
    }

    /// Sets the storage calibration.
    #[must_use]
    pub fn storage(mut self, storage: StorageModelParams) -> Self {
        self.storage = storage;
        self
    }

    /// Sets the PMU parameters.
    #[must_use]
    pub fn pmu(mut self, params: PmuParams) -> Self {
        self.pmu_params = params;
        self
    }

    /// Validates and builds the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Config`] for an empty capacitor list,
    /// non-positive capacitances, invalid storage parameters, or a
    /// direct-channel efficiency outside `(0, 1]`.
    pub fn build(self) -> Result<NodeConfig, CoreError> {
        if self.capacitors.is_empty() {
            return Err(CoreError::Config(
                "at least one supercapacitor is required".into(),
            ));
        }
        if self
            .capacitors
            .iter()
            .any(|c| c.value() <= 0.0 || !c.is_finite())
        {
            return Err(CoreError::Config("capacitances must be positive".into()));
        }
        self.storage
            .validate()
            .map_err(|e| CoreError::Config(e.to_string()))?;
        let pmu = Pmu::try_new(self.pmu_params).map_err(CoreError::Config)?;
        Ok(NodeConfig {
            grid: self.grid,
            capacitors: self.capacitors,
            storage: self.storage,
            pmu,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use helio_common::units::Seconds;

    fn grid() -> TimeGrid {
        TimeGrid::new(1, 24, 10, Seconds::new(60.0)).unwrap()
    }

    #[test]
    fn builder_defaults_are_valid() {
        let cfg = NodeConfig::builder(grid()).build().unwrap();
        assert_eq!(cfg.capacitor_count(), 1);
    }

    #[test]
    fn builder_rejects_empty_bank() {
        assert!(matches!(
            NodeConfig::builder(grid()).capacitors(&[]).build(),
            Err(CoreError::Config(_))
        ));
    }

    #[test]
    fn builder_rejects_bad_capacitance() {
        assert!(NodeConfig::builder(grid())
            .capacitors(&[Farads::new(0.0)])
            .build()
            .is_err());
    }

    #[test]
    fn builder_rejects_bad_pmu_efficiency() {
        for eta in [0.0, -1.0, 1.5, f64::NAN] {
            assert!(
                matches!(
                    NodeConfig::builder(grid())
                        .pmu(helio_nvp::PmuParams {
                            direct_efficiency: eta,
                        })
                        .build(),
                    Err(CoreError::Config(_))
                ),
                "efficiency {eta} must be rejected as a config error"
            );
        }
    }

    #[test]
    fn builder_accepts_custom_everything() {
        let cfg = NodeConfig::builder(grid())
            .capacitors(&[Farads::new(1.0), Farads::new(47.0)])
            .storage(StorageModelParams::default().with_cycle_efficiency(0.9))
            .pmu(helio_nvp::PmuParams {
                direct_efficiency: 0.9,
            })
            .build()
            .unwrap();
        assert_eq!(cfg.capacitor_count(), 2);
        assert!((cfg.pmu.params().direct_efficiency - 0.9).abs() < 1e-12);
    }
}
