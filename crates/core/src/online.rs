//! The proposed online planner (paper Section 5).
//!
//! Two interchangeable backends produce the coarse per-period decision:
//!
//! * **DBN** — the paper's headline design: the deep belief network
//!   trained offline on optimal samples maps (previous-period solar,
//!   capacitor voltages, accumulated DMR) to (capacitor, α, task
//!   bits). Inference costs microjoules on the node.
//! * **MPC** — a model-predictive variant that reruns the long-term DP
//!   each day on *forecast* solar over a configurable horizon. It is
//!   the knob behind the prediction-length experiment (Fig. 10a).
//!
//! Both backends pass through the Eq. 22 capacitor-switch rule (don't
//! abandon a charged capacitor) and the `δ` pattern-selection
//! threshold of Section 5.2.

use std::sync::Arc;

use helio_ann::{
    AnnError, CompiledDbn, CompiledScratch, CompiledTier, Dbn, DistilledPolicy, Layer0Fold,
    PredictScratch,
};
use helio_common::units::Joules;
use helio_common::TaskSet;
use helio_faults::DbnFaultMode;
use helio_solar::SolarPredictor;
use helio_storage::SuperCap;
use helio_tasks::TaskId;
use serde::{Deserialize, Serialize};

use crate::batch::PlanContext;
use crate::checkpoint::{DistilledState, MpcCacheState, PlannerCheckpoint, ProposedCheckpoint};
use crate::longterm::{optimize_horizon, DpConfig, PeriodPlan};
use crate::optimal::OptimalPlanner;
use crate::planner::{PeriodPlanner, PlanDecision, PlannerHealth, PlannerObservation};
use crate::subsets::dmr_level_subsets;

/// The Eq. 22 capacitor-switch rule: switch to the suggested capacitor
/// only when the one in use has less than `threshold` usable energy —
/// migrating a charged capacitor's energy away is wasteful.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SwitchRule {
    /// The threshold energy `E_th`.
    pub threshold: Joules,
}

impl Default for SwitchRule {
    fn default() -> Self {
        Self {
            threshold: Joules::new(2.0),
        }
    }
}

impl SwitchRule {
    /// Applies Eq. 22: returns the capacitor the PMU should activate.
    #[inline]
    pub fn decide(&self, obs: &PlannerObservation<'_>, suggested: usize) -> Option<usize> {
        let active = obs.bank.active_index();
        if suggested == active {
            return Some(active);
        }
        let cap = obs.bank.cap(active).expect("active index valid");
        let state = obs.bank.state(active).expect("active index valid");
        if state.energy_above_cutoff(cap) < self.threshold {
            Some(suggested)
        } else {
            None // keep the charged capacitor
        }
    }
}

enum Backend {
    Dbn {
        /// The trained network, behind an `Arc` so a batch of
        /// scenarios can share one copy (and the batch engine can
        /// group scenarios by pointer identity).
        dbn: Arc<Dbn>,
        /// Inference scratch + output buffer, reused across periods.
        scratch: PredictScratch,
        out_buf: Vec<f64>,
    },
    Compiled {
        /// The compiled artifact (packed f32/int8 weights with the
        /// scaler affine baked in), behind an `Arc` so a fleet can
        /// compile once per trained network and share it.
        compiled: Arc<CompiledDbn>,
        /// Ping-pong activation scratch + output buffer, reused
        /// across periods.
        scratch: CompiledScratch,
        out_buf: Vec<f64>,
        /// Per-period layer-0 partial sums over the run-constant
        /// prefix (previous-period slot powers), keyed by flat period
        /// index. Built lazily on the *second* forward of a period:
        /// the common once-per-period plan takes the fused full
        /// forward (folding would duplicate the prefix work), while
        /// re-planned decisions within one period (crash-resume
        /// replays, recovery re-decisions) skip the constant half of
        /// layer 0. Boxed — the fold's partial accumulators would
        /// otherwise dominate every backend variant's footprint.
        fold: Option<(usize, Option<Box<Layer0Fold>>)>,
    },
    Distilled {
        /// The distilled branch-free decision artifact, behind an
        /// `Arc` so a fleet loads it once and shares it.
        policy: Arc<DistilledPolicy>,
        /// The compiled network the artifact was distilled from — the
        /// next tier of the decision chain, serving whenever the
        /// artifact is unavailable or violates its contract
        /// (distilled → compiled → the resilient wrapper's inter-task
        /// baseline).
        fallback: Arc<CompiledDbn>,
        /// Fallback forward scratch + shared output buffer.
        scratch: CompiledScratch,
        out_buf: Vec<f64>,
        /// Per-period distilled state, indexed by flat period index:
        /// the constant-level tree cursor and the folded per-leaf
        /// partial sums. Entries persist for the whole run — the
        /// constant feature prefix is the previous period's trace
        /// powers, run constants by the same contract the decide
        /// cache's harvest table relies on — so any revisited period
        /// (re-decisions, crash-resume replays, repeated sweeps)
        /// resumes from its warm fold.
        folds: Vec<PeriodFoldState>,
        /// Latched when the artifact errors or the engine reports a
        /// contract violation: the compiled fallback serves for the
        /// rest of the run.
        demoted: bool,
        /// Periods served by the compiled fallback tier.
        tier_fallbacks: u64,
    },
    Mpc {
        predictor: Box<dyn SolarPredictor + Send>,
        horizon_periods: usize,
        dp: DpConfig,
        cache: Option<MpcCache>,
        /// Forecast scratch reused across replans: per-period predicted
        /// energies and the per-slot spread the DP consumes.
        forecast_buf: Vec<Joules>,
        solar_buf: Vec<Vec<Joules>>,
        /// The DMR-level subset table, built on first use; the graph
        /// and `keep_per_level` never change within a run, so the
        /// table is identical for every replan.
        subsets: Option<Vec<TaskSet>>,
    },
}

struct MpcCache {
    day: usize,
    capacitor: usize,
    base_flat: usize,
    plans: Vec<PeriodPlan>,
}

/// Per-period state of the distilled backend (see
/// [`Backend::Distilled`]): the prewalk cursor over the constant tree
/// levels and the fold buffer of per-leaf partial sums, both
/// functions of the run-constant feature prefix only. A period's
/// first decision leaves a [`PeriodFoldState::SeenOnce`] marker — the
/// once-per-period common case never pays for a fold it would use
/// exactly once — and the second decision builds the fold that every
/// later visit resumes from.
#[derive(Default, Clone)]
enum PeriodFoldState {
    #[default]
    Unseen,
    SeenOnce,
    Ready { cursor: u32, folded: Box<[f32]> },
}

/// Runs the distilled per-decision fast path. The first decision of a
/// period takes the flat `predict_into` walk (bit-identical to the
/// split path, and strictly cheaper when the period sees exactly one
/// decision); a second decision under the same flat index builds the
/// prewalk + fold state once and every further decision — however
/// much later in the run — resumes from it. Free function so the
/// backend match arm can borrow the planner's input buffer alongside
/// the backend fields.
fn distilled_forward(
    policy: &DistilledPolicy,
    folds: &mut Vec<PeriodFoldState>,
    flat: usize,
    input: &[f64],
    out: &mut Vec<f64>,
) -> Result<(), AnnError> {
    if folds.len() <= flat {
        folds.resize(flat + 1, PeriodFoldState::Unseen);
    }
    let state = &mut folds[flat];
    match state {
        PeriodFoldState::Ready { cursor, folded } => {
            policy.predict_folded(*cursor, folded, input, out)
        }
        PeriodFoldState::SeenOnce => {
            let cursor = policy.prewalk(input)?;
            let mut folded = Vec::new();
            policy.fold(cursor, input, &mut folded)?;
            let out_res = policy.predict_folded(cursor, &folded, input, out);
            *state = PeriodFoldState::Ready {
                cursor,
                folded: folded.into_boxed_slice(),
            };
            out_res
        }
        PeriodFoldState::Unseen => {
            *state = PeriodFoldState::SeenOnce;
            policy.predict_into(input, out)
        }
    }
}

/// The proposed long-term deadline-aware online planner.
pub struct ProposedPlanner {
    backend: Backend,
    switch: SwitchRule,
    delta: f64,
    complexity: u64,
    /// DBN input scratch, reused across periods.
    input_buf: Vec<f64>,
    /// Inference fault injected for the upcoming period, if any.
    injected: Option<DbnFaultMode>,
    /// Health of the most recent plan.
    health: PlannerHealth,
    /// Shared cross-scenario precomputation, when driven by a
    /// [`BatchEngine`](crate::batch::BatchEngine).
    ctx: Option<Arc<PlanContext>>,
    /// Run-constant tables for the per-period decision, computed on
    /// first use. Like the MPC subset table, this relies on the graph
    /// and trace never changing within a run — re-deriving the
    /// dependency closure and period energies every period dominated
    /// the decision latency.
    decide_cache: Option<DbnDecideCache>,
}

/// Run-constant decision tables (see [`ProposedPlanner::decide_cache`]).
struct DbnDecideCache {
    /// Per-task ancestor closure: `{task} ∪ transitive predecessors`.
    /// Unioning these over the admitted bits equals the reference
    /// reverse-topological walk — each walk step only ever adds direct
    /// predecessors of tasks already admitted, so the closed set is
    /// exactly the union of the admitted tasks' ancestor cones.
    closure: Vec<TaskSet>,
    /// `trace.period_energy(p)` per flat period index.
    harvest: Vec<Joules>,
    /// `graph.total_energy()`.
    full_load: Joules,
}

impl ProposedPlanner {
    /// Creates the DBN-backed planner (the paper's deployed design).
    pub fn from_dbn(dbn: Dbn, delta: f64, switch: SwitchRule) -> Self {
        Self::from_shared_dbn(Arc::new(dbn), delta, switch)
    }

    /// [`ProposedPlanner::from_dbn`] on an already-shared network:
    /// every scenario in a batch clones the `Arc` instead of the
    /// weights, and the batch engine groups planners whose `Arc`s
    /// point at the same network into one batched forward.
    pub fn from_shared_dbn(dbn: Arc<Dbn>, delta: f64, switch: SwitchRule) -> Self {
        Self {
            backend: Backend::Dbn {
                dbn,
                scratch: PredictScratch::default(),
                out_buf: Vec::new(),
            },
            switch,
            delta,
            complexity: 0,
            input_buf: Vec::new(),
            injected: None,
            health: PlannerHealth::Healthy,
            ctx: None,
            decide_cache: None,
        }
    }

    /// [`ProposedPlanner::from_shared_dbn`] on an already-compiled
    /// network: the hot path runs the packed single-sample forward
    /// instead of the f64 reference. Decisions are covered by the
    /// compiled tolerance contract (see `helio_ann::compiled`), not
    /// bit-identity with the `proposed-dbn` planner.
    pub fn from_compiled_dbn(compiled: Arc<CompiledDbn>, delta: f64, switch: SwitchRule) -> Self {
        Self {
            backend: Backend::Compiled {
                scratch: compiled.make_scratch(),
                out_buf: Vec::with_capacity(compiled.output_dim()),
                compiled,
                fold: None,
            },
            switch,
            delta,
            complexity: 0,
            input_buf: Vec::new(),
            injected: None,
            health: PlannerHealth::Healthy,
            ctx: None,
            decide_cache: None,
        }
    }

    /// Compiles `dbn` at `tier` and builds the planner around the
    /// artifact in one step (the sequential-engine convenience;
    /// batches and fleets should compile once and use
    /// [`ProposedPlanner::from_compiled_dbn`] to share the `Arc`).
    ///
    /// # Errors
    ///
    /// Returns the compile error when the network holds non-finite
    /// weights.
    pub fn compile_dbn(
        dbn: &Dbn,
        tier: CompiledTier,
        delta: f64,
        switch: SwitchRule,
    ) -> Result<Self, helio_ann::AnnError> {
        let compiled = Arc::new(CompiledDbn::compile(dbn, tier)?);
        Ok(Self::from_compiled_dbn(compiled, delta, switch))
    }

    /// Builds the planner around a distilled decision artifact with a
    /// compiled network as the next tier down: the artifact serves the
    /// per-decision hot path; the compiled forward takes over when the
    /// artifact is unavailable or violates its contract (and the
    /// resilient wrapper's inter-task baseline sits below that).
    /// Decisions are covered by the artifact's recorded agreement rate
    /// against its teacher, not bit-identity with `proposed-dbn`.
    pub fn from_distilled(
        policy: Arc<DistilledPolicy>,
        fallback: Arc<CompiledDbn>,
        delta: f64,
        switch: SwitchRule,
    ) -> Self {
        Self {
            backend: Backend::Distilled {
                scratch: fallback.make_scratch(),
                out_buf: Vec::with_capacity(policy.output_dim()),
                policy,
                fallback,
                folds: Vec::new(),
                demoted: false,
                tier_fallbacks: 0,
            },
            switch,
            delta,
            complexity: 0,
            input_buf: Vec::new(),
            injected: None,
            health: PlannerHealth::Healthy,
            ctx: None,
            decide_cache: None,
        }
    }

    /// Creates the MPC-backed planner: re-plan each day over
    /// `horizon_periods` of forecast solar.
    pub fn mpc(
        predictor: Box<dyn SolarPredictor + Send>,
        horizon_periods: usize,
        dp: DpConfig,
        delta: f64,
        switch: SwitchRule,
    ) -> Self {
        Self {
            backend: Backend::Mpc {
                predictor,
                horizon_periods: horizon_periods.max(1),
                dp,
                cache: None,
                forecast_buf: Vec::new(),
                solar_buf: Vec::new(),
                subsets: None,
            },
            switch,
            delta,
            complexity: 0,
            input_buf: Vec::new(),
            injected: None,
            health: PlannerHealth::Healthy,
            ctx: None,
            decide_cache: None,
        }
    }

    /// The `δ` threshold in use.
    pub fn delta(&self) -> f64 {
        self.delta
    }

    fn plan_mpc(&mut self, obs: &PlannerObservation<'_>) -> (usize, PeriodPlan) {
        let grid = obs.grid;
        let flat = grid.period_index(obs.period);
        let (predictor, horizon_periods, dp, cache, forecast_buf, solar_buf, subset_cache) =
            match &mut self.backend {
                Backend::Mpc {
                    predictor,
                    horizon_periods,
                    dp,
                    cache,
                    forecast_buf,
                    solar_buf,
                    subsets,
                } => (
                    predictor,
                    *horizon_periods,
                    *dp,
                    cache,
                    forecast_buf,
                    solar_buf,
                    subsets,
                ),
                Backend::Dbn { .. } | Backend::Compiled { .. } | Backend::Distilled { .. } => {
                    unreachable!("plan_mpc called on DBN backend")
                }
            };

        let needs_replan = match cache {
            Some(c) => c.day != obs.period.day || flat < c.base_flat,
            None => true,
        };
        if needs_replan {
            // Forecast per-period energies over the horizon and spread
            // each evenly over its slots (the DP only needs period
            // granularity; intra-period shape comes from the real slots
            // at execution time). Both buffers are refilled in place, so
            // replans after the first allocate nothing here.
            let slots = grid.slots_per_period();
            predictor.forecast_into(obs.trace, obs.period, horizon_periods, forecast_buf);
            solar_buf.resize_with(forecast_buf.len(), || Vec::with_capacity(slots));
            for (row, &e) in solar_buf.iter_mut().zip(forecast_buf.iter()) {
                row.clear();
                row.resize(slots, e / slots as f64);
            }
            let solar = &*solar_buf;
            let subsets = &*subset_cache
                .get_or_insert_with(|| dmr_level_subsets(obs.graph, dp.keep_per_level));

            let mut best: Option<(usize, crate::longterm::DpResult)> = None;
            for h in 0..obs.bank.len() {
                let size = obs.bank.cap(h).expect("h in range").capacitance();
                let cap = SuperCap::new(size, obs.storage).expect("validated params");
                let v0 = obs.bank.state(h).expect("h in range").voltage();
                let r = optimize_horizon(
                    obs.graph,
                    subsets,
                    solar,
                    grid.slot_duration(),
                    &cap,
                    cap.state_at(v0),
                    obs.storage,
                    obs.pmu,
                    &dp,
                );
                self.complexity += r.complexity;
                let better = match &best {
                    None => true,
                    Some((_, br)) => {
                        (r.total_misses, -r.final_voltage.value())
                            < (br.total_misses, -br.final_voltage.value())
                    }
                };
                if better {
                    best = Some((h, r));
                }
            }
            let (h, r) = best.expect("bank is nonempty");
            *cache = Some(MpcCache {
                day: obs.period.day,
                capacitor: h,
                base_flat: flat,
                plans: r.plans,
            });
        }

        let c = cache.as_ref().expect("just planned");
        let idx = flat - c.base_flat;
        let plan = c.plans.get(idx).copied().unwrap_or(PeriodPlan {
            subset: obs.graph.all_tasks(),
            alpha: 1.0,
            expected_misses: 0,
            cap_energy: Joules::ZERO,
        });
        (c.capacitor, plan)
    }

    /// Builds the DBN feature vector (previous-period solar powers,
    /// capacitor voltages, accumulated DMR — Fig. 6's inputs) into
    /// `input`, cleared first. Shared by the sequential path and the
    /// batch engine's gather phase, so the two are identical by
    /// construction.
    #[inline(always)]
    fn gather_dbn_input(obs: &PlannerObservation<'_>, input: &mut Vec<f64>) {
        let grid = obs.grid;
        let flat = grid.period_index(obs.period);
        let spp = grid.slots_per_period();
        let dim = spp + obs.bank.len() + 1;
        // Size once, then write through slices: this runs every
        // period, so steady state must be straight stores — no
        // allocation, no per-element capacity checks or `Vec` length
        // bookkeeping, no re-deriving each slot's flat index.
        if input.len() != dim {
            input.clear();
            input.resize(dim, 0.0);
        }
        let (powers, rest) = input.split_at_mut(spp);
        if flat == 0 {
            powers.fill(0.0);
        } else {
            // Slot powers straight from the trace's raw watt slice;
            // the `* 1e3` matches `Watts::milliwatts` bit for bit.
            let prev = grid.period_at(flat - 1);
            for (d, &w) in powers.iter_mut().zip(obs.trace.period_powers_raw(prev)) {
                *d = w * 1e3;
            }
        }
        let (volts, dmr) = rest.split_at_mut(obs.bank.len());
        for (d, v) in volts.iter_mut().zip(obs.bank.voltages_iter()) {
            *d = v;
        }
        dmr[0] = obs.accumulated_dmr;
    }

    /// Turns the network output already sitting in `out_buf` into the
    /// period decision: Nan fault injection, decision-head parsing,
    /// dependency closure and the abundant-solar override. Everything
    /// in [`ProposedPlanner::plan_dbn`] after the inference call lives
    /// here, so the batched path reuses it verbatim.
    /// Builds the run-constant decision tables: each task's ancestor
    /// cone (so closing under dependencies is a mask union per
    /// admitted task, not a graph walk — the DBN's bits are
    /// independent sigmoids, and an admitted task drags in its
    /// predecessors), the per-period harvest, and the full task-set
    /// load. A batch-attached context supplies the topological order
    /// this build consumes.
    #[inline(never)]
    fn build_decide_cache(ctx: Option<&PlanContext>, obs: &PlannerObservation<'_>) -> DbnDecideCache {
        let owned;
        let topo: &[TaskId] = if let Some(ctx) = ctx {
            &ctx.topo
        } else {
            owned = obs
                .graph
                .topological_order()
                .expect("validated graphs are acyclic");
            &owned
        };
        // Forward-topological pass: every predecessor's cone is
        // finished before its successors union it in.
        let mut closure = vec![TaskSet::EMPTY; obs.graph.len()];
        for &id in topo {
            let mut cone = TaskSet::EMPTY.with(id.index());
            for p in obs.graph.predecessor_set(id).iter() {
                cone = cone.union(closure[p]);
            }
            closure[id.index()] = cone;
        }
        DbnDecideCache {
            closure,
            harvest: obs
                .grid
                .periods()
                .map(|p| obs.trace.period_energy(p))
                .collect(),
            full_load: obs.graph.total_energy(),
        }
    }

    #[inline(always)]
    fn decide_dbn(&mut self, obs: &PlannerObservation<'_>) -> (usize, f64, TaskSet) {
        if self.injected == Some(DbnFaultMode::Nan) {
            // Bit-flipped weights / numerical blow-up: the inference
            // completes but every output is garbage.
            if let Backend::Dbn { out_buf, .. }
            | Backend::Compiled { out_buf, .. }
            | Backend::Distilled { out_buf, .. } = &mut self.backend
            {
                out_buf.iter_mut().for_each(|o| *o = f64::NAN);
            }
        }
        // Run-constant decision tables, built once (out of line — the
        // build machinery would otherwise keep this whole body from
        // inlining into the per-period caller).
        if self.decide_cache.is_none() {
            self.decide_cache = Some(Self::build_decide_cache(self.ctx.as_deref(), obs));
        }
        let cache = self.decide_cache.as_ref().expect("just built");
        let heads = {
            let out: &[f64] = match &self.backend {
                Backend::Dbn { out_buf, .. }
                | Backend::Compiled { out_buf, .. }
                | Backend::Distilled { out_buf, .. } => out_buf,
                Backend::Mpc { .. } => unreachable!("decide_dbn called on MPC backend"),
            };
            let head_cap = out.first().copied().unwrap_or(f64::NAN);
            let head_alpha = out.get(1).copied().unwrap_or(f64::NAN);
            if head_cap.is_finite() && head_alpha.is_finite() {
                // Branchless fused parse-and-close: the per-task
                // comparisons are data-dependent coin flips (one
                // mispredict costs more than this whole loop), and
                // unioning each admitted task's ancestor cone directly
                // closes the set in the same pass. Zipping against the
                // cone table (len = graph.len()) also bounds the walk.
                let mut allowed = TaskSet::EMPTY;
                for (&b, &cone) in out[2..].iter().zip(cache.closure.iter()) {
                    allowed = allowed.union(cone.select_if(b >= 0.5));
                }
                Some((head_cap, head_alpha, allowed))
            } else {
                None
            }
        };
        let Some((head_cap, head_alpha, allowed)) = heads else {
            // Non-finite decision head — never act on it.
            self.health = PlannerHealth::NonFinite;
            return (obs.bank.active_index(), 1.0, obs.graph.all_tasks());
        };
        self.health = PlannerHealth::Healthy;
        let h_max = obs.bank.len().saturating_sub(1) as f64;
        let cap = head_cap.clamp(0.0, h_max).round() as usize;
        let alpha = head_alpha.clamp(0.0, 10.0);
        // Abundant-solar override (the Section 5.2 selection method's
        // "α too small" regime): when the most recent period's harvest
        // alone can power the whole task set through the direct
        // channel, committing to everything is dominant — it costs no
        // stored energy and completes every deadline.
        let flat = obs.grid.period_index(obs.period);
        if flat > 0 {
            let last_harvest = cache.harvest[flat - 1];
            let eta = obs.pmu.params().direct_efficiency;
            let full_load = cache.full_load;
            if last_harvest * eta * 0.85 >= full_load {
                let alpha = full_load / (last_harvest * eta);
                return (cap, alpha, obs.graph.all_tasks());
            }
        }
        (cap, alpha, allowed)
    }

    fn plan_dbn(&mut self, obs: &PlannerObservation<'_>) -> (usize, f64, TaskSet) {
        // An injected "primary inference artifact down" fault: the
        // distilled backend steps one tier down to its compiled
        // fallback (unless that tier is already serving), every other
        // backend degrades to the conservative run-everything decision
        // on the current capacitor.
        let unavailable = self.injected == Some(DbnFaultMode::Unavailable);
        if unavailable && !matches!(&self.backend, Backend::Distilled { demoted: false, .. }) {
            self.health = PlannerHealth::DbnUnavailable;
            return (obs.bank.active_index(), 1.0, obs.graph.all_tasks());
        }
        Self::gather_dbn_input(obs, &mut self.input_buf);
        let flat = obs.grid.period_index(obs.period);
        // One DBN inference ≈ one state expansion worth of work.
        self.complexity += 1;
        let input = &self.input_buf;
        let predict_failed = match &mut self.backend {
            Backend::Dbn {
                dbn,
                scratch,
                out_buf,
            } => dbn.predict_into(input, scratch, out_buf).is_err(),
            Backend::Compiled {
                compiled,
                scratch,
                out_buf,
                fold,
            } => {
                // The first forward of a period runs the fused full
                // pass; a re-decision under the same flat index folds
                // the run-constant feature prefix (previous period's
                // slot powers) once and resumes from the partial sums.
                // `fold_prefix` declining (non-resident SIMD shapes)
                // or erroring routes through the plain forward.
                match fold {
                    Some((f, l)) if *f == flat => {
                        if l.is_none() {
                            let prefix = obs.grid.slots_per_period().min(compiled.input_dim());
                            *l = compiled.fold_prefix(input, prefix).ok().flatten().map(Box::new);
                        }
                        match l {
                            Some(l) => compiled.forward_from_fold(l, input, scratch, out_buf),
                            None => compiled.forward_into(input, scratch, out_buf),
                        }
                    }
                    _ => {
                        *fold = Some((flat, None));
                        compiled.forward_into(input, scratch, out_buf)
                    }
                }
                .is_err()
            }
            Backend::Distilled {
                policy,
                fallback,
                scratch,
                out_buf,
                folds,
                demoted,
                tier_fallbacks,
            } => {
                if !*demoted && !unavailable {
                    match distilled_forward(policy, folds, flat, input, out_buf) {
                        Ok(()) => false,
                        Err(_) => {
                            // The artifact broke its contract (shape
                            // drift, corrupt reload): latch the
                            // demotion and let the compiled tier serve
                            // from here on.
                            *demoted = true;
                            *tier_fallbacks += 1;
                            fallback.forward_into(input, scratch, out_buf).is_err()
                        }
                    }
                } else {
                    *tier_fallbacks += 1;
                    fallback.forward_into(input, scratch, out_buf).is_err()
                }
            }
            Backend::Mpc { .. } => unreachable!("plan_dbn called on MPC backend"),
        };
        if predict_failed {
            // Shape mismatch (e.g. trained on another node) — fall
            // back to "run everything".
            self.health = PlannerHealth::DbnUnavailable;
            return (obs.bank.active_index(), 1.0, obs.graph.all_tasks());
        }
        self.decide_dbn(obs)
    }
}

impl PeriodPlanner for ProposedPlanner {
    fn name(&self) -> &'static str {
        match &self.backend {
            Backend::Dbn { .. } => "proposed-dbn",
            Backend::Compiled { compiled, .. } => match compiled.tier() {
                CompiledTier::F32 => "compiled-dbn",
                CompiledTier::Int8 => "compiled-dbn-i8",
            },
            Backend::Distilled { .. } => "distilled",
            Backend::Mpc { .. } => "proposed-mpc",
        }
    }

    fn plan(&mut self, obs: &PlannerObservation<'_>) -> PlanDecision {
        let (suggested_cap, alpha, allowed) = match self.backend {
            Backend::Mpc { .. } => {
                if let Some(mode) = self.injected {
                    // The MPC's compute path is its "inference engine":
                    // either fault degrades to the conservative
                    // run-everything decision on the current capacitor.
                    self.health = match mode {
                        DbnFaultMode::Unavailable => PlannerHealth::DbnUnavailable,
                        DbnFaultMode::Nan => PlannerHealth::NonFinite,
                    };
                    (obs.bank.active_index(), 1.0, obs.graph.all_tasks())
                } else {
                    self.health = PlannerHealth::Healthy;
                    let (cap, plan) = self.plan_mpc(obs);
                    (cap, plan.alpha, plan.subset)
                }
            }
            Backend::Dbn { .. } | Backend::Compiled { .. } | Backend::Distilled { .. } => {
                self.plan_dbn(obs)
            }
        };
        PlanDecision {
            capacitor: self.switch.decide(obs, suggested_cap),
            allowed: Some(allowed),
            pattern: OptimalPlanner::pattern_for_alpha(alpha, self.delta),
        }
    }

    fn complexity(&self) -> u64 {
        self.complexity
    }

    fn inject_fault(&mut self, mode: Option<DbnFaultMode>) {
        self.injected = mode;
    }

    fn health(&self) -> PlannerHealth {
        self.health
    }

    fn on_contract_violation(&mut self) {
        // The distilled tier does not get a violation budget: one
        // decision the engine had to drop demotes the artifact to its
        // compiled fallback for the rest of the run (the resilient
        // wrapper's own budget then guards the compiled tier).
        if let Backend::Distilled { demoted, folds, .. } = &mut self.backend {
            if !*demoted {
                *demoted = true;
                folds.clear();
            }
        }
    }

    fn fallback_count(&self) -> usize {
        match &self.backend {
            Backend::Distilled { tier_fallbacks, .. } => {
                usize::try_from(*tier_fallbacks).unwrap_or(usize::MAX)
            }
            Backend::Dbn { .. } | Backend::Compiled { .. } | Backend::Mpc { .. } => 0,
        }
    }

    fn attach_context(&mut self, ctx: &Arc<PlanContext>) {
        self.ctx = Some(Arc::clone(ctx));
    }

    fn save_checkpoint(&self) -> PlannerCheckpoint {
        let mpc = match &self.backend {
            Backend::Mpc { cache: Some(c), .. } => Some(MpcCacheState {
                day: c.day,
                capacitor: c.capacitor,
                base_flat: c.base_flat,
                plans: c.plans.clone(),
            }),
            Backend::Mpc { cache: None, .. }
            | Backend::Dbn { .. }
            | Backend::Compiled { .. }
            | Backend::Distilled { .. } => None,
        };
        let distilled = match &self.backend {
            Backend::Distilled {
                demoted,
                tier_fallbacks,
                ..
            } => Some(DistilledState {
                demoted: *demoted,
                tier_fallbacks: *tier_fallbacks,
            }),
            Backend::Dbn { .. } | Backend::Compiled { .. } | Backend::Mpc { .. } => None,
        };
        PlannerCheckpoint::Proposed(ProposedCheckpoint {
            complexity: self.complexity,
            health: self.health,
            injected: self.injected,
            mpc,
            distilled,
        })
    }

    fn restore_checkpoint(&mut self, ckpt: &PlannerCheckpoint) -> Result<(), String> {
        let PlannerCheckpoint::Proposed(c) = ckpt else {
            return Err(format!(
                "planner `{}` expects a proposed checkpoint, got {ckpt:?}",
                self.name()
            ));
        };
        self.complexity = c.complexity;
        self.health = c.health;
        self.injected = c.injected;
        match &mut self.backend {
            Backend::Mpc { cache, .. } => {
                *cache = c.mpc.as_ref().map(|m| MpcCache {
                    day: m.day,
                    capacitor: m.capacitor,
                    base_flat: m.base_flat,
                    plans: m.plans.clone(),
                });
            }
            Backend::Dbn { .. } | Backend::Compiled { .. } | Backend::Distilled { .. } => {
                if c.mpc.is_some() {
                    return Err(format!(
                        "planner `{}` has no MPC cache but the checkpoint carries one",
                        self.name()
                    ));
                }
            }
        }
        match &mut self.backend {
            Backend::Distilled {
                demoted,
                tier_fallbacks,
                folds,
                ..
            } => {
                let Some(d) = c.distilled.as_ref() else {
                    return Err(
                        "planner `distilled` needs distilled-tier state but the checkpoint has none"
                            .into(),
                    );
                };
                *demoted = d.demoted;
                *tier_fallbacks = d.tier_fallbacks;
                // Per-period state is a rebuilt cache, not checkpoint
                // state: drop it so the resumed run re-folds.
                folds.clear();
            }
            Backend::Dbn { .. } | Backend::Compiled { .. } | Backend::Mpc { .. } => {
                if c.distilled.is_some() {
                    return Err(format!(
                        "planner `{}` has no distilled tier but the checkpoint carries one",
                        self.name()
                    ));
                }
            }
        }
        Ok(())
    }

    fn batch_input(&mut self, obs: &PlannerObservation<'_>, input: &mut Vec<f64>) -> bool {
        // Compiled backends decline batch slots by design: their
        // single-sample forward is the fast path, so the batch engine
        // routes them through the per-scenario `plan()` fallback and
        // batched stays identical to sequential for compiled runs.
        let Backend::Dbn { dbn, .. } = &self.backend else {
            return false;
        };
        if self.injected == Some(DbnFaultMode::Unavailable) {
            // The sequential path would skip inference entirely;
            // decline the batch slot so plan() reproduces that.
            return false;
        }
        let input_dim = dbn.input_dim();
        Self::gather_dbn_input(obs, input);
        if input.len() != input_dim {
            // The sequential path pays the complexity increment and
            // then fails predict; declining here routes this scenario
            // through plan(), which does exactly that.
            return false;
        }
        // One DBN inference ≈ one state expansion worth of work — the
        // same accounting plan_dbn does before predicting.
        self.complexity += 1;
        true
    }

    fn batch_dbn(&self) -> Option<Arc<Dbn>> {
        match &self.backend {
            Backend::Dbn { dbn, .. } => Some(Arc::clone(dbn)),
            Backend::Compiled { .. } | Backend::Distilled { .. } | Backend::Mpc { .. } => None,
        }
    }

    fn plan_with_output(&mut self, obs: &PlannerObservation<'_>, out: &[f64]) -> PlanDecision {
        if let Backend::Dbn { out_buf, .. }
        | Backend::Compiled { out_buf, .. }
        | Backend::Distilled { out_buf, .. } = &mut self.backend
        {
            out_buf.clear();
            out_buf.extend_from_slice(out);
        }
        let (suggested_cap, alpha, allowed) = self.decide_dbn(obs);
        PlanDecision {
            capacitor: self.switch.decide(obs, suggested_cap),
            allowed: Some(allowed),
            pattern: OptimalPlanner::pattern_for_alpha(alpha, self.delta),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NodeConfig;
    use crate::engine::Engine;
    use crate::planner::{FixedPlanner, Pattern};
    use helio_common::time::TimeGrid;
    use helio_common::units::{Farads, Seconds};
    use helio_solar::{DayArchetype, NoisyOracle, SolarPanel, SolarTrace, TraceBuilder};
    use helio_tasks::benchmarks;

    fn grid(days: usize) -> TimeGrid {
        TimeGrid::new(days, 24, 10, Seconds::new(60.0)).unwrap()
    }

    fn node(days: usize) -> NodeConfig {
        NodeConfig::builder(grid(days))
            .capacitors(&[Farads::new(2.0), Farads::new(15.0)])
            .build()
            .unwrap()
    }

    fn trace(days: usize) -> SolarTrace {
        TraceBuilder::new(grid(days), SolarPanel::paper_panel())
            .seed(11)
            .days(&[
                DayArchetype::Clear,
                DayArchetype::BrokenClouds,
                DayArchetype::Overcast,
                DayArchetype::Storm,
            ])
            .build()
    }

    #[test]
    fn mpc_with_perfect_oracle_beats_baselines() {
        let node = node(2);
        let t = trace(2);
        let g = benchmarks::ecg();
        let engine = Engine::new(&node, &g, &t).unwrap();
        let mut mpc = ProposedPlanner::mpc(
            Box::new(NoisyOracle::perfect()),
            2 * 24,
            DpConfig::default(),
            0.5,
            SwitchRule::default(),
        );
        let proposed = engine.run(&mut mpc).unwrap();
        let inter = engine
            .run(&mut FixedPlanner::new(Pattern::Inter, 1))
            .unwrap();
        assert!(
            proposed.overall_dmr() <= inter.overall_dmr() + 0.02,
            "proposed {} vs inter {}",
            proposed.overall_dmr(),
            inter.overall_dmr()
        );
        assert!(proposed.complexity > 0);
    }

    #[test]
    fn switch_rule_keeps_charged_capacitor() {
        let node = node(1);
        let t = trace(1);
        let g = benchmarks::ecg();
        let storage = &node.storage;
        let mut bank = helio_storage::CapacitorBank::new(&node.capacitors, storage).unwrap();
        bank.set_active(0).unwrap();
        bank.charge_active(storage, Joules::new(10.0));
        let obs = PlannerObservation {
            grid: &node.grid,
            period: helio_common::time::PeriodRef::new(0, 0),
            graph: &g,
            trace: &t,
            bank: &bank,
            accumulated_dmr: 0.0,
            storage,
            pmu: &node.pmu,
        };
        let rule = SwitchRule {
            threshold: Joules::new(2.0),
        };
        // Charged above threshold: keep.
        assert_eq!(rule.decide(&obs, 1), None);
        // Same capacitor: trivially allowed.
        assert_eq!(rule.decide(&obs, 0), Some(0));
        // Drain below threshold: switch allowed.
        let mut drained = helio_storage::CapacitorBank::new(&node.capacitors, storage).unwrap();
        drained.set_active(0).unwrap();
        let obs2 = PlannerObservation {
            bank: &drained,
            ..obs
        };
        assert_eq!(rule.decide(&obs2, 1), Some(1));
    }

    #[test]
    fn mpc_replans_once_per_day() {
        let node = node(2);
        let t = trace(2);
        let g = benchmarks::ecg();
        let engine = Engine::new(&node, &g, &t).unwrap();
        let mut mpc = ProposedPlanner::mpc(
            Box::new(NoisyOracle::perfect()),
            24,
            DpConfig {
                voltage_buckets: 6,
                keep_per_level: 1,
            },
            0.5,
            SwitchRule::default(),
        );
        engine.run(&mut mpc).unwrap();
        // 2 days × 2 capacitors × 24 periods × 6 buckets × subsets:
        // complexity must correspond to exactly two replans (not one per
        // period). With keep=1 ECG has 8 subset levels (incl. empty
        // level kept once per size 0..=6 → 7) — just bound it loosely.
        let per_day_upper = 2 * 24 * 6 * 20;
        assert!(
            mpc.complexity() <= 2 * per_day_upper as u64,
            "complexity {} suggests per-period replanning",
            mpc.complexity()
        );
    }

    #[test]
    fn injected_faults_degrade_conservatively() {
        let node = node(1);
        let t = trace(1);
        let g = benchmarks::ecg();
        let storage = &node.storage;
        let bank = helio_storage::CapacitorBank::new(&node.capacitors, storage).unwrap();
        let obs = PlannerObservation {
            grid: &node.grid,
            period: helio_common::time::PeriodRef::new(0, 0),
            graph: &g,
            trace: &t,
            bank: &bank,
            accumulated_dmr: 0.0,
            storage,
            pmu: &node.pmu,
        };
        let mut p = ProposedPlanner::mpc(
            Box::new(NoisyOracle::perfect()),
            24,
            DpConfig {
                voltage_buckets: 4,
                keep_per_level: 1,
            },
            0.5,
            SwitchRule::default(),
        );
        assert_eq!(p.health(), PlannerHealth::Healthy);
        p.inject_fault(Some(DbnFaultMode::Unavailable));
        let d = p.plan(&obs);
        assert_eq!(p.health(), PlannerHealth::DbnUnavailable);
        assert_eq!(
            d.allowed,
            Some(g.all_tasks()),
            "degraded mode runs everything"
        );
        p.inject_fault(Some(DbnFaultMode::Nan));
        let _ = p.plan(&obs);
        assert_eq!(p.health(), PlannerHealth::NonFinite);
        // Clearing the fault restores the nominal path.
        p.inject_fault(None);
        let _ = p.plan(&obs);
        assert_eq!(p.health(), PlannerHealth::Healthy);
    }

    #[test]
    fn dbn_nan_outputs_are_never_acted_on() {
        let g = benchmarks::ecg();
        let node = node(1);
        let t = trace(1);
        let in_dim = 10 + 2 + 1;
        let inputs: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64; in_dim]).collect();
        let targets: Vec<Vec<f64>> = (0..20).map(|_| vec![1.0; 2 + g.len()]).collect();
        let dbn =
            helio_ann::Dbn::train(&inputs, &targets, &helio_ann::DbnConfig::small(2)).unwrap();
        let mut planner = ProposedPlanner::from_dbn(dbn, 0.5, SwitchRule::default());
        let storage = &node.storage;
        let bank = helio_storage::CapacitorBank::new(&node.capacitors, storage).unwrap();
        let obs = PlannerObservation {
            grid: &node.grid,
            period: helio_common::time::PeriodRef::new(0, 0),
            graph: &g,
            trace: &t,
            bank: &bank,
            accumulated_dmr: 0.0,
            storage,
            pmu: &node.pmu,
        };
        planner.inject_fault(Some(DbnFaultMode::Nan));
        let d = planner.plan(&obs);
        assert_eq!(planner.health(), PlannerHealth::NonFinite);
        assert_eq!(d.allowed, Some(g.all_tasks()));
    }

    #[test]
    fn dbn_backend_round_trip() {
        // Train a tiny DBN on synthetic "always run everything on cap 0"
        // samples and check the planner emits sane decisions.
        let node = node(1);
        let t = trace(1);
        let g = benchmarks::ecg();
        let dbn = trained_dbn(&g);
        let mut planner = ProposedPlanner::from_dbn(dbn, 0.5, SwitchRule::default());
        let engine = Engine::new(&node, &g, &t).unwrap();
        let report = engine.run(&mut planner).unwrap();
        assert_eq!(report.planner, "proposed-dbn");
        // The all-ones teaching signal should admit everything.
        assert!(report.overall_dmr() < 1.0);
    }

    fn trained_dbn(g: &helio_tasks::TaskGraph) -> helio_ann::Dbn {
        let in_dim = 10 + 2 + 1;
        let inputs: Vec<Vec<f64>> = (0..40)
            .map(|i| {
                let mut v = vec![(i % 7) as f64 * 10.0; in_dim];
                v[in_dim - 1] = 0.3;
                v
            })
            .collect();
        let targets: Vec<Vec<f64>> = (0..40)
            .map(|_| {
                let mut v = vec![0.0, 1.0];
                v.extend(vec![1.0; g.len()]);
                v
            })
            .collect();
        helio_ann::Dbn::train(&inputs, &targets, &helio_ann::DbnConfig::small(2)).unwrap()
    }

    #[test]
    fn compiled_backend_tracks_reference_dmr() {
        // Both compiled tiers must land within the tolerance-contract
        // neighbourhood of the f64 reference planner on a full run.
        let node = node(1);
        let t = trace(1);
        let g = benchmarks::ecg();
        let dbn = trained_dbn(&g);
        let engine = Engine::new(&node, &g, &t).unwrap();
        let reference = engine
            .run(&mut ProposedPlanner::from_shared_dbn(
                Arc::new(dbn.clone()),
                0.5,
                SwitchRule::default(),
            ))
            .unwrap();
        for (tier, name) in [
            (CompiledTier::F32, "compiled-dbn"),
            (CompiledTier::Int8, "compiled-dbn-i8"),
        ] {
            let mut planner =
                ProposedPlanner::compile_dbn(&dbn, tier, 0.5, SwitchRule::default()).unwrap();
            let report = engine.run(&mut planner).unwrap();
            assert_eq!(report.planner, name);
            assert!(
                (report.overall_dmr() - reference.overall_dmr()).abs() < 0.05,
                "{name}: compiled DMR {} vs reference {}",
                report.overall_dmr(),
                reference.overall_dmr()
            );
        }
    }

    #[test]
    fn compiled_backend_faults_degrade_conservatively() {
        let node = node(1);
        let t = trace(1);
        let g = benchmarks::ecg();
        let dbn = trained_dbn(&g);
        let mut planner =
            ProposedPlanner::compile_dbn(&dbn, CompiledTier::F32, 0.5, SwitchRule::default())
                .unwrap();
        let storage = &node.storage;
        let bank = helio_storage::CapacitorBank::new(&node.capacitors, storage).unwrap();
        let obs = PlannerObservation {
            grid: &node.grid,
            period: helio_common::time::PeriodRef::new(0, 0),
            graph: &g,
            trace: &t,
            bank: &bank,
            accumulated_dmr: 0.0,
            storage,
            pmu: &node.pmu,
        };
        planner.inject_fault(Some(DbnFaultMode::Unavailable));
        let d = planner.plan(&obs);
        assert_eq!(planner.health(), PlannerHealth::DbnUnavailable);
        assert_eq!(d.allowed, Some(g.all_tasks()));
        planner.inject_fault(Some(DbnFaultMode::Nan));
        let d = planner.plan(&obs);
        assert_eq!(planner.health(), PlannerHealth::NonFinite);
        assert_eq!(d.allowed, Some(g.all_tasks()));
        planner.inject_fault(None);
        let _ = planner.plan(&obs);
        assert_eq!(planner.health(), PlannerHealth::Healthy);
    }

    /// A teacher/student/fallback triple over the synthetic training
    /// set, with a tree small enough for debug-mode test runs.
    fn distilled_pair(
        g: &helio_tasks::TaskGraph,
    ) -> (
        Arc<helio_ann::DistilledPolicy>,
        Arc<CompiledDbn>,
        helio_ann::Dbn,
    ) {
        let dbn = trained_dbn(g);
        let compiled = Arc::new(CompiledDbn::compile(&dbn, CompiledTier::F32).unwrap());
        let cfg = helio_ann::DistillConfig {
            depth_const: 3,
            depth_vary: 3,
            samples: 2048,
            candidates: 16,
            holdout: 512,
            ..helio_ann::DistillConfig::small(3)
        };
        let policy =
            Arc::new(helio_ann::DistilledPolicy::distill(&dbn, 10, &[], &cfg).unwrap());
        (policy, compiled, dbn)
    }

    #[test]
    fn distilled_backend_tracks_reference_dmr() {
        let node = node(1);
        let t = trace(1);
        let g = benchmarks::ecg();
        let (policy, compiled, dbn) = distilled_pair(&g);
        let engine = Engine::new(&node, &g, &t).unwrap();
        let reference = engine
            .run(&mut ProposedPlanner::from_shared_dbn(
                Arc::new(dbn),
                0.5,
                SwitchRule::default(),
            ))
            .unwrap();
        let mut planner =
            ProposedPlanner::from_distilled(policy, compiled, 0.5, SwitchRule::default());
        let report = engine.run(&mut planner).unwrap();
        assert_eq!(report.planner, "distilled");
        assert!(
            (report.overall_dmr() - reference.overall_dmr()).abs() < 0.05,
            "distilled DMR {} vs reference {}",
            report.overall_dmr(),
            reference.overall_dmr()
        );
        assert_eq!(planner.fallback_count(), 0, "artifact served every period");
    }

    #[test]
    fn distilled_faults_step_down_one_tier_at_a_time() {
        let node = node(1);
        let t = trace(1);
        let g = benchmarks::ecg();
        let (policy, compiled, _) = distilled_pair(&g);
        let mut planner =
            ProposedPlanner::from_distilled(policy, compiled, 0.5, SwitchRule::default());
        let storage = &node.storage;
        let bank = helio_storage::CapacitorBank::new(&node.capacitors, storage).unwrap();
        let obs = PlannerObservation {
            grid: &node.grid,
            period: helio_common::time::PeriodRef::new(0, 0),
            graph: &g,
            trace: &t,
            bank: &bank,
            accumulated_dmr: 0.0,
            storage,
            pmu: &node.pmu,
        };
        // Artifact down, compiled tier up: the fallback serves and the
        // planner stays healthy — the chain has only stepped down once.
        planner.inject_fault(Some(DbnFaultMode::Unavailable));
        let d = planner.plan(&obs);
        assert_eq!(planner.health(), PlannerHealth::Healthy);
        assert!(d.allowed.is_some());
        assert_eq!(planner.fallback_count(), 1);
        // A NaN forward is caught by the finite-output guard regardless
        // of which tier produced it.
        planner.inject_fault(Some(DbnFaultMode::Nan));
        let d = planner.plan(&obs);
        assert_eq!(planner.health(), PlannerHealth::NonFinite);
        assert_eq!(d.allowed, Some(g.all_tasks()));
        // A contract violation latches the demotion: the compiled tier
        // serves from here on even with no fault injected.
        planner.inject_fault(None);
        planner.on_contract_violation();
        let _ = planner.plan(&obs);
        assert_eq!(planner.health(), PlannerHealth::Healthy);
        assert_eq!(planner.fallback_count(), 2);
        // With the artifact demoted, an unavailability fault has no
        // tier left to absorb it: conservative run-everything.
        planner.inject_fault(Some(DbnFaultMode::Unavailable));
        let d = planner.plan(&obs);
        assert_eq!(planner.health(), PlannerHealth::DbnUnavailable);
        assert_eq!(d.allowed, Some(g.all_tasks()));
    }

    #[test]
    fn distilled_checkpoint_round_trips_tier_state() {
        let node = node(1);
        let t = trace(1);
        let g = benchmarks::ecg();
        let (policy, compiled, dbn) = distilled_pair(&g);
        let storage = &node.storage;
        let bank = helio_storage::CapacitorBank::new(&node.capacitors, storage).unwrap();
        let obs = PlannerObservation {
            grid: &node.grid,
            period: helio_common::time::PeriodRef::new(0, 0),
            graph: &g,
            trace: &t,
            bank: &bank,
            accumulated_dmr: 0.0,
            storage,
            pmu: &node.pmu,
        };
        let mut a = ProposedPlanner::from_distilled(
            Arc::clone(&policy),
            Arc::clone(&compiled),
            0.5,
            SwitchRule::default(),
        );
        a.on_contract_violation();
        let _ = a.plan(&obs);
        assert_eq!(a.fallback_count(), 1);
        let ckpt = a.save_checkpoint();
        // A fresh planner restored from the checkpoint must not
        // re-trust the demoted artifact.
        let mut b = ProposedPlanner::from_distilled(policy, compiled, 0.5, SwitchRule::default());
        b.restore_checkpoint(&ckpt).unwrap();
        assert_eq!(b.fallback_count(), 1);
        let _ = b.plan(&obs);
        assert_eq!(b.fallback_count(), 2, "restored latch keeps the fallback tier");
        // Tier state is meaningless to other backends.
        let mut c =
            ProposedPlanner::compile_dbn(&dbn, CompiledTier::F32, 0.5, SwitchRule::default())
                .unwrap();
        assert!(c.restore_checkpoint(&ckpt).is_err());
    }
}
