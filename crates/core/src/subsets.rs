//! Enumeration of the per-period task subsets the planners choose
//! among.
//!
//! The paper's simplified formulation replaces raw scheduling variables
//! with per-period DMR levels (Section 4.2): a period commits to
//! completing some dependency-closed subset of the task set. For the
//! DMR objective every task weighs the same, so among subsets of equal
//! size only the cheapest (by energy) few matter — this is the
//! `(N+1)`-level reduction that makes the long-term DP tractable.

use helio_common::TaskSet;
use helio_tasks::TaskGraph;

/// All dependency-closed subsets (every predecessor of an included task
/// is included), as bitmasks over the task ids, in ascending mask
/// order. Includes the empty and full subsets.
///
/// Full enumeration is `2^N`; for graphs with more than 20 tasks (the
/// paper's benchmarks have at most 8) this degrades to the `N + 1`
/// prefixes of a topological order — each prefix is dependency-closed,
/// and the empty and full subsets are still present, so the DP keeps a
/// valid (if coarser) ladder of DMR levels instead of aborting.
pub fn closed_subsets(graph: &TaskGraph) -> Vec<TaskSet> {
    let n = graph.len();
    if n > 20 {
        let order = match graph.topological_order() {
            Ok(order) => order,
            Err(_) => graph.ids().collect(),
        };
        let mut prefix = TaskSet::EMPTY;
        let mut out = vec![prefix];
        for id in order {
            prefix = prefix.with(id.index());
            out.push(prefix);
        }
        return out;
    }
    let mut out = Vec::new();
    'mask: for mask in 0u32..(1u32 << n) {
        for (from, to) in graph.edges() {
            if mask & (1 << to.index()) != 0 && mask & (1 << from.index()) == 0 {
                continue 'mask;
            }
        }
        out.push(TaskSet::from_bits(mask));
    }
    out
}

/// The DMR-level reduction: for each subset size `k ∈ 0..=N`, the
/// `keep` dependency-closed subsets with the smallest total energy.
/// The result is sorted by size then energy, deduplicated, and always
/// contains the empty and full subsets.
pub fn dmr_level_subsets(graph: &TaskGraph, keep: usize) -> Vec<TaskSet> {
    let all = closed_subsets(graph);
    let energy = |mask: TaskSet| -> f64 {
        graph
            .ids()
            .filter(|id| mask.contains(id.index()))
            .map(|id| graph.task(id).energy().value())
            .sum()
    };
    let n = graph.len();
    let mut out: Vec<TaskSet> = Vec::new();
    for k in 0..=n {
        let mut level: Vec<TaskSet> = all.iter().copied().filter(|m| m.len() == k).collect();
        level.sort_by(|&a, &b| energy(a).total_cmp(&energy(b)));
        out.extend(level.into_iter().take(keep.max(1)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use helio_tasks::benchmarks;

    #[test]
    fn oversized_graphs_degrade_to_topological_prefixes() {
        use helio_common::units::{Seconds, Watts};
        let mut g = helio_tasks::TaskGraph::new("wide");
        let ids: Vec<_> = (0..22)
            .map(|i| {
                g.add_task(helio_tasks::Task::new(
                    format!("t{i}"),
                    Seconds::new(1.0),
                    Seconds::new(600.0),
                    Watts::new(0.01),
                    i % 3,
                ))
            })
            .collect();
        for w in ids.windows(2) {
            g.add_edge(w[0], w[1]).unwrap();
        }
        let subsets = closed_subsets(&g);
        assert_eq!(subsets.len(), 23, "N + 1 prefixes");
        assert!(subsets.contains(&TaskSet::EMPTY));
        assert!(subsets.contains(&g.all_tasks()));
        for s in &subsets {
            for (from, to) in g.edges() {
                if s.contains(to.index()) {
                    assert!(s.contains(from.index()), "prefix {s} breaks an edge");
                }
            }
        }
    }

    #[test]
    fn closed_subsets_respect_dependencies() {
        let g = benchmarks::ecg();
        let subsets = closed_subsets(&g);
        for s in &subsets {
            for (from, to) in g.edges() {
                if s.contains(to.index()) {
                    assert!(
                        s.contains(from.index()),
                        "subset {s} breaks {from:?}->{to:?}"
                    );
                }
            }
        }
        // Empty and full present.
        assert!(subsets.contains(&TaskSet::EMPTY));
        assert!(subsets.contains(&g.all_tasks()));
    }

    #[test]
    fn chain_reduces_subset_count() {
        // ECG's filter chain forbids most of 2^6 = 64 masks.
        let g = benchmarks::ecg();
        let subsets = closed_subsets(&g);
        assert!(subsets.len() < 64, "got {}", subsets.len());
        assert!(subsets.len() >= 7, "at least the chain prefixes");
    }

    #[test]
    fn independent_tasks_enumerate_fully() {
        let g = benchmarks::shm(); // 2 edges on 5 tasks
        let subsets = closed_subsets(&g);
        // 5 tasks, edges accel->fft->tx: count masks where fft⇒accel and
        // tx⇒fft: chain of 3 has 4 valid prefixes × 2² free = 16.
        assert_eq!(subsets.len(), 16);
    }

    #[test]
    fn dmr_levels_cover_every_size_and_are_cheap_first() {
        let g = benchmarks::wam();
        let levels = dmr_level_subsets(&g, 2);
        let n = g.len();
        for k in 0..=n {
            let count = levels.iter().filter(|m| m.len() == k).count();
            assert!(count >= 1, "size {k} missing");
            assert!(count <= 2, "size {k} kept too many");
        }
        // The single-task level keeps the cheapest task
        // (heart_rate_sampling: 0.6 J).
        let singles: Vec<&TaskSet> = levels.iter().filter(|m| m.len() == 1).collect();
        let cheapest = singles
            .iter()
            .map(|m| {
                g.ids()
                    .find(|id| m.contains(id.index()))
                    .map(|id| g.task(id).energy().value())
                    .unwrap_or(f64::MAX)
            })
            .fold(f64::MAX, f64::min);
        assert!(cheapest < 0.7, "cheapest single {cheapest}");
    }

    #[test]
    fn dmr_levels_always_include_empty_and_full() {
        for g in benchmarks::all_six() {
            let levels = dmr_level_subsets(&g, 1);
            assert!(levels.contains(&TaskSet::EMPTY), "{}", g.name());
            assert!(levels.contains(&g.all_tasks()), "{}", g.name());
        }
    }
}
