//! Enumeration of the per-period task subsets the planners choose
//! among.
//!
//! The paper's simplified formulation replaces raw scheduling variables
//! with per-period DMR levels (Section 4.2): a period commits to
//! completing some dependency-closed subset of the task set. For the
//! DMR objective every task weighs the same, so among subsets of equal
//! size only the cheapest (by energy) few matter — this is the
//! `(N+1)`-level reduction that makes the long-term DP tractable.

use helio_tasks::TaskGraph;

/// All dependency-closed subsets (every predecessor of an included task
/// is included), as masks over the task ids. Includes the empty and
/// full subsets.
///
/// # Panics
///
/// Panics for graphs with more than 20 tasks (enumeration is 2^N; the
/// paper's benchmarks have at most 8).
pub fn closed_subsets(graph: &TaskGraph) -> Vec<Vec<bool>> {
    let n = graph.len();
    assert!(n <= 20, "subset enumeration is exponential; got {n} tasks");
    let mut out = Vec::new();
    'mask: for mask in 0u32..(1u32 << n) {
        for (from, to) in graph.edges() {
            if mask & (1 << to.index()) != 0 && mask & (1 << from.index()) == 0 {
                continue 'mask;
            }
        }
        out.push((0..n).map(|i| mask & (1 << i) != 0).collect());
    }
    out
}

/// The DMR-level reduction: for each subset size `k ∈ 0..=N`, the
/// `keep` dependency-closed subsets with the smallest total energy.
/// The result is sorted by size then energy, deduplicated, and always
/// contains the empty and full subsets.
pub fn dmr_level_subsets(graph: &TaskGraph, keep: usize) -> Vec<Vec<bool>> {
    let all = closed_subsets(graph);
    let energy = |mask: &Vec<bool>| -> f64 {
        graph
            .ids()
            .filter(|id| mask[id.index()])
            .map(|id| graph.task(id).energy().value())
            .sum()
    };
    let n = graph.len();
    let mut out: Vec<Vec<bool>> = Vec::new();
    for k in 0..=n {
        let mut level: Vec<&Vec<bool>> = all
            .iter()
            .filter(|m| m.iter().filter(|&&b| b).count() == k)
            .collect();
        level.sort_by(|a, b| energy(a).total_cmp(&energy(b)));
        for m in level.into_iter().take(keep.max(1)) {
            out.push(m.clone());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use helio_tasks::benchmarks;

    #[test]
    fn closed_subsets_respect_dependencies() {
        let g = benchmarks::ecg();
        let subsets = closed_subsets(&g);
        for s in &subsets {
            for (from, to) in g.edges() {
                if s[to.index()] {
                    assert!(s[from.index()], "subset {s:?} breaks {from:?}->{to:?}");
                }
            }
        }
        // Empty and full present.
        assert!(subsets.iter().any(|s| s.iter().all(|&b| !b)));
        assert!(subsets.iter().any(|s| s.iter().all(|&b| b)));
    }

    #[test]
    fn chain_reduces_subset_count() {
        // ECG's filter chain forbids most of 2^6 = 64 masks.
        let g = benchmarks::ecg();
        let subsets = closed_subsets(&g);
        assert!(subsets.len() < 64, "got {}", subsets.len());
        assert!(subsets.len() >= 7, "at least the chain prefixes");
    }

    #[test]
    fn independent_tasks_enumerate_fully() {
        let g = benchmarks::shm(); // 2 edges on 5 tasks
        let subsets = closed_subsets(&g);
        // 5 tasks, edges accel->fft->tx: count masks where fft⇒accel and
        // tx⇒fft: chain of 3 has 4 valid prefixes × 2² free = 16.
        assert_eq!(subsets.len(), 16);
    }

    #[test]
    fn dmr_levels_cover_every_size_and_are_cheap_first() {
        let g = benchmarks::wam();
        let levels = dmr_level_subsets(&g, 2);
        let n = g.len();
        for k in 0..=n {
            let count = levels
                .iter()
                .filter(|m| m.iter().filter(|&&b| b).count() == k)
                .count();
            assert!(count >= 1, "size {k} missing");
            assert!(count <= 2, "size {k} kept too many");
        }
        // The single-task level keeps the cheapest task
        // (heart_rate_sampling: 0.6 J).
        let singles: Vec<&Vec<bool>> = levels
            .iter()
            .filter(|m| m.iter().filter(|&&b| b).count() == 1)
            .collect();
        let cheapest = singles
            .iter()
            .map(|m| {
                g.ids()
                    .find(|id| m[id.index()])
                    .map(|id| g.task(id).energy().value())
                    .unwrap_or(f64::MAX)
            })
            .fold(f64::MAX, f64::min);
        assert!(cheapest < 0.7, "cheapest single {cheapest}");
    }

    #[test]
    fn dmr_levels_always_include_empty_and_full() {
        for g in benchmarks::all_six() {
            let levels = dmr_level_subsets(&g, 1);
            assert!(levels.iter().any(|s| s.iter().all(|&b| !b)), "{}", g.name());
            assert!(levels.iter().any(|s| s.iter().all(|&b| b)), "{}", g.name());
        }
    }
}
