//! Lockstep batched simulation of many independent scenarios.
//!
//! Every sweep in the experiment suite runs B scenarios that share one
//! node configuration and task set but differ in trace, planner, seed
//! or fault plan. Running them one [`Engine`](crate::engine::Engine)
//! at a time wastes the structure twice: per-scenario precomputation
//! (slot costs, topological order) is rebuilt B times, and the DBN
//! backend pays B separate matrix–vector forwards per period when one
//! `B × in` matrix product would do.
//!
//! [`BatchEngine`] advances B scenarios period-by-period in lockstep.
//! Per-scenario mutable state lives in a structure-of-arrays `Vec` of
//! scenario states; immutable cross-scenario precomputation is built
//! once behind an [`Arc`]ed [`PlanContext`]. At each period boundary
//! the engine gathers the B DBN feature vectors into one matrix
//! (grouping scenarios by `Arc` pointer identity of their shared
//! network), runs a single batched forward per group, and hands each
//! scenario its output row. Scenarios whose planner declines the batch
//! slot — MPC backends, fixed baselines, demoted
//! [`ResilientPlanner`](crate::resilient::ResilientPlanner)s, periods
//! with an injected `Unavailable` fault — fall back to a plain
//! [`PeriodPlanner::plan`] call for that period.
//!
//! Correctness is absolute: because the batched forward is bitwise
//! identical to per-sample inference and every other step reuses the
//! sequential engine's own period step, a batched run is byte-identical
//! to B sequential [`Engine::run`](crate::engine::Engine::run) calls.
//!
//! On top of the lockstep batch, [`BatchEngine::run_sharded`]
//! partitions the pushed scenarios into contiguous per-worker shards
//! and fans them out across the `helio-par` scoped-thread pool. Each
//! worker owns its shard's SoA state plus one [`BatchScratch`] (reused
//! across periods, and — via [`BatchEngine::run_sharded_with`] —
//! across whole runs, which is what the long-lived `helio-fleet`
//! service does between requests); the [`PlanContext`] and any shared
//! DBN `Arc`s are shared read-only across all workers. Because
//! scenarios never interact — grouping only changes *how* inference is
//! batched, not its bits — a sharded run is byte-identical to
//! [`BatchEngine::run`] for every shard count.

use std::sync::Arc;

use helio_ann::{BatchPredictScratch, Dbn, Matrix};
use helio_common::units::{Joules, Seconds};
use helio_faults::FaultHarness;
use helio_solar::{SolarPredictor, SolarTrace, WcmaPredictor};
use helio_tasks::{TaskGraph, TaskId};

use crate::checkpoint::{BatchCheckpoint, PlannerCheckpoint, ScenarioCheckpoint};
use crate::config::NodeConfig;
use crate::engine::{ScenarioEnv, ScenarioState};
use crate::error::CoreError;
use crate::metrics::SimReport;
use crate::planner::{PeriodPlanner, PlanDecision};

/// Immutable precomputation shared by every scenario in a batch (and,
/// per run, by the sequential engine): quantities that depend only on
/// the task set and grid, never on scenario state.
#[derive(Debug, Clone)]
pub struct PlanContext {
    /// Energy one slot of each task costs (`power × slot_duration`),
    /// indexed by task.
    pub slot_costs: Vec<Joules>,
    /// A topological order of the task graph (the admission-closure
    /// order the DBN planner walks every period).
    pub topo: Vec<TaskId>,
}

impl PlanContext {
    /// Precomputes the context for `graph` on `slot_duration` slots.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Tasks`] when the graph is cyclic.
    pub fn new(graph: &TaskGraph, slot_duration: Seconds) -> Result<Self, CoreError> {
        let topo = graph
            .topological_order()
            .map_err(|e| CoreError::Tasks(e.to_string()))?;
        let slot_costs = graph
            .tasks()
            .iter()
            .map(|t| t.power * slot_duration)
            .collect();
        Ok(Self { slot_costs, topo })
    }
}

/// One scenario of a batch: a trace and planner of its own, plus an
/// optional per-scenario predictor and fault harness. The node and
/// task set come from the [`BatchEngine`].
pub struct BatchScenario<'a> {
    trace: &'a SolarTrace,
    planner: Box<dyn PeriodPlanner + 'a>,
    predictor: Box<dyn SolarPredictor + Send + Sync + 'a>,
    harness: Option<&'a FaultHarness>,
}

impl<'a> BatchScenario<'a> {
    /// A scenario running `planner` against `trace` with the default
    /// WCMA predictor and no fault harness.
    pub fn new(trace: &'a SolarTrace, planner: Box<dyn PeriodPlanner + 'a>) -> Self {
        Self {
            trace,
            planner,
            predictor: Box::new(WcmaPredictor::default()),
            harness: None,
        }
    }

    /// Replaces the per-period energy predictor the fine-grained
    /// schedulers see (mirrors `Engine::with_predictor`).
    #[must_use]
    pub fn with_predictor(mut self, predictor: Box<dyn SolarPredictor + Send + Sync + 'a>) -> Self {
        self.predictor = predictor;
        self
    }

    /// Attaches a fault harness (mirrors `Engine::run_with_faults`).
    #[must_use]
    pub fn with_harness(mut self, harness: &'a FaultHarness) -> Self {
        self.harness = Some(harness);
        self
    }
}

/// Per-worker period scratch for one lockstep shard: feature rows,
/// pending decisions, group bookkeeping, the gathered input/output
/// matrices and the DBN forward scratch. Allocation-free in steady
/// state — every buffer is cleared and reused across periods, and a
/// scratch kept across [`BatchEngine::run_sharded_with`] calls carries
/// its warm capacity from one run (or fleet request) to the next.
#[derive(Default)]
pub struct BatchScratch {
    rows: Vec<Vec<f64>>,
    decisions: Vec<Option<PlanDecision>>,
    pending: Vec<(usize, Arc<Dbn>)>,
    grouped: Vec<bool>,
    members: Vec<usize>,
    inputs: Matrix,
    outputs: Matrix,
    predict: BatchPredictScratch,
}

/// The contiguous period range one [`shard_loop`] invocation executes:
/// `start..stop` in flat period indices. `stop: None` runs to the end
/// of the horizon and produces reports; `stop: Some(_)` pauses at that
/// boundary and produces checkpoints.
#[derive(Debug, Clone, Copy)]
struct Span {
    start: usize,
    stop: Option<usize>,
}

/// What one shard hands back: finished reports, or (when the span
/// stops early) per-scenario checkpoints in shard order.
enum ShardOutcome {
    Done(Vec<SimReport>),
    Paused(Vec<ScenarioCheckpoint>, Vec<PlannerCheckpoint>),
}

/// Runs one shard — a contiguous slice of scenarios — over `span` in
/// lockstep, reusing `scratch` across periods. This is the body both
/// the single-threaded [`BatchEngine::run`] and every sharded worker
/// execute; scenarios are independent, so a shard's reports are
/// byte-identical to the same scenarios' slice of a whole-batch run,
/// and a paused-then-resumed span is byte-identical to an
/// uninterrupted one.
fn shard_loop(
    node: &NodeConfig,
    graph: &TaskGraph,
    ctx: &Arc<PlanContext>,
    scenarios: &mut [BatchScenario<'_>],
    resume: Option<&[ScenarioCheckpoint]>,
    span: Span,
    scratch: &mut BatchScratch,
) -> Result<ShardOutcome, CoreError> {
    let grid = &node.grid;
    let b = scenarios.len();
    let mut states = Vec::with_capacity(b);
    match resume {
        Some(ckpts) => {
            for ckpt in ckpts {
                states.push(ScenarioState::restore(node, graph, ckpt)?);
            }
        }
        None => {
            for _ in 0..b {
                states.push(ScenarioState::new(node, graph)?);
            }
        }
    }
    // Mirror `run_with_faults`: an empty harness is no harness.
    let harnesses: Vec<Option<&FaultHarness>> = scenarios
        .iter()
        .map(|s| s.harness.filter(|h| !h.is_empty()))
        .collect();

    // Structure-of-arrays period scratch, reused across periods (and,
    // when the caller keeps the scratch, across runs).
    if scratch.rows.len() < b {
        scratch.rows.resize_with(b, Vec::new);
    }
    scratch.decisions.clear();
    scratch.decisions.resize(b, None);
    let BatchScratch {
        rows,
        decisions,
        pending,
        grouped,
        members,
        inputs,
        outputs,
        predict,
    } = scratch;

    let stop = span
        .stop
        .unwrap_or(grid.total_periods())
        .min(grid.total_periods());
    for flat in span.start..stop {
        let period = grid.period_at(flat);

        // Gather phase: per-period harness effects, then either a
        // batch feature row or (for decliners) the full sequential
        // plan() call.
        pending.clear();
        for (i, sc) in scenarios.iter_mut().enumerate() {
            let env = ScenarioEnv {
                node,
                graph,
                trace: sc.trace,
                predictor: sc.predictor.as_ref(),
                ctx,
                harness: harnesses[i],
            };
            states[i].pre_plan(&env, flat, sc.planner.as_mut())?;
            let obs = states[i].observation(&env, period);
            rows[i].clear();
            if sc.planner.batch_input(&obs, &mut rows[i]) {
                match sc.planner.batch_dbn() {
                    Some(dbn) => pending.push((i, dbn)),
                    None => {
                        return Err(CoreError::Config(
                            "planner accepted a batch slot without exposing a shared DBN".into(),
                        ))
                    }
                }
            } else {
                decisions[i] = Some(sc.planner.plan(&obs));
            }
        }

        // Inference phase: group pending scenarios by shared network
        // (Arc pointer identity) and run one batched forward per
        // group; each scenario then completes its decision from its
        // output row.
        grouped.clear();
        grouped.resize(pending.len(), false);
        for g0 in 0..pending.len() {
            if grouped[g0] {
                continue;
            }
            let dbn = Arc::clone(&pending[g0].1);
            members.clear();
            for (k, flag) in grouped.iter_mut().enumerate().skip(g0) {
                if !*flag && Arc::ptr_eq(&dbn, &pending[k].1) {
                    *flag = true;
                    members.push(k);
                }
            }
            inputs.reset(members.len(), dbn.input_dim());
            for (r, &k) in members.iter().enumerate() {
                inputs.row_mut(r).copy_from_slice(&rows[pending[k].0]);
            }
            dbn.predict_batch_into(inputs, predict, outputs)?;
            for (r, &k) in members.iter().enumerate() {
                let i = pending[k].0;
                let sc = &mut scenarios[i];
                let env = ScenarioEnv {
                    node,
                    graph,
                    trace: sc.trace,
                    predictor: sc.predictor.as_ref(),
                    ctx,
                    harness: harnesses[i],
                };
                let obs = states[i].observation(&env, period);
                decisions[i] = Some(sc.planner.plan_with_output(&obs, outputs.row(r)));
            }
        }

        // Advance phase: every scenario executes its period.
        for (i, sc) in scenarios.iter_mut().enumerate() {
            let env = ScenarioEnv {
                node,
                graph,
                trace: sc.trace,
                predictor: sc.predictor.as_ref(),
                ctx,
                harness: harnesses[i],
            };
            let decision = decisions[i].take().ok_or_else(|| {
                CoreError::Config("scenario reached the advance phase without a decision".into())
            })?;
            states[i].run_period(&env, period, sc.planner.as_mut(), decision)?;
        }
    }

    if span.stop.is_some() {
        // Freeze at the boundary instead of assembling reports; the
        // planner snapshot comes after the scenario snapshot so both
        // describe the exact same instant.
        let scenario_ckpts = states.iter().map(ScenarioState::checkpoint).collect();
        let planner_ckpts = scenarios
            .iter()
            .map(|sc| sc.planner.save_checkpoint())
            .collect();
        return Ok(ShardOutcome::Paused(scenario_ckpts, planner_ckpts));
    }

    let mut reports = Vec::with_capacity(b);
    for ((state, sc), harness) in states.into_iter().zip(scenarios.iter_mut()).zip(harnesses) {
        reports.push(state.into_report(sc.planner.as_mut(), harness));
    }
    Ok(ShardOutcome::Done(reports))
}

/// Outcome of [`BatchEngine::run_span_with`]: the batch either ran to
/// the end of the horizon (reports, in push order) or paused at the
/// requested period boundary (a resumable [`BatchCheckpoint`]).
#[derive(Debug)]
pub enum BatchRunState {
    /// Every scenario finished; one report per scenario in push order.
    Done(Vec<SimReport>),
    /// The batch froze at a period boundary.
    Paused(BatchCheckpoint),
}

/// Advances B independent scenarios in lockstep, batching DBN
/// inference across them. See the module docs for the design.
pub struct BatchEngine<'a> {
    node: &'a NodeConfig,
    graph: &'a TaskGraph,
    ctx: Arc<PlanContext>,
    scenarios: Vec<BatchScenario<'a>>,
}

impl<'a> BatchEngine<'a> {
    /// Creates an empty batch after validating the task set against the
    /// grid, and precomputes the shared [`PlanContext`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Tasks`] when the task set does not fit the
    /// period.
    pub fn new(node: &'a NodeConfig, graph: &'a TaskGraph) -> Result<Self, CoreError> {
        graph
            .validate(node.grid.period_duration())
            .map_err(|e| CoreError::Tasks(e.to_string()))?;
        let ctx = Arc::new(PlanContext::new(graph, node.grid.slot_duration())?);
        Ok(Self {
            node,
            graph,
            ctx,
            scenarios: Vec::new(),
        })
    }

    /// [`BatchEngine::new`] reusing an already-derived [`PlanContext`]
    /// — the long-lived fleet service derives the context once at
    /// startup and hands the same `Arc` to every request's engine.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Tasks`] when the task set does not fit the
    /// period.
    pub fn with_context(
        node: &'a NodeConfig,
        graph: &'a TaskGraph,
        ctx: Arc<PlanContext>,
    ) -> Result<Self, CoreError> {
        graph
            .validate(node.grid.period_duration())
            .map_err(|e| CoreError::Tasks(e.to_string()))?;
        Ok(Self {
            node,
            graph,
            ctx,
            scenarios: Vec::new(),
        })
    }

    /// Adds a scenario to the batch, attaching the shared plan context
    /// to its planner.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::TraceMismatch`] when the scenario's trace
    /// does not match the node's grid.
    pub fn push(&mut self, mut scenario: BatchScenario<'a>) -> Result<(), CoreError> {
        if scenario.trace.grid() != &self.node.grid {
            return Err(CoreError::TraceMismatch(format!(
                "scenario trace grid {:?} differs from node grid {:?}",
                scenario.trace.grid(),
                self.node.grid
            )));
        }
        scenario.planner.attach_context(&self.ctx);
        self.scenarios.push(scenario);
        Ok(())
    }

    /// Number of scenarios in the batch.
    pub fn len(&self) -> usize {
        self.scenarios.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.scenarios.is_empty()
    }

    /// The shared plan context.
    pub fn plan_context(&self) -> &Arc<PlanContext> {
        &self.ctx
    }

    /// Runs every scenario over the whole horizon in lockstep,
    /// returning one report per scenario in push order — byte-identical
    /// to running each scenario through `Engine::run_with_faults`.
    ///
    /// # Errors
    ///
    /// Returns the first [`CoreError`] any scenario produces (the same
    /// errors the sequential engine can return).
    pub fn run(self) -> Result<Vec<SimReport>, CoreError> {
        self.run_with_scratch(&mut BatchScratch::default())
    }

    /// [`BatchEngine::run`] with a caller-owned [`BatchScratch`], so a
    /// long-lived caller (the fleet service, a sweep loop) pays the
    /// buffer warm-up once and runs allocation-free thereafter.
    ///
    /// # Errors
    ///
    /// Returns the first [`CoreError`] any scenario produces.
    pub fn run_with_scratch(
        mut self,
        scratch: &mut BatchScratch,
    ) -> Result<Vec<SimReport>, CoreError> {
        match self.run_span_with(None, None, std::slice::from_mut(scratch))? {
            BatchRunState::Done(reports) => Ok(reports),
            BatchRunState::Paused(_) => Err(CoreError::Config(
                "full run paused without a stop period".into(),
            )),
        }
    }

    /// Partitions the batch into at most `shards` contiguous shards and
    /// runs them on the `helio-par` worker pool, one worker per shard
    /// with its own scratch. Reports come back in push order,
    /// byte-identical to [`BatchEngine::run`] for every shard count.
    ///
    /// # Errors
    ///
    /// Returns the first [`CoreError`] any shard produces.
    pub fn run_sharded(self, shards: usize) -> Result<Vec<SimReport>, CoreError> {
        let shards = shards.max(1).min(self.scenarios.len().max(1));
        let mut scratches: Vec<BatchScratch> = Vec::new();
        scratches.resize_with(shards, BatchScratch::default);
        self.run_sharded_with(&mut scratches)
    }

    /// [`BatchEngine::run_sharded`] with caller-owned per-worker
    /// scratches — one shard per scratch. The fleet service keeps one
    /// scratch per worker alive across requests, so steady-state
    /// requests run with zero per-request setup cost.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Config`] when `scratches` is empty and the
    /// batch is not, otherwise the first [`CoreError`] any shard
    /// produces.
    pub fn run_sharded_with(
        mut self,
        scratches: &mut [BatchScratch],
    ) -> Result<Vec<SimReport>, CoreError> {
        match self.run_span_with(None, None, scratches)? {
            BatchRunState::Done(reports) => Ok(reports),
            BatchRunState::Paused(_) => Err(CoreError::Config(
                "full run paused without a stop period".into(),
            )),
        }
    }

    /// Runs a contiguous span of periods — the one primitive behind
    /// every run/pause/resume combination. `resume: None` starts fresh
    /// at period 0; `Some(ckpt)` restores every scenario and planner
    /// from the checkpoint and continues at `ckpt.next_period`.
    /// `stop: None` runs to the end of the horizon and yields
    /// [`BatchRunState::Done`]; `Some(p)` freezes the batch at flat
    /// period `min(p, total)` and yields [`BatchRunState::Paused`]
    /// (a stop at or before the resume point captures the state
    /// unchanged). Scenarios are sharded across `scratches` exactly as
    /// in [`BatchEngine::run_sharded_with`], and any
    /// pause/resume/shard combination is byte-identical to one
    /// uninterrupted [`BatchEngine::run`].
    ///
    /// Worker panics are quarantined: a panicking planner surfaces as
    /// [`CoreError::WorkerPanic`] instead of unwinding through the
    /// pool.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Config`] when `scratches` is empty and the
    /// batch is not, or when `resume` does not match the batch (wrong
    /// scenario count, planner/checkpoint shape mismatch, period past
    /// the horizon); [`CoreError::WorkerPanic`] when a worker
    /// panicked; otherwise the first [`CoreError`] any shard produces.
    pub fn run_span_with(
        &mut self,
        resume: Option<&BatchCheckpoint>,
        stop: Option<usize>,
        scratches: &mut [BatchScratch],
    ) -> Result<BatchRunState, CoreError> {
        let b = self.scenarios.len();
        let total = self.node.grid.total_periods();
        let start = match resume {
            Some(ckpt) => {
                if ckpt.scenarios.len() != b || ckpt.planners.len() != b {
                    return Err(CoreError::Config(format!(
                        "checkpoint holds {} scenarios / {} planners but the batch has {b}",
                        ckpt.scenarios.len(),
                        ckpt.planners.len(),
                    )));
                }
                if ckpt.next_period > total {
                    return Err(CoreError::Config(format!(
                        "checkpoint resumes at period {} but the horizon has {total}",
                        ckpt.next_period
                    )));
                }
                for (sc, pc) in self.scenarios.iter_mut().zip(&ckpt.planners) {
                    sc.planner
                        .restore_checkpoint(pc)
                        .map_err(CoreError::Config)?;
                }
                ckpt.next_period
            }
            None => 0,
        };
        let stop = stop.map(|p| p.min(total));
        if b == 0 {
            return Ok(match stop {
                Some(p) => BatchRunState::Paused(BatchCheckpoint {
                    next_period: p.max(start),
                    scenarios: Vec::new(),
                    planners: Vec::new(),
                }),
                None => BatchRunState::Done(Vec::new()),
            });
        }
        if scratches.is_empty() {
            return Err(CoreError::Config(
                "sharded run needs at least one worker scratch".into(),
            ));
        }
        // Never split below one scenario per shard: chunk boundaries
        // stay deterministic and idle workers are skipped entirely.
        let shards = scratches.len().min(b);
        let chunk = b.div_ceil(shards).max(1);
        let span = Span { start, stop };
        let node = self.node;
        let graph = self.graph;
        let ctx = &self.ctx;
        let resume_states = resume.map(|c| c.scenarios.as_slice());
        let outcomes = helio_par::par_zip_chunks_mut_quarantine(
            &mut self.scenarios,
            &mut scratches[..shards],
            |ci, shard, scratch| {
                // Sub-slice the checkpoint with the same deterministic
                // partition the pool applied to the scenarios.
                let lo = ci * chunk;
                let sub = resume_states.map(|r| &r[lo..lo + shard.len()]);
                shard_loop(node, graph, ctx, shard, sub, span, scratch)
            },
        );
        let mut reports = Vec::new();
        let mut scenario_ckpts = Vec::new();
        let mut planner_ckpts = Vec::new();
        for outcome in outcomes {
            match outcome {
                Ok(Ok(ShardOutcome::Done(r))) => reports.extend(r),
                Ok(Ok(ShardOutcome::Paused(s, p))) => {
                    scenario_ckpts.extend(s);
                    planner_ckpts.extend(p);
                }
                Ok(Err(e)) => return Err(e),
                Err(payload) => {
                    return Err(CoreError::WorkerPanic(
                        helio_par::panic_message(&payload).to_string(),
                    ))
                }
            }
        }
        match stop {
            Some(p) => Ok(BatchRunState::Paused(BatchCheckpoint {
                next_period: p.max(start),
                scenarios: scenario_ckpts,
                planners: planner_ckpts,
            })),
            None => Ok(BatchRunState::Done(reports)),
        }
    }

    /// Runs periods `0..stop` and freezes the batch there, returning a
    /// serializable [`BatchCheckpoint`]. `stop` at or past the end of
    /// the horizon runs the whole simulation loop and freezes just
    /// before report assembly.
    ///
    /// # Errors
    ///
    /// Same conditions as [`BatchEngine::run_span_with`].
    pub fn run_until(&mut self, stop: usize) -> Result<BatchCheckpoint, CoreError> {
        let mut scratch = BatchScratch::default();
        match self.run_span_with(None, Some(stop), std::slice::from_mut(&mut scratch))? {
            BatchRunState::Paused(ckpt) => Ok(ckpt),
            BatchRunState::Done(_) => Err(CoreError::Config(
                "bounded run completed without pausing".into(),
            )),
        }
    }

    /// Continues a frozen batch up to (not including) period `stop`,
    /// returning the new checkpoint. Restoring is idempotent: resuming
    /// from a just-taken checkpoint and stopping immediately hands the
    /// same state back.
    ///
    /// # Errors
    ///
    /// Same conditions as [`BatchEngine::run_span_with`].
    pub fn resume_until(
        &mut self,
        ckpt: &BatchCheckpoint,
        stop: usize,
    ) -> Result<BatchCheckpoint, CoreError> {
        let mut scratch = BatchScratch::default();
        match self.run_span_with(Some(ckpt), Some(stop), std::slice::from_mut(&mut scratch))? {
            BatchRunState::Paused(next) => Ok(next),
            BatchRunState::Done(_) => Err(CoreError::Config(
                "bounded run completed without pausing".into(),
            )),
        }
    }

    /// Restores every scenario from `ckpt` and runs the rest of the
    /// horizon to completion — byte-identical to the reports an
    /// uninterrupted [`BatchEngine::run`] would have produced.
    ///
    /// # Errors
    ///
    /// Same conditions as [`BatchEngine::run_span_with`].
    pub fn run_from_checkpoint(
        mut self,
        ckpt: &BatchCheckpoint,
    ) -> Result<Vec<SimReport>, CoreError> {
        let mut scratch = BatchScratch::default();
        match self.run_span_with(Some(ckpt), None, std::slice::from_mut(&mut scratch))? {
            BatchRunState::Done(reports) => Ok(reports),
            BatchRunState::Paused(_) => Err(CoreError::Config(
                "full run paused without a stop period".into(),
            )),
        }
    }

    /// [`BatchEngine::run_from_checkpoint`] sharded across caller-owned
    /// scratches, one shard per scratch (the fleet service resumes with
    /// its long-lived worker scratches).
    ///
    /// # Errors
    ///
    /// Same conditions as [`BatchEngine::run_span_with`].
    pub fn run_from_checkpoint_sharded_with(
        mut self,
        ckpt: &BatchCheckpoint,
        scratches: &mut [BatchScratch],
    ) -> Result<Vec<SimReport>, CoreError> {
        match self.run_span_with(Some(ckpt), None, scratches)? {
            BatchRunState::Done(reports) => Ok(reports),
            BatchRunState::Paused(_) => Err(CoreError::Config(
                "full run paused without a stop period".into(),
            )),
        }
    }

    /// [`BatchEngine::run_sharded`] across every configured worker
    /// (`HELIO_THREADS` / `HELIO_SERIAL`, else available parallelism).
    ///
    /// # Errors
    ///
    /// Returns the first [`CoreError`] any shard produces.
    pub fn run_parallel(self) -> Result<Vec<SimReport>, CoreError> {
        let shards = helio_par::configured_threads();
        self.run_sharded(shards)
    }

    /// Builds and runs batches of at most `chunk` scenarios over
    /// `0..count`, fanning the batches out across `helio-par` workers;
    /// results come back in scenario order. `make(i)` constructs the
    /// `i`-th scenario (it is called from worker threads).
    ///
    /// # Errors
    ///
    /// Returns the first [`CoreError`] any batch produces.
    pub fn run_chunked<F>(
        node: &'a NodeConfig,
        graph: &'a TaskGraph,
        count: usize,
        chunk: usize,
        make: F,
    ) -> Result<Vec<SimReport>, CoreError>
    where
        F: Fn(usize) -> BatchScenario<'a> + Sync,
    {
        let batches = helio_par::par_map_ranges(count, chunk, |range| {
            let mut engine = BatchEngine::new(node, graph)?;
            for i in range {
                engine.push(make(i))?;
            }
            engine.run()
        });
        let mut all = Vec::with_capacity(count);
        for batch in batches {
            all.extend(batch?);
        }
        Ok(all)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NodeConfig;
    use crate::engine::Engine;
    use crate::online::{ProposedPlanner, SwitchRule};
    use crate::planner::{FixedPlanner, Pattern, PlannerObservation};
    use crate::resilient::ResilientPlanner;
    use helio_common::time::TimeGrid;
    use helio_common::units::{Farads, Seconds};
    use helio_solar::{DayArchetype, NoisyOracle, SolarPanel, SolarTrace, TraceBuilder};
    use helio_tasks::benchmarks;

    fn grid() -> TimeGrid {
        TimeGrid::new(2, 24, 10, Seconds::new(60.0)).unwrap()
    }

    fn node() -> NodeConfig {
        NodeConfig::builder(grid())
            .capacitors(&[Farads::new(2.0), Farads::new(15.0)])
            .build()
            .unwrap()
    }

    fn trace(seed: u64) -> SolarTrace {
        TraceBuilder::new(grid(), SolarPanel::paper_panel())
            .seed(seed)
            .days(&[DayArchetype::Clear, DayArchetype::BrokenClouds])
            .build()
    }

    fn tiny_dbn(graph: &TaskGraph) -> Arc<Dbn> {
        let in_dim = 10 + 2 + 1;
        let inputs: Vec<Vec<f64>> = (0..40)
            .map(|i| {
                let mut v = vec![(i % 7) as f64 * 10.0; in_dim];
                v[in_dim - 1] = 0.3;
                v
            })
            .collect();
        let targets: Vec<Vec<f64>> = (0..40)
            .map(|i| {
                let mut v = vec![(i % 2) as f64, 1.0];
                v.extend(vec![1.0; graph.len()]);
                v
            })
            .collect();
        Arc::new(Dbn::train(&inputs, &targets, &helio_ann::DbnConfig::small(2)).unwrap())
    }

    fn dbn_planner(dbn: &Arc<Dbn>) -> ProposedPlanner {
        ProposedPlanner::from_shared_dbn(Arc::clone(dbn), 0.5, SwitchRule::default())
    }

    #[test]
    fn batch_is_byte_identical_to_sequential_mixed_planners() {
        let node = node();
        let g = benchmarks::ecg();
        let dbn = tiny_dbn(&g);
        let traces: Vec<SolarTrace> = (0..5).map(|s| trace(11 + s)).collect();

        let mut engine = BatchEngine::new(&node, &g).unwrap();
        engine
            .push(BatchScenario::new(
                &traces[0],
                Box::new(FixedPlanner::new(Pattern::Asap, 0)),
            ))
            .unwrap();
        engine
            .push(BatchScenario::new(&traces[1], Box::new(dbn_planner(&dbn))))
            .unwrap();
        engine
            .push(BatchScenario::new(
                &traces[2],
                Box::new(ResilientPlanner::new(Box::new(dbn_planner(&dbn)))),
            ))
            .unwrap();
        engine
            .push(BatchScenario::new(
                &traces[3],
                Box::new(ProposedPlanner::mpc(
                    Box::new(NoisyOracle::perfect()),
                    24,
                    crate::longterm::DpConfig {
                        voltage_buckets: 4,
                        keep_per_level: 1,
                    },
                    0.5,
                    SwitchRule::default(),
                )),
            ))
            .unwrap();
        engine
            .push(BatchScenario::new(&traces[4], Box::new(dbn_planner(&dbn))))
            .unwrap();
        assert_eq!(engine.len(), 5);
        let batched = engine.run().unwrap();

        let sequential: Vec<SimReport> = {
            let mut out = Vec::new();
            let mut planners: Vec<Box<dyn PeriodPlanner>> = vec![
                Box::new(FixedPlanner::new(Pattern::Asap, 0)),
                Box::new(dbn_planner(&dbn)),
                Box::new(ResilientPlanner::new(Box::new(dbn_planner(&dbn)))),
                Box::new(ProposedPlanner::mpc(
                    Box::new(NoisyOracle::perfect()),
                    24,
                    crate::longterm::DpConfig {
                        voltage_buckets: 4,
                        keep_per_level: 1,
                    },
                    0.5,
                    SwitchRule::default(),
                )),
                Box::new(dbn_planner(&dbn)),
            ];
            for (t, p) in traces.iter().zip(planners.iter_mut()) {
                out.push(Engine::new(&node, &g, t).unwrap().run(p.as_mut()).unwrap());
            }
            out
        };

        assert_eq!(batched.len(), sequential.len());
        for (i, (b, s)) in batched.iter().zip(&sequential).enumerate() {
            assert_eq!(
                serde_json::to_string(b).unwrap(),
                serde_json::to_string(s).unwrap(),
                "scenario {i} diverged"
            );
        }
    }

    #[test]
    fn batch_compiled_planners_match_sequential() {
        // Compiled backends decline batch slots, so the engine routes
        // them through the per-scenario fallback — batched output must
        // stay byte-identical to sequential runs, resilient wrap
        // included.
        use helio_ann::{CompiledDbn, CompiledTier};
        let node = node();
        let g = benchmarks::ecg();
        let dbn = tiny_dbn(&g);
        let compiled = Arc::new(CompiledDbn::compile(&dbn, CompiledTier::F32).unwrap());
        let compiled_i8 = Arc::new(CompiledDbn::compile(&dbn, CompiledTier::Int8).unwrap());
        let traces: Vec<SolarTrace> = (0..3).map(|s| trace(23 + s)).collect();
        let make = |i: usize| -> Box<dyn PeriodPlanner> {
            match i {
                0 => Box::new(ProposedPlanner::from_compiled_dbn(
                    Arc::clone(&compiled),
                    0.5,
                    SwitchRule::default(),
                )),
                1 => Box::new(ResilientPlanner::new(Box::new(
                    ProposedPlanner::from_compiled_dbn(
                        Arc::clone(&compiled),
                        0.5,
                        SwitchRule::default(),
                    ),
                ))),
                _ => Box::new(ProposedPlanner::from_compiled_dbn(
                    Arc::clone(&compiled_i8),
                    0.5,
                    SwitchRule::default(),
                )),
            }
        };

        let mut engine = BatchEngine::new(&node, &g).unwrap();
        for (i, t) in traces.iter().enumerate() {
            engine.push(BatchScenario::new(t, make(i))).unwrap();
        }
        let batched = engine.run().unwrap();

        for (i, (t, b)) in traces.iter().zip(&batched).enumerate() {
            let mut p = make(i);
            let s = Engine::new(&node, &g, t).unwrap().run(p.as_mut()).unwrap();
            assert_eq!(
                serde_json::to_string(b).unwrap(),
                serde_json::to_string(&s).unwrap(),
                "compiled scenario {i} diverged"
            );
        }
    }

    #[test]
    fn batch_matches_sequential_under_faults() {
        let node = node();
        let g = benchmarks::ecg();
        let dbn = tiny_dbn(&g);
        let t = trace(23);
        let plan = helio_faults::FaultPlan {
            seed: 42,
            random_blackouts: Some(helio_faults::RandomBlackouts {
                per_period_probability: 0.2,
                min_periods: 1,
                max_periods: 3,
            }),
            dbn: vec![helio_faults::DbnFault {
                window: helio_faults::PeriodWindow::new(5, 6),
                mode: helio_faults::DbnFaultMode::Nan,
            }],
            ..helio_faults::FaultPlan::default()
        };
        let harness = helio_faults::FaultHarness::new(&plan, 48, 24);
        let empty = helio_faults::FaultHarness::empty();

        let mut engine = BatchEngine::new(&node, &g).unwrap();
        engine
            .push(BatchScenario::new(&t, Box::new(dbn_planner(&dbn))).with_harness(&harness))
            .unwrap();
        engine
            .push(BatchScenario::new(&t, Box::new(dbn_planner(&dbn))).with_harness(&empty))
            .unwrap();
        engine
            .push(
                BatchScenario::new(
                    &t,
                    Box::new(ResilientPlanner::new(Box::new(dbn_planner(&dbn)))),
                )
                .with_harness(&harness),
            )
            .unwrap();
        let batched = engine.run().unwrap();

        let seq0 = Engine::new(&node, &g, &t)
            .unwrap()
            .run_with_faults(&mut dbn_planner(&dbn), Some(&harness))
            .unwrap();
        let seq1 = Engine::new(&node, &g, &t)
            .unwrap()
            .run_with_faults(&mut dbn_planner(&dbn), Some(&empty))
            .unwrap();
        let mut resilient = ResilientPlanner::new(Box::new(dbn_planner(&dbn)));
        let seq2 = Engine::new(&node, &g, &t)
            .unwrap()
            .run_with_faults(&mut resilient, Some(&harness))
            .unwrap();

        for (b, s) in batched.iter().zip([&seq0, &seq1, &seq2]) {
            assert_eq!(
                serde_json::to_string(b).unwrap(),
                serde_json::to_string(s).unwrap()
            );
        }
    }

    #[test]
    fn run_chunked_matches_single_batch() {
        let node = node();
        let g = benchmarks::ecg();
        let dbn = tiny_dbn(&g);
        let traces: Vec<SolarTrace> = (0..6).map(|s| trace(100 + s)).collect();
        let make = |i: usize| BatchScenario::new(&traces[i], Box::new(dbn_planner(&dbn)));
        let chunked = BatchEngine::run_chunked(&node, &g, traces.len(), 2, make).unwrap();
        let mut engine = BatchEngine::new(&node, &g).unwrap();
        for t in &traces {
            engine
                .push(BatchScenario::new(t, Box::new(dbn_planner(&dbn))))
                .unwrap();
        }
        let whole = engine.run().unwrap();
        assert_eq!(chunked, whole);
    }

    #[test]
    fn sharded_matches_run_for_every_shard_count() {
        let node = node();
        let g = benchmarks::ecg();
        let dbn = tiny_dbn(&g);
        let traces: Vec<SolarTrace> = (0..5).map(|s| trace(31 + s)).collect();
        let build = |ctx: Option<Arc<PlanContext>>| {
            let mut engine = match ctx {
                Some(ctx) => BatchEngine::with_context(&node, &g, ctx).unwrap(),
                None => BatchEngine::new(&node, &g).unwrap(),
            };
            for (i, t) in traces.iter().enumerate() {
                let planner: Box<dyn PeriodPlanner> = match i % 3 {
                    0 => Box::new(FixedPlanner::new(Pattern::Inter, 1)),
                    1 => Box::new(dbn_planner(&dbn)),
                    _ => Box::new(ResilientPlanner::new(Box::new(dbn_planner(&dbn)))),
                };
                engine.push(BatchScenario::new(t, planner)).unwrap();
            }
            engine
        };
        let whole = build(None).run().unwrap();
        let shared_ctx = Arc::clone(build(None).plan_context());
        for shards in [1, 2, 3, 5, 8] {
            let sharded = build(Some(Arc::clone(&shared_ctx)))
                .run_sharded(shards)
                .unwrap();
            assert_eq!(sharded.len(), whole.len());
            for (i, (a, b)) in sharded.iter().zip(&whole).enumerate() {
                assert_eq!(
                    serde_json::to_string(a).unwrap(),
                    serde_json::to_string(b).unwrap(),
                    "scenario {i} diverged at {shards} shards"
                );
            }
        }
        let parallel = build(None).run_parallel().unwrap();
        assert_eq!(parallel, whole);
    }

    #[test]
    fn scratches_are_reusable_across_runs() {
        let node = node();
        let g = benchmarks::ecg();
        let dbn = tiny_dbn(&g);
        let traces: Vec<SolarTrace> = (0..4).map(|s| trace(77 + s)).collect();
        let build = || {
            let mut engine = BatchEngine::new(&node, &g).unwrap();
            for t in &traces {
                engine
                    .push(BatchScenario::new(t, Box::new(dbn_planner(&dbn))))
                    .unwrap();
            }
            engine
        };
        let whole = build().run().unwrap();
        let mut scratches = [BatchScratch::default(), BatchScratch::default()];
        // Same scratches, two consecutive runs: warm buffers must not
        // change the output.
        for _ in 0..2 {
            let reports = build().run_sharded_with(&mut scratches).unwrap();
            assert_eq!(reports, whole);
        }
        let err = build().run_sharded_with(&mut []);
        assert!(matches!(err, Err(CoreError::Config(_))));
    }

    fn mixed_engine<'a>(
        node: &'a NodeConfig,
        g: &'a TaskGraph,
        dbn: &Arc<Dbn>,
        traces: &'a [SolarTrace],
        harness: &'a helio_faults::FaultHarness,
    ) -> BatchEngine<'a> {
        let mut engine = BatchEngine::new(node, g).unwrap();
        for (i, t) in traces.iter().enumerate() {
            let planner: Box<dyn PeriodPlanner> = match i % 4 {
                0 => Box::new(FixedPlanner::new(Pattern::Inter, 1)),
                1 => Box::new(dbn_planner(dbn)),
                2 => Box::new(ResilientPlanner::new(Box::new(dbn_planner(dbn))).with_probation(3)),
                _ => Box::new(ProposedPlanner::mpc(
                    Box::new(NoisyOracle::perfect()),
                    24,
                    crate::longterm::DpConfig {
                        voltage_buckets: 4,
                        keep_per_level: 1,
                    },
                    0.5,
                    SwitchRule::default(),
                )),
            };
            let mut sc = BatchScenario::new(t, planner);
            if i % 2 == 1 {
                sc = sc.with_harness(harness);
            }
            engine.push(sc).unwrap();
        }
        engine
    }

    #[test]
    fn checkpoint_resume_is_byte_identical_at_any_kill_period() {
        let node = node();
        let g = benchmarks::ecg();
        let dbn = tiny_dbn(&g);
        let traces: Vec<SolarTrace> = (0..4).map(|s| trace(51 + s)).collect();
        let plan = helio_faults::FaultPlan {
            seed: 9,
            dbn: vec![helio_faults::DbnFault {
                window: helio_faults::PeriodWindow::new(10, 14),
                mode: helio_faults::DbnFaultMode::Nan,
            }],
            ..helio_faults::FaultPlan::default()
        };
        let harness = helio_faults::FaultHarness::new(&plan, 48, 24);
        let whole = mixed_engine(&node, &g, &dbn, &traces, &harness)
            .run()
            .unwrap();
        let total = node.grid.total_periods();
        for kill in [0, 1, 17, total - 1, total] {
            // Interrupt at the boundary, round-trip the checkpoint
            // through JSON (as the fleet's on-disk resume does), then
            // finish on a fresh engine with a different shard count.
            let mut engine = mixed_engine(&node, &g, &dbn, &traces, &harness);
            let ckpt = engine.run_until(kill).unwrap();
            assert_eq!(ckpt.next_period, kill);
            let json = serde_json::to_string(&ckpt).unwrap();
            let restored: crate::checkpoint::BatchCheckpoint = serde_json::from_str(&json).unwrap();
            assert_eq!(restored, ckpt);
            let mut scratches = [BatchScratch::default(), BatchScratch::default()];
            let resumed = mixed_engine(&node, &g, &dbn, &traces, &harness)
                .run_from_checkpoint_sharded_with(&restored, &mut scratches)
                .unwrap();
            for (i, (a, b)) in resumed.iter().zip(&whole).enumerate() {
                assert_eq!(
                    serde_json::to_string(a).unwrap(),
                    serde_json::to_string(b).unwrap(),
                    "scenario {i} diverged after kill at period {kill}"
                );
            }
        }
    }

    #[test]
    fn segmented_resume_matches_uninterrupted_run() {
        // Re-freezing every few periods (the fleet's periodic
        // checkpointing) must also be exact, including resuming a
        // checkpoint into the same engine that produced it.
        let node = node();
        let g = benchmarks::ecg();
        let dbn = tiny_dbn(&g);
        let traces: Vec<SolarTrace> = (0..3).map(|s| trace(91 + s)).collect();
        let harness = helio_faults::FaultHarness::empty();
        let whole = mixed_engine(&node, &g, &dbn, &traces, &harness)
            .run()
            .unwrap();
        let total = node.grid.total_periods();
        let mut engine = mixed_engine(&node, &g, &dbn, &traces, &harness);
        let mut ckpt = engine.run_until(7).unwrap();
        let mut at = 7;
        while at < total {
            at = (at + 13).min(total);
            ckpt = engine.resume_until(&ckpt, at).unwrap();
            assert_eq!(ckpt.next_period, at);
        }
        let resumed = engine
            .run_span_with(Some(&ckpt), None, &mut [BatchScratch::default()])
            .unwrap();
        let BatchRunState::Done(resumed) = resumed else {
            panic!("expected completion");
        };
        assert_eq!(resumed, whole);
    }

    #[test]
    fn checkpoint_rejects_mismatched_batches() {
        let node = node();
        let g = benchmarks::ecg();
        let dbn = tiny_dbn(&g);
        let traces: Vec<SolarTrace> = (0..3).map(|s| trace(71 + s)).collect();
        let harness = helio_faults::FaultHarness::empty();
        let mut engine = mixed_engine(&node, &g, &dbn, &traces, &harness);
        let mut ckpt = engine.run_until(5).unwrap();

        // Wrong scenario count.
        let mut short = ckpt.clone();
        short.scenarios.pop();
        short.planners.pop();
        let err = mixed_engine(&node, &g, &dbn, &traces, &harness).run_from_checkpoint(&short);
        assert!(matches!(err, Err(CoreError::Config(_))));

        // Planner shape mismatch: rotate the planner checkpoints so a
        // fixed planner receives a proposed snapshot.
        let mut rotated = ckpt.clone();
        rotated.planners.rotate_left(1);
        let err = mixed_engine(&node, &g, &dbn, &traces, &harness).run_from_checkpoint(&rotated);
        assert!(matches!(err, Err(CoreError::Config(_))));

        // Period past the horizon.
        ckpt.next_period = node.grid.total_periods() + 1;
        let err = mixed_engine(&node, &g, &dbn, &traces, &harness).run_from_checkpoint(&ckpt);
        assert!(matches!(err, Err(CoreError::Config(_))));
    }

    #[test]
    fn worker_panic_is_quarantined_into_an_error() {
        struct BombPlanner;
        impl PeriodPlanner for BombPlanner {
            fn name(&self) -> &'static str {
                "bomb"
            }
            fn plan(&mut self, obs: &PlannerObservation<'_>) -> PlanDecision {
                assert!(
                    obs.grid.period_index(obs.period) < 3,
                    "planner exploded at period 3"
                );
                PlanDecision::everything(Pattern::Asap)
            }
        }
        let node = node();
        let g = benchmarks::ecg();
        let t = trace(5);
        let mut engine = BatchEngine::new(&node, &g).unwrap();
        engine
            .push(BatchScenario::new(&t, Box::new(BombPlanner)))
            .unwrap();
        let err = engine.run();
        match err {
            Err(CoreError::WorkerPanic(msg)) => {
                assert!(msg.contains("planner exploded"), "message was {msg}")
            }
            other => panic!("expected WorkerPanic, got {other:?}"),
        }
    }

    #[test]
    fn push_rejects_mismatched_trace() {
        let node = node();
        let g = benchmarks::ecg();
        let other_grid = TimeGrid::new(1, 24, 10, Seconds::new(60.0)).unwrap();
        let wrong = TraceBuilder::new(other_grid, SolarPanel::paper_panel())
            .seed(1)
            .days(&[DayArchetype::Clear])
            .build();
        let mut engine = BatchEngine::new(&node, &g).unwrap();
        assert!(engine.is_empty());
        let err = engine.push(BatchScenario::new(
            &wrong,
            Box::new(FixedPlanner::new(Pattern::Asap, 0)),
        ));
        assert!(matches!(err, Err(CoreError::TraceMismatch(_))));
    }
}
