//! Lockstep batched simulation of many independent scenarios.
//!
//! Every sweep in the experiment suite runs B scenarios that share one
//! node configuration and task set but differ in trace, planner, seed
//! or fault plan. Running them one [`Engine`](crate::engine::Engine)
//! at a time wastes the structure twice: per-scenario precomputation
//! (slot costs, topological order) is rebuilt B times, and the DBN
//! backend pays B separate matrix–vector forwards per period when one
//! `B × in` matrix product would do.
//!
//! [`BatchEngine`] advances B scenarios period-by-period in lockstep.
//! Per-scenario mutable state lives in a structure-of-arrays `Vec` of
//! scenario states; immutable cross-scenario precomputation is built
//! once behind an [`Arc`]ed [`PlanContext`]. At each period boundary
//! the engine gathers the B DBN feature vectors into one matrix
//! (grouping scenarios by `Arc` pointer identity of their shared
//! network), runs a single batched forward per group, and hands each
//! scenario its output row. Scenarios whose planner declines the batch
//! slot — MPC backends, fixed baselines, demoted
//! [`ResilientPlanner`](crate::resilient::ResilientPlanner)s, periods
//! with an injected `Unavailable` fault — fall back to a plain
//! [`PeriodPlanner::plan`] call for that period.
//!
//! Correctness is absolute: because the batched forward is bitwise
//! identical to per-sample inference and every other step reuses the
//! sequential engine's own period step, a batched run is byte-identical
//! to B sequential [`Engine::run`](crate::engine::Engine::run) calls.

use std::sync::Arc;

use helio_ann::{BatchPredictScratch, Dbn, Matrix};
use helio_common::units::{Joules, Seconds};
use helio_faults::FaultHarness;
use helio_solar::{SolarPredictor, SolarTrace, WcmaPredictor};
use helio_tasks::{TaskGraph, TaskId};

use crate::config::NodeConfig;
use crate::engine::{ScenarioEnv, ScenarioState};
use crate::error::CoreError;
use crate::metrics::SimReport;
use crate::planner::{PeriodPlanner, PlanDecision};

/// Immutable precomputation shared by every scenario in a batch (and,
/// per run, by the sequential engine): quantities that depend only on
/// the task set and grid, never on scenario state.
#[derive(Debug, Clone)]
pub struct PlanContext {
    /// Energy one slot of each task costs (`power × slot_duration`),
    /// indexed by task.
    pub slot_costs: Vec<Joules>,
    /// A topological order of the task graph (the admission-closure
    /// order the DBN planner walks every period).
    pub topo: Vec<TaskId>,
}

impl PlanContext {
    /// Precomputes the context for `graph` on `slot_duration` slots.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Tasks`] when the graph is cyclic.
    pub fn new(graph: &TaskGraph, slot_duration: Seconds) -> Result<Self, CoreError> {
        let topo = graph
            .topological_order()
            .map_err(|e| CoreError::Tasks(e.to_string()))?;
        let slot_costs = graph
            .tasks()
            .iter()
            .map(|t| t.power * slot_duration)
            .collect();
        Ok(Self { slot_costs, topo })
    }
}

/// One scenario of a batch: a trace and planner of its own, plus an
/// optional per-scenario predictor and fault harness. The node and
/// task set come from the [`BatchEngine`].
pub struct BatchScenario<'a> {
    trace: &'a SolarTrace,
    planner: Box<dyn PeriodPlanner + 'a>,
    predictor: Box<dyn SolarPredictor + Send + Sync + 'a>,
    harness: Option<&'a FaultHarness>,
}

impl<'a> BatchScenario<'a> {
    /// A scenario running `planner` against `trace` with the default
    /// WCMA predictor and no fault harness.
    pub fn new(trace: &'a SolarTrace, planner: Box<dyn PeriodPlanner + 'a>) -> Self {
        Self {
            trace,
            planner,
            predictor: Box::new(WcmaPredictor::default()),
            harness: None,
        }
    }

    /// Replaces the per-period energy predictor the fine-grained
    /// schedulers see (mirrors `Engine::with_predictor`).
    #[must_use]
    pub fn with_predictor(mut self, predictor: Box<dyn SolarPredictor + Send + Sync + 'a>) -> Self {
        self.predictor = predictor;
        self
    }

    /// Attaches a fault harness (mirrors `Engine::run_with_faults`).
    #[must_use]
    pub fn with_harness(mut self, harness: &'a FaultHarness) -> Self {
        self.harness = Some(harness);
        self
    }
}

/// Advances B independent scenarios in lockstep, batching DBN
/// inference across them. See the module docs for the design.
pub struct BatchEngine<'a> {
    node: &'a NodeConfig,
    graph: &'a TaskGraph,
    ctx: Arc<PlanContext>,
    scenarios: Vec<BatchScenario<'a>>,
}

impl<'a> BatchEngine<'a> {
    /// Creates an empty batch after validating the task set against the
    /// grid, and precomputes the shared [`PlanContext`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Tasks`] when the task set does not fit the
    /// period.
    pub fn new(node: &'a NodeConfig, graph: &'a TaskGraph) -> Result<Self, CoreError> {
        graph
            .validate(node.grid.period_duration())
            .map_err(|e| CoreError::Tasks(e.to_string()))?;
        let ctx = Arc::new(PlanContext::new(graph, node.grid.slot_duration())?);
        Ok(Self {
            node,
            graph,
            ctx,
            scenarios: Vec::new(),
        })
    }

    /// Adds a scenario to the batch, attaching the shared plan context
    /// to its planner.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::TraceMismatch`] when the scenario's trace
    /// does not match the node's grid.
    pub fn push(&mut self, mut scenario: BatchScenario<'a>) -> Result<(), CoreError> {
        if scenario.trace.grid() != &self.node.grid {
            return Err(CoreError::TraceMismatch(format!(
                "scenario trace grid {:?} differs from node grid {:?}",
                scenario.trace.grid(),
                self.node.grid
            )));
        }
        scenario.planner.attach_context(&self.ctx);
        self.scenarios.push(scenario);
        Ok(())
    }

    /// Number of scenarios in the batch.
    pub fn len(&self) -> usize {
        self.scenarios.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.scenarios.is_empty()
    }

    /// The shared plan context.
    pub fn plan_context(&self) -> &Arc<PlanContext> {
        &self.ctx
    }

    /// Runs every scenario over the whole horizon in lockstep,
    /// returning one report per scenario in push order — byte-identical
    /// to running each scenario through `Engine::run_with_faults`.
    ///
    /// # Errors
    ///
    /// Returns the first [`CoreError`] any scenario produces (the same
    /// errors the sequential engine can return).
    pub fn run(mut self) -> Result<Vec<SimReport>, CoreError> {
        let grid = &self.node.grid;
        let b = self.scenarios.len();
        let mut states = Vec::with_capacity(b);
        for _ in 0..b {
            states.push(ScenarioState::new(self.node, self.graph)?);
        }
        // Mirror `run_with_faults`: an empty harness is no harness.
        let harnesses: Vec<Option<&FaultHarness>> = self
            .scenarios
            .iter()
            .map(|s| s.harness.filter(|h| !h.is_empty()))
            .collect();

        // Structure-of-arrays period scratch, reused across periods.
        let mut rows: Vec<Vec<f64>> = vec![Vec::new(); b];
        let mut decisions: Vec<Option<PlanDecision>> = vec![None; b];
        let mut pending: Vec<(usize, Arc<Dbn>)> = Vec::new();
        let mut grouped: Vec<bool> = Vec::new();
        let mut members: Vec<usize> = Vec::new();
        let mut inputs = Matrix::default();
        let mut outputs = Matrix::default();
        let mut scratch = BatchPredictScratch::default();

        for period in grid.periods() {
            let flat = grid.period_index(period);

            // Gather phase: per-period harness effects, then either a
            // batch feature row or (for decliners) the full sequential
            // plan() call.
            pending.clear();
            for (i, sc) in self.scenarios.iter_mut().enumerate() {
                let env = ScenarioEnv {
                    node: self.node,
                    graph: self.graph,
                    trace: sc.trace,
                    predictor: sc.predictor.as_ref(),
                    ctx: &self.ctx,
                    harness: harnesses[i],
                };
                states[i].pre_plan(&env, flat, sc.planner.as_mut())?;
                let obs = states[i].observation(&env, period);
                rows[i].clear();
                if sc.planner.batch_input(&obs, &mut rows[i]) {
                    match sc.planner.batch_dbn() {
                        Some(dbn) => pending.push((i, dbn)),
                        None => {
                            return Err(CoreError::Config(
                                "planner accepted a batch slot without exposing a shared DBN"
                                    .into(),
                            ))
                        }
                    }
                } else {
                    decisions[i] = Some(sc.planner.plan(&obs));
                }
            }

            // Inference phase: group pending scenarios by shared
            // network (Arc pointer identity) and run one batched
            // forward per group; each scenario then completes its
            // decision from its output row.
            grouped.clear();
            grouped.resize(pending.len(), false);
            for g0 in 0..pending.len() {
                if grouped[g0] {
                    continue;
                }
                let dbn = Arc::clone(&pending[g0].1);
                members.clear();
                for (k, flag) in grouped.iter_mut().enumerate().skip(g0) {
                    if !*flag && Arc::ptr_eq(&dbn, &pending[k].1) {
                        *flag = true;
                        members.push(k);
                    }
                }
                inputs.reset(members.len(), dbn.input_dim());
                for (r, &k) in members.iter().enumerate() {
                    inputs.row_mut(r).copy_from_slice(&rows[pending[k].0]);
                }
                dbn.predict_batch_into(&inputs, &mut scratch, &mut outputs)?;
                for (r, &k) in members.iter().enumerate() {
                    let i = pending[k].0;
                    let sc = &mut self.scenarios[i];
                    let env = ScenarioEnv {
                        node: self.node,
                        graph: self.graph,
                        trace: sc.trace,
                        predictor: sc.predictor.as_ref(),
                        ctx: &self.ctx,
                        harness: harnesses[i],
                    };
                    let obs = states[i].observation(&env, period);
                    decisions[i] = Some(sc.planner.plan_with_output(&obs, outputs.row(r)));
                }
            }

            // Advance phase: every scenario executes its period.
            for (i, sc) in self.scenarios.iter_mut().enumerate() {
                let env = ScenarioEnv {
                    node: self.node,
                    graph: self.graph,
                    trace: sc.trace,
                    predictor: sc.predictor.as_ref(),
                    ctx: &self.ctx,
                    harness: harnesses[i],
                };
                let decision = decisions[i].take().ok_or_else(|| {
                    CoreError::Config(
                        "scenario reached the advance phase without a decision".into(),
                    )
                })?;
                states[i].run_period(&env, period, sc.planner.as_mut(), decision)?;
            }
        }

        let mut reports = Vec::with_capacity(b);
        for ((state, sc), harness) in states
            .into_iter()
            .zip(self.scenarios.iter_mut())
            .zip(harnesses)
        {
            reports.push(state.into_report(sc.planner.as_mut(), harness));
        }
        Ok(reports)
    }

    /// Builds and runs batches of at most `chunk` scenarios over
    /// `0..count`, fanning the batches out across `helio-par` workers;
    /// results come back in scenario order. `make(i)` constructs the
    /// `i`-th scenario (it is called from worker threads).
    ///
    /// # Errors
    ///
    /// Returns the first [`CoreError`] any batch produces.
    pub fn run_chunked<F>(
        node: &'a NodeConfig,
        graph: &'a TaskGraph,
        count: usize,
        chunk: usize,
        make: F,
    ) -> Result<Vec<SimReport>, CoreError>
    where
        F: Fn(usize) -> BatchScenario<'a> + Sync,
    {
        let batches = helio_par::par_map_ranges(count, chunk, |range| {
            let mut engine = BatchEngine::new(node, graph)?;
            for i in range {
                engine.push(make(i))?;
            }
            engine.run()
        });
        let mut all = Vec::with_capacity(count);
        for batch in batches {
            all.extend(batch?);
        }
        Ok(all)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NodeConfig;
    use crate::engine::Engine;
    use crate::online::{ProposedPlanner, SwitchRule};
    use crate::planner::{FixedPlanner, Pattern};
    use crate::resilient::ResilientPlanner;
    use helio_common::time::TimeGrid;
    use helio_common::units::{Farads, Seconds};
    use helio_solar::{DayArchetype, NoisyOracle, SolarPanel, SolarTrace, TraceBuilder};
    use helio_tasks::benchmarks;

    fn grid() -> TimeGrid {
        TimeGrid::new(2, 24, 10, Seconds::new(60.0)).unwrap()
    }

    fn node() -> NodeConfig {
        NodeConfig::builder(grid())
            .capacitors(&[Farads::new(2.0), Farads::new(15.0)])
            .build()
            .unwrap()
    }

    fn trace(seed: u64) -> SolarTrace {
        TraceBuilder::new(grid(), SolarPanel::paper_panel())
            .seed(seed)
            .days(&[DayArchetype::Clear, DayArchetype::BrokenClouds])
            .build()
    }

    fn tiny_dbn(graph: &TaskGraph) -> Arc<Dbn> {
        let in_dim = 10 + 2 + 1;
        let inputs: Vec<Vec<f64>> = (0..40)
            .map(|i| {
                let mut v = vec![(i % 7) as f64 * 10.0; in_dim];
                v[in_dim - 1] = 0.3;
                v
            })
            .collect();
        let targets: Vec<Vec<f64>> = (0..40)
            .map(|i| {
                let mut v = vec![(i % 2) as f64, 1.0];
                v.extend(vec![1.0; graph.len()]);
                v
            })
            .collect();
        Arc::new(Dbn::train(&inputs, &targets, &helio_ann::DbnConfig::small(2)).unwrap())
    }

    fn dbn_planner(dbn: &Arc<Dbn>) -> ProposedPlanner {
        ProposedPlanner::from_shared_dbn(Arc::clone(dbn), 0.5, SwitchRule::default())
    }

    #[test]
    fn batch_is_byte_identical_to_sequential_mixed_planners() {
        let node = node();
        let g = benchmarks::ecg();
        let dbn = tiny_dbn(&g);
        let traces: Vec<SolarTrace> = (0..5).map(|s| trace(11 + s)).collect();

        let mut engine = BatchEngine::new(&node, &g).unwrap();
        engine
            .push(BatchScenario::new(
                &traces[0],
                Box::new(FixedPlanner::new(Pattern::Asap, 0)),
            ))
            .unwrap();
        engine
            .push(BatchScenario::new(&traces[1], Box::new(dbn_planner(&dbn))))
            .unwrap();
        engine
            .push(BatchScenario::new(
                &traces[2],
                Box::new(ResilientPlanner::new(Box::new(dbn_planner(&dbn)))),
            ))
            .unwrap();
        engine
            .push(BatchScenario::new(
                &traces[3],
                Box::new(ProposedPlanner::mpc(
                    Box::new(NoisyOracle::perfect()),
                    24,
                    crate::longterm::DpConfig {
                        voltage_buckets: 4,
                        keep_per_level: 1,
                    },
                    0.5,
                    SwitchRule::default(),
                )),
            ))
            .unwrap();
        engine
            .push(BatchScenario::new(&traces[4], Box::new(dbn_planner(&dbn))))
            .unwrap();
        assert_eq!(engine.len(), 5);
        let batched = engine.run().unwrap();

        let sequential: Vec<SimReport> = {
            let mut out = Vec::new();
            let mut planners: Vec<Box<dyn PeriodPlanner>> = vec![
                Box::new(FixedPlanner::new(Pattern::Asap, 0)),
                Box::new(dbn_planner(&dbn)),
                Box::new(ResilientPlanner::new(Box::new(dbn_planner(&dbn)))),
                Box::new(ProposedPlanner::mpc(
                    Box::new(NoisyOracle::perfect()),
                    24,
                    crate::longterm::DpConfig {
                        voltage_buckets: 4,
                        keep_per_level: 1,
                    },
                    0.5,
                    SwitchRule::default(),
                )),
                Box::new(dbn_planner(&dbn)),
            ];
            for (t, p) in traces.iter().zip(planners.iter_mut()) {
                out.push(Engine::new(&node, &g, t).unwrap().run(p.as_mut()).unwrap());
            }
            out
        };

        assert_eq!(batched.len(), sequential.len());
        for (i, (b, s)) in batched.iter().zip(&sequential).enumerate() {
            assert_eq!(
                serde_json::to_string(b).unwrap(),
                serde_json::to_string(s).unwrap(),
                "scenario {i} diverged"
            );
        }
    }

    #[test]
    fn batch_matches_sequential_under_faults() {
        let node = node();
        let g = benchmarks::ecg();
        let dbn = tiny_dbn(&g);
        let t = trace(23);
        let plan = helio_faults::FaultPlan {
            seed: 42,
            random_blackouts: Some(helio_faults::RandomBlackouts {
                per_period_probability: 0.2,
                min_periods: 1,
                max_periods: 3,
            }),
            dbn: vec![helio_faults::DbnFault {
                window: helio_faults::PeriodWindow::new(5, 6),
                mode: helio_faults::DbnFaultMode::Nan,
            }],
            ..helio_faults::FaultPlan::default()
        };
        let harness = helio_faults::FaultHarness::new(&plan, 48, 24);
        let empty = helio_faults::FaultHarness::empty();

        let mut engine = BatchEngine::new(&node, &g).unwrap();
        engine
            .push(BatchScenario::new(&t, Box::new(dbn_planner(&dbn))).with_harness(&harness))
            .unwrap();
        engine
            .push(BatchScenario::new(&t, Box::new(dbn_planner(&dbn))).with_harness(&empty))
            .unwrap();
        engine
            .push(
                BatchScenario::new(
                    &t,
                    Box::new(ResilientPlanner::new(Box::new(dbn_planner(&dbn)))),
                )
                .with_harness(&harness),
            )
            .unwrap();
        let batched = engine.run().unwrap();

        let seq0 = Engine::new(&node, &g, &t)
            .unwrap()
            .run_with_faults(&mut dbn_planner(&dbn), Some(&harness))
            .unwrap();
        let seq1 = Engine::new(&node, &g, &t)
            .unwrap()
            .run_with_faults(&mut dbn_planner(&dbn), Some(&empty))
            .unwrap();
        let mut resilient = ResilientPlanner::new(Box::new(dbn_planner(&dbn)));
        let seq2 = Engine::new(&node, &g, &t)
            .unwrap()
            .run_with_faults(&mut resilient, Some(&harness))
            .unwrap();

        for (b, s) in batched.iter().zip([&seq0, &seq1, &seq2]) {
            assert_eq!(
                serde_json::to_string(b).unwrap(),
                serde_json::to_string(s).unwrap()
            );
        }
    }

    #[test]
    fn run_chunked_matches_single_batch() {
        let node = node();
        let g = benchmarks::ecg();
        let dbn = tiny_dbn(&g);
        let traces: Vec<SolarTrace> = (0..6).map(|s| trace(100 + s)).collect();
        let make = |i: usize| BatchScenario::new(&traces[i], Box::new(dbn_planner(&dbn)));
        let chunked = BatchEngine::run_chunked(&node, &g, traces.len(), 2, make).unwrap();
        let mut engine = BatchEngine::new(&node, &g).unwrap();
        for t in &traces {
            engine
                .push(BatchScenario::new(t, Box::new(dbn_planner(&dbn))))
                .unwrap();
        }
        let whole = engine.run().unwrap();
        assert_eq!(chunked, whole);
    }

    #[test]
    fn push_rejects_mismatched_trace() {
        let node = node();
        let g = benchmarks::ecg();
        let other_grid = TimeGrid::new(1, 24, 10, Seconds::new(60.0)).unwrap();
        let wrong = TraceBuilder::new(other_grid, SolarPanel::paper_panel())
            .seed(1)
            .days(&[DayArchetype::Clear])
            .build();
        let mut engine = BatchEngine::new(&node, &g).unwrap();
        assert!(engine.is_empty());
        let err = engine.push(BatchScenario::new(
            &wrong,
            Box::new(FixedPlanner::new(Pattern::Asap, 0)),
        ));
        assert!(matches!(err, Err(CoreError::TraceMismatch(_))));
    }
}
