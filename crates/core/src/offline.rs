//! The design-time pipeline (paper Fig. 4, offline part):
//! supercapacitor sizing (Section 4.1), long-term DMR optimisation on
//! training solar data, and DBN training on the optimal samples.

use helio_ann::{Dbn, DbnConfig};
use helio_common::time::PeriodRef;
use helio_common::units::{Farads, Joules, Seconds};
use helio_nvp::Pmu;
use helio_sched::{AsapScheduler, ExecState, PeriodStart, SlotContext, SlotScheduler};
use helio_solar::SolarTrace;
use helio_storage::{cluster_sizes, optimal_capacitance, StorageModelParams};
use helio_tasks::TaskGraph;

use crate::config::NodeConfig;
use crate::error::CoreError;
use crate::longterm::DpConfig;
use crate::online::{ProposedPlanner, SwitchRule};
use crate::optimal::OptimalPlanner;

/// Hyper-parameters of the offline pipeline.
#[derive(Debug, Clone)]
pub struct OfflineConfig {
    /// Long-term DP resolution.
    pub dp: DpConfig,
    /// DBN training configuration.
    pub dbn: DbnConfig,
    /// Pattern-selection threshold `δ` (Section 5.2).
    pub delta: f64,
    /// Capacitor-switch threshold `E_th` (Eq. 22).
    pub switch: SwitchRule,
    /// Capacitance search bracket for sizing (F).
    pub c_bracket: (f64, f64),
}

impl Default for OfflineConfig {
    fn default() -> Self {
        Self {
            dp: DpConfig::default(),
            dbn: DbnConfig::small(0xD5EED),
            delta: 0.5,
            switch: SwitchRule::default(),
            c_bracket: (0.3, 150.0),
        }
    }
}

/// The per-slot load demand (J) of one period under the energy-blind
/// ASAP rule — the schedule Section 4.1 uses to extract the migration
/// patterns `ΔE_{i,j,m}`.
pub fn asap_demand_profile(
    graph: &TaskGraph,
    slots_per_period: usize,
    slot: Seconds,
) -> Vec<Joules> {
    let mut exec = ExecState::new(graph, slot);
    let mut asap = AsapScheduler::new();
    asap.begin_period(&PeriodStart {
        graph,
        slot_duration: slot,
        slots_per_period,
        predicted_energy: Joules::ZERO,
        stored_energy: Joules::ZERO,
        allowed: None,
    });
    let mut demand = Vec::with_capacity(slots_per_period);
    for m in 0..slots_per_period {
        let picked = asap.select(&SlotContext {
            graph,
            exec: &exec,
            slot: m,
            slot_duration: slot,
            slots_per_period,
            harvest: Joules::ZERO,
            direct_deliverable: Joules::ZERO,
            storage_deliverable: Joules::ZERO,
        });
        let e: Joules = picked
            .iter()
            .map(|i| graph.task(helio_tasks::TaskId(i)).power * slot)
            .sum();
        for i in picked {
            exec.advance(helio_tasks::TaskId(i));
        }
        demand.push(e);
    }
    demand
}

/// Supercapacitor sizing (Section 4.1): per-day optimal capacitances
/// from the ASAP migration pattern, clustered into `h` physical sizes.
///
/// # Errors
///
/// Returns [`CoreError::Config`] for `h == 0` and propagates sizing
/// failures.
pub fn size_capacitors(
    graph: &TaskGraph,
    trace: &SolarTrace,
    h: usize,
    storage: &StorageModelParams,
    pmu: &Pmu,
) -> Result<Vec<Farads>, CoreError> {
    if h == 0 {
        return Err(CoreError::Config("need at least one capacitor".into()));
    }
    let grid = trace.grid();
    let slot = grid.slot_duration();
    let demand = asap_demand_profile(graph, grid.slots_per_period(), slot);
    // Eq. 2's ΔE is a *delivered*-energy balance: harvested energy
    // reaches the load through the PMU's direct channel, so the
    // migration profile discounts it by that channel's efficiency
    // (matching `Pmu::settle_slot`, where the direct channel serves
    // the load first).
    let eta = pmu.params().direct_efficiency;

    // Each day's bracket search only reads the trace and the shared
    // ASAP demand profile, so days fan out across workers; results come
    // back in day order, keeping the clustering input deterministic.
    let daily: Vec<Result<Farads, CoreError>> = helio_par::par_map_range(grid.days(), |day| {
        // ΔE_{i,j,m} = delivered harvest − ASAP load, per slot of the
        // day (Eq. 2).
        let mut delta_e = Vec::with_capacity(grid.slots_per_day());
        for j in 0..grid.periods_per_day() {
            for (m, s) in grid.slots_in(PeriodRef::new(day, j)).enumerate() {
                delta_e.push(trace.slot_energy(s) * eta - demand[m]);
            }
        }
        let out = optimal_capacitance(
            &delta_e,
            slot,
            storage,
            Farads::new(0.5),
            Farads::new(120.0),
        )?;
        Ok(out.capacitance)
    });
    let daily_optima = daily.into_iter().collect::<Result<Vec<_>, _>>()?;
    Ok(cluster_sizes(&daily_optima, h)?)
}

/// Trains the proposed planner end to end: run the optimal long-term
/// DP on the training trace, collect its `(observation, decision)`
/// samples, and fit the DBN (Fig. 4's offline part, minus sizing —
/// pass a node whose capacitors were already sized).
///
/// # Errors
///
/// Propagates optimal-planning and DBN-training failures.
pub fn train_proposed(
    node: &NodeConfig,
    graph: &TaskGraph,
    training: &SolarTrace,
    cfg: &OfflineConfig,
) -> Result<ProposedPlanner, CoreError> {
    let optimal = OptimalPlanner::compute(node, graph, training, &cfg.dp, cfg.delta)?;
    let dbn = Dbn::train_set(optimal.samples(), &cfg.dbn)?;
    Ok(ProposedPlanner::from_dbn(dbn, cfg.delta, cfg.switch))
}

#[cfg(test)]
mod tests {
    use super::*;
    use helio_common::time::TimeGrid;
    use helio_solar::{SolarPanel, TraceBuilder};
    use helio_tasks::benchmarks;

    fn grid(days: usize) -> TimeGrid {
        TimeGrid::new(days, 24, 10, Seconds::new(60.0)).unwrap()
    }

    fn trace(days: usize, seed: u64) -> SolarTrace {
        TraceBuilder::new(grid(days), SolarPanel::paper_panel())
            .seed(seed)
            .weather(helio_solar::WeatherProcess::temperate())
            .build()
    }

    #[test]
    fn asap_profile_front_loads_demand() {
        let g = benchmarks::ecg();
        let demand = asap_demand_profile(&g, 10, Seconds::new(60.0));
        assert_eq!(demand.len(), 10);
        let total: f64 = demand.iter().map(|e| e.value()).sum();
        // All ECG work fits in the period under ASAP.
        assert!((total - g.total_energy().value()).abs() < 1e-9);
        // Front-loaded: the first half carries most of the demand.
        let first: f64 = demand[..5].iter().map(|e| e.value()).sum();
        assert!(first > total * 0.5, "{demand:?}");
    }

    #[test]
    fn sizing_produces_ascending_h_sizes() {
        let g = benchmarks::ecg();
        let t = trace(6, 5);
        let storage = StorageModelParams::default();
        let sizes = size_capacitors(&g, &t, 3, &storage, &Pmu::default()).unwrap();
        assert_eq!(sizes.len(), 3);
        assert!(sizes.windows(2).all(|w| w[0] <= w[1]));
        assert!(sizes.iter().all(|c| c.value() >= 0.3 && c.value() <= 150.0));
        // Zero capacitors is rejected.
        assert!(size_capacitors(&g, &t, 0, &storage, &Pmu::default()).is_err());
    }

    #[test]
    fn sizing_discounts_harvest_by_pmu_direct_efficiency() {
        let g = benchmarks::ecg();
        let t = trace(1, 9);
        let storage = StorageModelParams::default();
        let pmu = Pmu::default();
        // Replicate the single-day ΔE profile by hand: harvest reaches
        // the load through the direct channel, so it is discounted by
        // that channel's efficiency before the ASAP demand is
        // subtracted (Eq. 2 on delivered energy).
        let grid = t.grid();
        let slot = grid.slot_duration();
        let demand = asap_demand_profile(&g, grid.slots_per_period(), slot);
        let eta = pmu.params().direct_efficiency;
        let mut delta_e = Vec::new();
        for j in 0..grid.periods_per_day() {
            for (m, s) in grid.slots_in(PeriodRef::new(0, j)).enumerate() {
                delta_e.push(t.slot_energy(s) * eta - demand[m]);
            }
        }
        let want = optimal_capacitance(
            &delta_e,
            slot,
            &storage,
            Farads::new(0.5),
            Farads::new(120.0),
        )
        .unwrap()
        .capacitance;
        let got = size_capacitors(&g, &t, 1, &storage, &pmu).unwrap();
        assert_eq!(got, vec![want]);
        // A lossless PMU sees more usable harvest, so the sizing must
        // actually depend on the efficiency (the parameter is no
        // longer ignored).
        let lossless = Pmu::new(helio_nvp::PmuParams {
            direct_efficiency: 1.0,
        });
        let got_lossless = size_capacitors(&g, &t, 1, &storage, &lossless).unwrap();
        assert_ne!(got, got_lossless, "efficiency must influence sizing");
    }

    #[test]
    fn training_produces_a_runnable_planner() {
        use crate::engine::Engine;
        let g = benchmarks::ecg();
        let train_trace = trace(2, 6);
        let node = NodeConfig::builder(grid(2))
            .capacitors(&[Farads::new(2.0), Farads::new(15.0)])
            .build()
            .unwrap();
        let mut cfg = OfflineConfig::default();
        cfg.dbn.bp_epochs = 100; // keep the unit test fast
        let mut planner = train_proposed(&node, &g, &train_trace, &cfg).unwrap();
        // Evaluate on a *different* trace (same grid).
        let eval = trace(2, 7);
        let report = Engine::new(&node, &g, &eval)
            .unwrap()
            .run(&mut planner)
            .unwrap();
        assert_eq!(report.planner, "proposed-dbn");
        assert!(
            report.overall_dmr() < 1.0,
            "planner must complete something"
        );
    }
}
