//! A health-monitoring wrapper that keeps a node scheduling through
//! planner failures.
//!
//! The proposed online planners depend on an inference path (the DBN
//! accelerator, the MPC's DP compute) that can fail in the field:
//! unavailable weights, bit-flipped outputs, decisions that reference
//! capacitors the bank does not have. [`ResilientPlanner`] wraps any
//! [`PeriodPlanner`] and validates every decision before the engine
//! acts on it; an unhealthy or invalid decision is replaced by the
//! conservative inter-task (LSA) baseline decision for that period, and
//! every engagement is recorded in the report's fault log. Repeated
//! scheduler-contract violations demote the inner planner permanently —
//! a planner that keeps emitting contradictory slot assignments cannot
//! be trusted again within the run.

use std::sync::Arc;

use helio_ann::Dbn;
use helio_faults::{DbnFaultMode, FaultEvent, FaultKind};

use crate::batch::PlanContext;
use crate::planner::{Pattern, PeriodPlanner, PlanDecision, PlannerHealth, PlannerObservation};

/// Contract violations tolerated before the inner planner is demoted
/// for the rest of the run.
const MAX_CONTRACT_VIOLATIONS: usize = 3;

/// A graceful-degradation wrapper around any [`PeriodPlanner`].
pub struct ResilientPlanner<'a> {
    inner: Box<dyn PeriodPlanner + 'a>,
    fallback_pattern: Pattern,
    contract_violations: usize,
    demoted: bool,
    fallback_periods: usize,
    events: Vec<FaultEvent>,
}

impl<'a> ResilientPlanner<'a> {
    /// Wraps `inner`, falling back to the inter-task (LSA) baseline
    /// pattern when it misbehaves.
    pub fn new(inner: Box<dyn PeriodPlanner + 'a>) -> Self {
        Self {
            inner,
            fallback_pattern: Pattern::Inter,
            contract_violations: 0,
            demoted: false,
            fallback_periods: 0,
            events: Vec::new(),
        }
    }

    /// Replaces the fallback pattern (default: [`Pattern::Inter`]).
    #[must_use]
    pub fn with_fallback_pattern(mut self, pattern: Pattern) -> Self {
        self.fallback_pattern = pattern;
        self
    }

    /// Periods served from the fallback baseline so far.
    pub fn fallbacks(&self) -> usize {
        self.fallback_periods
    }

    /// Whether the inner planner has been permanently demoted.
    pub fn is_demoted(&self) -> bool {
        self.demoted
    }

    /// The fallback decision: keep the current capacitor, admit every
    /// task, run the configured baseline pattern.
    fn fallback_decision(&self) -> PlanDecision {
        PlanDecision::everything(self.fallback_pattern)
    }

    fn engage_fallback(&mut self, flat: usize, reason: String) -> PlanDecision {
        self.fallback_periods += 1;
        self.events
            .push(FaultEvent::at(flat, FaultKind::PlannerFallback, reason));
        self.fallback_decision()
    }

    /// Why `decision` cannot be trusted, if anything.
    fn rejection_reason(
        &self,
        obs: &PlannerObservation<'_>,
        decision: &PlanDecision,
    ) -> Option<String> {
        match self.inner.health() {
            PlannerHealth::Healthy => {}
            PlannerHealth::DbnUnavailable => {
                return Some("inference unavailable".into());
            }
            PlannerHealth::NonFinite => {
                return Some("non-finite inference output".into());
            }
        }
        if let Some(c) = decision.capacitor {
            if c >= obs.bank.len() {
                return Some(format!(
                    "capacitor {c} out of range for bank of {}",
                    obs.bank.len()
                ));
            }
        }
        if let Some(mask) = decision.allowed {
            if !mask.is_subset_of(obs.graph.all_tasks()) {
                return Some(format!(
                    "admission mask {mask} references tasks outside the graph"
                ));
            }
        }
        None
    }
}

impl PeriodPlanner for ResilientPlanner<'_> {
    fn name(&self) -> &'static str {
        "resilient"
    }

    fn plan(&mut self, obs: &PlannerObservation<'_>) -> PlanDecision {
        let flat = obs.grid.period_index(obs.period);
        if self.demoted {
            self.fallback_periods += 1;
            return self.fallback_decision();
        }
        let decision = self.inner.plan(obs);
        match self.rejection_reason(obs, &decision) {
            Some(reason) => self.engage_fallback(flat, reason),
            None => decision,
        }
    }

    fn complexity(&self) -> u64 {
        self.inner.complexity()
    }

    fn inject_fault(&mut self, mode: Option<DbnFaultMode>) {
        self.inner.inject_fault(mode);
    }

    fn health(&self) -> PlannerHealth {
        self.inner.health()
    }

    fn on_contract_violation(&mut self) {
        self.inner.on_contract_violation();
        self.contract_violations += 1;
        if self.contract_violations >= MAX_CONTRACT_VIOLATIONS && !self.demoted {
            self.demoted = true;
            self.events.push(FaultEvent::at(
                0,
                FaultKind::ContractViolation,
                format!(
                    "inner planner demoted after {} contract violations",
                    self.contract_violations
                ),
            ));
        }
    }

    fn fallback_count(&self) -> usize {
        self.fallback_periods
    }

    fn degraded_events(&self) -> Vec<FaultEvent> {
        self.events.clone()
    }

    fn attach_context(&mut self, ctx: &Arc<PlanContext>) {
        self.inner.attach_context(ctx);
    }

    fn batch_input(&mut self, obs: &PlannerObservation<'_>, input: &mut Vec<f64>) -> bool {
        if self.demoted {
            // plan() serves the fallback without consulting the inner
            // planner; decline the batch slot so it still does.
            return false;
        }
        self.inner.batch_input(obs, input)
    }

    fn batch_dbn(&self) -> Option<Arc<Dbn>> {
        self.inner.batch_dbn()
    }

    fn plan_with_output(&mut self, obs: &PlannerObservation<'_>, out: &[f64]) -> PlanDecision {
        let flat = obs.grid.period_index(obs.period);
        let decision = self.inner.plan_with_output(obs, out);
        match self.rejection_reason(obs, &decision) {
            Some(reason) => self.engage_fallback(flat, reason),
            None => decision,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NodeConfig;
    use crate::engine::Engine;
    use crate::planner::FixedPlanner;
    use helio_common::time::TimeGrid;
    use helio_common::units::{Farads, Seconds};
    use helio_common::TaskSet;
    use helio_solar::{DayArchetype, SolarPanel, SolarTrace, TraceBuilder};
    use helio_tasks::benchmarks;

    fn grid() -> TimeGrid {
        TimeGrid::new(1, 24, 10, Seconds::new(60.0)).unwrap()
    }

    fn node() -> NodeConfig {
        NodeConfig::builder(grid())
            .capacitors(&[Farads::new(10.0)])
            .build()
            .unwrap()
    }

    fn trace() -> SolarTrace {
        TraceBuilder::new(grid(), SolarPanel::paper_panel())
            .seed(7)
            .days(&[DayArchetype::Clear])
            .build()
    }

    /// A planner that always asks for a capacitor the bank lacks and a
    /// mask with out-of-graph bits.
    struct EvilPlanner;
    impl PeriodPlanner for EvilPlanner {
        fn name(&self) -> &'static str {
            "evil"
        }
        fn plan(&mut self, obs: &PlannerObservation<'_>) -> PlanDecision {
            PlanDecision {
                capacitor: Some(obs.bank.len() + 3),
                allowed: Some(TaskSet::EMPTY.with(obs.graph.len() + 1)),
                pattern: Pattern::Asap,
            }
        }
    }

    #[test]
    fn invalid_decisions_engage_fallback_every_period() {
        let node = node();
        let g = benchmarks::ecg();
        let t = trace();
        let engine = Engine::new(&node, &g, &t).unwrap();
        let mut planner = ResilientPlanner::new(Box::new(EvilPlanner));
        let report = engine.run(&mut planner).unwrap();
        assert_eq!(report.planner, "resilient");
        assert_eq!(planner.fallbacks(), 24, "every period must fall back");
        assert_eq!(planner.degraded_events().len(), 24);
        assert!(planner
            .degraded_events()
            .iter()
            .all(|e| e.kind == FaultKind::PlannerFallback));
    }

    #[test]
    fn healthy_inner_passes_through() {
        let node = node();
        let g = benchmarks::ecg();
        let t = trace();
        let engine = Engine::new(&node, &g, &t).unwrap();
        let mut wrapped = ResilientPlanner::new(Box::new(FixedPlanner::new(Pattern::Intra, 0)));
        let resilient = engine.run(&mut wrapped).unwrap();
        let mut bare = FixedPlanner::new(Pattern::Intra, 0);
        let baseline = engine.run(&mut bare).unwrap();
        assert_eq!(wrapped.fallbacks(), 0);
        assert_eq!(
            resilient.periods, baseline.periods,
            "wrapper must be transparent"
        );
    }

    #[test]
    fn repeated_contract_violations_demote_permanently() {
        let mut planner = ResilientPlanner::new(Box::new(EvilPlanner));
        assert!(!planner.is_demoted());
        for _ in 0..MAX_CONTRACT_VIOLATIONS {
            planner.on_contract_violation();
        }
        assert!(planner.is_demoted());
        assert!(planner
            .degraded_events()
            .iter()
            .any(|e| e.kind == FaultKind::ContractViolation));
    }
}
