//! A health-monitoring wrapper that keeps a node scheduling through
//! planner failures.
//!
//! The proposed online planners depend on an inference path (the DBN
//! accelerator, the MPC's DP compute) that can fail in the field:
//! unavailable weights, bit-flipped outputs, decisions that reference
//! capacitors the bank does not have. [`ResilientPlanner`] wraps any
//! [`PeriodPlanner`] and validates every decision before the engine
//! acts on it; an unhealthy or invalid decision is replaced by the
//! conservative inter-task (LSA) baseline decision for that period, and
//! every engagement is recorded in the report's fault log. Repeated
//! scheduler-contract violations demote the inner planner — by default
//! permanently, or (with [`ResilientPlanner::with_probation`]) until it
//! has produced N consecutive healthy decisions while demoted, at which
//! point it is re-promoted and trusted again.

use std::sync::Arc;

use helio_ann::Dbn;
use helio_faults::{cap_event_log, DbnFaultMode, FaultEvent, FaultKind, EVENT_LOG_KEEP};

use crate::batch::PlanContext;
use crate::checkpoint::{PlannerCheckpoint, ResilientCheckpoint};
use crate::planner::{Pattern, PeriodPlanner, PlanDecision, PlannerHealth, PlannerObservation};

/// Contract violations tolerated before the inner planner is demoted
/// for the rest of the run.
const MAX_CONTRACT_VIOLATIONS: usize = 3;

/// A graceful-degradation wrapper around any [`PeriodPlanner`].
pub struct ResilientPlanner<'a> {
    inner: Box<dyn PeriodPlanner + 'a>,
    fallback_pattern: Pattern,
    contract_violations: usize,
    demoted: bool,
    fallback_periods: usize,
    /// `Some(n)`: a demoted inner planner is re-promoted after `n`
    /// consecutive healthy shadow decisions. `None`: demotion is
    /// permanent (the historical behaviour, and the default).
    probation: Option<usize>,
    /// Consecutive healthy shadow decisions observed while demoted.
    healthy_streak: usize,
    /// Times the inner planner has been re-promoted.
    repromotions: usize,
    events: Vec<FaultEvent>,
    /// Events elided from the bounded `events` log.
    dropped: usize,
}

impl<'a> ResilientPlanner<'a> {
    /// Wraps `inner`, falling back to the inter-task (LSA) baseline
    /// pattern when it misbehaves.
    pub fn new(inner: Box<dyn PeriodPlanner + 'a>) -> Self {
        Self {
            inner,
            fallback_pattern: Pattern::Inter,
            contract_violations: 0,
            demoted: false,
            fallback_periods: 0,
            probation: None,
            healthy_streak: 0,
            repromotions: 0,
            events: Vec::new(),
            dropped: 0,
        }
    }

    /// Replaces the fallback pattern (default: [`Pattern::Inter`]).
    #[must_use]
    pub fn with_fallback_pattern(mut self, pattern: Pattern) -> Self {
        self.fallback_pattern = pattern;
        self
    }

    /// Enables probation-based re-promotion: while demoted, the inner
    /// planner keeps planning in the shadow of the fallback, and after
    /// `periods` consecutive healthy, valid decisions it is re-promoted
    /// (violation count reset, a [`FaultKind::PlannerRepromoted`] event
    /// logged). `periods` is clamped to at least 1. Without this knob
    /// demotion is permanent.
    #[must_use]
    pub fn with_probation(mut self, periods: usize) -> Self {
        self.probation = Some(periods.max(1));
        self
    }

    /// Periods served from the fallback baseline so far.
    pub fn fallbacks(&self) -> usize {
        self.fallback_periods
    }

    /// Whether the inner planner is currently demoted.
    pub fn is_demoted(&self) -> bool {
        self.demoted
    }

    /// Times the inner planner has been re-promoted after probation.
    pub fn repromotions(&self) -> usize {
        self.repromotions
    }

    /// Appends to the bounded event log: the first and last
    /// [`EVENT_LOG_KEEP`] events survive, the middle is counted into
    /// [`PeriodPlanner::dropped_events`]. Capping after every push
    /// keeps exactly first-K/last-K of the whole stream, so a
    /// checkpoint-resumed run retains the identical log.
    fn log_event(&mut self, event: FaultEvent) {
        self.events.push(event);
        self.dropped += cap_event_log(&mut self.events, EVENT_LOG_KEEP);
    }

    /// The fallback decision: keep the current capacitor, admit every
    /// task, run the configured baseline pattern.
    fn fallback_decision(&self) -> PlanDecision {
        PlanDecision::everything(self.fallback_pattern)
    }

    fn engage_fallback(&mut self, flat: usize, reason: String) -> PlanDecision {
        self.fallback_periods += 1;
        self.log_event(FaultEvent::at(flat, FaultKind::PlannerFallback, reason));
        self.fallback_decision()
    }

    /// Why `decision` cannot be trusted, if anything.
    fn rejection_reason(
        &self,
        obs: &PlannerObservation<'_>,
        decision: &PlanDecision,
    ) -> Option<String> {
        match self.inner.health() {
            PlannerHealth::Healthy => {}
            PlannerHealth::DbnUnavailable => {
                return Some("inference unavailable".into());
            }
            PlannerHealth::NonFinite => {
                return Some("non-finite inference output".into());
            }
        }
        if let Some(c) = decision.capacitor {
            if c >= obs.bank.len() {
                return Some(format!(
                    "capacitor {c} out of range for bank of {}",
                    obs.bank.len()
                ));
            }
        }
        if let Some(mask) = decision.allowed {
            if !mask.is_subset_of(obs.graph.all_tasks()) {
                return Some(format!(
                    "admission mask {mask} references tasks outside the graph"
                ));
            }
        }
        None
    }
}

impl PeriodPlanner for ResilientPlanner<'_> {
    fn name(&self) -> &'static str {
        "resilient"
    }

    fn plan(&mut self, obs: &PlannerObservation<'_>) -> PlanDecision {
        let flat = obs.grid.period_index(obs.period);
        if self.demoted {
            let Some(required) = self.probation else {
                // Permanent demotion: serve the fallback without
                // consulting the inner planner at all.
                self.fallback_periods += 1;
                return self.fallback_decision();
            };
            // Probation: the inner planner plans in the shadow of the
            // fallback; a clean streak earns re-promotion.
            let decision = self.inner.plan(obs);
            match self.rejection_reason(obs, &decision) {
                Some(_) => self.healthy_streak = 0,
                None => {
                    self.healthy_streak += 1;
                    if self.healthy_streak >= required {
                        self.demoted = false;
                        self.contract_violations = 0;
                        self.healthy_streak = 0;
                        self.repromotions += 1;
                        self.log_event(FaultEvent::at(
                            flat,
                            FaultKind::PlannerRepromoted,
                            format!("inner planner re-promoted after {required} healthy probation periods"),
                        ));
                        // The streak-completing decision is already
                        // validated — act on it immediately.
                        return decision;
                    }
                }
            }
            self.fallback_periods += 1;
            return self.fallback_decision();
        }
        let decision = self.inner.plan(obs);
        match self.rejection_reason(obs, &decision) {
            Some(reason) => self.engage_fallback(flat, reason),
            None => decision,
        }
    }

    fn complexity(&self) -> u64 {
        self.inner.complexity()
    }

    fn inject_fault(&mut self, mode: Option<DbnFaultMode>) {
        self.inner.inject_fault(mode);
    }

    fn health(&self) -> PlannerHealth {
        self.inner.health()
    }

    fn on_contract_violation(&mut self) {
        self.inner.on_contract_violation();
        self.contract_violations += 1;
        if self.contract_violations >= MAX_CONTRACT_VIOLATIONS && !self.demoted {
            self.demoted = true;
            self.healthy_streak = 0;
            self.log_event(FaultEvent::at(
                0,
                FaultKind::ContractViolation,
                format!(
                    "inner planner demoted after {} contract violations",
                    self.contract_violations
                ),
            ));
        }
    }

    fn fallback_count(&self) -> usize {
        // Degraded periods anywhere in the chain: this wrapper's
        // baseline engagements plus the inner planner's own internal
        // tier fallbacks (e.g. distilled → compiled).
        self.fallback_periods + self.inner.fallback_count()
    }

    fn degraded_events(&self) -> Vec<FaultEvent> {
        self.events.clone()
    }

    fn dropped_events(&self) -> usize {
        self.dropped + self.inner.dropped_events()
    }

    fn save_checkpoint(&self) -> PlannerCheckpoint {
        PlannerCheckpoint::Resilient(ResilientCheckpoint {
            contract_violations: self.contract_violations,
            demoted: self.demoted,
            fallback_periods: self.fallback_periods,
            healthy_streak: self.healthy_streak,
            repromotions: self.repromotions,
            dropped_events: self.dropped,
            events: self.events.clone(),
            inner: Box::new(self.inner.save_checkpoint()),
        })
    }

    fn restore_checkpoint(&mut self, ckpt: &PlannerCheckpoint) -> Result<(), String> {
        let PlannerCheckpoint::Resilient(c) = ckpt else {
            return Err(format!("resilient planner cannot restore from {ckpt:?}"));
        };
        self.contract_violations = c.contract_violations;
        self.demoted = c.demoted;
        self.fallback_periods = c.fallback_periods;
        self.healthy_streak = c.healthy_streak;
        self.repromotions = c.repromotions;
        self.dropped = c.dropped_events;
        self.events = c.events.clone();
        self.inner.restore_checkpoint(&c.inner)
    }

    fn attach_context(&mut self, ctx: &Arc<PlanContext>) {
        self.inner.attach_context(ctx);
    }

    fn batch_input(&mut self, obs: &PlannerObservation<'_>, input: &mut Vec<f64>) -> bool {
        if self.demoted {
            // plan() serves the fallback without consulting the inner
            // planner; decline the batch slot so it still does.
            return false;
        }
        self.inner.batch_input(obs, input)
    }

    fn batch_dbn(&self) -> Option<Arc<Dbn>> {
        self.inner.batch_dbn()
    }

    fn plan_with_output(&mut self, obs: &PlannerObservation<'_>, out: &[f64]) -> PlanDecision {
        let flat = obs.grid.period_index(obs.period);
        let decision = self.inner.plan_with_output(obs, out);
        match self.rejection_reason(obs, &decision) {
            Some(reason) => self.engage_fallback(flat, reason),
            None => decision,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NodeConfig;
    use crate::engine::Engine;
    use crate::planner::FixedPlanner;
    use helio_common::time::TimeGrid;
    use helio_common::units::{Farads, Seconds};
    use helio_common::TaskSet;
    use helio_solar::{DayArchetype, SolarPanel, SolarTrace, TraceBuilder};
    use helio_tasks::benchmarks;

    fn grid() -> TimeGrid {
        TimeGrid::new(1, 24, 10, Seconds::new(60.0)).unwrap()
    }

    fn node() -> NodeConfig {
        NodeConfig::builder(grid())
            .capacitors(&[Farads::new(10.0)])
            .build()
            .unwrap()
    }

    fn trace() -> SolarTrace {
        TraceBuilder::new(grid(), SolarPanel::paper_panel())
            .seed(7)
            .days(&[DayArchetype::Clear])
            .build()
    }

    /// A planner that always asks for a capacitor the bank lacks and a
    /// mask with out-of-graph bits.
    struct EvilPlanner;
    impl PeriodPlanner for EvilPlanner {
        fn name(&self) -> &'static str {
            "evil"
        }
        fn plan(&mut self, obs: &PlannerObservation<'_>) -> PlanDecision {
            PlanDecision {
                capacitor: Some(obs.bank.len() + 3),
                allowed: Some(TaskSet::EMPTY.with(obs.graph.len() + 1)),
                pattern: Pattern::Asap,
            }
        }
    }

    #[test]
    fn invalid_decisions_engage_fallback_every_period() {
        let node = node();
        let g = benchmarks::ecg();
        let t = trace();
        let engine = Engine::new(&node, &g, &t).unwrap();
        let mut planner = ResilientPlanner::new(Box::new(EvilPlanner));
        let report = engine.run(&mut planner).unwrap();
        assert_eq!(report.planner, "resilient");
        assert_eq!(planner.fallbacks(), 24, "every period must fall back");
        assert_eq!(planner.degraded_events().len(), 24);
        assert!(planner
            .degraded_events()
            .iter()
            .all(|e| e.kind == FaultKind::PlannerFallback));
    }

    #[test]
    fn healthy_inner_passes_through() {
        let node = node();
        let g = benchmarks::ecg();
        let t = trace();
        let engine = Engine::new(&node, &g, &t).unwrap();
        let mut wrapped = ResilientPlanner::new(Box::new(FixedPlanner::new(Pattern::Intra, 0)));
        let resilient = engine.run(&mut wrapped).unwrap();
        let mut bare = FixedPlanner::new(Pattern::Intra, 0);
        let baseline = engine.run(&mut bare).unwrap();
        assert_eq!(wrapped.fallbacks(), 0);
        assert_eq!(
            resilient.periods, baseline.periods,
            "wrapper must be transparent"
        );
    }

    #[test]
    fn repeated_contract_violations_demote_permanently() {
        let mut planner = ResilientPlanner::new(Box::new(EvilPlanner));
        assert!(!planner.is_demoted());
        for _ in 0..MAX_CONTRACT_VIOLATIONS {
            planner.on_contract_violation();
        }
        assert!(planner.is_demoted());
        assert!(planner
            .degraded_events()
            .iter()
            .any(|e| e.kind == FaultKind::ContractViolation));
    }

    /// Builds a standalone observation for direct `plan()` calls.
    struct ObsParts {
        node: NodeConfig,
        graph: helio_tasks::TaskGraph,
        trace: SolarTrace,
        bank: helio_storage::CapacitorBank,
    }

    fn obs_parts() -> ObsParts {
        let node = node();
        let bank = helio_storage::CapacitorBank::new(&node.capacitors, &node.storage).unwrap();
        ObsParts {
            node,
            graph: benchmarks::ecg(),
            trace: trace(),
            bank,
        }
    }

    fn obs(parts: &ObsParts) -> PlannerObservation<'_> {
        PlannerObservation {
            grid: &parts.node.grid,
            period: parts.node.grid.period_at(0),
            graph: &parts.graph,
            trace: &parts.trace,
            bank: &parts.bank,
            accumulated_dmr: 0.0,
            storage: &parts.node.storage,
            pmu: &parts.node.pmu,
        }
    }

    fn demote(planner: &mut ResilientPlanner<'_>) {
        for _ in 0..MAX_CONTRACT_VIOLATIONS {
            planner.on_contract_violation();
        }
        assert!(planner.is_demoted());
    }

    #[test]
    fn probation_repromotes_after_clean_streak() {
        let parts = obs_parts();
        let mut planner =
            ResilientPlanner::new(Box::new(FixedPlanner::new(Pattern::Intra, 0))).with_probation(3);
        demote(&mut planner);
        // Two probation periods still serve the fallback.
        for _ in 0..2 {
            let d = planner.plan(&obs(&parts));
            assert_eq!(d, PlanDecision::everything(Pattern::Inter));
            assert!(planner.is_demoted());
        }
        // The third healthy decision completes the streak and is acted
        // on immediately.
        let d = planner.plan(&obs(&parts));
        assert_eq!(d.capacitor, Some(0));
        assert_eq!(d.pattern, Pattern::Intra);
        assert!(!planner.is_demoted());
        assert_eq!(planner.repromotions(), 1);
        assert_eq!(planner.fallbacks(), 2);
        assert!(planner
            .degraded_events()
            .iter()
            .any(|e| e.kind == FaultKind::PlannerRepromoted));
        // Trust is reset, not borrowed: a fresh demotion needs the full
        // violation budget again.
        demote(&mut planner);
    }

    /// Invalid until `healthy_after` calls have happened, then clean.
    struct FlipPlanner {
        healthy_after: usize,
        calls: usize,
    }
    impl PeriodPlanner for FlipPlanner {
        fn name(&self) -> &'static str {
            "flip"
        }
        fn plan(&mut self, obs: &PlannerObservation<'_>) -> PlanDecision {
            self.calls += 1;
            if self.calls <= self.healthy_after {
                PlanDecision {
                    capacitor: Some(obs.bank.len() + 3),
                    allowed: None,
                    pattern: Pattern::Asap,
                }
            } else {
                PlanDecision::everything(Pattern::Intra)
            }
        }
    }

    #[test]
    fn unhealthy_shadow_decision_resets_the_streak() {
        let parts = obs_parts();
        let mut planner = ResilientPlanner::new(Box::new(FlipPlanner {
            healthy_after: 1,
            calls: 0,
        }))
        .with_probation(2);
        demote(&mut planner);
        // Call 1: invalid shadow decision — streak resets, fallback.
        assert_eq!(
            planner.plan(&obs(&parts)),
            PlanDecision::everything(Pattern::Inter)
        );
        // Call 2: healthy (streak 1 of 2) — still fallback.
        assert_eq!(
            planner.plan(&obs(&parts)),
            PlanDecision::everything(Pattern::Inter)
        );
        assert!(planner.is_demoted());
        // Call 3: healthy (streak 2 of 2) — re-promoted.
        let d = planner.plan(&obs(&parts));
        assert_eq!(d.pattern, Pattern::Intra);
        assert!(!planner.is_demoted());
        assert_eq!(planner.fallbacks(), 2);
    }

    #[test]
    fn without_probation_demotion_never_lifts() {
        let parts = obs_parts();
        let mut planner = ResilientPlanner::new(Box::new(FixedPlanner::new(Pattern::Intra, 0)));
        demote(&mut planner);
        for _ in 0..50 {
            let d = planner.plan(&obs(&parts));
            assert_eq!(d, PlanDecision::everything(Pattern::Inter));
        }
        assert!(planner.is_demoted());
        assert_eq!(planner.repromotions(), 0);
    }

    #[test]
    fn event_log_is_bounded_first_last_k() {
        let parts = obs_parts();
        let mut planner = ResilientPlanner::new(Box::new(EvilPlanner));
        for _ in 0..(2 * EVENT_LOG_KEEP + 6) {
            planner.plan(&obs(&parts));
        }
        assert_eq!(planner.degraded_events().len(), 2 * EVENT_LOG_KEEP);
        assert_eq!(planner.dropped_events(), 6);
    }

    #[test]
    fn checkpoint_round_trips_through_a_fresh_planner() {
        let parts = obs_parts();
        let mut planner = ResilientPlanner::new(Box::new(FlipPlanner {
            healthy_after: 2,
            calls: 0,
        }))
        .with_probation(4);
        demote(&mut planner);
        planner.plan(&obs(&parts));
        planner.plan(&obs(&parts));
        planner.plan(&obs(&parts));
        let saved = planner.save_checkpoint();
        // Note the FlipPlanner call counter is NOT part of the
        // checkpoint (it is a test double, stateless as far as the
        // trait knows) — restore only the resilient layer.
        let mut fresh =
            ResilientPlanner::new(Box::new(FixedPlanner::new(Pattern::Intra, 0))).with_probation(4);
        fresh.restore_checkpoint(&saved).unwrap();
        assert!(fresh.is_demoted());
        assert_eq!(fresh.fallbacks(), planner.fallbacks());
        match (&saved, &fresh.save_checkpoint()) {
            (PlannerCheckpoint::Resilient(a), PlannerCheckpoint::Resilient(b)) => {
                assert_eq!(a.healthy_streak, b.healthy_streak);
                assert_eq!(a.events, b.events);
            }
            other => panic!("unexpected checkpoint shapes {other:?}"),
        }
        // A stateless checkpoint cannot restore a resilient planner.
        assert!(fresh
            .restore_checkpoint(&PlannerCheckpoint::Stateless)
            .is_err());
    }
}
