//! The simplified long-term DMR optimisation (paper Section 4.2,
//! Eqs. 12–18): choose a per-period DMR level (equivalently, a task
//! subset) and track the supercapacitor state so that total misses over
//! the horizon are minimised.
//!
//! The paper's formulation has complexity `O((N+1)^{N_p·N_d})`; this
//! implementation solves it exactly (up to capacitor-state
//! quantisation) by value iteration backward over periods with the
//! capacitor's stored energy quantised into buckets — the standard
//! trick that turns the exponential sequence search into
//! `O(periods × buckets × subsets)`.

use helio_common::units::{Joules, Seconds, Volts};
use helio_common::TaskSet;
use helio_nvp::Pmu;
use helio_par::par_map_range;
use helio_sched::{simulate_subset_at, SubsetOutcome, SubsetSimCache};
use helio_storage::{CapState, StorageModelParams, SuperCap};
use helio_tasks::TaskGraph;
use serde::{Deserialize, Serialize};

/// DP resolution parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DpConfig {
    /// Number of stored-energy buckets for the capacitor state.
    pub voltage_buckets: usize,
    /// Subsets kept per DMR level (see
    /// [`dmr_level_subsets`](crate::subsets::dmr_level_subsets)).
    pub keep_per_level: usize,
}

impl Default for DpConfig {
    fn default() -> Self {
        Self {
            voltage_buckets: 12,
            keep_per_level: 2,
        }
    }
}

/// The plan for one period produced by the DP.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PeriodPlan {
    /// Committed task subset (`te_{i,j}(n)` bits).
    pub subset: TaskSet,
    /// Scheduling-pattern index `α` (Eq. 18): committed load energy
    /// over solar supply. Clamped to `[0, 10]`; 10 denotes "no solar".
    pub alpha: f64,
    /// Misses the plan expects this period.
    pub expected_misses: usize,
    /// Capacitor energy the plan expects to draw (`E^c`, Eq. 15).
    pub cap_energy: Joules,
}

/// Result of optimising one horizon.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DpResult {
    /// One plan per period of the horizon.
    pub plans: Vec<PeriodPlan>,
    /// Total expected misses over the horizon.
    pub total_misses: usize,
    /// Capacitor voltage after replaying the horizon.
    pub final_voltage: Volts,
    /// State expansions performed (the complexity metric of
    /// Fig. 10a).
    pub complexity: u64,
}

/// Maps a bucket index to a voltage (uniform in stored energy).
fn bucket_voltage(cap: &SuperCap, bucket: usize, buckets: usize) -> Volts {
    let frac = bucket as f64 / (buckets - 1).max(1) as f64;
    let lo = cap.v_cutoff().value();
    let hi = cap.v_full().value();
    Volts::new((lo * lo + frac * (hi * hi - lo * lo)).sqrt())
}

/// Maps a voltage to its nearest bucket.
fn voltage_bucket(cap: &SuperCap, v: Volts, buckets: usize) -> usize {
    let lo = cap.v_cutoff().value();
    let hi = cap.v_full().value();
    let frac = ((v.value() * v.value() - lo * lo) / (hi * hi - lo * lo)).clamp(0.0, 1.0);
    (frac * (buckets - 1).max(1) as f64).round() as usize
}

/// Simulates one period from an explicit capacitor voltage, returning
/// the outcome and the final voltage. Looked up in `cache` when one is
/// supplied (hits are bitwise identical to re-simulating).
#[allow(clippy::too_many_arguments)]
fn step(
    cache: Option<&SubsetSimCache>,
    graph: &TaskGraph,
    subset: TaskSet,
    solar: &[Joules],
    slot_duration: Seconds,
    cap: &SuperCap,
    voltage: Volts,
    storage: &StorageModelParams,
    pmu: &Pmu,
) -> (SubsetOutcome, Volts) {
    match cache {
        Some(c) => c.simulate(
            graph,
            subset,
            solar,
            slot_duration,
            cap,
            voltage,
            pmu,
            storage,
        ),
        None => simulate_subset_at(
            graph,
            subset,
            solar,
            slot_duration,
            cap,
            voltage,
            pmu,
            storage,
        ),
    }
}

/// The scheduling-pattern index `α` of Eq. 18.
pub fn alpha_index(graph: &TaskGraph, subset: TaskSet, solar_energy: Joules) -> f64 {
    let load: f64 = graph
        .ids()
        .filter(|id| subset.contains(id.index()))
        .map(|id| graph.task(id).energy().value())
        .sum();
    if solar_energy.value() <= 1e-9 {
        if load > 0.0 {
            10.0
        } else {
            0.0
        }
    } else {
        (load / solar_energy.value()).clamp(0.0, 10.0)
    }
}

/// Optimises one horizon of periods for a single capacitor.
///
/// `solar[p]` holds the per-slot harvested energies of period `p`
/// (true values for the offline optimum, predicted values for the
/// online MPC backend). Returns the per-period plans obtained by
/// backward value iteration plus a forward replay from
/// `initial` (the replay uses exact voltages, so the plans line up
/// with what a simulator will actually see).
///
/// # Panics
///
/// Panics when `subsets` masks do not match the graph or `solar` is
/// empty.
#[allow(clippy::too_many_arguments)]
pub fn optimize_horizon(
    graph: &TaskGraph,
    subsets: &[TaskSet],
    solar: &[Vec<Joules>],
    slot_duration: Seconds,
    cap: &SuperCap,
    initial: CapState,
    storage: &StorageModelParams,
    pmu: &Pmu,
    cfg: &DpConfig,
) -> DpResult {
    let cache = SubsetSimCache::new();
    run_horizon(
        graph,
        subsets,
        solar,
        slot_duration,
        cap,
        initial,
        storage,
        pmu,
        cfg,
        Some(&cache),
        true,
    )
}

/// [`optimize_horizon`] with a caller-supplied memo cache, so repeated
/// DP runs (e.g. one per capacitor candidate, one per day) share period
/// simulations and the caller can read the aggregate hit rate.
#[allow(clippy::too_many_arguments)]
pub fn optimize_horizon_with_cache(
    graph: &TaskGraph,
    subsets: &[TaskSet],
    solar: &[Vec<Joules>],
    slot_duration: Seconds,
    cap: &SuperCap,
    initial: CapState,
    storage: &StorageModelParams,
    pmu: &Pmu,
    cfg: &DpConfig,
    cache: &SubsetSimCache,
) -> DpResult {
    run_horizon(
        graph,
        subsets,
        solar,
        slot_duration,
        cap,
        initial,
        storage,
        pmu,
        cfg,
        Some(cache),
        true,
    )
}

/// [`optimize_horizon`] with no memoization and no worker threads — the
/// reference implementation the differential tests compare against.
#[allow(clippy::too_many_arguments)]
pub fn optimize_horizon_serial(
    graph: &TaskGraph,
    subsets: &[TaskSet],
    solar: &[Vec<Joules>],
    slot_duration: Seconds,
    cap: &SuperCap,
    initial: CapState,
    storage: &StorageModelParams,
    pmu: &Pmu,
    cfg: &DpConfig,
) -> DpResult {
    run_horizon(
        graph,
        subsets,
        solar,
        slot_duration,
        cap,
        initial,
        storage,
        pmu,
        cfg,
        None,
        false,
    )
}

#[allow(clippy::too_many_arguments)]
fn run_horizon(
    graph: &TaskGraph,
    subsets: &[TaskSet],
    solar: &[Vec<Joules>],
    slot_duration: Seconds,
    cap: &SuperCap,
    initial: CapState,
    storage: &StorageModelParams,
    pmu: &Pmu,
    cfg: &DpConfig,
    cache: Option<&SubsetSimCache>,
    parallel: bool,
) -> DpResult {
    // Degenerate horizons (no periods, no candidate subsets) have a
    // well-defined empty optimum; returning it keeps fault-injected
    // callers alive instead of aborting the run.
    if solar.is_empty() || subsets.is_empty() {
        return DpResult {
            plans: Vec::new(),
            total_misses: 0,
            final_voltage: initial.voltage(),
            complexity: 0,
        };
    }
    let horizon = solar.len();
    let buckets = cfg.voltage_buckets.max(2);
    let mut complexity: u64 = 0;

    // value[b]: (misses-to-go, -final-energy) from the *next* stage.
    // Terminal: zero misses, reward stored energy as the tie-break so
    // equally-missing plans keep charge for the future.
    let mut value: Vec<(f64, f64)> = (0..buckets)
        .map(|b| {
            let v = bucket_voltage(cap, b, buckets);
            (0.0, -cap.capacitance().stored_energy(v).value())
        })
        .collect();
    // choice[p][b] = best subset index at period p from bucket b.
    let mut choice = vec![vec![0usize; buckets]; horizon];

    for p in (0..horizon).rev() {
        // Buckets of one stage only read the previous stage's `value`,
        // so they fan out across workers; results come back in bucket
        // order, which keeps the stage bitwise identical to the serial
        // loop (each bucket's subset scan is untouched).
        let eval_bucket = |b: usize| -> ((f64, f64), usize, u64) {
            let v0 = bucket_voltage(cap, b, buckets);
            let mut best = (f64::INFINITY, f64::INFINITY);
            let mut best_s = 0usize;
            let mut expansions = 0u64;
            for (si, &subset) in subsets.iter().enumerate() {
                expansions += 1;
                let (outcome, v1) = step(
                    cache,
                    graph,
                    subset,
                    &solar[p],
                    slot_duration,
                    cap,
                    v0,
                    storage,
                    pmu,
                );
                let b1 = voltage_bucket(cap, v1, buckets);
                let next = value[b1];
                let cand = (outcome.misses as f64 + next.0, next.1);
                if cand < best {
                    best = cand;
                    best_s = si;
                }
            }
            (best, best_s, expansions)
        };
        let results: Vec<((f64, f64), usize, u64)> = if parallel {
            par_map_range(buckets, eval_bucket)
        } else {
            (0..buckets).map(eval_bucket).collect()
        };
        let mut new_value = vec![(f64::INFINITY, f64::INFINITY); buckets];
        for (b, (best, best_s, expansions)) in results.into_iter().enumerate() {
            new_value[b] = best;
            choice[p][b] = best_s;
            complexity += expansions;
        }
        value = new_value;
    }

    // Forward replay with exact voltages.
    let mut plans = Vec::with_capacity(horizon);
    let mut voltage = initial.voltage();
    let mut total_misses = 0usize;
    for (p, solar_p) in solar.iter().enumerate() {
        let b = voltage_bucket(cap, voltage, buckets);
        let subset = subsets[choice[p][b]];
        let (outcome, v1) = step(
            cache,
            graph,
            subset,
            solar_p,
            slot_duration,
            cap,
            voltage,
            storage,
            pmu,
        );
        let solar_energy: Joules = solar_p.iter().copied().sum();
        plans.push(PeriodPlan {
            subset,
            alpha: alpha_index(graph, subset, solar_energy),
            expected_misses: outcome.misses,
            cap_energy: outcome.cap_drawn,
        });
        total_misses += outcome.misses;
        voltage = v1;
    }

    DpResult {
        plans,
        total_misses,
        final_voltage: voltage,
        complexity,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::subsets::dmr_level_subsets;
    use helio_common::units::{Farads, Seconds};
    use helio_tasks::benchmarks;

    const SLOT: Seconds = Seconds::new(60.0);
    const SLOTS: usize = 10;

    fn setup() -> (TaskGraph, SuperCap, StorageModelParams, Pmu) {
        let storage = StorageModelParams::default();
        let cap = SuperCap::new(Farads::new(10.0), &storage).unwrap();
        (benchmarks::ecg(), cap, storage, Pmu::default())
    }

    use helio_tasks::TaskGraph;

    fn sunny_period() -> Vec<Joules> {
        vec![Joules::new(8.0); SLOTS]
    }

    fn dark_period() -> Vec<Joules> {
        vec![Joules::ZERO; SLOTS]
    }

    #[test]
    fn sunny_horizon_completes_everything() {
        let (g, cap, storage, pmu) = setup();
        let subsets = dmr_level_subsets(&g, 2);
        let solar = vec![sunny_period(); 4];
        let r = optimize_horizon(
            &g,
            &subsets,
            &solar,
            SLOT,
            &cap,
            cap.empty_state(),
            &storage,
            &pmu,
            &DpConfig::default(),
        );
        assert_eq!(r.total_misses, 0, "{r:?}");
        assert!(r.plans.iter().all(|p| p.subset == g.all_tasks()));
        assert!(r.complexity > 0);
    }

    #[test]
    fn dp_banks_energy_for_the_night() {
        // Two sunny periods followed by four dark ones: the DP should
        // store enough during the day to keep completing work at night,
        // unlike a greedy full-subset run.
        let (g, cap, storage, pmu) = setup();
        let subsets = dmr_level_subsets(&g, 2);
        let mut solar = vec![sunny_period(), sunny_period()];
        solar.extend(vec![dark_period(); 4]);
        let r = optimize_horizon(
            &g,
            &subsets,
            &solar,
            SLOT,
            &cap,
            cap.empty_state(),
            &storage,
            &pmu,
            &DpConfig::default(),
        );
        // Greedy everything-every-period for comparison.
        let full = g.all_tasks();
        let mut v = cap.empty_state().voltage();
        let mut greedy_misses = 0;
        for p in &solar {
            let (o, v1) = step(None, &g, full, p, SLOT, &cap, v, &storage, &pmu);
            greedy_misses += o.misses;
            v = v1;
        }
        assert!(
            r.total_misses <= greedy_misses,
            "DP {} must not lose to greedy {}",
            r.total_misses,
            greedy_misses
        );
        // At least one night period should still complete something.
        let night_completions: usize = r.plans[2..].iter().map(|p| p.subset.len()).sum();
        assert!(night_completions > 0, "{:?}", r.plans);
    }

    #[test]
    fn alpha_reflects_load_to_supply_ratio() {
        let (g, ..) = setup();
        let full = g.all_tasks();
        let empty = TaskSet::EMPTY;
        // ECG total energy ≈ 12.2 J.
        let a = alpha_index(&g, full, Joules::new(12.2));
        assert!((a - 1.0).abs() < 0.05, "alpha {a}");
        assert_eq!(alpha_index(&g, full, Joules::ZERO), 10.0);
        assert_eq!(alpha_index(&g, empty, Joules::ZERO), 0.0);
        assert!(alpha_index(&g, full, Joules::new(50.0)) < 0.5);
    }

    #[test]
    fn bucket_round_trips() {
        let (_, cap, ..) = setup();
        for b in 0..12 {
            let v = bucket_voltage(&cap, b, 12);
            assert_eq!(voltage_bucket(&cap, v, 12), b);
        }
        // Extremes map to the ends.
        assert_eq!(voltage_bucket(&cap, cap.v_cutoff(), 12), 0);
        assert_eq!(voltage_bucket(&cap, cap.v_full(), 12), 11);
    }

    #[test]
    fn cached_parallel_dp_matches_serial_reference() {
        let (g, cap, storage, pmu) = setup();
        let subsets = dmr_level_subsets(&g, 2);
        let mut solar = vec![sunny_period(), sunny_period()];
        solar.extend(vec![dark_period(); 3]);
        let cfg = DpConfig::default();
        let fast = optimize_horizon(
            &g,
            &subsets,
            &solar,
            SLOT,
            &cap,
            cap.empty_state(),
            &storage,
            &pmu,
            &cfg,
        );
        let reference = optimize_horizon_serial(
            &g,
            &subsets,
            &solar,
            SLOT,
            &cap,
            cap.empty_state(),
            &storage,
            &pmu,
            &cfg,
        );
        assert_eq!(fast, reference);
        assert_eq!(
            fast.final_voltage.value().to_bits(),
            reference.final_voltage.value().to_bits(),
            "replay voltages must match bitwise"
        );
    }

    #[test]
    fn shared_cache_reuses_repeated_periods() {
        let (g, cap, storage, pmu) = setup();
        let subsets = dmr_level_subsets(&g, 2);
        let solar = vec![dark_period(); 4];
        let cache = helio_sched::SubsetSimCache::new();
        let r = optimize_horizon_with_cache(
            &g,
            &subsets,
            &solar,
            SLOT,
            &cap,
            cap.empty_state(),
            &storage,
            &pmu,
            &DpConfig::default(),
            &cache,
        );
        let stats = cache.stats();
        // Four identical dark periods: stages after the first hit the
        // cache for every (bucket, subset) cell.
        assert!(
            stats.hits > stats.misses,
            "expected mostly hits, got {stats:?}"
        );
        // Complexity still counts every expansion, hit or miss.
        assert_eq!(
            r.complexity,
            (solar.len() * DpConfig::default().voltage_buckets * subsets.len()) as u64
        );
    }

    #[test]
    fn complexity_scales_with_horizon() {
        let (g, cap, storage, pmu) = setup();
        let subsets = dmr_level_subsets(&g, 1);
        let short = optimize_horizon(
            &g,
            &subsets,
            &vec![sunny_period(); 2],
            SLOT,
            &cap,
            cap.empty_state(),
            &storage,
            &pmu,
            &DpConfig::default(),
        );
        let long = optimize_horizon(
            &g,
            &subsets,
            &vec![sunny_period(); 8],
            SLOT,
            &cap,
            cap.empty_state(),
            &storage,
            &pmu,
            &DpConfig::default(),
        );
        assert_eq!(long.complexity, 4 * short.complexity);
    }
}
