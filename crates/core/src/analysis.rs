//! Post-run analysis helpers: the slicing and summarisation the
//! paper's discussion sections perform on simulation results (day vs
//! night split, capacitor usage, DMR-vs-utilisation trade-off, and
//! cross-scheduler comparison tables).

use helio_common::time::TimeGrid;
use serde::{Deserialize, Serialize};

use crate::metrics::SimReport;

/// DMR split into daylight (06–18 h local) and night periods — the
/// Fig. 1 decomposition that motivates long-term scheduling.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DayNightSplit {
    /// DMR over daylight periods.
    pub day_dmr: f64,
    /// DMR over night periods.
    pub night_dmr: f64,
    /// Fraction of all periods that are daylight.
    pub day_fraction: f64,
}

/// Computes the day/night DMR split of a report on its grid.
pub fn day_night_split(report: &SimReport, grid: &TimeGrid) -> DayNightSplit {
    let mut day = (0usize, 0usize);
    let mut night = (0usize, 0usize);
    let mut day_periods = 0usize;
    for p in &report.periods {
        let hour = grid.hour_of_day(p.period);
        if (6.0..18.0).contains(&hour) {
            day.0 += p.misses;
            day.1 += p.tasks;
            day_periods += 1;
        } else {
            night.0 += p.misses;
            night.1 += p.tasks;
        }
    }
    let ratio = |(m, t): (usize, usize)| if t == 0 { 0.0 } else { m as f64 / t as f64 };
    DayNightSplit {
        day_dmr: ratio(day),
        night_dmr: ratio(night),
        day_fraction: if report.periods.is_empty() {
            0.0
        } else {
            day_periods as f64 / report.periods.len() as f64
        },
    }
}

/// Periods each capacitor was active, indexed by capacitor.
pub fn capacitor_usage(report: &SimReport, capacitor_count: usize) -> Vec<usize> {
    let mut usage = vec![0usize; capacitor_count];
    for p in &report.periods {
        if let Some(u) = usage.get_mut(p.capacitor) {
            *u += 1;
        }
    }
    usage
}

/// Periods each scheduling pattern was chosen, as
/// `(asap, inter, intra)` counts.
pub fn pattern_usage(report: &SimReport) -> (usize, usize, usize) {
    let mut counts = (0usize, 0usize, 0usize);
    for p in &report.periods {
        match p.pattern {
            crate::planner::Pattern::Asap => counts.0 += 1,
            crate::planner::Pattern::Inter => counts.1 += 1,
            crate::planner::Pattern::Intra => counts.2 += 1,
        }
    }
    counts
}

/// One scheduler's point in the DMR-vs-utilisation plane (the Fig. 9
/// scatter).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TradeoffPoint {
    /// Scheduler name.
    pub planner: String,
    /// Long-term DMR.
    pub dmr: f64,
    /// Energy utilisation.
    pub utilisation: f64,
    /// Migration efficiency.
    pub migration_efficiency: f64,
}

impl TradeoffPoint {
    /// Extracts the trade-off point of a report.
    pub fn of(report: &SimReport) -> Self {
        Self {
            planner: report.planner.clone(),
            dmr: report.overall_dmr(),
            utilisation: report.energy_utilisation(),
            migration_efficiency: report.migration_efficiency(),
        }
    }
}

/// Pairwise DMR improvement of `candidate` over `baseline` per day,
/// returning `(max, mean)` improvements in DMR points (positive =
/// candidate better).
///
/// Reports covering different horizons are compared over the days both
/// cover; `(0.0, 0.0)` when there is no overlap.
pub fn dmr_improvement(candidate: &SimReport, baseline: &SimReport) -> (f64, f64) {
    let days = candidate
        .daily_dmr_series()
        .len()
        .min(baseline.daily_dmr_series().len());
    if days == 0 {
        return (0.0, 0.0);
    }
    let mut max = f64::MIN;
    let mut total = 0.0;
    for d in 0..days {
        let gain = baseline.day_dmr(d) - candidate.day_dmr(d);
        max = max.max(gain);
        total += gain;
    }
    (max, total / days.max(1) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::PeriodRecord;
    use crate::planner::Pattern;
    use helio_common::time::PeriodRef;
    use helio_common::units::{Joules, Seconds};

    fn grid() -> TimeGrid {
        TimeGrid::new(1, 24, 10, Seconds::new(60.0)).unwrap()
    }

    fn record(period: usize, misses: usize, pattern: Pattern, cap: usize) -> PeriodRecord {
        PeriodRecord {
            period: PeriodRef::new(0, period),
            misses,
            tasks: 4,
            harvested: Joules::new(10.0),
            served_direct: Joules::new(5.0),
            served_storage: Joules::new(1.0),
            stored: Joules::new(2.0),
            wasted: Joules::ZERO,
            unmet: Joules::ZERO,
            leaked: Joules::ZERO,
            brownouts: 0,
            pattern,
            capacitor: cap,
        }
    }

    fn report() -> SimReport {
        // 24 periods on a 24-period day: periods 6..18 are daylight.
        let periods = (0..24)
            .map(|j| {
                let hour = 24.0 * j as f64 / 24.0;
                let misses = if (6.0..18.0).contains(&hour) { 0 } else { 4 };
                let pattern = if misses > 0 {
                    Pattern::Inter
                } else {
                    Pattern::Intra
                };
                record(j, misses, pattern, j % 2)
            })
            .collect();
        SimReport {
            planner: "x".into(),
            periods,
            complexity: 0,
            nvp_backups: 0,
            nvp_restores: 0,
            nvp_overhead: Joules::ZERO,
            faults: vec![],
            degraded: helio_faults::DegradedCounters::default(),
        }
    }

    #[test]
    fn split_separates_day_and_night() {
        let s = day_night_split(&report(), &grid());
        assert_eq!(s.day_dmr, 0.0);
        assert_eq!(s.night_dmr, 1.0);
        assert!((s.day_fraction - 0.5).abs() < 1e-12);
    }

    #[test]
    fn capacitor_usage_histogram() {
        let u = capacitor_usage(&report(), 2);
        assert_eq!(u, vec![12, 12]);
        // Out-of-range capacitor indices are ignored gracefully.
        let u = capacitor_usage(&report(), 1);
        assert_eq!(u, vec![12]);
    }

    #[test]
    fn pattern_usage_counts() {
        let (asap, inter, intra) = pattern_usage(&report());
        assert_eq!(asap, 0);
        assert_eq!(inter, 12);
        assert_eq!(intra, 12);
    }

    #[test]
    fn tradeoff_point_extracts_aggregates() {
        let p = TradeoffPoint::of(&report());
        assert!((p.dmr - 0.5).abs() < 1e-12);
        assert!((p.utilisation - 0.6).abs() < 1e-12);
        assert_eq!(p.planner, "x");
    }

    #[test]
    fn improvement_of_identical_reports_is_zero() {
        let r = report();
        let (max, mean) = dmr_improvement(&r, &r);
        assert_eq!(max, 0.0);
        assert_eq!(mean, 0.0);
    }
}
