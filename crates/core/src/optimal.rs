//! The static optimal planner — the paper's upper bound ("a static
//! optimal scheduler is provided as an upper bound based on the given
//! solar power", Section 6.3).
//!
//! It runs the long-term DP of Section 4.2 on the *true* solar trace,
//! choosing the best supercapacitor per day and the best task subset
//! per period, then replays those decisions during simulation. The
//! per-period `(observation, decision)` pairs it records double as the
//! DBN training samples of the offline pipeline.

use helio_ann::{Matrix, TrainingSet};
use helio_common::time::PeriodRef;
use helio_common::units::{Joules, Volts};
use helio_par::par_map_range;
use helio_sched::{CacheStats, SubsetSimCache};
use helio_solar::SolarTrace;
use helio_storage::SuperCap;
use helio_tasks::TaskGraph;

use crate::config::NodeConfig;
use crate::error::CoreError;
use crate::longterm::{optimize_horizon_with_cache, DpConfig, PeriodPlan};
use crate::planner::{Pattern, PeriodPlanner, PlanDecision, PlannerObservation};
use crate::subsets::dmr_level_subsets;

/// The precomputed optimal plan, replayed period by period.
///
/// The recorded per-period `(observation, decision)` pairs are packed
/// into a [`TrainingSet`]: input row `r` holds `[prev-period slot
/// powers (mW) ×N_s, capacitor voltages ×H, accumulated DMR]`, target
/// row `r` holds `[capacitor index, α, te bits ×N]`.
#[derive(Debug, Clone)]
pub struct OptimalPlanner {
    decisions: Vec<(usize, PeriodPlan)>,
    samples: TrainingSet,
    delta: f64,
    complexity: u64,
    cache_stats: CacheStats,
    periods_per_day: usize,
}

impl OptimalPlanner {
    /// Computes the optimal plan for a node/task-set/trace triple.
    ///
    /// `delta` is the pattern-selection threshold of Section 5.2: when
    /// `|1 − α| > delta` the period uses plain inter-task scheduling,
    /// otherwise intra-task load matching.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] variants for invalid configuration or task
    /// sets.
    pub fn compute(
        node: &NodeConfig,
        graph: &TaskGraph,
        trace: &SolarTrace,
        dp: &DpConfig,
        delta: f64,
    ) -> Result<Self, CoreError> {
        if trace.grid() != &node.grid {
            return Err(CoreError::TraceMismatch(
                "optimal planner trace must match the node grid".into(),
            ));
        }
        graph
            .validate(node.grid.period_duration())
            .map_err(|e| CoreError::Tasks(e.to_string()))?;

        let grid = &node.grid;
        let storage = &node.storage;
        let pmu = &node.pmu;
        let slot_duration = grid.slot_duration();
        let subsets = dmr_level_subsets(graph, dp.keep_per_level);
        let caps: Vec<SuperCap> = node
            .capacitors
            .iter()
            .map(|&c| SuperCap::new(c, storage))
            .collect::<Result<_, _>>()?;

        let mut voltages: Vec<Volts> = caps.iter().map(|c| c.v_cutoff()).collect();
        let mut decisions: Vec<(usize, PeriodPlan)> = Vec::with_capacity(grid.total_periods());
        // Per-period observation seeds for the sample builder below:
        // the bank voltages at period start (flat layout, `caps.len()`
        // per period) and the accumulated DMR. Everything else an
        // observation needs is a pure function of the trace or the
        // decision, so recording these two keeps the sequential replay
        // cheap and lets sample extraction fan out per day.
        let mut volt_snap: Vec<f64> = Vec::with_capacity(grid.total_periods() * caps.len());
        let mut dmr_snap: Vec<f64> = Vec::with_capacity(grid.total_periods());
        let mut complexity = 0u64;
        let mut acc_misses = 0usize;
        let mut acc_tasks = 0usize;
        // One memo cache for the whole plan: candidate DPs of one day
        // and the same capacitor across days revisit identical
        // (subset, solar, voltage) cells constantly.
        let cache = SubsetSimCache::new();

        for day in 0..grid.days() {
            // Per-period per-slot solar of this day.
            let solar: Vec<Vec<Joules>> = (0..grid.periods_per_day())
                .map(|j| {
                    grid.slots_in(PeriodRef::new(day, j))
                        .map(|s| trace.slot_energy(s))
                        .collect()
                })
                .collect();

            // Choose the day's capacitor: run the DP per candidate and
            // keep the one with the fewest misses (ties: most final
            // energy). The candidates only read the day's solar and
            // their own start voltage, so they run in parallel; the
            // selection below walks the results in candidate order,
            // matching the serial tie-breaking exactly.
            let candidates: Vec<crate::longterm::DpResult> = par_map_range(caps.len(), |h| {
                optimize_horizon_with_cache(
                    graph,
                    &subsets,
                    &solar,
                    slot_duration,
                    &caps[h],
                    caps[h].state_at(voltages[h]),
                    storage,
                    pmu,
                    dp,
                    &cache,
                )
            });
            let mut best: Option<(usize, crate::longterm::DpResult)> = None;
            for (h, r) in candidates.into_iter().enumerate() {
                complexity += r.complexity;
                let better = match &best {
                    None => true,
                    Some((bh, br)) => {
                        (r.total_misses, -r.final_voltage.value())
                            < (
                                br.total_misses,
                                -caps[*bh].state_at(br.final_voltage).voltage().value(),
                            )
                    }
                };
                if better {
                    best = Some((h, r));
                }
            }
            let (h_star, result) = best.expect("at least one capacitor");

            // Record decisions and observation seeds, replaying period
            // by period so the snapshot voltages track the bank.
            for (j, plan) in result.plans.iter().enumerate() {
                let acc_dmr = if acc_tasks == 0 {
                    0.0
                } else {
                    acc_misses as f64 / acc_tasks as f64
                };
                volt_snap.extend(voltages.iter().map(|v| v.value()));
                dmr_snap.push(acc_dmr);

                decisions.push((h_star, *plan));
                acc_misses += plan.expected_misses;
                acc_tasks += graph.len();

                // Advance voltages: active capacitor per the plan, the
                // others leak.
                let period_secs = grid.period_duration();
                for (h, cap) in caps.iter().enumerate() {
                    if h == h_star {
                        let mut bank =
                            helio_storage::CapacitorBank::new(&[cap.capacitance()], storage)?;
                        bank.set_state(0, cap.state_at(voltages[h]))?;
                        helio_sched::simulate_subset(
                            graph,
                            plan.subset,
                            &solar[j],
                            slot_duration,
                            &mut bank,
                            pmu,
                            storage,
                        );
                        voltages[h] = bank.state(0)?.voltage();
                    } else {
                        let mut state = cap.state_at(voltages[h]);
                        cap.leak(&mut state, storage, period_secs);
                        voltages[h] = state.voltage();
                    }
                }
            }
        }

        // Build the packed training set from the recorded seeds. Each
        // day's rows depend only on the trace, the decisions, and that
        // day's snapshots, so extraction fans out across workers; the
        // day-ordered merge makes the result identical for any thread
        // count (including serial).
        let n_caps = caps.len();
        let spp = grid.slots_per_period();
        let ppd = grid.periods_per_day();
        let in_dim = spp + n_caps + 1;
        let out_dim = 2 + graph.len();
        let chunks: Vec<(Vec<f64>, Vec<f64>)> =
            par_map_range(grid.days(), |day| {
                let mut ins = Vec::with_capacity(ppd * in_dim);
                let mut outs = Vec::with_capacity(ppd * out_dim);
                for j in 0..ppd {
                    let flat = day * ppd + j;
                    // Previous period's slot powers (mW); zeros before the
                    // first period.
                    if flat == 0 {
                        ins.extend(std::iter::repeat_n(0.0, spp));
                    } else {
                        let prev = grid.period_at(flat - 1);
                        ins.extend(trace.period_powers(prev).iter().map(|p| p.milliwatts()));
                    }
                    ins.extend_from_slice(&volt_snap[flat * n_caps..(flat + 1) * n_caps]);
                    ins.push(dmr_snap[flat]);

                    let (h_star, plan) = &decisions[flat];
                    outs.push(*h_star as f64);
                    outs.push(plan.alpha);
                    outs.extend((0..graph.len()).map(|i| {
                        if plan.subset.contains(i) {
                            1.0
                        } else {
                            0.0
                        }
                    }));
                }
                (ins, outs)
            });
        let total = grid.total_periods();
        let mut flat_in = Vec::with_capacity(total * in_dim);
        let mut flat_out = Vec::with_capacity(total * out_dim);
        for (ins, outs) in chunks {
            flat_in.extend_from_slice(&ins);
            flat_out.extend_from_slice(&outs);
        }
        let samples = TrainingSet::new(
            Matrix::from_flat(total, in_dim, flat_in)?,
            Matrix::from_flat(total, out_dim, flat_out)?,
        )?;

        Ok(Self {
            decisions,
            samples,
            delta,
            complexity,
            cache_stats: cache.stats(),
            periods_per_day: grid.periods_per_day(),
        })
    }

    /// The recorded DBN training samples, packed one observation/
    /// decision pair per matrix row.
    pub fn samples(&self) -> &TrainingSet {
        &self.samples
    }

    /// Hit/miss counters of the period-simulation memo cache the DP
    /// runs shared while computing this plan.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache_stats
    }

    /// The per-period plans (capacitor index, plan).
    pub fn decisions(&self) -> &[(usize, PeriodPlan)] {
        &self.decisions
    }

    /// Pattern chosen by the `δ` rule for a given `α`.
    pub fn pattern_for_alpha(alpha: f64, delta: f64) -> Pattern {
        if (1.0 - alpha).abs() > delta {
            Pattern::Inter
        } else {
            Pattern::Intra
        }
    }
}

impl PeriodPlanner for OptimalPlanner {
    fn name(&self) -> &'static str {
        "optimal"
    }

    fn plan(&mut self, obs: &PlannerObservation<'_>) -> PlanDecision {
        let flat = obs.period.day * self.periods_per_day + obs.period.period;
        match self.decisions.get(flat) {
            Some((cap, plan)) => PlanDecision {
                capacitor: Some(*cap),
                allowed: Some(plan.subset),
                pattern: Self::pattern_for_alpha(plan.alpha, self.delta),
            },
            None => PlanDecision::everything(Pattern::Intra),
        }
    }

    fn complexity(&self) -> u64 {
        self.complexity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::planner::FixedPlanner;
    use helio_common::time::TimeGrid;
    use helio_common::units::{Farads, Seconds};
    use helio_solar::{DayArchetype, SolarPanel, TraceBuilder};
    use helio_tasks::benchmarks;

    fn grid() -> TimeGrid {
        TimeGrid::new(2, 24, 10, Seconds::new(60.0)).unwrap()
    }

    fn node() -> NodeConfig {
        NodeConfig::builder(grid())
            .capacitors(&[Farads::new(2.0), Farads::new(15.0)])
            .build()
            .unwrap()
    }

    fn trace() -> SolarTrace {
        TraceBuilder::new(grid(), SolarPanel::paper_panel())
            .seed(3)
            .days(&[DayArchetype::Clear, DayArchetype::Overcast])
            .build()
    }

    #[test]
    fn optimal_beats_or_matches_baselines() {
        let node = node();
        let t = trace();
        let g = benchmarks::ecg();
        let mut optimal =
            OptimalPlanner::compute(&node, &g, &t, &DpConfig::default(), 0.5).unwrap();
        let engine = Engine::new(&node, &g, &t).unwrap();
        let opt_report = engine.run(&mut optimal).unwrap();
        for pattern in [Pattern::Intra, Pattern::Inter, Pattern::Asap] {
            for cap in 0..2 {
                let base = engine.run(&mut FixedPlanner::new(pattern, cap)).unwrap();
                assert!(
                    opt_report.overall_dmr() <= base.overall_dmr() + 0.02,
                    "optimal {} must beat {}@{cap} {}",
                    opt_report.overall_dmr(),
                    base.planner,
                    base.overall_dmr()
                );
            }
        }
    }

    #[test]
    fn samples_have_consistent_shapes() {
        let node = node();
        let t = trace();
        let g = benchmarks::ecg();
        let planner = OptimalPlanner::compute(&node, &g, &t, &DpConfig::default(), 0.5).unwrap();
        let set = planner.samples();
        assert_eq!(set.len(), grid().total_periods());
        assert_eq!(set.input_dim(), grid().slots_per_period() + 2 + 1);
        assert_eq!(set.output_dim(), 2 + g.len());
        for r in 0..set.len() {
            let target = set.targets.row(r);
            assert!(target[0] == 0.0 || target[0] == 1.0, "cap index");
            assert!((0.0..=10.0).contains(&target[1]), "alpha");
            // te bits are exactly 0/1.
            assert!(target[2..].iter().all(|&b| b == 0.0 || b == 1.0));
        }
        // The first observation has no previous period: its solar
        // features are zero, and the snapshot voltages start at the
        // cutoff (both capacitors uncharged but valid).
        let first = set.inputs.row(0);
        assert!(first[..grid().slots_per_period()].iter().all(|&p| p == 0.0));
        assert_eq!(set.inputs.row(1).len(), set.input_dim());
    }

    /// Sample extraction fans out per day with a day-ordered merge:
    /// repeated runs must pack byte-identical sets however the OS
    /// schedules the workers.
    #[test]
    fn sample_extraction_is_deterministic() {
        let node = node();
        let t = trace();
        let g = benchmarks::ecg();
        let a = OptimalPlanner::compute(&node, &g, &t, &DpConfig::default(), 0.5).unwrap();
        let b = OptimalPlanner::compute(&node, &g, &t, &DpConfig::default(), 0.5).unwrap();
        assert_eq!(a.samples(), b.samples());
    }

    #[test]
    fn pattern_rule_matches_paper() {
        assert_eq!(
            OptimalPlanner::pattern_for_alpha(10.0, 0.5),
            Pattern::Inter,
            "no solar at night: plain inter-task"
        );
        assert_eq!(
            OptimalPlanner::pattern_for_alpha(1.1, 0.5),
            Pattern::Intra,
            "balanced load: fine-grained matching pays off"
        );
        assert_eq!(
            OptimalPlanner::pattern_for_alpha(0.05, 0.5),
            Pattern::Inter,
            "abundant solar: intra-task effort is unnecessary"
        );
    }

    #[test]
    fn complexity_is_reported() {
        let node = node();
        let t = trace();
        let g = benchmarks::ecg();
        let planner = OptimalPlanner::compute(&node, &g, &t, &DpConfig::default(), 0.5).unwrap();
        assert!(planner.complexity() > 1000);
        let stats = planner.cache_stats();
        // Night periods repeat, so the shared cache must see reuse.
        assert!(stats.hits > 0, "{stats:?}");
        assert!(stats.hit_rate() > 0.0 && stats.hit_rate() < 1.0);
    }
}
