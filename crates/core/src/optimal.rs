//! The static optimal planner — the paper's upper bound ("a static
//! optimal scheduler is provided as an upper bound based on the given
//! solar power", Section 6.3).
//!
//! It runs the long-term DP of Section 4.2 on the *true* solar trace,
//! choosing the best supercapacitor per day and the best task subset
//! per period, then replays those decisions during simulation. The
//! per-period `(observation, decision)` pairs it records double as the
//! DBN training samples of the offline pipeline.

use helio_common::time::PeriodRef;
use helio_common::units::{Joules, Volts};
use helio_par::par_map_range;
use helio_sched::{CacheStats, SubsetSimCache};
use helio_solar::SolarTrace;
use helio_storage::SuperCap;
use helio_tasks::TaskGraph;

use crate::config::NodeConfig;
use crate::error::CoreError;
use crate::longterm::{optimize_horizon_with_cache, DpConfig, PeriodPlan};
use crate::planner::{Pattern, PeriodPlanner, PlanDecision, PlannerObservation};
use crate::subsets::dmr_level_subsets;

/// One recorded training sample: the observation vector the online DBN
/// will see, and the optimal decision vector it should produce.
#[derive(Debug, Clone, PartialEq)]
pub struct OptimalSample {
    /// `[prev-period slot powers (mW) ×N_s, capacitor voltages ×H,
    /// accumulated DMR]`.
    pub input: Vec<f64>,
    /// `[capacitor index, α, te bits ×N]`.
    pub target: Vec<f64>,
}

/// The precomputed optimal plan, replayed period by period.
#[derive(Debug, Clone)]
pub struct OptimalPlanner {
    decisions: Vec<(usize, PeriodPlan)>,
    samples: Vec<OptimalSample>,
    delta: f64,
    complexity: u64,
    cache_stats: CacheStats,
    periods_per_day: usize,
}

impl OptimalPlanner {
    /// Computes the optimal plan for a node/task-set/trace triple.
    ///
    /// `delta` is the pattern-selection threshold of Section 5.2: when
    /// `|1 − α| > delta` the period uses plain inter-task scheduling,
    /// otherwise intra-task load matching.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] variants for invalid configuration or task
    /// sets.
    pub fn compute(
        node: &NodeConfig,
        graph: &TaskGraph,
        trace: &SolarTrace,
        dp: &DpConfig,
        delta: f64,
    ) -> Result<Self, CoreError> {
        if trace.grid() != &node.grid {
            return Err(CoreError::TraceMismatch(
                "optimal planner trace must match the node grid".into(),
            ));
        }
        graph
            .validate(node.grid.period_duration())
            .map_err(|e| CoreError::Tasks(e.to_string()))?;

        let grid = &node.grid;
        let storage = &node.storage;
        let pmu = &node.pmu;
        let slot_duration = grid.slot_duration();
        let subsets = dmr_level_subsets(graph, dp.keep_per_level);
        let caps: Vec<SuperCap> = node
            .capacitors
            .iter()
            .map(|&c| SuperCap::new(c, storage))
            .collect::<Result<_, _>>()?;

        let mut voltages: Vec<Volts> = caps.iter().map(|c| c.v_cutoff()).collect();
        let mut decisions: Vec<(usize, PeriodPlan)> = Vec::with_capacity(grid.total_periods());
        let mut samples: Vec<OptimalSample> = Vec::with_capacity(grid.total_periods());
        let mut complexity = 0u64;
        let mut acc_misses = 0usize;
        let mut acc_tasks = 0usize;
        // One memo cache for the whole plan: candidate DPs of one day
        // and the same capacitor across days revisit identical
        // (subset, solar, voltage) cells constantly.
        let cache = SubsetSimCache::new();

        for day in 0..grid.days() {
            // Per-period per-slot solar of this day.
            let solar: Vec<Vec<Joules>> = (0..grid.periods_per_day())
                .map(|j| {
                    grid.slots_in(PeriodRef::new(day, j))
                        .map(|s| trace.slot_energy(s))
                        .collect()
                })
                .collect();

            // Choose the day's capacitor: run the DP per candidate and
            // keep the one with the fewest misses (ties: most final
            // energy). The candidates only read the day's solar and
            // their own start voltage, so they run in parallel; the
            // selection below walks the results in candidate order,
            // matching the serial tie-breaking exactly.
            let candidates: Vec<crate::longterm::DpResult> = par_map_range(caps.len(), |h| {
                optimize_horizon_with_cache(
                    graph,
                    &subsets,
                    &solar,
                    slot_duration,
                    &caps[h],
                    caps[h].state_at(voltages[h]),
                    storage,
                    pmu,
                    dp,
                    &cache,
                )
            });
            let mut best: Option<(usize, crate::longterm::DpResult)> = None;
            for (h, r) in candidates.into_iter().enumerate() {
                complexity += r.complexity;
                let better = match &best {
                    None => true,
                    Some((bh, br)) => {
                        (r.total_misses, -r.final_voltage.value())
                            < (
                                br.total_misses,
                                -caps[*bh].state_at(br.final_voltage).voltage().value(),
                            )
                    }
                };
                if better {
                    best = Some((h, r));
                }
            }
            let (h_star, result) = best.expect("at least one capacitor");

            // Record decisions and training samples, replaying period by
            // period so the sample's voltage vector tracks the bank.
            for (j, plan) in result.plans.iter().enumerate() {
                let period = PeriodRef::new(day, j);
                let acc_dmr = if acc_tasks == 0 {
                    0.0
                } else {
                    acc_misses as f64 / acc_tasks as f64
                };
                let mut input: Vec<f64> =
                    Vec::with_capacity(grid.slots_per_period() + caps.len() + 1);
                // Previous period's slot powers (mW); zeros before the
                // first period.
                let flat = grid.period_index(period);
                if flat == 0 {
                    input.extend(std::iter::repeat_n(0.0, grid.slots_per_period()));
                } else {
                    let prev = grid.period_at(flat - 1);
                    input.extend(trace.period_powers(prev).iter().map(|p| p.milliwatts()));
                }
                input.extend(voltages.iter().map(|v| v.value()));
                input.push(acc_dmr);

                let mut target = vec![h_star as f64, plan.alpha];
                target.extend((0..graph.len()).map(|i| {
                    if plan.subset.contains(i) {
                        1.0
                    } else {
                        0.0
                    }
                }));
                samples.push(OptimalSample { input, target });

                decisions.push((h_star, *plan));
                acc_misses += plan.expected_misses;
                acc_tasks += graph.len();

                // Advance voltages: active capacitor per the plan, the
                // others leak.
                let period_secs = grid.period_duration();
                for (h, cap) in caps.iter().enumerate() {
                    if h == h_star {
                        let mut bank =
                            helio_storage::CapacitorBank::new(&[cap.capacitance()], storage)?;
                        bank.set_state(0, cap.state_at(voltages[h]))?;
                        helio_sched::simulate_subset(
                            graph,
                            plan.subset,
                            &solar[j],
                            slot_duration,
                            &mut bank,
                            pmu,
                            storage,
                        );
                        voltages[h] = bank.state(0)?.voltage();
                    } else {
                        let mut state = cap.state_at(voltages[h]);
                        cap.leak(&mut state, storage, period_secs);
                        voltages[h] = state.voltage();
                    }
                }
            }
        }

        Ok(Self {
            decisions,
            samples,
            delta,
            complexity,
            cache_stats: cache.stats(),
            periods_per_day: grid.periods_per_day(),
        })
    }

    /// The recorded DBN training samples.
    pub fn samples(&self) -> &[OptimalSample] {
        &self.samples
    }

    /// Hit/miss counters of the period-simulation memo cache the DP
    /// runs shared while computing this plan.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache_stats
    }

    /// The per-period plans (capacitor index, plan).
    pub fn decisions(&self) -> &[(usize, PeriodPlan)] {
        &self.decisions
    }

    /// Pattern chosen by the `δ` rule for a given `α`.
    pub fn pattern_for_alpha(alpha: f64, delta: f64) -> Pattern {
        if (1.0 - alpha).abs() > delta {
            Pattern::Inter
        } else {
            Pattern::Intra
        }
    }
}

impl PeriodPlanner for OptimalPlanner {
    fn name(&self) -> &'static str {
        "optimal"
    }

    fn plan(&mut self, obs: &PlannerObservation<'_>) -> PlanDecision {
        let flat = obs.period.day * self.periods_per_day + obs.period.period;
        match self.decisions.get(flat) {
            Some((cap, plan)) => PlanDecision {
                capacitor: Some(*cap),
                allowed: Some(plan.subset),
                pattern: Self::pattern_for_alpha(plan.alpha, self.delta),
            },
            None => PlanDecision::everything(Pattern::Intra),
        }
    }

    fn complexity(&self) -> u64 {
        self.complexity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::planner::FixedPlanner;
    use helio_common::time::TimeGrid;
    use helio_common::units::{Farads, Seconds};
    use helio_solar::{DayArchetype, SolarPanel, TraceBuilder};
    use helio_tasks::benchmarks;

    fn grid() -> TimeGrid {
        TimeGrid::new(2, 24, 10, Seconds::new(60.0)).unwrap()
    }

    fn node() -> NodeConfig {
        NodeConfig::builder(grid())
            .capacitors(&[Farads::new(2.0), Farads::new(15.0)])
            .build()
            .unwrap()
    }

    fn trace() -> SolarTrace {
        TraceBuilder::new(grid(), SolarPanel::paper_panel())
            .seed(3)
            .days(&[DayArchetype::Clear, DayArchetype::Overcast])
            .build()
    }

    #[test]
    fn optimal_beats_or_matches_baselines() {
        let node = node();
        let t = trace();
        let g = benchmarks::ecg();
        let mut optimal =
            OptimalPlanner::compute(&node, &g, &t, &DpConfig::default(), 0.5).unwrap();
        let engine = Engine::new(&node, &g, &t).unwrap();
        let opt_report = engine.run(&mut optimal).unwrap();
        for pattern in [Pattern::Intra, Pattern::Inter, Pattern::Asap] {
            for cap in 0..2 {
                let base = engine.run(&mut FixedPlanner::new(pattern, cap)).unwrap();
                assert!(
                    opt_report.overall_dmr() <= base.overall_dmr() + 0.02,
                    "optimal {} must beat {}@{cap} {}",
                    opt_report.overall_dmr(),
                    base.planner,
                    base.overall_dmr()
                );
            }
        }
    }

    #[test]
    fn samples_have_consistent_shapes() {
        let node = node();
        let t = trace();
        let g = benchmarks::ecg();
        let planner = OptimalPlanner::compute(&node, &g, &t, &DpConfig::default(), 0.5).unwrap();
        let in_dim = grid().slots_per_period() + 2 + 1;
        let out_dim = 2 + g.len();
        assert_eq!(planner.samples().len(), grid().total_periods());
        for s in planner.samples() {
            assert_eq!(s.input.len(), in_dim);
            assert_eq!(s.target.len(), out_dim);
            assert!(s.target[0] == 0.0 || s.target[0] == 1.0, "cap index");
            assert!((0.0..=10.0).contains(&s.target[1]), "alpha");
        }
    }

    #[test]
    fn pattern_rule_matches_paper() {
        assert_eq!(
            OptimalPlanner::pattern_for_alpha(10.0, 0.5),
            Pattern::Inter,
            "no solar at night: plain inter-task"
        );
        assert_eq!(
            OptimalPlanner::pattern_for_alpha(1.1, 0.5),
            Pattern::Intra,
            "balanced load: fine-grained matching pays off"
        );
        assert_eq!(
            OptimalPlanner::pattern_for_alpha(0.05, 0.5),
            Pattern::Inter,
            "abundant solar: intra-task effort is unnecessary"
        );
    }

    #[test]
    fn complexity_is_reported() {
        let node = node();
        let t = trace();
        let g = benchmarks::ecg();
        let planner = OptimalPlanner::compute(&node, &g, &t, &DpConfig::default(), 0.5).unwrap();
        assert!(planner.complexity() > 1000);
        let stats = planner.cache_stats();
        // Night periods repeat, so the shared cache must see reuse.
        assert!(stats.hits > 0, "{stats:?}");
        assert!(stats.hit_rate() > 0.0 && stats.hit_rate() < 1.0);
    }
}
