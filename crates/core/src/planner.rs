//! The per-period coarse planning interface.
//!
//! At the start of every period the engine asks its planner three
//! questions (the paper's coarse-grained stage): which supercapacitor
//! should the PMU select, which tasks should this period attempt
//! (`te_{i,j}(n)`), and which fine-grained pattern should execute them
//! (intra-task load matching vs lazy inter-task — the `δ` rule of
//! Section 5.2). Baselines answer with constants ([`FixedPlanner`]);
//! the optimal and proposed planners answer from the long-term DP and
//! the DBN/MPC respectively.

use std::sync::Arc;

use helio_ann::Dbn;
use helio_common::time::{PeriodRef, TimeGrid};
use helio_common::TaskSet;
use helio_faults::{DbnFaultMode, FaultEvent};
use helio_nvp::Pmu;
use helio_solar::SolarTrace;
use helio_storage::{CapacitorBank, StorageModelParams};
use helio_tasks::TaskGraph;
use serde::{Deserialize, Serialize};

use crate::batch::PlanContext;
use crate::checkpoint::PlannerCheckpoint;

/// The fine-grained scheduling pattern for one period.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Pattern {
    /// Run everything as soon as possible (energy-blind).
    Asap,
    /// Lazy inter-task scheduling (ref. \[3\]).
    Inter,
    /// Fine-grained intra-task load matching (ref. \[9\]).
    Intra,
}

impl std::fmt::Display for Pattern {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Pattern::Asap => write!(f, "asap"),
            Pattern::Inter => write!(f, "inter"),
            Pattern::Intra => write!(f, "intra"),
        }
    }
}

/// What a planner decides for one period.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlanDecision {
    /// Capacitor index to activate; `None` keeps the current one.
    pub capacitor: Option<usize>,
    /// Task-admission mask (`te_{i,j}(n)`); `None` admits every task.
    pub allowed: Option<TaskSet>,
    /// The fine-grained pattern for this period.
    pub pattern: Pattern,
}

impl PlanDecision {
    /// "Do everything with the current capacitor" under a pattern.
    pub fn everything(pattern: Pattern) -> Self {
        Self {
            capacitor: None,
            allowed: None,
            pattern,
        }
    }
}

/// What a planner observes at the start of a period.
#[derive(Debug)]
pub struct PlannerObservation<'a> {
    /// The time grid.
    pub grid: &'a TimeGrid,
    /// The period being planned.
    pub period: PeriodRef,
    /// The task set.
    pub graph: &'a TaskGraph,
    /// The solar trace. Planners must treat entries at/after `period`
    /// as unknown; forecasts go through a
    /// [`SolarPredictor`](helio_solar::SolarPredictor).
    pub trace: &'a SolarTrace,
    /// The capacitor bank (voltages of all `H` capacitors, Fig. 6's
    /// `V^sc` inputs).
    pub bank: &'a CapacitorBank,
    /// Deadline-miss rate accumulated so far (`DMR^acc`, Eq. 19).
    pub accumulated_dmr: f64,
    /// Storage calibration (for hypothetical roll-forward).
    pub storage: &'a StorageModelParams,
    /// PMU (for hypothetical roll-forward).
    pub pmu: &'a Pmu,
}

/// Self-reported health of a planner's inference path, queried by the
/// engine (and by [`ResilientPlanner`](crate::resilient::ResilientPlanner))
/// after every [`PeriodPlanner::plan`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum PlannerHealth {
    /// The last decision came from the planner's nominal path.
    #[default]
    Healthy,
    /// The inference backend did not answer (accelerator down, weights
    /// unreadable); the decision is a built-in conservative default.
    DbnUnavailable,
    /// Inference answered with non-finite outputs; the decision is a
    /// built-in conservative default.
    NonFinite,
}

/// A per-period coarse planner.
///
/// The fault-injection hooks ([`PeriodPlanner::inject_fault`],
/// [`PeriodPlanner::health`], [`PeriodPlanner::on_contract_violation`])
/// have no-op defaults so ordinary planners stay oblivious to the
/// harness; planners with an inference path override them.
///
/// Planners are `Send` so a batch of boxed planners can be sharded
/// across the `helio-par` worker pool; every implementor is plain
/// owned data, so this costs nothing.
pub trait PeriodPlanner: Send {
    /// Planner name for experiment tables.
    fn name(&self) -> &'static str;

    /// Plans one period.
    fn plan(&mut self, obs: &PlannerObservation<'_>) -> PlanDecision;

    /// Cumulative planning complexity (state expansions) — the metric
    /// of Fig. 10(a). Zero for trivial planners.
    fn complexity(&self) -> u64 {
        0
    }

    /// Injects (or, with `None`, clears) an inference fault for the
    /// upcoming period. Default: ignored.
    fn inject_fault(&mut self, mode: Option<DbnFaultMode>) {
        let _ = mode;
    }

    /// Health of the most recent [`PeriodPlanner::plan`] call.
    fn health(&self) -> PlannerHealth {
        PlannerHealth::Healthy
    }

    /// Notifies the planner that the engine dropped one of its slot
    /// assignments for violating the scheduler contract. Default:
    /// ignored.
    fn on_contract_violation(&mut self) {}

    /// Periods this planner served from a degraded fallback path.
    fn fallback_count(&self) -> usize {
        0
    }

    /// Degradation events this planner recorded (fallback engagements,
    /// health transitions), for the report's fault log.
    fn degraded_events(&self) -> Vec<FaultEvent> {
        Vec::new()
    }

    /// Events elided from this planner's bounded internal log (see
    /// `helio_faults::cap_event_log`); surfaces in the report's
    /// `degraded.dropped_events` counter.
    fn dropped_events(&self) -> usize {
        0
    }

    /// Snapshots this planner's cross-period state at a period
    /// boundary. Stateless planners (the default) report
    /// [`PlannerCheckpoint::Stateless`].
    fn save_checkpoint(&self) -> PlannerCheckpoint {
        PlannerCheckpoint::Stateless
    }

    /// Restores state captured by [`PeriodPlanner::save_checkpoint`]
    /// into a planner built from the same configuration. Restoring a
    /// planner from its own just-saved checkpoint is a no-op, so
    /// resuming can always replay the latest checkpoint.
    ///
    /// # Errors
    ///
    /// Returns a message when the checkpoint's shape does not match
    /// this planner.
    fn restore_checkpoint(&mut self, ckpt: &PlannerCheckpoint) -> Result<(), String> {
        match ckpt {
            PlannerCheckpoint::Stateless => Ok(()),
            other => Err(format!(
                "planner `{}` is stateless but the checkpoint is {other:?}",
                self.name()
            )),
        }
    }

    /// Attaches shared cross-scenario precomputation (slot costs,
    /// topological order) built once per
    /// [`BatchEngine`](crate::batch::BatchEngine). Default: ignored.
    fn attach_context(&mut self, ctx: &Arc<PlanContext>) {
        let _ = ctx;
    }

    /// Batched-inference hook: when this period's decision needs one
    /// DBN forward, write the raw feature vector into `input`, perform
    /// the same internal bookkeeping as [`PeriodPlanner::plan`] up to
    /// the inference call (complexity accounting included), and return
    /// `true`. Returning `false` (the default, and the path taken by
    /// degraded or non-DBN planners) tells the batch engine to fall
    /// back to a plain [`PeriodPlanner::plan`] call for this scenario.
    fn batch_input(&mut self, obs: &PlannerObservation<'_>, input: &mut Vec<f64>) -> bool {
        let _ = (obs, input);
        false
    }

    /// The shared network behind [`PeriodPlanner::batch_input`], used
    /// by the batch engine to group scenarios that can share one
    /// batched forward (grouping is by `Arc` pointer identity).
    fn batch_dbn(&self) -> Option<Arc<Dbn>> {
        None
    }

    /// Completes a period that [`PeriodPlanner::batch_input`] started,
    /// given the network output row computed by the batched forward.
    /// Must produce exactly the decision (and internal state changes)
    /// that [`PeriodPlanner::plan`] would have.
    fn plan_with_output(&mut self, obs: &PlannerObservation<'_>, out: &[f64]) -> PlanDecision {
        let _ = out;
        self.plan(obs)
    }
}

/// A planner with constant answers — the baselines' "no big map"
/// behaviour: a fixed capacitor, every task admitted, one pattern.
#[derive(Debug, Clone)]
pub struct FixedPlanner {
    pattern: Pattern,
    capacitor: usize,
}

impl FixedPlanner {
    /// Creates a fixed planner using `capacitor` under `pattern`.
    pub fn new(pattern: Pattern, capacitor: usize) -> Self {
        Self { pattern, capacitor }
    }
}

impl PeriodPlanner for FixedPlanner {
    fn name(&self) -> &'static str {
        match self.pattern {
            Pattern::Asap => "asap",
            Pattern::Inter => "inter-task",
            Pattern::Intra => "intra-task",
        }
    }

    fn plan(&mut self, _obs: &PlannerObservation<'_>) -> PlanDecision {
        PlanDecision {
            capacitor: Some(self.capacitor),
            allowed: None,
            pattern: self.pattern,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_planner_is_constant() {
        let mut p = FixedPlanner::new(Pattern::Intra, 1);
        assert_eq!(p.name(), "intra-task");
        assert_eq!(p.complexity(), 0);
        // The decision does not depend on the observation; check the
        // struct contents directly.
        let d = PlanDecision {
            capacitor: Some(1),
            allowed: None,
            pattern: Pattern::Intra,
        };
        let _ = &mut p;
        assert_eq!(d.capacitor, Some(1));
        assert_eq!(d.pattern, Pattern::Intra);
    }

    #[test]
    fn decision_everything_admits_all() {
        let d = PlanDecision::everything(Pattern::Inter);
        assert!(d.allowed.is_none());
        assert!(d.capacitor.is_none());
        assert_eq!(d.pattern.to_string(), "inter");
    }

    #[test]
    fn pattern_display() {
        assert_eq!(Pattern::Asap.to_string(), "asap");
        assert_eq!(Pattern::Intra.to_string(), "intra");
    }
}
