//! Serializable mid-run snapshots of a batched simulation.
//!
//! The paper's node survives power failure by checkpointing volatile
//! state into NVM at boundaries; this module gives the *simulation
//! service* the same property. A [`BatchCheckpoint`] captures every
//! scenario's cross-period state plus each planner's internal state at
//! a period boundary, such that
//! [`BatchEngine::run_from_checkpoint`](crate::BatchEngine::run_from_checkpoint)
//! resumes to byte-identical reports — the same identity discipline as
//! the batched/sharded gates.
//!
//! What is captured vs rebuilt:
//!
//! * **Captured** — capacitor bank (wholesale: aging multiplies
//!   capacitances cumulatively and `f64` products are non-associative,
//!   so replaying aging would drift bitwise), NVP fleet (suspended
//!   tasks survive period boundaries; backup/restore counters), period
//!   records, accumulated misses, degraded counters, applied
//!   aging/leakage factors, and planner state (complexity, health,
//!   injected fault, MPC day-plan cache, resilience
//!   demotion/probation).
//! * **Rebuilt** — schedulers and executor state (reset at every
//!   period boundary anyway), scratch buffers, the shared
//!   [`PlanContext`](crate::batch::PlanContext), DBN weights and
//!   caches (run constants), and the fault harness (a pure function of
//!   its plan).

use helio_faults::{DbnFaultMode, DegradedCounters, FaultEvent};
use helio_nvp::NvpFleet;
use helio_storage::CapacitorBank;
use serde::{Deserialize, Serialize};

use crate::longterm::PeriodPlan;
use crate::metrics::PeriodRecord;
use crate::planner::PlannerHealth;

/// Cross-period engine state of one scenario at a period boundary.
/// Everything else in the per-period loop is recomputed from scratch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioCheckpoint {
    pub(crate) bank: CapacitorBank,
    pub(crate) fleet: NvpFleet,
    pub(crate) periods: Vec<PeriodRecord>,
    pub(crate) acc_misses: usize,
    pub(crate) acc_tasks: usize,
    pub(crate) degraded: DegradedCounters,
    pub(crate) applied_cap_factor: f64,
    pub(crate) leak_scale: f64,
    /// Whether a scaled leakage model was in force (the scaled params
    /// themselves are rebuilt from `leak_scale` on restore).
    pub(crate) leak_scaled: bool,
}

/// The MPC backend's day-plan cache (`ProposedPlanner::mpc`). Without
/// it a resumed run would replan mid-day from a different base period
/// and double-count DP complexity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MpcCacheState {
    /// Day the cached plan sequence was computed for.
    pub day: usize,
    /// Capacitor the cached sequence selected.
    pub capacitor: usize,
    /// Flat index of the first cached period.
    pub base_flat: usize,
    /// One plan per remaining period of the day.
    pub plans: Vec<PeriodPlan>,
}

/// [`ProposedPlanner`](crate::online::ProposedPlanner) state: the
/// complexity counter, health latch, injected inference fault, and
/// (for the MPC backend) the day-plan cache.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProposedCheckpoint {
    /// Cumulative planning complexity (Fig. 10(a) metric).
    pub complexity: u64,
    /// Health of the most recent decision.
    pub health: PlannerHealth,
    /// Inference fault injected for the upcoming period, if any.
    pub injected: Option<DbnFaultMode>,
    /// MPC day-plan cache; `None` for DBN backends or before the
    /// first MPC plan.
    pub mpc: Option<MpcCacheState>,
    /// Distilled-tier demotion state; `None` for other backends.
    pub distilled: Option<DistilledState>,
}

/// The distilled backend's cross-period degradation state. The
/// per-period prewalk/fold caches are rebuilt on resume (run
/// constants), but the demotion latch and the fallback-tier counter
/// must survive a crash or a resumed run would silently re-trust a
/// demoted artifact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DistilledState {
    /// Whether the artifact has been demoted to its compiled fallback.
    pub demoted: bool,
    /// Periods served by the compiled fallback tier.
    pub tier_fallbacks: u64,
}

/// [`ResilientPlanner`](crate::resilient::ResilientPlanner) state:
/// demotion/probation progress, its event log, and the wrapped inner
/// planner's own checkpoint.
#[derive(Debug, Clone, PartialEq)]
pub struct ResilientCheckpoint {
    /// Scheduler-contract violations charged to the inner planner.
    pub contract_violations: usize,
    /// Whether the inner planner is currently demoted.
    pub demoted: bool,
    /// Periods served from the fallback baseline.
    pub fallback_periods: usize,
    /// Consecutive healthy inner decisions observed while demoted.
    pub healthy_streak: usize,
    /// Times the inner planner has been re-promoted.
    pub repromotions: usize,
    /// Events elided from the bounded internal log.
    pub dropped_events: usize,
    /// The (bounded) internal event log.
    pub events: Vec<FaultEvent>,
    /// The wrapped planner's checkpoint.
    pub inner: Box<PlannerCheckpoint>,
}

/// One planner's internal state at a period boundary. `Stateless`
/// covers planners whose decisions depend only on the observation
/// (fixed patterns, the optimal LUT).
#[derive(Debug, Clone, PartialEq)]
pub enum PlannerCheckpoint {
    /// The planner carries no cross-period state.
    Stateless,
    /// A [`ProposedPlanner`](crate::online::ProposedPlanner) (DBN,
    /// compiled DBN, or MPC backend).
    Proposed(ProposedCheckpoint),
    /// A [`ResilientPlanner`](crate::resilient::ResilientPlanner)
    /// wrapper (recursively carries its inner planner's state).
    Resilient(ResilientCheckpoint),
}

// The vendored serde derive has no story for struct-variant enums or
// `Box` fields, so the recursive planner checkpoint is serialised by
// hand as a `{"kind": ..., "state": ...}` tagged object (the same
// pattern as `SimReport`).
impl Serialize for PlannerCheckpoint {
    fn serialize_json(&self, out: &mut String) {
        match self {
            PlannerCheckpoint::Stateless => out.push_str("{\"kind\":\"stateless\"}"),
            PlannerCheckpoint::Proposed(p) => {
                out.push_str("{\"kind\":\"proposed\",\"state\":");
                p.serialize_json(out);
                out.push('}');
            }
            PlannerCheckpoint::Resilient(r) => {
                out.push_str("{\"kind\":\"resilient\",\"state\":");
                r.serialize_json(out);
                out.push('}');
            }
        }
    }
}

impl Deserialize for PlannerCheckpoint {
    fn deserialize_json(v: &serde::Value) -> Result<Self, serde::DeError> {
        match v.field("kind")?.as_str()? {
            "stateless" => Ok(PlannerCheckpoint::Stateless),
            "proposed" => Ok(PlannerCheckpoint::Proposed(
                ProposedCheckpoint::deserialize_json(v.field("state")?)?,
            )),
            "resilient" => Ok(PlannerCheckpoint::Resilient(
                ResilientCheckpoint::deserialize_json(v.field("state")?)?,
            )),
            other => Err(serde::DeError(format!(
                "unknown planner checkpoint kind `{other}`"
            ))),
        }
    }
}

impl Serialize for ResilientCheckpoint {
    fn serialize_json(&self, out: &mut String) {
        out.push_str("{\"contract_violations\":");
        self.contract_violations.serialize_json(out);
        out.push_str(",\"demoted\":");
        self.demoted.serialize_json(out);
        out.push_str(",\"fallback_periods\":");
        self.fallback_periods.serialize_json(out);
        out.push_str(",\"healthy_streak\":");
        self.healthy_streak.serialize_json(out);
        out.push_str(",\"repromotions\":");
        self.repromotions.serialize_json(out);
        out.push_str(",\"dropped_events\":");
        self.dropped_events.serialize_json(out);
        out.push_str(",\"events\":");
        self.events.serialize_json(out);
        out.push_str(",\"inner\":");
        self.inner.serialize_json(out);
        out.push('}');
    }
}

impl Deserialize for ResilientCheckpoint {
    fn deserialize_json(v: &serde::Value) -> Result<Self, serde::DeError> {
        Ok(Self {
            contract_violations: usize::deserialize_json(v.field("contract_violations")?)?,
            demoted: bool::deserialize_json(v.field("demoted")?)?,
            fallback_periods: usize::deserialize_json(v.field("fallback_periods")?)?,
            healthy_streak: usize::deserialize_json(v.field("healthy_streak")?)?,
            repromotions: usize::deserialize_json(v.field("repromotions")?)?,
            dropped_events: usize::deserialize_json(v.field("dropped_events")?)?,
            events: Vec::<FaultEvent>::deserialize_json(v.field("events")?)?,
            inner: Box::new(PlannerCheckpoint::deserialize_json(v.field("inner")?)?),
        })
    }
}

/// A whole batch frozen at a period boundary: the flat index of the
/// next period to run plus one scenario snapshot and one planner
/// snapshot per batch member (in push order).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchCheckpoint {
    /// Flat index of the first period the resumed run executes; equal
    /// to the grid's total period count when the simulation loop has
    /// finished and only report assembly remains.
    pub next_period: usize,
    /// Per-scenario engine state, in push order.
    pub scenarios: Vec<ScenarioCheckpoint>,
    /// Per-scenario planner state, in push order.
    pub planners: Vec<PlannerCheckpoint>,
}

impl BatchCheckpoint {
    /// Number of scenarios frozen in this checkpoint.
    pub fn len(&self) -> usize {
        self.scenarios.len()
    }

    /// Whether the checkpoint holds no scenarios.
    pub fn is_empty(&self) -> bool {
        self.scenarios.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use helio_faults::FaultKind;

    #[test]
    fn planner_checkpoint_round_trips_recursively() {
        let ckpt = PlannerCheckpoint::Resilient(ResilientCheckpoint {
            contract_violations: 2,
            demoted: true,
            fallback_periods: 9,
            healthy_streak: 1,
            repromotions: 1,
            dropped_events: 3,
            events: vec![FaultEvent::at(4, FaultKind::PlannerFallback, "x")],
            inner: Box::new(PlannerCheckpoint::Proposed(ProposedCheckpoint {
                complexity: 77,
                health: PlannerHealth::DbnUnavailable,
                injected: Some(DbnFaultMode::Nan),
                mpc: None,
                distilled: Some(DistilledState {
                    demoted: true,
                    tier_fallbacks: 5,
                }),
            })),
        });
        let json = serde_json::to_string(&ckpt).expect("serialises");
        let back: PlannerCheckpoint = serde_json::from_str(&json).expect("deserialises");
        assert_eq!(back, ckpt);

        let json = serde_json::to_string(&PlannerCheckpoint::Stateless).expect("serialises");
        let back: PlannerCheckpoint = serde_json::from_str(&json).expect("deserialises");
        assert_eq!(back, PlannerCheckpoint::Stateless);
    }

    #[test]
    fn unknown_kind_is_an_error() {
        let r: Result<PlannerCheckpoint, _> = serde_json::from_str(r#"{"kind":"warp"}"#);
        assert!(r.is_err());
    }
}
