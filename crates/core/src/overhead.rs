//! The algorithm-overhead model of Section 6.5.
//!
//! The paper runs the online algorithm on the sensor node itself at
//! 93.5 kHz and measures, per execution, 14.6 s / 3.0 mW for the
//! coarse-grained (ANN) stage and 3.47 s / 2.94 mW for the fine-grained
//! (per-slot selection) stage — under 3 % of the node's total energy.
//! We have no oscilloscope, so the same quantities are *derived* from
//! operation counts: multiply–accumulate counts for the DBN forward
//! pass and comparison/sort counts for the slot selector, times
//! per-operation cycle costs representative of a 16-bit MCU-class NVP
//! doing software arithmetic.

use helio_common::time::TimeGrid;
use helio_common::units::Joules;
use helio_tasks::TaskGraph;
use serde::{Deserialize, Serialize};

/// Cost model of the node executing the scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OverheadModel {
    /// Node clock (Hz). The paper's platform runs at 93.5 kHz.
    pub clock_hz: f64,
    /// Cycles per multiply–accumulate (software floating point on a
    /// 16-bit NVP).
    pub cycles_per_mac: f64,
    /// Cycles per comparison/branch in the slot selector.
    pub cycles_per_compare: f64,
    /// Active power while computing (W).
    pub compute_power: f64,
    /// DBN hidden layer sizes used online.
    pub hidden: [usize; 2],
}

impl Default for OverheadModel {
    fn default() -> Self {
        Self {
            clock_hz: 93_500.0,
            // Software float MAC on a 16-bit core: ~2100 cycles
            // (multiword multiply + normalisation).
            cycles_per_mac: 2_100.0,
            cycles_per_compare: 160.0,
            compute_power: 3.0e-3,
            hidden: [16, 10],
        }
    }
}

/// Derived per-execution and per-day overhead figures.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OverheadReport {
    /// Coarse-grained (ANN) time per execution (s).
    pub coarse_time_s: f64,
    /// Fine-grained (slot selection) time per period (s).
    pub fine_time_s: f64,
    /// Coarse-stage average power (mW).
    pub coarse_power_mw: f64,
    /// Fine-stage average power (mW).
    pub fine_power_mw: f64,
    /// Scheduler energy per period (J).
    pub energy_per_period: Joules,
    /// Scheduler energy as a fraction of the workload energy.
    pub energy_fraction: f64,
}

impl OverheadModel {
    /// Estimates the overhead for a task set on a grid.
    ///
    /// The workload reference is the energy of running every task once
    /// per period (the "normal workloads on the node").
    pub fn estimate(&self, graph: &TaskGraph, grid: &TimeGrid) -> OverheadReport {
        let n = graph.len() as f64;
        let n_s = grid.slots_per_period() as f64;
        let h = 2.0; // observation also carries capacitor voltages
        let inputs = n_s + h + 1.0;
        let (h1, h2) = (self.hidden[0] as f64, self.hidden[1] as f64);
        let outputs = 2.0 + n;

        // DBN forward pass MACs: in→h1, h1→h2, h2→out, plus sigmoid
        // evaluations approximated as 4 MACs each.
        let macs = inputs * h1 + h1 * h2 + h2 * outputs + 4.0 * (h1 + h2 + outputs);
        let coarse_cycles = macs * self.cycles_per_mac;
        let coarse_time_s = coarse_cycles / self.clock_hz;

        // Fine stage per slot: slack computation + sort + admission per
        // task (~12 compares each), executed N_s times per period.
        let fine_cycles_per_slot = 12.0 * n * n.log2().max(1.0) * self.cycles_per_compare;
        let fine_time_s = fine_cycles_per_slot * n_s / self.clock_hz;

        let coarse_energy = coarse_time_s * self.compute_power;
        let fine_energy = fine_time_s * self.compute_power * 0.98;
        let energy_per_period = Joules::new(coarse_energy + fine_energy);
        let workload = graph.total_energy();
        let energy_fraction = if workload.value() > 0.0 {
            energy_per_period.value() / workload.value()
        } else {
            0.0
        };

        OverheadReport {
            coarse_time_s,
            fine_time_s,
            coarse_power_mw: self.compute_power * 1e3,
            fine_power_mw: self.compute_power * 0.98 * 1e3,
            energy_per_period,
            energy_fraction,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use helio_common::units::Seconds;
    use helio_tasks::benchmarks;

    fn grid() -> TimeGrid {
        TimeGrid::new(1, 144, 10, Seconds::new(60.0)).unwrap()
    }

    #[test]
    fn coarse_time_matches_paper_order() {
        let r = OverheadModel::default().estimate(&benchmarks::wam(), &grid());
        // Paper: 14.6 s per coarse execution at 93.5 kHz.
        assert!(
            r.coarse_time_s > 5.0 && r.coarse_time_s < 30.0,
            "coarse {} s",
            r.coarse_time_s
        );
    }

    #[test]
    fn fine_time_matches_paper_order() {
        let r = OverheadModel::default().estimate(&benchmarks::wam(), &grid());
        // Paper: 3.47 s per fine-grained execution.
        assert!(
            r.fine_time_s > 0.5 && r.fine_time_s < 10.0,
            "fine {} s",
            r.fine_time_s
        );
    }

    #[test]
    fn overhead_is_below_three_percent() {
        for g in benchmarks::all_six() {
            let r = OverheadModel::default().estimate(&g, &grid());
            assert!(
                r.energy_fraction < 0.03,
                "{}: {:.4}",
                g.name(),
                r.energy_fraction
            );
            assert!(r.energy_fraction > 0.0);
        }
    }

    #[test]
    fn powers_are_milliwatt_scale() {
        let r = OverheadModel::default().estimate(&benchmarks::ecg(), &grid());
        assert!((r.coarse_power_mw - 3.0).abs() < 0.5);
        assert!(r.fine_power_mw < r.coarse_power_mw);
    }
}
