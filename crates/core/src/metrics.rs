//! Simulation metrics: per-period records and the aggregates the
//! paper's figures report (long-term DMR, energy utilisation,
//! migration efficiency).

use helio_common::time::PeriodRef;
use helio_common::units::Joules;
use helio_faults::{DegradedCounters, FaultEvent};
use serde::{Deserialize, Serialize};

use crate::planner::Pattern;

/// Everything measured in one period.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PeriodRecord {
    /// Which period.
    pub period: PeriodRef,
    /// Tasks that missed their deadline.
    pub misses: usize,
    /// Task count `N` (for DMR normalisation).
    pub tasks: usize,
    /// Harvested solar energy (source side).
    pub harvested: Joules,
    /// Load served through the direct channel.
    pub served_direct: Joules,
    /// Load served from storage.
    pub served_storage: Joules,
    /// Solar energy absorbed into storage.
    pub stored: Joules,
    /// Solar surplus wasted (storage full).
    pub wasted: Joules,
    /// Demand that browned out.
    pub unmet: Joules,
    /// Energy lost to capacitor leakage.
    pub leaked: Joules,
    /// Brown-out slots.
    pub brownouts: usize,
    /// Pattern the planner chose.
    pub pattern: Pattern,
    /// Active capacitor index during the period.
    pub capacitor: usize,
}

impl PeriodRecord {
    /// The period's deadline-miss rate `DMR_{i,j}`.
    pub fn dmr(&self) -> f64 {
        if self.tasks == 0 {
            0.0
        } else {
            self.misses as f64 / self.tasks as f64
        }
    }
}

/// Aggregated results of one simulation run.
///
/// Serialisation is hand-written rather than derived: the fault log
/// and degraded counters are *omitted* from the JSON when empty/zero,
/// so clean runs produce byte-identical reports to the pre-fault
/// format (the golden gate depends on this), and reports written
/// before the fault harness existed still deserialise.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Scheduler/planner name.
    pub planner: String,
    /// Per-period records in chronological order.
    pub periods: Vec<PeriodRecord>,
    /// Planner complexity counter (state expansions).
    pub complexity: u64,
    /// NVP state backups caused by brown-outs.
    pub nvp_backups: usize,
    /// NVP state restores when interrupted tasks resumed.
    pub nvp_restores: usize,
    /// Total backup/restore energy overhead.
    pub nvp_overhead: Joules,
    /// Fault windows materialised and degradation reactions taken,
    /// sorted by start period. Empty for clean runs.
    pub faults: Vec<FaultEvent>,
    /// Tallies of graceful-degradation reactions. All-zero for clean
    /// runs.
    pub degraded: DegradedCounters,
}

impl Serialize for SimReport {
    fn serialize_json(&self, out: &mut String) {
        out.push('{');
        out.push_str("\"planner\":");
        self.planner.serialize_json(out);
        out.push_str(",\"periods\":");
        self.periods.serialize_json(out);
        out.push_str(",\"complexity\":");
        self.complexity.serialize_json(out);
        out.push_str(",\"nvp_backups\":");
        self.nvp_backups.serialize_json(out);
        out.push_str(",\"nvp_restores\":");
        self.nvp_restores.serialize_json(out);
        out.push_str(",\"nvp_overhead\":");
        self.nvp_overhead.serialize_json(out);
        if !self.faults.is_empty() {
            out.push_str(",\"faults\":");
            self.faults.serialize_json(out);
        }
        if !self.degraded.is_zero() {
            out.push_str(",\"degraded\":");
            self.degraded.serialize_json(out);
        }
        out.push('}');
    }
}

impl Deserialize for SimReport {
    fn deserialize_json(v: &serde::Value) -> Result<Self, serde::DeError> {
        Ok(Self {
            planner: String::deserialize_json(v.field("planner")?)?,
            periods: Vec::deserialize_json(v.field("periods")?)?,
            complexity: u64::deserialize_json(v.field("complexity")?)?,
            nvp_backups: usize::deserialize_json(v.field("nvp_backups")?)?,
            nvp_restores: usize::deserialize_json(v.field("nvp_restores")?)?,
            nvp_overhead: Joules::deserialize_json(v.field("nvp_overhead")?)?,
            faults: match v.field("faults") {
                Ok(f) => Vec::deserialize_json(f)?,
                Err(_) => Vec::new(),
            },
            degraded: match v.field("degraded") {
                Ok(d) => DegradedCounters::deserialize_json(d)?,
                Err(_) => DegradedCounters::default(),
            },
        })
    }
}

impl SimReport {
    /// Long-term DMR: total misses over total task releases (Eq. 6).
    pub fn overall_dmr(&self) -> f64 {
        let misses: usize = self.periods.iter().map(|p| p.misses).sum();
        let total: usize = self.periods.iter().map(|p| p.tasks).sum();
        if total == 0 {
            0.0
        } else {
            misses as f64 / total as f64
        }
    }

    /// DMR restricted to the periods of one day.
    pub fn day_dmr(&self, day: usize) -> f64 {
        let (misses, total) = self
            .periods
            .iter()
            .filter(|p| p.period.day == day)
            .fold((0usize, 0usize), |(m, t), p| (m + p.misses, t + p.tasks));
        if total == 0 {
            0.0
        } else {
            misses as f64 / total as f64
        }
    }

    /// Total harvested solar energy.
    pub fn total_harvested(&self) -> Joules {
        self.periods.iter().map(|p| p.harvested).sum()
    }

    /// Total energy delivered to the load (both channels).
    pub fn total_served(&self) -> Joules {
        self.periods
            .iter()
            .map(|p| p.served_direct + p.served_storage)
            .sum()
    }

    /// Energy utilisation (Fig. 9b): load energy delivered per joule
    /// harvested.
    pub fn energy_utilisation(&self) -> f64 {
        let h = self.total_harvested();
        if h.value() <= 0.0 {
            0.0
        } else {
            (self.total_served() / h).clamp(0.0, 1.0)
        }
    }

    /// Aggregate migration efficiency (Fig. 10b): energy delivered from
    /// storage per joule absorbed into storage.
    pub fn migration_efficiency(&self) -> f64 {
        let stored: Joules = self.periods.iter().map(|p| p.stored).sum();
        let delivered: Joules = self.periods.iter().map(|p| p.served_storage).sum();
        if stored.value() <= 0.0 {
            0.0
        } else {
            (delivered / stored).clamp(0.0, 1.0)
        }
    }

    /// Accumulated DMR after the first `k` periods (Eq. 19's
    /// `DMR^acc`).
    pub fn accumulated_dmr(&self, k: usize) -> f64 {
        let slice = &self.periods[..k.min(self.periods.len())];
        let misses: usize = slice.iter().map(|p| p.misses).sum();
        let total: usize = slice.iter().map(|p| p.tasks).sum();
        if total == 0 {
            0.0
        } else {
            misses as f64 / total as f64
        }
    }

    /// Per-day DMR series (one value per simulated day).
    pub fn daily_dmr_series(&self) -> Vec<f64> {
        let last_day = self.periods.last().map_or(0, |p| p.period.day);
        (0..=last_day).map(|d| self.day_dmr(d)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(day: usize, period: usize, misses: usize, tasks: usize) -> PeriodRecord {
        PeriodRecord {
            period: PeriodRef::new(day, period),
            misses,
            tasks,
            harvested: Joules::new(10.0),
            served_direct: Joules::new(4.0),
            served_storage: Joules::new(1.0),
            stored: Joules::new(2.0),
            wasted: Joules::new(1.0),
            unmet: Joules::ZERO,
            leaked: Joules::new(0.1),
            brownouts: 0,
            pattern: Pattern::Intra,
            capacitor: 0,
        }
    }

    fn report() -> SimReport {
        SimReport {
            planner: "test".into(),
            periods: vec![
                record(0, 0, 0, 5),
                record(0, 1, 5, 5),
                record(1, 0, 2, 5),
                record(1, 1, 3, 5),
            ],
            complexity: 7,
            nvp_backups: 2,
            nvp_restores: 1,
            nvp_overhead: Joules::new(1e-5),
            faults: vec![],
            degraded: DegradedCounters::default(),
        }
    }

    #[test]
    fn overall_and_daily_dmr() {
        let r = report();
        assert!((r.overall_dmr() - 0.5).abs() < 1e-12);
        assert!((r.day_dmr(0) - 0.5).abs() < 1e-12);
        assert!((r.day_dmr(1) - 0.5).abs() < 1e-12);
        assert_eq!(r.daily_dmr_series().len(), 2);
    }

    #[test]
    fn accumulated_dmr_prefixes() {
        let r = report();
        assert!((r.accumulated_dmr(1) - 0.0).abs() < 1e-12);
        assert!((r.accumulated_dmr(2) - 0.5).abs() < 1e-12);
        assert!((r.accumulated_dmr(99) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn energy_aggregates() {
        let r = report();
        assert!((r.total_harvested().value() - 40.0).abs() < 1e-9);
        assert!((r.total_served().value() - 20.0).abs() < 1e-9);
        assert!((r.energy_utilisation() - 0.5).abs() < 1e-12);
        assert!((r.migration_efficiency() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_report_is_safe() {
        let r = SimReport {
            planner: "empty".into(),
            periods: vec![],
            complexity: 0,
            nvp_backups: 0,
            nvp_restores: 0,
            nvp_overhead: Joules::ZERO,
            faults: vec![],
            degraded: DegradedCounters::default(),
        };
        assert_eq!(r.overall_dmr(), 0.0);
        assert_eq!(r.energy_utilisation(), 0.0);
        assert_eq!(r.migration_efficiency(), 0.0);
        assert!(r.daily_dmr_series().len() <= 1);
    }

    #[test]
    fn period_record_dmr() {
        assert!((record(0, 0, 2, 5).dmr() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn clean_reports_omit_fault_fields() {
        let json = serde_json::to_string(&report()).unwrap();
        assert!(!json.contains("\"faults\""));
        assert!(!json.contains("\"degraded\""));
        let back: SimReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report());
    }

    #[test]
    fn faulted_reports_round_trip() {
        let mut r = report();
        r.faults.push(helio_faults::FaultEvent::at(
            3,
            helio_faults::FaultKind::SolarOutage,
            "factor 0",
        ));
        r.degraded.faulted_slots = 10;
        let json = serde_json::to_string(&r).unwrap();
        assert!(json.contains("\"faults\""));
        assert!(json.contains("\"degraded\""));
        let back: SimReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }
}
