//! The slot-stepped simulation engine of the dual-channel node.
//!
//! Per period: ask the planner for the coarse decision (capacitor,
//! admitted tasks, pattern), then drive the chosen fine-grained
//! scheduler slot by slot through the PMU. Per slot: leak the bank,
//! observe the harvest, let the scheduler pick tasks, settle the energy
//! flows, and advance task progress only when the slot was fully
//! powered — an under-powered slot browns out, the NVPs back up, and
//! the energy spent is wasted (the mechanism that punishes greedy
//! schedulers at night).

use helio_common::time::PeriodRef;
use helio_common::units::Joules;
use helio_faults::{DegradedCounters, FaultEvent, FaultHarness, ForecastMode};
use helio_nvp::NvpFleet;
use helio_sched::{
    AsapScheduler, ExecState, IntraTaskScheduler, LsaScheduler, PeriodStart, SlotContext,
    SlotScheduler,
};
use helio_solar::{SolarPredictor, SolarTrace, WcmaPredictor};
use helio_storage::{CapacitorBank, StorageModelParams};
use helio_tasks::TaskGraph;
use helio_tasks::TaskId;

use crate::batch::PlanContext;
use crate::checkpoint::ScenarioCheckpoint;
use crate::config::NodeConfig;
use crate::error::CoreError;
use crate::metrics::{PeriodRecord, SimReport};
use crate::planner::{Pattern, PeriodPlanner, PlanDecision, PlannerObservation};

/// The simulation engine. Construct once per (node, task set, trace)
/// and [`Engine::run`] any number of planners against it.
pub struct Engine<'a> {
    node: &'a NodeConfig,
    graph: &'a TaskGraph,
    trace: &'a SolarTrace,
    // `Send + Sync` so one engine can serve concurrent `run` calls
    // from the parallel experiment sweeps.
    predictor: Box<dyn SolarPredictor + Send + Sync + 'a>,
}

impl<'a> Engine<'a> {
    /// Creates an engine after validating that the trace matches the
    /// node's grid and the task set fits the period.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::TraceMismatch`] or [`CoreError::Tasks`].
    pub fn new(
        node: &'a NodeConfig,
        graph: &'a TaskGraph,
        trace: &'a SolarTrace,
    ) -> Result<Self, CoreError> {
        if trace.grid() != &node.grid {
            return Err(CoreError::TraceMismatch(format!(
                "trace grid {:?} differs from node grid {:?}",
                trace.grid(),
                node.grid
            )));
        }
        graph
            .validate(node.grid.period_duration())
            .map_err(|e| CoreError::Tasks(e.to_string()))?;
        Ok(Self {
            node,
            graph,
            trace,
            predictor: Box::new(WcmaPredictor::default()),
        })
    }

    /// Replaces the per-period energy predictor the fine-grained
    /// schedulers see (default: WCMA, as in the paper's baseline \[3\]).
    #[must_use]
    pub fn with_predictor(mut self, predictor: Box<dyn SolarPredictor + Send + Sync + 'a>) -> Self {
        self.predictor = predictor;
        self
    }

    /// Runs a planner over the whole horizon.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Storage`] when the planner selects an
    /// out-of-range capacitor.
    pub fn run(&self, planner: &mut dyn PeriodPlanner) -> Result<SimReport, CoreError> {
        self.run_with_faults(planner, None)
    }

    /// Runs a planner over the whole horizon under an optional fault
    /// harness.
    ///
    /// With `None` (or an empty harness) this is exactly [`Engine::run`]
    /// — the fault path is skipped entirely and reports stay
    /// byte-identical to the clean format. With an active harness the
    /// engine additionally, per period:
    ///
    /// * applies capacitor aging (capacitance fade, preserving stored
    ///   energy) and leakage growth before the planner observes the bank,
    /// * injects the period's DBN fault into the planner,
    /// * overrides the capacitor choice when the PMU mux is stuck,
    /// * corrupts the per-period forecast, then sanitises non-finite or
    ///   negative forecasts to zero,
    /// * attenuates every slot's harvest by the solar fault factor, and
    /// * *drops* (rather than aborts on) scheduler-contract-violating
    ///   assignments, notifying the planner.
    ///
    /// Everything injected or degraded is recorded in the report's
    /// `faults` log and `degraded` counters.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Storage`] when the planner selects an
    /// out-of-range capacitor.
    pub fn run_with_faults(
        &self,
        planner: &mut dyn PeriodPlanner,
        harness: Option<&FaultHarness>,
    ) -> Result<SimReport, CoreError> {
        let harness = harness.filter(|h| !h.is_empty());
        let grid = &self.node.grid;
        // The plan context is rebuilt per run here (sequential runs
        // keep their original cost profile — the planner is NOT
        // attached to it, so it still derives the topological order
        // itself); the batch engine builds it once per batch instead.
        let ctx = PlanContext::new(self.graph, grid.slot_duration())?;
        let env = ScenarioEnv {
            node: self.node,
            graph: self.graph,
            trace: self.trace,
            predictor: self.predictor.as_ref(),
            ctx: &ctx,
            harness,
        };
        let mut state = ScenarioState::new(self.node, self.graph)?;
        for period in grid.periods() {
            let flat = grid.period_index(period);
            state.pre_plan(&env, flat, planner)?;
            let decision = {
                let obs = state.observation(&env, period);
                planner.plan(&obs)
            };
            state.run_period(&env, period, planner, decision)?;
        }
        Ok(state.into_report(planner, harness))
    }
}

/// The immutable surroundings of one simulated scenario: the node, the
/// task set, that scenario's trace/predictor/fault harness, and the
/// shared [`PlanContext`]. Everything a period step needs that is not
/// per-scenario mutable state.
pub(crate) struct ScenarioEnv<'e> {
    pub(crate) node: &'e NodeConfig,
    pub(crate) graph: &'e TaskGraph,
    pub(crate) trace: &'e SolarTrace,
    pub(crate) predictor: &'e (dyn SolarPredictor + 'e),
    pub(crate) ctx: &'e PlanContext,
    pub(crate) harness: Option<&'e FaultHarness>,
}

/// The mutable state of one simulated scenario, advanced period by
/// period. [`Engine::run_with_faults`] drives a single one; the
/// [`BatchEngine`](crate::batch::BatchEngine) keeps a `Vec` of these
/// (structure-of-arrays over scenarios) and advances them in lockstep.
pub(crate) struct ScenarioState {
    bank: CapacitorBank,
    fleet: NvpFleet,
    asap: AsapScheduler,
    inter: LsaScheduler,
    intra: IntraTaskScheduler,
    /// Slot-path scratch, built once: reset in place each period so the
    /// slot loop allocates nothing once warm.
    exec: ExecState,
    periods: Vec<PeriodRecord>,
    acc_misses: usize,
    acc_tasks: usize,
    degraded: DegradedCounters,
    // Aging state: the cumulative capacitance factor already applied
    // to the bank, and the leakage-scaled parameter set (built only
    // when the multiplier departs from 1, so the clean path never
    // clones).
    applied_cap_factor: f64,
    leak_scale: f64,
    scaled_leak: Option<StorageModelParams>,
}

impl ScenarioState {
    pub(crate) fn new(node: &NodeConfig, graph: &TaskGraph) -> Result<Self, CoreError> {
        Ok(Self {
            bank: CapacitorBank::new(&node.capacitors, &node.storage)?,
            fleet: NvpFleet::for_graph(graph),
            asap: AsapScheduler::new(),
            inter: LsaScheduler::new(),
            intra: IntraTaskScheduler::new(),
            exec: ExecState::new(graph, node.grid.slot_duration()),
            periods: Vec::with_capacity(node.grid.total_periods()),
            acc_misses: 0,
            acc_tasks: 0,
            degraded: DegradedCounters::default(),
            applied_cap_factor: 1.0,
            leak_scale: 1.0,
            scaled_leak: None,
        })
    }

    /// Snapshots the cross-period state at a period boundary. The bank
    /// is captured wholesale — aging multiplies capacitances in place
    /// and `f64` products are non-associative, so re-deriving it from
    /// the cumulative factor would drift bitwise. Schedulers and the
    /// executor are deliberately absent: both are rebuilt at every
    /// `begin_period`/`reset`, so a boundary snapshot never needs them.
    pub(crate) fn checkpoint(&self) -> ScenarioCheckpoint {
        ScenarioCheckpoint {
            bank: self.bank.clone(),
            fleet: self.fleet.clone(),
            periods: self.periods.clone(),
            acc_misses: self.acc_misses,
            acc_tasks: self.acc_tasks,
            degraded: self.degraded,
            applied_cap_factor: self.applied_cap_factor,
            leak_scale: self.leak_scale,
            leak_scaled: self.scaled_leak.is_some(),
        }
    }

    /// Rebuilds a scenario state from a boundary snapshot: fresh
    /// schedulers/executor plus the captured cross-period state. The
    /// scaled leakage parameter set is re-derived from `leak_scale`
    /// (a pure function of the calibration and the factor).
    pub(crate) fn restore(
        node: &NodeConfig,
        graph: &TaskGraph,
        ckpt: &ScenarioCheckpoint,
    ) -> Result<Self, CoreError> {
        let mut state = Self::new(node, graph)?;
        if ckpt.bank.len() != state.bank.len() {
            return Err(CoreError::Config(format!(
                "checkpoint bank has {} capacitors, node has {}",
                ckpt.bank.len(),
                state.bank.len()
            )));
        }
        state.bank = ckpt.bank.clone();
        state.fleet = ckpt.fleet.clone();
        state.periods = ckpt.periods.clone();
        state.acc_misses = ckpt.acc_misses;
        state.acc_tasks = ckpt.acc_tasks;
        state.degraded = ckpt.degraded;
        state.applied_cap_factor = ckpt.applied_cap_factor;
        state.leak_scale = ckpt.leak_scale;
        state.scaled_leak = ckpt
            .leak_scaled
            .then(|| node.storage.clone().with_leakage_scale(ckpt.leak_scale));
        Ok(state)
    }

    fn accumulated_dmr(&self) -> f64 {
        if self.acc_tasks == 0 {
            0.0
        } else {
            self.acc_misses as f64 / self.acc_tasks as f64
        }
    }

    /// The period-start harness effects that must land before the
    /// planner observes the bank: capacitor aging, leakage growth and
    /// DBN fault injection.
    pub(crate) fn pre_plan(
        &mut self,
        env: &ScenarioEnv<'_>,
        flat: usize,
        planner: &mut dyn PeriodPlanner,
    ) -> Result<(), CoreError> {
        if let Some(h) = env.harness {
            let cf = h.capacitance_factor(flat);
            if (cf - self.applied_cap_factor).abs() > 1e-15 {
                self.bank
                    .apply_aging(&env.node.storage, cf / self.applied_cap_factor)?;
                self.applied_cap_factor = cf;
            }
            let lm = h.leak_multiplier(flat);
            if (lm - self.leak_scale).abs() > 1e-15 {
                self.scaled_leak = Some(env.node.storage.clone().with_leakage_scale(lm));
                self.leak_scale = lm;
            }
            planner.inject_fault(h.dbn_mode(flat));
        }
        Ok(())
    }

    /// What the planner sees at the start of `period`.
    pub(crate) fn observation<'o>(
        &'o self,
        env: &ScenarioEnv<'o>,
        period: PeriodRef,
    ) -> PlannerObservation<'o> {
        PlannerObservation {
            grid: &env.node.grid,
            period,
            graph: env.graph,
            trace: env.trace,
            bank: &self.bank,
            accumulated_dmr: self.accumulated_dmr(),
            storage: &env.node.storage,
            pmu: &env.node.pmu,
        }
    }

    /// Executes one period under `decision`: capacitor switch, stuck-mux
    /// override, forecast (with faults and sanitisation), and the slot
    /// loop through the PMU.
    pub(crate) fn run_period(
        &mut self,
        env: &ScenarioEnv<'_>,
        period: PeriodRef,
        planner: &mut dyn PeriodPlanner,
        decision: PlanDecision,
    ) -> Result<(), CoreError> {
        let grid = &env.node.grid;
        let storage = &env.node.storage;
        let pmu = &env.node.pmu;
        let slot_duration = grid.slot_duration();
        let flat = grid.period_index(period);
        let leak_params = self.scaled_leak.as_ref().unwrap_or(storage);

        if let Some(c) = decision.capacitor {
            self.bank.set_active(c)?;
        }
        if let Some(ch) = env.harness.and_then(|h| h.stuck_channel(flat)) {
            // A stuck mux pins the bank to one (in-range) channel
            // regardless of what the planner asked for.
            let ch = ch.min(self.bank.len() - 1);
            if self.bank.active_index() != ch {
                self.degraded.pmu_overrides += 1;
                self.bank.set_active(ch)?;
            }
        }

        let mut predicted = env.predictor.forecast_one(env.trace, period);
        if let Some(mode) = env.harness.and_then(|h| h.forecast_mode(flat)) {
            predicted = match mode {
                ForecastMode::Scale(s) => predicted * s,
                ForecastMode::Nan => Joules::new(f64::NAN),
                ForecastMode::Zero => Joules::ZERO,
            };
        }
        if !predicted.value().is_finite() || predicted.value() < 0.0 {
            predicted = Joules::ZERO;
            self.degraded.sanitized_forecasts += 1;
        }
        let start = PeriodStart {
            graph: env.graph,
            slot_duration,
            slots_per_period: grid.slots_per_period(),
            predicted_energy: predicted,
            stored_energy: self.bank.active_deliverable(storage),
            allowed: decision.allowed,
        };
        let scheduler: &mut dyn SlotScheduler = match decision.pattern {
            Pattern::Asap => &mut self.asap,
            Pattern::Inter => &mut self.inter,
            Pattern::Intra => &mut self.intra,
        };
        scheduler.begin_period(&start);

        self.exec.reset();
        let mut record = PeriodRecord {
            period,
            misses: 0,
            tasks: env.graph.len(),
            harvested: Joules::ZERO,
            served_direct: Joules::ZERO,
            served_storage: Joules::ZERO,
            stored: Joules::ZERO,
            wasted: Joules::ZERO,
            unmet: Joules::ZERO,
            leaked: Joules::ZERO,
            brownouts: 0,
            pattern: decision.pattern,
            capacitor: self.bank.active_index(),
        };

        for m in 0..grid.slots_per_period() {
            record.leaked += self.bank.leak_all(leak_params, slot_duration);
            let mut harvest = env.trace.slot_energy(helio_common::time::SlotRef::new(
                period.day,
                period.period,
                m,
            ));
            if let Some(h) = env.harness {
                let f = h.harvest_factor(flat);
                if f < 1.0 {
                    harvest = harvest * f;
                    self.degraded.faulted_slots += 1;
                }
            }
            let picked = {
                let ctx = SlotContext {
                    graph: env.graph,
                    exec: &self.exec,
                    slot: m,
                    slot_duration,
                    slots_per_period: grid.slots_per_period(),
                    harvest,
                    direct_deliverable: harvest * pmu.params().direct_efficiency,
                    storage_deliverable: self.bank.active_deliverable(storage),
                };
                scheduler.select(&ctx)
            };
            // The bitmask iterates in ascending task index — the
            // canonical order the f64 demand sum below relies on.
            self.fleet.begin_slot();
            let mut assigned = picked;
            for i in picked.iter() {
                let id = TaskId(i);
                if let Err(other) = self.fleet.assign(env.graph, id) {
                    if env.harness.is_some() {
                        // Under fault injection the run must survive:
                        // drop the offending assignment, tell the
                        // planner, and keep scheduling.
                        assigned.remove(i);
                        self.degraded.contract_skips += 1;
                        planner.on_contract_violation();
                        continue;
                    }
                    return Err(CoreError::SchedulerContract(format!(
                        "scheduler {} violated NVP exclusivity: {id} vs {other}",
                        scheduler.name()
                    )));
                }
            }
            let demand: Joules = assigned.iter().map(|i| env.ctx.slot_costs[i]).sum();
            let flow = pmu.settle_slot(harvest, demand, &mut self.bank, storage);
            record.harvested += flow.harvested;
            record.served_direct += flow.served_direct;
            record.served_storage += flow.served_storage;
            record.stored += flow.stored;
            record.wasted += flow.wasted;
            record.unmet += flow.unmet;
            if flow.fully_served() {
                for i in assigned {
                    self.exec.advance(TaskId(i));
                }
            } else {
                record.brownouts += 1;
                self.fleet.power_failure();
            }
        }

        record.misses = self.exec.misses();
        self.acc_misses += record.misses;
        self.acc_tasks += record.tasks;
        self.periods.push(record);
        Ok(())
    }

    /// Finalises the run into the report, draining the planner's fault
    /// log and counters exactly as the sequential engine always has.
    pub(crate) fn into_report(
        mut self,
        planner: &mut dyn PeriodPlanner,
        harness: Option<&FaultHarness>,
    ) -> SimReport {
        self.degraded.planner_fallbacks = planner.fallback_count();
        let mut faults: Vec<FaultEvent> = harness.map(|h| h.events().to_vec()).unwrap_or_default();
        faults.extend(planner.degraded_events());
        faults.sort_by_key(|e| (e.period, e.periods));
        // Bound the merged log the same way the resilient planner
        // bounds its internal one: first/last K survive, the middle is
        // tallied. Committed fixtures sit far below the cap, so clean
        // and moderately-faulted reports are unaffected bytewise.
        self.degraded.dropped_events += planner.dropped_events()
            + helio_faults::cap_event_log(&mut faults, helio_faults::EVENT_LOG_KEEP);

        SimReport {
            planner: planner.name().to_string(),
            periods: self.periods,
            complexity: planner.complexity(),
            nvp_backups: self.fleet.backup_count(),
            nvp_restores: self.fleet.restore_count(),
            nvp_overhead: self.fleet.overhead_energy(),
            faults,
            degraded: self.degraded,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::FixedPlanner;
    use helio_common::time::TimeGrid;
    use helio_common::units::{Farads, Seconds};
    use helio_solar::{DayArchetype, SolarPanel, TraceBuilder};
    use helio_tasks::benchmarks;

    fn grid(days: usize) -> TimeGrid {
        // Coarse test grid: 24 periods of 10 × 60 s slots per day
        // (periods are the benchmark-standard 600 s; a "day" is 4 h of
        // wall-clock mapped onto the full diurnal cycle).
        TimeGrid::new(days, 24, 10, Seconds::new(60.0)).unwrap()
    }

    fn node(days: usize) -> NodeConfig {
        NodeConfig::builder(grid(days))
            .capacitors(&[Farads::new(10.0)])
            .build()
            .unwrap()
    }

    fn trace(days: usize, archetypes: &[DayArchetype]) -> SolarTrace {
        TraceBuilder::new(grid(days), SolarPanel::paper_panel())
            .seed(7)
            .days(archetypes)
            .build()
    }

    /// The standard benchmarks use 600 s periods, matching this grid's
    /// 10 × 60 s slots exactly.
    fn graph() -> helio_tasks::TaskGraph {
        benchmarks::ecg()
    }

    #[test]
    fn predictor_choice_changes_admission() {
        // The inter-task baseline admits against the predictor's period
        // forecast; a perfect oracle and a zero-history EWMA disagree on
        // day 0, so the reports differ.
        let node = node(1);
        let t = trace(1, &[DayArchetype::BrokenClouds]);
        let g = graph();
        let with_oracle = Engine::new(&node, &g, &t)
            .unwrap()
            .with_predictor(Box::new(helio_solar::NoisyOracle::perfect()))
            .run(&mut FixedPlanner::new(Pattern::Inter, 0))
            .unwrap();
        let with_ewma = Engine::new(&node, &g, &t)
            .unwrap()
            .with_predictor(Box::new(helio_solar::EwmaPredictor::default()))
            .run(&mut FixedPlanner::new(Pattern::Inter, 0))
            .unwrap();
        // EWMA has no history on day 0 (predicts zero), so the lazy
        // admission differs from the oracle's.
        assert_ne!(with_oracle, with_ewma);
        assert!(
            with_oracle.overall_dmr() <= with_ewma.overall_dmr() + 1e-9,
            "a perfect forecast must not hurt the admission test: {} vs {}",
            with_oracle.overall_dmr(),
            with_ewma.overall_dmr()
        );
    }

    #[test]
    fn capacitor_out_of_range_is_an_error() {
        let node = node(1);
        let t = trace(1, &[DayArchetype::Clear]);
        let g = graph();
        let engine = Engine::new(&node, &g, &t).unwrap();
        let err = engine.run(&mut FixedPlanner::new(Pattern::Intra, 5));
        assert!(matches!(
            err,
            Err(CoreError::Storage(
                helio_storage::StorageError::CapacitorIndex { index: 5, len: 1 }
            ))
        ));
    }

    #[test]
    fn engine_rejects_mismatched_trace() {
        let node = node(1);
        let wrong = trace(2, &[DayArchetype::Clear]);
        let g = graph();
        assert!(matches!(
            Engine::new(&node, &g, &wrong),
            Err(CoreError::TraceMismatch(_))
        ));
    }

    #[test]
    fn clear_day_intra_beats_night_only_misses() {
        let node = node(1);
        let t = trace(1, &[DayArchetype::Clear]);
        let g = graph();
        let engine = Engine::new(&node, &g, &t).unwrap();
        let report = engine
            .run(&mut FixedPlanner::new(Pattern::Intra, 0))
            .unwrap();
        assert_eq!(report.periods.len(), 24);
        // Daytime periods should mostly succeed; night periods mostly
        // miss — overall DMR strictly between 0 and 1.
        let dmr = report.overall_dmr();
        assert!(dmr > 0.05 && dmr < 0.95, "dmr {dmr}");
        // Daytime (around noon, period 12) must be perfect on a clear
        // day.
        let noon = &report.periods[12];
        assert_eq!(noon.misses, 0, "{noon:?}");
    }

    #[test]
    fn asap_wastes_energy_relative_to_intra() {
        let node = node(2);
        let t = trace(2, &[DayArchetype::BrokenClouds, DayArchetype::Overcast]);
        let g = graph();
        let engine = Engine::new(&node, &g, &t).unwrap();
        let asap = engine
            .run(&mut FixedPlanner::new(Pattern::Asap, 0))
            .unwrap();
        let intra = engine
            .run(&mut FixedPlanner::new(Pattern::Intra, 0))
            .unwrap();
        // ASAP browns out at night; intra-task matches load to energy.
        assert!(
            asap.periods.iter().map(|p| p.brownouts).sum::<usize>()
                > intra.periods.iter().map(|p| p.brownouts).sum::<usize>(),
            "ASAP must brown out more"
        );
        assert!(
            intra.overall_dmr() <= asap.overall_dmr() + 1e-9,
            "intra {} vs asap {}",
            intra.overall_dmr(),
            asap.overall_dmr()
        );
    }

    #[test]
    fn energy_ledger_is_consistent() {
        let node = node(1);
        let t = trace(1, &[DayArchetype::Clear]);
        let g = graph();
        let engine = Engine::new(&node, &g, &t).unwrap();
        let r = engine
            .run(&mut FixedPlanner::new(Pattern::Intra, 0))
            .unwrap();
        let direct_eff = node.pmu.params().direct_efficiency;
        for p in &r.periods {
            let harvest = p.harvested.value();
            let accounted = (p.served_direct / direct_eff + p.stored + p.wasted).value();
            assert!(
                (harvest - accounted).abs() < 1e-6,
                "harvest {harvest} != accounted {accounted} in {:?}",
                p.period
            );
        }
        assert!(r.total_harvested().value() > 100.0, "clear day harvests");
    }

    #[test]
    fn reports_are_deterministic() {
        let node = node(1);
        let t = trace(1, &[DayArchetype::BrokenClouds]);
        let g = graph();
        let engine = Engine::new(&node, &g, &t).unwrap();
        let a = engine
            .run(&mut FixedPlanner::new(Pattern::Inter, 0))
            .unwrap();
        let b = engine
            .run(&mut FixedPlanner::new(Pattern::Inter, 0))
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn storm_day_is_worse_than_clear_day() {
        let g = graph();
        let node1 = node(1);
        let clear = trace(1, &[DayArchetype::Clear]);
        let storm = trace(1, &[DayArchetype::Storm]);
        let dmr_clear = Engine::new(&node1, &g, &clear)
            .unwrap()
            .run(&mut FixedPlanner::new(Pattern::Intra, 0))
            .unwrap()
            .overall_dmr();
        let dmr_storm = Engine::new(&node1, &g, &storm)
            .unwrap()
            .run(&mut FixedPlanner::new(Pattern::Intra, 0))
            .unwrap()
            .overall_dmr();
        assert!(
            dmr_storm > dmr_clear,
            "storm {dmr_storm} must be worse than clear {dmr_clear}"
        );
    }

    #[test]
    fn empty_harness_is_byte_identical_to_clean_run() {
        let node = node(1);
        let t = trace(1, &[DayArchetype::BrokenClouds]);
        let g = graph();
        let engine = Engine::new(&node, &g, &t).unwrap();
        let clean = engine
            .run(&mut FixedPlanner::new(Pattern::Intra, 0))
            .unwrap();
        let empty = helio_faults::FaultHarness::empty();
        let harnessed = engine
            .run_with_faults(&mut FixedPlanner::new(Pattern::Intra, 0), Some(&empty))
            .unwrap();
        assert_eq!(clean, harnessed);
        assert_eq!(
            serde_json::to_string(&clean).unwrap(),
            serde_json::to_string(&harnessed).unwrap()
        );
    }

    #[test]
    fn blackout_increases_misses_and_is_logged() {
        let node = node(1);
        let t = trace(1, &[DayArchetype::Clear]);
        let g = graph();
        let engine = Engine::new(&node, &g, &t).unwrap();
        let clean = engine
            .run(&mut FixedPlanner::new(Pattern::Intra, 0))
            .unwrap();
        // Black out the middle of the (clear) day.
        let plan = helio_faults::FaultPlan {
            solar: vec![helio_faults::SolarFault {
                window: helio_faults::PeriodWindow::new(10, 4),
                factor: 0.0,
            }],
            ..helio_faults::FaultPlan::default()
        };
        let harness = helio_faults::FaultHarness::new(&plan, 24, 24);
        let faulted = engine
            .run_with_faults(&mut FixedPlanner::new(Pattern::Intra, 0), Some(&harness))
            .unwrap();
        let clean_misses: usize = clean.periods.iter().map(|p| p.misses).sum();
        let faulted_misses: usize = faulted.periods.iter().map(|p| p.misses).sum();
        assert!(
            faulted_misses > clean_misses,
            "a midday blackout must cost deadlines: {faulted_misses} vs {clean_misses}"
        );
        assert!(faulted
            .faults
            .iter()
            .any(|e| e.kind == helio_faults::FaultKind::SolarOutage));
        assert_eq!(degraded_slots(&faulted), 4 * 10, "4 periods x 10 slots");
    }

    fn degraded_slots(r: &SimReport) -> usize {
        r.degraded.faulted_slots
    }

    #[test]
    fn stuck_pmu_channel_overrides_the_planner() {
        let grid = grid(1);
        let node = NodeConfig::builder(grid)
            .capacitors(&[Farads::new(2.0), Farads::new(15.0)])
            .build()
            .unwrap();
        let t = trace(1, &[DayArchetype::Clear]);
        let g = graph();
        let engine = Engine::new(&node, &g, &t).unwrap();
        let plan = helio_faults::FaultPlan {
            pmu_stuck: vec![helio_faults::PmuStuckFault {
                window: helio_faults::PeriodWindow::new(0, 24),
                // Out-of-range channel: the engine clamps to the bank.
                channel: 7,
            }],
            ..helio_faults::FaultPlan::default()
        };
        let harness = helio_faults::FaultHarness::new(&plan, 24, 24);
        // The planner keeps asking for capacitor 0; the mux is stuck on
        // (clamped) channel 1.
        let report = engine
            .run_with_faults(&mut FixedPlanner::new(Pattern::Intra, 0), Some(&harness))
            .unwrap();
        assert_eq!(report.degraded.pmu_overrides, 24);
        assert!(report.periods.iter().all(|p| p.capacitor == 1));
    }

    #[test]
    fn same_fault_seed_reproduces_identical_reports() {
        let node = node(2);
        let t = trace(2, &[DayArchetype::BrokenClouds, DayArchetype::Overcast]);
        let g = graph();
        let engine = Engine::new(&node, &g, &t).unwrap();
        let plan = helio_faults::FaultPlan {
            seed: 42,
            random_blackouts: Some(helio_faults::RandomBlackouts {
                per_period_probability: 0.2,
                min_periods: 1,
                max_periods: 3,
            }),
            aging: Some(helio_faults::AgingFault {
                capacitance_fade_per_day: 0.95,
                leakage_growth_per_day: 1.2,
            }),
            ..helio_faults::FaultPlan::default()
        };
        let harness = helio_faults::FaultHarness::new(&plan, 48, 24);
        let a = engine
            .run_with_faults(&mut FixedPlanner::new(Pattern::Inter, 0), Some(&harness))
            .unwrap();
        let b = engine
            .run_with_faults(&mut FixedPlanner::new(Pattern::Inter, 0), Some(&harness))
            .unwrap();
        assert_eq!(a, b);
        assert!(!a.faults.is_empty(), "seeded faults must be logged");
        assert!(a.degraded.faulted_slots > 0);
    }

    #[test]
    fn forecast_corruption_is_sanitized_not_fatal() {
        let node = node(1);
        let t = trace(1, &[DayArchetype::Clear]);
        let g = graph();
        let engine = Engine::new(&node, &g, &t).unwrap();
        let plan = helio_faults::FaultPlan {
            forecast: vec![helio_faults::ForecastFault {
                window: helio_faults::PeriodWindow::new(0, 24),
                mode: helio_faults::ForecastMode::Nan,
            }],
            ..helio_faults::FaultPlan::default()
        };
        let harness = helio_faults::FaultHarness::new(&plan, 24, 24);
        let report = engine
            .run_with_faults(&mut FixedPlanner::new(Pattern::Inter, 0), Some(&harness))
            .unwrap();
        assert_eq!(report.degraded.sanitized_forecasts, 24);
        assert!(report.periods.iter().all(|p| p.misses <= p.tasks));
    }
}
