//! Error type for the core crate.

use std::fmt;

/// Errors produced by engine configuration, planning and training.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// Node configuration is inconsistent.
    Config(String),
    /// The task graph failed validation against the grid.
    Tasks(String),
    /// A storage-layer operation failed. Carries the typed
    /// [`StorageError`](helio_storage::StorageError) so callers can
    /// match on the precise failure (e.g. an out-of-range capacitor
    /// index) rather than parsing a message.
    Storage(helio_storage::StorageError),
    /// The trace does not match the configured grid.
    TraceMismatch(String),
    /// Offline training failed.
    Training(String),
    /// A scheduler broke an engine invariant (e.g. assigned one task's
    /// NVP to two slots at once).
    SchedulerContract(String),
    /// A batch worker panicked; the panic was quarantined instead of
    /// unwinding through the pool. Carries the panic message. Callers
    /// that need per-scenario isolation (the fleet service) re-run the
    /// affected scenarios individually on this error.
    WorkerPanic(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Config(m) => write!(f, "invalid node configuration: {m}"),
            CoreError::Tasks(m) => write!(f, "invalid task set: {m}"),
            CoreError::Storage(m) => write!(f, "storage error: {m}"),
            CoreError::TraceMismatch(m) => write!(f, "trace/grid mismatch: {m}"),
            CoreError::Training(m) => write!(f, "training failed: {m}"),
            CoreError::SchedulerContract(m) => write!(f, "scheduler contract violation: {m}"),
            CoreError::WorkerPanic(m) => write!(f, "batch worker panicked: {m}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<helio_storage::StorageError> for CoreError {
    fn from(e: helio_storage::StorageError) -> Self {
        CoreError::Storage(e)
    }
}

impl From<helio_tasks::TaskError> for CoreError {
    fn from(e: helio_tasks::TaskError) -> Self {
        CoreError::Tasks(e.to_string())
    }
}

impl From<helio_ann::AnnError> for CoreError {
    fn from(e: helio_ann::AnnError) -> Self {
        CoreError::Training(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions() {
        let e: CoreError = helio_storage::StorageError::InvalidCapacitance(-1.0).into();
        assert!(e.to_string().contains("storage error"));
        assert!(matches!(
            e,
            CoreError::Storage(helio_storage::StorageError::InvalidCapacitance(_))
        ));
        let e: CoreError = helio_tasks::TaskError::Empty.into();
        assert!(e.to_string().contains("invalid task set"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CoreError>();
    }
}
