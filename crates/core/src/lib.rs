#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::panic))]
//! # heliosched
//!
//! Long-term deadline-aware task scheduling with global energy
//! migration for solar-powered nonvolatile sensor nodes — a full
//! reproduction of the DAC'15 paper by Zhang et al.
//!
//! The crate ties the substrates together:
//!
//! * [`engine`] — the slot-stepped simulation of the dual-channel node
//!   (Fig. 3): solar harvest, PMU routing, capacitor bank, NVP fleet
//!   and deadline bookkeeping.
//! * [`planner`] — the per-period coarse decision interface: which
//!   supercapacitor to use, which tasks to admit (`te_{i,j}(n)`), and
//!   which fine-grained scheduling pattern (intra vs inter) to run.
//! * [`longterm`] — the simplified long-term DMR optimisation of
//!   Section 4.2 (Eqs. 12–18) as a value-iteration over periods and
//!   quantised capacitor states.
//! * [`optimal`] — the static optimal planner (the paper's upper
//!   bound): the long-term DP run on the *true* solar trace.
//! * [`online`] — the proposed online planner: a DBN trained on optimal
//!   samples (Fig. 6) or a model-predictive backend on forecast solar,
//!   plus the Eq. 22 capacitor-switch rule and the `δ` pattern-selection
//!   threshold.
//! * [`offline`] — the design-time pipeline: capacitor sizing
//!   (Section 4.1), optimal-sample generation, and DBN training.
//! * [`overhead`] — the Section 6.5 algorithm-overhead model for the
//!   93.5 kHz node.
//!
//! ## Quickstart
//!
//! ```
//! use heliosched::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // One simulated day on a coarse grid (24 periods × 6 slots).
//! let grid = TimeGrid::new(1, 24, 6, Seconds::new(100.0))?;
//! let trace = TraceBuilder::new(grid, SolarPanel::paper_panel())
//!     .seed(1)
//!     .days(&[DayArchetype::Clear])
//!     .build();
//! let graph = benchmarks::ecg();
//! let node = NodeConfig::builder(grid)
//!     .capacitors(&[Farads::new(10.0)])
//!     .build()?;
//!
//! // The intra-task baseline, single capacitor.
//! let mut planner = FixedPlanner::new(Pattern::Intra, 0);
//! let report = Engine::new(&node, &graph, &trace)?.run(&mut planner)?;
//! assert!(report.overall_dmr() <= 1.0);
//! # Ok(())
//! # }
//! ```

pub mod analysis;
pub mod batch;
pub mod checkpoint;
pub mod config;
pub mod engine;
pub mod error;
pub mod longterm;
pub mod metrics;
pub mod offline;
pub mod online;
pub mod optimal;
pub mod overhead;
pub mod planner;
pub mod resilient;
pub mod subsets;

pub use analysis::{
    capacitor_usage, day_night_split, dmr_improvement, DayNightSplit, TradeoffPoint,
};
pub use batch::{BatchEngine, BatchRunState, BatchScenario, BatchScratch, PlanContext};
pub use checkpoint::{
    BatchCheckpoint, MpcCacheState, PlannerCheckpoint, ProposedCheckpoint, ResilientCheckpoint,
    ScenarioCheckpoint,
};
pub use config::NodeConfig;
pub use engine::Engine;
pub use error::CoreError;
pub use longterm::{
    optimize_horizon, optimize_horizon_serial, optimize_horizon_with_cache, DpConfig, DpResult,
    PeriodPlan,
};
pub use metrics::{PeriodRecord, SimReport};
pub use offline::{size_capacitors, train_proposed, OfflineConfig};
pub use online::{ProposedPlanner, SwitchRule};
pub use optimal::OptimalPlanner;
pub use overhead::{OverheadModel, OverheadReport};
pub use planner::{
    FixedPlanner, Pattern, PeriodPlanner, PlanDecision, PlannerHealth, PlannerObservation,
};
pub use resilient::ResilientPlanner;
pub use subsets::{closed_subsets, dmr_level_subsets};

/// Convenient re-exports for examples and downstream users.
pub mod prelude {
    pub use crate::batch::{BatchEngine, BatchRunState, BatchScenario, BatchScratch, PlanContext};
    pub use crate::checkpoint::{BatchCheckpoint, PlannerCheckpoint, ScenarioCheckpoint};
    pub use crate::config::NodeConfig;
    pub use crate::engine::Engine;
    pub use crate::error::CoreError;
    pub use crate::metrics::SimReport;
    pub use crate::offline::{size_capacitors, train_proposed, OfflineConfig};
    pub use crate::online::ProposedPlanner;
    pub use crate::optimal::OptimalPlanner;
    pub use crate::planner::{FixedPlanner, Pattern, PeriodPlanner, PlannerHealth};
    pub use crate::resilient::ResilientPlanner;
    pub use helio_common::time::{PeriodRef, TimeGrid};
    pub use helio_common::units::{Farads, Joules, Seconds, Volts, Watts};
    pub use helio_faults::{FaultHarness, FaultPlan};
    pub use helio_solar::{DayArchetype, NoisyOracle, SolarPanel, TraceBuilder, WcmaPredictor};
    pub use helio_storage::StorageModelParams;
    pub use helio_tasks::benchmarks;
}
