//! Property tests for the parallel offline pipeline: subset closure,
//! memoized simulation identity, and parallel-vs-serial determinism.

use helio_common::units::{Farads, Joules, Seconds, Volts};
use helio_common::TaskSet;
use helio_nvp::Pmu;
use helio_sched::{simulate_subset_at, SubsetSimCache};
use helio_storage::{StorageModelParams, SuperCap};
use helio_tasks::{benchmarks, TaskGraph};
use heliosched::{
    closed_subsets, dmr_level_subsets, optimize_horizon, optimize_horizon_serial, DpConfig,
};
use proptest::prelude::*;

/// The nine graphs the experiments run on (six paper benchmarks plus
/// the three random cases).
fn graph_case(pick: usize) -> TaskGraph {
    let six = benchmarks::all_six();
    match pick % 9 {
        k @ 0..=5 => six[k].clone(),
        k => benchmarks::random_case(k - 5),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every mask `closed_subsets` emits is dependency-closed: a task
    /// is only included when all its predecessors are. The DMR-level
    /// reduction keeps a subset of those masks plus the empty and full
    /// subsets.
    #[test]
    fn closed_subsets_are_dependency_closed(pick in 0usize..9, keep in 1usize..4) {
        let graph = graph_case(pick);
        let all = closed_subsets(&graph);
        for mask in &all {
            for (from, to) in graph.edges() {
                prop_assert!(
                    !mask.contains(to.index()) || mask.contains(from.index()),
                    "{}: task {} included without predecessor {}",
                    graph.name(),
                    to.index(),
                    from.index()
                );
            }
        }
        let full = graph.all_tasks();
        prop_assert!(all.contains(&TaskSet::EMPTY));
        prop_assert!(all.contains(&full));

        let levels = dmr_level_subsets(&graph, keep);
        prop_assert!(levels.iter().all(|m| all.contains(m)));
        prop_assert!(levels.contains(&TaskSet::EMPTY));
        prop_assert!(levels.contains(&full));
    }

    /// A cache hit returns the bitwise-identical outcome of an uncached
    /// `simulate_subset` run on the same inputs.
    #[test]
    fn cached_simulation_matches_uncached(
        pick in 0usize..9,
        subset_seed in 0usize..1000,
        energies in prop::collection::vec(0.0f64..0.5, 10),
        voltage in 0.5f64..4.5,
        capacitance in 1.0f64..60.0,
    ) {
        let graph = graph_case(pick);
        let subsets = dmr_level_subsets(&graph, 2);
        let subset = subsets[subset_seed % subsets.len()];
        let solar: Vec<Joules> = energies.iter().map(|&e| Joules::new(e)).collect();
        let slot = Seconds::new(60.0);
        let storage = StorageModelParams::default();
        let pmu = Pmu::default();
        let cap = SuperCap::new(Farads::new(capacitance), &storage).expect("valid");
        let v = Volts::new(voltage);

        let plain = simulate_subset_at(&graph, subset, &solar, slot, &cap, v, &pmu, &storage);
        let cache = SubsetSimCache::new();
        let miss = cache.simulate(&graph, subset, &solar, slot, &cap, v, &pmu, &storage);
        let hit = cache.simulate(&graph, subset, &solar, slot, &cap, v, &pmu, &storage);
        prop_assert_eq!(&miss, &plain);
        prop_assert_eq!(&hit, &plain);
        let stats = cache.stats();
        prop_assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    /// `par_map` is a drop-in for serial `map`: same values, same order.
    #[test]
    fn parallel_map_matches_serial(xs in prop::collection::vec(-1e6f64..1e6, 0..40)) {
        let f = |x: &f64| (x * 1.5 - 3.0, x.to_bits());
        let serial: Vec<_> = xs.iter().map(f).collect();
        let parallel = helio_par::par_map(&xs, f);
        prop_assert_eq!(parallel, serial);
    }
}

proptest! {
    // The DP property is heavier: fewer cases, smaller horizons.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The cached + parallel DP reproduces the serial reference
    /// bitwise on arbitrary solar inputs.
    #[test]
    fn parallel_dp_matches_serial_reference(
        pick in 0usize..9,
        flat in prop::collection::vec(0.0f64..0.4, 12),
        capacitance in 5.0f64..40.0,
    ) {
        let graph = graph_case(pick);
        let subsets = dmr_level_subsets(&graph, 2);
        let solar: Vec<Vec<Joules>> = flat
            .chunks(3)
            .map(|c| c.iter().map(|&e| Joules::new(e)).collect())
            .collect();
        let storage = StorageModelParams::default();
        let pmu = Pmu::default();
        let cap = SuperCap::new(Farads::new(capacitance), &storage).expect("valid");
        let dp = DpConfig::default();

        let serial = optimize_horizon_serial(
            &graph, &subsets, &solar, Seconds::new(60.0), &cap, cap.empty_state(),
            &storage, &pmu, &dp,
        );
        let fast = optimize_horizon(
            &graph, &subsets, &solar, Seconds::new(60.0), &cap, cap.empty_state(),
            &storage, &pmu, &dp,
        );
        prop_assert_eq!(serial, fast);
    }
}
