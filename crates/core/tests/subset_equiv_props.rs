//! Equivalence of the `TaskSet`-based subset enumeration against the
//! legacy `Vec<bool>` formulation it replaced: on random DAGs both
//! `closed_subsets` and `dmr_level_subsets` must emit the same masks in
//! the same order, element for element.

use helio_common::units::{Seconds, Watts};
use helio_common::TaskSet;
use helio_tasks::{Task, TaskGraph, TaskId};
use heliosched::{closed_subsets, dmr_level_subsets};
use proptest::prelude::*;

/// Builds a random DAG: `powers.len()` tasks, an edge `i -> j` (i < j)
/// for every set bit of `edge_bits`. Edges only point forward, so the
/// graph is acyclic by construction.
fn random_dag(powers: &[f64], edge_bits: u64) -> TaskGraph {
    let n = powers.len();
    let mut g = TaskGraph::new("equiv-prop");
    for (i, &p) in powers.iter().enumerate() {
        g.add_task(Task::new(
            format!("t{i}"),
            Seconds::new(60.0),
            Seconds::new(600.0),
            Watts::new(p),
            i % 3,
        ));
    }
    let mut pair = 0u32;
    for i in 0..n {
        for j in (i + 1)..n {
            if edge_bits & (1 << (pair % 64)) != 0 {
                g.add_edge(TaskId(i), TaskId(j)).expect("forward edge");
            }
            pair += 1;
        }
    }
    g
}

/// The pre-refactor reference enumeration over `Vec<bool>` masks:
/// ascending `u32` mask order, edge check per mask.
fn closed_subsets_ref(graph: &TaskGraph) -> Vec<Vec<bool>> {
    let n = graph.len();
    let mut out = Vec::new();
    'mask: for mask in 0u32..(1u32 << n) {
        let bits: Vec<bool> = (0..n).map(|i| mask & (1 << i) != 0).collect();
        for (from, to) in graph.edges() {
            if bits[to.index()] && !bits[from.index()] {
                continue 'mask;
            }
        }
        out.push(bits);
    }
    out
}

/// The pre-refactor DMR-level reduction: per subset size, a stable sort
/// by total energy keeps the cheapest `keep` masks.
fn dmr_level_subsets_ref(graph: &TaskGraph, keep: usize) -> Vec<Vec<bool>> {
    let all = closed_subsets_ref(graph);
    let energy = |mask: &[bool]| -> f64 {
        graph
            .ids()
            .filter(|id| mask[id.index()])
            .map(|id| graph.task(id).energy().value())
            .sum()
    };
    let n = graph.len();
    let mut out = Vec::new();
    for k in 0..=n {
        let mut level: Vec<Vec<bool>> = all
            .iter()
            .filter(|m| m.iter().filter(|&&b| b).count() == k)
            .cloned()
            .collect();
        level.sort_by(|a, b| energy(a).total_cmp(&energy(b)));
        out.extend(level.into_iter().take(keep.max(1)));
    }
    out
}

fn same_masks(new: &[TaskSet], legacy: &[Vec<bool>], n: usize) {
    assert_eq!(new.len(), legacy.len());
    for (idx, (set, bits)) in new.iter().zip(legacy).enumerate() {
        for (i, &b) in bits.iter().enumerate().take(n) {
            assert_eq!(
                set.contains(i),
                b,
                "mask {idx} bit {i}: {set} vs legacy {bits:?}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn taskset_enumeration_matches_legacy_reference(
        powers in prop::collection::vec(0.01f64..0.5, 1..=12),
        edge_bits in any::<u64>(),
        keep in 1usize..4,
    ) {
        let graph = random_dag(&powers, edge_bits);
        let n = graph.len();

        let new_all = closed_subsets(&graph);
        let ref_all = closed_subsets_ref(&graph);
        same_masks(&new_all, &ref_all, n);

        let new_levels = dmr_level_subsets(&graph, keep);
        let ref_levels = dmr_level_subsets_ref(&graph, keep);
        same_masks(&new_levels, &ref_levels, n);
    }
}
