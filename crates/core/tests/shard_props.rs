//! Property test: a sharded [`BatchEngine`] run — scenarios
//! partitioned into contiguous per-worker shards, each worker with its
//! own scratch — is byte-identical to the sequential engine for
//! arbitrary scenario mixes (planner backends × fault plans × shard
//! counts 1..=8).

use std::sync::{Arc, OnceLock};

use helio_ann::{Dbn, DbnConfig};
use helio_common::time::TimeGrid;
use helio_common::units::{Farads, Seconds};
use helio_faults::{
    AgingFault, DbnFault, DbnFaultMode, FaultHarness, FaultPlan, PeriodWindow, PmuStuckFault,
    RandomBlackouts, SolarFault,
};
use helio_solar::{DayArchetype, SolarPanel, SolarTrace, TraceBuilder};
use helio_tasks::{benchmarks, TaskGraph};
use heliosched::online::{ProposedPlanner, SwitchRule};
use heliosched::{
    BatchEngine, BatchScenario, Engine, FixedPlanner, NodeConfig, Pattern, PeriodPlanner,
    ResilientPlanner,
};
use proptest::prelude::*;

const DAYS: usize = 1;
const PERIODS: usize = 12;
const SLOTS: usize = 10;

fn grid() -> TimeGrid {
    TimeGrid::new(DAYS, PERIODS, SLOTS, Seconds::new(60.0)).unwrap()
}

fn node() -> NodeConfig {
    NodeConfig::builder(grid())
        .capacitors(&[Farads::new(2.0), Farads::new(15.0)])
        .build()
        .unwrap()
}

fn trace(seed: u64) -> SolarTrace {
    let archetypes = [
        DayArchetype::Clear,
        DayArchetype::BrokenClouds,
        DayArchetype::Overcast,
        DayArchetype::Storm,
    ];
    TraceBuilder::new(grid(), SolarPanel::paper_panel())
        .seed(seed)
        .days(&[archetypes[(seed % 4) as usize]])
        .build()
}

/// One DBN trained once and shared by every proptest case.
fn shared_dbn(graph: &TaskGraph) -> Arc<Dbn> {
    static DBN: OnceLock<Arc<Dbn>> = OnceLock::new();
    DBN.get_or_init(|| {
        let in_dim = SLOTS + 2 + 1;
        let inputs: Vec<Vec<f64>> = (0..40)
            .map(|i| {
                let mut v = vec![(i % 7) as f64 * 10.0; in_dim];
                v[in_dim - 1] = 0.3;
                v
            })
            .collect();
        let targets: Vec<Vec<f64>> = (0..40)
            .map(|i| {
                let mut v = vec![(i % 2) as f64, 1.0];
                v.extend(vec![1.0; graph.len()]);
                v
            })
            .collect();
        let mut cfg = DbnConfig::small(3);
        cfg.bp_epochs = 100;
        Arc::new(Dbn::train(&inputs, &targets, &cfg).unwrap())
    })
    .clone()
}

fn make_planner<'a>(kind: u8, dbn: &Arc<Dbn>) -> Box<dyn PeriodPlanner + 'a> {
    match kind % 4 {
        0 => Box::new(FixedPlanner::new(Pattern::Inter, 1)),
        1 => Box::new(ProposedPlanner::from_shared_dbn(
            Arc::clone(dbn),
            0.5,
            SwitchRule::default(),
        )),
        2 => Box::new(ResilientPlanner::new(Box::new(
            ProposedPlanner::from_shared_dbn(Arc::clone(dbn), 0.5, SwitchRule::default()),
        ))),
        _ => Box::new(FixedPlanner::new(Pattern::Intra, 0)),
    }
}

fn make_plan(kind: u8, seed: u64) -> FaultPlan {
    let total = DAYS * PERIODS;
    match kind % 5 {
        0 => FaultPlan::default(),
        1 => FaultPlan {
            solar: vec![SolarFault {
                window: PeriodWindow::new((seed % total as u64) as usize, 3),
                factor: 0.0,
            }],
            ..FaultPlan::default()
        },
        2 => FaultPlan {
            seed,
            random_blackouts: Some(RandomBlackouts {
                per_period_probability: 0.25,
                min_periods: 1,
                max_periods: 2,
            }),
            dbn: vec![DbnFault {
                window: PeriodWindow::new((seed % 6) as usize, 4),
                mode: if seed.is_multiple_of(2) {
                    DbnFaultMode::Nan
                } else {
                    DbnFaultMode::Unavailable
                },
            }],
            ..FaultPlan::default()
        },
        3 => FaultPlan {
            aging: Some(AgingFault {
                capacitance_fade_per_day: 0.9,
                leakage_growth_per_day: 1.3,
            }),
            pmu_stuck: vec![PmuStuckFault {
                window: PeriodWindow::new(2, 4),
                channel: (seed % 3) as usize,
            }],
            ..FaultPlan::default()
        },
        _ => FaultPlan {
            dbn: vec![DbnFault {
                window: PeriodWindow::new(0, total),
                mode: DbnFaultMode::Unavailable,
            }],
            ..FaultPlan::default()
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn sharded_matches_sequential_for_arbitrary_scenarios(
        raw in prop::collection::vec(any::<u64>(), 1..9),
    ) {
        // The vendored proptest has no tuple strategies; decompose one
        // u64 per scenario into (planner kind, fault-plan kind, seed),
        // and take the shard count 1..=8 from the first element's high
        // bits so every case also picks an arbitrary partition.
        let scenarios: Vec<(u8, u8, u64)> = raw
            .iter()
            .map(|&v| ((v % 4) as u8, ((v / 4) % 5) as u8, (v / 20) % 32))
            .collect();
        let shards = 1 + ((raw[0] >> 32) % 8) as usize;
        let node = node();
        let graph = benchmarks::ecg();
        let dbn = shared_dbn(&graph);
        let total = DAYS * PERIODS;

        let traces: Vec<SolarTrace> =
            scenarios.iter().map(|&(_, _, seed)| trace(seed)).collect();
        let harnesses: Vec<FaultHarness> = scenarios
            .iter()
            .map(|&(_, plan_kind, seed)| {
                FaultHarness::new(&make_plan(plan_kind, seed), total, PERIODS)
            })
            .collect();

        let mut engine = BatchEngine::new(&node, &graph).unwrap();
        for (i, &(planner_kind, _, _)) in scenarios.iter().enumerate() {
            engine
                .push(
                    BatchScenario::new(&traces[i], make_planner(planner_kind, &dbn))
                        .with_harness(&harnesses[i]),
                )
                .unwrap();
        }
        let sharded = engine.run_sharded(shards).unwrap();
        prop_assert_eq!(sharded.len(), scenarios.len());

        for (i, &(planner_kind, _, _)) in scenarios.iter().enumerate() {
            let mut planner = make_planner(planner_kind, &dbn);
            let sequential = Engine::new(&node, &graph, &traces[i])
                .unwrap()
                .run_with_faults(planner.as_mut(), Some(&harnesses[i]))
                .unwrap();
            prop_assert_eq!(
                serde_json::to_string(&sharded[i]).unwrap(),
                serde_json::to_string(&sequential).unwrap(),
                "scenario {} diverged at {} shards", i, shards
            );
        }
    }
}
