//! Property test: interrupting a [`BatchEngine`] run at an arbitrary
//! period boundary, JSON-round-tripping the checkpoint (as the fleet's
//! on-disk resume does) and finishing on a fresh engine with an
//! arbitrary shard count is byte-identical to the uninterrupted run —
//! for arbitrary scenario mixes (planner backends × fault plans ×
//! probation settings).

use std::sync::{Arc, OnceLock};

use helio_ann::{Dbn, DbnConfig};
use helio_common::time::TimeGrid;
use helio_common::units::{Farads, Seconds};
use helio_faults::{
    AgingFault, DbnFault, DbnFaultMode, FaultHarness, FaultPlan, PeriodWindow, RandomBlackouts,
};
use helio_solar::{DayArchetype, NoisyOracle, SolarPanel, SolarTrace, TraceBuilder};
use helio_tasks::{benchmarks, TaskGraph};
use heliosched::longterm::DpConfig;
use heliosched::online::{ProposedPlanner, SwitchRule};
use heliosched::{
    BatchCheckpoint, BatchEngine, BatchScenario, BatchScratch, FixedPlanner, NodeConfig, Pattern,
    PeriodPlanner, ResilientPlanner,
};
use proptest::prelude::*;

const DAYS: usize = 1;
const PERIODS: usize = 12;
const SLOTS: usize = 10;

fn grid() -> TimeGrid {
    TimeGrid::new(DAYS, PERIODS, SLOTS, Seconds::new(60.0)).unwrap()
}

fn node() -> NodeConfig {
    NodeConfig::builder(grid())
        .capacitors(&[Farads::new(2.0), Farads::new(15.0)])
        .build()
        .unwrap()
}

fn trace(seed: u64) -> SolarTrace {
    let archetypes = [
        DayArchetype::Clear,
        DayArchetype::BrokenClouds,
        DayArchetype::Overcast,
        DayArchetype::Storm,
    ];
    TraceBuilder::new(grid(), SolarPanel::paper_panel())
        .seed(seed)
        .days(&[archetypes[(seed % 4) as usize]])
        .build()
}

/// One DBN trained once and shared by every proptest case.
fn shared_dbn(graph: &TaskGraph) -> Arc<Dbn> {
    static DBN: OnceLock<Arc<Dbn>> = OnceLock::new();
    DBN.get_or_init(|| {
        let in_dim = SLOTS + 2 + 1;
        let inputs: Vec<Vec<f64>> = (0..40)
            .map(|i| {
                let mut v = vec![(i % 7) as f64 * 10.0; in_dim];
                v[in_dim - 1] = 0.3;
                v
            })
            .collect();
        let targets: Vec<Vec<f64>> = (0..40)
            .map(|i| {
                let mut v = vec![(i % 2) as f64, 1.0];
                v.extend(vec![1.0; graph.len()]);
                v
            })
            .collect();
        let mut cfg = DbnConfig::small(3);
        cfg.bp_epochs = 100;
        Arc::new(Dbn::train(&inputs, &targets, &cfg).unwrap())
    })
    .clone()
}

fn make_planner<'a>(kind: u8, dbn: &Arc<Dbn>) -> Box<dyn PeriodPlanner + 'a> {
    match kind % 5 {
        0 => Box::new(FixedPlanner::new(Pattern::Inter, 1)),
        1 => Box::new(ProposedPlanner::from_shared_dbn(
            Arc::clone(dbn),
            0.5,
            SwitchRule::default(),
        )),
        2 => Box::new(ResilientPlanner::new(Box::new(
            ProposedPlanner::from_shared_dbn(Arc::clone(dbn), 0.5, SwitchRule::default()),
        ))),
        3 => Box::new(
            ResilientPlanner::new(Box::new(ProposedPlanner::from_shared_dbn(
                Arc::clone(dbn),
                0.5,
                SwitchRule::default(),
            )))
            .with_probation(2),
        ),
        _ => Box::new(ProposedPlanner::mpc(
            Box::new(NoisyOracle::perfect()),
            PERIODS,
            DpConfig {
                voltage_buckets: 4,
                keep_per_level: 1,
            },
            0.5,
            SwitchRule::default(),
        )),
    }
}

fn make_plan(kind: u8, seed: u64) -> FaultPlan {
    let total = DAYS * PERIODS;
    match kind % 4 {
        0 => FaultPlan::default(),
        1 => FaultPlan {
            seed,
            random_blackouts: Some(RandomBlackouts {
                per_period_probability: 0.25,
                min_periods: 1,
                max_periods: 2,
            }),
            ..FaultPlan::default()
        },
        2 => FaultPlan {
            dbn: vec![DbnFault {
                window: PeriodWindow::new((seed % 6) as usize, 4),
                mode: if seed.is_multiple_of(2) {
                    DbnFaultMode::Nan
                } else {
                    DbnFaultMode::Unavailable
                },
            }],
            ..FaultPlan::default()
        },
        _ => FaultPlan {
            aging: Some(AgingFault {
                capacitance_fade_per_day: 0.9,
                leakage_growth_per_day: 1.3,
            }),
            dbn: vec![DbnFault {
                window: PeriodWindow::new(0, total),
                mode: DbnFaultMode::Nan,
            }],
            ..FaultPlan::default()
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn interrupted_runs_resume_byte_identically(
        raw in prop::collection::vec(any::<u64>(), 1..7),
    ) {
        // The vendored proptest has no tuple strategies; decompose one
        // u64 per scenario into (planner kind, fault-plan kind, seed),
        // and take the kill period and the resume shard count from the
        // first element's high bits so every case also picks an
        // arbitrary interruption point and partition.
        let scenarios: Vec<(u8, u8, u64)> = raw
            .iter()
            .map(|&v| ((v % 5) as u8, ((v / 5) % 4) as u8, (v / 20) % 32))
            .collect();
        let total = DAYS * PERIODS;
        let kill = ((raw[0] >> 24) % (total as u64 + 1)) as usize;
        let shards = 1 + ((raw[0] >> 40) % 4) as usize;
        let node = node();
        let graph = benchmarks::ecg();
        let dbn = shared_dbn(&graph);

        let traces: Vec<SolarTrace> =
            scenarios.iter().map(|&(_, _, seed)| trace(seed)).collect();
        let harnesses: Vec<FaultHarness> = scenarios
            .iter()
            .map(|&(_, plan_kind, seed)| {
                FaultHarness::new(&make_plan(plan_kind, seed), total, PERIODS)
            })
            .collect();
        let build = || {
            let mut engine = BatchEngine::new(&node, &graph).unwrap();
            for (i, &(planner_kind, _, _)) in scenarios.iter().enumerate() {
                engine
                    .push(
                        BatchScenario::new(&traces[i], make_planner(planner_kind, &dbn))
                            .with_harness(&harnesses[i]),
                    )
                    .unwrap();
            }
            engine
        };

        let whole = build().run().unwrap();

        // Kill at the boundary, persist the checkpoint as JSON, resume
        // on a fresh engine with an arbitrary shard count.
        let ckpt = build().run_until(kill).unwrap();
        prop_assert_eq!(ckpt.next_period, kill);
        let json = serde_json::to_string(&ckpt).unwrap();
        let restored: BatchCheckpoint = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(&restored, &ckpt);
        let mut scratches: Vec<BatchScratch> = Vec::new();
        scratches.resize_with(shards, BatchScratch::default);
        let resumed = build()
            .run_from_checkpoint_sharded_with(&restored, &mut scratches)
            .unwrap();

        prop_assert_eq!(resumed.len(), whole.len());
        for (i, (a, b)) in resumed.iter().zip(&whole).enumerate() {
            prop_assert_eq!(
                serde_json::to_string(a).unwrap(),
                serde_json::to_string(b).unwrap(),
                "scenario {} diverged after kill at period {} ({} shards)", i, kill, shards
            );
        }
    }
}
