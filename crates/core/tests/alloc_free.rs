//! Counting-allocator proof that the engine's slot path performs zero
//! heap allocations after warm-up.
//!
//! Black-box formulation: every `Engine::run` pays a fixed setup cost
//! (bank, schedulers, exec scratch, the pre-sized period vector) and
//! warms up its scratch buffers during the first day. If the slot loop
//! and the per-period path are allocation-free from then on, the total
//! allocation count of a run must not depend on how many days it
//! simulates — extra days are free. The test pins exactly that, for all
//! three fixed schedulers.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use helio_common::time::TimeGrid;
use helio_common::units::{Farads, Seconds};
use helio_solar::{DayArchetype, SolarPanel, SolarTrace, TraceBuilder};
use helio_tasks::benchmarks;
use heliosched::{Engine, FixedPlanner, NodeConfig, Pattern};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocations_during(f: impl FnOnce()) -> u64 {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    f();
    ALLOCATIONS.load(Ordering::Relaxed) - before
}

/// `days` repeats of the same two-day weather sequence.
fn setup(days: usize) -> (NodeConfig, SolarTrace) {
    let grid = TimeGrid::new(days, 24, 10, Seconds::new(60.0)).unwrap();
    let archetypes: Vec<DayArchetype> = [DayArchetype::Clear, DayArchetype::BrokenClouds]
        .into_iter()
        .cycle()
        .take(days)
        .collect();
    let node = NodeConfig::builder(grid)
        .capacitors(&[Farads::new(10.0)])
        .build()
        .unwrap();
    let trace = TraceBuilder::new(grid, SolarPanel::paper_panel())
        .seed(7)
        .days(&archetypes)
        .build();
    (node, trace)
}

#[test]
fn slot_path_allocates_nothing_after_warm_up() {
    let graph = benchmarks::ecg();
    let (node_short, trace_short) = setup(2);
    let (node_long, trace_long) = setup(6);
    let engine_short = Engine::new(&node_short, &graph, &trace_short).unwrap();
    let engine_long = Engine::new(&node_long, &graph, &trace_long).unwrap();

    for pattern in [Pattern::Asap, Pattern::Inter, Pattern::Intra] {
        let short = allocations_during(|| {
            engine_short
                .run(&mut FixedPlanner::new(pattern, 0))
                .unwrap();
        });
        let long = allocations_during(|| {
            engine_long.run(&mut FixedPlanner::new(pattern, 0)).unwrap();
        });
        // Setup and warm-up allocate identically; the four extra days
        // of the long run must add nothing.
        assert_eq!(
            long, short,
            "{pattern:?}: {long} allocations over 6 days vs {short} over 2 — \
             the slot path allocates per slot or per period"
        );
    }
}
