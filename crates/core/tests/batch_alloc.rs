//! Counting-allocator proof that a sharded batch worker's period loop
//! performs zero heap allocations after warm-up.
//!
//! Black-box formulation, mirroring `alloc_free.rs`: every sharded run
//! pays a fixed setup cost (per-scenario SoA state, report assembly)
//! and warms up the per-worker [`BatchScratch`] buffers during the
//! first periods. If the per-period batch path — feature gather,
//! grouped DBN forward, advance — is allocation-free from then on, the
//! total allocation count of a run must not depend on how many days it
//! simulates. The test pins exactly that, for shard counts 1 and 2,
//! with pre-warmed caller-owned scratches (the fleet service's
//! steady-state shape). MPC planners are excluded: they replan (and
//! allocate) once per day by design.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use helio_ann::{Dbn, DbnConfig};
use helio_common::time::TimeGrid;
use helio_common::units::{Farads, Seconds};
use helio_solar::{DayArchetype, SolarPanel, SolarTrace, TraceBuilder};
use helio_tasks::{benchmarks, TaskGraph};
use heliosched::online::{ProposedPlanner, SwitchRule};
use heliosched::{
    BatchEngine, BatchScenario, BatchScratch, FixedPlanner, NodeConfig, Pattern, PeriodPlanner,
};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocations_during(f: impl FnOnce()) -> u64 {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    f();
    ALLOCATIONS.load(Ordering::Relaxed) - before
}

/// `days` repeats of the same two-day weather sequence, four traces.
fn setup(days: usize) -> (NodeConfig, Vec<SolarTrace>) {
    let grid = TimeGrid::new(days, 24, 10, Seconds::new(60.0)).unwrap();
    let archetypes: Vec<DayArchetype> = [DayArchetype::Clear, DayArchetype::BrokenClouds]
        .into_iter()
        .cycle()
        .take(days)
        .collect();
    let node = NodeConfig::builder(grid)
        .capacitors(&[Farads::new(2.0), Farads::new(15.0)])
        .build()
        .unwrap();
    let traces = (0..4)
        .map(|s| {
            TraceBuilder::new(grid, SolarPanel::paper_panel())
                .seed(7 + s)
                .days(&archetypes)
                .build()
        })
        .collect();
    (node, traces)
}

fn tiny_dbn(graph: &TaskGraph) -> Arc<Dbn> {
    let in_dim = 10 + 2 + 1;
    let inputs: Vec<Vec<f64>> = (0..40)
        .map(|i| {
            let mut v = vec![(i % 7) as f64 * 10.0; in_dim];
            v[in_dim - 1] = 0.3;
            v
        })
        .collect();
    let targets: Vec<Vec<f64>> = (0..40)
        .map(|i| {
            let mut v = vec![(i % 2) as f64, 1.0];
            v.extend(vec![1.0; graph.len()]);
            v
        })
        .collect();
    Arc::new(Dbn::train(&inputs, &targets, &DbnConfig::small(2)).unwrap())
}

fn build<'a>(
    node: &'a NodeConfig,
    graph: &'a TaskGraph,
    traces: &'a [SolarTrace],
    dbn: &Arc<Dbn>,
) -> BatchEngine<'a> {
    let mut engine = BatchEngine::new(node, graph).unwrap();
    for (i, t) in traces.iter().enumerate() {
        let planner: Box<dyn PeriodPlanner> = match i % 2 {
            0 => Box::new(ProposedPlanner::from_shared_dbn(
                Arc::clone(dbn),
                0.5,
                SwitchRule::default(),
            )),
            _ => Box::new(FixedPlanner::new(Pattern::Inter, 1)),
        };
        engine.push(BatchScenario::new(t, planner)).unwrap();
    }
    engine
}

#[test]
fn batch_period_path_allocates_nothing_after_warm_up() {
    let graph = benchmarks::ecg();
    let dbn = tiny_dbn(&graph);
    let (node_short, traces_short) = setup(2);
    let (node_long, traces_long) = setup(6);

    for shard_count in [1usize, 2] {
        let mut scratches: Vec<BatchScratch> = Vec::new();
        scratches.resize_with(shard_count, BatchScratch::default);
        // Warm the per-worker scratches once, unmeasured.
        build(&node_short, &graph, &traces_short, &dbn)
            .run_sharded_with(&mut scratches)
            .unwrap();

        let short = allocations_during(|| {
            build(&node_short, &graph, &traces_short, &dbn)
                .run_sharded_with(&mut scratches)
                .unwrap();
        });
        let long = allocations_during(|| {
            build(&node_long, &graph, &traces_long, &dbn)
                .run_sharded_with(&mut scratches)
                .unwrap();
        });
        // Setup allocates identically (same batch, same shard count);
        // the four extra days of the long run must add nothing.
        assert_eq!(
            long, short,
            "{shard_count} shards: {long} allocations over 6 days vs {short} over 2 — \
             the batch period path allocates per period in a worker"
        );
    }
}
