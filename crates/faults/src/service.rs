//! Service-level chaos: fault descriptions for the *fleet service*
//! rather than the simulated node.
//!
//! The node-level [`FaultPlan`](crate::FaultPlan) perturbs harvest,
//! storage and inference inside one simulation; a [`ServiceFaultPlan`]
//! perturbs the long-running `helio-fleet` process around it — killing
//! it at a period boundary mid-request, corrupting protocol lines,
//! stalling the response writer, or panicking a worker. The service
//! and `bench_chaos` consume these descriptions; this crate stays a
//! pure data + helper layer with no dependency on the engine.

use std::io::Write;

use serde::{Deserialize, Serialize};

/// Chaos to inflict on a fleet-service session. All fields are
/// optional; the default plan is a no-op.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize)]
pub struct ServiceFaultPlan {
    /// 1-based ordinal of the request line to kill the service in.
    pub kill_request: Option<u64>,
    /// Flat period boundary to "crash" at while running that request:
    /// the service flushes its checkpoint and exits as if power-failed.
    pub kill_at_period: Option<usize>,
    /// Milliseconds a [`SlowWriter`] stalls on every flush (slow or
    /// wedged downstream client).
    pub stall_writer_ms: Option<u64>,
    /// Flat period at which a `chaos-panic` planner shim panics inside
    /// a worker (exercises shard quarantine).
    pub panic_planner_period: Option<usize>,
}

impl ServiceFaultPlan {
    /// Whether the plan perturbs anything at all.
    pub fn is_empty(&self) -> bool {
        *self == Self::default()
    }

    /// The kill point as `(request ordinal, period)`, when both halves
    /// are configured.
    pub fn kill_point(&self) -> Option<(u64, usize)> {
        match (self.kill_request, self.kill_at_period) {
            (Some(r), Some(p)) => Some((r, p)),
            _ => None,
        }
    }
}

// Hand-written so every field is optional in config files (the derive
// requires fields to be present).
impl Deserialize for ServiceFaultPlan {
    fn deserialize_json(v: &serde::Value) -> Result<Self, serde::DeError> {
        fn opt<T: Deserialize>(v: &serde::Value, name: &str) -> Result<Option<T>, serde::DeError> {
            match v.field(name) {
                Ok(serde::Value::Null) => Ok(None),
                Ok(f) => Ok(Some(T::deserialize_json(f)?)),
                Err(_) => Ok(None),
            }
        }
        Ok(Self {
            kill_request: opt(v, "kill_request")?,
            kill_at_period: opt(v, "kill_at_period")?,
            stall_writer_ms: opt(v, "stall_writer_ms")?,
            panic_planner_period: opt(v, "panic_planner_period")?,
        })
    }
}

/// Ways a protocol line can be mangled on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LineCorruption {
    /// Cut the line mid-token (client died mid-write).
    Truncate,
    /// Replace the line with non-JSON noise.
    Garbage,
    /// Pad the line with filler until it exceeds any sane bound.
    Oversize,
    /// Splice raw non-UTF8 bytes into the line.
    NonUtf8,
}

impl LineCorruption {
    /// Every corruption kind, for sweeps.
    pub const ALL: [LineCorruption; 4] = [
        LineCorruption::Truncate,
        LineCorruption::Garbage,
        LineCorruption::Oversize,
        LineCorruption::NonUtf8,
    ];
}

/// Deterministically corrupts one protocol line (no trailing newline
/// in or out). `seed` varies the cut point / noise so sweeps cover
/// different shapes without pulling in an RNG dependency.
pub fn corrupt_line(line: &str, kind: LineCorruption, seed: u64) -> Vec<u8> {
    let bytes = line.as_bytes();
    match kind {
        LineCorruption::Truncate => {
            let cut = if bytes.len() <= 1 {
                0
            } else {
                1 + (seed as usize) % (bytes.len() - 1)
            };
            bytes[..cut].to_vec()
        }
        LineCorruption::Garbage => {
            let mut out = Vec::with_capacity(24);
            let mut x = seed | 1;
            for _ in 0..24 {
                // Tiny LCG over printable ASCII that can never form
                // valid JSON (starts with ')').
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                out.push(b')' + (x >> 33) as u8 % 64);
            }
            out
        }
        LineCorruption::Oversize => {
            let mut out = bytes.to_vec();
            out.extend(std::iter::repeat_n(b' ', 1 << 20));
            out.extend_from_slice(b"\"pad\"");
            out
        }
        LineCorruption::NonUtf8 => {
            let mut out = bytes.to_vec();
            let at = (seed as usize) % (out.len() + 1);
            out.splice(at..at, [0xff, 0xfe, 0x80]);
            out
        }
    }
}

/// A writer that stalls on every flush — a client that reads its
/// responses slowly. Wraps any `Write`; the service must keep making
/// progress (and honouring deadlines) regardless.
#[derive(Debug)]
pub struct SlowWriter<W> {
    inner: W,
    stall: std::time::Duration,
    /// Flushes observed (stalls applied).
    pub flushes: usize,
}

impl<W: Write> SlowWriter<W> {
    /// Wraps `inner`, stalling `stall_ms` milliseconds per flush.
    pub fn new(inner: W, stall_ms: u64) -> Self {
        Self {
            inner,
            stall: std::time::Duration::from_millis(stall_ms),
            flushes: 0,
        }
    }

    /// Unwraps the inner writer.
    pub fn into_inner(self) -> W {
        self.inner
    }
}

impl<W: Write> Write for SlowWriter<W> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.inner.write(buf)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.flushes += 1;
        if !self.stall.is_zero() {
            std::thread::sleep(self.stall);
        }
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_empty_and_round_trips() {
        let plan = ServiceFaultPlan::default();
        assert!(plan.is_empty());
        assert_eq!(plan.kill_point(), None);
        let json = serde_json::to_string(&plan).expect("serialises");
        let back: ServiceFaultPlan = serde_json::from_str(&json).expect("deserialises");
        assert_eq!(back, plan);
        // Fields are individually optional.
        let sparse: ServiceFaultPlan =
            serde_json::from_str(r#"{"kill_request":2}"#).expect("deserialises");
        assert_eq!(sparse.kill_request, Some(2));
        assert_eq!(sparse.kill_at_period, None);
    }

    #[test]
    fn kill_point_needs_both_halves() {
        let plan = ServiceFaultPlan {
            kill_request: Some(1),
            kill_at_period: Some(12),
            ..ServiceFaultPlan::default()
        };
        assert_eq!(plan.kill_point(), Some((1, 12)));
        assert!(!plan.is_empty());
    }

    #[test]
    fn corruptions_are_deterministic_and_break_the_line() {
        let line = r#"{"id":1,"scenarios":[{"planner":"inter"}]}"#;
        for kind in LineCorruption::ALL {
            let a = corrupt_line(line, kind, 9);
            let b = corrupt_line(line, kind, 9);
            assert_eq!(a, b, "{kind:?} must be deterministic");
            assert_ne!(a, line.as_bytes(), "{kind:?} must change the line");
        }
        assert!(corrupt_line(line, LineCorruption::Oversize, 0).len() > 1 << 20);
        assert!(std::str::from_utf8(&corrupt_line(line, LineCorruption::NonUtf8, 3)).is_err());
        let trunc = corrupt_line(line, LineCorruption::Truncate, 7);
        assert!(trunc.len() < line.len());
    }

    #[test]
    fn slow_writer_counts_flushes() {
        let mut w = SlowWriter::new(Vec::new(), 0);
        w.write_all(b"hi").expect("write");
        w.flush().expect("flush");
        assert_eq!(w.flushes, 1);
        assert_eq!(w.into_inner(), b"hi");
    }
}
