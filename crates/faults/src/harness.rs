//! Materialising a [`FaultPlan`] against a concrete time grid.
//!
//! The harness precomputes one lookup row per flat period so the
//! engine's hot loop pays a single bounds-checked index per query —
//! and nothing at all when the plan is empty.

use helio_common::rng::derive;
use rand::Rng;

use crate::plan::{DbnFaultMode, FaultPlan, ForecastMode, PeriodWindow};
use crate::report::{FaultEvent, FaultKind};

/// A fault plan compiled against a grid of `total_periods` periods
/// (`periods_per_day` per day). Queries are O(1); an empty plan
/// produces an empty harness whose queries all return neutral values.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultHarness {
    total_periods: usize,
    /// Per-period harvest multiplier; empty when no solar faults.
    solar_factor: Vec<f64>,
    /// Per-period `P_leak` multiplier; empty when no aging.
    leak_mult: Vec<f64>,
    /// Per-period cumulative capacitance factor; empty when no aging.
    cap_factor: Vec<f64>,
    /// Per-period stuck channel; empty when no PMU faults.
    stuck: Vec<Option<usize>>,
    /// Per-period forecast corruption; empty when no forecast faults.
    forecast: Vec<Option<ForecastMode>>,
    /// Per-period DBN fault; empty when no DBN faults.
    dbn: Vec<Option<DbnFaultMode>>,
    /// The materialised fault windows, in period order.
    events: Vec<FaultEvent>,
}

impl FaultHarness {
    /// Compiles `plan` against a grid. Windows extending past the
    /// horizon are truncated; stochastic blackouts are drawn from the
    /// plan's seed, so the same plan always yields the same harness.
    pub fn new(plan: &FaultPlan, total_periods: usize, periods_per_day: usize) -> Self {
        let mut h = Self {
            total_periods,
            solar_factor: Vec::new(),
            leak_mult: Vec::new(),
            cap_factor: Vec::new(),
            stuck: Vec::new(),
            forecast: Vec::new(),
            dbn: Vec::new(),
            events: Vec::new(),
        };
        if plan.is_empty() || total_periods == 0 {
            return h;
        }

        // Solar faults: explicit windows, then seeded random outages.
        // Overlaps take the most severe (smallest) factor.
        if !plan.solar.is_empty() || plan.random_blackouts.is_some() {
            h.solar_factor = vec![1.0; total_periods];
            for f in &plan.solar {
                let factor = if f.factor.is_finite() {
                    f.factor.clamp(0.0, 1.0)
                } else {
                    0.0
                };
                apply_window(&mut h.solar_factor, &f.window, |cur| cur.min(factor));
            }
            if let Some(rb) = plan.random_blackouts {
                let mut rng = derive(plan.seed, "faults/random-blackouts");
                let p = rb.per_period_probability.clamp(0.0, 1.0);
                let lo = rb.min_periods.max(1);
                let hi = rb.max_periods.max(lo);
                let mut flat = 0usize;
                while flat < total_periods {
                    if rng.gen_bool(p) {
                        let len = rng.gen_range(lo..=hi).min(total_periods - flat);
                        for s in &mut h.solar_factor[flat..flat + len] {
                            *s = 0.0;
                        }
                        flat += len;
                    } else {
                        flat += 1;
                    }
                }
            }
            // Log contiguous faulted stretches once each.
            let mut flat = 0usize;
            while flat < total_periods {
                let f = h.solar_factor[flat];
                if f < 1.0 {
                    let start = flat;
                    while flat < total_periods && (h.solar_factor[flat] - f).abs() < 1e-12 {
                        flat += 1;
                    }
                    let kind = if f <= 0.0 {
                        FaultKind::SolarOutage
                    } else {
                        FaultKind::CloudBurst
                    };
                    h.events.push(FaultEvent {
                        period: start,
                        periods: flat - start,
                        kind,
                        detail: format!("harvest x{f}"),
                    });
                } else {
                    flat += 1;
                }
            }
        }

        // Aging: cumulative per-day multipliers, pristine on day 0.
        if let Some(aging) = plan.aging {
            let fade = if aging.capacitance_fade_per_day.is_finite() {
                aging.capacitance_fade_per_day.clamp(0.01, 1.0)
            } else {
                1.0
            };
            let growth = if aging.leakage_growth_per_day.is_finite() {
                aging.leakage_growth_per_day.max(1.0)
            } else {
                1.0
            };
            let ppd = periods_per_day.max(1);
            h.cap_factor = (0..total_periods)
                .map(|flat| fade.powi((flat / ppd) as i32))
                .collect();
            h.leak_mult = (0..total_periods)
                .map(|flat| growth.powi((flat / ppd) as i32))
                .collect();
            h.events.push(FaultEvent {
                period: 0,
                periods: total_periods,
                kind: FaultKind::CapacitorAging,
                detail: format!("fade x{fade}/day, leakage x{growth}/day"),
            });
        }

        // PMU stuck-channel windows (later windows win on overlap).
        if !plan.pmu_stuck.is_empty() {
            h.stuck = vec![None; total_periods];
            for f in &plan.pmu_stuck {
                apply_window(&mut h.stuck, &f.window, |_| Some(f.channel));
                h.events.push(window_event(
                    &f.window,
                    total_periods,
                    FaultKind::PmuStuck,
                    format!("channel {}", f.channel),
                ));
            }
        }

        // Forecast corruption.
        if !plan.forecast.is_empty() {
            h.forecast = vec![None; total_periods];
            for f in &plan.forecast {
                apply_window(&mut h.forecast, &f.window, |_| Some(f.mode));
                h.events.push(window_event(
                    &f.window,
                    total_periods,
                    FaultKind::ForecastCorruption,
                    format!("{:?}", f.mode),
                ));
            }
        }

        // DBN inference faults.
        if !plan.dbn.is_empty() {
            h.dbn = vec![None; total_periods];
            for f in &plan.dbn {
                apply_window(&mut h.dbn, &f.window, |_| Some(f.mode));
                let kind = match f.mode {
                    DbnFaultMode::Unavailable => FaultKind::DbnUnavailable,
                    DbnFaultMode::Nan => FaultKind::DbnNan,
                };
                h.events
                    .push(window_event(&f.window, total_periods, kind, String::new()));
            }
        }

        h.events.sort_by_key(|e| (e.period, e.periods));
        h
    }

    /// A harness that injects nothing (the engine's default).
    pub fn empty() -> Self {
        Self::new(&FaultPlan::default(), 0, 1)
    }

    /// Whether the harness injects nothing at all.
    pub fn is_empty(&self) -> bool {
        self.solar_factor.is_empty()
            && self.leak_mult.is_empty()
            && self.cap_factor.is_empty()
            && self.stuck.is_empty()
            && self.forecast.is_empty()
            && self.dbn.is_empty()
    }

    /// Harvest multiplier for every slot of `flat` (1.0 = nominal).
    pub fn harvest_factor(&self, flat: usize) -> f64 {
        self.solar_factor.get(flat).copied().unwrap_or(1.0)
    }

    /// `P_leak` multiplier during `flat` (1.0 = nominal).
    pub fn leak_multiplier(&self, flat: usize) -> f64 {
        self.leak_mult.get(flat).copied().unwrap_or(1.0)
    }

    /// Cumulative capacitance factor at `flat` (1.0 = pristine).
    pub fn capacitance_factor(&self, flat: usize) -> f64 {
        self.cap_factor.get(flat).copied().unwrap_or(1.0)
    }

    /// The channel the PMU mux is stuck on during `flat`, if any.
    pub fn stuck_channel(&self, flat: usize) -> Option<usize> {
        self.stuck.get(flat).copied().flatten()
    }

    /// Active forecast corruption during `flat`, if any.
    pub fn forecast_mode(&self, flat: usize) -> Option<ForecastMode> {
        self.forecast.get(flat).copied().flatten()
    }

    /// Active DBN fault during `flat`, if any.
    pub fn dbn_mode(&self, flat: usize) -> Option<DbnFaultMode> {
        self.dbn.get(flat).copied().flatten()
    }

    /// The materialised fault windows, in period order. These seed the
    /// report's fault log.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }
}

/// Applies `f` to every in-range cell of `window`.
fn apply_window<T: Copy>(cells: &mut [T], window: &PeriodWindow, f: impl Fn(T) -> T) {
    let end = window.end().min(cells.len());
    for cell in cells.iter_mut().take(end).skip(window.start) {
        *cell = f(*cell);
    }
}

fn window_event(
    window: &PeriodWindow,
    total_periods: usize,
    kind: FaultKind,
    detail: String,
) -> FaultEvent {
    let start = window.start.min(total_periods);
    FaultEvent {
        period: start,
        periods: window.end().min(total_periods).saturating_sub(start),
        kind,
        detail,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{AgingFault, DbnFault, PmuStuckFault, RandomBlackouts, SolarFault};

    #[test]
    fn empty_plan_yields_neutral_harness() {
        let h = FaultHarness::new(&FaultPlan::default(), 96, 24);
        assert!(h.is_empty());
        assert_eq!(h.harvest_factor(10), 1.0);
        assert_eq!(h.leak_multiplier(10), 1.0);
        assert_eq!(h.capacitance_factor(10), 1.0);
        assert_eq!(h.stuck_channel(10), None);
        assert_eq!(h.forecast_mode(10), None);
        assert_eq!(h.dbn_mode(10), None);
        assert!(h.events().is_empty());
        assert!(FaultHarness::empty().is_empty());
    }

    #[test]
    fn blackout_window_zeroes_harvest_and_logs_once() {
        let plan = FaultPlan {
            solar: vec![SolarFault {
                window: PeriodWindow::new(10, 5),
                factor: 0.0,
            }],
            ..FaultPlan::default()
        };
        let h = FaultHarness::new(&plan, 48, 24);
        assert!(!h.is_empty());
        assert_eq!(h.harvest_factor(9), 1.0);
        assert_eq!(h.harvest_factor(10), 0.0);
        assert_eq!(h.harvest_factor(14), 0.0);
        assert_eq!(h.harvest_factor(15), 1.0);
        let outages: Vec<_> = h
            .events()
            .iter()
            .filter(|e| e.kind == FaultKind::SolarOutage)
            .collect();
        assert_eq!(outages.len(), 1);
        assert_eq!((outages[0].period, outages[0].periods), (10, 5));
    }

    #[test]
    fn overlapping_solar_faults_take_most_severe() {
        let plan = FaultPlan {
            solar: vec![
                SolarFault {
                    window: PeriodWindow::new(0, 10),
                    factor: 0.5,
                },
                SolarFault {
                    window: PeriodWindow::new(5, 2),
                    factor: 0.0,
                },
            ],
            ..FaultPlan::default()
        };
        let h = FaultHarness::new(&plan, 12, 12);
        assert_eq!(h.harvest_factor(4), 0.5);
        assert_eq!(h.harvest_factor(5), 0.0);
        assert_eq!(h.harvest_factor(7), 0.5);
    }

    #[test]
    fn random_blackouts_are_seed_deterministic() {
        let plan = |seed| FaultPlan {
            seed,
            random_blackouts: Some(RandomBlackouts {
                per_period_probability: 0.1,
                min_periods: 1,
                max_periods: 3,
            }),
            ..FaultPlan::default()
        };
        let a = FaultHarness::new(&plan(3), 200, 24);
        let b = FaultHarness::new(&plan(3), 200, 24);
        let c = FaultHarness::new(&plan(4), 200, 24);
        assert_eq!(a, b);
        assert_ne!(a, c, "different seeds should draw different outages");
        assert!(
            a.events().iter().any(|e| e.kind == FaultKind::SolarOutage),
            "p=0.1 over 200 periods should materialise at least one outage"
        );
    }

    #[test]
    fn aging_factors_progress_per_day() {
        let plan = FaultPlan {
            aging: Some(AgingFault {
                capacitance_fade_per_day: 0.9,
                leakage_growth_per_day: 1.1,
            }),
            ..FaultPlan::default()
        };
        let h = FaultHarness::new(&plan, 72, 24);
        assert_eq!(h.capacitance_factor(0), 1.0);
        assert_eq!(h.leak_multiplier(23), 1.0);
        assert!((h.capacitance_factor(24) - 0.9).abs() < 1e-12);
        assert!((h.leak_multiplier(48) - 1.21).abs() < 1e-12);
    }

    #[test]
    fn windows_truncate_at_horizon() {
        let plan = FaultPlan {
            pmu_stuck: vec![PmuStuckFault {
                window: PeriodWindow::new(20, 100),
                channel: 1,
            }],
            dbn: vec![DbnFault {
                window: PeriodWindow::new(500, 5),
                mode: DbnFaultMode::Nan,
            }],
            ..FaultPlan::default()
        };
        let h = FaultHarness::new(&plan, 24, 24);
        assert_eq!(h.stuck_channel(23), Some(1));
        assert_eq!(h.dbn_mode(23), None);
        let pmu = h
            .events()
            .iter()
            .find(|e| e.kind == FaultKind::PmuStuck)
            .expect("pmu event");
        assert_eq!(pmu.period + pmu.periods, 24);
    }
}
