//! Fault observability: the event log and degraded-mode counters the
//! simulation report carries.

use serde::{Deserialize, Serialize};

/// What kind of fault (or degradation reaction) an event records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Harvest forced to zero over a window.
    SolarOutage,
    /// Harvest attenuated (but not zeroed) over a window.
    CloudBurst,
    /// Capacitance fade / leakage growth active.
    CapacitorAging,
    /// The active-capacitor mux was stuck on one channel.
    PmuStuck,
    /// The per-period forecast was corrupted.
    ForecastCorruption,
    /// DBN inference was unavailable.
    DbnUnavailable,
    /// DBN inference returned non-finite outputs.
    DbnNan,
    /// A resilient planner engaged its fallback baseline.
    PlannerFallback,
    /// The engine dropped a task assignment that violated the
    /// scheduler contract instead of aborting.
    ContractViolation,
    /// A resilient planner re-promoted its demoted inner planner after
    /// a clean probation streak.
    PlannerRepromoted,
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            FaultKind::SolarOutage => "solar-outage",
            FaultKind::CloudBurst => "cloud-burst",
            FaultKind::CapacitorAging => "capacitor-aging",
            FaultKind::PmuStuck => "pmu-stuck",
            FaultKind::ForecastCorruption => "forecast-corruption",
            FaultKind::DbnUnavailable => "dbn-unavailable",
            FaultKind::DbnNan => "dbn-nan",
            FaultKind::PlannerFallback => "planner-fallback",
            FaultKind::ContractViolation => "contract-violation",
            FaultKind::PlannerRepromoted => "planner-repromoted",
        };
        write!(f, "{s}")
    }
}

/// One entry of a simulation's fault log: a fault window that was
/// materialised, or a degradation reaction that fired.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Flat period index the event starts at.
    pub period: usize,
    /// Number of consecutive periods covered (1 for point events).
    pub periods: usize,
    /// Event kind.
    pub kind: FaultKind,
    /// Human-readable detail (factor, channel, reason…).
    pub detail: String,
}

impl FaultEvent {
    /// Convenience constructor for a single-period event.
    pub fn at(period: usize, kind: FaultKind, detail: impl Into<String>) -> Self {
        Self {
            period,
            periods: 1,
            kind,
            detail: detail.into(),
        }
    }
}

/// Tallies of the graceful-degradation reactions a run took. All-zero
/// for a clean run (and omitted from serialised reports in that case).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DegradedCounters {
    /// Non-finite or negative forecasts replaced by zero.
    pub sanitized_forecasts: usize,
    /// Periods where a stuck PMU channel overrode the planner's
    /// capacitor choice.
    pub pmu_overrides: usize,
    /// Task assignments dropped after a scheduler-contract violation
    /// (instead of aborting the run).
    pub contract_skips: usize,
    /// Periods a resilient planner served from its fallback baseline.
    pub planner_fallbacks: usize,
    /// Slots whose harvest was modified by a solar fault.
    pub faulted_slots: usize,
    /// Fault events elided from the report's log by the first/last-K
    /// cap (see [`cap_event_log`]) so chatty multi-month runs stay
    /// bounded in memory.
    pub dropped_events: usize,
}

impl DegradedCounters {
    /// Whether nothing degraded (the clean-run state).
    pub fn is_zero(&self) -> bool {
        *self == Self::default()
    }

    /// Sum of all counters — a coarse "how off-nominal was this run"
    /// scalar for sweep tables.
    pub fn total(&self) -> usize {
        self.sanitized_forecasts
            + self.pmu_overrides
            + self.contract_skips
            + self.planner_fallbacks
            + self.faulted_slots
            + self.dropped_events
    }
}

// Hand-written so `dropped_events` only appears when events were
// actually dropped: reports written before the cap existed stay
// byte-identical, and tolerant deserialisation accepts both shapes.
impl Serialize for DegradedCounters {
    fn serialize_json(&self, out: &mut String) {
        out.push_str("{\"sanitized_forecasts\":");
        self.sanitized_forecasts.serialize_json(out);
        out.push_str(",\"pmu_overrides\":");
        self.pmu_overrides.serialize_json(out);
        out.push_str(",\"contract_skips\":");
        self.contract_skips.serialize_json(out);
        out.push_str(",\"planner_fallbacks\":");
        self.planner_fallbacks.serialize_json(out);
        out.push_str(",\"faulted_slots\":");
        self.faulted_slots.serialize_json(out);
        if self.dropped_events != 0 {
            out.push_str(",\"dropped_events\":");
            self.dropped_events.serialize_json(out);
        }
        out.push('}');
    }
}

impl Deserialize for DegradedCounters {
    fn deserialize_json(v: &serde::Value) -> Result<Self, serde::DeError> {
        Ok(Self {
            sanitized_forecasts: usize::deserialize_json(v.field("sanitized_forecasts")?)?,
            pmu_overrides: usize::deserialize_json(v.field("pmu_overrides")?)?,
            contract_skips: usize::deserialize_json(v.field("contract_skips")?)?,
            planner_fallbacks: usize::deserialize_json(v.field("planner_fallbacks")?)?,
            faulted_slots: usize::deserialize_json(v.field("faulted_slots")?)?,
            dropped_events: match v.field("dropped_events") {
                Ok(f) => usize::deserialize_json(f)?,
                Err(_) => 0,
            },
        })
    }
}

/// How many events the first/last windows of a capped log keep each.
/// Generous enough that every committed fixture is far below the cap;
/// only pathological multi-month chatty plans ever truncate.
pub const EVENT_LOG_KEEP: usize = 32;

/// Caps an event log in place to the first `keep` and last `keep`
/// entries, returning how many middle entries were dropped (0 when the
/// log already fits in `2 * keep`).
pub fn cap_event_log(events: &mut Vec<FaultEvent>, keep: usize) -> usize {
    let len = events.len();
    if len <= keep.saturating_mul(2) {
        return 0;
    }
    let dropped = len - 2 * keep;
    events.drain(keep..len - keep);
    dropped
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_zero_and_total() {
        let mut c = DegradedCounters::default();
        assert!(c.is_zero());
        assert_eq!(c.total(), 0);
        c.pmu_overrides = 2;
        c.faulted_slots = 3;
        assert!(!c.is_zero());
        assert_eq!(c.total(), 5);
    }

    #[test]
    fn event_round_trip() {
        let e = FaultEvent {
            period: 12,
            periods: 4,
            kind: FaultKind::SolarOutage,
            detail: "factor 0".into(),
        };
        let json = serde_json::to_string(&e).expect("serialises");
        let back: FaultEvent = serde_json::from_str(&json).expect("deserialises");
        assert_eq!(back, e);
    }

    #[test]
    fn kind_display_is_kebab() {
        assert_eq!(FaultKind::DbnUnavailable.to_string(), "dbn-unavailable");
        assert_eq!(FaultKind::PlannerFallback.to_string(), "planner-fallback");
        assert_eq!(
            FaultKind::PlannerRepromoted.to_string(),
            "planner-repromoted"
        );
    }

    #[test]
    fn dropped_events_omitted_when_zero() {
        let c = DegradedCounters {
            pmu_overrides: 1,
            ..DegradedCounters::default()
        };
        let json = serde_json::to_string(&c).expect("serialises");
        assert!(!json.contains("dropped_events"));
        let back: DegradedCounters = serde_json::from_str(&json).expect("deserialises");
        assert_eq!(back, c);

        let c = DegradedCounters {
            dropped_events: 7,
            ..DegradedCounters::default()
        };
        let json = serde_json::to_string(&c).expect("serialises");
        assert!(json.contains("\"dropped_events\":7"));
        let back: DegradedCounters = serde_json::from_str(&json).expect("deserialises");
        assert_eq!(back, c);
    }

    #[test]
    fn event_log_cap_keeps_first_and_last() {
        let mut events: Vec<FaultEvent> = (0..10)
            .map(|i| FaultEvent::at(i, FaultKind::PlannerFallback, format!("e{i}")))
            .collect();
        assert_eq!(cap_event_log(&mut events, 5), 0);
        assert_eq!(events.len(), 10);
        assert_eq!(cap_event_log(&mut events, 3), 4);
        assert_eq!(events.len(), 6);
        let periods: Vec<usize> = events.iter().map(|e| e.period).collect();
        assert_eq!(periods, vec![0, 1, 2, 7, 8, 9]);
        assert_eq!(cap_event_log(&mut events, 0), 6);
        assert!(events.is_empty());
    }
}
