//! Fault observability: the event log and degraded-mode counters the
//! simulation report carries.

use serde::{Deserialize, Serialize};

/// What kind of fault (or degradation reaction) an event records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Harvest forced to zero over a window.
    SolarOutage,
    /// Harvest attenuated (but not zeroed) over a window.
    CloudBurst,
    /// Capacitance fade / leakage growth active.
    CapacitorAging,
    /// The active-capacitor mux was stuck on one channel.
    PmuStuck,
    /// The per-period forecast was corrupted.
    ForecastCorruption,
    /// DBN inference was unavailable.
    DbnUnavailable,
    /// DBN inference returned non-finite outputs.
    DbnNan,
    /// A resilient planner engaged its fallback baseline.
    PlannerFallback,
    /// The engine dropped a task assignment that violated the
    /// scheduler contract instead of aborting.
    ContractViolation,
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            FaultKind::SolarOutage => "solar-outage",
            FaultKind::CloudBurst => "cloud-burst",
            FaultKind::CapacitorAging => "capacitor-aging",
            FaultKind::PmuStuck => "pmu-stuck",
            FaultKind::ForecastCorruption => "forecast-corruption",
            FaultKind::DbnUnavailable => "dbn-unavailable",
            FaultKind::DbnNan => "dbn-nan",
            FaultKind::PlannerFallback => "planner-fallback",
            FaultKind::ContractViolation => "contract-violation",
        };
        write!(f, "{s}")
    }
}

/// One entry of a simulation's fault log: a fault window that was
/// materialised, or a degradation reaction that fired.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Flat period index the event starts at.
    pub period: usize,
    /// Number of consecutive periods covered (1 for point events).
    pub periods: usize,
    /// Event kind.
    pub kind: FaultKind,
    /// Human-readable detail (factor, channel, reason…).
    pub detail: String,
}

impl FaultEvent {
    /// Convenience constructor for a single-period event.
    pub fn at(period: usize, kind: FaultKind, detail: impl Into<String>) -> Self {
        Self {
            period,
            periods: 1,
            kind,
            detail: detail.into(),
        }
    }
}

/// Tallies of the graceful-degradation reactions a run took. All-zero
/// for a clean run (and omitted from serialised reports in that case).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct DegradedCounters {
    /// Non-finite or negative forecasts replaced by zero.
    pub sanitized_forecasts: usize,
    /// Periods where a stuck PMU channel overrode the planner's
    /// capacitor choice.
    pub pmu_overrides: usize,
    /// Task assignments dropped after a scheduler-contract violation
    /// (instead of aborting the run).
    pub contract_skips: usize,
    /// Periods a resilient planner served from its fallback baseline.
    pub planner_fallbacks: usize,
    /// Slots whose harvest was modified by a solar fault.
    pub faulted_slots: usize,
}

impl DegradedCounters {
    /// Whether nothing degraded (the clean-run state).
    pub fn is_zero(&self) -> bool {
        *self == Self::default()
    }

    /// Sum of all counters — a coarse "how off-nominal was this run"
    /// scalar for sweep tables.
    pub fn total(&self) -> usize {
        self.sanitized_forecasts
            + self.pmu_overrides
            + self.contract_skips
            + self.planner_fallbacks
            + self.faulted_slots
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_zero_and_total() {
        let mut c = DegradedCounters::default();
        assert!(c.is_zero());
        assert_eq!(c.total(), 0);
        c.pmu_overrides = 2;
        c.faulted_slots = 3;
        assert!(!c.is_zero());
        assert_eq!(c.total(), 5);
    }

    #[test]
    fn event_round_trip() {
        let e = FaultEvent {
            period: 12,
            periods: 4,
            kind: FaultKind::SolarOutage,
            detail: "factor 0".into(),
        };
        let json = serde_json::to_string(&e).expect("serialises");
        let back: FaultEvent = serde_json::from_str(&json).expect("deserialises");
        assert_eq!(back, e);
    }

    #[test]
    fn kind_display_is_kebab() {
        assert_eq!(FaultKind::DbnUnavailable.to_string(), "dbn-unavailable");
        assert_eq!(FaultKind::PlannerFallback.to_string(), "planner-fallback");
    }
}
