//! # helio-faults
//!
//! Deterministic fault injection for the heliosched simulation.
//!
//! The paper's premise is survival under unreliable energy: solar
//! harvesting blacks out, capacitors age and leak, PMU switches stick,
//! forecasts go wrong and the DBN inference engine can be unavailable.
//! This crate describes those off-nominal scenarios as data — a
//! seedable, serde-round-trippable [`FaultPlan`] — and compiles a plan
//! into a [`FaultHarness`]: a per-period lookup table the simulation
//! engine consults at slot and period boundaries.
//!
//! Design constraints:
//!
//! * **Deterministic** — the same plan (including its `seed`) always
//!   materialises the same faults, so fault runs are reproducible and
//!   diffable like any other experiment.
//! * **Zero-cost when empty** — an empty plan compiles to an empty
//!   harness; the engine checks [`FaultHarness::is_empty`] once and
//!   takes its ordinary fault-free path, keeping the golden reports
//!   byte-identical.
//! * **Observable** — every materialised fault window becomes a
//!   [`FaultEvent`], and graceful-degradation reactions are tallied in
//!   [`DegradedCounters`]; both land in the simulation report.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::panic))]

pub mod harness;
pub mod plan;
pub mod report;
pub mod service;

pub use harness::FaultHarness;
pub use plan::{
    AgingFault, DbnFault, DbnFaultMode, FaultPlan, ForecastFault, ForecastMode, PeriodWindow,
    PmuStuckFault, RandomBlackouts, SolarFault,
};
pub use report::{cap_event_log, DegradedCounters, FaultEvent, FaultKind, EVENT_LOG_KEEP};
pub use service::{corrupt_line, LineCorruption, ServiceFaultPlan, SlowWriter};
