//! The serde-configurable description of a fault scenario.
//!
//! A [`FaultPlan`] is pure data: windows over the flat period index
//! (`day * periods_per_day + period`) plus scenario-wide knobs. It is
//! materialised against a concrete grid by
//! [`FaultHarness::new`](crate::FaultHarness::new).

use serde::{Deserialize, Serialize};

/// A half-open window of flat period indices `[start, start + periods)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PeriodWindow {
    /// First flat period index affected.
    pub start: usize,
    /// Number of consecutive periods affected.
    pub periods: usize,
}

impl PeriodWindow {
    /// Creates a window covering `periods` periods from `start`.
    pub const fn new(start: usize, periods: usize) -> Self {
        Self { start, periods }
    }

    /// Whether `flat` falls inside the window.
    pub const fn contains(&self, flat: usize) -> bool {
        flat >= self.start && flat < self.start + self.periods
    }

    /// One past the last affected period.
    pub const fn end(&self) -> usize {
        self.start + self.periods
    }
}

/// A solar-supply fault: the harvested energy of every slot in the
/// window is multiplied by `factor`.
///
/// `factor == 0.0` is a total blackout (panel disconnected, snow
/// cover, eclipse); `0.0 < factor < 1.0` is a cloud burst or partial
/// shading event on top of whatever the trace already contains.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SolarFault {
    /// Affected periods.
    pub window: PeriodWindow,
    /// Harvest multiplier in `[0, 1]` (values outside are clamped).
    pub factor: f64,
}

/// Seeded stochastic blackouts layered on top of the explicit
/// [`SolarFault`] windows: each period outside an ongoing outage
/// starts one with `per_period_probability`, lasting a uniformly drawn
/// `min_periods..=max_periods`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RandomBlackouts {
    /// Probability that a new outage starts at any given period.
    pub per_period_probability: f64,
    /// Shortest outage, in periods.
    pub min_periods: usize,
    /// Longest outage, in periods.
    pub max_periods: usize,
}

/// Capacitor aging: per simulated day, every capacitance fades by
/// `capacitance_fade_per_day` (a multiplier, e.g. `0.995`) and the
/// leakage power `P_leak(V)` grows by `leakage_growth_per_day` (a
/// multiplier, e.g. `1.05`). Day 0 is pristine.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AgingFault {
    /// Multiplicative capacitance retention per day, in `(0, 1]`.
    pub capacitance_fade_per_day: f64,
    /// Multiplicative leakage growth per day, `>= 1`.
    pub leakage_growth_per_day: f64,
}

/// A PMU switch failure: the active-capacitor mux is stuck on
/// `channel` for the window, regardless of what the planner (or the
/// Eq. 22 switch rule) asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PmuStuckFault {
    /// Affected periods.
    pub window: PeriodWindow,
    /// The capacitor index the mux is stuck on (clamped into the bank
    /// by the engine).
    pub channel: usize,
}

/// How a corrupted forecast presents to the fine-grained schedulers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ForecastMode {
    /// The predicted per-period energy is multiplied by the factor
    /// (over- or under-prediction).
    Scale(f64),
    /// The predictor returns NaN (corrupted history buffer).
    Nan,
    /// The predictor returns zero (predictor offline).
    Zero,
}

/// A forecast-corruption fault over a window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ForecastFault {
    /// Affected periods.
    pub window: PeriodWindow,
    /// What the corruption looks like.
    pub mode: ForecastMode,
}

/// How the DBN inference path fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DbnFaultMode {
    /// The inference engine does not answer at all (accelerator down,
    /// weights unreadable).
    Unavailable,
    /// Inference completes but returns NaN outputs (bit-flipped
    /// weights, numerical blow-up).
    Nan,
}

/// A DBN inference fault over a window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DbnFault {
    /// Affected periods.
    pub window: PeriodWindow,
    /// Failure mode.
    pub mode: DbnFaultMode,
}

/// A complete fault scenario. The default plan is empty: no faults,
/// and the simulation behaves exactly as without a harness.
#[derive(Debug, Clone, PartialEq, Serialize, Default)]
pub struct FaultPlan {
    /// Seed for the stochastic components ([`RandomBlackouts`]).
    pub seed: u64,
    /// Explicit solar blackout / cloud-burst windows.
    pub solar: Vec<SolarFault>,
    /// Stochastic blackouts layered on top of `solar`.
    pub random_blackouts: Option<RandomBlackouts>,
    /// Capacitor aging over the horizon.
    pub aging: Option<AgingFault>,
    /// PMU stuck-channel windows.
    pub pmu_stuck: Vec<PmuStuckFault>,
    /// Forecast-corruption windows.
    pub forecast: Vec<ForecastFault>,
    /// DBN inference faults.
    pub dbn: Vec<DbnFault>,
}

impl FaultPlan {
    /// Whether the plan injects nothing at all. An empty plan's harness
    /// is behaviour-neutral and (near) zero-cost.
    pub fn is_empty(&self) -> bool {
        self.solar.is_empty()
            && self.random_blackouts.is_none()
            && self.aging.is_none()
            && self.pmu_stuck.is_empty()
            && self.forecast.is_empty()
            && self.dbn.is_empty()
    }
}

// Hand-written so that config files may omit fields: every missing
// field falls back to its default (the vendored derive requires every
// field to be present).
impl Deserialize for FaultPlan {
    fn deserialize_json(v: &serde::Value) -> Result<Self, serde::DeError> {
        fn opt<T: Deserialize>(v: &serde::Value, name: &str) -> Result<Option<T>, serde::DeError> {
            match v.field(name) {
                Ok(serde::Value::Null) | Err(_) => Ok(None),
                Ok(inner) => Ok(Some(T::deserialize_json(inner)?)),
            }
        }
        fn list<T: Deserialize>(v: &serde::Value, name: &str) -> Result<Vec<T>, serde::DeError> {
            match v.field(name) {
                Ok(inner) => Vec::deserialize_json(inner),
                Err(_) => Ok(Vec::new()),
            }
        }
        Ok(Self {
            seed: opt(v, "seed")?.unwrap_or(0),
            solar: list(v, "solar")?,
            random_blackouts: opt(v, "random_blackouts")?,
            aging: opt(v, "aging")?,
            pmu_stuck: list(v, "pmu_stuck")?,
            forecast: list(v, "forecast")?,
            dbn: list(v, "dbn")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_empty() {
        assert!(FaultPlan::default().is_empty());
        let with_aging = FaultPlan {
            aging: Some(AgingFault {
                capacitance_fade_per_day: 0.99,
                leakage_growth_per_day: 1.02,
            }),
            ..FaultPlan::default()
        };
        assert!(!with_aging.is_empty());
    }

    #[test]
    fn window_membership() {
        let w = PeriodWindow::new(4, 3);
        assert!(!w.contains(3));
        assert!(w.contains(4) && w.contains(6));
        assert!(!w.contains(7));
        assert_eq!(w.end(), 7);
    }

    #[test]
    fn serde_round_trip() {
        let plan = FaultPlan {
            seed: 99,
            solar: vec![SolarFault {
                window: PeriodWindow::new(10, 5),
                factor: 0.0,
            }],
            random_blackouts: Some(RandomBlackouts {
                per_period_probability: 0.02,
                min_periods: 1,
                max_periods: 4,
            }),
            aging: Some(AgingFault {
                capacitance_fade_per_day: 0.995,
                leakage_growth_per_day: 1.05,
            }),
            pmu_stuck: vec![PmuStuckFault {
                window: PeriodWindow::new(20, 2),
                channel: 1,
            }],
            forecast: vec![ForecastFault {
                window: PeriodWindow::new(3, 1),
                mode: ForecastMode::Scale(2.5),
            }],
            dbn: vec![DbnFault {
                window: PeriodWindow::new(30, 4),
                mode: DbnFaultMode::Unavailable,
            }],
        };
        let json = serde_json::to_string(&plan).expect("serialises");
        let back: FaultPlan = serde_json::from_str(&json).expect("deserialises");
        assert_eq!(back, plan);
    }

    #[test]
    fn deserialize_tolerates_missing_fields() {
        let plan: FaultPlan = serde_json::from_str("{}").expect("empty object parses");
        assert!(plan.is_empty());
        assert_eq!(plan.seed, 0);
        let plan: FaultPlan = serde_json::from_str(
            r#"{"seed":7,"dbn":[{"window":{"start":1,"periods":2},"mode":"Nan"}]}"#,
        )
        .expect("partial object parses");
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.dbn.len(), 1);
        assert_eq!(plan.dbn[0].mode, DbnFaultMode::Nan);
    }
}
