//! The nonvolatile-processor fleet.
//!
//! NVPs retain architectural state across power failures using
//! ferroelectric flip-flops (refs \[13, 14\] of the paper: 3 µs wake-up,
//! parallel compare-and-compress backup). At slot granularity this
//! means: a task's *completed slots* survive a brown-out, the slot in
//! which power failed makes no progress, and each failure/resume pair
//! costs a small backup + restore energy.

use helio_common::units::Joules;
use helio_tasks::{TaskGraph, TaskId};
use serde::{Deserialize, Serialize};

/// Backup/restore cost model of one NVP.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NvpParams {
    /// Energy of one state backup (J). FeFF backup of a small core is
    /// on the order of microjoules.
    pub backup_energy: Joules,
    /// Energy of one state restore (J).
    pub restore_energy: Joules,
}

impl Default for NvpParams {
    fn default() -> Self {
        Self {
            backup_energy: Joules::new(4e-6),
            restore_energy: Joules::new(2e-6),
        }
    }
}

/// Execution state of one NVP within a slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum NvpState {
    /// Powered but idle.
    #[default]
    Idle,
    /// Executing a task this slot.
    Running(TaskId),
    /// Lost power mid-slot; state backed up, awaiting restore.
    Suspended(TaskId),
}

/// The fleet of `N_k` NVPs with per-slot occupancy tracking and
/// backup/restore energy accounting.
///
/// # Example
///
/// ```
/// use helio_nvp::NvpFleet;
/// use helio_tasks::benchmarks;
///
/// let wam = benchmarks::wam();
/// let mut fleet = NvpFleet::for_graph(&wam);
/// assert_eq!(fleet.len(), 3);
///
/// fleet.begin_slot();
/// fleet.assign(&wam, wam.ids().next().unwrap()).unwrap();
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NvpFleet {
    params: NvpParams,
    states: Vec<NvpState>,
    backups: usize,
    restores: usize,
}

impl NvpFleet {
    /// Creates a fleet of `count` NVPs with default parameters.
    pub fn new(count: usize) -> Self {
        Self::with_params(count, NvpParams::default())
    }

    /// Creates a fleet with explicit parameters.
    pub fn with_params(count: usize, params: NvpParams) -> Self {
        Self {
            params,
            states: vec![NvpState::Idle; count],
            backups: 0,
            restores: 0,
        }
    }

    /// Creates a fleet sized for a task graph's NVP assignment.
    pub fn for_graph(graph: &TaskGraph) -> Self {
        Self::new(graph.nvp_count())
    }

    /// Number of NVPs `N_k`.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Whether the fleet has no processors.
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// State of one NVP.
    ///
    /// # Panics
    ///
    /// Panics when `nvp` is out of range.
    pub fn state(&self, nvp: usize) -> NvpState {
        self.states[nvp]
    }

    /// Clears all `Running` markers at a slot boundary (tasks may be
    /// re-assigned; suspended tasks stay suspended until resumed).
    pub fn begin_slot(&mut self) {
        for s in self.states.iter_mut() {
            if let NvpState::Running(_) = s {
                *s = NvpState::Idle;
            }
        }
    }

    /// Assigns `task` to its NVP for this slot.
    ///
    /// Resuming a suspended task costs one restore.
    ///
    /// # Errors
    ///
    /// Returns the occupying task when the NVP already runs another task
    /// this slot (constraint 9).
    pub fn assign(&mut self, graph: &TaskGraph, task: TaskId) -> Result<(), TaskId> {
        let nvp = graph.task(task).nvp;
        match self.states[nvp] {
            NvpState::Running(other) if other != task => Err(other),
            NvpState::Suspended(prev) => {
                if prev == task {
                    self.restores += 1;
                }
                self.states[nvp] = NvpState::Running(task);
                Ok(())
            }
            _ => {
                self.states[nvp] = NvpState::Running(task);
                Ok(())
            }
        }
    }

    /// Records a brown-out: every running NVP backs up its task state.
    pub fn power_failure(&mut self) {
        for s in self.states.iter_mut() {
            if let NvpState::Running(task) = *s {
                *s = NvpState::Suspended(task);
                self.backups += 1;
            }
        }
    }

    /// Number of backups so far.
    pub fn backup_count(&self) -> usize {
        self.backups
    }

    /// Number of restores so far.
    pub fn restore_count(&self) -> usize {
        self.restores
    }

    /// Total backup/restore energy overhead so far.
    pub fn overhead_energy(&self) -> Joules {
        self.params.backup_energy * self.backups as f64
            + self.params.restore_energy * self.restores as f64
    }

    /// Tasks currently marked running, as `(nvp, task)` pairs.
    pub fn running(&self) -> Vec<(usize, TaskId)> {
        self.states
            .iter()
            .enumerate()
            .filter_map(|(i, s)| match s {
                NvpState::Running(t) => Some((i, *t)),
                _ => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use helio_tasks::benchmarks;

    #[test]
    fn fleet_sizes_from_graph() {
        assert_eq!(NvpFleet::for_graph(&benchmarks::wam()).len(), 3);
        assert_eq!(NvpFleet::for_graph(&benchmarks::shm()).len(), 2);
        assert!(!NvpFleet::for_graph(&benchmarks::ecg()).is_empty());
    }

    #[test]
    fn one_task_per_nvp_enforced() {
        let g = benchmarks::wam();
        let mut fleet = NvpFleet::for_graph(&g);
        // locating and heart_rate_sampling share NVP 0.
        let ids: Vec<TaskId> = g.ids().collect();
        fleet.begin_slot();
        fleet.assign(&g, ids[0]).unwrap();
        assert_eq!(fleet.assign(&g, ids[1]), Err(ids[0]));
        // voice_recordation is on NVP 1 — fine.
        fleet.assign(&g, ids[2]).unwrap();
        assert_eq!(fleet.running().len(), 2);
    }

    #[test]
    fn reassigning_same_task_is_idempotent() {
        let g = benchmarks::ecg();
        let mut fleet = NvpFleet::for_graph(&g);
        let id = g.ids().next().unwrap();
        fleet.begin_slot();
        fleet.assign(&g, id).unwrap();
        fleet.assign(&g, id).unwrap();
        assert_eq!(fleet.running(), vec![(0, id)]);
    }

    #[test]
    fn begin_slot_clears_running_only() {
        let g = benchmarks::ecg();
        let mut fleet = NvpFleet::for_graph(&g);
        let id = g.ids().next().unwrap();
        fleet.begin_slot();
        fleet.assign(&g, id).unwrap();
        fleet.power_failure();
        assert_eq!(fleet.state(0), NvpState::Suspended(id));
        fleet.begin_slot();
        // Suspension survives the slot boundary.
        assert_eq!(fleet.state(0), NvpState::Suspended(id));
    }

    #[test]
    fn failure_and_resume_cost_energy() {
        let g = benchmarks::ecg();
        let mut fleet = NvpFleet::for_graph(&g);
        let id = g.ids().next().unwrap();
        fleet.begin_slot();
        fleet.assign(&g, id).unwrap();
        fleet.power_failure();
        assert_eq!(fleet.backup_count(), 1);
        fleet.begin_slot();
        fleet.assign(&g, id).unwrap();
        assert_eq!(fleet.restore_count(), 1);
        let e = fleet.overhead_energy();
        assert!((e.value() - 6e-6).abs() < 1e-12, "overhead {e}");
    }

    #[test]
    fn idle_fleet_has_no_overhead() {
        let fleet = NvpFleet::new(4);
        assert_eq!(fleet.overhead_energy(), Joules::ZERO);
        assert!(fleet.running().is_empty());
        // Power failure with nothing running backs up nothing.
        let mut fleet = fleet;
        fleet.power_failure();
        assert_eq!(fleet.backup_count(), 0);
    }
}
