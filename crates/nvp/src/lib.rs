//! # helio-nvp
//!
//! Nonvolatile-processor and power-management substrate for the DAC'15
//! reproduction.
//!
//! The paper's node executes tasks on multiple *nonvolatile processors*
//! (NVPs, \[13, 14\]): ferroelectric flip-flop based cores that back up
//! their state on power failure and restore within microseconds. Each
//! task is bound to one NVP, and an NVP runs at most one task per slot
//! (constraint 9 of the system model). The *power-management unit*
//! (PMU) routes energy between the direct solar channel, the selected
//! supercapacitor and the load — the dual-channel architecture of
//! Fig. 3.
//!
//! ## Example
//!
//! ```
//! use helio_common::units::{Farads, Joules};
//! use helio_nvp::{Pmu, PmuParams};
//! use helio_storage::{CapacitorBank, StorageModelParams};
//!
//! # fn main() -> Result<(), helio_storage::StorageError> {
//! let storage = StorageModelParams::default();
//! let mut bank = CapacitorBank::new(&[Farads::new(10.0)], &storage)?;
//! let pmu = Pmu::new(PmuParams::default());
//!
//! // A sunny slot: 30 J harvested, 10 J demanded — the direct channel
//! // serves the load and the surplus charges the capacitor.
//! let flow = pmu.settle_slot(Joules::new(30.0), Joules::new(10.0), &mut bank, &storage);
//! assert_eq!(flow.unmet, Joules::ZERO);
//! assert!(flow.stored.value() > 0.0);
//! # Ok(())
//! # }
//! ```

pub mod pmu;
pub mod processor;

pub use pmu::{Pmu, PmuParams, SlotEnergyFlow};
pub use processor::{NvpFleet, NvpParams, NvpState};
