//! The power-management unit: per-slot energy routing between the
//! direct solar channel, the active supercapacitor and the load.

use helio_common::units::Joules;
use helio_storage::{CapacitorBank, StorageModelParams};
use serde::{Deserialize, Serialize};

/// PMU calibration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PmuParams {
    /// Efficiency of the direct supply channel (panel → load). The
    /// paper's architecture makes this channel deliberately more
    /// efficient than the store-and-use path.
    pub direct_efficiency: f64,
}

impl Default for PmuParams {
    fn default() -> Self {
        Self {
            direct_efficiency: 0.95,
        }
    }
}

/// Energy ledger of one slot as settled by the PMU. All quantities are
/// load- or source-side joules as noted; the invariant
/// `demand = served_direct + served_storage + unmet` always holds, as
/// does `harvested = used_direct + stored + wasted`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SlotEnergyFlow {
    /// Load demanded this slot.
    pub demand: Joules,
    /// Harvested solar energy this slot (source side).
    pub harvested: Joules,
    /// Demand served through the direct channel.
    pub served_direct: Joules,
    /// Demand served from the active supercapacitor.
    pub served_storage: Joules,
    /// Demand that could not be served (brown-out).
    pub unmet: Joules,
    /// Solar energy consumed by the direct channel (source side,
    /// includes the direct-channel conversion loss).
    pub used_direct: Joules,
    /// Solar surplus absorbed into the active capacitor (source side).
    pub stored: Joules,
    /// Solar surplus that found no room (capacitor full or absent).
    pub wasted: Joules,
}

impl SlotEnergyFlow {
    /// Whether the whole demand was met.
    pub fn fully_served(&self) -> bool {
        self.unmet.value() <= 1e-12
    }
}

/// The power-management unit of the dual-channel node (Fig. 3).
///
/// Routing policy: the direct channel serves the load first (it is the
/// most efficient path); any remaining solar surplus charges the active
/// supercapacitor; any remaining deficit discharges it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Pmu {
    params: PmuParams,
}

impl Pmu {
    /// Creates a PMU.
    ///
    /// # Panics
    ///
    /// Panics when the direct-channel efficiency leaves `(0, 1]`; use
    /// [`Pmu::try_new`] for untrusted calibration data.
    pub fn new(params: PmuParams) -> Self {
        Self::try_new(params).expect("PMU parameters are valid")
    }

    /// Fallible variant of [`Pmu::new`].
    ///
    /// # Errors
    ///
    /// Returns a description of the violated constraint when the
    /// direct-channel efficiency is non-finite or outside `(0, 1]`.
    pub fn try_new(params: PmuParams) -> Result<Self, String> {
        let eta = params.direct_efficiency;
        if !(eta.is_finite() && eta > 0.0 && eta <= 1.0) {
            return Err(format!(
                "direct-channel efficiency must lie in (0, 1], got {eta}"
            ));
        }
        Ok(Self { params })
    }

    /// The PMU parameters.
    pub const fn params(&self) -> &PmuParams {
        &self.params
    }

    /// Settles one slot: routes `harvested` solar energy against
    /// `demand`, charging/discharging the bank's active capacitor as
    /// needed, and returns the full ledger.
    ///
    /// Leakage is *not* applied here — the engine applies it once per
    /// slot across the whole bank.
    pub fn settle_slot(
        &self,
        harvested: Joules,
        demand: Joules,
        bank: &mut CapacitorBank,
        storage: &StorageModelParams,
    ) -> SlotEnergyFlow {
        let eta = self.params.direct_efficiency;
        let demand = demand.max(Joules::ZERO);
        let harvested = harvested.max(Joules::ZERO);

        // Direct channel first.
        let deliverable_direct = harvested * eta;
        let served_direct = demand.min(deliverable_direct);
        let used_direct = served_direct / eta;

        // Surplus charges the active capacitor.
        let surplus = (harvested - used_direct).max(Joules::ZERO);
        let stored = if surplus.value() > 0.0 {
            bank.charge_active(storage, surplus)
        } else {
            Joules::ZERO
        };
        let wasted = surplus - stored;

        // Deficit drains the active capacitor.
        let deficit = (demand - served_direct).max(Joules::ZERO);
        let served_storage = if deficit.value() > 0.0 {
            bank.discharge_active(storage, deficit)
        } else {
            Joules::ZERO
        };
        let unmet = deficit - served_storage;

        SlotEnergyFlow {
            demand,
            harvested,
            served_direct,
            served_storage,
            unmet,
            used_direct,
            stored,
            wasted,
        }
    }

    /// Energy the node could spend on load *this slot* without browning
    /// out: direct-channel capacity plus what the active capacitor can
    /// deliver. Planners use this to avoid starting doomed slots.
    pub fn available_energy(
        &self,
        harvested: Joules,
        bank: &CapacitorBank,
        storage: &StorageModelParams,
    ) -> Joules {
        harvested.max(Joules::ZERO) * self.params.direct_efficiency
            + bank.active_deliverable(storage)
    }
}

impl Default for Pmu {
    fn default() -> Self {
        Self::new(PmuParams::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use helio_common::units::Farads;

    fn setup() -> (Pmu, CapacitorBank, StorageModelParams) {
        let storage = StorageModelParams::default();
        let bank = CapacitorBank::new(&[Farads::new(10.0)], &storage).unwrap();
        (Pmu::default(), bank, storage)
    }

    fn assert_ledger(flow: &SlotEnergyFlow) {
        let lhs = flow.demand.value();
        let rhs = (flow.served_direct + flow.served_storage + flow.unmet).value();
        assert!((lhs - rhs).abs() < 1e-9, "demand ledger broken: {flow:?}");
        let lhs = flow.harvested.value();
        let rhs = (flow.used_direct + flow.stored + flow.wasted).value();
        assert!((lhs - rhs).abs() < 1e-9, "harvest ledger broken: {flow:?}");
    }

    #[test]
    fn sunny_slot_serves_direct_and_stores_surplus() {
        let (pmu, mut bank, storage) = setup();
        let flow = pmu.settle_slot(Joules::new(30.0), Joules::new(10.0), &mut bank, &storage);
        assert_ledger(&flow);
        assert!((flow.served_direct.value() - 10.0).abs() < 1e-9);
        assert!(flow.stored.value() > 10.0, "most surplus should store");
        assert_eq!(flow.unmet, Joules::ZERO);
        assert!(flow.served_storage == Joules::ZERO);
        // Direct channel loss is visible: used > served.
        assert!(flow.used_direct > flow.served_direct);
    }

    #[test]
    fn night_slot_drains_capacitor() {
        let (pmu, mut bank, storage) = setup();
        // Pre-charge.
        bank.charge_active(&storage, Joules::new(40.0));
        let flow = pmu.settle_slot(Joules::ZERO, Joules::new(5.0), &mut bank, &storage);
        assert_ledger(&flow);
        assert_eq!(flow.served_direct, Joules::ZERO);
        assert!((flow.served_storage.value() - 5.0).abs() < 1e-9);
        assert_eq!(flow.unmet, Joules::ZERO);
    }

    #[test]
    fn empty_night_slot_browns_out() {
        let (pmu, mut bank, storage) = setup();
        let flow = pmu.settle_slot(Joules::ZERO, Joules::new(5.0), &mut bank, &storage);
        assert_ledger(&flow);
        assert!((flow.unmet.value() - 5.0).abs() < 1e-9);
        assert!(!flow.fully_served());
    }

    #[test]
    fn partial_service_mixes_channels() {
        let (pmu, mut bank, storage) = setup();
        bank.charge_active(&storage, Joules::new(10.0));
        // 2 J harvested, 6 J demanded: 1.9 J direct, rest from storage.
        let flow = pmu.settle_slot(Joules::new(2.0), Joules::new(6.0), &mut bank, &storage);
        assert_ledger(&flow);
        assert!((flow.served_direct.value() - 1.9).abs() < 1e-9);
        assert!(flow.served_storage.value() > 0.0);
    }

    #[test]
    fn full_capacitor_wastes_surplus() {
        let (pmu, mut bank, storage) = setup();
        bank.charge_active(&storage, Joules::new(1e6));
        let flow = pmu.settle_slot(Joules::new(30.0), Joules::ZERO, &mut bank, &storage);
        assert_ledger(&flow);
        assert!((flow.wasted.value() - 30.0).abs() < 1e-9);
        assert_eq!(flow.stored, Joules::ZERO);
    }

    #[test]
    fn available_energy_bounds_serving() {
        let (pmu, mut bank, storage) = setup();
        bank.charge_active(&storage, Joules::new(20.0));
        let avail = pmu.available_energy(Joules::new(5.0), &bank, &storage);
        let flow = pmu.settle_slot(Joules::new(5.0), avail, &mut bank, &storage);
        assert_ledger(&flow);
        assert!(
            flow.unmet.value() < 1e-6,
            "a demand equal to available energy must be servable, unmet {}",
            flow.unmet
        );
    }

    #[test]
    fn negative_inputs_clamp_to_zero() {
        let (pmu, mut bank, storage) = setup();
        let flow = pmu.settle_slot(Joules::new(-3.0), Joules::new(-2.0), &mut bank, &storage);
        assert_eq!(flow.demand, Joules::ZERO);
        assert_eq!(flow.harvested, Joules::ZERO);
        assert_eq!(flow.unmet, Joules::ZERO);
    }

    #[test]
    #[should_panic(expected = "efficiency")]
    fn rejects_bad_efficiency() {
        Pmu::new(PmuParams {
            direct_efficiency: 0.0,
        });
    }
}
