//! Deterministic data parallelism on `std::thread::scope`.
//!
//! The offline pipeline (long-term DP, capacitor sizing, experiment
//! sweeps) fans out over independent work items. This crate provides
//! ordered `map` primitives: items are split into contiguous chunks,
//! one scoped worker per chunk, and results are reassembled in input
//! order — so parallel output is byte-for-byte identical to a serial
//! run no matter how the OS schedules the workers.
//!
//! Thread count comes from, in priority order:
//! 1. `HELIO_SERIAL=1` — force single-threaded execution;
//! 2. `HELIO_THREADS=<n>` — explicit worker count;
//! 3. `std::thread::available_parallelism()`.

use std::env;
use std::num::NonZeroUsize;
use std::panic;

/// Number of worker threads parallel maps will use.
#[must_use]
pub fn configured_threads() -> usize {
    if env::var("HELIO_SERIAL").map(|v| v == "1").unwrap_or(false) {
        return 1;
    }
    if let Ok(raw) = env::var("HELIO_THREADS") {
        if let Ok(n) = raw.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Maps `f` over `0..n`, in parallel when workers are available,
/// returning results in index order.
///
/// # Panics
///
/// Re-raises any panic from `f` on the calling thread.
pub fn par_map_range<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let threads = configured_threads().min(n);
    if threads <= 1 {
        return (0..n).map(f).collect();
    }
    let chunk = n.div_ceil(threads);
    let mut parts: Vec<Vec<R>> = Vec::with_capacity(threads);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let f = &f;
                let lo = t * chunk;
                let hi = ((t + 1) * chunk).min(n);
                s.spawn(move || (lo..hi).map(f).collect::<Vec<R>>())
            })
            .collect();
        for handle in handles {
            parts.push(handle.join().unwrap_or_else(|e| panic::resume_unwind(e)));
        }
    });
    parts.into_iter().flatten().collect()
}

/// Splits `0..n` into contiguous ranges of at most `chunk` items and
/// maps `f` over the ranges, in parallel, returning one result per
/// range in range order. This is the fan-out shape of the batched
/// engine: each range becomes one lockstep batch, and ordered
/// reassembly keeps sweep output byte-identical to a serial run.
///
/// # Panics
///
/// Re-raises any panic from `f` on the calling thread.
pub fn par_map_ranges<R, F>(n: usize, chunk: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(std::ops::Range<usize>) -> R + Sync,
{
    let chunk = chunk.max(1);
    let ranges = n.div_ceil(chunk);
    par_map_range(ranges, |c| f(c * chunk..((c + 1) * chunk).min(n)))
}

/// Maps `f` over a slice, in parallel, returning results in input
/// order.
///
/// # Panics
///
/// Re-raises any panic from `f` on the calling thread.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_range(items.len(), |i| f(&items[i]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let squares = par_map_range(1000, |i| i * i);
        assert_eq!(squares.len(), 1000);
        for (i, s) in squares.iter().enumerate() {
            assert_eq!(*s, i * i);
        }
    }

    #[test]
    fn handles_edge_sizes() {
        assert!(par_map_range(0, |i| i).is_empty());
        assert_eq!(par_map_range(1, |i| i + 7), vec![7]);
        let items = [3.0f64, 1.5, -2.0];
        assert_eq!(par_map(&items, |x| x * 2.0), vec![6.0, 3.0, -4.0]);
    }

    #[test]
    fn matches_serial_map() {
        let parallel = par_map_range(257, |i| format!("{i}:{}", i % 7));
        let serial: Vec<String> = (0..257).map(|i| format!("{i}:{}", i % 7)).collect();
        assert_eq!(parallel, serial);
    }

    #[test]
    fn range_chunks_cover_exactly_once() {
        let parts = par_map_ranges(10, 4, |r| r.collect::<Vec<usize>>());
        assert_eq!(parts, vec![vec![0, 1, 2, 3], vec![4, 5, 6, 7], vec![8, 9]]);
        assert!(par_map_ranges(0, 4, |r| r.len()).is_empty());
        // A zero chunk is clamped to 1 instead of dividing by zero.
        assert_eq!(par_map_ranges(3, 0, |r| r.start), vec![0, 1, 2]);
    }

    #[test]
    fn worker_panic_propagates() {
        let result = panic::catch_unwind(|| {
            par_map_range(8, |i| {
                assert!(i != 5, "boom");
                i
            })
        });
        assert!(result.is_err());
    }
}
