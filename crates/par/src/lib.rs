//! Deterministic data parallelism on `std::thread::scope`.
//!
//! The offline pipeline (long-term DP, capacitor sizing, experiment
//! sweeps) fans out over independent work items. This crate provides
//! ordered `map` primitives: items are split into contiguous chunks,
//! one scoped worker per chunk, and results are reassembled in input
//! order — so parallel output is byte-for-byte identical to a serial
//! run no matter how the OS schedules the workers.
//!
//! Thread count comes from, in priority order:
//! 1. `HELIO_SERIAL=1` — force single-threaded execution;
//! 2. `HELIO_THREADS=<n>` — explicit worker count;
//! 3. `std::thread::available_parallelism()`.

use std::any::Any;
use std::env;
use std::num::NonZeroUsize;
use std::panic;

/// A worker panic captured by [`par_zip_chunks_mut_quarantine`]: the
/// payload `std::thread::JoinHandle::join` (or `catch_unwind`) hands
/// back.
pub type PanicPayload = Box<dyn Any + Send + 'static>;

/// Best-effort human-readable text of a captured panic payload
/// (`panic!` with a string literal or formatted message; anything else
/// collapses to `"panic"`).
#[must_use]
pub fn panic_message(payload: &PanicPayload) -> &str {
    if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else if let Some(s) = payload.downcast_ref::<&'static str>() {
        s
    } else {
        "panic"
    }
}

/// Number of worker threads parallel maps will use.
#[must_use]
pub fn configured_threads() -> usize {
    if env::var("HELIO_SERIAL").map(|v| v == "1").unwrap_or(false) {
        return 1;
    }
    if let Ok(raw) = env::var("HELIO_THREADS") {
        if let Ok(n) = raw.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Maps `f` over `0..n`, in parallel when workers are available,
/// returning results in index order.
///
/// # Panics
///
/// Re-raises any panic from `f` on the calling thread.
pub fn par_map_range<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let threads = configured_threads().min(n);
    if threads <= 1 {
        return (0..n).map(f).collect();
    }
    let chunk = n.div_ceil(threads);
    let mut parts: Vec<Vec<R>> = Vec::with_capacity(threads);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let f = &f;
                let lo = t * chunk;
                let hi = ((t + 1) * chunk).min(n);
                s.spawn(move || (lo..hi).map(f).collect::<Vec<R>>())
            })
            .collect();
        for handle in handles {
            parts.push(handle.join().unwrap_or_else(|e| panic::resume_unwind(e)));
        }
    });
    parts.into_iter().flatten().collect()
}

/// Splits `0..n` into contiguous ranges of at most `chunk` items and
/// maps `f` over the ranges, in parallel, returning one result per
/// range in range order. This is the fan-out shape of the batched
/// engine: each range becomes one lockstep batch, and ordered
/// reassembly keeps sweep output byte-identical to a serial run.
///
/// # Panics
///
/// Re-raises any panic from `f` on the calling thread.
pub fn par_map_ranges<R, F>(n: usize, chunk: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(std::ops::Range<usize>) -> R + Sync,
{
    let chunk = chunk.max(1);
    let ranges = n.div_ceil(chunk);
    par_map_range(ranges, |c| f(c * chunk..((c + 1) * chunk).min(n)))
}

/// Maps `f` over a slice, in parallel, returning results in input
/// order.
///
/// # Panics
///
/// Re-raises any panic from `f` on the calling thread.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_range(items.len(), |i| f(&items[i]))
}

/// Splits `items` into `states.len()` contiguous chunks (the first
/// `items.len().div_ceil(states.len())` items per chunk, last chunk
/// short) and runs `f(chunk_index, items_chunk, state)` once per chunk
/// with exclusive access to that chunk's state, one scoped worker per
/// chunk. Results come back in chunk order.
///
/// This is the shard-dispatch shape of the sharded batch engine: each
/// worker owns a mutable slice of scenarios plus its own scratch
/// state, and because chunk boundaries depend only on the two lengths
/// — never on thread count or scheduling — a parallel run partitions
/// the work identically to the serial fallback.
///
/// Chunks beyond `items.len()` (more states than items) receive an
/// empty item slice.
///
/// # Panics
///
/// Re-raises any panic from `f` on the calling thread.
pub fn par_zip_chunks_mut<T, S, R, F>(items: &mut [T], states: &mut [S], f: F) -> Vec<R>
where
    T: Send,
    S: Send,
    R: Send,
    F: Fn(usize, &mut [T], &mut S) -> R + Sync,
{
    par_zip_chunks_mut_quarantine(items, states, f)
        .into_iter()
        .map(|r| r.unwrap_or_else(|e| panic::resume_unwind(e)))
        .collect()
}

/// [`par_zip_chunks_mut`] that *quarantines* worker panics instead of
/// re-raising them: each chunk's result is `Ok(r)` or `Err(payload)`,
/// so one poisoned chunk cannot take down the siblings (or the
/// caller). The service layer uses this to turn a panicking scenario
/// into a per-request error line instead of a dead worker pool.
///
/// The chunk whose worker panicked leaves its `items`/`state` in
/// whatever state the unwind found them — callers must treat them as
/// garbage.
pub fn par_zip_chunks_mut_quarantine<T, S, R, F>(
    items: &mut [T],
    states: &mut [S],
    f: F,
) -> Vec<Result<R, PanicPayload>>
where
    T: Send,
    S: Send,
    R: Send,
    F: Fn(usize, &mut [T], &mut S) -> R + Sync,
{
    let chunks = states.len();
    if chunks == 0 {
        return Vec::new();
    }
    let chunk = items.len().div_ceil(chunks).max(1);
    if configured_threads() <= 1 || chunks == 1 {
        let mut rest = items;
        return states
            .iter_mut()
            .enumerate()
            .map(|(c, state)| {
                let take = chunk.min(rest.len());
                let (head, tail) = std::mem::take(&mut rest).split_at_mut(take);
                rest = tail;
                panic::catch_unwind(panic::AssertUnwindSafe(|| f(c, head, state)))
            })
            .collect();
    }
    let mut results: Vec<Result<R, PanicPayload>> = Vec::with_capacity(chunks);
    std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(chunks);
        let mut rest_items = items;
        let mut rest_states = states;
        for c in 0..chunks {
            let take = chunk.min(rest_items.len());
            let (head, tail) = std::mem::take(&mut rest_items).split_at_mut(take);
            rest_items = tail;
            let (state, states_tail) = match std::mem::take(&mut rest_states).split_first_mut() {
                Some(pair) => pair,
                None => break,
            };
            rest_states = states_tail;
            let f = &f;
            handles.push(s.spawn(move || f(c, head, state)));
        }
        for handle in handles {
            results.push(handle.join());
        }
    });
    results
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let squares = par_map_range(1000, |i| i * i);
        assert_eq!(squares.len(), 1000);
        for (i, s) in squares.iter().enumerate() {
            assert_eq!(*s, i * i);
        }
    }

    #[test]
    fn handles_edge_sizes() {
        assert!(par_map_range(0, |i| i).is_empty());
        assert_eq!(par_map_range(1, |i| i + 7), vec![7]);
        let items = [3.0f64, 1.5, -2.0];
        assert_eq!(par_map(&items, |x| x * 2.0), vec![6.0, 3.0, -4.0]);
    }

    #[test]
    fn matches_serial_map() {
        let parallel = par_map_range(257, |i| format!("{i}:{}", i % 7));
        let serial: Vec<String> = (0..257).map(|i| format!("{i}:{}", i % 7)).collect();
        assert_eq!(parallel, serial);
    }

    #[test]
    fn range_chunks_cover_exactly_once() {
        let parts = par_map_ranges(10, 4, |r| r.collect::<Vec<usize>>());
        assert_eq!(parts, vec![vec![0, 1, 2, 3], vec![4, 5, 6, 7], vec![8, 9]]);
        assert!(par_map_ranges(0, 4, |r| r.len()).is_empty());
        // A zero chunk is clamped to 1 instead of dividing by zero.
        assert_eq!(par_map_ranges(3, 0, |r| r.start), vec![0, 1, 2]);
    }

    #[test]
    fn zip_chunks_partitions_deterministically() {
        let mut items: Vec<usize> = (0..10).collect();
        let mut states = vec![0usize; 3];
        let seen = par_zip_chunks_mut(&mut items, &mut states, |c, chunk, state| {
            *state = chunk.len();
            (c, chunk.to_vec())
        });
        // 10 items over 3 states: ceil(10/3) = 4 per chunk, last short.
        assert_eq!(
            seen,
            vec![
                (0, vec![0, 1, 2, 3]),
                (1, vec![4, 5, 6, 7]),
                (2, vec![8, 9]),
            ]
        );
        assert_eq!(states, vec![4, 4, 2]);
    }

    #[test]
    fn zip_chunks_mutates_items_and_states() {
        let mut items: Vec<i64> = (0..23).collect();
        let mut states: Vec<i64> = vec![0; 4];
        par_zip_chunks_mut(&mut items, &mut states, |_, chunk, state| {
            for x in chunk.iter_mut() {
                *x *= 2;
                *state += *x;
            }
        });
        let expect: Vec<i64> = (0..23).map(|x| x * 2).collect();
        assert_eq!(items, expect);
        assert_eq!(states.iter().sum::<i64>(), expect.iter().sum::<i64>());
    }

    #[test]
    fn zip_chunks_handles_edge_shapes() {
        // More states than items: trailing chunks see empty slices.
        let mut items = vec![1, 2];
        let mut states = vec![0usize; 5];
        let lens = par_zip_chunks_mut(&mut items, &mut states, |_, chunk, _| chunk.len());
        assert_eq!(lens.iter().sum::<usize>(), 2);
        assert_eq!(lens.len(), 5);
        // No states: nothing runs.
        let mut none: Vec<usize> = Vec::new();
        assert!(par_zip_chunks_mut(&mut items, &mut none, |_, _, _: &mut usize| 1).is_empty());
        // No items: every state still gets a (empty) call.
        let mut empty: Vec<usize> = Vec::new();
        let calls = par_zip_chunks_mut(&mut empty, &mut states, |c, chunk, _| (c, chunk.len()));
        assert_eq!(calls.len(), 5);
        assert!(calls.iter().all(|&(_, n)| n == 0));
    }

    #[test]
    fn zip_chunks_worker_panic_propagates() {
        let result = panic::catch_unwind(|| {
            let mut items: Vec<usize> = (0..8).collect();
            let mut states = vec![(); 4];
            par_zip_chunks_mut(&mut items, &mut states, |c, _, _| {
                assert!(c != 2, "boom");
                c
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn zip_chunks_quarantine_isolates_panicked_chunk() {
        let mut items: Vec<usize> = (0..8).collect();
        let mut states = vec![(); 4];
        let results = par_zip_chunks_mut_quarantine(&mut items, &mut states, |c, chunk, _| {
            assert!(c != 2, "chunk blew up");
            chunk.to_vec()
        });
        assert_eq!(results.len(), 4);
        for (c, r) in results.iter().enumerate() {
            if c == 2 {
                let payload = r.as_ref().expect_err("chunk 2 panicked");
                assert!(panic_message(payload).contains("chunk blew up"));
            } else {
                let v = r.as_ref().expect("healthy chunk survives");
                assert_eq!(v, &vec![2 * c, 2 * c + 1]);
            }
        }
    }

    #[test]
    fn worker_panic_propagates() {
        let result = panic::catch_unwind(|| {
            par_map_range(8, |i| {
                assert!(i != 5, "boom");
                i
            })
        });
        assert!(result.is_err());
    }
}
