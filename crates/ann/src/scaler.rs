//! Min–max feature scaling into `[0, 1]`, which both the RBM (whose
//! visible units are probabilities) and the sigmoid output layer need.

use serde::{Deserialize, Serialize};

use crate::error::AnnError;

/// Per-feature min–max scaler.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MinMaxScaler {
    mins: Vec<f64>,
    maxs: Vec<f64>,
}

impl MinMaxScaler {
    /// Fits the scaler to a data set (one `Vec` per sample).
    ///
    /// # Errors
    ///
    /// Returns [`AnnError::BadTrainingSet`] when the set is empty,
    /// ragged, or contains non-finite values.
    pub fn fit(samples: &[Vec<f64>]) -> Result<Self, AnnError> {
        let dim = samples
            .first()
            .ok_or_else(|| AnnError::BadTrainingSet("no samples".into()))?
            .len();
        let mut mins = vec![f64::INFINITY; dim];
        let mut maxs = vec![f64::NEG_INFINITY; dim];
        for s in samples {
            if s.len() != dim {
                return Err(AnnError::BadTrainingSet(format!(
                    "ragged sample: expected {dim} features, got {}",
                    s.len()
                )));
            }
            for (i, &v) in s.iter().enumerate() {
                if !v.is_finite() {
                    return Err(AnnError::BadTrainingSet("non-finite feature".into()));
                }
                mins[i] = mins[i].min(v);
                maxs[i] = maxs[i].max(v);
            }
        }
        Ok(Self { mins, maxs })
    }

    /// [`MinMaxScaler::fit`] on a sample matrix (one sample per row):
    /// the same ascending row/feature scan, so the fitted ranges are
    /// bitwise identical — without a `Vec<Vec<f64>>` copy of the data.
    ///
    /// # Errors
    ///
    /// Returns [`AnnError::BadTrainingSet`] when the matrix has no
    /// rows or contains non-finite values.
    pub fn fit_matrix(samples: &crate::matrix::Matrix) -> Result<Self, AnnError> {
        if samples.rows() == 0 {
            return Err(AnnError::BadTrainingSet("no samples".into()));
        }
        let dim = samples.cols();
        let mut mins = vec![f64::INFINITY; dim];
        let mut maxs = vec![f64::NEG_INFINITY; dim];
        for r in 0..samples.rows() {
            for (i, &v) in samples.row(r).iter().enumerate() {
                if !v.is_finite() {
                    return Err(AnnError::BadTrainingSet("non-finite feature".into()));
                }
                mins[i] = mins[i].min(v);
                maxs[i] = maxs[i].max(v);
            }
        }
        Ok(Self { mins, maxs })
    }

    /// Number of features.
    pub fn dim(&self) -> usize {
        self.mins.len()
    }

    /// Fitted per-feature minima (compile-time affine folding and
    /// distillation samplers read these; see `crate::compiled` and
    /// `crate::distill`).
    pub fn mins(&self) -> &[f64] {
        &self.mins
    }

    /// Fitted per-feature maxima.
    pub fn maxs(&self) -> &[f64] {
        &self.maxs
    }

    /// Scales one sample into `[0, 1]` (constant features map to 0.5).
    ///
    /// # Errors
    ///
    /// Returns [`AnnError::DimensionMismatch`] on wrong feature counts.
    pub fn transform(&self, sample: &[f64]) -> Result<Vec<f64>, AnnError> {
        let mut out = Vec::with_capacity(self.dim());
        self.transform_into(sample, &mut out)?;
        Ok(out)
    }

    /// [`MinMaxScaler::transform`] writing into `out` (cleared first).
    ///
    /// # Errors
    ///
    /// Returns [`AnnError::DimensionMismatch`] on wrong feature counts.
    pub fn transform_into(&self, sample: &[f64], out: &mut Vec<f64>) -> Result<(), AnnError> {
        if sample.len() != self.dim() {
            return Err(AnnError::dims(
                format!("{} features", self.dim()),
                format!("{}", sample.len()),
            ));
        }
        out.clear();
        out.extend(sample.iter().enumerate().map(|(i, &v)| {
            let span = self.maxs[i] - self.mins[i];
            if span <= 0.0 {
                0.5
            } else {
                ((v - self.mins[i]) / span).clamp(0.0, 1.0)
            }
        }));
        Ok(())
    }

    /// [`MinMaxScaler::transform_into`] writing into a pre-sized slice
    /// (a matrix row, for batched inference). Arithmetic is identical
    /// per element, so results are bitwise equal.
    ///
    /// # Errors
    ///
    /// Returns [`AnnError::DimensionMismatch`] when either slice has
    /// the wrong feature count.
    pub fn transform_slice(&self, sample: &[f64], out: &mut [f64]) -> Result<(), AnnError> {
        if sample.len() != self.dim() || out.len() != self.dim() {
            return Err(AnnError::dims(
                format!("{} features", self.dim()),
                format!("{} in / {} out", sample.len(), out.len()),
            ));
        }
        for (i, (o, &v)) in out.iter_mut().zip(sample).enumerate() {
            let span = self.maxs[i] - self.mins[i];
            *o = if span <= 0.0 {
                0.5
            } else {
                ((v - self.mins[i]) / span).clamp(0.0, 1.0)
            };
        }
        Ok(())
    }

    /// Inverse transform from `[0, 1]` back to the original range.
    ///
    /// # Errors
    ///
    /// Returns [`AnnError::DimensionMismatch`] on wrong feature counts.
    pub fn inverse(&self, scaled: &[f64]) -> Result<Vec<f64>, AnnError> {
        let mut out = Vec::with_capacity(self.dim());
        self.inverse_into(scaled, &mut out)?;
        Ok(out)
    }

    /// [`MinMaxScaler::inverse`] writing into `out` (cleared first).
    ///
    /// # Errors
    ///
    /// Returns [`AnnError::DimensionMismatch`] on wrong feature counts.
    pub fn inverse_into(&self, scaled: &[f64], out: &mut Vec<f64>) -> Result<(), AnnError> {
        if scaled.len() != self.dim() {
            return Err(AnnError::dims(
                format!("{} features", self.dim()),
                format!("{}", scaled.len()),
            ));
        }
        out.clear();
        out.extend(scaled.iter().enumerate().map(|(i, &v)| {
            let span = self.maxs[i] - self.mins[i];
            if span <= 0.0 {
                self.mins[i]
            } else {
                self.mins[i] + v * span
            }
        }));
        Ok(())
    }

    /// [`MinMaxScaler::inverse_into`] writing into a pre-sized slice
    /// (a matrix row, for batched inference). Bitwise identical per
    /// element.
    ///
    /// # Errors
    ///
    /// Returns [`AnnError::DimensionMismatch`] when either slice has
    /// the wrong feature count.
    pub fn inverse_slice(&self, scaled: &[f64], out: &mut [f64]) -> Result<(), AnnError> {
        if scaled.len() != self.dim() || out.len() != self.dim() {
            return Err(AnnError::dims(
                format!("{} features", self.dim()),
                format!("{} in / {} out", scaled.len(), out.len()),
            ));
        }
        for (i, (o, &v)) in out.iter_mut().zip(scaled).enumerate() {
            let span = self.maxs[i] - self.mins[i];
            *o = if span <= 0.0 {
                self.mins[i]
            } else {
                self.mins[i] + v * span
            };
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let data = vec![vec![0.0, 10.0], vec![4.0, 20.0], vec![2.0, 15.0]];
        let s = MinMaxScaler::fit(&data).unwrap();
        let t = s.transform(&[2.0, 15.0]).unwrap();
        assert!((t[0] - 0.5).abs() < 1e-12);
        assert!((t[1] - 0.5).abs() < 1e-12);
        let back = s.inverse(&t).unwrap();
        assert!((back[0] - 2.0).abs() < 1e-12);
        assert!((back[1] - 15.0).abs() < 1e-12);
    }

    #[test]
    fn clamps_out_of_range_queries() {
        let s = MinMaxScaler::fit(&[vec![0.0], vec![1.0]]).unwrap();
        assert_eq!(s.transform(&[5.0]).unwrap()[0], 1.0);
        assert_eq!(s.transform(&[-5.0]).unwrap()[0], 0.0);
    }

    #[test]
    fn constant_features_map_to_half() {
        let s = MinMaxScaler::fit(&[vec![7.0], vec![7.0]]).unwrap();
        assert_eq!(s.transform(&[7.0]).unwrap()[0], 0.5);
        assert_eq!(s.inverse(&[0.9]).unwrap()[0], 7.0);
    }

    #[test]
    fn slice_variants_are_bitwise_vec_variants() {
        let data = vec![vec![0.0, 10.0, 3.0], vec![4.0, 20.0, 3.0]];
        let s = MinMaxScaler::fit(&data).unwrap();
        let sample = [1.7, 12.5, 3.0];
        let mut buf = [0.0; 3];
        s.transform_slice(&sample, &mut buf).unwrap();
        assert_eq!(buf.to_vec(), s.transform(&sample).unwrap());
        let mut back = [0.0; 3];
        s.inverse_slice(&buf, &mut back).unwrap();
        assert_eq!(back.to_vec(), s.inverse(&buf).unwrap());
        assert!(s.transform_slice(&sample[..2], &mut buf).is_err());
        assert!(s.inverse_slice(&buf, &mut back[..1]).is_err());
    }

    #[test]
    fn fit_matrix_is_bitwise_fit() {
        use crate::matrix::Matrix;
        let data = vec![
            vec![0.0, 10.0, -3.5],
            vec![4.0, 20.0, 2.25],
            vec![2.0, 15.0, 0.0],
        ];
        let a = MinMaxScaler::fit(&data).unwrap();
        let b = MinMaxScaler::fit_matrix(&Matrix::from_rows(&data).unwrap()).unwrap();
        assert_eq!(a, b);
        assert!(MinMaxScaler::fit_matrix(&Matrix::zeros(0, 3)).is_err());
        assert!(MinMaxScaler::fit_matrix(&Matrix::from_rows(&[vec![f64::NAN]]).unwrap()).is_err());
    }

    #[test]
    fn validation() {
        assert!(MinMaxScaler::fit(&[]).is_err());
        assert!(MinMaxScaler::fit(&[vec![1.0], vec![1.0, 2.0]]).is_err());
        assert!(MinMaxScaler::fit(&[vec![f64::NAN]]).is_err());
        let s = MinMaxScaler::fit(&[vec![0.0, 1.0]]).unwrap();
        assert!(s.transform(&[1.0]).is_err());
        assert!(s.inverse(&[1.0, 2.0, 3.0]).is_err());
    }
}
