//! Restricted Boltzmann machine with CD-1 (one-step contrastive
//! divergence) training — the unsupervised layers of the paper's DBN
//! (Fig. 6, Eq. 20–21).

use helio_common::rng::DetRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::error::AnnError;
use crate::matrix::{sigmoid, Matrix};

/// A restricted Boltzmann machine with `visible × hidden` weights.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Rbm {
    /// Weights, `hidden × visible` (row `h` holds the weights into
    /// hidden unit `h`).
    weights: Matrix,
    hidden_bias: Vec<f64>,
    visible_bias: Vec<f64>,
}

impl Rbm {
    /// Creates an RBM with small random weights.
    pub fn new(visible: usize, hidden: usize, rng: &mut DetRng) -> Self {
        Self {
            weights: Matrix::random(hidden, visible, 0.1, rng),
            hidden_bias: vec![0.0; hidden],
            visible_bias: vec![0.0; visible],
        }
    }

    /// Number of visible units.
    pub fn visible(&self) -> usize {
        self.visible_bias.len()
    }

    /// Number of hidden units.
    pub fn hidden(&self) -> usize {
        self.hidden_bias.len()
    }

    /// The learned weights (`hidden × visible`) — handed to the BP
    /// network during DBN assembly.
    pub fn weights(&self) -> &Matrix {
        &self.weights
    }

    /// The learned hidden biases.
    pub fn hidden_bias(&self) -> &[f64] {
        &self.hidden_bias
    }

    /// Hidden activation probabilities `P(h=1 | v)` (Eq. 21's sigmoid
    /// form).
    ///
    /// # Errors
    ///
    /// Returns [`AnnError::DimensionMismatch`] for wrong input sizes.
    pub fn hidden_probs(&self, visible: &[f64]) -> Result<Vec<f64>, AnnError> {
        let mut act = self.weights.matvec(visible)?;
        for (a, b) in act.iter_mut().zip(&self.hidden_bias) {
            *a = sigmoid(*a + b);
        }
        Ok(act)
    }

    /// [`Rbm::hidden_probs`] over a batch of visible vectors as one
    /// blocked matrix product — the feature-extraction step that feeds
    /// each pre-trained RBM's activations to the next layer. Bitwise
    /// identical to mapping [`Rbm::hidden_probs`] per sample.
    ///
    /// # Errors
    ///
    /// Returns [`AnnError::DimensionMismatch`] for ragged or
    /// wrong-width inputs.
    pub fn hidden_probs_batch(&self, visibles: &[Vec<f64>]) -> Result<Vec<Vec<f64>>, AnnError> {
        if visibles.is_empty() {
            return Ok(Vec::new());
        }
        let v = Matrix::from_rows(visibles)?;
        let mut z = v.matmul_bt(&self.weights)?;
        for r in 0..z.rows() {
            for (c, b) in self.hidden_bias.iter().enumerate() {
                z.set(r, c, sigmoid(z.get(r, c) + b));
            }
        }
        Ok((0..z.rows()).map(|r| z.row(r).to_vec()).collect())
    }

    /// Visible reconstruction probabilities `P(v=1 | h)`.
    ///
    /// # Errors
    ///
    /// Returns [`AnnError::DimensionMismatch`] for wrong input sizes.
    pub fn visible_probs(&self, hidden: &[f64]) -> Result<Vec<f64>, AnnError> {
        let mut act = self.weights.matvec_t(hidden)?;
        for (a, b) in act.iter_mut().zip(&self.visible_bias) {
            *a = sigmoid(*a + b);
        }
        Ok(act)
    }

    /// One CD-1 update on a single sample with learning rate `lr`;
    /// returns the reconstruction error (squared distance).
    ///
    /// # Errors
    ///
    /// Returns [`AnnError::DimensionMismatch`] for wrong input sizes.
    pub fn cd1_step(
        &mut self,
        visible: &[f64],
        lr: f64,
        rng: &mut DetRng,
    ) -> Result<f64, AnnError> {
        // Positive phase.
        let h_pos = self.hidden_probs(visible)?;
        // Sample hidden states.
        let h_sample: Vec<f64> = h_pos
            .iter()
            .map(|&p| if rng.gen::<f64>() < p { 1.0 } else { 0.0 })
            .collect();
        // Negative phase: reconstruct and re-infer.
        let v_neg = self.visible_probs(&h_sample)?;
        let h_neg = self.hidden_probs(&v_neg)?;
        // Weight update: lr · (h⁺ vᵀ − h⁻ v̂ᵀ).
        self.weights.rank1_update(&h_pos, visible, lr)?;
        self.weights.rank1_update(&h_neg, &v_neg, -lr)?;
        for (b, (p, n)) in self.hidden_bias.iter_mut().zip(h_pos.iter().zip(&h_neg)) {
            *b += lr * (p - n);
        }
        for (b, (p, n)) in self.visible_bias.iter_mut().zip(visible.iter().zip(&v_neg)) {
            *b += lr * (p - n);
        }
        Ok(visible
            .iter()
            .zip(&v_neg)
            .map(|(a, b)| (a - b) * (a - b))
            .sum())
    }

    /// Trains on a data set for `epochs` sweeps; returns the mean
    /// reconstruction error of the final epoch.
    ///
    /// # Errors
    ///
    /// Returns [`AnnError::BadTrainingSet`] for an empty set and
    /// propagates dimension mismatches.
    pub fn train(
        &mut self,
        samples: &[Vec<f64>],
        epochs: usize,
        lr: f64,
        rng: &mut DetRng,
    ) -> Result<f64, AnnError> {
        if samples.is_empty() {
            return Err(AnnError::BadTrainingSet("no samples for RBM".into()));
        }
        let mut last = 0.0;
        for _ in 0..epochs {
            last = 0.0;
            for s in samples {
                last += self.cd1_step(s, lr, rng)?;
            }
            last /= samples.len() as f64;
        }
        Ok(last)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use helio_common::rng::seeded;

    /// Two binary prototype patterns the RBM should learn to
    /// reconstruct.
    fn patterns() -> Vec<Vec<f64>> {
        let a = vec![1.0, 1.0, 1.0, 0.0, 0.0, 0.0];
        let b = vec![0.0, 0.0, 0.0, 1.0, 1.0, 1.0];
        let mut out = Vec::new();
        for _ in 0..20 {
            out.push(a.clone());
            out.push(b.clone());
        }
        out
    }

    #[test]
    fn training_reduces_reconstruction_error() {
        let mut rng = seeded(1);
        let mut rbm = Rbm::new(6, 4, &mut rng);
        let data = patterns();
        let before = rbm.train(&data, 1, 0.2, &mut rng).unwrap();
        let after = rbm.train(&data, 60, 0.2, &mut rng).unwrap();
        assert!(
            after < 0.5 * before,
            "reconstruction error should drop: {before} -> {after}"
        );
        assert!(after < 0.3, "final error {after} too high");
    }

    #[test]
    fn learned_rbm_separates_patterns() {
        let mut rng = seeded(2);
        let mut rbm = Rbm::new(6, 4, &mut rng);
        rbm.train(&patterns(), 80, 0.2, &mut rng).unwrap();
        let ha = rbm.hidden_probs(&[1.0, 1.0, 1.0, 0.0, 0.0, 0.0]).unwrap();
        let hb = rbm.hidden_probs(&[0.0, 0.0, 0.0, 1.0, 1.0, 1.0]).unwrap();
        let dist: f64 = ha
            .iter()
            .zip(&hb)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        assert!(dist > 0.5, "hidden codes too close: {dist}");
    }

    #[test]
    fn probabilities_stay_in_unit_interval() {
        let mut rng = seeded(3);
        let rbm = Rbm::new(5, 3, &mut rng);
        let h = rbm.hidden_probs(&[0.2, 0.9, 0.1, 0.5, 0.7]).unwrap();
        assert!(h.iter().all(|&p| (0.0..=1.0).contains(&p)));
        let v = rbm.visible_probs(&h).unwrap();
        assert!(v.iter().all(|&p| (0.0..=1.0).contains(&p)));
        assert_eq!(h.len(), 3);
        assert_eq!(v.len(), 5);
    }

    #[test]
    fn dimension_checks() {
        let mut rng = seeded(4);
        let mut rbm = Rbm::new(5, 3, &mut rng);
        assert!(rbm.hidden_probs(&[0.0; 4]).is_err());
        assert!(rbm.visible_probs(&[0.0; 5]).is_err());
        assert!(rbm.cd1_step(&[0.0; 2], 0.1, &mut rng).is_err());
        assert!(rbm.train(&[], 1, 0.1, &mut rng).is_err());
    }

    #[test]
    fn hidden_probs_batch_is_bitwise_per_sample() {
        let mut rng = seeded(5);
        let rbm = Rbm::new(6, 4, &mut rng);
        let data = patterns();
        let batch = rbm.hidden_probs_batch(&data).unwrap();
        for (v, h) in data.iter().zip(&batch) {
            assert_eq!(h, &rbm.hidden_probs(v).unwrap());
        }
        assert!(rbm.hidden_probs_batch(&[vec![0.0; 3]]).is_err());
        assert!(rbm.hidden_probs_batch(&[]).unwrap().is_empty());
    }

    #[test]
    fn training_is_deterministic() {
        let data = patterns();
        let run = || {
            let mut rng = seeded(9);
            let mut rbm = Rbm::new(6, 4, &mut rng);
            rbm.train(&data, 10, 0.2, &mut rng).unwrap();
            rbm
        };
        assert_eq!(run(), run());
    }
}
