//! Restricted Boltzmann machine with CD-1 (one-step contrastive
//! divergence) training — the unsupervised layers of the paper's DBN
//! (Fig. 6, Eq. 20–21).

use helio_common::rng::DetRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::error::AnnError;
use crate::matrix::{axpy_diff, sigmoid_bias_into, Matrix};

/// Reusable buffers for [`Rbm::cd1_step_into`]: the four intermediate
/// vectors of one CD-1 step. Construct once, thread through every step
/// of a training run, and the whole run stops allocating after the
/// first sample (the trainer's zero-alloc gate relies on this).
#[derive(Debug, Default)]
pub struct RbmTrainScratch {
    h_pos: Vec<f64>,
    h_sample: Vec<f64>,
    v_neg: Vec<f64>,
    h_neg: Vec<f64>,
}

/// A restricted Boltzmann machine with `visible × hidden` weights.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Rbm {
    /// Weights, `hidden × visible` (row `h` holds the weights into
    /// hidden unit `h`).
    weights: Matrix,
    hidden_bias: Vec<f64>,
    visible_bias: Vec<f64>,
}

impl Rbm {
    /// Creates an RBM with small random weights.
    pub fn new(visible: usize, hidden: usize, rng: &mut DetRng) -> Self {
        Self {
            weights: Matrix::random(hidden, visible, 0.1, rng),
            hidden_bias: vec![0.0; hidden],
            visible_bias: vec![0.0; visible],
        }
    }

    /// Number of visible units.
    pub fn visible(&self) -> usize {
        self.visible_bias.len()
    }

    /// Number of hidden units.
    pub fn hidden(&self) -> usize {
        self.hidden_bias.len()
    }

    /// The learned weights (`hidden × visible`) — handed to the BP
    /// network during DBN assembly.
    pub fn weights(&self) -> &Matrix {
        &self.weights
    }

    /// The learned hidden biases.
    pub fn hidden_bias(&self) -> &[f64] {
        &self.hidden_bias
    }

    /// Hidden activation probabilities `P(h=1 | v)` (Eq. 21's sigmoid
    /// form).
    ///
    /// # Errors
    ///
    /// Returns [`AnnError::DimensionMismatch`] for wrong input sizes.
    pub fn hidden_probs(&self, visible: &[f64]) -> Result<Vec<f64>, AnnError> {
        let mut act = Vec::with_capacity(self.hidden());
        self.hidden_probs_into(visible, &mut act)?;
        Ok(act)
    }

    /// [`Rbm::hidden_probs`] writing into a reused buffer.
    ///
    /// # Errors
    ///
    /// Returns [`AnnError::DimensionMismatch`] for wrong input sizes.
    pub fn hidden_probs_into(&self, visible: &[f64], out: &mut Vec<f64>) -> Result<(), AnnError> {
        self.weights.matvec_into(visible, out)?;
        sigmoid_bias_into(out, &self.hidden_bias);
        Ok(())
    }

    /// [`Rbm::hidden_probs`] over a batch of visible vectors as one
    /// blocked matrix product — the feature-extraction step that feeds
    /// each pre-trained RBM's activations to the next layer. Bitwise
    /// identical to mapping [`Rbm::hidden_probs`] per sample.
    ///
    /// # Errors
    ///
    /// Returns [`AnnError::DimensionMismatch`] for ragged or
    /// wrong-width inputs.
    pub fn hidden_probs_batch(&self, visibles: &[Vec<f64>]) -> Result<Vec<Vec<f64>>, AnnError> {
        if visibles.is_empty() {
            return Ok(Vec::new());
        }
        let z = self.hidden_probs_batch_matrix(&Matrix::from_rows(visibles)?)?;
        Ok((0..z.rows()).map(|r| z.row(r).to_vec()).collect())
    }

    /// [`Rbm::hidden_probs_batch`] on a sample matrix (one sample per
    /// row), staying `Matrix`-native for the allocation-lean training
    /// pipeline.
    ///
    /// # Errors
    ///
    /// Returns [`AnnError::DimensionMismatch`] for wrong-width inputs.
    pub fn hidden_probs_batch_matrix(&self, visibles: &Matrix) -> Result<Matrix, AnnError> {
        let mut z = visibles.matmul_bt(&self.weights)?;
        for r in 0..z.rows() {
            sigmoid_bias_into(z.row_mut(r), &self.hidden_bias);
        }
        Ok(z)
    }

    /// Visible reconstruction probabilities `P(v=1 | h)`.
    ///
    /// # Errors
    ///
    /// Returns [`AnnError::DimensionMismatch`] for wrong input sizes.
    pub fn visible_probs(&self, hidden: &[f64]) -> Result<Vec<f64>, AnnError> {
        let mut act = Vec::with_capacity(self.visible());
        self.visible_probs_into(hidden, &mut act)?;
        Ok(act)
    }

    /// [`Rbm::visible_probs`] writing into a reused buffer.
    ///
    /// # Errors
    ///
    /// Returns [`AnnError::DimensionMismatch`] for wrong input sizes.
    pub fn visible_probs_into(&self, hidden: &[f64], out: &mut Vec<f64>) -> Result<(), AnnError> {
        self.weights.matvec_t_into(hidden, out)?;
        sigmoid_bias_into(out, &self.visible_bias);
        Ok(())
    }

    /// One CD-1 update on a single sample with learning rate `lr`;
    /// returns the reconstruction error (squared distance).
    ///
    /// # Errors
    ///
    /// Returns [`AnnError::DimensionMismatch`] for wrong input sizes.
    pub fn cd1_step(
        &mut self,
        visible: &[f64],
        lr: f64,
        rng: &mut DetRng,
    ) -> Result<f64, AnnError> {
        self.cd1_step_into(visible, lr, rng, &mut RbmTrainScratch::default())
    }

    /// [`Rbm::cd1_step`] through caller-provided scratch: identical
    /// update and RNG stream, zero heap allocation once the buffers
    /// have grown to this RBM's shape.
    ///
    /// # Errors
    ///
    /// Returns [`AnnError::DimensionMismatch`] for wrong input sizes.
    pub fn cd1_step_into(
        &mut self,
        visible: &[f64],
        lr: f64,
        rng: &mut DetRng,
        scratch: &mut RbmTrainScratch,
    ) -> Result<f64, AnnError> {
        // Positive phase.
        self.hidden_probs_into(visible, &mut scratch.h_pos)?;
        // Sample hidden states (one RNG draw per hidden unit, in
        // order — the stream the fixed-seed golden weights pin).
        scratch.h_sample.clear();
        scratch.h_sample.extend(scratch.h_pos.iter().map(|&p| {
            if rng.gen::<f64>() < p {
                1.0
            } else {
                0.0
            }
        }));
        // Negative phase: reconstruct and re-infer.
        self.visible_probs_into(&scratch.h_sample, &mut scratch.v_neg)?;
        self.hidden_probs_into(&scratch.v_neg, &mut scratch.h_neg)?;
        // Weight update: lr · (h⁺ vᵀ − h⁻ v̂ᵀ), both phases fused into
        // one sweep over the weight tiles.
        self.weights.rank1_pair_update(
            &scratch.h_pos,
            visible,
            lr,
            &scratch.h_neg,
            &scratch.v_neg,
            -lr,
        )?;
        axpy_diff(&mut self.hidden_bias, lr, &scratch.h_pos, &scratch.h_neg);
        axpy_diff(&mut self.visible_bias, lr, visible, &scratch.v_neg);
        Ok(visible
            .iter()
            .zip(&scratch.v_neg)
            .map(|(a, b)| (a - b) * (a - b))
            .sum())
    }

    /// Trains on a data set for `epochs` sweeps; returns the mean
    /// reconstruction error of the final epoch.
    ///
    /// # Errors
    ///
    /// Returns [`AnnError::BadTrainingSet`] for an empty set and
    /// propagates dimension mismatches.
    pub fn train(
        &mut self,
        samples: &[Vec<f64>],
        epochs: usize,
        lr: f64,
        rng: &mut DetRng,
    ) -> Result<f64, AnnError> {
        self.train_rows(samples.len(), |i| &samples[i], epochs, lr, rng)
    }

    /// [`Rbm::train`] on a sample matrix (one sample per row): the
    /// same sweep order and RNG stream, without a `Vec<Vec<f64>>`
    /// copy of the data.
    ///
    /// # Errors
    ///
    /// Returns [`AnnError::BadTrainingSet`] for an empty set and
    /// propagates dimension mismatches.
    pub fn train_matrix(
        &mut self,
        samples: &Matrix,
        epochs: usize,
        lr: f64,
        rng: &mut DetRng,
    ) -> Result<f64, AnnError> {
        self.train_rows(samples.rows(), |i| samples.row(i), epochs, lr, rng)
    }

    /// Shared epoch loop over an indexed sample accessor. One scratch
    /// set serves the whole run, so after the first sample no step
    /// allocates.
    fn train_rows<'a>(
        &mut self,
        n: usize,
        row: impl Fn(usize) -> &'a [f64],
        epochs: usize,
        lr: f64,
        rng: &mut DetRng,
    ) -> Result<f64, AnnError> {
        if n == 0 {
            return Err(AnnError::BadTrainingSet("no samples for RBM".into()));
        }
        let mut scratch = RbmTrainScratch::default();
        let mut last = 0.0;
        for _ in 0..epochs {
            last = 0.0;
            for i in 0..n {
                last += self.cd1_step_into(row(i), lr, rng, &mut scratch)?;
            }
            last /= n as f64;
        }
        Ok(last)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use helio_common::rng::seeded;

    /// Two binary prototype patterns the RBM should learn to
    /// reconstruct.
    fn patterns() -> Vec<Vec<f64>> {
        let a = vec![1.0, 1.0, 1.0, 0.0, 0.0, 0.0];
        let b = vec![0.0, 0.0, 0.0, 1.0, 1.0, 1.0];
        let mut out = Vec::new();
        for _ in 0..20 {
            out.push(a.clone());
            out.push(b.clone());
        }
        out
    }

    #[test]
    fn training_reduces_reconstruction_error() {
        let mut rng = seeded(1);
        let mut rbm = Rbm::new(6, 4, &mut rng);
        let data = patterns();
        let before = rbm.train(&data, 1, 0.2, &mut rng).unwrap();
        let after = rbm.train(&data, 60, 0.2, &mut rng).unwrap();
        assert!(
            after < 0.5 * before,
            "reconstruction error should drop: {before} -> {after}"
        );
        assert!(after < 0.3, "final error {after} too high");
    }

    #[test]
    fn learned_rbm_separates_patterns() {
        let mut rng = seeded(2);
        let mut rbm = Rbm::new(6, 4, &mut rng);
        rbm.train(&patterns(), 80, 0.2, &mut rng).unwrap();
        let ha = rbm.hidden_probs(&[1.0, 1.0, 1.0, 0.0, 0.0, 0.0]).unwrap();
        let hb = rbm.hidden_probs(&[0.0, 0.0, 0.0, 1.0, 1.0, 1.0]).unwrap();
        let dist: f64 = ha
            .iter()
            .zip(&hb)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        assert!(dist > 0.5, "hidden codes too close: {dist}");
    }

    #[test]
    fn probabilities_stay_in_unit_interval() {
        let mut rng = seeded(3);
        let rbm = Rbm::new(5, 3, &mut rng);
        let h = rbm.hidden_probs(&[0.2, 0.9, 0.1, 0.5, 0.7]).unwrap();
        assert!(h.iter().all(|&p| (0.0..=1.0).contains(&p)));
        let v = rbm.visible_probs(&h).unwrap();
        assert!(v.iter().all(|&p| (0.0..=1.0).contains(&p)));
        assert_eq!(h.len(), 3);
        assert_eq!(v.len(), 5);
    }

    #[test]
    fn dimension_checks() {
        let mut rng = seeded(4);
        let mut rbm = Rbm::new(5, 3, &mut rng);
        assert!(rbm.hidden_probs(&[0.0; 4]).is_err());
        assert!(rbm.visible_probs(&[0.0; 5]).is_err());
        assert!(rbm.cd1_step(&[0.0; 2], 0.1, &mut rng).is_err());
        assert!(rbm.train(&[], 1, 0.1, &mut rng).is_err());
        assert!(rbm
            .train_matrix(&Matrix::zeros(0, 5), 1, 0.1, &mut rng)
            .is_err());
    }

    #[test]
    fn hidden_probs_batch_is_bitwise_per_sample() {
        let mut rng = seeded(5);
        let rbm = Rbm::new(6, 4, &mut rng);
        let data = patterns();
        let batch = rbm.hidden_probs_batch(&data).unwrap();
        for (v, h) in data.iter().zip(&batch) {
            assert_eq!(h, &rbm.hidden_probs(v).unwrap());
        }
        assert!(rbm.hidden_probs_batch(&[vec![0.0; 3]]).is_err());
        assert!(rbm.hidden_probs_batch(&[]).unwrap().is_empty());
    }

    #[test]
    fn training_is_deterministic() {
        let data = patterns();
        let run = || {
            let mut rng = seeded(9);
            let mut rbm = Rbm::new(6, 4, &mut rng);
            rbm.train(&data, 10, 0.2, &mut rng).unwrap();
            rbm
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn train_matrix_is_bitwise_train() {
        let data = patterns();
        let m = Matrix::from_rows(&data).unwrap();
        let mut rng_a = seeded(9);
        let mut a = Rbm::new(6, 4, &mut rng_a);
        a.train(&data, 10, 0.2, &mut rng_a).unwrap();
        let mut rng_b = seeded(9);
        let mut b = Rbm::new(6, 4, &mut rng_b);
        b.train_matrix(&m, 10, 0.2, &mut rng_b).unwrap();
        assert_eq!(a, b);
    }
}
