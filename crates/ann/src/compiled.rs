//! The compiled single-sample decision path: a trained [`Dbn`]
//! flattened into a packed, quantizable artifact whose forward pass is
//! tuned for the online planner's one-observation-per-period matvec —
//! the way `matmul_bt` packs batch lanes for throughput, this packs
//! output lanes for latency.
//!
//! ## What compilation does
//!
//! * **Bakes the input scaler's affine transform** into the network at
//!   compile time. The `MinMaxScaler` transform is `clamp((v - min) /
//!   span, 0, 1)` per feature (constant features map to 0.5); dropping
//!   the clamp leaves a per-feature affine `v·a + c` that folds into
//!   the first layer: the f32 tier folds it straight into the layer-0
//!   weights and biases (`W₀' = W₀·diag(a)`, `b₀' = b₀ + W₀·c`), the
//!   int8 tier keeps it as packed per-feature coefficients applied
//!   while converting the input to f32, so quantization always sees
//!   the well-conditioned `[0, 1]`-activation weights rather than
//!   weights scaled by `1/span`.
//! * **Packs weights transposed and lane-padded**: each layer's
//!   `out × in` matrix is stored tile-major as `⌈out/16⌉` tiles of
//!   `in × 16` f32 (or i8) blocks, so the single-sample forward
//!   broadcasts one input activation and fans it across 16 output
//!   lanes with a contiguous load — no gathers, no transposes at run
//!   time. An AVX-512 kernel and a scalar fallback share the layout;
//!   the AVX-512 requirement is detected at run time per call.
//! * **Optionally quantizes to int8 with per-row scales**: each output
//!   row stores `round(w / s)` with `s = max|row| / 127`; the forward
//!   accumulates the integer weights in f32 and applies the row scale
//!   once per row, after the reduction.
//!
//! ## Tolerance contract — this path is *not* bit-identical
//!
//! [`Dbn::predict_into`] remains the full-precision f64 reference and
//! the only path behind the byte-identity golden gates. The compiled
//! forward differs from it in three documented ways: the input clamp
//! is gone (inputs outside the fitted range extrapolate linearly
//! instead of saturating), arithmetic is f32 (plus int8 weight
//! rounding on the quantized tier), and the sigmoid uses a polynomial
//! `exp` approximation (absolute error ≲ 4e-6 on the f32 tier). For
//! inputs **within the scaler's fitted range**, per-element output
//! error is bounded by [`CompiledDbn::tolerance`] in units of
//! `max(1, output span)` — property-tested against the f64 reference
//! across random trained networks in `tests/compiled_props.rs`. End to
//! end, the compiled planner is gated by DMR-regression bounds on the
//! 21 golden scenarios (`helio-bench/tests/golden_compiled.rs`), not
//! by bit-identity.

use crate::dbn::Dbn;
use crate::error::AnnError;

/// Output lanes per packed weight tile (one AVX-512 f32 register).
const LANES: usize = 16;

/// Precision tier of a [`CompiledDbn`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompiledTier {
    /// f32 weights and activations; the scaler affine is folded into
    /// the first layer's weights and biases.
    F32,
    /// int8 weights with one f32 scale per output row; activations in
    /// f32, the scaler affine applied as packed per-feature input
    /// coefficients so quantization sees `[0, 1]`-activation weights.
    Int8,
}

/// Packed, transposed weights of one compiled layer.
#[derive(Debug, Clone)]
enum PackedWeights {
    /// `tiles × in × 16` f32 blocks, lane-padded with zeros.
    F32(Vec<f32>),
    /// `tiles × in × 16` i8 blocks plus one dequantization scale per
    /// padded output row (padding rows carry scale 0).
    Int8 { q: Vec<i8>, scale: Vec<f32> },
}

/// One compiled layer: packed weights, lane-padded bias, sigmoid.
#[derive(Debug, Clone)]
struct CompiledLayer {
    in_dim: usize,
    tiles: usize,
    weights: PackedWeights,
    /// Lane-padded bias (`tiles × 16`, padding zeroed).
    bias: Vec<f32>,
}

/// Reusable ping-pong activation buffers for
/// [`CompiledDbn::forward_into`]. [`CompiledDbn::make_scratch`] returns
/// one pre-sized to the network, making even the first forward call
/// allocation-free; a `Default` scratch grows to size on first use.
#[derive(Debug, Default, Clone)]
pub struct CompiledScratch {
    a: Vec<f32>,
    b: Vec<f32>,
}

/// Layer-0 partial sums for a run-constant input prefix, built once per
/// scheduling period by [`CompiledDbn::fold_prefix`] and consumed by
/// [`CompiledDbn::forward_from_fold`] — the per-decision forward then
/// touches only the varying features of layer 0.
///
/// Both dispatch paths' accumulation rules are pre-folded so the
/// partials are **bit-identical** to running the full forward: the
/// resident AVX-512 kernel's four interleaved FMA accumulators
/// (feature `t` lands in accumulator `t mod 4` over the blocked body,
/// the tail in accumulator 0, the f32 bias seeding accumulator 0) and
/// the scalar kernel's single ascending chain per output row (bias
/// applied after the reduction).
#[derive(Debug, Clone)]
pub struct Layer0Fold {
    /// Number of leading features folded in.
    prefix: usize,
    /// The resident vector kernel's four 16-lane partial accumulators
    /// (present only for resident artifacts).
    simd: Option<[[f32; LANES]; 4]>,
    /// The scalar kernel's partial accumulator per padded output row
    /// (`tiles × 16` of layer 0).
    scalar: Vec<f32>,
}

impl Layer0Fold {
    /// Number of leading features folded into the partial sums.
    pub fn prefix(&self) -> usize {
        self.prefix
    }
}

/// A [`Dbn`] compiled for single-sample inference: baked scaler
/// affine, packed transposed weight tiles, optional int8 quantization.
/// See the module docs for the layout and the tolerance contract.
#[derive(Debug, Clone)]
pub struct CompiledDbn {
    /// Per-feature input coefficients applied during f64 → f32
    /// conversion: identity on the f32 tier (the affine lives in the
    /// layer-0 weights), the scaler affine on the int8 tier.
    prep_a: Vec<f32>,
    prep_c: Vec<f32>,
    /// The same coefficients in f64, lane-padded to a multiple of 16
    /// with zeros — the vectorized prep fuses the affine into the
    /// f64 → f32 conversion with one rounding.
    prep_a64: Vec<f64>,
    prep_c64: Vec<f64>,
    layers: Vec<CompiledLayer>,
    /// Output inverse-scale affine: `y = min + u · span` (span clamped
    /// to 0 for constant outputs, reproducing the reference exactly).
    /// Both vectors are lane-padded to a multiple of 8 with zeros for
    /// the vectorized output stage; indices past `output_dim` are
    /// never surfaced.
    out_min: Vec<f64>,
    out_span: Vec<f64>,
    input_dim: usize,
    output_dim: usize,
    /// Widest lane-padded activation, for scratch sizing.
    width: usize,
    /// Whether every layer fits one 16-lane tile (and the input does
    /// too) — the planner-sized case where the vector forward keeps
    /// the activations in a single register end to end.
    resident: bool,
    /// AVX-512 availability, probed once at compile time — the
    /// per-call feature macro costs an atomic load on the hottest
    /// path. Artifacts never cross hosts (compiled from an in-memory
    /// [`Dbn`], not serialized), so the cached probe stays valid.
    use_simd: bool,
    tier: CompiledTier,
}

impl CompiledDbn {
    /// Compiles a trained network into the packed single-sample form.
    ///
    /// # Errors
    ///
    /// Returns [`AnnError::BadConfig`] when the network holds
    /// non-finite weights or biases (nothing sane can be baked or
    /// quantized from them).
    pub fn compile(dbn: &Dbn, tier: CompiledTier) -> Result<Self, AnnError> {
        let input_scaler = dbn.input_scaler();
        let output_scaler = dbn.output_scaler();
        let net = dbn.network();
        let input_dim = input_scaler.dim();
        let output_dim = output_scaler.dim();

        // The de-clamped MinMax transform as a per-feature affine
        // `v·a + c`; constant features (span <= 0) pin the activation
        // to the reference's 0.5.
        let mut aff_a = vec![0.0f64; input_dim];
        let mut aff_c = vec![0.0f64; input_dim];
        for (t, (a, c)) in aff_a.iter_mut().zip(aff_c.iter_mut()).enumerate() {
            let min = input_scaler.mins()[t];
            let span = input_scaler.maxs()[t] - min;
            if span > 0.0 {
                *a = 1.0 / span;
                *c = -min / span;
            } else {
                *a = 0.0;
                *c = 0.5;
            }
        }

        let mut layers = Vec::with_capacity(net.layer_count());
        // The scratch is wide enough for the lane-padded input so the
        // vectorized prep can store full chunks.
        let input_pad = input_dim.div_ceil(LANES) * LANES;
        let mut width = input_pad;
        for li in 0..net.layer_count() {
            let (w, b) = net.layer(li)?;
            let (rows, cols) = (w.rows(), w.cols());
            // f64 staging of this layer's effective weights and bias.
            let mut staged = vec![0.0f64; rows * cols];
            let mut bias: Vec<f64> = b.to_vec();
            for o in 0..rows {
                let row = w.row(o);
                let out_row = &mut staged[o * cols..(o + 1) * cols];
                if li == 0 && tier == CompiledTier::F32 {
                    // Fold the input affine into the first layer.
                    for t in 0..cols {
                        out_row[t] = row[t] * aff_a[t];
                        bias[o] += row[t] * aff_c[t];
                    }
                } else {
                    out_row.copy_from_slice(row);
                }
            }
            if staged.iter().chain(bias.iter()).any(|v| !v.is_finite()) {
                return Err(AnnError::BadConfig(format!(
                    "layer {li} holds non-finite weights; refusing to compile"
                )));
            }

            let tiles = rows.div_ceil(LANES);
            let mut packed_bias = vec![0.0f32; tiles * LANES];
            for (o, &bv) in bias.iter().enumerate() {
                packed_bias[o] = bv as f32;
            }
            let weights = match tier {
                CompiledTier::F32 => {
                    let mut wt = vec![0.0f32; tiles * cols * LANES];
                    for o in 0..rows {
                        let (tile, lane) = (o / LANES, o % LANES);
                        for t in 0..cols {
                            wt[(tile * cols + t) * LANES + lane] = staged[o * cols + t] as f32;
                        }
                    }
                    PackedWeights::F32(wt)
                }
                CompiledTier::Int8 => {
                    let mut q = vec![0i8; tiles * cols * LANES];
                    let mut scale = vec![0.0f32; tiles * LANES];
                    for o in 0..rows {
                        let row = &staged[o * cols..(o + 1) * cols];
                        let peak = row.iter().fold(0.0f64, |m, v| m.max(v.abs()));
                        let s = if peak > 0.0 { peak / 127.0 } else { 1.0 };
                        scale[o] = s as f32;
                        let (tile, lane) = (o / LANES, o % LANES);
                        for t in 0..cols {
                            let quantized = (row[t] / s).round().clamp(-127.0, 127.0);
                            q[(tile * cols + t) * LANES + lane] = quantized as i8;
                        }
                    }
                    PackedWeights::Int8 { q, scale }
                }
            };
            width = width.max(tiles * LANES);
            layers.push(CompiledLayer {
                in_dim: cols,
                tiles,
                weights,
                bias: packed_bias,
            });
        }

        let (prep_a, prep_c) = match tier {
            CompiledTier::F32 => (vec![1.0f32; input_dim], vec![0.0f32; input_dim]),
            CompiledTier::Int8 => (
                aff_a.iter().map(|&v| v as f32).collect(),
                aff_c.iter().map(|&v| v as f32).collect(),
            ),
        };
        let mut prep_a64 = vec![0.0f64; input_pad];
        let mut prep_c64 = vec![0.0f64; input_pad];
        for t in 0..input_dim {
            match tier {
                CompiledTier::F32 => prep_a64[t] = 1.0,
                CompiledTier::Int8 => {
                    prep_a64[t] = aff_a[t];
                    prep_c64[t] = aff_c[t];
                }
            }
        }
        let out_pad = output_dim.div_ceil(8) * 8;
        let mut out_min = vec![0.0f64; out_pad];
        let mut out_span = vec![0.0f64; out_pad];
        for o in 0..output_dim {
            out_min[o] = output_scaler.mins()[o];
            out_span[o] = (output_scaler.maxs()[o] - output_scaler.mins()[o]).max(0.0);
        }
        let resident = input_dim <= LANES && layers.iter().all(|l| l.tiles == 1);
        #[cfg(target_arch = "x86_64")]
        let use_simd = is_x86_feature_detected!("avx512f");
        #[cfg(not(target_arch = "x86_64"))]
        let use_simd = false;
        Ok(Self {
            prep_a,
            prep_c,
            prep_a64,
            prep_c64,
            layers,
            out_min,
            out_span,
            input_dim,
            output_dim,
            width,
            resident,
            use_simd,
            tier,
        })
    }

    /// The precision tier this artifact was compiled at.
    pub fn tier(&self) -> CompiledTier {
        self.tier
    }

    /// Input dimensionality (matches the source [`Dbn`]).
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Output dimensionality (matches the source [`Dbn`]).
    pub fn output_dim(&self) -> usize {
        self.output_dim
    }

    /// Documented per-element output-error bound versus the f64
    /// reference, in units of `max(1, output span)`, for inputs within
    /// the scaler's fitted range (see the module docs; property-tested
    /// in `tests/compiled_props.rs`).
    pub fn tolerance(&self) -> f64 {
        match self.tier {
            CompiledTier::F32 => 1e-4,
            CompiledTier::Int8 => 0.08,
        }
    }

    /// A scratch pre-sized to this network's widest layer, so the very
    /// first [`CompiledDbn::forward_into`] call allocates nothing.
    pub fn make_scratch(&self) -> CompiledScratch {
        CompiledScratch {
            a: vec![0.0; self.width],
            b: vec![0.0; self.width],
        }
    }

    /// The compiled forward pass: one raw (unscaled) observation in,
    /// the decision vector out — `out` is resized to
    /// [`CompiledDbn::output_dim`] and fully overwritten.
    /// Allocation-free with a [`CompiledDbn::make_scratch`] scratch
    /// and an `out` with capacity for the output width.
    ///
    /// # Errors
    ///
    /// Returns [`AnnError::DimensionMismatch`] for wrong input sizes.
    #[inline]
    pub fn forward_into(
        &self,
        input: &[f64],
        scratch: &mut CompiledScratch,
        out: &mut Vec<f64>,
    ) -> Result<(), AnnError> {
        self.forward_impl(input, scratch, out, true)
    }

    /// [`CompiledDbn::forward_into`] with SIMD dispatch forced off —
    /// exercised by tests so the scalar kernel's tolerance is verified
    /// even on AVX-512 hosts.
    #[doc(hidden)]
    pub fn forward_into_scalar(
        &self,
        input: &[f64],
        scratch: &mut CompiledScratch,
        out: &mut Vec<f64>,
    ) -> Result<(), AnnError> {
        self.forward_impl(input, scratch, out, false)
    }

    /// Folds the first `prefix` features of `input` into layer-0
    /// partial sums — the per-period half of the forward pass. The
    /// scheduler's observation vector starts with the previous period's
    /// solar powers, which are trace-derived and constant across every
    /// decision of a period; folding them once means
    /// [`CompiledDbn::forward_from_fold`] touches only the varying
    /// features (voltages, accumulated DMR) of layer 0.
    ///
    /// Only the first `prefix` elements of `input` are read. Returns
    /// `Ok(None)` for multi-tile artifacts on SIMD hosts — the generic
    /// vector kernel re-tiles the whole layer and a prefix fold cannot
    /// reproduce its reduction order bit for bit, so callers fall back
    /// to the full forward there (planner-sized networks are always
    /// single-tile resident).
    ///
    /// # Errors
    ///
    /// Returns [`AnnError::DimensionMismatch`] when `prefix` exceeds
    /// the input width or `input` is shorter than `prefix`.
    pub fn fold_prefix(&self, input: &[f64], prefix: usize) -> Result<Option<Layer0Fold>, AnnError> {
        if prefix > self.input_dim || input.len() < prefix {
            return Err(AnnError::dims(
                format!("prefix <= {} features, input >= prefix", self.input_dim),
                format!("prefix {prefix}, input {}", input.len()),
            ));
        }
        if self.use_simd && !self.resident {
            return Ok(None);
        }
        let l0 = &self.layers[0];
        // Scalar-path partials: one ascending mul-add chain per output
        // row, exactly `layer_forward_scalar`'s accumulation with the
        // scalar prep (`(v as f32) * a + c`).
        let mut scalar = vec![0.0f32; l0.tiles * LANES];
        for (t, &v) in input.iter().enumerate().take(prefix) {
            let xt = (v as f32) * self.prep_a[t] + self.prep_c[t];
            for tile in 0..l0.tiles {
                let base = tile * l0.in_dim * LANES + t * LANES;
                let row = &mut scalar[tile * LANES..(tile + 1) * LANES];
                match &l0.weights {
                    PackedWeights::F32(wt) => {
                        for (lane, acc) in row.iter_mut().enumerate() {
                            *acc += wt[base + lane] * xt;
                        }
                    }
                    PackedWeights::Int8 { q, .. } => {
                        for (lane, acc) in row.iter_mut().enumerate() {
                            *acc += f32::from(q[base + lane]) * xt;
                        }
                    }
                }
            }
        }
        // Resident vector-path partials: the four interleaved FMA
        // accumulators of `matvec16_f32`/`matvec16_i8`, with the fused
        // prep (`f64 mul_add` ≡ the kernel's `fmadd_pd` per lane) and
        // `f32::mul_add` reproducing `fmadd_ps` bit for bit.
        let simd = if self.resident {
            let mut acc = [[0.0f32; LANES]; 4];
            if matches!(l0.weights, PackedWeights::F32(_)) {
                acc[0].copy_from_slice(&l0.bias[..LANES]);
            }
            let tail_start = 4 * (l0.in_dim / 4);
            for (t, &v) in input.iter().enumerate().take(prefix) {
                let x = v.mul_add(self.prep_a64[t], self.prep_c64[t]) as f32;
                let slot = if t < tail_start { t % 4 } else { 0 };
                let base = t * LANES;
                match &l0.weights {
                    PackedWeights::F32(wt) => {
                        for (lane, a) in acc[slot].iter_mut().enumerate() {
                            *a = wt[base + lane].mul_add(x, *a);
                        }
                    }
                    PackedWeights::Int8 { q, .. } => {
                        for (lane, a) in acc[slot].iter_mut().enumerate() {
                            *a = f32::from(q[base + lane]).mul_add(x, *a);
                        }
                    }
                }
            }
            Some(acc)
        } else {
            None
        };
        Ok(Some(Layer0Fold {
            prefix,
            simd,
            scalar,
        }))
    }

    /// [`CompiledDbn::forward_into`] resuming from a
    /// [`CompiledDbn::fold_prefix`] of the same artifact: layer 0 reads
    /// only features `[fold.prefix(), input_dim)` of `input` (the
    /// folded prefix positions are ignored), every later stage is
    /// unchanged. Bit-identical to the full forward on the same input.
    ///
    /// # Errors
    ///
    /// Returns [`AnnError::DimensionMismatch`] for wrong input sizes or
    /// a fold that does not match this artifact's layout.
    #[inline]
    pub fn forward_from_fold(
        &self,
        fold: &Layer0Fold,
        input: &[f64],
        scratch: &mut CompiledScratch,
        out: &mut Vec<f64>,
    ) -> Result<(), AnnError> {
        self.forward_from_fold_impl(fold, input, scratch, out, true)
    }

    /// [`CompiledDbn::forward_from_fold`] with SIMD dispatch forced off
    /// — the test hook mirroring [`CompiledDbn::forward_into_scalar`].
    #[doc(hidden)]
    pub fn forward_from_fold_scalar(
        &self,
        fold: &Layer0Fold,
        input: &[f64],
        scratch: &mut CompiledScratch,
        out: &mut Vec<f64>,
    ) -> Result<(), AnnError> {
        self.forward_from_fold_impl(fold, input, scratch, out, false)
    }

    fn forward_from_fold_impl(
        &self,
        fold: &Layer0Fold,
        input: &[f64],
        scratch: &mut CompiledScratch,
        out: &mut Vec<f64>,
        allow_simd: bool,
    ) -> Result<(), AnnError> {
        if input.len() != self.input_dim {
            return Err(AnnError::dims(
                format!("{} input features", self.input_dim),
                format!("{}", input.len()),
            ));
        }
        if fold.prefix > self.input_dim || fold.scalar.len() != self.layers[0].tiles * LANES {
            return Err(AnnError::dims(
                format!(
                    "fold over <= {} features with {} partials",
                    self.input_dim,
                    self.layers[0].tiles * LANES
                ),
                format!("prefix {}, {} partials", fold.prefix, fold.scalar.len()),
            ));
        }
        scratch.a.resize(self.width, 0.0);
        scratch.b.resize(self.width, 0.0);
        if out.len() != self.output_dim {
            out.clear();
            out.resize(self.output_dim, 0.0);
        }
        if allow_simd && self.use_simd {
            if self.resident {
                let Some(simd) = &fold.simd else {
                    return Err(AnnError::BadConfig(
                        "fold lacks resident partials for this artifact".into(),
                    ));
                };
                #[cfg(target_arch = "x86_64")]
                // SAFETY: `use_simd` records an avx512f probe from
                // compile time, and `out` was just sized.
                unsafe {
                    kernel::forward_avx512_resident_from_fold(
                        self,
                        simd,
                        fold.prefix,
                        input,
                        out.as_mut_ptr(),
                    );
                }
                return Ok(());
            }
            // Multi-tile SIMD artifacts never hand out a fold
            // (`fold_prefix` returns `None`); serve the full forward.
            return self.forward_impl(input, scratch, out, allow_simd);
        }
        for (t, &v) in input.iter().enumerate().skip(fold.prefix) {
            scratch.a[t] = (v as f32) * self.prep_a[t] + self.prep_c[t];
        }
        kernel::layer0_forward_scalar_from_fold(
            &self.layers[0],
            &fold.scalar,
            fold.prefix,
            &scratch.a,
            &mut scratch.b,
        );
        std::mem::swap(&mut scratch.a, &mut scratch.b);
        for layer in &self.layers[1..] {
            kernel::layer_forward_scalar(layer, &scratch.a, &mut scratch.b);
            std::mem::swap(&mut scratch.a, &mut scratch.b);
        }
        for (o, slot) in out.iter_mut().enumerate() {
            let u = ((scratch.a[o] as f64 - 0.05) / 0.9).clamp(0.0, 1.0);
            *slot = self.out_min[o] + u * self.out_span[o];
        }
        Ok(())
    }

    #[inline]
    fn forward_impl(
        &self,
        input: &[f64],
        scratch: &mut CompiledScratch,
        out: &mut Vec<f64>,
        allow_simd: bool,
    ) -> Result<(), AnnError> {
        if input.len() != self.input_dim {
            return Err(AnnError::dims(
                format!("{} input features", self.input_dim),
                format!("{}", input.len()),
            ));
        }
        scratch.a.resize(self.width, 0.0);
        scratch.b.resize(self.width, 0.0);
        if out.len() != self.output_dim {
            out.clear();
            out.resize(self.output_dim, 0.0);
        }
        // One fused call for the whole network: the input prep, every
        // layer and the output affine inline into a single pass, so
        // activations flow stage to stage without re-dispatching, and
        // the output affine masked-stores straight into `out`.
        if allow_simd && self.use_simd {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: `use_simd` records an avx512f probe from compile
            // time, and `out` was just sized to `output_dim`.
            unsafe {
                if self.resident {
                    kernel::forward_avx512_resident(self, input, scratch, out.as_mut_ptr());
                } else {
                    kernel::forward_avx512(self, input, scratch, out.as_mut_ptr());
                }
            }
            return Ok(());
        }
        for (t, &v) in input.iter().enumerate() {
            scratch.a[t] = (v as f32) * self.prep_a[t] + self.prep_c[t];
        }
        for layer in &self.layers {
            kernel::layer_forward_scalar(layer, &scratch.a, &mut scratch.b);
            std::mem::swap(&mut scratch.a, &mut scratch.b);
        }
        for (o, slot) in out.iter_mut().enumerate() {
            // The reference's output unsqueeze and inverse scale, in
            // f64 on the f32 sigmoid activation.
            let u = ((scratch.a[o] as f64 - 0.05) / 0.9).clamp(0.0, 1.0);
            *slot = self.out_min[o] + u * self.out_span[o];
        }
        Ok(())
    }
}

/// The packed-layout matvec + sigmoid kernels: an AVX-512 path
/// broadcasting one activation across 16 contiguous output lanes per
/// tile, and a scalar fallback over the same layout. Both use the same
/// polynomial-`exp` sigmoid; the vector path fuses multiplies (this is
/// the tolerance-gated path — unlike the training kernels it owes
/// nobody bit-identity).
mod kernel {
    use super::{CompiledLayer, PackedWeights, LANES};

    const LOG2E: f32 = std::f32::consts::LOG2_E;
    const LN2: f32 = std::f32::consts::LN_2;
    /// |z| beyond this, sigmoid is 1 (or 0) to well past f32 epsilon.
    const SIG_CLAMP: f32 = 30.0;
    /// Degree-5 Taylor coefficients of `e^r` on `|r| <= ln(2)/2`
    /// (truncation error < 3e-6, comfortably inside the contract).
    const C5: f32 = 1.0 / 120.0;
    const C4: f32 = 1.0 / 24.0;
    const C3: f32 = 1.0 / 6.0;
    const C2: f32 = 0.5;

    /// `σ(z)` through the shared polynomial `exp` approximation:
    /// `e^x = 2^n · e^r` with `n = round(x·log2e)` and a degree-5
    /// Taylor tail, `2^n` assembled by exponent-bit arithmetic.
    fn sigmoid_scalar(z: f32) -> f32 {
        let x = -z.clamp(-SIG_CLAMP, SIG_CLAMP);
        let y = x * LOG2E;
        let n = y.round_ties_even();
        let r = (y - n) * LN2;
        let mut p = C5;
        p = p * r + C4;
        p = p * r + C3;
        p = p * r + C2;
        p = p * r + 1.0;
        p = p * r + 1.0;
        // n ∈ [-44, 44] after the clamp, so the biased exponent is a
        // valid normal.
        let e = p * f32::from_bits(((n as i32 + 127) as u32) << 23);
        1.0 / (1.0 + e)
    }

    /// Runs one compiled layer, `out[0..tiles*16] = σ(W·x + b)`, over
    /// the packed tile layout — the portable counterpart of the fused
    /// [`forward_avx512`] pass (tests verify both within the same
    /// tolerance).
    pub(super) fn layer_forward_scalar(layer: &CompiledLayer, x: &[f32], out: &mut [f32]) {
        let xs = &x[..layer.in_dim];
        for tile in 0..layer.tiles {
            let base = tile * layer.in_dim * LANES;
            for lane in 0..LANES {
                let o = tile * LANES + lane;
                let z = match &layer.weights {
                    PackedWeights::F32(wt) => {
                        let mut acc = 0.0f32;
                        for (t, &xt) in xs.iter().enumerate() {
                            acc += wt[base + t * LANES + lane] * xt;
                        }
                        acc + layer.bias[o]
                    }
                    PackedWeights::Int8 { q, scale } => {
                        let mut acc = 0.0f32;
                        for (t, &xt) in xs.iter().enumerate() {
                            acc += f32::from(q[base + t * LANES + lane]) * xt;
                        }
                        acc * scale[o] + layer.bias[o]
                    }
                };
                out[o] = sigmoid_scalar(z);
            }
        }
    }

    /// [`layer_forward_scalar`] for layer 0 resuming from per-period
    /// partials: each output row's accumulator starts at
    /// `partial[o] = Σ_{t<prefix} w·x` and continues the same ascending
    /// mul-add chain over `x[prefix..in_dim]`, so the result is bitwise
    /// what the full chain produces on the same activations.
    pub(super) fn layer0_forward_scalar_from_fold(
        layer: &CompiledLayer,
        partial: &[f32],
        prefix: usize,
        x: &[f32],
        out: &mut [f32],
    ) {
        let xs = &x[..layer.in_dim];
        for tile in 0..layer.tiles {
            let base = tile * layer.in_dim * LANES;
            for lane in 0..LANES {
                let o = tile * LANES + lane;
                let z = match &layer.weights {
                    PackedWeights::F32(wt) => {
                        let mut acc = partial[o];
                        for (t, &xt) in xs.iter().enumerate().skip(prefix) {
                            acc += wt[base + t * LANES + lane] * xt;
                        }
                        acc + layer.bias[o]
                    }
                    PackedWeights::Int8 { q, scale } => {
                        let mut acc = partial[o];
                        for (t, &xt) in xs.iter().enumerate().skip(prefix) {
                            acc += f32::from(q[base + t * LANES + lane]) * xt;
                        }
                        acc * scale[o] + layer.bias[o]
                    }
                };
                out[o] = sigmoid_scalar(z);
            }
        }
    }

    /// The fused whole-network pass — input prep, every layer's
    /// matvec + sigmoid, and the output affine in one `target_feature`
    /// body, so all stages inline and activations ping-pong between
    /// the scratch buffers without re-dispatching.
    ///
    /// The prep fuses the per-feature affine into the f64 → f32
    /// conversion with one f64 FMA (one rounding, versus the scalar
    /// path's round-then-multiply — both inside the tier tolerance),
    /// and the output stage multiplies by the precomputed `1/0.9`
    /// instead of dividing (1 ulp, same contract).
    ///
    /// # Safety
    ///
    /// The caller must have verified `avx512f` support at runtime.
    /// `scratch` must be sized to the network (`a`/`b` at least
    /// `net.width`) and `out` must point at `net.output_dim` writable
    /// `f64`s.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx512f")]
    pub(super) unsafe fn forward_avx512(
        net: &super::CompiledDbn,
        input: &[f64],
        scratch: &mut super::CompiledScratch,
        out: *mut f64,
    ) {
        use std::arch::x86_64::{
            __mmask8, _mm256_loadu_ps, _mm256_storeu_ps, _mm512_cvtpd_ps, _mm512_cvtps_pd,
            _mm512_fmadd_pd, _mm512_loadu_pd, _mm512_mask_storeu_pd, _mm512_maskz_loadu_pd,
            _mm512_max_pd, _mm512_min_pd, _mm512_mul_pd, _mm512_set1_pd, _mm512_sub_pd,
        };

        // Input prep, 8 features per chunk; masked loads zero the
        // lanes past `input_dim`, and the padded coefficients are zero
        // there, so the padding activations stay zero.
        let in_dim = input.len();
        for off in (0..net.prep_a64.len()).step_by(8) {
            // `saturating_sub` covers chunks entirely past `in_dim`
            // (a sub-8-feature network still pads to a full 16-lane
            // tile): the mask zeroes every lane and the pointer is
            // clamped to one-past-end below.
            let rem = in_dim.saturating_sub(off);
            let mask: __mmask8 = if rem >= 8 {
                0xFF
            } else {
                ((1u16 << rem) - 1) as __mmask8
            };
            // SAFETY: the masked lanes of `input` stay untouched and
            // the clamped offset never leaves the allocation;
            // `prep_a64`/`prep_c64` are `input_pad` long and `a` is at
            // least as long (`width >= input_pad`).
            unsafe {
                let av = _mm512_maskz_loadu_pd(mask, input.as_ptr().add(off.min(in_dim)));
                let pa = _mm512_loadu_pd(net.prep_a64.as_ptr().add(off));
                let pc = _mm512_loadu_pd(net.prep_c64.as_ptr().add(off));
                let f = _mm512_cvtpd_ps(_mm512_fmadd_pd(av, pa, pc));
                _mm256_storeu_ps(scratch.a.as_mut_ptr().add(off), f);
            }
        }

        for layer in &net.layers {
            // SAFETY: avx512f was verified by the caller.
            unsafe { layer_forward_avx512(layer, &scratch.a, &mut scratch.b) };
            std::mem::swap(&mut scratch.a, &mut scratch.b);
        }

        // Output affine, 8 outputs per chunk: the reference's
        // unsqueeze `clamp((y - 0.05) / 0.9, 0, 1)` and inverse scale
        // `min + u·span` in f64 on the f32 sigmoid activations, mask-
        // stored straight into `out` (the padded tail never lands).
        let zero = _mm512_set1_pd(0.0);
        let one = _mm512_set1_pd(1.0);
        let bias = _mm512_set1_pd(0.05);
        let inv = _mm512_set1_pd(1.0 / 0.9);
        let n = net.output_dim;
        for off in (0..net.out_min.len()).step_by(8) {
            // As in the prep loop, `saturating_sub` + a clamped store
            // offset handle chunks entirely past `output_dim` (narrow
            // heads still pad to a 16-lane tile).
            let rem = n.saturating_sub(off);
            if rem == 0 {
                break;
            }
            let mask: __mmask8 = if rem >= 8 {
                0xFF
            } else {
                ((1u16 << rem) - 1) as __mmask8
            };
            // SAFETY: `out_min`/`out_span` are `out_pad` long, the
            // final activation buffer covers `out_pad` (`tiles·16` of
            // the last layer rounds up past it), and the masked lanes
            // keep the store inside `out`'s `output_dim` elements.
            unsafe {
                let act = _mm512_cvtps_pd(_mm256_loadu_ps(scratch.a.as_ptr().add(off)));
                let u = _mm512_mul_pd(_mm512_sub_pd(act, bias), inv);
                let u = _mm512_min_pd(_mm512_max_pd(u, zero), one);
                let mins = _mm512_loadu_pd(net.out_min.as_ptr().add(off));
                let spans = _mm512_loadu_pd(net.out_span.as_ptr().add(off));
                let y = _mm512_fmadd_pd(u, spans, mins);
                _mm512_mask_storeu_pd(out.add(off), mask, y);
            }
        }
    }

    /// The register-resident variant for planner-sized networks (every
    /// layer one tile, input ≤ 16 features): the activation vector
    /// lives in a single register from prep to output affine, with
    /// per-feature broadcasts done by lane permutation instead of a
    /// store/reload round trip — inter-layer memory traffic is what
    /// dominates the generic pass at these widths.
    ///
    /// # Safety
    ///
    /// As for [`forward_avx512`], and `net.resident` must hold.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx512f")]
    pub(super) unsafe fn forward_avx512_resident(
        net: &super::CompiledDbn,
        input: &[f64],
        _scratch: &mut super::CompiledScratch,
        out: *mut f64,
    ) {
        use std::arch::x86_64::{__m512, _mm512_fmadd_ps, _mm512_loadu_ps, _mm512_set1_ps};

        // Layer 0 consumes the raw input through scalar 8-byte loads
        // broadcast from registers: the caller typically finished
        // writing `input` element by element nanoseconds ago, and a
        // 512-bit load spanning those fresh stores defeats
        // store-to-load forwarding (a ~25-cycle stall per load, which
        // at this network size rivals a whole layer). Scalar loads
        // forward cleanly. The affine prep folds into each broadcast
        // with the same one-rounding f64 FMA (and the same f32
        // rounding) as the vectorized prep, so results are unchanged.
        let in_dim = input.len();
        let prep = |t: usize| -> __m512 {
            // SAFETY: the matvec only asks for `t < in_dim`, and the
            // coefficient vectors are `input_pad ≥ in_dim` long.
            let x = unsafe {
                input.get_unchecked(t).mul_add(
                    *net.prep_a64.get_unchecked(t),
                    *net.prep_c64.get_unchecked(t),
                )
            };
            _mm512_set1_ps(x as f32)
        };
        debug_assert_eq!(in_dim, net.layers[0].in_dim);
        let l0 = &net.layers[0];
        let z = match &l0.weights {
            PackedWeights::F32(wt) => {
                // Bias seeds the first accumulator instead of being
                // added after the reduction — one less dependent add on
                // the layer's latency chain. The summation order shift
                // moves the result by ulps, inside the tier tolerance.
                // SAFETY: one tile — `wt` is `in_dim × 16` and `bias`
                // is 16 long.
                unsafe {
                    let bv = _mm512_loadu_ps(l0.bias.as_ptr());
                    matvec16_f32(wt.as_ptr(), l0.in_dim, prep, bv)
                }
            }
            PackedWeights::Int8 { q, scale } => {
                // SAFETY: one tile — `q` is `in_dim × 16` bytes,
                // `scale` and `bias` are 16 long.
                unsafe {
                    let acc = matvec16_i8(q.as_ptr(), l0.in_dim, prep);
                    let sv = _mm512_loadu_ps(scale.as_ptr());
                    let bv = _mm512_loadu_ps(l0.bias.as_ptr());
                    _mm512_fmadd_ps(acc, sv, bv)
                }
            }
        };
        // SAFETY: avx512f per the caller's contract; `out` covers
        // `output_dim` elements.
        unsafe { resident_finish(net, sigmoid_avx512(z), out) };
    }

    /// [`forward_avx512_resident`] resuming layer 0 from the four
    /// partial accumulators a [`super::Layer0Fold`] captured over the
    /// first `prefix` features: the remaining features continue each
    /// accumulator's FMA chain with the global accumulator-assignment
    /// rule of [`matvec16_f32`] (blocks of four, tail into the first),
    /// so the combined reduction — and every downstream stage — is
    /// bitwise identical to the full resident pass.
    ///
    /// # Safety
    ///
    /// As for [`forward_avx512_resident`], with `prefix ≤ in_dim` and
    /// `input` at least `in_dim` long.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx512f")]
    pub(super) unsafe fn forward_avx512_resident_from_fold(
        net: &super::CompiledDbn,
        partial: &[[f32; LANES]; 4],
        prefix: usize,
        input: &[f64],
        out: *mut f64,
    ) {
        use std::arch::x86_64::{
            _mm512_add_ps, _mm512_fmadd_ps, _mm512_loadu_ps, _mm512_set1_ps,
        };

        let l0 = &net.layers[0];
        let in_dim = l0.in_dim;
        // SAFETY: each partial row is 16 floats.
        let mut acc = unsafe {
            [
                _mm512_loadu_ps(partial[0].as_ptr()),
                _mm512_loadu_ps(partial[1].as_ptr()),
                _mm512_loadu_ps(partial[2].as_ptr()),
                _mm512_loadu_ps(partial[3].as_ptr()),
            ]
        };
        let tail_start = 4 * (in_dim / 4);
        for t in prefix..in_dim {
            // The same scalar-load-broadcast prep as the full resident
            // pass (see its store-forwarding note).
            // SAFETY: `t < in_dim` and the coefficient vectors are
            // `input_pad ≥ in_dim` long.
            let x = unsafe {
                input.get_unchecked(t).mul_add(
                    *net.prep_a64.get_unchecked(t),
                    *net.prep_c64.get_unchecked(t),
                )
            };
            let xv = _mm512_set1_ps(x as f32);
            let slot = if t < tail_start { t % 4 } else { 0 };
            let w = match &l0.weights {
                // SAFETY: one tile — block `t` is in bounds.
                PackedWeights::F32(wt) => unsafe {
                    _mm512_loadu_ps(wt.as_ptr().add(t * LANES))
                },
                PackedWeights::Int8 { q, .. } => unsafe {
                    use std::arch::x86_64::{
                        __m128i, _mm512_cvtepi32_ps, _mm512_cvtepi8_epi32, _mm_loadu_si128,
                    };
                    _mm512_cvtepi32_ps(_mm512_cvtepi8_epi32(_mm_loadu_si128(
                        q.as_ptr().add(t * LANES).cast::<__m128i>(),
                    )))
                },
            };
            acc[slot] = _mm512_fmadd_ps(w, xv, acc[slot]);
        }
        let sum = _mm512_add_ps(_mm512_add_ps(acc[0], acc[1]), _mm512_add_ps(acc[2], acc[3]));
        let z = match &l0.weights {
            // F32 folds seed the first accumulator with the bias.
            PackedWeights::F32(_) => sum,
            PackedWeights::Int8 { scale, .. } => {
                // SAFETY: `scale` and `bias` are 16 long.
                unsafe {
                    let sv = _mm512_loadu_ps(scale.as_ptr());
                    let bv = _mm512_loadu_ps(l0.bias.as_ptr());
                    _mm512_fmadd_ps(sum, sv, bv)
                }
            }
        };
        // SAFETY: avx512f per the caller's contract; `out` covers
        // `output_dim` elements.
        unsafe { resident_finish(net, sigmoid_avx512(z), out) };
    }

    /// Layers 1..n and the output affine of the resident pass, from
    /// layer 0's activation register — shared by the full forward and
    /// the from-fold resume so the two stay bitwise identical past
    /// layer 0.
    ///
    /// # Safety
    ///
    /// As for [`forward_avx512_resident`]; `act` must be layer 0's
    /// sigmoid output.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx512f")]
    #[inline]
    unsafe fn resident_finish(
        net: &super::CompiledDbn,
        act: std::arch::x86_64::__m512,
        out: *mut f64,
    ) {
        use std::arch::x86_64::{
            _mm512_fmadd_ps, _mm512_loadu_ps, _mm512_permutexvar_ps, _mm512_set1_epi32,
            _mm512_store_ps,
        };

        let mut act = act;
        for layer in &net.layers[1..] {
            // Later layers broadcast feature `t` of the previous
            // layer's register-resident activation by lane permute.
            let prev = act;
            let lane = |t: usize| _mm512_permutexvar_ps(_mm512_set1_epi32(t as i32), prev);
            let z = match &layer.weights {
                PackedWeights::F32(wt) => {
                    // SAFETY: one tile — `wt` is `in_dim × 16` and
                    // `bias` is 16 long.
                    unsafe {
                        let bv = _mm512_loadu_ps(layer.bias.as_ptr());
                        matvec16_f32(wt.as_ptr(), layer.in_dim, lane, bv)
                    }
                }
                PackedWeights::Int8 { q, scale } => {
                    // SAFETY: one tile — `q` is `in_dim × 16` bytes.
                    let acc = unsafe { matvec16_i8(q.as_ptr(), layer.in_dim, lane) };
                    // SAFETY: `scale` and `bias` are 16 long.
                    let (sv, bv) = unsafe {
                        (
                            _mm512_loadu_ps(scale.as_ptr()),
                            _mm512_loadu_ps(layer.bias.as_ptr()),
                        )
                    };
                    _mm512_fmadd_ps(acc, sv, bv)
                }
            };
            act = sigmoid_avx512(z);
        }

        // One plain aligned spill of the activation register, then the
        // affine scalar-wise with scalar stores into `out`. The
        // planner reads the decision heads element by element right
        // after this returns, and a *masked* wide store to `out` never
        // forwards to those loads (a ~40-cycle stall that rivals a
        // layer at this size); scalar stores forward cleanly, and the
        // unmasked spill's contained loads do too.
        #[repr(align(64))]
        struct Spill([f32; LANES]);
        let mut spill = Spill([0.0; LANES]);
        _mm512_store_ps(spill.0.as_mut_ptr(), act);
        let n = net.output_dim;
        for o in 0..n {
            let a = spill.0[o] as f64;
            // Same f64 operation order as the generic pass's vector
            // stage (sub, multiply by 1/0.9, clamp, FMA), so the two
            // kernels agree bit for bit on resident shapes.
            let u = ((a - 0.05) * (1.0 / 0.9)).clamp(0.0, 1.0);
            // SAFETY: `o < output_dim` and `out` covers `output_dim`
            // elements; `out_min`/`out_span` are at least as long.
            unsafe {
                *out.add(o) = u.mul_add(
                    *net.out_span.get_unchecked(o),
                    *net.out_min.get_unchecked(o),
                );
            }
        }
    }

    /// One-tile f32 matvec for the resident pass: `x(t)` supplies the
    /// 16-lane broadcast of feature `t` (a register permute or a
    /// scalar-load broadcast — never a wide load). Four independent
    /// accumulators seeded with `init` (the layer bias, folding its
    /// add into the reduction), tail features folding into the first,
    /// exactly like the generic tile reduction.
    ///
    /// # Safety
    ///
    /// The caller must have verified `avx512f` support at runtime and
    /// `base` must point at `in_dim × 16` packed weights.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx512f")]
    unsafe fn matvec16_f32(
        base: *const f32,
        in_dim: usize,
        x: impl Fn(usize) -> std::arch::x86_64::__m512,
        init: std::arch::x86_64::__m512,
    ) -> std::arch::x86_64::__m512 {
        use std::arch::x86_64::{
            _mm512_add_ps, _mm512_fmadd_ps, _mm512_loadu_ps, _mm512_setzero_ps,
        };
        let mut acc0 = init;
        let mut acc1 = _mm512_setzero_ps();
        let mut acc2 = _mm512_setzero_ps();
        let mut acc3 = _mm512_setzero_ps();
        let mut t = 0;
        while t + 4 <= in_dim {
            let (a, b, c, d);
            // SAFETY: blocks `t..t+4`, in bounds per the contract.
            unsafe {
                a = _mm512_loadu_ps(base.add(t * LANES));
                b = _mm512_loadu_ps(base.add((t + 1) * LANES));
                c = _mm512_loadu_ps(base.add((t + 2) * LANES));
                d = _mm512_loadu_ps(base.add((t + 3) * LANES));
            }
            acc0 = _mm512_fmadd_ps(a, x(t), acc0);
            acc1 = _mm512_fmadd_ps(b, x(t + 1), acc1);
            acc2 = _mm512_fmadd_ps(c, x(t + 2), acc2);
            acc3 = _mm512_fmadd_ps(d, x(t + 3), acc3);
            t += 4;
        }
        while t < in_dim {
            // SAFETY: block `t`, in bounds per the contract.
            let w = unsafe { _mm512_loadu_ps(base.add(t * LANES)) };
            acc0 = _mm512_fmadd_ps(w, x(t), acc0);
            t += 1;
        }
        _mm512_add_ps(_mm512_add_ps(acc0, acc1), _mm512_add_ps(acc2, acc3))
    }

    /// [`matvec16_f32`] over int8 tiles: 16-byte load, sign-extend,
    /// convert, fused multiply-add (dequantization scale applied by
    /// the caller after the reduction).
    ///
    /// # Safety
    ///
    /// As for [`matvec16_f32`], with `base` pointing at `in_dim × 16`
    /// packed int8 weights.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx512f")]
    unsafe fn matvec16_i8(
        base: *const i8,
        in_dim: usize,
        x: impl Fn(usize) -> std::arch::x86_64::__m512,
    ) -> std::arch::x86_64::__m512 {
        use std::arch::x86_64::{
            __m128i, _mm512_add_ps, _mm512_cvtepi32_ps, _mm512_cvtepi8_epi32, _mm512_fmadd_ps,
            _mm512_setzero_ps, _mm_loadu_si128,
        };
        let mut acc0 = _mm512_setzero_ps();
        let mut acc1 = _mm512_setzero_ps();
        let mut acc2 = _mm512_setzero_ps();
        let mut acc3 = _mm512_setzero_ps();
        let mut t = 0;
        while t + 4 <= in_dim {
            let (a, b, c, d);
            // SAFETY: 16-byte blocks `t..t+4`, in bounds per contract.
            unsafe {
                a = _mm_loadu_si128(base.add(t * LANES).cast::<__m128i>());
                b = _mm_loadu_si128(base.add((t + 1) * LANES).cast::<__m128i>());
                c = _mm_loadu_si128(base.add((t + 2) * LANES).cast::<__m128i>());
                d = _mm_loadu_si128(base.add((t + 3) * LANES).cast::<__m128i>());
            }
            acc0 = _mm512_fmadd_ps(_mm512_cvtepi32_ps(_mm512_cvtepi8_epi32(a)), x(t), acc0);
            acc1 = _mm512_fmadd_ps(_mm512_cvtepi32_ps(_mm512_cvtepi8_epi32(b)), x(t + 1), acc1);
            acc2 = _mm512_fmadd_ps(_mm512_cvtepi32_ps(_mm512_cvtepi8_epi32(c)), x(t + 2), acc2);
            acc3 = _mm512_fmadd_ps(_mm512_cvtepi32_ps(_mm512_cvtepi8_epi32(d)), x(t + 3), acc3);
            t += 4;
        }
        while t < in_dim {
            // SAFETY: 16 bytes of block `t`, in bounds per contract.
            let w = unsafe {
                _mm512_cvtepi32_ps(_mm512_cvtepi8_epi32(_mm_loadu_si128(
                    base.add(t * LANES).cast::<__m128i>(),
                )))
            };
            acc0 = _mm512_fmadd_ps(w, x(t), acc0);
            t += 1;
        }
        _mm512_add_ps(_mm512_add_ps(acc0, acc1), _mm512_add_ps(acc2, acc3))
    }

    /// One 16-lane tile per output register: broadcast each input
    /// activation, contiguous weight-tile load (f32) or i8 load +
    /// sign-extend + convert (int8), fused multiply-add, then the
    /// vectorized polynomial sigmoid. The reduction runs on four
    /// independent accumulators — a single accumulator serializes the
    /// whole matvec on the FMA latency chain, which dominates at these
    /// one-tile layer widths.
    ///
    /// # Safety
    ///
    /// The caller must have verified `avx512f` support at runtime.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx512f")]
    #[inline]
    unsafe fn layer_forward_avx512(layer: &CompiledLayer, x: &[f32], out: &mut [f32]) {
        use std::arch::x86_64::{
            __m128i, __m512, _mm512_add_ps, _mm512_cvtepi32_ps, _mm512_cvtepi8_epi32,
            _mm512_fmadd_ps, _mm512_loadu_ps, _mm512_set1_ps, _mm512_setzero_ps, _mm512_storeu_ps,
            _mm_loadu_si128,
        };

        /// `Σ_t w[t]·x[t]` over one tile's `in_dim × 16` block, the
        /// weight vector for step `t` supplied by `load(t)`.
        #[target_feature(enable = "avx512f")]
        #[inline]
        unsafe fn tile_matvec(xs: &[f32], mut load: impl FnMut(usize) -> __m512) -> __m512 {
            let mut acc0 = _mm512_setzero_ps();
            let mut acc1 = _mm512_setzero_ps();
            let mut acc2 = _mm512_setzero_ps();
            let mut acc3 = _mm512_setzero_ps();
            let mut t = 0;
            while t + 4 <= xs.len() {
                acc0 = _mm512_fmadd_ps(load(t), _mm512_set1_ps(xs[t]), acc0);
                acc1 = _mm512_fmadd_ps(load(t + 1), _mm512_set1_ps(xs[t + 1]), acc1);
                acc2 = _mm512_fmadd_ps(load(t + 2), _mm512_set1_ps(xs[t + 2]), acc2);
                acc3 = _mm512_fmadd_ps(load(t + 3), _mm512_set1_ps(xs[t + 3]), acc3);
                t += 4;
            }
            while t < xs.len() {
                acc0 = _mm512_fmadd_ps(load(t), _mm512_set1_ps(xs[t]), acc0);
                t += 1;
            }
            _mm512_add_ps(_mm512_add_ps(acc0, acc1), _mm512_add_ps(acc2, acc3))
        }

        let in_dim = layer.in_dim;
        let xs = &x[..in_dim];
        for tile in 0..layer.tiles {
            let z = match &layer.weights {
                PackedWeights::F32(wt) => {
                    // SAFETY: `wt` is tiles × in_dim × 16; this tile's
                    // blocks span `[tile·in·16, (tile+1)·in·16)`, and
                    // `tile_matvec` only asks for `t < in_dim`.
                    let base = unsafe { wt.as_ptr().add(tile * in_dim * LANES) };
                    let acc = unsafe { tile_matvec(xs, |t| _mm512_loadu_ps(base.add(t * LANES))) };
                    // SAFETY: `bias` is tiles × 16.
                    let bv = unsafe { _mm512_loadu_ps(layer.bias.as_ptr().add(tile * LANES)) };
                    _mm512_add_ps(acc, bv)
                }
                PackedWeights::Int8 { q, scale } => {
                    // SAFETY: `q` is tiles × in_dim × 16 bytes; this
                    // tile's blocks span `[tile·in·16, (tile+1)·in·16)`,
                    // and `tile_matvec` only asks for `t < in_dim`.
                    let base = unsafe { q.as_ptr().add(tile * in_dim * LANES) };
                    let acc = unsafe {
                        tile_matvec(xs, |t| {
                            _mm512_cvtepi32_ps(_mm512_cvtepi8_epi32(_mm_loadu_si128(
                                base.add(t * LANES).cast::<__m128i>(),
                            )))
                        })
                    };
                    // SAFETY: `scale` and `bias` are tiles × 16.
                    let sv = unsafe { _mm512_loadu_ps(scale.as_ptr().add(tile * LANES)) };
                    let bv = unsafe { _mm512_loadu_ps(layer.bias.as_ptr().add(tile * LANES)) };
                    _mm512_fmadd_ps(acc, sv, bv)
                }
            };
            let s = sigmoid_avx512(z);
            // SAFETY: `out` holds at least tiles × 16 activations.
            unsafe { _mm512_storeu_ps(out.as_mut_ptr().add(tile * LANES), s) };
        }
    }

    /// Lane-parallel [`sigmoid_scalar`]: identical formula, fused
    /// multiply-adds in the polynomial.
    ///
    /// # Safety
    ///
    /// The caller must have verified `avx512f` support at runtime.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx512f")]
    #[inline]
    unsafe fn sigmoid_avx512(z: std::arch::x86_64::__m512) -> std::arch::x86_64::__m512 {
        use std::arch::x86_64::{
            _mm512_add_ps, _mm512_fmadd_ps, _mm512_fnmadd_ps, _mm512_max_ps, _mm512_mul_ps,
            _mm512_rcp14_ps, _mm512_roundscale_ps, _mm512_scalef_ps, _mm512_set1_ps,
            _mm512_setzero_ps, _mm512_sub_ps, _MM_FROUND_NO_EXC, _MM_FROUND_TO_NEAREST_INT,
        };
        let one = _mm512_set1_ps(1.0);
        // Saturation guard on the negative side only: z → −∞ drives
        // e = e^{−z} → ∞ and the Newton correction to ∞·0 = NaN, so z
        // is floored at −SIG_CLAMP. The positive side needs no clamp —
        // for any z ≳ 17, e^{−z} < 2⁻²⁴ and `1/(1+e)` rounds to
        // exactly 1.0f32, the same value the scalar path's two-sided
        // clamp produces — and dropping the `min` takes 4 cycles off
        // a latency chain the whole forward waits on. (A z past
        // ±3e38 would overflow `y` into a NaN output; finite layers
        // cannot reach that, and a NaN head is the planner's
        // explicit fallback signal anyway.)
        let zf = _mm512_max_ps(z, _mm512_set1_ps(-SIG_CLAMP));
        // Range reduction for e^{−z} = 2^n · e^r: `n = round(−z·log2e)`
        // with the negation folded into the constant (sign flips are
        // exact), then `r = (−z) − n·ln2` as a single FNMADD — the
        // negation runs off the critical path, replacing the scalar
        // recipe's dependent subtract-then-multiply.
        let y = _mm512_mul_ps(zf, _mm512_set1_ps(-LOG2E));
        let n = _mm512_roundscale_ps::<{ _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC }>(y);
        let nz = _mm512_sub_ps(_mm512_setzero_ps(), zf);
        let r = _mm512_fnmadd_ps(n, _mm512_set1_ps(LN2), nz);
        // Estrin split of the degree-5 Taylor tail,
        // `(1 + r) + r²·(C2 + C3·r) + r⁴·(C4 + C5·r)`: three
        // independent FMAs then a two-FMA combine — the forward is a
        // pure latency chain, and Horner's five serial FMAs put ~20
        // cycles of it in every sigmoid. Grouping differs from the
        // scalar path by ulps, inside both tier tolerances (the two
        // already differ on the reciprocal).
        let r2 = _mm512_mul_ps(r, r);
        let r4 = _mm512_mul_ps(r2, r2);
        let lo = _mm512_add_ps(r, one);
        let mid = _mm512_fmadd_ps(_mm512_set1_ps(C3), r, _mm512_set1_ps(C2));
        let hi = _mm512_fmadd_ps(_mm512_set1_ps(C5), r, _mm512_set1_ps(C4));
        let p = _mm512_fmadd_ps(hi, r4, _mm512_fmadd_ps(mid, r2, lo));
        // `p · 2^n` in one instruction; `n` is already integral, and a
        // power-of-two scale is exact, so this matches the scalar
        // path's exponent-bit assembly bit for bit.
        let e = _mm512_scalef_ps(p, n);
        // `1 / (1 + e)` via the 14-bit reciprocal plus one Newton
        // step, `r·(2 − d·r)`: relative error ~2⁻²⁸, far inside the
        // tier tolerances, at a fraction of the divider's latency.
        let d = _mm512_add_ps(one, e);
        let r = _mm512_rcp14_ps(d);
        _mm512_mul_ps(r, _mm512_fnmadd_ps(d, r, _mm512_set1_ps(2.0)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dbn::{DbnConfig, PredictScratch};

    /// A quick-to-train scheduler-shaped network: 13 inputs (one held
    /// constant, like a dead sensor channel), 10 outputs.
    fn trained_dbn() -> Dbn {
        let inputs: Vec<Vec<f64>> = (0..40)
            .map(|i| {
                let mut v: Vec<f64> = (0..13)
                    .map(|j| ((i * 13 + j) as f64 * 0.37).sin().abs() * 40.0)
                    .collect();
                v[5] = 7.0; // constant feature: span 0, maps to 0.5
                v
            })
            .collect();
        let targets: Vec<Vec<f64>> = (0..40)
            .map(|i| {
                (0..10)
                    .map(|j| ((i + j) as f64 * 0.21).cos().abs())
                    .collect()
            })
            .collect();
        let mut cfg = DbnConfig::small(42);
        cfg.bp_epochs = 30;
        Dbn::train(&inputs, &targets, &cfg).expect("trains")
    }

    fn max_err(dbn: &Dbn, compiled: &CompiledDbn, inputs: &[Vec<f64>], scalar: bool) -> f64 {
        let mut scratch = compiled.make_scratch();
        let mut ref_scratch = PredictScratch::default();
        let mut fast = Vec::new();
        let mut reference = Vec::new();
        let mut worst = 0.0f64;
        for x in inputs {
            if scalar {
                compiled
                    .forward_into_scalar(x, &mut scratch, &mut fast)
                    .expect("forward");
            } else {
                compiled
                    .forward_into(x, &mut scratch, &mut fast)
                    .expect("forward");
            }
            dbn.predict_into(x, &mut ref_scratch, &mut reference)
                .expect("reference");
            for (o, (a, b)) in fast.iter().zip(&reference).enumerate() {
                let span = (dbn.output_scaler().maxs()[o] - dbn.output_scaler().mins()[o]).max(1.0);
                worst = worst.max((a - b).abs() / span);
            }
        }
        worst
    }

    fn in_range_inputs(dbn: &Dbn) -> Vec<Vec<f64>> {
        let s = dbn.input_scaler();
        (0..25)
            .map(|i| {
                (0..s.dim())
                    .map(|t| {
                        let frac = ((i * 7 + t * 3) % 11) as f64 / 10.0;
                        s.mins()[t] + frac * (s.maxs()[t] - s.mins()[t])
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn f32_tier_tracks_reference_within_tolerance() {
        let dbn = trained_dbn();
        let compiled = CompiledDbn::compile(&dbn, CompiledTier::F32).expect("compiles");
        assert_eq!(compiled.tier(), CompiledTier::F32);
        assert_eq!(compiled.input_dim(), dbn.input_dim());
        assert_eq!(compiled.output_dim(), dbn.output_dim());
        let inputs = in_range_inputs(&dbn);
        let tol = compiled.tolerance();
        for scalar in [false, true] {
            let err = max_err(&dbn, &compiled, &inputs, scalar);
            assert!(err <= tol, "scalar={scalar}: err {err} > tolerance {tol}");
        }
    }

    #[test]
    fn int8_tier_tracks_reference_within_tolerance() {
        let dbn = trained_dbn();
        let compiled = CompiledDbn::compile(&dbn, CompiledTier::Int8).expect("compiles");
        let inputs = in_range_inputs(&dbn);
        let tol = compiled.tolerance();
        for scalar in [false, true] {
            let err = max_err(&dbn, &compiled, &inputs, scalar);
            assert!(err <= tol, "scalar={scalar}: err {err} > tolerance {tol}");
        }
    }

    #[test]
    fn out_of_range_inputs_stay_finite() {
        // The clamp is gone: inputs past the fitted range extrapolate
        // linearly instead of saturating. The outputs must still be
        // finite and inside the fitted output range (the output-side
        // clamp survives compilation).
        let dbn = trained_dbn();
        for tier in [CompiledTier::F32, CompiledTier::Int8] {
            let compiled = CompiledDbn::compile(&dbn, tier).expect("compiles");
            let mut scratch = compiled.make_scratch();
            let mut out = Vec::new();
            let wild: Vec<f64> = (0..13)
                .map(|t| if t % 2 == 0 { 1e4 } else { -1e4 })
                .collect();
            compiled
                .forward_into(&wild, &mut scratch, &mut out)
                .expect("forward");
            for (o, &v) in out.iter().enumerate() {
                let (lo, hi) = (dbn.output_scaler().mins()[o], dbn.output_scaler().maxs()[o]);
                assert!(
                    v.is_finite() && v >= lo - 1e-9 && v <= hi + 1e-9,
                    "out[{o}] = {v}"
                );
            }
        }
    }

    #[test]
    fn dimension_mismatch_is_rejected() {
        let dbn = trained_dbn();
        let compiled = CompiledDbn::compile(&dbn, CompiledTier::F32).expect("compiles");
        let mut scratch = compiled.make_scratch();
        let mut out = Vec::new();
        assert!(compiled
            .forward_into(&[1.0; 4], &mut scratch, &mut out)
            .is_err());
    }

    #[test]
    fn default_scratch_grows_and_matches_presized() {
        let dbn = trained_dbn();
        let compiled = CompiledDbn::compile(&dbn, CompiledTier::F32).expect("compiles");
        let x: Vec<f64> = (0..13).map(|t| t as f64).collect();
        let mut presized = compiled.make_scratch();
        let mut grown = CompiledScratch::default();
        let (mut a, mut b) = (Vec::new(), Vec::new());
        compiled
            .forward_into(&x, &mut presized, &mut a)
            .expect("forward");
        compiled
            .forward_into(&x, &mut grown, &mut b)
            .expect("forward");
        assert_eq!(a, b);
    }

    #[test]
    fn partial_tiles_are_handled() {
        // Hidden widths straddling the 16-lane tile boundary: 5 (one
        // partial tile), 16 (exactly one), 21 (one full + one partial).
        let inputs: Vec<Vec<f64>> = (0..30)
            .map(|i| {
                (0..4)
                    .map(|j| ((i * 4 + j) as f64 * 0.5).sin() * 3.0)
                    .collect()
            })
            .collect();
        let targets: Vec<Vec<f64>> = (0..30)
            .map(|i| vec![(i as f64 * 0.1).cos().abs()])
            .collect();
        for hidden in [vec![5], vec![16], vec![21, 5]] {
            let cfg = DbnConfig {
                hidden,
                rbm_epochs: 5,
                rbm_lr: 0.1,
                bp_epochs: 10,
                bp_lr: 0.4,
                seed: 3,
            };
            let dbn = Dbn::train(&inputs, &targets, &cfg).expect("trains");
            let compiled = CompiledDbn::compile(&dbn, CompiledTier::F32).expect("compiles");
            let probe = in_range_inputs(&dbn);
            let err = max_err(&dbn, &compiled, &probe, false);
            assert!(err <= compiled.tolerance(), "hidden shape err {err}");
        }
    }

    /// The per-period fold must be invisible: resuming from any prefix
    /// reproduces the full forward bit for bit, on both the dispatched
    /// (possibly SIMD) and the forced-scalar paths, for both tiers.
    #[test]
    fn fold_resume_is_bitwise_identical_to_full_forward() {
        let dbn = trained_dbn();
        let probe = in_range_inputs(&dbn);
        for tier in [CompiledTier::F32, CompiledTier::Int8] {
            let compiled = CompiledDbn::compile(&dbn, tier).expect("compiles");
            let mut scratch = compiled.make_scratch();
            let mut full = Vec::new();
            let mut resumed = Vec::new();
            for prefix in [0, 5, 10, 13] {
                for x in &probe {
                    let fold = compiled
                        .fold_prefix(x, prefix)
                        .expect("fold")
                        .expect("planner shapes are resident");
                    assert_eq!(fold.prefix(), prefix);
                    compiled
                        .forward_into(x, &mut scratch, &mut full)
                        .expect("forward");
                    compiled
                        .forward_from_fold(&fold, x, &mut scratch, &mut resumed)
                        .expect("resume");
                    assert_eq!(full, resumed, "tier {tier:?} prefix {prefix} dispatched");
                    compiled
                        .forward_into_scalar(x, &mut scratch, &mut full)
                        .expect("forward");
                    compiled
                        .forward_from_fold_scalar(&fold, x, &mut scratch, &mut resumed)
                        .expect("resume");
                    assert_eq!(full, resumed, "tier {tier:?} prefix {prefix} scalar");
                }
            }
        }
    }

    /// The folded prefix positions of the decision-time input must not
    /// be read — the planner's cache hands back the fold with a buffer
    /// whose prefix may hold stale values.
    #[test]
    fn fold_resume_ignores_the_folded_prefix() {
        let dbn = trained_dbn();
        let compiled = CompiledDbn::compile(&dbn, CompiledTier::F32).expect("compiles");
        let mut scratch = compiled.make_scratch();
        let x = in_range_inputs(&dbn).remove(0);
        let fold = compiled.fold_prefix(&x, 10).expect("fold").expect("resident");
        let mut full = Vec::new();
        compiled
            .forward_into(&x, &mut scratch, &mut full)
            .expect("forward");
        let mut poisoned = x.clone();
        for slot in poisoned.iter_mut().take(10) {
            *slot = f64::NAN;
        }
        let mut resumed = Vec::new();
        compiled
            .forward_from_fold(&fold, &poisoned, &mut scratch, &mut resumed)
            .expect("resume");
        assert_eq!(full, resumed);
        compiled
            .forward_from_fold_scalar(&fold, &poisoned, &mut scratch, &mut resumed)
            .expect("resume");
        let mut scalar_full = Vec::new();
        compiled
            .forward_into_scalar(&x, &mut scratch, &mut scalar_full)
            .expect("forward");
        assert_eq!(scalar_full, resumed);
    }

    /// Non-resident shapes (input wider than one tile) either decline
    /// the fold (SIMD hosts) or serve it through the scalar partials —
    /// both keep `forward_from_fold` bitwise against the matching
    /// forward.
    #[test]
    fn fold_handles_non_resident_shapes() {
        let inputs: Vec<Vec<f64>> = (0..40)
            .map(|i| {
                (0..21)
                    .map(|j| ((i * 21 + j) as f64 * 0.29).sin().abs() * 12.0)
                    .collect()
            })
            .collect();
        let targets: Vec<Vec<f64>> = (0..40)
            .map(|i| vec![((i as f64) * 0.11).cos().abs()])
            .collect();
        let cfg = DbnConfig {
            hidden: vec![8],
            rbm_epochs: 5,
            rbm_lr: 0.1,
            bp_epochs: 10,
            bp_lr: 0.4,
            seed: 9,
        };
        let dbn = Dbn::train(&inputs, &targets, &cfg).expect("trains");
        let compiled = CompiledDbn::compile(&dbn, CompiledTier::F32).expect("compiles");
        let x = &inputs[3];
        match compiled.fold_prefix(x, 7).expect("fold") {
            None => {} // SIMD multi-tile: correctly declined.
            Some(fold) => {
                let mut scratch = compiled.make_scratch();
                let mut full = Vec::new();
                let mut resumed = Vec::new();
                compiled
                    .forward_into(x, &mut scratch, &mut full)
                    .expect("forward");
                compiled
                    .forward_from_fold(&fold, x, &mut scratch, &mut resumed)
                    .expect("resume");
                assert_eq!(full, resumed);
            }
        }
    }

    #[test]
    fn fold_rejects_bad_dimensions() {
        let dbn = trained_dbn();
        let compiled = CompiledDbn::compile(&dbn, CompiledTier::F32).expect("compiles");
        let x = in_range_inputs(&dbn).remove(0);
        assert!(compiled.fold_prefix(&x, 14).is_err());
        assert!(compiled.fold_prefix(&x[..3], 5).is_err());
        let fold = compiled.fold_prefix(&x, 10).expect("fold").expect("resident");
        let mut scratch = compiled.make_scratch();
        let mut out = Vec::new();
        assert!(compiled
            .forward_from_fold(&fold, &x[..5], &mut scratch, &mut out)
            .is_err());
    }
}
