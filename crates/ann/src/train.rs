//! The `Matrix`-native training-sample store: one input row and one
//! target row per sample, packed contiguously so the whole training
//! pipeline (scaler fit, CD-1 sweeps, back-propagation) reads the data
//! in place instead of cloning a `Vec<Vec<f64>>` per stage.

use serde::{Deserialize, Serialize};

use crate::error::AnnError;
use crate::matrix::Matrix;

/// A packed supervised training set: `samples × in_dim` inputs and
/// `samples × out_dim` targets, row `r` of each belonging to the same
/// sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainingSet {
    /// Input features, one sample per row.
    pub inputs: Matrix,
    /// Regression targets, one sample per row.
    pub targets: Matrix,
}

impl TrainingSet {
    /// Pairs up input and target matrices.
    ///
    /// # Errors
    ///
    /// Returns [`AnnError::BadTrainingSet`] when the row counts
    /// differ.
    pub fn new(inputs: Matrix, targets: Matrix) -> Result<Self, AnnError> {
        if inputs.rows() != targets.rows() {
            return Err(AnnError::BadTrainingSet(format!(
                "{} inputs vs {} targets",
                inputs.rows(),
                targets.rows()
            )));
        }
        Ok(Self { inputs, targets })
    }

    /// Packs nested per-sample rows into a [`TrainingSet`].
    ///
    /// # Errors
    ///
    /// Returns [`AnnError::BadTrainingSet`] for mismatched sample
    /// counts or ragged rows.
    pub fn from_rows(inputs: &[Vec<f64>], targets: &[Vec<f64>]) -> Result<Self, AnnError> {
        if inputs.len() != targets.len() {
            return Err(AnnError::BadTrainingSet(format!(
                "{} inputs vs {} targets",
                inputs.len(),
                targets.len()
            )));
        }
        let pack = |rows: &[Vec<f64>]| {
            Matrix::from_rows(rows)
                .map_err(|_| AnnError::BadTrainingSet("ragged sample rows".into()))
        };
        Self::new(pack(inputs)?, pack(targets)?)
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.inputs.rows()
    }

    /// Whether the set holds no samples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Input dimensionality.
    pub fn input_dim(&self) -> usize {
        self.inputs.cols()
    }

    /// Target dimensionality.
    pub fn output_dim(&self) -> usize {
        self.targets.cols()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pairs_and_validates() {
        let set = TrainingSet::new(Matrix::zeros(3, 4), Matrix::zeros(3, 2)).unwrap();
        assert_eq!((set.len(), set.input_dim(), set.output_dim()), (3, 4, 2));
        assert!(!set.is_empty());
        assert!(TrainingSet::new(Matrix::zeros(3, 4), Matrix::zeros(2, 2)).is_err());
    }

    #[test]
    fn from_rows_packs_and_rejects_bad_shapes() {
        let set =
            TrainingSet::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]], &[vec![5.0], vec![6.0]])
                .unwrap();
        assert_eq!(set.inputs.row(1), &[3.0, 4.0]);
        assert_eq!(set.targets.row(0), &[5.0]);
        assert!(TrainingSet::from_rows(&[vec![1.0]], &[]).is_err());
        assert!(
            TrainingSet::from_rows(&[vec![1.0], vec![1.0, 2.0]], &[vec![0.0], vec![0.0]]).is_err()
        );
        let empty = TrainingSet::from_rows(&[], &[]).unwrap();
        assert!(empty.is_empty());
    }
}
