//! Minimal dense row-major matrix — just the operations the RBM and
//! MLP need, implemented plainly and tested thoroughly.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::error::AnnError;

/// Dense row-major `rows × cols` matrix of `f64`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Matrix filled from a closure `f(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Matrix with entries drawn uniformly from `[-scale, scale]`.
    pub fn random(rows: usize, cols: usize, scale: f64, rng: &mut impl Rng) -> Self {
        Self::from_fn(rows, cols, |_, _| rng.gen_range(-scale..=scale))
    }

    /// Builds from an already-flattened row-major buffer — the
    /// constructor the parallel sample generator uses after its
    /// day-ordered merge.
    ///
    /// # Errors
    ///
    /// Returns [`AnnError::DimensionMismatch`] when `data.len() !=
    /// rows * cols`.
    pub fn from_flat(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self, AnnError> {
        if data.len() != rows * cols {
            return Err(AnnError::dims(
                format!("{} elements for {rows}x{cols}", rows * cols),
                format!("{}", data.len()),
            ));
        }
        Ok(Self { rows, cols, data })
    }

    /// Builds from nested rows.
    ///
    /// # Errors
    ///
    /// Returns [`AnnError::DimensionMismatch`] for ragged input.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self, AnnError> {
        let n_cols = rows.first().map_or(0, Vec::len);
        if rows.iter().any(|r| r.len() != n_cols) {
            return Err(AnnError::dims(
                format!("every row of length {n_cols}"),
                "ragged rows".to_string(),
            ));
        }
        Ok(Self {
            rows: rows.len(),
            cols: n_cols,
            data: rows.concat(),
        })
    }

    /// Number of rows.
    pub const fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub const fn cols(&self) -> usize {
        self.cols
    }

    /// Element access.
    ///
    /// # Panics
    ///
    /// Panics out of range.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of range"
        );
        self.data[r * self.cols + c]
    }

    /// Mutable element access.
    ///
    /// # Panics
    ///
    /// Panics out of range.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of range"
        );
        self.data[r * self.cols + c] = v;
    }

    /// One row as a slice.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// One row as a mutable slice.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Reshapes in place to a zeroed `rows × cols` matrix. The backing
    /// allocation is kept once grown, so reused scratch matrices (the
    /// batched-inference ping-pong buffers) stop allocating after the
    /// first call.
    pub fn reset(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// Matrix–vector product `self · x`.
    ///
    /// # Errors
    ///
    /// Returns [`AnnError::DimensionMismatch`] when `x.len() != cols`.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>, AnnError> {
        let mut out = Vec::with_capacity(self.rows);
        self.matvec_into(x, &mut out)?;
        Ok(out)
    }

    /// [`Matrix::matvec`] writing into `out` (cleared first), so a
    /// reused buffer makes repeated products allocation-free.
    ///
    /// # Errors
    ///
    /// Returns [`AnnError::DimensionMismatch`] when `x.len() != cols`.
    pub fn matvec_into(&self, x: &[f64], out: &mut Vec<f64>) -> Result<(), AnnError> {
        if x.len() != self.cols {
            return Err(AnnError::dims(
                format!("vector of length {}", self.cols),
                format!("length {}", x.len()),
            ));
        }
        // Both paths below assign every element, so a correctly sized
        // buffer needs no zero-fill — the hot loops reuse one buffer
        // per layer and skip the memset entirely.
        if out.len() != self.rows {
            out.clear();
            out.resize(self.rows, 0.0);
        }
        // Row tiles go through the lane-parallel kernel: eight output
        // rows advance the same ascending-index mul-then-add chain in
        // the eight lanes of one vector (masked for the last partial
        // tile), so every lane reproduces the scalar dot product bit
        // for bit. Non-x86 builds take the scalar path below.
        let done = simd::matvec_rows(&self.data, self.rows, self.cols, x, out);
        for (r, o) in out.iter_mut().enumerate().skip(done) {
            *o = self.data[r * self.cols..(r + 1) * self.cols]
                .iter()
                .zip(x)
                .map(|(a, b)| a * b)
                .sum::<f64>();
        }
        Ok(())
    }

    /// Transposed matrix–vector product `selfᵀ · x`.
    ///
    /// # Errors
    ///
    /// Returns [`AnnError::DimensionMismatch`] when `x.len() != rows`.
    pub fn matvec_t(&self, x: &[f64]) -> Result<Vec<f64>, AnnError> {
        let mut out = Vec::with_capacity(self.cols);
        self.matvec_t_into(x, &mut out)?;
        Ok(out)
    }

    /// [`Matrix::matvec_t`] writing into `out` (cleared first), so a
    /// reused buffer makes repeated products allocation-free.
    ///
    /// # Errors
    ///
    /// Returns [`AnnError::DimensionMismatch`] when `x.len() != rows`.
    pub fn matvec_t_into(&self, x: &[f64], out: &mut Vec<f64>) -> Result<(), AnnError> {
        if x.len() != self.rows {
            return Err(AnnError::dims(
                format!("vector of length {}", self.rows),
                format!("length {}", x.len()),
            ));
        }
        if out.len() != self.cols {
            out.clear();
            out.resize(self.cols, 0.0);
        }
        // Eight consecutive output columns share one vector register
        // (masked for the last partial tile); each lane runs the exact
        // ascending-r accumulation (from 0.0, multiply then add) of
        // the scalar loop below, whose column chains are mutually
        // independent, so the split is bitwise neutral. The vector
        // kernel overwrites its columns, so only the scalar remainder
        // needs `out` zeroed first.
        let done = simd::matvec_t_cols(&self.data, self.rows, self.cols, x, out);
        if done < self.cols {
            for o in &mut out[done..] {
                *o = 0.0;
            }
            for (r, &xr) in x.iter().enumerate() {
                let row = &self.data[r * self.cols..(r + 1) * self.cols];
                for (o, &w) in out.iter_mut().zip(row).skip(done) {
                    *o += w * xr;
                }
            }
        }
        Ok(())
    }

    /// Rank-1 update `self += scale · a · bᵀ`.
    ///
    /// # Errors
    ///
    /// Returns [`AnnError::DimensionMismatch`] when shapes do not match.
    pub fn rank1_update(&mut self, a: &[f64], b: &[f64], scale: f64) -> Result<(), AnnError> {
        if a.len() != self.rows || b.len() != self.cols {
            return Err(AnnError::dims(
                format!("{}-vec and {}-vec", self.rows, self.cols),
                format!("{}-vec and {}-vec", a.len(), b.len()),
            ));
        }
        // Each element sees exactly one `w += (scale * a_r) * b_c`;
        // rows and columns are independent, so vectorising across
        // eight columns is bitwise identical to the scalar loop.
        if simd::rank1(&mut self.data, self.cols, a, b, scale) {
            return Ok(());
        }
        for (r, &ar) in a.iter().enumerate() {
            let row = &mut self.data[r * self.cols..(r + 1) * self.cols];
            for (w, &bc) in row.iter_mut().zip(b) {
                *w += scale * ar * bc;
            }
        }
        Ok(())
    }

    /// Two stacked rank-1 updates,
    /// `self += s1 · a1 · b1ᵀ` then `self += s2 · a2 · b2ᵀ`, fused
    /// into one sweep so each weight tile is loaded and stored once
    /// instead of twice (CD-1 applies exactly this pair for its
    /// positive and negative phases). Bit-identical to two
    /// [`Matrix::rank1_update`] calls in the same order: the updates
    /// are element-independent, and each element sees its two rounded
    /// additions in sequence.
    ///
    /// # Errors
    ///
    /// Returns [`AnnError::DimensionMismatch`] when either pair's
    /// shapes do not match.
    #[allow(clippy::too_many_arguments)]
    pub fn rank1_pair_update(
        &mut self,
        a1: &[f64],
        b1: &[f64],
        s1: f64,
        a2: &[f64],
        b2: &[f64],
        s2: f64,
    ) -> Result<(), AnnError> {
        if a1.len() != self.rows
            || b1.len() != self.cols
            || a2.len() != self.rows
            || b2.len() != self.cols
        {
            return Err(AnnError::dims(
                format!("two {}-vec / {}-vec pairs", self.rows, self.cols),
                format!("{}/{} and {}/{}", a1.len(), b1.len(), a2.len(), b2.len()),
            ));
        }
        if simd::rank1x2(&mut self.data, self.cols, a1, b1, s1, a2, b2, s2) {
            return Ok(());
        }
        self.rank1_update(a1, b1, s1)?;
        self.rank1_update(a2, b2, s2)
    }

    /// Fused backward-layer step: writes
    /// `out = (selfᵀ · delta) ⊙ acts ⊙ (1 − acts)` — the propagated
    /// delta already multiplied by the sigmoid derivative of the layer
    /// input — and then applies `self += scale · delta · actsᵀ`, all
    /// in one sweep over the weight rows.
    ///
    /// Bit-identical to `matvec_t_into`, the derivative loop, and
    /// `rank1_update` run in sequence: the transposed product touches
    /// row `r` only through `delta[r]`, and each row is read before it
    /// is updated, so every read sees the pre-update weights; the
    /// derivative factors multiply in the same order
    /// (`(d · a) · (1 − a)`) as the scalar loop.
    ///
    /// # Errors
    ///
    /// Returns [`AnnError::DimensionMismatch`] when `delta.len() !=
    /// rows` or `acts.len() != cols`.
    pub fn backprop_fused_into(
        &mut self,
        delta: &[f64],
        acts: &[f64],
        scale: f64,
        bias: &mut [f64],
        out: &mut Vec<f64>,
    ) -> Result<(), AnnError> {
        if delta.len() != self.rows || acts.len() != self.cols || bias.len() != self.rows {
            return Err(AnnError::dims(
                format!("{0}-vec, {1}-vec and {0}-vec", self.rows, self.cols),
                format!(
                    "{}-vec, {}-vec and {}-vec",
                    delta.len(),
                    acts.len(),
                    bias.len()
                ),
            ));
        }
        if out.len() != self.cols {
            out.clear();
            out.resize(self.cols, 0.0);
        }
        if simd::backprop_fused(&mut self.data, self.cols, delta, acts, scale, bias, out) {
            return Ok(());
        }
        // Reference path: the exact sequence the fused kernel
        // replicates, sharing one sweep where it can.
        self.matvec_t_into(delta, out)?;
        for (o, &a) in out.iter_mut().zip(acts) {
            *o = *o * a * (1.0 - a);
        }
        axpy(bias, scale, delta);
        self.rank1_update(delta, acts, scale)
    }

    /// [`Matrix::rank1_update`] with the matching bias update
    /// `bias[r] += scale · a[r]` folded into the row sweep — the
    /// gradient step of a layer with nothing to propagate. The bias
    /// addend is the row's hoisted `scale · a_r` product, added once,
    /// so the result is bit-identical to `rank1_update` followed by
    /// the bias loop.
    ///
    /// # Errors
    ///
    /// Returns [`AnnError::DimensionMismatch`] when shapes do not
    /// match.
    pub fn rank1_bias_update(
        &mut self,
        a: &[f64],
        b: &[f64],
        scale: f64,
        bias: &mut [f64],
    ) -> Result<(), AnnError> {
        if a.len() != self.rows || b.len() != self.cols || bias.len() != self.rows {
            return Err(AnnError::dims(
                format!("{0}-vec, {1}-vec and {0}-vec", self.rows, self.cols),
                format!("{}-vec, {}-vec and {}-vec", a.len(), b.len(), bias.len()),
            ));
        }
        if simd::rank1_bias(&mut self.data, self.cols, a, b, scale, bias) {
            return Ok(());
        }
        axpy(bias, scale, a);
        self.rank1_update(a, b, scale)
    }

    /// Frobenius norm (for convergence diagnostics in tests).
    pub fn frobenius(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// The transpose, row-major.
    pub fn transposed(&self) -> Self {
        let mut out = Self::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Matrix product `self · other`.
    ///
    /// Packs `other` transposed, then runs the cache-blocked row-dot
    /// kernel of [`Matrix::matmul_bt`]; every output element is the
    /// same ascending-index dot product [`Matrix::matvec`] computes, so
    /// batching is bitwise identical to per-column products.
    ///
    /// # Errors
    ///
    /// Returns [`AnnError::DimensionMismatch`] when `self.cols() !=
    /// other.rows()`.
    pub fn matmul(&self, other: &Self) -> Result<Self, AnnError> {
        if self.cols != other.rows {
            return Err(AnnError::dims(
                format!("{} rows on the right", self.cols),
                format!("{}", other.rows),
            ));
        }
        self.matmul_bt(&other.transposed())
    }

    /// Matrix product `self · other` written into `out` (no
    /// allocation beyond the transposed packing of `other`).
    ///
    /// # Errors
    ///
    /// Returns [`AnnError::DimensionMismatch`] when the inner
    /// dimensions or `out`'s shape do not line up.
    pub fn matmul_into(&self, other: &Self, out: &mut Self) -> Result<(), AnnError> {
        if self.cols != other.rows {
            return Err(AnnError::dims(
                format!("{} rows on the right", self.cols),
                format!("{}", other.rows),
            ));
        }
        self.matmul_bt_into(&other.transposed(), out)
    }

    /// Matrix product against a pre-transposed right operand:
    /// `self · otherᵀ`, where `other` is stored `cols_out × k`
    /// row-major. Both operands are then read along contiguous rows,
    /// which is what makes the blocked kernel cache-friendly.
    ///
    /// # Errors
    ///
    /// Returns [`AnnError::DimensionMismatch`] when the shared inner
    /// dimension differs.
    pub fn matmul_bt(&self, other: &Self) -> Result<Self, AnnError> {
        let mut out = Self::zeros(self.rows, other.rows);
        self.matmul_bt_into(other, &mut out)?;
        Ok(out)
    }

    /// [`Matrix::matmul_bt`] writing into `out`.
    ///
    /// # Errors
    ///
    /// Returns [`AnnError::DimensionMismatch`] when the inner dimension
    /// or `out`'s shape do not line up.
    pub fn matmul_bt_into(&self, other: &Self, out: &mut Self) -> Result<(), AnnError> {
        if self.cols != other.cols {
            return Err(AnnError::dims(
                format!("shared inner dimension {}", self.cols),
                format!("{}", other.cols),
            ));
        }
        if out.rows != self.rows || out.cols != other.rows {
            return Err(AnnError::dims(
                format!("{}x{} output", self.rows, other.rows),
                format!("{}x{}", out.rows, out.cols),
            ));
        }
        let k = self.cols;
        // Where the hardware supports it, full 8-row tiles go through
        // the lane-parallel kernel: eight samples advance the same
        // ascending-k mul-then-add chain in the eight lanes of one
        // vector, so every lane reproduces `matvec` bit for bit while
        // the batch amortises the instruction stream. Rows past the
        // last full tile (and non-x86 builds) take the scalar path.
        let simd_rows = simd::matmul_bt_tiles(
            &self.data,
            self.rows,
            k,
            &other.data,
            other.rows,
            &mut out.data,
        );
        // Tile over (i, j) so a block of `other` rows stays hot in
        // cache while a block of `self` rows streams through it. The
        // k loop is NOT tiled: each element keeps the single
        // ascending-k accumulator of `matvec`, so the blocked product
        // is bitwise identical to the naive one.
        const BLOCK: usize = 32;
        for i0 in (simd_rows..self.rows).step_by(BLOCK) {
            let i_end = (i0 + BLOCK).min(self.rows);
            for j0 in (0..other.rows).step_by(BLOCK) {
                let j_end = (j0 + BLOCK).min(other.rows);
                for i in i0..i_end {
                    let a = &self.data[i * k..(i + 1) * k];
                    let row_out = &mut out.data[i * out.cols..(i + 1) * out.cols];
                    for (j, o) in row_out.iter_mut().enumerate().take(j_end).skip(j0) {
                        let b = &other.data[j * k..(j + 1) * k];
                        let mut acc = 0.0;
                        for t in 0..k {
                            acc += a[t] * b[t];
                        }
                        *o = acc;
                    }
                }
            }
        }
        Ok(())
    }
}

/// Lane-parallel product tiles for [`Matrix::matmul_bt_into`].
///
/// The batched forward's throughput win comes from vectorising across
/// the *batch* dimension: one vector register holds the accumulators
/// of `LANES` samples, and every step performs the same
/// `acc[l] += a[l][t] * b[t]` (multiply, then add — never a fused
/// multiply-add, whose single rounding would change the value) in
/// ascending `t`, exactly the scalar [`Matrix::matvec`] recurrence.
/// The results are therefore bitwise identical to the scalar kernel on
/// every lane; only the instruction count per sample shrinks.
mod simd {
    /// Runs as many full lane tiles as the hardware allows and returns
    /// the number of leading rows handled (always a multiple of the
    /// lane width; `0` when SIMD is unavailable or the batch is smaller
    /// than one tile).
    #[cfg(target_arch = "x86_64")]
    pub(super) fn matmul_bt_tiles(
        a: &[f64],
        a_rows: usize,
        k: usize,
        b: &[f64],
        b_rows: usize,
        out: &mut [f64],
    ) -> usize {
        if a_rows >= 8 && k > 0 && b_rows > 0 && is_x86_feature_detected!("avx512f") {
            // SAFETY: the avx512f requirement is checked at runtime.
            unsafe { tiles_avx512(a, a_rows, k, b, b_rows, out) }
        } else {
            0
        }
    }

    #[cfg(not(target_arch = "x86_64"))]
    pub(super) fn matmul_bt_tiles(
        _a: &[f64],
        _a_rows: usize,
        _k: usize,
        _b: &[f64],
        _b_rows: usize,
        _out: &mut [f64],
    ) -> usize {
        0
    }

    /// Lane-parallel `W · x`: eight output rows per vector, the
    /// strided row elements fetched with a masked gather so partial
    /// tiles need no scalar tail. Returns the number of leading rows
    /// written (`rows` when the kernel ran, `0` when SIMD is
    /// unavailable). No heap pack and no stack staging — a requirement
    /// of both the engine's and the trainer's zero-alloc gates.
    #[cfg(target_arch = "x86_64")]
    pub(super) fn matvec_rows(
        w: &[f64],
        rows: usize,
        k: usize,
        x: &[f64],
        out: &mut [f64],
    ) -> usize {
        if rows > 0 && k > 0 && is_x86_feature_detected!("avx512f") {
            // SAFETY: the avx512f requirement is checked at runtime.
            unsafe { matvec_rows_avx512(w, rows, k, x, out) }
        } else {
            0
        }
    }

    #[cfg(not(target_arch = "x86_64"))]
    pub(super) fn matvec_rows(
        _w: &[f64],
        _rows: usize,
        _k: usize,
        _x: &[f64],
        _out: &mut [f64],
    ) -> usize {
        0
    }

    /// Eight-lane AVX-512 kernel for [`matvec_rows`]. Covers every
    /// row: full tiles use an all-lanes mask, the final partial tile a
    /// narrower one, so the per-lane recurrence — ascending-`t`
    /// multiply then add, from a 0.0 accumulator — is the scalar dot
    /// product bit for bit on every row.
    ///
    /// # Safety
    ///
    /// The caller must have verified `avx512f` support at runtime.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx512f")]
    unsafe fn matvec_rows_avx512(
        w: &[f64],
        rows: usize,
        k: usize,
        x: &[f64],
        out: &mut [f64],
    ) -> usize {
        use std::arch::x86_64::{
            _mm512_add_pd, _mm512_mask_i64gather_pd, _mm512_mask_storeu_pd, _mm512_mul_pd,
            _mm512_set1_pd, _mm512_setr_epi64, _mm512_setzero_pd, _mm512_storeu_pd,
        };
        const LANES: usize = 8;
        let stride = k as i64;
        // Lane `l` reads row `r0 + l`: gather indices step by the row
        // stride.
        let idx = _mm512_setr_epi64(
            0,
            stride,
            2 * stride,
            3 * stride,
            4 * stride,
            5 * stride,
            6 * stride,
            7 * stride,
        );
        let mut r0 = 0usize;
        // Paired tiles: two accumulator chains advance per pass,
        // sharing each broadcast of `x[t]` and overlapping their
        // gather latencies. Each chain is still its rows' exact
        // ascending-`t` mul-then-add recurrence, so the pairing only
        // changes scheduling, never values.
        while rows - r0 > LANES {
            let lanes1 = (rows - r0 - LANES).min(LANES);
            let m1 = ((1u16 << lanes1) - 1) as u8;
            let mut acc0 = _mm512_setzero_pd();
            let mut acc1 = _mm512_setzero_pd();
            // SAFETY: `w` is rows × k and `r0 + LANES + lanes1 <=
            // rows`, so both tiles' rows start within bounds; the
            // second gather only touches lanes under `m1`.
            let base0 = unsafe { w.as_ptr().add(r0 * k) };
            let base1 = unsafe { w.as_ptr().add((r0 + LANES) * k) };
            for (t, &xt) in x.iter().enumerate() {
                let xv = _mm512_set1_pd(xt);
                // SAFETY: active lane `l` reads `w[(r0 + l) * k + t]`
                // resp. `w[(r0 + LANES + l) * k + t]`, in bounds by the
                // mask construction above.
                let w0 = unsafe {
                    _mm512_mask_i64gather_pd(_mm512_setzero_pd(), 0xFF, idx, base0.add(t), 8)
                };
                let w1 = unsafe {
                    _mm512_mask_i64gather_pd(_mm512_setzero_pd(), m1, idx, base1.add(t), 8)
                };
                acc0 = _mm512_add_pd(acc0, _mm512_mul_pd(w0, xv));
                acc1 = _mm512_add_pd(acc1, _mm512_mul_pd(w1, xv));
            }
            // SAFETY: the stores write eight rows at `r0` and the
            // `lanes1` rows under `m1` at `r0 + LANES`, all within
            // `out`'s `rows` elements.
            unsafe {
                _mm512_storeu_pd(out.as_mut_ptr().add(r0), acc0);
                _mm512_mask_storeu_pd(out.as_mut_ptr().add(r0 + LANES), m1, acc1);
            }
            r0 += LANES + lanes1;
        }
        if r0 < rows {
            let lanes = rows - r0;
            let mask = ((1u16 << lanes) - 1) as u8;
            let mut acc = _mm512_setzero_pd();
            // SAFETY: `w` is rows × k, so rows r0..r0 + lanes all start
            // within bounds; the gather only touches lanes under `mask`.
            let base = unsafe { w.as_ptr().add(r0 * k) };
            for (t, &xt) in x.iter().enumerate() {
                // SAFETY: active lane `l` reads `w[(r0 + l) * k + t]`,
                // in bounds by the mask construction above.
                let wv = unsafe {
                    _mm512_mask_i64gather_pd(_mm512_setzero_pd(), mask, idx, base.add(t), 8)
                };
                acc = _mm512_add_pd(acc, _mm512_mul_pd(wv, _mm512_set1_pd(xt)));
            }
            // SAFETY: the store writes only the `lanes` rows under
            // `mask`, all within `out`'s `rows` elements.
            unsafe { _mm512_mask_storeu_pd(out.as_mut_ptr().add(r0), mask, acc) };
        }
        rows
    }

    /// Lane-parallel `Wᵀ · x`: eight consecutive output columns per
    /// vector, loaded contiguously from each matrix row, the final
    /// partial tile through a masked load so no scalar tail remains.
    /// Returns the number of leading columns written (`cols` when the
    /// kernel ran, `0` when SIMD is unavailable).
    #[cfg(target_arch = "x86_64")]
    pub(super) fn matvec_t_cols(
        w: &[f64],
        rows: usize,
        cols: usize,
        x: &[f64],
        out: &mut [f64],
    ) -> usize {
        if cols > 0 && rows > 0 && is_x86_feature_detected!("avx512f") {
            // SAFETY: the avx512f requirement is checked at runtime.
            unsafe { matvec_t_cols_avx512(w, cols, x, out) }
        } else {
            0
        }
    }

    #[cfg(not(target_arch = "x86_64"))]
    pub(super) fn matvec_t_cols(
        _w: &[f64],
        _rows: usize,
        _cols: usize,
        _x: &[f64],
        _out: &mut [f64],
    ) -> usize {
        0
    }

    /// Eight-lane AVX-512 kernel for [`matvec_t_cols`]. Covers every
    /// column: each lane runs the exact ascending-`r` accumulation
    /// (from 0.0, multiply then add) of the scalar loop, and the
    /// column chains are mutually independent, so masking the final
    /// partial tile is bitwise neutral.
    ///
    /// # Safety
    ///
    /// The caller must have verified `avx512f` support at runtime.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx512f")]
    unsafe fn matvec_t_cols_avx512(w: &[f64], cols: usize, x: &[f64], out: &mut [f64]) -> usize {
        use std::arch::x86_64::{
            _mm512_add_pd, _mm512_mask_storeu_pd, _mm512_maskz_loadu_pd, _mm512_mul_pd,
            _mm512_set1_pd, _mm512_setzero_pd,
        };
        const LANES: usize = 8;
        let mut c0 = 0usize;
        while c0 < cols {
            let lanes = (cols - c0).min(LANES);
            let mask = ((1u16 << lanes) - 1) as u8;
            let mut acc = _mm512_setzero_pd();
            for (r, &xr) in x.iter().enumerate() {
                // SAFETY: the masked load reads only the `lanes`
                // elements at `r * cols + c0`, in bounds since
                // `c0 + lanes <= cols`.
                let wv = unsafe { _mm512_maskz_loadu_pd(mask, w.as_ptr().add(r * cols + c0)) };
                acc = _mm512_add_pd(acc, _mm512_mul_pd(wv, _mm512_set1_pd(xr)));
            }
            // SAFETY: the store writes only the `lanes` columns under
            // `mask`, all within `out`'s `cols` elements.
            unsafe { _mm512_mask_storeu_pd(out.as_mut_ptr().add(c0), mask, acc) };
            c0 += lanes;
        }
        cols
    }

    /// Vectorised rank-1 update `w += scale · a · bᵀ`. Returns `true`
    /// when the whole update was performed (including column tails),
    /// `false` when the caller must run the scalar loop instead.
    #[cfg(target_arch = "x86_64")]
    pub(super) fn rank1(w: &mut [f64], cols: usize, a: &[f64], b: &[f64], scale: f64) -> bool {
        if cols >= 8 && is_x86_feature_detected!("avx512f") {
            // SAFETY: the avx512f requirement is checked at runtime;
            // with `BIAS = false` the bias pointer is never read.
            unsafe { rank1_avx512::<false>(w, cols, a, b, scale, std::ptr::null_mut()) };
            true
        } else {
            false
        }
    }

    #[cfg(not(target_arch = "x86_64"))]
    pub(super) fn rank1(_w: &mut [f64], _cols: usize, _a: &[f64], _b: &[f64], _scale: f64) -> bool {
        false
    }

    /// [`rank1`] with the row-indexed bias update
    /// `bias[r] += scale · a[r]` folded into the sweep. Returns `true`
    /// when performed.
    #[cfg(target_arch = "x86_64")]
    pub(super) fn rank1_bias(
        w: &mut [f64],
        cols: usize,
        a: &[f64],
        b: &[f64],
        scale: f64,
        bias: &mut [f64],
    ) -> bool {
        if cols >= 8 && is_x86_feature_detected!("avx512f") {
            // SAFETY: the avx512f requirement is checked at runtime;
            // the caller validated `bias.len() == a.len() == rows`.
            unsafe { rank1_avx512::<true>(w, cols, a, b, scale, bias.as_mut_ptr()) };
            true
        } else {
            false
        }
    }

    #[cfg(not(target_arch = "x86_64"))]
    pub(super) fn rank1_bias(
        _w: &mut [f64],
        _cols: usize,
        _a: &[f64],
        _b: &[f64],
        _scale: f64,
        _bias: &mut [f64],
    ) -> bool {
        false
    }

    /// Eight-lane AVX-512 kernel for [`rank1`] and [`rank1_bias`]:
    /// with `BIAS` set, each row also adds its hoisted `scale · a_r`
    /// product to `bias[r]` — the exact addend of the scalar bias
    /// loop, applied once.
    ///
    /// # Safety
    ///
    /// The caller must have verified `avx512f` support at runtime, and
    /// when `BIAS` is set, `bias` must point at `a.len()` writable
    /// elements.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx512f")]
    unsafe fn rank1_avx512<const BIAS: bool>(
        w: &mut [f64],
        cols: usize,
        a: &[f64],
        b: &[f64],
        scale: f64,
        bias: *mut f64,
    ) {
        use std::arch::x86_64::{
            _mm256_add_pd, _mm256_loadu_pd, _mm256_mul_pd, _mm256_set1_pd, _mm256_storeu_pd,
            _mm512_add_pd, _mm512_loadu_pd, _mm512_mul_pd, _mm512_set1_pd, _mm512_storeu_pd,
            _mm_add_pd, _mm_loadu_pd, _mm_mul_pd, _mm_set1_pd, _mm_storeu_pd,
        };
        const LANES: usize = 8;
        let full = (cols / LANES) * LANES;
        for (r, &ar) in a.iter().enumerate() {
            // Hoisting `scale * ar` is left-associativity, not a
            // reassociation: `w += (scale * ar) * bc` is the scalar
            // expression exactly.
            let s = scale * ar;
            let sv = _mm512_set1_pd(s);
            if BIAS {
                // SAFETY: `bias` spans `a.len()` elements when `BIAS`
                // is set (caller contract) and `r < a.len()`.
                unsafe { *bias.add(r) += s };
            }
            // SAFETY: `w` is rows × cols with `r < a.len() == rows`.
            let row = unsafe { w.as_mut_ptr().add(r * cols) };
            let mut c0 = 0usize;
            while c0 < full {
                // SAFETY: `c0 + LANES <= cols`, so both loads and the
                // store stay inside the row / `b`.
                unsafe {
                    let wv = _mm512_loadu_pd(row.add(c0));
                    let bv = _mm512_loadu_pd(b.as_ptr().add(c0));
                    _mm512_storeu_pd(row.add(c0), _mm512_add_pd(wv, _mm512_mul_pd(sv, bv)));
                }
                c0 += LANES;
            }
            // Stepped column tail — one 4-wide, one 2-wide, one scalar
            // op at most. Each element still sees its single
            // `w += s * b_c`. Plain (unmasked) narrow stores, and no
            // wider overlapped tile: a masked store would pay the
            // read-modify-write forwarding stall, and an 8-wide tile
            // ending at the row's last column would partially overlap
            // the full tile just stored, which also defeats
            // store-to-load forwarding — both measured as large
            // regressions here.
            if cols - c0 >= 4 {
                // SAFETY: `c0 + 4 <= cols`, inside both the row and `b`.
                unsafe {
                    let wv = _mm256_loadu_pd(row.add(c0));
                    let bv = _mm256_loadu_pd(b.as_ptr().add(c0));
                    _mm256_storeu_pd(
                        row.add(c0),
                        _mm256_add_pd(wv, _mm256_mul_pd(_mm256_set1_pd(s), bv)),
                    );
                }
                c0 += 4;
            }
            if cols - c0 >= 2 {
                // SAFETY: `c0 + 2 <= cols`, inside both the row and `b`.
                unsafe {
                    let wv = _mm_loadu_pd(row.add(c0));
                    let bv = _mm_loadu_pd(b.as_ptr().add(c0));
                    _mm_storeu_pd(row.add(c0), _mm_add_pd(wv, _mm_mul_pd(_mm_set1_pd(s), bv)));
                }
                c0 += 2;
            }
            if c0 < cols {
                // SAFETY: `c0 < cols`, inside both the row and `b`.
                unsafe { *row.add(c0) += s * *b.get_unchecked(c0) };
            }
        }
    }

    /// Fused pair of rank-1 updates
    /// `w += s1 · a1 · b1ᵀ; w += s2 · a2 · b2ᵀ` in one sweep. Returns
    /// `true` when performed, `false` when the caller must fall back
    /// to two sequential updates.
    #[cfg(target_arch = "x86_64")]
    #[allow(clippy::too_many_arguments)]
    pub(super) fn rank1x2(
        w: &mut [f64],
        cols: usize,
        a1: &[f64],
        b1: &[f64],
        s1: f64,
        a2: &[f64],
        b2: &[f64],
        s2: f64,
    ) -> bool {
        if cols >= 8 && is_x86_feature_detected!("avx512f") {
            // SAFETY: the avx512f requirement is checked at runtime.
            unsafe { rank1x2_avx512(w, cols, a1, b1, s1, a2, b2, s2) };
            true
        } else {
            false
        }
    }

    #[cfg(not(target_arch = "x86_64"))]
    #[allow(clippy::too_many_arguments)]
    pub(super) fn rank1x2(
        _w: &mut [f64],
        _cols: usize,
        _a1: &[f64],
        _b1: &[f64],
        _s1: f64,
        _a2: &[f64],
        _b2: &[f64],
        _s2: f64,
    ) -> bool {
        false
    }

    /// Eight-lane AVX-512 kernel for [`rank1x2`]: the structure of
    /// [`rank1_avx512`] with both updates' addends applied — in
    /// argument order — between one load and one store of each weight
    /// tile, and the same stepped plain-store column tail. The
    /// per-element operation sequence is exactly the two sequential
    /// scalar updates (the passes are element-independent, so
    /// interleaving rows changes nothing).
    ///
    /// # Safety
    ///
    /// The caller must have verified `avx512f` support at runtime.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx512f")]
    #[allow(clippy::too_many_arguments)]
    unsafe fn rank1x2_avx512(
        w: &mut [f64],
        cols: usize,
        a1: &[f64],
        b1: &[f64],
        s1: f64,
        a2: &[f64],
        b2: &[f64],
        s2: f64,
    ) {
        use std::arch::x86_64::{
            _mm256_add_pd, _mm256_loadu_pd, _mm256_mul_pd, _mm256_set1_pd, _mm256_storeu_pd,
            _mm512_add_pd, _mm512_loadu_pd, _mm512_mul_pd, _mm512_set1_pd, _mm512_storeu_pd,
            _mm_add_pd, _mm_loadu_pd, _mm_mul_pd, _mm_set1_pd, _mm_storeu_pd,
        };
        const LANES: usize = 8;
        let full = (cols / LANES) * LANES;
        for (r, (&ar1, &ar2)) in a1.iter().zip(a2).enumerate() {
            let t1 = s1 * ar1;
            let t2 = s2 * ar2;
            let sv1 = _mm512_set1_pd(t1);
            let sv2 = _mm512_set1_pd(t2);
            // SAFETY: `w` is rows × cols with `r < rows`.
            let row = unsafe { w.as_mut_ptr().add(r * cols) };
            let mut c0 = 0usize;
            while c0 < full {
                // SAFETY: `c0 + LANES <= cols`, so the loads and the
                // store stay inside the row / `b1` / `b2`.
                unsafe {
                    let wv = _mm512_loadu_pd(row.add(c0));
                    let u1 =
                        _mm512_add_pd(wv, _mm512_mul_pd(sv1, _mm512_loadu_pd(b1.as_ptr().add(c0))));
                    let u2 =
                        _mm512_add_pd(u1, _mm512_mul_pd(sv2, _mm512_loadu_pd(b2.as_ptr().add(c0))));
                    _mm512_storeu_pd(row.add(c0), u2);
                }
                c0 += LANES;
            }
            if cols - c0 >= 4 {
                // SAFETY: `c0 + 4 <= cols`, inside the row and both
                // `b` vectors.
                unsafe {
                    let wv = _mm256_loadu_pd(row.add(c0));
                    let u1 = _mm256_add_pd(
                        wv,
                        _mm256_mul_pd(_mm256_set1_pd(t1), _mm256_loadu_pd(b1.as_ptr().add(c0))),
                    );
                    let u2 = _mm256_add_pd(
                        u1,
                        _mm256_mul_pd(_mm256_set1_pd(t2), _mm256_loadu_pd(b2.as_ptr().add(c0))),
                    );
                    _mm256_storeu_pd(row.add(c0), u2);
                }
                c0 += 4;
            }
            if cols - c0 >= 2 {
                // SAFETY: `c0 + 2 <= cols`, inside the row and both
                // `b` vectors.
                unsafe {
                    let wv = _mm_loadu_pd(row.add(c0));
                    let u1 = _mm_add_pd(
                        wv,
                        _mm_mul_pd(_mm_set1_pd(t1), _mm_loadu_pd(b1.as_ptr().add(c0))),
                    );
                    let u2 = _mm_add_pd(
                        u1,
                        _mm_mul_pd(_mm_set1_pd(t2), _mm_loadu_pd(b2.as_ptr().add(c0))),
                    );
                    _mm_storeu_pd(row.add(c0), u2);
                }
                c0 += 2;
            }
            if c0 < cols {
                // SAFETY: `c0 < cols`, inside the row and both `b`
                // vectors.
                unsafe {
                    let wc = row.add(c0);
                    *wc += t1 * *b1.get_unchecked(c0);
                    *wc += t2 * *b2.get_unchecked(c0);
                }
            }
        }
    }

    /// Vectorised `y[i] += a · x[i]` over `n` elements. Returns `true`
    /// when performed.
    #[cfg(target_arch = "x86_64")]
    pub(super) fn axpy(y: &mut [f64], a: f64, x: &[f64], n: usize) -> bool {
        if n > 0 && is_x86_feature_detected!("avx512f") {
            // SAFETY: the avx512f requirement is checked at runtime.
            unsafe { axpy_avx512(&mut y[..n], a, &x[..n]) };
            true
        } else {
            false
        }
    }

    #[cfg(not(target_arch = "x86_64"))]
    pub(super) fn axpy(_y: &mut [f64], _a: f64, _x: &[f64], _n: usize) -> bool {
        false
    }

    /// Eight-lane AVX-512 kernel for [`axpy`]: per lane the exact
    /// scalar `y + (a · x)`, masked loads for the partial tile, plain
    /// stepped stores via [`store_low`].
    ///
    /// # Safety
    ///
    /// The caller must have verified `avx512f` support at runtime.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx512f")]
    unsafe fn axpy_avx512(y: &mut [f64], a: f64, x: &[f64]) {
        use std::arch::x86_64::{
            _mm512_add_pd, _mm512_maskz_loadu_pd, _mm512_mul_pd, _mm512_set1_pd,
        };
        const LANES: usize = 8;
        let av = _mm512_set1_pd(a);
        let n = y.len();
        let mut i = 0usize;
        while i < n {
            let lanes = (n - i).min(LANES);
            let m = ((1u16 << lanes) - 1) as u8;
            // SAFETY: the masked loads and the stepped store touch only
            // the `lanes` elements at `i`, in bounds since
            // `i + lanes <= n` and `x` holds `n` elements too.
            unsafe {
                let yv = _mm512_maskz_loadu_pd(m, y.as_ptr().add(i));
                let xv = _mm512_maskz_loadu_pd(m, x.as_ptr().add(i));
                store_low(
                    y.as_mut_ptr().add(i),
                    _mm512_add_pd(yv, _mm512_mul_pd(av, xv)),
                    lanes,
                );
            }
            i += lanes;
        }
    }

    /// Vectorised `y[i] += a · (p[i] − n[i])` over `len` elements.
    /// Returns `true` when performed.
    #[cfg(target_arch = "x86_64")]
    pub(super) fn axpy_diff(y: &mut [f64], a: f64, p: &[f64], n: &[f64], len: usize) -> bool {
        if len > 0 && is_x86_feature_detected!("avx512f") {
            // SAFETY: the avx512f requirement is checked at runtime.
            unsafe { axpy_diff_avx512(&mut y[..len], a, &p[..len], &n[..len]) };
            true
        } else {
            false
        }
    }

    #[cfg(not(target_arch = "x86_64"))]
    pub(super) fn axpy_diff(_y: &mut [f64], _a: f64, _p: &[f64], _n: &[f64], _len: usize) -> bool {
        false
    }

    /// Eight-lane AVX-512 kernel for [`axpy_diff`]: per lane the exact
    /// scalar `y + (a · (p − n))` — subtract, multiply, add, each an
    /// exactly rounded IEEE operation in scalar order.
    ///
    /// # Safety
    ///
    /// The caller must have verified `avx512f` support at runtime.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx512f")]
    unsafe fn axpy_diff_avx512(y: &mut [f64], a: f64, p: &[f64], n: &[f64]) {
        use std::arch::x86_64::{
            _mm512_add_pd, _mm512_maskz_loadu_pd, _mm512_mul_pd, _mm512_set1_pd, _mm512_sub_pd,
        };
        const LANES: usize = 8;
        let av = _mm512_set1_pd(a);
        let len = y.len();
        let mut i = 0usize;
        while i < len {
            let lanes = (len - i).min(LANES);
            let m = ((1u16 << lanes) - 1) as u8;
            // SAFETY: the masked loads and the stepped store touch only
            // the `lanes` elements at `i`; `p` and `n` hold `len`
            // elements as well.
            unsafe {
                let yv = _mm512_maskz_loadu_pd(m, y.as_ptr().add(i));
                let pv = _mm512_maskz_loadu_pd(m, p.as_ptr().add(i));
                let nv = _mm512_maskz_loadu_pd(m, n.as_ptr().add(i));
                let d = _mm512_mul_pd(av, _mm512_sub_pd(pv, nv));
                store_low(y.as_mut_ptr().add(i), _mm512_add_pd(yv, d), lanes);
            }
            i += lanes;
        }
    }

    /// Vectorised squared-loss output delta
    /// `d[i] = (o[i] − t[i]) · o[i] · (1 − o[i])` over `n` elements.
    /// Returns `true` when performed.
    #[cfg(target_arch = "x86_64")]
    pub(super) fn delta_out(d: &mut [f64], o: &[f64], t: &[f64], n: usize) -> bool {
        if n > 0 && is_x86_feature_detected!("avx512f") {
            // SAFETY: the avx512f requirement is checked at runtime.
            unsafe { delta_out_avx512(&mut d[..n], &o[..n], &t[..n]) };
            true
        } else {
            false
        }
    }

    #[cfg(not(target_arch = "x86_64"))]
    pub(super) fn delta_out(_d: &mut [f64], _o: &[f64], _t: &[f64], _n: usize) -> bool {
        false
    }

    /// Eight-lane AVX-512 kernel for [`delta_out`]: per lane the exact
    /// left-associated scalar product `((o − t) · o) · (1 − o)`.
    ///
    /// # Safety
    ///
    /// The caller must have verified `avx512f` support at runtime.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx512f")]
    unsafe fn delta_out_avx512(d: &mut [f64], o: &[f64], t: &[f64]) {
        use std::arch::x86_64::{
            _mm512_maskz_loadu_pd, _mm512_mul_pd, _mm512_set1_pd, _mm512_sub_pd,
        };
        const LANES: usize = 8;
        let ones = _mm512_set1_pd(1.0);
        let n = d.len();
        let mut i = 0usize;
        while i < n {
            let lanes = (n - i).min(LANES);
            let m = ((1u16 << lanes) - 1) as u8;
            // SAFETY: the masked loads and the stepped store touch only
            // the `lanes` elements at `i`; `o` and `t` hold `n`
            // elements as well.
            unsafe {
                let ov = _mm512_maskz_loadu_pd(m, o.as_ptr().add(i));
                let tv = _mm512_maskz_loadu_pd(m, t.as_ptr().add(i));
                let v = _mm512_mul_pd(
                    _mm512_mul_pd(_mm512_sub_pd(ov, tv), ov),
                    _mm512_sub_pd(ones, ov),
                );
                store_low(d.as_mut_ptr().add(i), v, lanes);
            }
            i += lanes;
        }
    }

    /// Fused backward-layer kernel for
    /// [`super::Matrix::backprop_fused_into`]. Returns `true` when the
    /// whole step was performed, `false` when the caller must run the
    /// reference sequence instead (no AVX-512, or more columns than
    /// the two-tile kernel covers).
    #[cfg(target_arch = "x86_64")]
    pub(super) fn backprop_fused(
        w: &mut [f64],
        cols: usize,
        delta: &[f64],
        acts: &[f64],
        scale: f64,
        bias: &mut [f64],
        out: &mut [f64],
    ) -> bool {
        if (1..=16).contains(&cols) && !delta.is_empty() && is_x86_feature_detected!("avx512f") {
            // SAFETY: the avx512f requirement is checked at runtime.
            unsafe { backprop_fused_avx512(w, cols, delta, acts, scale, bias, out) };
            true
        } else {
            false
        }
    }

    #[cfg(not(target_arch = "x86_64"))]
    pub(super) fn backprop_fused(
        _w: &mut [f64],
        _cols: usize,
        _delta: &[f64],
        _acts: &[f64],
        _scale: f64,
        _bias: &mut [f64],
        _out: &mut [f64],
    ) -> bool {
        false
    }

    /// Eight-lane AVX-512 kernel for [`backprop_fused`], covering up
    /// to two column tiles (`cols <= 16` — every backward layer shape
    /// in the trainer). Each row of the pre-update weights is loaded
    /// once and feeds both the transposed-product accumulators and the
    /// rank-1 update, halving the traffic over `W` versus the separate
    /// kernels; the updated row goes back through plain full or
    /// stepped narrow stores ([`store_low`]) because masked
    /// read-modify-write stores defeat store-to-load forwarding for
    /// the next iteration's reads of the same lines.
    ///
    /// Bitwise equivalence to the reference sequence: each accumulator
    /// lane is its column's exact ascending-`r` mul-then-add
    /// recurrence from 0.0; the update applies the scalar
    /// `w += (scale * delta_r) * a_c` per element to a row already
    /// read; and the derivative factors multiply in scalar order,
    /// `(d · a) · (1 − a)`, with `1 − a` a single exactly-rounded
    /// subtraction.
    ///
    /// # Safety
    ///
    /// The caller must have verified `avx512f` support at runtime;
    /// `w.len()` must equal `delta.len() * cols`, `acts`/`out` must
    /// each hold `cols` elements, and `bias` must hold `delta.len()`
    /// elements.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx512f")]
    unsafe fn backprop_fused_avx512(
        w: &mut [f64],
        cols: usize,
        delta: &[f64],
        acts: &[f64],
        scale: f64,
        bias: &mut [f64],
        out: &mut [f64],
    ) {
        use std::arch::x86_64::{
            _mm512_add_pd, _mm512_maskz_loadu_pd, _mm512_mul_pd, _mm512_set1_pd, _mm512_setzero_pd,
            _mm512_sub_pd,
        };
        const LANES: usize = 8;
        let l0 = cols.min(LANES);
        let m0 = ((1u16 << l0) - 1) as u8;
        let l1 = cols - l0;
        let m1 = ((1u16 << l1) - 1) as u8;
        // SAFETY: `acts` holds `cols` elements; each masked load reads
        // only its tile's `l0` resp. `l1` leading lanes.
        let a0 = unsafe { _mm512_maskz_loadu_pd(m0, acts.as_ptr()) };
        let a1 = if l1 > 0 {
            // SAFETY: as above, lanes `LANES..LANES + l1 == cols`.
            unsafe { _mm512_maskz_loadu_pd(m1, acts.as_ptr().add(LANES)) }
        } else {
            _mm512_setzero_pd()
        };
        let mut acc0 = _mm512_setzero_pd();
        let mut acc1 = _mm512_setzero_pd();
        for (r, &dr) in delta.iter().enumerate() {
            // SAFETY: `w` is `delta.len() × cols`, so row `r` starts in
            // bounds and holds `cols` elements, covering every access
            // below.
            let row = unsafe { w.as_mut_ptr().add(r * cols) };
            // SAFETY: reads lanes `< l0` of row `r`.
            let w0 = unsafe { _mm512_maskz_loadu_pd(m0, row) };
            let dv = _mm512_set1_pd(dr);
            acc0 = _mm512_add_pd(acc0, _mm512_mul_pd(w0, dv));
            // Folded bias step: `scale * dr` is exactly the scalar
            // bias loop's addend, applied once per row.
            let t = scale * dr;
            // SAFETY: `bias` holds `delta.len()` elements (caller
            // contract) and `r < delta.len()`.
            unsafe { *bias.get_unchecked_mut(r) += t };
            let sv = _mm512_set1_pd(t);
            let u0 = _mm512_add_pd(w0, _mm512_mul_pd(sv, a0));
            // SAFETY: writes the `l0` leading elements of row `r`.
            unsafe { store_low(row, u0, l0) };
            if l1 > 0 {
                // SAFETY: reads/writes lanes `LANES..cols` of row `r`,
                // disjoint from the first tile's store above.
                unsafe {
                    let w1 = _mm512_maskz_loadu_pd(m1, row.add(LANES));
                    acc1 = _mm512_add_pd(acc1, _mm512_mul_pd(w1, dv));
                    let u1 = _mm512_add_pd(w1, _mm512_mul_pd(sv, a1));
                    store_low(row.add(LANES), u1, l1);
                }
            }
        }
        let ones = _mm512_set1_pd(1.0);
        let d0 = _mm512_mul_pd(_mm512_mul_pd(acc0, a0), _mm512_sub_pd(ones, a0));
        // SAFETY: `out` holds `cols >= l0` elements.
        unsafe { store_low(out.as_mut_ptr(), d0, l0) };
        if l1 > 0 {
            let d1 = _mm512_mul_pd(_mm512_mul_pd(acc1, a1), _mm512_sub_pd(ones, a1));
            // SAFETY: `out` holds `cols == LANES + l1` elements.
            unsafe { store_low(out.as_mut_ptr().add(LANES), d1, l1) };
        }
    }

    /// Writes the `n` low lanes (`1..=8`) of `v` with plain stores —
    /// at most one 8/4/2-wide store each plus one scalar — never a
    /// masked store, whose read-modify-write semantics stall
    /// store-to-load forwarding for loads that soon re-read the line.
    ///
    /// # Safety
    ///
    /// The caller must have verified `avx512f` support at runtime, and
    /// `ptr` must be valid for writing `n` elements.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx512f")]
    #[inline]
    unsafe fn store_low(ptr: *mut f64, v: std::arch::x86_64::__m512d, n: usize) {
        use std::arch::x86_64::{
            _mm256_castpd256_pd128, _mm256_extractf128_pd, _mm256_storeu_pd,
            _mm512_castpd512_pd256, _mm512_extractf64x4_pd, _mm512_storeu_pd, _mm_cvtsd_f64,
            _mm_storeu_pd,
        };
        if n >= 8 {
            // SAFETY: `ptr` is valid for all eight lanes.
            unsafe { _mm512_storeu_pd(ptr, v) };
            return;
        }
        let mut p = ptr;
        let mut rest = n;
        // `half` tracks the four lanes the 2/1-wide tail steps draw
        // from: the low half until a 4-wide store consumes it.
        let mut half = _mm512_castpd512_pd256(v);
        if rest >= 4 {
            // SAFETY: `ptr` is valid for `n >= 4` elements.
            unsafe {
                _mm256_storeu_pd(p, half);
                p = p.add(4);
            }
            rest -= 4;
            half = _mm512_extractf64x4_pd::<1>(v);
        }
        let mut pair = _mm256_castpd256_pd128(half);
        if rest >= 2 {
            // SAFETY: two more elements fit by the same argument.
            unsafe {
                _mm_storeu_pd(p, pair);
                p = p.add(2);
            }
            rest -= 2;
            pair = _mm256_extractf128_pd::<1>(half);
        }
        if rest == 1 {
            // SAFETY: one more element fits by the same argument.
            unsafe { *p = _mm_cvtsd_f64(pair) };
        }
    }

    /// Finishing pass of [`super::sigmoid_bias_into`]: each element
    /// holds `exp(-|t|)` tagged with `t`'s sign bit and becomes
    /// `numer / (1 + e)` with `numer = e` when the tag is negative,
    /// `1` otherwise. Blend, add and divide are exactly rounded
    /// per-lane IEEE operations, so vectorising is bitwise neutral.
    pub(super) fn sigmoid_finish(z: &mut [f64]) {
        #[cfg(target_arch = "x86_64")]
        if !z.is_empty() && is_x86_feature_detected!("avx512f") {
            // SAFETY: the avx512f requirement is checked at runtime.
            unsafe { sigmoid_finish_avx512(z) };
            return;
        }
        for v in z.iter_mut() {
            let e = v.abs();
            let numer = if v.is_sign_negative() { e } else { 1.0 };
            *v = numer / (1.0 + e);
        }
    }

    /// Eight-lane AVX-512 kernel for [`sigmoid_finish`]; masked tiles
    /// cover every element.
    ///
    /// # Safety
    ///
    /// The caller must have verified `avx512f` support at runtime.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx512f")]
    unsafe fn sigmoid_finish_avx512(z: &mut [f64]) {
        use std::arch::x86_64::{
            _mm512_abs_pd, _mm512_add_pd, _mm512_castpd_si512, _mm512_div_pd, _mm512_mask_blend_pd,
            _mm512_mask_storeu_pd, _mm512_maskz_loadu_pd, _mm512_set1_epi64, _mm512_set1_pd,
            _mm512_test_epi64_mask,
        };
        const LANES: usize = 8;
        let ones = _mm512_set1_pd(1.0);
        let sign_bits = _mm512_set1_epi64(i64::MIN);
        let n = z.len();
        let mut c0 = 0usize;
        while c0 < n {
            let lanes = (n - c0).min(LANES);
            let mask = ((1u16 << lanes) - 1) as u8;
            // SAFETY: the masked load and store touch only the `lanes`
            // elements at `c0`, in bounds since `c0 + lanes <= n`.
            unsafe {
                let v = _mm512_maskz_loadu_pd(mask, z.as_ptr().add(c0));
                let e = _mm512_abs_pd(v);
                let neg = _mm512_test_epi64_mask(_mm512_castpd_si512(v), sign_bits);
                let numer = _mm512_mask_blend_pd(neg, ones, e);
                let out = _mm512_div_pd(numer, _mm512_add_pd(ones, e));
                _mm512_mask_storeu_pd(z.as_mut_ptr().add(c0), mask, out);
            }
            c0 += lanes;
        }
    }

    /// Eight-lane AVX-512 tile kernel.
    ///
    /// # Safety
    ///
    /// The caller must have verified `avx512f` support at runtime.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx512f")]
    unsafe fn tiles_avx512(
        a: &[f64],
        a_rows: usize,
        k: usize,
        b: &[f64],
        b_rows: usize,
        out: &mut [f64],
    ) -> usize {
        use std::arch::x86_64::{
            _mm512_add_pd, _mm512_loadu_pd, _mm512_mul_pd, _mm512_set1_pd, _mm512_setzero_pd,
            _mm512_storeu_pd,
        };
        const LANES: usize = 8;
        // Transposed sample tile: `xt[t * LANES + l] = a[i0 + l][t]`,
        // so the k-loop loads the eight lanes contiguously.
        let mut xt = vec![0.0f64; k * LANES];
        let mut lanes = [0.0f64; LANES];
        let full = (a_rows / LANES) * LANES;
        for i0 in (0..full).step_by(LANES) {
            for t in 0..k {
                for l in 0..LANES {
                    xt[t * LANES + l] = a[(i0 + l) * k + t];
                }
            }
            // Four output columns per pass: four independent
            // accumulator chains hide the vector-add latency the
            // single chain of one column cannot (each chain is still
            // the exact ascending-k recurrence of its column).
            let mut j = 0;
            while j + 4 <= b_rows {
                let b0 = &b[j * k..(j + 1) * k];
                let b1 = &b[(j + 1) * k..(j + 2) * k];
                let b2 = &b[(j + 2) * k..(j + 3) * k];
                let b3 = &b[(j + 3) * k..(j + 4) * k];
                let mut acc0 = _mm512_setzero_pd();
                let mut acc1 = _mm512_setzero_pd();
                let mut acc2 = _mm512_setzero_pd();
                let mut acc3 = _mm512_setzero_pd();
                for t in 0..k {
                    // SAFETY: `xt` holds `k * LANES` elements, so the
                    // load at `t * LANES` stays in bounds.
                    let x = unsafe { _mm512_loadu_pd(xt.as_ptr().add(t * LANES)) };
                    acc0 = _mm512_add_pd(acc0, _mm512_mul_pd(x, _mm512_set1_pd(b0[t])));
                    acc1 = _mm512_add_pd(acc1, _mm512_mul_pd(x, _mm512_set1_pd(b1[t])));
                    acc2 = _mm512_add_pd(acc2, _mm512_mul_pd(x, _mm512_set1_pd(b2[t])));
                    acc3 = _mm512_add_pd(acc3, _mm512_mul_pd(x, _mm512_set1_pd(b3[t])));
                }
                for (c, acc) in [acc0, acc1, acc2, acc3].into_iter().enumerate() {
                    // SAFETY: `lanes` holds exactly LANES elements.
                    unsafe { _mm512_storeu_pd(lanes.as_mut_ptr(), acc) };
                    for (l, &v) in lanes.iter().enumerate() {
                        out[(i0 + l) * b_rows + j + c] = v;
                    }
                }
                j += 4;
            }
            while j < b_rows {
                let brow = &b[j * k..(j + 1) * k];
                let mut acc = _mm512_setzero_pd();
                for (t, &w) in brow.iter().enumerate() {
                    // SAFETY: `xt` holds `k * LANES` elements and
                    // `t < k`, so the load at `t * LANES` stays in
                    // bounds.
                    let x = unsafe { _mm512_loadu_pd(xt.as_ptr().add(t * LANES)) };
                    acc = _mm512_add_pd(acc, _mm512_mul_pd(x, _mm512_set1_pd(w)));
                }
                // SAFETY: `lanes` holds exactly LANES elements.
                unsafe { _mm512_storeu_pd(lanes.as_mut_ptr(), acc) };
                for (l, &v) in lanes.iter().enumerate() {
                    out[(i0 + l) * b_rows + j] = v;
                }
                j += 1;
            }
        }
        full
    }
}

impl Default for Matrix {
    /// An empty `0 × 0` matrix — the natural seed for
    /// [`Matrix::reset`]-based scratch buffers.
    fn default() -> Self {
        Self::zeros(0, 0)
    }
}

/// The logistic sigmoid, numerically safe for large `|x|`.
///
/// Branchless formulation of the classic two-sided guard: both sides
/// evaluate `exp(-|x|)` — exactly the argument each branch of the
/// guarded form passes to `exp` — and the select between `1 / (1 + e)`
/// and `e / (1 + e)` compiles to a conditional move. Bit-identical to
/// the branchy version on every finite input, without the
/// data-dependent jump that mispredicts on mixed-sign pre-activations
/// in the training hot loop.
#[inline]
pub fn sigmoid(x: f64) -> f64 {
    let e = (-x.abs()).exp();
    let numer = if x >= 0.0 { 1.0 } else { e };
    numer / (1.0 + e)
}

/// In-place `z[i] ← sigmoid(z[i] + bias[i])` over a layer's
/// pre-activations — the activation pass of every forward step.
///
/// Split into a scalar pass and a vector finisher. The scalar pass
/// performs the two operations whose bits depend on libm: the bias add
/// and `exp(-|t|)` (exactly the argument the scalar [`sigmoid`] passes
/// to `exp`), storing the exponential tagged with `t`'s sign bit so no
/// second buffer is needed. The finisher then computes
/// `numer / (1 + e)` — with `numer` selected as `1` or `e` by the sign
/// tag — eight lanes at a time. Addition and division are exactly
/// rounded IEEE operations, identical lane for lane to their scalar
/// forms, so the whole routine is bit-identical to calling
/// [`sigmoid`] per element; only the division throughput changes
/// (scalar `divsd` retires one result per four cycles and dominates
/// the activation cost).
pub(crate) fn sigmoid_bias_into(z: &mut [f64], bias: &[f64]) {
    for (zi, b) in z.iter_mut().zip(bias) {
        let t = *zi + b;
        *zi = (-t.abs()).exp().copysign(t);
    }
    simd::sigmoid_finish(z);
}

/// In-place `y[i] += a · x[i]` over the common prefix — the bias
/// update of every gradient step (with `a = −lr`, since
/// `y −= lr · x` and `y += (−lr) · x` are the same IEEE operations).
/// Bit-identical to the scalar loop: one multiply, one add per
/// element, in scalar order.
pub(crate) fn axpy(y: &mut [f64], a: f64, x: &[f64]) {
    let n = y.len().min(x.len());
    if simd::axpy(y, a, x, n) {
        return;
    }
    for (yi, &xi) in y[..n].iter_mut().zip(&x[..n]) {
        *yi += a * xi;
    }
}

/// In-place `y[i] += a · (p[i] − n[i])` over the common prefix — the
/// contrastive-divergence bias update. Bit-identical to the scalar
/// loop: subtract, multiply, add, in scalar order.
pub(crate) fn axpy_diff(y: &mut [f64], a: f64, p: &[f64], n: &[f64]) {
    let len = y.len().min(p.len()).min(n.len());
    if simd::axpy_diff(y, a, p, n, len) {
        return;
    }
    for (yi, (&pi, &ni)) in y[..len].iter_mut().zip(p[..len].iter().zip(&n[..len])) {
        *yi += a * (pi - ni);
    }
}

/// Squared-loss output delta through a sigmoid,
/// `d[i] = (o[i] − t[i]) · o[i] · (1 − o[i])`, over the common prefix
/// of `out` and `target`, written into the reused `delta` buffer.
/// Bit-identical to the scalar expression (left-associated products).
pub(crate) fn delta_out_into(out: &[f64], target: &[f64], delta: &mut Vec<f64>) {
    let n = out.len().min(target.len());
    if delta.len() != n {
        delta.clear();
        delta.resize(n, 0.0);
    }
    if simd::delta_out(delta, out, target, n) {
        return;
    }
    for (d, (&o, &t)) in delta.iter_mut().zip(out[..n].iter().zip(&target[..n])) {
        *d = (o - t) * o * (1.0 - o);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use helio_common::rng::seeded;

    #[test]
    fn construction_and_access() {
        let mut m = Matrix::zeros(2, 3);
        assert_eq!((m.rows(), m.cols()), (2, 3));
        m.set(1, 2, 5.0);
        assert_eq!(m.get(1, 2), 5.0);
        assert_eq!(m.row(0), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn from_rows_and_ragged_rejection() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(m.get(1, 0), 3.0);
        assert!(Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]).is_err());
    }

    #[test]
    fn matvec_matches_hand_computation() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(m.matvec(&[1.0, 1.0]).unwrap(), vec![3.0, 7.0]);
        assert_eq!(m.matvec_t(&[1.0, 1.0]).unwrap(), vec![4.0, 6.0]);
        assert!(m.matvec(&[1.0]).is_err());
        assert!(m.matvec_t(&[1.0, 1.0, 1.0]).is_err());
    }

    #[test]
    fn rank1_update_adds_outer_product() {
        let mut m = Matrix::zeros(2, 2);
        m.rank1_update(&[1.0, 2.0], &[3.0, 4.0], 0.5).unwrap();
        assert_eq!(m.get(0, 0), 1.5);
        assert_eq!(m.get(1, 1), 4.0);
        assert!(m.rank1_update(&[1.0], &[1.0, 1.0], 1.0).is_err());
    }

    #[test]
    fn random_is_seeded_and_bounded() {
        let a = Matrix::random(4, 4, 0.1, &mut seeded(1));
        let b = Matrix::random(4, 4, 0.1, &mut seeded(1));
        assert_eq!(a, b);
        for r in 0..4 {
            for c in 0..4 {
                assert!(a.get(r, c).abs() <= 0.1);
            }
        }
    }

    #[test]
    fn sigmoid_properties() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!(sigmoid(40.0) > 0.999_999);
        assert!(sigmoid(-40.0) < 1e-6);
        assert!(sigmoid(1e6).is_finite());
        assert!(sigmoid(-1e6).is_finite());
        // Symmetry.
        assert!((sigmoid(2.0) + sigmoid(-2.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn frobenius_norm() {
        let m = Matrix::from_rows(&[vec![3.0, 0.0], vec![0.0, 4.0]]).unwrap();
        assert!((m.frobenius() - 5.0).abs() < 1e-12);
    }

    /// Naive triple loop with the same ascending-k accumulation order
    /// as the blocked kernel.
    fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut acc = 0.0;
                for t in 0..a.cols() {
                    acc += a.get(i, t) * b.get(t, j);
                }
                out.set(i, j, acc);
            }
        }
        out
    }

    #[test]
    fn transpose_round_trips() {
        let m = Matrix::random(7, 3, 1.0, &mut seeded(20));
        let t = m.transposed();
        assert_eq!((t.rows(), t.cols()), (3, 7));
        assert_eq!(t.get(2, 5), m.get(5, 2));
        assert_eq!(t.transposed(), m);
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.row(0), &[19.0, 22.0]);
        assert_eq!(c.row(1), &[43.0, 50.0]);
    }

    #[test]
    fn blocked_matmul_is_bitwise_naive_across_block_boundaries() {
        // Sizes straddling the 32-wide tiles exercise partial blocks.
        let mut rng = seeded(21);
        for (m, k, n) in [(1, 1, 1), (5, 9, 3), (33, 40, 65), (70, 37, 45)] {
            let a = Matrix::random(m, k, 1.0, &mut rng);
            let b = Matrix::random(k, n, 1.0, &mut rng);
            let blocked = a.matmul(&b).unwrap();
            let naive = naive_matmul(&a, &b);
            assert_eq!(blocked, naive, "{m}x{k}x{n}");
        }
    }

    #[test]
    fn from_flat_validates_length() {
        let m = Matrix::from_flat(2, 3, vec![0.0; 6]).unwrap();
        assert_eq!((m.rows(), m.cols()), (2, 3));
        assert!(Matrix::from_flat(2, 3, vec![0.0; 5]).is_err());
    }

    /// The three training kernels against naive scalar references, at
    /// sizes straddling the 8-wide lane boundary (so full tiles, tails
    /// and the pure-scalar small path are all exercised).
    #[test]
    fn training_kernels_are_bitwise_scalar_across_lane_boundaries() {
        let mut rng = seeded(24);
        for (rows, cols) in [(1, 1), (3, 7), (8, 8), (9, 17), (16, 10), (25, 33)] {
            let w = Matrix::random(rows, cols, 1.0, &mut rng);
            let x = Matrix::random(1, cols, 1.0, &mut rng).row(0).to_vec();
            let y = Matrix::random(1, rows, 1.0, &mut rng).row(0).to_vec();

            let got = w.matvec(&x).unwrap();
            for (r, &g) in got.iter().enumerate() {
                let mut acc = 0.0;
                for (t, &xt) in x.iter().enumerate() {
                    acc += w.get(r, t) * xt;
                }
                assert!(acc.to_bits() == g.to_bits(), "matvec {rows}x{cols} row {r}");
            }

            let got_t = w.matvec_t(&y).unwrap();
            for (c, &g) in got_t.iter().enumerate() {
                let mut acc = 0.0;
                for (r, &yr) in y.iter().enumerate() {
                    acc += w.get(r, c) * yr;
                }
                assert!(
                    acc.to_bits() == g.to_bits(),
                    "matvec_t {rows}x{cols} col {c}"
                );
            }

            let mut updated = w.clone();
            updated.rank1_update(&y, &x, 0.37).unwrap();
            for (r, &yr) in y.iter().enumerate() {
                for (c, &xc) in x.iter().enumerate() {
                    let want = w.get(r, c) + 0.37 * yr * xc;
                    assert!(
                        want.to_bits() == updated.get(r, c).to_bits(),
                        "rank1 {rows}x{cols} ({r},{c})"
                    );
                }
            }
        }
    }

    /// The fused backward step against the explicit four-part
    /// reference it replaces (transposed product, derivative loop,
    /// rank-1 update, bias loop), bit for bit, at shapes covering one
    /// tile, two tiles (full and partial), and the `cols > 16`
    /// fallback path.
    #[test]
    fn backprop_fused_is_bitwise_reference_sequence() {
        let mut rng = seeded(26);
        for (rows, cols) in [(1, 1), (5, 3), (8, 8), (10, 16), (16, 10), (9, 13), (7, 21)] {
            let w = Matrix::random(rows, cols, 1.0, &mut rng);
            let delta = Matrix::random(1, rows, 1.0, &mut rng).row(0).to_vec();
            let bias0 = Matrix::random(1, rows, 1.0, &mut rng).row(0).to_vec();
            // Activations in (0, 1), as the sigmoid layers produce.
            let acts: Vec<f64> = Matrix::random(1, cols, 0.5, &mut rng)
                .row(0)
                .iter()
                .map(|v| v + 0.5)
                .collect();
            let scale = -0.05;

            let mut fused_w = w.clone();
            let mut fused_bias = bias0.clone();
            let mut fused_out = Vec::new();
            fused_w
                .backprop_fused_into(&delta, &acts, scale, &mut fused_bias, &mut fused_out)
                .unwrap();

            let mut ref_w = w.clone();
            let mut ref_out = ref_w.matvec_t(&delta).unwrap();
            for (o, &a) in ref_out.iter_mut().zip(&acts) {
                *o = *o * a * (1.0 - a);
            }
            ref_w.rank1_update(&delta, &acts, scale).unwrap();
            let mut ref_bias = bias0.clone();
            for (b, &d) in ref_bias.iter_mut().zip(&delta) {
                *b += scale * d;
            }

            for (c, (&f, &r)) in fused_out.iter().zip(&ref_out).enumerate() {
                assert!(f.to_bits() == r.to_bits(), "out {rows}x{cols} col {c}");
            }
            for (r, (&f, &rf)) in fused_bias.iter().zip(&ref_bias).enumerate() {
                assert!(f.to_bits() == rf.to_bits(), "bias {rows}x{cols} row {r}");
            }
            for r in 0..rows {
                for c in 0..cols {
                    assert!(
                        fused_w.get(r, c).to_bits() == ref_w.get(r, c).to_bits(),
                        "weights {rows}x{cols} ({r},{c})"
                    );
                }
            }
        }
        // Shape validation mirrors the unfused kernels.
        let mut w = Matrix::zeros(3, 4);
        let mut out = Vec::new();
        let mut bias = [0.0; 3];
        assert!(w
            .backprop_fused_into(&[0.0; 2], &[0.0; 4], 0.1, &mut bias, &mut out)
            .is_err());
        assert!(w
            .backprop_fused_into(&[0.0; 3], &[0.0; 5], 0.1, &mut bias, &mut out)
            .is_err());
        assert!(w
            .backprop_fused_into(&[0.0; 3], &[0.0; 4], 0.1, &mut [0.0; 2], &mut out)
            .is_err());
    }

    /// The rank-1-with-bias update against its two-part reference,
    /// bit for bit, across the scalar and vector paths.
    #[test]
    fn rank1_bias_is_bitwise_reference_sequence() {
        let mut rng = seeded(29);
        for (rows, cols) in [(3, 5), (8, 8), (16, 15), (6, 23)] {
            let w = Matrix::random(rows, cols, 1.0, &mut rng);
            let a = Matrix::random(1, rows, 1.0, &mut rng).row(0).to_vec();
            let b = Matrix::random(1, cols, 1.0, &mut rng).row(0).to_vec();
            let bias0 = Matrix::random(1, rows, 1.0, &mut rng).row(0).to_vec();

            let mut fused = w.clone();
            let mut fused_bias = bias0.clone();
            fused
                .rank1_bias_update(&a, &b, -0.07, &mut fused_bias)
                .unwrap();

            let mut reference = w.clone();
            reference.rank1_update(&a, &b, -0.07).unwrap();
            let mut ref_bias = bias0.clone();
            for (bi, &ai) in ref_bias.iter_mut().zip(&a) {
                *bi += -0.07 * ai;
            }

            for r in 0..rows {
                assert!(
                    fused_bias[r].to_bits() == ref_bias[r].to_bits(),
                    "bias {rows}x{cols} row {r}"
                );
                for c in 0..cols {
                    assert!(
                        fused.get(r, c).to_bits() == reference.get(r, c).to_bits(),
                        "weights {rows}x{cols} ({r},{c})"
                    );
                }
            }
        }
        let mut w = Matrix::zeros(2, 3);
        assert!(w
            .rank1_bias_update(&[0.0; 2], &[0.0; 3], 0.1, &mut [0.0; 3])
            .is_err());
    }

    /// The paired rank-1 update against its two-call reference, bit
    /// for bit, across tail widths (scalar path, exact tiles, every
    /// overlapped-tail width).
    #[test]
    fn rank1_pair_is_bitwise_two_updates() {
        let mut rng = seeded(27);
        for (rows, cols) in [(4, 5), (3, 8), (10, 9), (16, 15), (10, 16), (6, 23)] {
            let w = Matrix::random(rows, cols, 1.0, &mut rng);
            let a1 = Matrix::random(1, rows, 1.0, &mut rng).row(0).to_vec();
            let b1 = Matrix::random(1, cols, 1.0, &mut rng).row(0).to_vec();
            let a2 = Matrix::random(1, rows, 1.0, &mut rng).row(0).to_vec();
            let b2 = Matrix::random(1, cols, 1.0, &mut rng).row(0).to_vec();

            let mut fused = w.clone();
            fused
                .rank1_pair_update(&a1, &b1, 0.05, &a2, &b2, -0.05)
                .unwrap();
            let mut reference = w.clone();
            reference.rank1_update(&a1, &b1, 0.05).unwrap();
            reference.rank1_update(&a2, &b2, -0.05).unwrap();

            for r in 0..rows {
                for c in 0..cols {
                    assert!(
                        fused.get(r, c).to_bits() == reference.get(r, c).to_bits(),
                        "{rows}x{cols} ({r},{c})"
                    );
                }
            }
        }
        let mut w = Matrix::zeros(2, 3);
        assert!(w
            .rank1_pair_update(&[0.0; 2], &[0.0; 3], 0.1, &[0.0; 1], &[0.0; 3], 0.1)
            .is_err());
    }

    /// The vectorised elementwise training helpers against their
    /// scalar definitions, bit for bit, at lengths covering partial,
    /// exact, and multi-tile spans.
    #[test]
    fn elementwise_helpers_are_bitwise_scalar() {
        let mut rng = seeded(28);
        for n in [1, 2, 3, 5, 8, 10, 13, 16, 20] {
            let y0 = Matrix::random(1, n, 1.0, &mut rng).row(0).to_vec();
            let x = Matrix::random(1, n, 1.0, &mut rng).row(0).to_vec();
            let p = Matrix::random(1, n, 1.0, &mut rng).row(0).to_vec();
            let q = Matrix::random(1, n, 1.0, &mut rng).row(0).to_vec();

            let mut y = y0.clone();
            axpy(&mut y, -0.3, &x);
            for i in 0..n {
                let want = y0[i] + -0.3 * x[i];
                assert!(want.to_bits() == y[i].to_bits(), "axpy n={n} i={i}");
            }

            let mut y = y0.clone();
            axpy_diff(&mut y, 0.7, &p, &q);
            for i in 0..n {
                let want = y0[i] + 0.7 * (p[i] - q[i]);
                assert!(want.to_bits() == y[i].to_bits(), "axpy_diff n={n} i={i}");
            }

            let mut d = Vec::new();
            delta_out_into(&p, &q, &mut d);
            assert_eq!(d.len(), n);
            for i in 0..n {
                let want = (p[i] - q[i]) * p[i] * (1.0 - p[i]);
                assert!(want.to_bits() == d[i].to_bits(), "delta_out n={n} i={i}");
            }
        }
    }

    #[test]
    fn matvec_into_reuses_buffers() {
        let mut rng = seeded(25);
        let w = Matrix::random(12, 9, 1.0, &mut rng);
        let x = vec![1.0; 9];
        let y = vec![1.0; 12];
        let mut out = vec![999.0; 40];
        w.matvec_into(&x, &mut out).unwrap();
        assert_eq!(out, w.matvec(&x).unwrap());
        w.matvec_t_into(&y, &mut out).unwrap();
        assert_eq!(out, w.matvec_t(&y).unwrap());
        assert!(w.matvec_t_into(&x, &mut out).is_err());
    }

    #[test]
    fn matmul_bt_rows_are_bitwise_matvec() {
        let mut rng = seeded(22);
        let w = Matrix::random(40, 33, 1.0, &mut rng);
        let xs = Matrix::random(50, 33, 1.0, &mut rng);
        let batch = xs.matmul_bt(&w).unwrap();
        for r in 0..xs.rows() {
            let single = w.matvec(xs.row(r)).unwrap();
            assert_eq!(batch.row(r), single.as_slice(), "row {r}");
        }
    }

    #[test]
    fn matmul_into_reuses_output() {
        let mut rng = seeded(23);
        let a = Matrix::random(6, 4, 1.0, &mut rng);
        let b = Matrix::random(4, 5, 1.0, &mut rng);
        let mut out = Matrix::zeros(6, 5);
        a.matmul_into(&b, &mut out).unwrap();
        assert_eq!(out, a.matmul(&b).unwrap());
        // Stale contents must be overwritten, not accumulated.
        a.matmul_into(&b, &mut out).unwrap();
        assert_eq!(out, a.matmul(&b).unwrap());
    }

    #[test]
    fn matmul_shape_errors() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 2);
        assert!(a.matmul(&b).is_err());
        assert!(a.matmul_bt(&Matrix::zeros(5, 4)).is_err());
        let c = Matrix::zeros(3, 2);
        let mut wrong = Matrix::zeros(3, 3);
        assert!(a.matmul_into(&c, &mut wrong).is_err());
    }
}
