//! Minimal dense row-major matrix — just the operations the RBM and
//! MLP need, implemented plainly and tested thoroughly.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::error::AnnError;

/// Dense row-major `rows × cols` matrix of `f64`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Matrix filled from a closure `f(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Matrix with entries drawn uniformly from `[-scale, scale]`.
    pub fn random(rows: usize, cols: usize, scale: f64, rng: &mut impl Rng) -> Self {
        Self::from_fn(rows, cols, |_, _| rng.gen_range(-scale..=scale))
    }

    /// Builds from nested rows.
    ///
    /// # Errors
    ///
    /// Returns [`AnnError::DimensionMismatch`] for ragged input.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self, AnnError> {
        let n_cols = rows.first().map_or(0, Vec::len);
        if rows.iter().any(|r| r.len() != n_cols) {
            return Err(AnnError::dims(
                format!("every row of length {n_cols}"),
                "ragged rows".to_string(),
            ));
        }
        Ok(Self {
            rows: rows.len(),
            cols: n_cols,
            data: rows.concat(),
        })
    }

    /// Number of rows.
    pub const fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub const fn cols(&self) -> usize {
        self.cols
    }

    /// Element access.
    ///
    /// # Panics
    ///
    /// Panics out of range.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of range"
        );
        self.data[r * self.cols + c]
    }

    /// Mutable element access.
    ///
    /// # Panics
    ///
    /// Panics out of range.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of range"
        );
        self.data[r * self.cols + c] = v;
    }

    /// One row as a slice.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// One row as a mutable slice.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Reshapes in place to a zeroed `rows × cols` matrix. The backing
    /// allocation is kept once grown, so reused scratch matrices (the
    /// batched-inference ping-pong buffers) stop allocating after the
    /// first call.
    pub fn reset(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// Matrix–vector product `self · x`.
    ///
    /// # Errors
    ///
    /// Returns [`AnnError::DimensionMismatch`] when `x.len() != cols`.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>, AnnError> {
        let mut out = Vec::with_capacity(self.rows);
        self.matvec_into(x, &mut out)?;
        Ok(out)
    }

    /// [`Matrix::matvec`] writing into `out` (cleared first), so a
    /// reused buffer makes repeated products allocation-free.
    ///
    /// # Errors
    ///
    /// Returns [`AnnError::DimensionMismatch`] when `x.len() != cols`.
    pub fn matvec_into(&self, x: &[f64], out: &mut Vec<f64>) -> Result<(), AnnError> {
        if x.len() != self.cols {
            return Err(AnnError::dims(
                format!("vector of length {}", self.cols),
                format!("length {}", x.len()),
            ));
        }
        out.clear();
        out.extend(
            (0..self.rows).map(|r| self.row(r).iter().zip(x).map(|(a, b)| a * b).sum::<f64>()),
        );
        Ok(())
    }

    /// Transposed matrix–vector product `selfᵀ · x`.
    ///
    /// # Errors
    ///
    /// Returns [`AnnError::DimensionMismatch`] when `x.len() != rows`.
    pub fn matvec_t(&self, x: &[f64]) -> Result<Vec<f64>, AnnError> {
        if x.len() != self.rows {
            return Err(AnnError::dims(
                format!("vector of length {}", self.rows),
                format!("length {}", x.len()),
            ));
        }
        let mut out = vec![0.0; self.cols];
        for (r, &xr) in x.iter().enumerate() {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            for (o, &w) in out.iter_mut().zip(row) {
                *o += w * xr;
            }
        }
        Ok(out)
    }

    /// Rank-1 update `self += scale · a · bᵀ`.
    ///
    /// # Errors
    ///
    /// Returns [`AnnError::DimensionMismatch`] when shapes do not match.
    pub fn rank1_update(&mut self, a: &[f64], b: &[f64], scale: f64) -> Result<(), AnnError> {
        if a.len() != self.rows || b.len() != self.cols {
            return Err(AnnError::dims(
                format!("{}-vec and {}-vec", self.rows, self.cols),
                format!("{}-vec and {}-vec", a.len(), b.len()),
            ));
        }
        for (r, &ar) in a.iter().enumerate() {
            let row = &mut self.data[r * self.cols..(r + 1) * self.cols];
            for (w, &bc) in row.iter_mut().zip(b) {
                *w += scale * ar * bc;
            }
        }
        Ok(())
    }

    /// Frobenius norm (for convergence diagnostics in tests).
    pub fn frobenius(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// The transpose, row-major.
    pub fn transposed(&self) -> Self {
        let mut out = Self::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Matrix product `self · other`.
    ///
    /// Packs `other` transposed, then runs the cache-blocked row-dot
    /// kernel of [`Matrix::matmul_bt`]; every output element is the
    /// same ascending-index dot product [`Matrix::matvec`] computes, so
    /// batching is bitwise identical to per-column products.
    ///
    /// # Errors
    ///
    /// Returns [`AnnError::DimensionMismatch`] when `self.cols() !=
    /// other.rows()`.
    pub fn matmul(&self, other: &Self) -> Result<Self, AnnError> {
        if self.cols != other.rows {
            return Err(AnnError::dims(
                format!("{} rows on the right", self.cols),
                format!("{}", other.rows),
            ));
        }
        self.matmul_bt(&other.transposed())
    }

    /// Matrix product `self · other` written into `out` (no
    /// allocation beyond the transposed packing of `other`).
    ///
    /// # Errors
    ///
    /// Returns [`AnnError::DimensionMismatch`] when the inner
    /// dimensions or `out`'s shape do not line up.
    pub fn matmul_into(&self, other: &Self, out: &mut Self) -> Result<(), AnnError> {
        if self.cols != other.rows {
            return Err(AnnError::dims(
                format!("{} rows on the right", self.cols),
                format!("{}", other.rows),
            ));
        }
        self.matmul_bt_into(&other.transposed(), out)
    }

    /// Matrix product against a pre-transposed right operand:
    /// `self · otherᵀ`, where `other` is stored `cols_out × k`
    /// row-major. Both operands are then read along contiguous rows,
    /// which is what makes the blocked kernel cache-friendly.
    ///
    /// # Errors
    ///
    /// Returns [`AnnError::DimensionMismatch`] when the shared inner
    /// dimension differs.
    pub fn matmul_bt(&self, other: &Self) -> Result<Self, AnnError> {
        let mut out = Self::zeros(self.rows, other.rows);
        self.matmul_bt_into(other, &mut out)?;
        Ok(out)
    }

    /// [`Matrix::matmul_bt`] writing into `out`.
    ///
    /// # Errors
    ///
    /// Returns [`AnnError::DimensionMismatch`] when the inner dimension
    /// or `out`'s shape do not line up.
    pub fn matmul_bt_into(&self, other: &Self, out: &mut Self) -> Result<(), AnnError> {
        if self.cols != other.cols {
            return Err(AnnError::dims(
                format!("shared inner dimension {}", self.cols),
                format!("{}", other.cols),
            ));
        }
        if out.rows != self.rows || out.cols != other.rows {
            return Err(AnnError::dims(
                format!("{}x{} output", self.rows, other.rows),
                format!("{}x{}", out.rows, out.cols),
            ));
        }
        let k = self.cols;
        // Where the hardware supports it, full 8-row tiles go through
        // the lane-parallel kernel: eight samples advance the same
        // ascending-k mul-then-add chain in the eight lanes of one
        // vector, so every lane reproduces `matvec` bit for bit while
        // the batch amortises the instruction stream. Rows past the
        // last full tile (and non-x86 builds) take the scalar path.
        let simd_rows = simd::matmul_bt_tiles(
            &self.data,
            self.rows,
            k,
            &other.data,
            other.rows,
            &mut out.data,
        );
        // Tile over (i, j) so a block of `other` rows stays hot in
        // cache while a block of `self` rows streams through it. The
        // k loop is NOT tiled: each element keeps the single
        // ascending-k accumulator of `matvec`, so the blocked product
        // is bitwise identical to the naive one.
        const BLOCK: usize = 32;
        for i0 in (simd_rows..self.rows).step_by(BLOCK) {
            let i_end = (i0 + BLOCK).min(self.rows);
            for j0 in (0..other.rows).step_by(BLOCK) {
                let j_end = (j0 + BLOCK).min(other.rows);
                for i in i0..i_end {
                    let a = &self.data[i * k..(i + 1) * k];
                    let row_out = &mut out.data[i * out.cols..(i + 1) * out.cols];
                    for (j, o) in row_out.iter_mut().enumerate().take(j_end).skip(j0) {
                        let b = &other.data[j * k..(j + 1) * k];
                        let mut acc = 0.0;
                        for t in 0..k {
                            acc += a[t] * b[t];
                        }
                        *o = acc;
                    }
                }
            }
        }
        Ok(())
    }
}

/// Lane-parallel product tiles for [`Matrix::matmul_bt_into`].
///
/// The batched forward's throughput win comes from vectorising across
/// the *batch* dimension: one vector register holds the accumulators
/// of `LANES` samples, and every step performs the same
/// `acc[l] += a[l][t] * b[t]` (multiply, then add — never a fused
/// multiply-add, whose single rounding would change the value) in
/// ascending `t`, exactly the scalar [`Matrix::matvec`] recurrence.
/// The results are therefore bitwise identical to the scalar kernel on
/// every lane; only the instruction count per sample shrinks.
mod simd {
    /// Runs as many full lane tiles as the hardware allows and returns
    /// the number of leading rows handled (always a multiple of the
    /// lane width; `0` when SIMD is unavailable or the batch is smaller
    /// than one tile).
    #[cfg(target_arch = "x86_64")]
    pub(super) fn matmul_bt_tiles(
        a: &[f64],
        a_rows: usize,
        k: usize,
        b: &[f64],
        b_rows: usize,
        out: &mut [f64],
    ) -> usize {
        if a_rows >= 8 && k > 0 && b_rows > 0 && is_x86_feature_detected!("avx512f") {
            // SAFETY: the avx512f requirement is checked at runtime.
            unsafe { tiles_avx512(a, a_rows, k, b, b_rows, out) }
        } else {
            0
        }
    }

    #[cfg(not(target_arch = "x86_64"))]
    pub(super) fn matmul_bt_tiles(
        _a: &[f64],
        _a_rows: usize,
        _k: usize,
        _b: &[f64],
        _b_rows: usize,
        _out: &mut [f64],
    ) -> usize {
        0
    }

    /// Eight-lane AVX-512 tile kernel.
    ///
    /// # Safety
    ///
    /// The caller must have verified `avx512f` support at runtime.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx512f")]
    unsafe fn tiles_avx512(
        a: &[f64],
        a_rows: usize,
        k: usize,
        b: &[f64],
        b_rows: usize,
        out: &mut [f64],
    ) -> usize {
        use std::arch::x86_64::{
            _mm512_add_pd, _mm512_loadu_pd, _mm512_mul_pd, _mm512_set1_pd, _mm512_setzero_pd,
            _mm512_storeu_pd,
        };
        const LANES: usize = 8;
        // Transposed sample tile: `xt[t * LANES + l] = a[i0 + l][t]`,
        // so the k-loop loads the eight lanes contiguously.
        let mut xt = vec![0.0f64; k * LANES];
        let mut lanes = [0.0f64; LANES];
        let full = (a_rows / LANES) * LANES;
        for i0 in (0..full).step_by(LANES) {
            for t in 0..k {
                for l in 0..LANES {
                    xt[t * LANES + l] = a[(i0 + l) * k + t];
                }
            }
            // Four output columns per pass: four independent
            // accumulator chains hide the vector-add latency the
            // single chain of one column cannot (each chain is still
            // the exact ascending-k recurrence of its column).
            let mut j = 0;
            while j + 4 <= b_rows {
                let b0 = &b[j * k..(j + 1) * k];
                let b1 = &b[(j + 1) * k..(j + 2) * k];
                let b2 = &b[(j + 2) * k..(j + 3) * k];
                let b3 = &b[(j + 3) * k..(j + 4) * k];
                let mut acc0 = _mm512_setzero_pd();
                let mut acc1 = _mm512_setzero_pd();
                let mut acc2 = _mm512_setzero_pd();
                let mut acc3 = _mm512_setzero_pd();
                for t in 0..k {
                    // SAFETY: `xt` holds `k * LANES` elements, so the
                    // load at `t * LANES` stays in bounds.
                    let x = unsafe { _mm512_loadu_pd(xt.as_ptr().add(t * LANES)) };
                    acc0 = _mm512_add_pd(acc0, _mm512_mul_pd(x, _mm512_set1_pd(b0[t])));
                    acc1 = _mm512_add_pd(acc1, _mm512_mul_pd(x, _mm512_set1_pd(b1[t])));
                    acc2 = _mm512_add_pd(acc2, _mm512_mul_pd(x, _mm512_set1_pd(b2[t])));
                    acc3 = _mm512_add_pd(acc3, _mm512_mul_pd(x, _mm512_set1_pd(b3[t])));
                }
                for (c, acc) in [acc0, acc1, acc2, acc3].into_iter().enumerate() {
                    // SAFETY: `lanes` holds exactly LANES elements.
                    unsafe { _mm512_storeu_pd(lanes.as_mut_ptr(), acc) };
                    for (l, &v) in lanes.iter().enumerate() {
                        out[(i0 + l) * b_rows + j + c] = v;
                    }
                }
                j += 4;
            }
            while j < b_rows {
                let brow = &b[j * k..(j + 1) * k];
                let mut acc = _mm512_setzero_pd();
                for (t, &w) in brow.iter().enumerate() {
                    // SAFETY: `xt` holds `k * LANES` elements and
                    // `t < k`, so the load at `t * LANES` stays in
                    // bounds.
                    let x = unsafe { _mm512_loadu_pd(xt.as_ptr().add(t * LANES)) };
                    acc = _mm512_add_pd(acc, _mm512_mul_pd(x, _mm512_set1_pd(w)));
                }
                // SAFETY: `lanes` holds exactly LANES elements.
                unsafe { _mm512_storeu_pd(lanes.as_mut_ptr(), acc) };
                for (l, &v) in lanes.iter().enumerate() {
                    out[(i0 + l) * b_rows + j] = v;
                }
                j += 1;
            }
        }
        full
    }
}

impl Default for Matrix {
    /// An empty `0 × 0` matrix — the natural seed for
    /// [`Matrix::reset`]-based scratch buffers.
    fn default() -> Self {
        Self::zeros(0, 0)
    }
}

/// The logistic sigmoid, numerically safe for large `|x|`.
#[inline]
pub fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use helio_common::rng::seeded;

    #[test]
    fn construction_and_access() {
        let mut m = Matrix::zeros(2, 3);
        assert_eq!((m.rows(), m.cols()), (2, 3));
        m.set(1, 2, 5.0);
        assert_eq!(m.get(1, 2), 5.0);
        assert_eq!(m.row(0), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn from_rows_and_ragged_rejection() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(m.get(1, 0), 3.0);
        assert!(Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]).is_err());
    }

    #[test]
    fn matvec_matches_hand_computation() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(m.matvec(&[1.0, 1.0]).unwrap(), vec![3.0, 7.0]);
        assert_eq!(m.matvec_t(&[1.0, 1.0]).unwrap(), vec![4.0, 6.0]);
        assert!(m.matvec(&[1.0]).is_err());
        assert!(m.matvec_t(&[1.0, 1.0, 1.0]).is_err());
    }

    #[test]
    fn rank1_update_adds_outer_product() {
        let mut m = Matrix::zeros(2, 2);
        m.rank1_update(&[1.0, 2.0], &[3.0, 4.0], 0.5).unwrap();
        assert_eq!(m.get(0, 0), 1.5);
        assert_eq!(m.get(1, 1), 4.0);
        assert!(m.rank1_update(&[1.0], &[1.0, 1.0], 1.0).is_err());
    }

    #[test]
    fn random_is_seeded_and_bounded() {
        let a = Matrix::random(4, 4, 0.1, &mut seeded(1));
        let b = Matrix::random(4, 4, 0.1, &mut seeded(1));
        assert_eq!(a, b);
        for r in 0..4 {
            for c in 0..4 {
                assert!(a.get(r, c).abs() <= 0.1);
            }
        }
    }

    #[test]
    fn sigmoid_properties() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!(sigmoid(40.0) > 0.999_999);
        assert!(sigmoid(-40.0) < 1e-6);
        assert!(sigmoid(1e6).is_finite());
        assert!(sigmoid(-1e6).is_finite());
        // Symmetry.
        assert!((sigmoid(2.0) + sigmoid(-2.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn frobenius_norm() {
        let m = Matrix::from_rows(&[vec![3.0, 0.0], vec![0.0, 4.0]]).unwrap();
        assert!((m.frobenius() - 5.0).abs() < 1e-12);
    }

    /// Naive triple loop with the same ascending-k accumulation order
    /// as the blocked kernel.
    fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut acc = 0.0;
                for t in 0..a.cols() {
                    acc += a.get(i, t) * b.get(t, j);
                }
                out.set(i, j, acc);
            }
        }
        out
    }

    #[test]
    fn transpose_round_trips() {
        let m = Matrix::random(7, 3, 1.0, &mut seeded(20));
        let t = m.transposed();
        assert_eq!((t.rows(), t.cols()), (3, 7));
        assert_eq!(t.get(2, 5), m.get(5, 2));
        assert_eq!(t.transposed(), m);
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.row(0), &[19.0, 22.0]);
        assert_eq!(c.row(1), &[43.0, 50.0]);
    }

    #[test]
    fn blocked_matmul_is_bitwise_naive_across_block_boundaries() {
        // Sizes straddling the 32-wide tiles exercise partial blocks.
        let mut rng = seeded(21);
        for (m, k, n) in [(1, 1, 1), (5, 9, 3), (33, 40, 65), (70, 37, 45)] {
            let a = Matrix::random(m, k, 1.0, &mut rng);
            let b = Matrix::random(k, n, 1.0, &mut rng);
            let blocked = a.matmul(&b).unwrap();
            let naive = naive_matmul(&a, &b);
            assert_eq!(blocked, naive, "{m}x{k}x{n}");
        }
    }

    #[test]
    fn matmul_bt_rows_are_bitwise_matvec() {
        let mut rng = seeded(22);
        let w = Matrix::random(40, 33, 1.0, &mut rng);
        let xs = Matrix::random(50, 33, 1.0, &mut rng);
        let batch = xs.matmul_bt(&w).unwrap();
        for r in 0..xs.rows() {
            let single = w.matvec(xs.row(r)).unwrap();
            assert_eq!(batch.row(r), single.as_slice(), "row {r}");
        }
    }

    #[test]
    fn matmul_into_reuses_output() {
        let mut rng = seeded(23);
        let a = Matrix::random(6, 4, 1.0, &mut rng);
        let b = Matrix::random(4, 5, 1.0, &mut rng);
        let mut out = Matrix::zeros(6, 5);
        a.matmul_into(&b, &mut out).unwrap();
        assert_eq!(out, a.matmul(&b).unwrap());
        // Stale contents must be overwritten, not accumulated.
        a.matmul_into(&b, &mut out).unwrap();
        assert_eq!(out, a.matmul(&b).unwrap());
    }

    #[test]
    fn matmul_shape_errors() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 2);
        assert!(a.matmul(&b).is_err());
        assert!(a.matmul_bt(&Matrix::zeros(5, 4)).is_err());
        let c = Matrix::zeros(3, 2);
        let mut wrong = Matrix::zeros(3, 3);
        assert!(a.matmul_into(&c, &mut wrong).is_err());
    }
}
